package main

// The -tiering-json mode turns raw BenchmarkTiering output into
// BENCH_tiering.json: the adaptive state-tiering acceptance numbers. The
// long-state rows compare the steady-state probe over a large resident
// join state with the cold tier off and on — the bar is tiered ns/op
// within 5% of hot-only while the resident hot tier shrinks by >= 2x.
// The skew rows drive the Zipfian auction feed through a 2-replica
// partitioned tree under a soft state limit — the bar is that forced
// live splits hold the hottest replica below the limit where the
// no-split run latches pressure above it. bench.sh runs the benchmark
// set several times in an interleaved loop; rows take per-name medians,
// and the ns ratio is the median of per-loop pairs, so host load drift
// between samples does not decide the acceptance.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// tieringRow is one benchmark row's (median) measurements.
type tieringRow struct {
	Name        string             `json:"name"`
	Samples     int                `json:"samples"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// tieringLongState holds the long-state acceptance ratios.
type tieringLongState struct {
	// TieredVsHotNs = tiered ns/op over hot-only ns/op (<= 1.05 passes);
	// the median of interleaved per-loop sample pairs (see pairedRatio).
	TieredVsHotNs float64 `json:"tiered_vs_hot_ns"`
	// HotResident rows after the run, per mode (from the hot-resident metric).
	HotResidentHotOnly float64 `json:"hot_resident_hot_only"`
	HotResidentTiered  float64 `json:"hot_resident_tiered"`
	// HotStateReduction = hot-only resident over tiered resident (>= 2
	// passes; the tiered resident is floored at one row so a fully frozen
	// state reports a finite ratio).
	HotStateReduction float64 `json:"hot_state_reduction"`
}

// tieringSkew holds the skew acceptance numbers.
type tieringSkew struct {
	SoftLimit            float64 `json:"soft_limit"`
	NoSplitMaxReplica    float64 `json:"no_split_max_replica"`
	SplitMaxReplicaPeak  float64 `json:"split_max_replica_peak"`
	SplitMaxReplicaFinal float64 `json:"split_max_replica_final"`
	SplitsPerOp          float64 `json:"splits_per_op"`
	// SplitHoldsBelowLimit: the forced splits kept every replica at or
	// below the soft limit where the no-split run exceeded it.
	SplitHoldsBelowLimit bool `json:"split_holds_below_limit"`
}

type tieringReport struct {
	Note      string            `json:"note"`
	Env       []string          `json:"env,omitempty"`
	Sha       string            `json:"sha,omitempty"`
	Time      string            `json:"time,omitempty"`
	Rows      []tieringRow      `json:"rows"`
	LongState *tieringLongState `json:"long_state,omitempty"`
	Skew      *tieringSkew      `json:"skew,omitempty"`
	// Trajectory accumulates one slim entry per recorded run, same scheme
	// as BENCH_hotpath.json.
	Trajectory []trajectoryEntry `json:"trajectory,omitempty"`
}

// parseBenchSamples reads benchmark output keeping every sample of a
// repeated (-count > 1) benchmark, in appearance order.
func parseBenchSamples(path string) (names []string, samples map[string][]*benchMetrics, env []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	allNames, metrics, env, err := parseBenchAppend(f)
	if err != nil {
		return nil, nil, nil, err
	}
	return allNames, metrics, env, nil
}

// median returns the middle sample of vs under key, 0 when absent.
func median(vs []*benchMetrics, key func(*benchMetrics) float64) float64 {
	var xs []float64
	for _, m := range vs {
		xs = append(xs, key(m))
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// medianRow collapses one benchmark's samples into a row of medians.
func medianRow(name string, vs []*benchMetrics) tieringRow {
	row := tieringRow{
		Name:        name,
		Samples:     len(vs),
		NsPerOp:     round2(median(vs, func(m *benchMetrics) float64 { return m.NsPerOp })),
		BPerOp:      round2(median(vs, func(m *benchMetrics) float64 { return m.BPerOp })),
		AllocsPerOp: round2(median(vs, func(m *benchMetrics) float64 { return m.AllocsPerOp })),
	}
	units := map[string]bool{}
	for _, m := range vs {
		for u := range m.Extra {
			units[u] = true
		}
	}
	for u := range units {
		if row.Extra == nil {
			row.Extra = make(map[string]float64)
		}
		row.Extra[u] = round2(median(vs, func(m *benchMetrics) float64 {
			if m.Extra == nil {
				return 0
			}
			return m.Extra[u]
		}))
	}
	return row
}

// pairedRatio is the A/B statistic for interleaved samples: bench.sh
// runs the benchmark set repeatedly (-count 1 in a loop), so sample i of
// each mode ran seconds apart and shares the host's load at that moment.
// The median of the per-pair ratios num[i]/den[i] therefore cancels load
// drift that a ratio of independent medians (all num samples taken after
// all den samples) cannot. Falls back to median/median when the sample
// counts differ.
func pairedRatio(num, den []*benchMetrics) float64 {
	if len(num) != len(den) || len(num) == 0 {
		d := median(den, func(m *benchMetrics) float64 { return m.NsPerOp })
		if d == 0 {
			return 0
		}
		return median(num, func(m *benchMetrics) float64 { return m.NsPerOp }) / d
	}
	ratios := make([]float64, 0, len(num))
	for i := range num {
		if den[i].NsPerOp > 0 {
			ratios = append(ratios, num[i].NsPerOp/den[i].NsPerOp)
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2]
}

// emitTieringJSON writes the state-tiering report to stdout. When
// prevPath is set, the previous report's run history is carried forward
// and this run (stamped sha/timeStr) is appended to it.
func emitTieringJSON(currentPath, prevPath, sha, timeStr string) error {
	names, samples, env, err := parseBenchSamples(currentPath)
	if err != nil {
		return fmt.Errorf("parsing tiering results %s: %w", currentPath, err)
	}
	rep := tieringReport{
		Note: "Adaptive state tiering (BenchmarkTiering). long-state rows: steady-state probe over a " +
			"32k-row resident join state, cold tier off vs on — tiered_vs_hot_ns <= 1.05 and " +
			"hot_state_reduction >= 2 pass. skew rows: Zipfian auction feed through a 2-replica " +
			"partitioned tree under a soft state limit — the no-split run latches pressure above the " +
			"limit, the split run force-splits the hot replica (the engine watcher's policy) and must " +
			"hold every replica at or below it. Rows are per-name medians across interleaved " +
			"samples; tiered_vs_hot_ns is the median of per-loop sample-pair ratios.",
		Env:  env,
		Sha:  sha,
		Time: timeStr,
	}
	rows := make(map[string]tieringRow)
	for _, name := range names {
		if !strings.HasPrefix(name, "Tiering/") {
			continue
		}
		row := medianRow(name, samples[name])
		rows[name] = row
		rep.Rows = append(rep.Rows, row)
	}
	if len(rep.Rows) == 0 {
		return fmt.Errorf("no Tiering rows in %s", currentPath)
	}
	hot, okHot := rows["Tiering/long-state/hot-only"]
	tiered, okTiered := rows["Tiering/long-state/tiered"]
	if okHot && okTiered && hot.NsPerOp > 0 {
		ls := &tieringLongState{
			TieredVsHotNs:      round2(pairedRatio(samples["Tiering/long-state/tiered"], samples["Tiering/long-state/hot-only"])),
			HotResidentHotOnly: hot.Extra["hot-resident"],
			HotResidentTiered:  tiered.Extra["hot-resident"],
		}
		denom := ls.HotResidentTiered
		if denom < 1 {
			denom = 1
		}
		ls.HotStateReduction = round2(ls.HotResidentHotOnly / denom)
		rep.LongState = ls
	}
	noSplit, okNo := rows["Tiering/skew/no-split"]
	split, okSplit := rows["Tiering/skew/split"]
	if okNo && okSplit {
		sk := &tieringSkew{
			SoftLimit:            noSplit.Extra["soft-limit"],
			NoSplitMaxReplica:    noSplit.Extra["max-replica-final"],
			SplitMaxReplicaPeak:  split.Extra["max-replica-peak"],
			SplitMaxReplicaFinal: split.Extra["max-replica-final"],
			SplitsPerOp:          split.Extra["splits/op"],
		}
		sk.SplitHoldsBelowLimit = sk.SoftLimit > 0 &&
			sk.NoSplitMaxReplica > sk.SoftLimit &&
			sk.SplitMaxReplicaPeak <= sk.SoftLimit &&
			sk.SplitMaxReplicaFinal <= sk.SoftLimit
		rep.Skew = sk
	}
	if prevPath != "" {
		history, err := loadTrajectory(prevPath)
		if err != nil {
			return err
		}
		entry := trajectoryEntry{Sha: sha, Time: timeStr}
		for _, row := range rep.Rows {
			entry.Benchmarks = append(entry.Benchmarks, trajectoryPoint{
				Name:        row.Name,
				NsPerOp:     row.NsPerOp,
				AllocsPerOp: row.AllocsPerOp,
			})
		}
		rep.Trajectory = append(history, entry)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
