package main

// The -bench-json mode turns raw `go test -bench -benchmem` output into
// the machine-readable trajectory file BENCH_hotpath.json: one record
// per benchmark with the recorded pre-optimization baseline next to the
// current measurement and the derived speedup/allocation ratios, so a
// perf regression is a diff instead of an archaeology session.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchMetrics is one parsed benchmark result line.
type benchMetrics struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchRecord pairs the baseline and current measurements of one
// benchmark. Baseline is nil for benchmarks that did not exist before
// the optimization (e.g. the batched ingestion rows).
type benchRecord struct {
	Name     string        `json:"name"`
	Baseline *benchMetrics `json:"baseline,omitempty"`
	Current  *benchMetrics `json:"current"`
	// SpeedupNs = baseline ns/op divided by current ns/op (>1 is faster).
	SpeedupNs float64 `json:"speedup_ns,omitempty"`
	// AllocRatio = baseline allocs/op divided by current allocs/op
	// (>1 is leaner). Omitted when the current run allocates nothing.
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

type benchReport struct {
	Note       string        `json:"note"`
	Env        []string      `json:"env,omitempty"`
	Benchmarks []benchRecord `json:"benchmarks"`
	// Trajectory accumulates one slim entry per recorded run (git SHA +
	// timestamp + ns/allocs per benchmark), appended by each bench.sh
	// invocation instead of overwriting history.
	Trajectory []trajectoryEntry `json:"trajectory,omitempty"`
}

// trajectoryEntry is one historical run in a report's trajectory.
type trajectoryEntry struct {
	Sha        string            `json:"sha,omitempty"`
	Time       string            `json:"time,omitempty"`
	Benchmarks []trajectoryPoint `json:"benchmarks"`
}

// trajectoryPoint is one benchmark's headline numbers within a run.
type trajectoryPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches `BenchmarkName-8   12345   678 ns/op   9 B/op ...`.
// The GOMAXPROCS suffix is stripped so baselines recorded on different
// core counts still line up by name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench reads go-test benchmark output and returns results in
// appearance order plus the goos/goarch/cpu header lines. A benchmark
// repeated by -count keeps its last sample; use parseBenchAppend when
// every sample matters.
func parseBench(r io.Reader) (names []string, metrics map[string]*benchMetrics, env []string, err error) {
	names, samples, env, err := parseBenchAppend(r)
	if err != nil {
		return nil, nil, nil, err
	}
	metrics = make(map[string]*benchMetrics, len(samples))
	for name, vs := range samples {
		metrics[name] = vs[len(vs)-1]
	}
	return names, metrics, env, nil
}

// parseBenchAppend reads go-test benchmark output keeping every sample
// of each benchmark (one per -count repetition), in appearance order.
func parseBenchAppend(r io.Reader) (names []string, samples map[string][]*benchMetrics, env []string, err error) {
	samples = make(map[string][]*benchMetrics)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") || strings.HasPrefix(line, "cpu:") ||
			strings.HasPrefix(line, "gomaxprocs:") || strings.HasPrefix(line, "numcpu:") {
			// Concatenated runs (bench.sh's interleaved tiering loop)
			// repeat the env header; keep one copy of each line.
			line = strings.TrimSpace(line)
			seen := false
			for _, e := range env {
				if e == line {
					seen = true
					break
				}
			}
			if !seen {
				env = append(env, line)
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		bm := &benchMetrics{}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, perr := strconv.ParseFloat(fields[i], 64)
			if perr != nil {
				return nil, nil, nil, fmt.Errorf("bad metric %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				bm.NsPerOp = v
			case "B/op":
				bm.BPerOp = v
			case "allocs/op":
				bm.AllocsPerOp = v
			default:
				if bm.Extra == nil {
					bm.Extra = make(map[string]float64)
				}
				bm.Extra[unit] = v
			}
		}
		if _, dup := samples[name]; !dup {
			names = append(names, name)
		}
		samples[name] = append(samples[name], bm)
	}
	return names, samples, env, sc.Err()
}

func parseBenchFile(path string) ([]string, map[string]*benchMetrics, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// round2 keeps the derived ratios readable in the checked-in JSON.
func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// loadTrajectory reads the trajectory array out of a previously written
// report. A missing file or a pre-trajectory report (the old format had
// no such key) yields an empty history rather than an error, so the first
// appending run upgrades the file in place.
func loadTrajectory(prevPath string) ([]trajectoryEntry, error) {
	if prevPath == "" {
		return nil, nil
	}
	data, err := os.ReadFile(prevPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var prev benchReport
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, fmt.Errorf("parsing previous report %s: %w", prevPath, err)
	}
	return prev.Trajectory, nil
}

// emitBenchJSON writes the baseline-vs-current trajectory to stdout. When
// prevPath is set, the previous report's run history is carried forward
// and this run (stamped sha/timeStr) is appended to it.
func emitBenchJSON(currentPath, baselinePath, prevPath, sha, timeStr string) error {
	names, current, env, err := parseBenchFile(currentPath)
	if err != nil {
		return fmt.Errorf("parsing current results %s: %w", currentPath, err)
	}
	if len(names) == 0 {
		return fmt.Errorf("no benchmark lines in %s", currentPath)
	}
	var baseline map[string]*benchMetrics
	if baselinePath != "" {
		if _, baseline, _, err = parseBenchFile(baselinePath); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
		}
	}
	seenEnv := make(map[string]bool)
	var uniqEnv []string
	for _, e := range env {
		if !seenEnv[e] {
			seenEnv[e] = true
			uniqEnv = append(uniqEnv, e)
		}
	}
	rep := benchReport{
		Note: "Hot-path benchmark trajectory: baseline is the recorded pre-optimization tree " +
			"(scripts/bench_baseline.txt), current is the latest `make benchfull` run. " +
			"speedup_ns and alloc_ratio are baseline divided by current; >1 means faster/leaner. " +
			"trajectory appends one entry per recorded run.",
		Env: uniqEnv,
	}
	for _, name := range names {
		rec := benchRecord{Name: name, Current: current[name]}
		if base, ok := baseline[name]; ok {
			rec.Baseline = base
			if rec.Current.NsPerOp > 0 {
				rec.SpeedupNs = round2(base.NsPerOp / rec.Current.NsPerOp)
			}
			if rec.Current.AllocsPerOp > 0 {
				rec.AllocRatio = round2(base.AllocsPerOp / rec.Current.AllocsPerOp)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	if prevPath != "" {
		history, err := loadTrajectory(prevPath)
		if err != nil {
			return err
		}
		entry := trajectoryEntry{Sha: sha, Time: timeStr}
		for _, name := range names {
			entry.Benchmarks = append(entry.Benchmarks, trajectoryPoint{
				Name:        name,
				NsPerOp:     current[name].NsPerOp,
				AllocsPerOp: current[name].AllocsPerOp,
			})
		}
		rep.Trajectory = append(history, entry)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
