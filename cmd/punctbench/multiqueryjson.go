package main

// The -multiquery-json mode turns raw BenchmarkMultiQuery output into
// BENCH_multiquery.json: the shared-subplan execution acceptance
// numbers. The ladder runs N fingerprint-equal views per overlap shape
// (identical = one shared tree, mixed = 10 share groups, disjoint =
// unique tags, independent = Share off) over the same element feed. The
// headline bar is the identical ladder: ingesting for 1000 all-identical
// views must stay within 2x the single-view rate — the whole point of
// folding equal fingerprints into one physical tree. bench.sh runs the
// set in an interleaved -count loop; rows take per-name medians and the
// acceptance ratio is the median of per-loop pairs (pairedRatio), so
// host load drift between samples does not decide the verdict.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// multiQuerySharing holds the sharing acceptance numbers derived from
// the identical-overlap ladder.
type multiQuerySharing struct {
	// SingleViewNs / Shared1kNs are the median ns/op of the identical
	// ladder's endpoints (1 view vs 1000 views on one shared tree).
	SingleViewNs float64 `json:"single_view_ns"`
	Shared1kNs   float64 `json:"shared_1k_ns"`
	// Shared1kVsSingleNs = 1000-view ns/op over 1-view ns/op, the median
	// of interleaved per-loop pairs (<= 2 passes).
	Shared1kVsSingleNs float64 `json:"shared_1k_vs_single_ns"`
	SharingWithin2x    bool    `json:"sharing_within_2x"`
	// SharedVsIndependent100Ns compares 100 identical views on one
	// shared tree against 100 independent trees over the same feed —
	// the speedup sharing buys at the largest view count the
	// independent baseline still runs at.
	SharedVsIndependent100Ns float64 `json:"shared_vs_independent_100_ns,omitempty"`
}

type multiQueryReport struct {
	Note string   `json:"note"`
	Env  []string `json:"env,omitempty"`
	Sha  string   `json:"sha,omitempty"`
	Time string   `json:"time,omitempty"`
	// Rows are per-benchmark medians across the interleaved samples, in
	// first-appearance order. elements/op in Extra gives the feed size,
	// so elements/sec = elements/op / (ns/op / 1e9).
	Rows    []tieringRow       `json:"rows"`
	Sharing *multiQuerySharing `json:"sharing,omitempty"`
	// Trajectory accumulates one slim entry per recorded run, same
	// scheme as BENCH_hotpath.json.
	Trajectory []trajectoryEntry `json:"trajectory,omitempty"`
}

// emitMultiQueryJSON writes the multi-query report to stdout. When
// prevPath is set, the previous report's run history is carried forward
// and this run (stamped sha/timeStr) is appended to it.
func emitMultiQueryJSON(currentPath, prevPath, sha, timeStr string) error {
	names, samples, env, err := parseBenchSamples(currentPath)
	if err != nil {
		return fmt.Errorf("parsing multi-query results %s: %w", currentPath, err)
	}
	rep := multiQueryReport{
		Note: "shared-subplan multi-query execution: one physical tree per distinct fingerprint; " +
			"acceptance is 1000 all-identical views within 2x the single-view ingest time",
		Env:  env,
		Sha:  sha,
		Time: timeStr,
	}
	rows := make(map[string]tieringRow, len(names))
	for _, name := range names {
		if !strings.HasPrefix(name, "MultiQuery/") {
			continue
		}
		row := medianRow(name, samples[name])
		rows[name] = row
		rep.Rows = append(rep.Rows, row)
	}
	if len(rep.Rows) == 0 {
		return fmt.Errorf("no MultiQuery benchmark lines in %s", currentPath)
	}
	const (
		singleName = "MultiQuery/identical/views=1/shared"
		shared1k   = "MultiQuery/identical/views=1000/shared"
		shared100  = "MultiQuery/identical/views=100/shared"
		indep100   = "MultiQuery/independent/views=100"
	)
	if single, ok := rows[singleName]; ok {
		if big, ok := rows[shared1k]; ok {
			sh := &multiQuerySharing{
				SingleViewNs:       single.NsPerOp,
				Shared1kNs:         big.NsPerOp,
				Shared1kVsSingleNs: round2(pairedRatio(samples[shared1k], samples[singleName])),
			}
			sh.SharingWithin2x = sh.Shared1kVsSingleNs > 0 && sh.Shared1kVsSingleNs <= 2
			if _, ok := rows[indep100]; ok {
				sh.SharedVsIndependent100Ns = round2(pairedRatio(samples[shared100], samples[indep100]))
			}
			rep.Sharing = sh
		}
	}
	if prevPath != "" {
		history, err := loadTrajectory(prevPath)
		if err != nil {
			return err
		}
		entry := trajectoryEntry{Sha: sha, Time: timeStr}
		for _, row := range rep.Rows {
			entry.Benchmarks = append(entry.Benchmarks, trajectoryPoint{
				Name:        row.Name,
				NsPerOp:     row.NsPerOp,
				AllocsPerOp: row.AllocsPerOp,
			})
		}
		rep.Trajectory = append(history, entry)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
