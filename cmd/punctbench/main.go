// Punctbench regenerates every table of the reproduction suite (see
// DESIGN.md §5 and EXPERIMENTS.md): the paper's figures 1, 3, 5, 7, 8-10
// as runtime scenarios plus the §4.3 and §5 quantitative claims.
//
// Usage:
//
//	punctbench            # run all experiments
//	punctbench -e E4,E8   # run a subset
//	punctbench -md        # emit markdown tables (for EXPERIMENTS.md)
//
// It is also the JSON formatter behind scripts/bench.sh:
//
//	punctbench -bench-json current.txt -baseline scripts/bench_baseline.txt \
//	    -prev BENCH_hotpath.json -sha abc1234 -time 2026-01-01T00:00:00Z
//
// parses raw `go test -bench -benchmem` output and prints the
// baseline-vs-current trajectory consumed as BENCH_hotpath.json, carrying
// the previous report's run history forward and appending this run to it.
//
//	punctbench -partition-json partition.txt -prev BENCH_partition.json \
//	    -sha abc1234 -time ...
//
// parses BenchmarkPartitionedIngest output and prints the partitioned
// MJoin scaling report consumed as BENCH_partition.json, appending this
// run to the previous report's trajectory the same way -bench-json does.
//
//	punctbench -serving-json serving.txt -prev BENCH_serving.json \
//	    -sha abc1234 -time ...
//
// parses BenchmarkServe output (sustained producer/subscriber connection
// throughput of the punctserve front-end) and prints the serving report
// consumed as BENCH_serving.json, with the same appended trajectory.
//
//	punctbench -tiering-json tiering.txt -prev BENCH_tiering.json \
//	    -sha abc1234 -time ...
//
// parses BenchmarkTiering output (cold-tier probe parity and skew-split
// state bounds, run with -count for per-name medians) and prints the
// state-tiering report consumed as BENCH_tiering.json, with the same
// appended trajectory.
//
//	punctbench -multiquery-json multiquery.txt -prev BENCH_multiquery.json \
//	    -sha abc1234 -time ...
//
// parses BenchmarkMultiQuery output (shared-subplan execution: view
// ladders per overlap shape, run with -count for per-name medians) and
// prints the shared-execution report consumed as BENCH_multiquery.json,
// with the same appended trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"punctsafe/experiments"
)

func main() {
	only := flag.String("e", "", "comma-separated experiment ids (default: all)")
	md := flag.Bool("md", false, "emit markdown tables")
	benchJSON := flag.String("bench-json", "", "parse a `go test -bench` output file and emit trajectory JSON")
	baseline := flag.String("baseline", "", "recorded baseline bench output to pair with -bench-json")
	prev := flag.String("prev", "", "previous report (BENCH_hotpath.json or BENCH_partition.json) whose trajectory this run appends to")
	sha := flag.String("sha", "", "git commit SHA to stamp on this run's trajectory entry")
	timeStr := flag.String("time", "", "UTC timestamp to stamp on this run's trajectory entry")
	partitionJSON := flag.String("partition-json", "", "parse BenchmarkPartitionedIngest output and emit scaling JSON")
	servingJSON := flag.String("serving-json", "", "parse BenchmarkServe output and emit serving throughput JSON")
	tieringJSON := flag.String("tiering-json", "", "parse BenchmarkTiering output and emit state-tiering JSON")
	multiqueryJSON := flag.String("multiquery-json", "", "parse BenchmarkMultiQuery output and emit shared-execution JSON")
	flag.Parse()

	if *benchJSON != "" {
		if err := emitBenchJSON(*benchJSON, *baseline, *prev, *sha, *timeStr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *partitionJSON != "" {
		if err := emitPartitionJSON(*partitionJSON, *prev, *sha, *timeStr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *servingJSON != "" {
		if err := emitServingJSON(*servingJSON, *prev, *sha, *timeStr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *tieringJSON != "" {
		if err := emitTieringJSON(*tieringJSON, *prev, *sha, *timeStr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *multiqueryJSON != "" {
		if err := emitMultiQueryJSON(*multiqueryJSON, *prev, *sha, *timeStr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := map[string]func() *experiments.Table{
		"E1":  func() *experiments.Table { return experiments.E1Auction(nil) },
		"E2":  experiments.E2ChainedPurge,
		"E3":  func() *experiments.Table { return experiments.E3MJoinSafe(0) },
		"E4":  func() *experiments.Table { return experiments.E4UnsafeBinaryTree(0) },
		"E5":  func() *experiments.Table { return experiments.E5MultiAttr(0) },
		"E6":  func() *experiments.Table { return experiments.E6TPGvsGPG(nil) },
		"E7":  func() *experiments.Table { return experiments.E7SchemeChoice(nil) },
		"E8":  func() *experiments.Table { return experiments.E8EagerLazy(nil) },
		"E9":  func() *experiments.Table { return experiments.E9PunctStore(0) },
		"E10": func() *experiments.Table { return experiments.E10CheckerScaling(nil) },
		"E11": func() *experiments.Table { return experiments.E11WindowVsPunct(0) },
		"E12": func() *experiments.Table { return experiments.E12Adaptive(0) },
		"E13": func() *experiments.Table { return experiments.E13Watermarks(0) },
		"E14": func() *experiments.Table { return experiments.E14PlanChoice(0) },
		"E15": func() *experiments.Table { return experiments.E15PunctDelay(0) },
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}

	ran := 0
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		table := runners[id]()
		if *md {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.Render())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q (known: %s)\n", *only, strings.Join(order, ","))
		os.Exit(2)
	}
}
