package main

// The -partition-json mode turns raw BenchmarkPartitionedIngest output
// into BENCH_partition.json: per-row throughput plus the derived scaling
// ratios of the partitioned MJoin. The acceptance numbers read off the
// critical-path rows (deterministic span measurement: router pass + one
// replica, i.e. the parallel wall time on a host with >= P cores); the
// engine rows record the live worker-pool runtime on this host alongside.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// partitionRow is one benchmark row's measurements.
type partitionRow struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	ElementsPerOp float64 `json:"elements_per_op,omitempty"`
	// ElementsPerSec is the derived ingest throughput.
	ElementsPerSec float64 `json:"elements_per_sec,omitempty"`
}

// partitionScaling holds the throughput ratios of one row group.
type partitionScaling struct {
	// P1VsPlain compares the one-replica partition machinery against the
	// unpartitioned tree (1.0 = identical; the acceptance bar is >= 0.95,
	// i.e. within 5%).
	P1VsPlain float64 `json:"p1_vs_plain,omitempty"`
	// PNVsP1 maps "p4" to the p4-over-p1 throughput ratio, etc.
	PNVsP1 map[string]float64 `json:"pN_vs_p1,omitempty"`
}

type partitionReport struct {
	Note         string            `json:"note"`
	Env          []string          `json:"env,omitempty"`
	Sha          string            `json:"sha,omitempty"`
	Time         string            `json:"time,omitempty"`
	Rows         []partitionRow    `json:"rows"`
	CriticalPath *partitionScaling `json:"critical_path,omitempty"`
	EngineWall   *partitionScaling `json:"engine_wall,omitempty"`
	// Trajectory accumulates one slim entry per recorded run, same
	// scheme as BENCH_hotpath.json: each bench.sh invocation appends the
	// run (git SHA + timestamp + ns per row) instead of overwriting
	// history.
	Trajectory []trajectoryEntry `json:"trajectory,omitempty"`
}

// scalingFor derives the ratio set of one row group ("critical-path" or
// "engine") from the parsed metrics; nil when the group's p1 row is absent.
func scalingFor(metrics map[string]*benchMetrics, group string) *partitionScaling {
	row := func(suffix string) *benchMetrics {
		return metrics["PartitionedIngest/"+group+"/"+suffix]
	}
	p1 := row("p1")
	if p1 == nil || p1.NsPerOp <= 0 {
		return nil
	}
	sc := &partitionScaling{}
	if plain := row("plain"); plain != nil && plain.NsPerOp > 0 {
		// Throughput ratio: plain time over p1 time.
		sc.P1VsPlain = round2(plain.NsPerOp / p1.NsPerOp)
	}
	for _, p := range []string{"p2", "p4", "p8"} {
		if r := row(p); r != nil && r.NsPerOp > 0 {
			if sc.PNVsP1 == nil {
				sc.PNVsP1 = make(map[string]float64)
			}
			sc.PNVsP1[p] = round2(p1.NsPerOp / r.NsPerOp)
		}
	}
	return sc
}

// emitPartitionJSON writes the partitioned-ingest scaling report to
// stdout. When prevPath is set, the previous report's run history is
// carried forward and this run (stamped sha/timeStr) is appended to it.
func emitPartitionJSON(currentPath, prevPath, sha, timeStr string) error {
	names, metrics, env, err := parseBenchFile(currentPath)
	if err != nil {
		return fmt.Errorf("parsing partition results %s: %w", currentPath, err)
	}
	rep := partitionReport{
		Note: "Partitioned MJoin ingest scaling (BenchmarkPartitionedIngest). critical-path rows " +
			"time the serial router pass plus one hash-symmetric replica — the parallel wall time " +
			"on a host with >= P cores, measured deterministically regardless of this host's core " +
			"count; engine rows are live worker-pool wall time on this host. Ratios are throughput " +
			"(inverse time): pN_vs_p1 > 1 is faster than one partition, p1_vs_plain ~ 1 means the " +
			"machinery costs nothing at P=1.",
		Env:  env,
		Sha:  sha,
		Time: timeStr,
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "PartitionedIngest/") {
			continue
		}
		m := metrics[name]
		row := partitionRow{Name: name, NsPerOp: m.NsPerOp}
		if m.Extra != nil {
			row.ElementsPerOp = m.Extra["elements/op"]
		}
		if row.ElementsPerOp > 0 && m.NsPerOp > 0 {
			row.ElementsPerSec = round2(row.ElementsPerOp / (m.NsPerOp / 1e9))
		}
		rep.Rows = append(rep.Rows, row)
	}
	if len(rep.Rows) == 0 {
		return fmt.Errorf("no PartitionedIngest rows in %s", currentPath)
	}
	rep.CriticalPath = scalingFor(metrics, "critical-path")
	rep.EngineWall = scalingFor(metrics, "engine")
	if prevPath != "" {
		history, err := loadTrajectory(prevPath)
		if err != nil {
			return err
		}
		entry := trajectoryEntry{Sha: sha, Time: timeStr}
		for _, row := range rep.Rows {
			entry.Benchmarks = append(entry.Benchmarks, trajectoryPoint{
				Name:    row.Name,
				NsPerOp: row.NsPerOp,
			})
		}
		rep.Trajectory = append(history, entry)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
