package main

// The -serving-json mode turns raw BenchmarkServe output into
// BENCH_serving.json: per-row sustained serving throughput of the
// punctserve front-end (P producer connections × S subscriber
// connections over a unix socket, background checkpoints on). Each row
// reports the measured time per op and the derived frames-per-second
// figure; every bench.sh run appends to the trajectory so the serving
// path accrues history like the hot-path and partition reports. The
// FailoverRTO row rides the same report: its ns_per_op is the
// kill-to-first-post-failover-delivery recovery time of a warm-standby
// pair (25ms promotion timeout included).

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// servingRow is one BenchmarkServe/pP_sS row's measurements.
type servingRow struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	ElementsPerOp float64 `json:"elements_per_op,omitempty"`
	// ElementsPerSec is the sustained wire throughput: every element a
	// producer sends crosses the socket as one frame, so this is also
	// frames per second.
	ElementsPerSec float64 `json:"elements_per_sec,omitempty"`
}

type servingReport struct {
	Note       string            `json:"note"`
	Env        []string          `json:"env,omitempty"`
	Sha        string            `json:"sha,omitempty"`
	Time       string            `json:"time,omitempty"`
	Rows       []servingRow      `json:"rows"`
	Trajectory []trajectoryEntry `json:"trajectory,omitempty"`
}

// emitServingJSON writes the serving throughput report to stdout. When
// prevPath is set, the previous report's run history is carried forward
// and this run (stamped sha/timeStr) is appended to it.
func emitServingJSON(currentPath, prevPath, sha, timeStr string) error {
	names, metrics, env, err := parseBenchFile(currentPath)
	if err != nil {
		return fmt.Errorf("parsing serving results %s: %w", currentPath, err)
	}
	rep := servingReport{
		Note: "punctserve sustained throughput (BenchmarkServe): pP_sS rows run P producer " +
			"connections and S subscriber connections over a unix socket with background " +
			"checkpoints and durable producer acks on. One op = every producer pushing the " +
			"full auction feed and the server ingesting all of it; elements_per_sec is the " +
			"derived sustained frames/sec across the whole front-end. The FailoverRTO row " +
			"is the recovery time objective of a warm-standby pair: ns_per_op spans primary " +
			"kill -> standby self-promotion (25ms silence timeout) -> clients rotating over " +
			"-> first post-failover delivery at an attached subscriber.",
		Env:  env,
		Sha:  sha,
		Time: timeStr,
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "Serve/") && name != "FailoverRTO" {
			continue
		}
		m := metrics[name]
		row := servingRow{Name: name, NsPerOp: m.NsPerOp}
		if m.Extra != nil {
			row.ElementsPerOp = m.Extra["elements/op"]
		}
		if row.ElementsPerOp > 0 && m.NsPerOp > 0 {
			row.ElementsPerSec = round2(row.ElementsPerOp / (m.NsPerOp / 1e9))
		}
		rep.Rows = append(rep.Rows, row)
	}
	if len(rep.Rows) == 0 {
		return fmt.Errorf("no Serve rows in %s", currentPath)
	}
	if prevPath != "" {
		history, err := loadTrajectory(prevPath)
		if err != nil {
			return err
		}
		entry := trajectoryEntry{Sha: sha, Time: timeStr}
		for _, row := range rep.Rows {
			entry.Benchmarks = append(entry.Benchmarks, trajectoryPoint{
				Name:    row.Name,
				NsPerOp: row.NsPerOp,
			})
		}
		rep.Trajectory = append(history, entry)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
