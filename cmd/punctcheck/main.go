// Punctcheck is the compile-time safety checker as a command line tool:
// it reads a query spec (streams, join predicates, punctuation schemes),
// runs the paper's safety analysis, and explains the verdict — including
// the punctuation graph, the TPG transformation trace, the per-stream
// purge plans and, with -plans, the safe execution plans with costs.
//
// Usage:
//
//	punctcheck [-v] [-plans] [file.spec]
//
// With no file the spec is read from stdin. Exit status 0 = safe,
// 1 = unsafe, 2 = invalid input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"punctsafe/plan"
	"punctsafe/safety"
	"punctsafe/spec"
	"punctsafe/streamsql"
)

func main() {
	verbose := flag.Bool("v", false, "print the punctuation graph and TPG transformation trace")
	plans := flag.Bool("plans", false, "enumerate safe execution plans with estimated costs")
	dot := flag.String("dot", "", "emit a Graphviz graph instead of text: pg | gpg | tpg")
	sql := flag.Bool("sql", false, "input is a streamsql script (CREATE STREAM / DECLARE SCHEME / SELECT)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: punctcheck [-v] [-plans] [file.spec]\n\n")
		fmt.Fprintf(os.Stderr, "Spec format:\n")
		fmt.Fprintf(os.Stderr, "  stream S1(A:int, B:int)\n")
		fmt.Fprintf(os.Stderr, "  join S1.B = S2.B\n")
		fmt.Fprintf(os.Stderr, "  scheme S1(_, +)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	if *sql {
		src, err := io.ReadAll(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cqs, err := streamsql.ParseAndCompile(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(cqs) == 0 {
			fmt.Fprintln(os.Stderr, "streamsql: no SELECT statements")
			os.Exit(2)
		}
		anyUnsafe := false
		for i, cq := range cqs {
			fmt.Printf("-- query %d --\n", i+1)
			fmt.Print(cq.Report.Explain(cq.Query))
			if !cq.Report.Safe {
				anyUnsafe = true
			}
		}
		if anyUnsafe {
			os.Exit(1)
		}
		return
	}

	sp, err := spec.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *dot != "" {
		switch *dot {
		case "pg":
			fmt.Print(safety.BuildPG(sp.Query, sp.Schemes).Dot())
		case "gpg":
			fmt.Print(safety.BuildGPG(sp.Query, sp.Schemes).Dot())
		case "tpg":
			fmt.Print(safety.Transform(sp.Query, sp.Schemes).Dot())
		default:
			fmt.Fprintf(os.Stderr, "unknown -dot target %q (pg | gpg | tpg)\n", *dot)
			os.Exit(2)
		}
		return
	}

	rep, err := safety.Check(sp.Query, sp.Schemes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(rep.Explain(sp.Query))

	if *verbose {
		fmt.Println()
		fmt.Println("punctuation graph:", safety.BuildPG(sp.Query, sp.Schemes))
		gpg := safety.BuildGPG(sp.Query, sp.Schemes)
		if gens := gpg.GenEdges(); len(gens) > 0 {
			fmt.Println("generalized edges:")
			for _, e := range gens {
				fmt.Printf("  -> %s via %s\n", sp.Query.Stream(e.Head).Name(), e.Scheme)
			}
		}
		fmt.Println("TPG transformation:")
		fmt.Print(safety.Transform(sp.Query, sp.Schemes))
	}

	if *plans && rep.Safe {
		fmt.Println()
		model := plan.DefaultCostModel(sp.Query)
		safePlans, err := plan.EnumerateSafe(sp.Query, sp.Schemes, model)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("safe execution plans (%d):\n", len(safePlans))
		for i, p := range safePlans {
			fmt.Printf("  %d. %-36s cost: %s\n", i+1, p.Render(sp.Query), model.PlanCost(sp.Query, sp.Schemes, p))
		}
	}

	if !rep.Safe {
		os.Exit(1)
	}
}
