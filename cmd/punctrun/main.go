// Punctrun executes a continuous join query over a generated workload and
// reports the runtime behaviour the safety theory predicts: join-state
// sizes over time, purge counts, punctuation-store sizes and throughput.
//
// Usage:
//
//	punctrun -scenario auction|netmon|sensors|chain|cycle|star|clique [flags]
//	punctrun -spec query.spec [flags]
//	punctrun -sql script.sql [flags]
//
// Flags tune the workload size, the purge strategy (eager/lazy batch),
// punctuation lifespans, §5.1 punctuation purging, Zipf skew, CSV
// timeline export, and whether punctuations are generated at all (the
// unsafe baseline). -cpuprofile and -memprofile capture pprof profiles
// of the ingest loop and the post-run heap for go tool pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"punctsafe/engine"
	"punctsafe/exec"
	"punctsafe/internal/faultinject"
	"punctsafe/query"
	"punctsafe/spec"
	"punctsafe/stream"
	"punctsafe/streamsql"
	"punctsafe/workload"
)

func main() {
	var (
		scenario     = flag.String("scenario", "auction", "auction | netmon | sensors | chain | cycle | star | clique")
		size         = flag.Int("n", 2000, "scenario size (items/flows/epochs/rounds)")
		k            = flag.Int("k", 3, "stream count for synthetic topologies")
		noPunct      = flag.Bool("nopunct", false, "generate no punctuations (unbounded baseline)")
		batch        = flag.Int("batch", 1, "purge batch size (1 = eager)")
		lifespan     = flag.Uint64("lifespan", 0, "punctuation lifespan in elements (0 = forever)")
		purgePunct   = flag.Bool("purgepunct", false, "enable §5.1 punctuation purging")
		interval     = flag.Int("interval", 0, "print state sizes every N elements (0 = summary only)")
		zipf         = flag.Float64("zipf", 0, "Zipf skew for synthetic value draws; for -scenario auction, skews bids-per-item heavy-tailed")
		specFile     = flag.String("spec", "", "run the query declared in this spec file on a generated closed workload")
		sqlFile      = flag.String("sql", "", "run the first query of this streamsql script on a generated closed workload")
		csvPath      = flag.String("csv", "", "write a state/punctuation/result timeline as CSV to this file")
		parallel     = flag.Bool("parallel", false, "ingest through the sharded per-query runtime (-interval reads race-safe snapshots; -csv is unsupported)")
		onError      = flag.String("on-error", "fail", "error policy for the sharded runtime: fail | drop | quarantine (needs -parallel)")
		deadLetter   = flag.Int("dead-letter", 0, "max offenders retained under -on-error quarantine (0 = default bound)")
		enforce      = flag.Bool("enforce", false, "fail tuples that violate an already-seen punctuation promise")
		ckptPath     = flag.String("checkpoint", "", "durable checkpoint file; written atomically every -checkpoint-every elements and at end of feed (needs -parallel)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint every N elements (0 = only at end of feed; needs -checkpoint)")
		restore      = flag.Bool("restore", false, "restore runtime state from -checkpoint and resume the feed at the recorded offset")
		partitions   = flag.Int("partitions", 1, "hash-partitioned join replicas per query (1 = single tree; needs a co-partitionable query for >1)")
		coldAfter    = flag.Uint64("cold-after", 0, "freeze join-state rows older than N elements into the compacted cold tier (0 = all-hot)")
		softLimit    = flag.Int("soft-state-limit", 0, "soft per-replica state bound: crossing it forces a purge round and reports pressure (0 = off)")
		maxSplit     = flag.Int("max-partition-split", 0, "live-split a pressured hot replica at most N times (needs -parallel, -partitions > 1 and -soft-state-limit)")
		chaosLate    = flag.Int("chaos-late", 0, "inject N late tuples behind their covering punctuation (seeded; pair with -enforce)")
		views        = flag.Int("views", 1, "register N fingerprint-equal views of the scenario query (shared-subplan execution: one physical tree serves all N)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the ingest loop to this file (go tool pprof)")
		memProfile   = flag.String("memprofile", "", "write a post-run heap profile to this file (go tool pprof)")
		blockProfile = flag.String("blockprofile", "", "write a goroutine-blocking profile of the ingest loop to this file (channel waits in the parallel front-end; go tool pprof)")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile of the ingest loop to this file (ingress/router lock contention; go tool pprof)")
	)
	flag.Parse()

	policy, err := engine.ParseErrorPolicy(*onError)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if policy != engine.Fail && !*parallel {
		fmt.Fprintln(os.Stderr, "punctrun: -on-error drop|quarantine needs the sharded runtime (add -parallel)")
		os.Exit(2)
	}
	if (*ckptPath != "" || *restore) && !*parallel {
		fmt.Fprintln(os.Stderr, "punctrun: -checkpoint/-restore need the sharded runtime (add -parallel)")
		os.Exit(2)
	}
	if (*restore || *ckptEvery > 0) && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "punctrun: -restore and -checkpoint-every need -checkpoint <path>")
		os.Exit(2)
	}
	if *partitions < 1 {
		fmt.Fprintf(os.Stderr, "punctrun: -partitions %d: need at least 1\n", *partitions)
		os.Exit(2)
	}
	// -partitions 1 is the standard single-tree path (engine Partitions: 0);
	// only >1 engages the hash-partitioned replicas.
	enginePartitions := 0
	if *partitions > 1 {
		enginePartitions = *partitions
	}
	if *maxSplit > 0 && (!*parallel || enginePartitions == 0 || *softLimit <= 0) {
		fmt.Fprintln(os.Stderr, "punctrun: -max-partition-split needs -parallel, -partitions > 1 and -soft-state-limit > 0")
		os.Exit(2)
	}

	q, schemes, inputs, err := buildScenario(*scenario, *size, *k, !*noPunct, *zipf, *specFile, *sqlFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	injectedLate := 0
	if *chaosLate > 0 {
		feed := make([]faultinject.Item, len(inputs))
		for i, in := range inputs {
			feed[i] = faultinject.Item(in)
		}
		feed, rep := faultinject.InjectLate(feed, *chaosLate, 1)
		injectedLate = rep.Late
		inputs = make([]workload.Input, len(feed))
		for i, it := range feed {
			inputs[i] = workload.Input(it)
		}
	}

	d := engine.New()
	for _, s := range schemes.All() {
		d.RegisterScheme(s)
	}
	results := 0
	pressures, freezes, splits := 0, 0, 0
	opts := engine.Options{
		PurgeBatch:         *batch,
		PunctLifespan:      *lifespan,
		PurgePunctuations:  *purgePunct,
		EnforcePromises:    *enforce,
		Partitions:         enginePartitions,
		ColdAfter:          *coldAfter,
		SoftStateLimit:     *softLimit,
		MaxPartitionSplits: *maxSplit,
		// Share is a no-op for a single view; with -views > 1 it folds
		// every fingerprint-equal registration onto one physical tree.
		Share:    *views > 1,
		OnResult: func(stream.Tuple) { results++ },
		OnPressure: func(ev exec.PressureEvent) {
			pressures++
			freezes += ev.Frozen
			where := "single tree"
			if ev.Partition >= 0 {
				where = fmt.Sprintf("partition %d", ev.Partition)
			}
			fmt.Printf("pressure: %s state %d over soft limit %d; purge relieved to %d (%d rows frozen cold)\n",
				where, ev.State, ev.SoftLimit, ev.Relieved, ev.Frozen)
		},
		OnRepartition: func(ev engine.RepartitionEvent) {
			if ev.Err != nil {
				fmt.Printf("repartition: split of hot partition %d refused: %v\n", ev.Hot, ev.Err)
				return
			}
			splits++
			fmt.Printf("repartition: hot partition %d live-split into new replica %d (%d total)\n",
				ev.Hot, ev.New, ev.Parts)
		},
	}
	reg, err := d.Register(*scenario, q, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Extra views share the driver's executor config but observe their
	// deliveries passively (no callbacks), so fan-out to them is the
	// shared-delivery-log path: per-element cost independent of -views.
	viewRegs := make([]*engine.Registered, 0, *views-1)
	for v := 1; v < *views; v++ {
		vopts := opts
		vopts.OnResult, vopts.OnPressure, vopts.OnRepartition = nil, nil, nil
		vreg, err := d.Register(fmt.Sprintf("view%d", v), q, vopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		viewRegs = append(viewRegs, vreg)
	}
	if *partitions > 1 && reg.Partitions() == 0 {
		fmt.Fprintf(os.Stderr, "punctrun: warning: -partitions %d unavailable, running single-tree: %s\n",
			*partitions, reg.PartitionReason)
	}
	fmt.Printf("query:   %s\n", q)
	fmt.Printf("schemes: %s\n", schemes)
	fmt.Printf("plan:    %s\n", reg.Plan.Render(q))
	if p := reg.Partitions(); p > 0 {
		fmt.Printf("parts:   %d hash-partitioned replicas\n", p)
	}
	if *views > 1 {
		fmt.Printf("views:   %d fingerprint-equal views, %d physical tree(s)\n", *views, d.PhysicalTrees())
	}
	st := workload.Summarize(inputs)
	fmt.Printf("feed:    %d tuples, %d punctuations\n", st.Tuples, st.Puncts)
	if injectedLate > 0 {
		fmt.Printf("chaos:   %d late tuples injected (policy %s)\n", injectedLate, policy)
	}
	fmt.Println()

	if *interval > 0 {
		fmt.Printf("%12s %12s %12s %12s\n", "element", "state", "puncts", "results")
	}
	var timeline *exec.Timeline
	if *csvPath != "" {
		if *parallel {
			fmt.Fprintln(os.Stderr, "punctrun: -csv requires the sequential path (drop -parallel)")
			os.Exit(2)
		}
		every := *interval
		if every <= 0 {
			every = 100
		}
		timeline = &exec.Timeline{Every: every}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *blockProfile != "" {
		// Rate 1 records every blocking event: the runs are short and the
		// interesting signal is where the parallel front-end's goroutines
		// park (mailbox sends, barrier waits), not a sampled subset.
		runtime.SetBlockProfileRate(1)
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	start := time.Now()
	var deadLetters *engine.DeadLetterSnapshot
	if *parallel {
		rtOpts := engine.RuntimeOptions{
			Buffer:          256,
			OnError:         policy,
			DeadLetterLimit: *deadLetter,
		}
		var rt *engine.Runtime
		first := 0
		if *restore {
			f, err := os.Open(*ckptPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rt, err = d.RestoreRuntime(f, rtOpts)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			first = int(rt.ResumeOffset("feed"))
			if first > len(inputs) {
				fmt.Fprintf(os.Stderr, "punctrun: checkpoint offset %d is past the %d-element feed\n", first, len(inputs))
				os.Exit(1)
			}
			fmt.Printf("restore: resuming at element %d of %d (from %s)\n", first, len(inputs), *ckptPath)
		} else {
			rt = d.RunSharded(rtOpts)
		}
		checkpoints := 0
		for i := first; i < len(inputs); i++ {
			in := inputs[i]
			if err := rt.SendAt("feed", in.Stream, in.Elem, int64(i)+1); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *ckptPath != "" && *ckptEvery > 0 && (i+1)%*ckptEvery == 0 {
				if err := rt.CheckpointFile(*ckptPath); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				checkpoints++
			}
			if *interval > 0 && (i+1)%*interval == 0 {
				snaps, err := rt.Stats(*scenario)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				state, puncts, res := 0, 0, uint64(0)
				for _, st := range snaps {
					state += st.TotalState()
					puncts += st.TotalPunctStore()
				}
				res = snaps[len(snaps)-1].Results
				fmt.Printf("%12d %12d %12d %12d\n", i+1, state, puncts, res)
			}
		}
		if *ckptPath != "" {
			// Final snapshot so a later -restore resumes past the whole feed.
			if err := rt.CheckpointFile(*ckptPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			checkpoints++
			fmt.Printf("checkpoints:        %d written -> %s\n", checkpoints, *ckptPath)
		}
		rt.Close()
		if err := rt.Wait(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dl := rt.DeadLetters()
		deadLetters = &dl
	} else {
		for i, in := range inputs {
			if err := d.Push(in.Stream, in.Elem); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if timeline != nil {
				timeline.ObserveTotals(reg.TotalState(), reg.TotalPunctStore(), results)
			}
			if *interval > 0 && (i+1)%*interval == 0 {
				fmt.Printf("%12d %12d %12d %12d\n",
					i+1, reg.TotalState(), reg.TotalPunctStore(), results)
			}
		}
		if err := d.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	writeLookupProfile := func(path, name string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	writeLookupProfile(*blockProfile, "block")
	writeLookupProfile(*mutexProfile, "mutex")
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report live join/punctuation state, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Println()
	fmt.Printf("results:            %d\n", results)
	fmt.Printf("elapsed:            %v (%.0f elements/s)\n",
		elapsed.Round(time.Millisecond), float64(len(inputs))/elapsed.Seconds())
	if *views > 1 {
		fmt.Printf("views:              %d fingerprint-equal views over %d physical tree(s)\n",
			*views, d.PhysicalTrees())
		printed := 0
		fmt.Printf("  %-16s delivered %d\n", reg.Name, reg.Delivered())
		for _, vreg := range viewRegs {
			if printed >= 15 {
				fmt.Printf("  ... (%d more views)\n", len(viewRegs)-printed)
				break
			}
			fmt.Printf("  %-16s delivered %d (%d results)\n", vreg.Name, vreg.Delivered(), len(vreg.Results))
			printed++
		}
	}
	fmt.Printf("final state:        %d tuples\n", reg.TotalState())
	fmt.Printf("max state:          %d tuples\n", reg.MaxState())
	fmt.Printf("final punct store:  %d\n", reg.TotalPunctStore())
	if *coldAfter > 0 || pressures > 0 {
		cold := 0
		for _, st := range reg.StatsSnapshot() {
			cold += st.TotalColdState()
		}
		fmt.Printf("cold tier:          %d tuples resident; %d pressure events (%d rows frozen under pressure)\n",
			cold, pressures, freezes)
	}
	if *maxSplit > 0 {
		fmt.Printf("repartitions:       %d live splits (%d replicas now)\n", splits, reg.Partitions())
	}
	for i, st := range reg.StatsSnapshot() {
		fmt.Printf("operator %d:         %s\n", i, st)
	}
	if deadLetters != nil && policy != engine.Fail {
		fmt.Printf("dead letters:       %d absorbed (%d retained, %d evicted)\n",
			deadLetters.Total, len(deadLetters.Entries), deadLetters.Evicted)
		for name, n := range deadLetters.ByStream {
			if name == "" {
				name = "<wire>"
			}
			fmt.Printf("  stream %-10s %d\n", name, n)
		}
	}
	if timeline != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := timeline.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("timeline:           %d samples -> %s\n", len(timeline.Samples), *csvPath)
	}
}

func buildScenario(name string, n, k int, punct bool, zipf float64, specFile, sqlFile string) (*query.CJQ, *stream.SchemeSet, []workload.Input, error) {
	if specFile != "" || sqlFile != "" {
		return declaredScenario(n, punct, zipf, specFile, sqlFile)
	}
	switch name {
	case "auction":
		q := workload.AuctionQuery()
		schemes := workload.AuctionSchemes()
		inputs := workload.Auction(workload.AuctionConfig{
			Items: n, MaxBidsPerItem: 8, OpenWindow: 6, Skew: zipf,
			PunctuateItems: punct, PunctuateClose: punct, Seed: 1,
		})
		return q, schemes, inputs, nil
	case "netmon":
		q := workload.NetMonQuery()
		schemes := workload.NetMonSchemes()
		inputs := workload.NetMon(workload.NetMonConfig{
			Flows: n, MaxPktsPerFlow: 10, OpenWindow: 8,
			PunctuateFlowEnd: punct, PunctuateConn: punct, Seed: 1,
		})
		return q, schemes, inputs, nil
	case "sensors":
		q := workload.SensorQuery()
		schemes := workload.SensorSchemes()
		inputs := workload.Sensor(workload.SensorConfig{
			Epochs: n, ReadingsPerEpoch: 2, Disorder: 8,
			HeartbeatEvery: 4, Heartbeats: punct, Seed: 1,
		})
		return q, schemes, inputs, nil
	case "chain", "cycle", "star", "clique":
		q, err := workload.SyntheticQuery(workload.Topology(name), k)
		if err != nil {
			return nil, nil, nil, err
		}
		schemes := workload.AllJoinAttrSchemes(q)
		frac := 1.0
		if !punct {
			frac = 0
		}
		inputs := workload.Closed(q, schemes, workload.ClosedConfig{
			Rounds: n, TuplesPerRound: 8, Window: 4, PunctFraction: frac, ZipfS: zipf, Seed: 1,
		})
		return q, schemes, inputs, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown scenario %q", name)
	}
}

// declaredScenario loads a user-declared query (spec or streamsql) and
// generates a closed workload for it.
func declaredScenario(n int, punct bool, zipf float64, specFile, sqlFile string) (*query.CJQ, *stream.SchemeSet, []workload.Input, error) {
	var q *query.CJQ
	var schemes *stream.SchemeSet
	switch {
	case specFile != "":
		f, err := os.Open(specFile)
		if err != nil {
			return nil, nil, nil, err
		}
		defer f.Close()
		sp, err := spec.Parse(f)
		if err != nil {
			return nil, nil, nil, err
		}
		q, schemes = sp.Query, sp.Schemes
	default:
		src, err := os.ReadFile(sqlFile)
		if err != nil {
			return nil, nil, nil, err
		}
		cqs, err := streamsql.ParseAndCompile(string(src))
		if err != nil {
			return nil, nil, nil, err
		}
		if len(cqs) == 0 {
			return nil, nil, nil, fmt.Errorf("script has no SELECT statement")
		}
		script, _ := streamsql.Parse(string(src))
		q, schemes = cqs[0].Query, script.Schemes
	}
	// Closed workloads need integer join attributes; reject others early.
	for i := 0; i < q.N(); i++ {
		for _, a := range q.JoinAttrs(i) {
			if q.Stream(i).Attr(a).Kind != stream.KindInt {
				return nil, nil, nil, fmt.Errorf("closed workload generation needs int join attributes (%s.%s is %s)",
					q.Stream(i).Name(), q.Stream(i).Attr(a).Name, q.Stream(i).Attr(a).Kind)
			}
		}
	}
	frac := 1.0
	if !punct {
		frac = 0
	}
	inputs := workload.Closed(q, schemes, workload.ClosedConfig{
		Rounds: n, TuplesPerRound: 8, Window: 4, PunctFraction: frac, ZipfS: zipf, Seed: 1,
	})
	return q, schemes, inputs, nil
}
