// Punctserve runs the network serving front-end: a punctuated-stream
// server that accepts producer connections pushing wire frames and
// subscriber connections receiving the query's results and punctuations
// over TCP or a unix socket (see DESIGN.md §"Serving & HA model").
//
// Usage:
//
//	punctserve -addr tcp://127.0.0.1:7341 -scenario auction \
//	    -checkpoint /var/tmp/auction.ckpt -checkpoint-every 2s
//
// With -checkpoint set the server restores from the file when it exists
// (crash failover: restart with the same flags and clients resume),
// checkpoints on the timer, and acks producers with durable offsets.
// SIGINT/SIGTERM trigger a graceful drain: producers are cut off, the
// runtime flushes, a final checkpoint is written, and subscribers
// receive everything up to the cut plus a clean end-of-stream marker.
//
// Warm-standby replication (DESIGN.md §3.10): start a primary with
// -repl-listen and a standby with -replica-of pointing at it. The
// standby mirrors the primary's ingress feed and promotes itself after
// -promote-timeout of primary silence; -advertise tells clients where
// to find this server when the peer redirects them. -tls-cert/-tls-key
// wrap the client listener in TLS and -auth-token requires producers,
// subscribers, replicas and probes to present a shared secret.
//
// `punctserve -probe addr` connects once, prints the peer's role,
// fencing epoch and committed per-source offsets, and exits 0 for a
// primary, 3 otherwise — usable as a liveness/role health check.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"punctsafe/engine"
	"punctsafe/exec"
	"punctsafe/query"
	"punctsafe/server"
	"punctsafe/stream"
	"punctsafe/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "tcp://127.0.0.1:7341", "listen address: tcp://host:port or unix:///path")
		scenario   = flag.String("scenario", "auction", "query to serve: auction | netmon | sensors")
		views      = flag.Int("views", 1, "serve N fingerprint-equal views of the scenario query (shared-subplan execution: one physical tree serves all N; subscribers attach by view name view1..viewN-1)")
		partitions = flag.Int("partitions", 1, "hash-partitioned join replicas (1 = single tree)")
		coldAfter  = flag.Uint64("cold-after", 0, "freeze join-state rows older than N elements into the compacted cold tier (0 = all-hot)")
		softLimit  = flag.Int("soft-state-limit", 0, "soft per-replica state bound: crossing it forces a purge round and logs pressure (0 = off)")
		maxSplit   = flag.Int("max-partition-split", 0, "live-split a pressured hot replica at most N times (needs -partitions > 1 and -soft-state-limit)")
		onError    = flag.String("on-error", "quarantine", "runtime error policy: fail | drop | quarantine")
		enforce    = flag.Bool("enforce", false, "fail tuples that violate an already-seen punctuation promise")
		ckptPath   = flag.String("checkpoint", "", "durable checkpoint file (enables restore-at-start, periodic checkpoints, producer acks)")
		ckptEvery  = flag.Duration("checkpoint-every", 2*time.Second, "background checkpoint interval (needs -checkpoint)")
		queue      = flag.Int("queue", 256, "per-subscriber pending backlog before the slow-consumer policy applies")
		retain     = flag.Int("retain", 1024, "recent deliveries retained per query for reconnecting subscribers")
		slow       = flag.String("slow", "block", "slow-consumer policy: block | drop | disconnect")
		drain      = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound on subscriber drain")
		quiet      = flag.Bool("quiet", false, "suppress connection logs")

		replListen = flag.String("repl-listen", "", "replication listen address for warm standbys (tcp://host:port or unix:///path)")
		replicaOf  = flag.String("replica-of", "", "run as warm standby of the primary at this replication address")
		promote    = flag.Duration("promote-timeout", 3*time.Second, "standby self-promotes after this much primary silence (0 = never)")
		advertise  = flag.String("advertise", "", "address clients should be redirected to for this server (defaults to -addr)")
		tlsCert    = flag.String("tls-cert", "", "serve the client listener over TLS with this certificate (needs -tls-key)")
		tlsKey     = flag.String("tls-key", "", "private key for -tls-cert")
		authToken  = flag.String("auth-token", "", "shared secret all clients, replicas and probes must present")
		probeAddr  = flag.String("probe", "", "probe the server at this address (role/epoch/offsets) and exit; honours -auth-token and -probe-tls")
		probeTLS   = flag.Bool("probe-tls", false, "probe over TLS, skipping certificate verification")
	)
	flag.Parse()

	if *probeAddr != "" {
		os.Exit(probe(*probeAddr, *authToken, *probeTLS))
	}

	policy, err := engine.ParseErrorPolicy(*onError)
	if err != nil {
		fatal(err)
	}
	slowPolicy, err := server.ParseSlowPolicy(*slow)
	if err != nil {
		fatal(err)
	}
	q, schemes, err := servedScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	enginePartitions := 0
	if *partitions > 1 {
		enginePartitions = *partitions
	}
	if *maxSplit > 0 && (enginePartitions == 0 || *softLimit <= 0) {
		fatal(fmt.Errorf("punctserve: -max-partition-split needs -partitions > 1 and -soft-state-limit > 0"))
	}
	schemas := make([]*stream.Schema, q.N())
	for i := range schemas {
		schemas[i] = q.Stream(i)
	}

	if (*tlsCert == "") != (*tlsKey == "") {
		fatal(fmt.Errorf("punctserve: -tls-cert and -tls-key must be set together"))
	}
	l, err := listen(*addr)
	if err != nil {
		fatal(err)
	}
	if *tlsCert != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			fatal(err)
		}
		l = tls.NewListener(l, &tls.Config{Certificates: []tls.Certificate{cert}})
	}
	var rl net.Listener
	if *replListen != "" {
		rl, err = listen(*replListen)
		if err != nil {
			fatal(err)
		}
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "punctserve: "+format+"\n", args...)
	}
	var viewRegs []*engine.Registered
	var trees int
	cfg := server.Config{
		Listener: l,
		Build: func(d *engine.DSMS) error {
			for _, s := range schemes.All() {
				d.RegisterScheme(s)
			}
			opts := engine.Options{
				EnforcePromises:    *enforce,
				Partitions:         enginePartitions,
				ColdAfter:          *coldAfter,
				SoftStateLimit:     *softLimit,
				MaxPartitionSplits: *maxSplit,
				// With -views > 1 every registration below folds onto one
				// shared physical tree (equal fingerprints).
				Share: *views > 1,
				OnPressure: func(ev exec.PressureEvent) {
					where := "single tree"
					if ev.Partition >= 0 {
						where = fmt.Sprintf("partition %d", ev.Partition)
					}
					logf("pressure: %s state %d over soft limit %d; relieved to %d (%d rows frozen cold)",
						where, ev.State, ev.SoftLimit, ev.Relieved, ev.Frozen)
				},
				OnRepartition: func(ev engine.RepartitionEvent) {
					if ev.Err != nil {
						logf("repartition: split of hot partition %d refused: %v", ev.Hot, ev.Err)
						return
					}
					logf("repartition: hot partition %d live-split into new replica %d (%d total)",
						ev.Hot, ev.New, ev.Parts)
				},
			}
			reg, err := d.Register(*scenario, q, opts)
			if err != nil {
				return err
			}
			viewRegs = viewRegs[:0]
			viewRegs = append(viewRegs, reg)
			vopts := opts
			vopts.OnPressure, vopts.OnRepartition = nil, nil
			for v := 1; v < *views; v++ {
				vreg, err := d.Register(fmt.Sprintf("view%d", v), q, vopts)
				if err != nil {
					return err
				}
				viewRegs = append(viewRegs, vreg)
			}
			trees = d.PhysicalTrees()
			return nil
		},
		Schemas:         schemas,
		Runtime:         engine.RuntimeOptions{OnError: policy},
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		QueueLimit:      *queue,
		Retain:          *retain,
		Slow:            slowPolicy,
		DrainTimeout:    *drain,
		AuthToken:       *authToken,
		Advertise:       *advertise,
		ReplListener:    rl,
		ReplicaOf:       *replicaOf,
		PromoteTimeout:  *promote,
	}
	if !*quiet {
		// The server package prefixes its own messages with "punctserve:".
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	role := "primary"
	if *replicaOf != "" {
		role = fmt.Sprintf("standby of %s", *replicaOf)
		go func() {
			<-srv.Promoted()
			logf("promoted to primary (epoch %d)", srv.Epoch())
		}()
	}
	logf("serving %q on %s as %s (queue %d, retain %d, slow=%s)", *scenario, srv.Addr(), role, *queue, *retain, slowPolicy)
	if *views > 1 {
		logf("views: %d fingerprint-equal views over %d physical tree(s)", *views, trees)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		logf("%s: draining (bounded by %v)", sig, *drain)
		srv.Shutdown()
	}()

	if err := srv.Wait(); err != nil {
		fatal(err)
	}
	if *views > 1 {
		logf("views: %d over %d physical tree(s); per-view delivery totals at drain:", *views, trees)
		printed := 0
		for _, vreg := range viewRegs {
			if printed >= 16 {
				logf("  ... (%d more views)", len(viewRegs)-printed)
				break
			}
			logf("  %-16s delivered %d", vreg.Name, vreg.Delivered())
			printed++
		}
	}
	logf("drained cleanly")
}

// listen opens the flag-specified listener. A unix path is unlinked
// first so a restart after kill -9 does not trip over the stale socket.
func listen(addr string) (net.Listener, error) {
	switch {
	case strings.HasPrefix(addr, "unix://"):
		path := strings.TrimPrefix(addr, "unix://")
		os.Remove(path)
		return net.Listen("unix", path)
	case strings.HasPrefix(addr, "tcp://"):
		return net.Listen("tcp", strings.TrimPrefix(addr, "tcp://"))
	default:
		return net.Listen("tcp", addr)
	}
}

func servedScenario(name string) (*query.CJQ, *stream.SchemeSet, error) {
	switch name {
	case "auction":
		return workload.AuctionQuery(), workload.AuctionSchemes(), nil
	case "netmon":
		return workload.NetMonQuery(), workload.NetMonSchemes(), nil
	case "sensors":
		return workload.SensorQuery(), workload.SensorSchemes(), nil
	default:
		return nil, nil, fmt.Errorf("unknown scenario %q (auction | netmon | sensors)", name)
	}
}

// probe connects once to addr, prints the peer's role, fencing epoch
// and committed per-source offsets, and returns the process exit code:
// 0 for a reachable primary, 3 for a standby or fenced peer, 2 on error.
func probe(addr, token string, useTLS bool) int {
	d := server.Dialer{Addr: addr, AuthToken: token}
	if useTLS {
		d.TLS = &tls.Config{InsecureSkipVerify: true}
	}
	h, err := d.Probe()
	if err != nil {
		fmt.Fprintln(os.Stderr, "punctserve: probe:", err)
		return 2
	}
	fmt.Printf("role=%s epoch=%d\n", h.Role, h.Epoch)
	srcs := make([]string, 0, len(h.Offsets))
	for src := range h.Offsets {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		fmt.Printf("source %s committed %d\n", src, h.Offsets[src])
	}
	if h.Role != "primary" {
		return 3
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "punctserve:", err)
	os.Exit(2)
}
