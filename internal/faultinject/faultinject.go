// Package faultinject is the chaos harness for the fault-isolated
// runtime: it manufactures exactly-accounted contract violations — late
// tuples behind their covering punctuation, malformed elements, corrupt
// and truncated wire frames, flaky transports — so tests can assert that
// an error policy loses precisely the injected offenders and nothing
// else. Every injector is driven by a seeded RNG and returns a Report of
// what it actually injected.
package faultinject

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"punctsafe/stream"
)

// Item is one tagged element of a multiplexed feed (the shape the engine
// routes; kept local so this package stays import-light).
type Item struct {
	Stream string
	Elem   stream.Element
}

// Report tallies what a chaos pass injected.
type Report struct {
	// Late counts tuples re-sent after a punctuation covering them on
	// their own stream (promise violations under EnforcePromises).
	Late int
	// Malformed counts syntactically broken elements (wrong arity).
	Malformed int
	// DupPuncts counts duplicated punctuations (benign: stores dedup).
	DupPuncts int
	// Swapped counts same-stream adjacent tuple swaps (benign: the join
	// result multiset is insertion-order independent).
	Swapped int
	// Garbled counts frames whose payload was overwritten in place
	// (boundary intact, payload undecodable).
	Garbled int
	// Unknown counts injected frames naming an unregistered stream.
	Unknown int
	// Truncated counts truncated frame prefixes appended at the wire's
	// tail (0 or 1).
	Truncated int
}

// Total returns the number of injected offenders a lenient runtime is
// expected to dead-letter (benign injections excluded).
func (r Report) Total() int {
	return r.Late + r.Malformed + r.Garbled + r.Unknown + r.Truncated
}

// InjectLate re-sends up to n already-covered tuples immediately after
// the punctuation that covers them, on the same stream — the canonical
// broken-promise fault. It returns the new feed and the number actually
// injected (fewer when the feed has too few coverable tuples).
func InjectLate(items []Item, n int, seed int64) ([]Item, Report) {
	rng := rand.New(rand.NewSource(seed))
	type candidate struct {
		after int // feed index of the covering punctuation
		item  Item
	}
	var cands []candidate
	past := make(map[string][]stream.Tuple)
	for i, it := range items {
		if !it.Elem.IsPunct() {
			past[it.Stream] = append(past[it.Stream], it.Elem.Tuple())
			continue
		}
		p := it.Elem.Punct()
		for _, t := range past[it.Stream] {
			if p.Matches(t) {
				cands = append(cands, candidate{after: i, item: Item{Stream: it.Stream, Elem: stream.TupleElement(t)}})
				break // one candidate per punctuation keeps counts simple
			}
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > n {
		cands = cands[:n]
	}
	inject := make(map[int][]Item, len(cands))
	for _, c := range cands {
		inject[c.after] = append(inject[c.after], c.item)
	}
	out := make([]Item, 0, len(items)+len(cands))
	for i, it := range items {
		out = append(out, it)
		out = append(out, inject[i]...)
	}
	return out, Report{Late: len(cands)}
}

// InjectMalformed inserts n wrong-arity tuples on the named stream at
// seeded positions (each fails schema validation at the operator).
func InjectMalformed(items []Item, streamName string, n int, seed int64) ([]Item, Report) {
	rng := rand.New(rand.NewSource(seed))
	bad := Item{Stream: streamName, Elem: stream.TupleElement(stream.NewTuple(stream.Str("chaos")))}
	out := append([]Item(nil), items...)
	for i := 0; i < n; i++ {
		at := rng.Intn(len(out) + 1)
		out = append(out[:at], append([]Item{bad}, out[at:]...)...)
	}
	return out, Report{Malformed: n}
}

// DuplicatePuncts re-sends up to n punctuations right after themselves —
// benign chaos the punctuation store must absorb without double-purging.
func DuplicatePuncts(items []Item, n int, seed int64) ([]Item, Report) {
	rng := rand.New(rand.NewSource(seed))
	var idxs []int
	for i, it := range items {
		if it.Elem.IsPunct() {
			idxs = append(idxs, i)
		}
	}
	rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
	if len(idxs) > n {
		idxs = idxs[:n]
	}
	dup := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		dup[i] = true
	}
	out := make([]Item, 0, len(items)+len(idxs))
	for i, it := range items {
		out = append(out, it)
		if dup[i] {
			out = append(out, it)
		}
	}
	return out, Report{DupPuncts: len(idxs)}
}

// SwapAdjacentTuples performs up to n swaps of adjacent same-stream
// tuple pairs — benign reordering (join results are a multiset).
func SwapAdjacentTuples(items []Item, n int, seed int64) ([]Item, Report) {
	rng := rand.New(rand.NewSource(seed))
	out := append([]Item(nil), items...)
	var pairs []int
	for i := 0; i+1 < len(out); i++ {
		if out[i].Stream == out[i+1].Stream && !out[i].Elem.IsPunct() && !out[i+1].Elem.IsPunct() {
			pairs = append(pairs, i)
			i++ // keep swap sites disjoint
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	if len(pairs) > n {
		pairs = pairs[:n]
	}
	for _, i := range pairs {
		out[i], out[i+1] = out[i+1], out[i]
	}
	return out, Report{Swapped: len(pairs)}
}

// WireChaosConfig selects the wire-level faults BuildWire injects. All
// injections are additive copies: every original frame survives intact,
// so a lenient reader should recover the full original feed and report
// exactly Report.Total() faults.
type WireChaosConfig struct {
	// GarbleEvery inserts, after every k-th frame, a copy of it whose
	// payload bytes are overwritten (frame boundary stays parseable).
	GarbleEvery int
	// UnknownEvery inserts, after every k-th frame, a well-formed frame
	// naming an unregistered stream.
	UnknownEvery int
	// TruncateTail appends a truncated prefix of the last frame at the
	// end of the wire (a mid-frame connection cut).
	TruncateTail bool
}

// BuildWire assembles per-element frames into one chaotic wire.
func BuildWire(frames [][]byte, cfg WireChaosConfig) ([]byte, Report) {
	var rep Report
	var out []byte
	for i, f := range frames {
		out = append(out, f...)
		if cfg.GarbleEvery > 0 && (i+1)%cfg.GarbleEvery == 0 {
			out = append(out, garbleFrame(f)...)
			rep.Garbled++
		}
		if cfg.UnknownEvery > 0 && (i+1)%cfg.UnknownEvery == 0 {
			out = append(out, unknownFrame()...)
			rep.Unknown++
		}
	}
	if cfg.TruncateTail && len(frames) > 0 {
		// Sever the copy right after the stream name: the orphaned prefix
		// holds only a length byte and ASCII name bytes, so no suffix of it
		// can masquerade as a fresh frame boundary and a resyncing reader
		// reports the whole tail as exactly one fault.
		last := frames[len(frames)-1]
		nameLen, n := binary.Uvarint(last)
		cut := n + int(nameLen)
		if n <= 0 || cut >= len(last) {
			cut = len(last)/2 + 1
		}
		out = append(out, last[:cut]...)
		rep.Truncated++
	}
	return out, rep
}

// garbleFrame copies a frame and overwrites its payload with 0xFF bytes:
// the header (stream name and payload length) still parses, so a lenient
// reader can skip the frame as one unit, but the payload cannot decode.
func garbleFrame(frame []byte) []byte {
	f := append([]byte(nil), frame...)
	nameLen, n := binary.Uvarint(f)
	if n <= 0 {
		return f
	}
	p := n + int(nameLen)
	_, n2 := binary.Uvarint(f[p:])
	if n2 <= 0 {
		return f
	}
	for i := p + n2; i < len(f); i++ {
		f[i] = 0xFF
	}
	return f
}

// unknownFrame builds a well-formed frame for a stream no reader has.
func unknownFrame() []byte {
	const name = "chaos-unknown"
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(name)))
	out = append(out, name...)
	out = binary.AppendUvarint(out, 1)
	out = append(out, 0x00)
	return out
}

// CrashPoints picks count distinct element boundaries in a feed of n
// elements, seeded and sorted ascending — the indices at which a crash
// harness checkpoints and then kills the runtime. Boundaries are drawn
// from [1, n) so every crash has something before it and something after
// it (crashing on an empty prefix or after the last element degenerates
// to the plain round-trip test).
func CrashPoints(n, count int, seed int64) []int {
	if n <= 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	picked := make(map[int]bool, count)
	for len(picked) < count && len(picked) < n-1 {
		picked[1+rng.Intn(n-1)] = true
	}
	out := make([]int, 0, len(picked))
	for k := range picked {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// CorruptCopies returns count damaged variants of a snapshot blob,
// seeded: truncations at random points (torn writes), single-byte
// garbles, and random-garbage tails. A restore path must reject every
// one with its typed corruption error and never panic.
func CorruptCopies(blob []byte, count int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		switch rng.Intn(3) {
		case 0: // torn write: a strict prefix
			out = append(out, append([]byte(nil), blob[:rng.Intn(len(blob))]...))
		case 1: // bit rot: one byte flipped
			g := append([]byte(nil), blob...)
			g[rng.Intn(len(g))] ^= byte(1 + rng.Intn(255))
			out = append(out, g)
		default: // overwrite tail with garbage
			g := append([]byte(nil), blob...)
			start := rng.Intn(len(g))
			for j := start; j < len(g); j++ {
				g[j] = byte(rng.Intn(256))
			}
			out = append(out, g)
		}
	}
	return out
}

// ErrTransient is the fault a FlakyReader raises when its connection
// "drops" — the kind of failure a reconnecting reader should absorb.
var ErrTransient = errors.New("faultinject: transient transport failure")

// FlakyReader serves a byte window of at most failAfter bytes and then
// fails every subsequent Read with ErrTransient, modelling a transport
// whose connection drops and must be reopened (at an offset) to resume.
type FlakyReader struct {
	data      []byte
	failAfter int
	served    int
}

// NewFlakyReader builds a connection over data that drops after
// failAfter bytes (<= 0 never drops).
func NewFlakyReader(data []byte, failAfter int) *FlakyReader {
	return &FlakyReader{data: data, failAfter: failAfter}
}

func (f *FlakyReader) Read(p []byte) (int, error) {
	if f.served >= len(f.data) {
		return 0, io.EOF
	}
	if f.failAfter > 0 && f.served >= f.failAfter {
		return 0, fmt.Errorf("%w (after %d bytes)", ErrTransient, f.served)
	}
	n := len(f.data) - f.served
	if len(p) < n {
		n = len(p)
	}
	if f.failAfter > 0 && f.failAfter-f.served < n {
		n = f.failAfter - f.served
	}
	copy(p, f.data[f.served:f.served+n])
	f.served += n
	return n, nil
}
