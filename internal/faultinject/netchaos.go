package faultinject

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by a ChaosConn whose seeded byte budget
// ran out: the underlying connection is closed abruptly, mid-frame if
// that is where the budget landed — the network analogue of an RST.
// Peers observe an ordinary connection error; the injecting side can
// distinguish chaos from real failures by errors.Is against this.
var ErrInjectedReset = errors.New("faultinject: injected connection reset")

// ChaosConfig tunes a seeded network-fault injector. The zero value
// injects nothing; each field enables one fault class.
type ChaosConfig struct {
	// Seed drives every choice the injector makes. The same seed over
	// the same traffic produces the same faults.
	Seed int64
	// PartialReads, when true, makes Read return fewer bytes than
	// requested at seeded points (1 ≤ n ≤ len(p)), exercising callers
	// that wrongly assume one Read per frame.
	PartialReads bool
	// PartialWrites, when true, splits Write into several short writes
	// of the full buffer at seeded points. Write still honours the
	// net.Conn contract (n == len(p) unless an error occurred).
	PartialWrites bool
	// MaxDelay, when positive, injects a seeded latency spike of up to
	// this duration before some reads and writes. Keep it small (tens
	// of microseconds) — it models jitter, not outage.
	MaxDelay time.Duration
	// CutAfter, when positive, arms the reset budget: after roughly
	// CutAfter bytes have crossed the connection (reads + writes), the
	// conn is closed abruptly and ErrInjectedReset returned. CutJitter
	// spreads the exact point uniformly over [CutAfter, CutAfter+CutJitter].
	CutAfter  int
	CutJitter int
}

// ChaosConn wraps a net.Conn with seeded fault injection per
// ChaosConfig. It is safe for the usual net.Conn discipline (one reader
// goroutine, one writer goroutine, Close from anywhere).
type ChaosConn struct {
	net.Conn

	mu     sync.Mutex
	rng    *rand.Rand
	cfg    ChaosConfig
	budget int // remaining bytes until injected reset; -1 = unarmed
	cut    bool
}

// NewChaosConn wraps c. Each conn draws its own fault schedule from
// cfg.Seed; wrap distinct conns with distinct seeds (ChaosListener and
// ChaosDialer do this automatically).
func NewChaosConn(c net.Conn, cfg ChaosConfig) *ChaosConn {
	rng := rand.New(rand.NewSource(cfg.Seed))
	budget := -1
	if cfg.CutAfter > 0 {
		budget = cfg.CutAfter
		if cfg.CutJitter > 0 {
			budget += rng.Intn(cfg.CutJitter + 1)
		}
	}
	return &ChaosConn{Conn: c, rng: rng, cfg: cfg, budget: budget}
}

// plan decides, under the lock, what to inject for an I/O of size n:
// a delay, a shortened size, and whether the reset budget just expired.
func (c *ChaosConn) plan(n int, partial bool) (delay time.Duration, allowed int, cut bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, 0, true
	}
	if c.cfg.MaxDelay > 0 && c.rng.Intn(4) == 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay))) + 1
	}
	allowed = n
	if partial && n > 1 && c.rng.Intn(3) == 0 {
		allowed = 1 + c.rng.Intn(n)
	}
	if c.budget >= 0 {
		if c.budget == 0 {
			c.cut = true
			return delay, 0, true
		}
		if allowed > c.budget {
			allowed = c.budget
		}
		c.budget -= allowed
	}
	return delay, allowed, false
}

func (c *ChaosConn) Read(p []byte) (int, error) {
	delay, allowed, cut := c.plan(len(p), c.cfg.PartialReads)
	if cut {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if len(p) > allowed {
		p = p[:allowed]
	}
	return c.Conn.Read(p)
}

func (c *ChaosConn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		delay, allowed, cut := c.plan(len(p)-written, c.cfg.PartialWrites)
		if cut {
			c.Conn.Close()
			return written, ErrInjectedReset
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		n, err := c.Conn.Write(p[written : written+allowed])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ChaosListener wraps a net.Listener so every accepted conn is a
// ChaosConn with a per-conn seed derived from cfg.Seed, giving each
// connection an independent but reproducible fault schedule.
type ChaosListener struct {
	net.Listener

	mu   sync.Mutex
	rng  *rand.Rand
	cfg  ChaosConfig
	skip int
}

// NewChaosListener wraps l with cfg. SkipFirst exempts the first n
// accepted conns from chaos (handy to let a test's setup connection
// through untouched).
func NewChaosListener(l net.Listener, cfg ChaosConfig) *ChaosListener {
	return &ChaosListener{Listener: l, rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// SkipFirst exempts the next n accepted connections from fault
// injection. It returns the listener for chaining.
func (l *ChaosListener) SkipFirst(n int) *ChaosListener {
	l.mu.Lock()
	l.skip = n
	l.mu.Unlock()
	return l
}

func (l *ChaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if l.skip > 0 {
		l.skip--
		l.mu.Unlock()
		return c, nil
	}
	cfg := l.cfg
	cfg.Seed = l.rng.Int63()
	l.mu.Unlock()
	return NewChaosConn(c, cfg), nil
}

// ErrSevered is returned by a NetGate-wrapped conn after Sever: the
// link is cut for good and the underlying conn closed.
var ErrSevered = errors.New("faultinject: link severed")

// NetGate wraps a net.Conn with a controllable partition. Hold stalls
// every subsequent Read and Write (traffic parks at the gate; bytes are
// neither lost nor reordered — an I/O already inside the kernel
// completes); Release lets parked and future I/O proceed; Sever closes
// the conn and fails all I/O with ErrSevered. It models the two network
// faults ChaosConn cannot: a clean pause (standby lag, GC stall, slow
// link) and a hard partition, both under test control rather than a
// seeded schedule.
type NetGate struct {
	net.Conn

	mu      sync.Mutex
	cond    *sync.Cond
	held    bool
	severed bool
}

// NewNetGate wraps c with an open gate.
func NewNetGate(c net.Conn) *NetGate {
	g := &NetGate{Conn: c}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Hold stalls all subsequent reads and writes until Release or Sever.
func (g *NetGate) Hold() {
	g.mu.Lock()
	g.held = true
	g.mu.Unlock()
}

// Release re-opens the gate, letting parked and future I/O proceed.
func (g *NetGate) Release() {
	g.mu.Lock()
	g.held = false
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Sever cuts the link permanently: parked and future I/O fail with
// ErrSevered and the underlying conn is closed.
func (g *NetGate) Sever() {
	g.mu.Lock()
	g.severed = true
	g.mu.Unlock()
	g.cond.Broadcast()
	g.Conn.Close()
}

// pass parks while the gate is held and reports whether the link has
// been severed.
func (g *NetGate) pass() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.held && !g.severed {
		g.cond.Wait()
	}
	if g.severed {
		return ErrSevered
	}
	return nil
}

func (g *NetGate) Read(p []byte) (int, error) {
	if err := g.pass(); err != nil {
		return 0, err
	}
	n, err := g.Conn.Read(p)
	if err != nil {
		g.mu.Lock()
		severed := g.severed
		g.mu.Unlock()
		if severed {
			err = ErrSevered
		}
	}
	return n, err
}

func (g *NetGate) Write(p []byte) (int, error) {
	if err := g.pass(); err != nil {
		return 0, err
	}
	n, err := g.Conn.Write(p)
	if err != nil {
		g.mu.Lock()
		severed := g.severed
		g.mu.Unlock()
		if severed {
			err = ErrSevered
		}
	}
	return n, err
}

func (g *NetGate) Close() error {
	g.mu.Lock()
	g.severed = true
	g.mu.Unlock()
	g.cond.Broadcast()
	return g.Conn.Close()
}

// ChaosDialer wraps a dial function so every successful dial yields a
// ChaosConn with a per-conn seed derived from cfg.Seed. Use it to
// inject faults on the client side of a connection (the listener side
// stays clean), e.g. under a reconnecting producer.
func ChaosDialer(dial func() (net.Conn, error), cfg ChaosConfig) func() (net.Conn, error) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(cfg.Seed))
	return func() (net.Conn, error) {
		c, err := dial()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		perConn := cfg
		perConn.Seed = rng.Int63()
		mu.Unlock()
		return NewChaosConn(c, perConn), nil
	}
}
