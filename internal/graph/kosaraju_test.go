package graph

import (
	"math/rand"
	"testing"
)

// samePartition reports whether two component labelings induce the same
// partition of vertices.
func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int]int)
	bwd := make(map[int]int)
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := bwd[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// TestTarjanVsKosaraju cross-checks the two independent SCC
// implementations on random graphs — the Tarjan pass is the foundation of
// the safety checker, so it gets an oracle.
func TestTarjanVsKosaraju(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(20)
		g := NewDigraph(n)
		edges := rng.Intn(3 * n)
		for e := 0; e < edges; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		ct, nt := g.SCC()
		ck, nk := g.SCCKosaraju()
		if nt != nk {
			t.Fatalf("trial %d: Tarjan found %d components, Kosaraju %d", trial, nt, nk)
		}
		if !samePartition(ct, ck) {
			t.Fatalf("trial %d: partitions differ\ntarjan:   %v\nkosaraju: %v", trial, ct, ck)
		}
	}
}

// TestKosarajuKnownGraph sanity-checks a hand-built graph.
func TestKosarajuKnownGraph(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	comp, count := g.SCCKosaraju()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Fatalf("comp = %v", comp)
	}
}

func BenchmarkSCC(b *testing.B) {
	// A layered graph with cycles: stress for both implementations.
	rng := rand.New(rand.NewSource(9))
	n := 10_000
	g := NewDigraph(n)
	for i := 0; i < 3*n; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	b.Run("tarjan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.SCC()
		}
	})
	b.Run("kosaraju", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.SCCKosaraju()
		}
	})
}
