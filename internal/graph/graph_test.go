package graph

import (
	"math/rand"
	"testing"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // duplicate collapses
	g.AddEdge(1, 2)
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge broken")
	}
	if got := g.Succ(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Succ(0) = %v", got)
	}
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("Reverse broken")
	}
	c := g.Clone()
	c.AddEdge(2, 0)
	if g.HasEdge(2, 0) {
		t.Fatal("Clone must be independent")
	}
}

func TestReachability(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	seen := g.ReachableFrom(0)
	want := []bool{true, true, true, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ReachableFrom(0)[%d] = %v", i, seen[i])
		}
	}
	if g.ReachesAll(0) {
		t.Fatal("3 is unreachable")
	}
	g.AddEdge(2, 3)
	if !g.ReachesAll(0) {
		t.Fatal("all should be reachable now")
	}
}

func TestSCC(t *testing.T) {
	// Two 2-cycles bridged by one edge.
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(1, 2)
	comp, count := g.SCC()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("comp = %v", comp)
	}
	// Reverse topological numbering: edge 1->2 crosses components, so
	// comp[1] > comp[2].
	if comp[1] <= comp[2] {
		t.Fatalf("component order: comp[1]=%d comp[2]=%d", comp[1], comp[2])
	}
	if g.StronglyConnected() {
		t.Fatal("not strongly connected")
	}
	g.AddEdge(3, 0)
	if !g.StronglyConnected() {
		t.Fatal("cycle closes: strongly connected")
	}
}

func TestSCCSingletonAndEmpty(t *testing.T) {
	if !NewDigraph(0).StronglyConnected() || !NewDigraph(1).StronglyConnected() {
		t.Fatal("trivial graphs are strongly connected")
	}
	g := NewDigraph(2)
	if g.StronglyConnected() {
		t.Fatal("two isolated vertices are not strongly connected")
	}
}

func TestSCCDeepChainIterative(t *testing.T) {
	// A 200k-vertex cycle would overflow a recursive Tarjan.
	n := 200_000
	g := NewDigraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	if _, count := g.SCC(); count != 1 {
		t.Fatalf("cycle must be one component, got %d", count)
	}
}

func TestCondense(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(3, 4)
	cond, comp, members := g.Condense()
	if cond.N() != 3 {
		t.Fatalf("condensation has %d nodes", cond.N())
	}
	if len(members[comp[0]]) != 2 || len(members[comp[2]]) != 2 || len(members[comp[4]]) != 1 {
		t.Fatalf("members = %v", members)
	}
	if !cond.HasEdge(comp[1], comp[2]) || !cond.HasEdge(comp[3], comp[4]) {
		t.Fatal("cross edges must survive condensation")
	}
	if cond.HasEdge(comp[0], comp[0]) {
		t.Fatal("no self loops in condensation")
	}
}

func TestSpanningTree(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	parent := g.SpanningTreeFrom(0)
	if parent[0] != 0 {
		t.Fatal("root parent must be itself")
	}
	if parent[1] != 0 || parent[2] == -1 || parent[3] != -1 {
		t.Fatalf("parent = %v", parent)
	}
}

func TestUndirectedConnected(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	if g.UndirectedConnected() {
		t.Fatal("vertex 2 is isolated")
	}
	g.AddEdge(2, 1)
	if !g.UndirectedConnected() {
		t.Fatal("should be connected ignoring direction")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := NewDigraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 2) },
		func() { g.AddEdge(-1, 0) },
		func() { g.ReachableFrom(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHyperReachability(t *testing.T) {
	// The Figure 9 shape: 0<->1 plain, 2->1 plain, {0,1} => 2.
	h := NewHyperDigraph(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 0)
	h.AddEdge(2, 1)
	h.AddHyperEdge([]int{0, 1}, 2)
	for v := 0; v < 3; v++ {
		if !h.ReachesAll(v) {
			t.Fatalf("vertex %d should reach all", v)
		}
	}
	if !h.StronglyConnected() {
		t.Fatal("should be strongly connected under Definition 10")
	}
	// Without the 1->0 plain edge, vertex 1 never covers the tail set
	// {0,1}, so the generalized edge cannot fire from it.
	h2 := NewHyperDigraph(3)
	h2.AddEdge(2, 1)
	h2.AddHyperEdge([]int{0, 1}, 2)
	if h2.ReachesAll(1) {
		t.Fatal("1 must not reach 2: tail 0 is never covered")
	}
}

func TestHyperSingleTailIsPlain(t *testing.T) {
	h := NewHyperDigraph(2)
	h.AddHyperEdge([]int{0, 0}, 1) // dedups to single tail
	if len(h.HyperEdges()) != 0 {
		t.Fatal("single-tail hyperedge must become a plain edge")
	}
	if !h.HasEdge(0, 1) {
		t.Fatal("plain edge missing")
	}
}

func TestHyperChainedFiring(t *testing.T) {
	// Firing one hyperedge unlocks another.
	h := NewHyperDigraph(4)
	h.AddEdge(0, 1)
	h.AddHyperEdge([]int{0, 1}, 2)
	h.AddHyperEdge([]int{1, 2}, 3)
	seen := h.ReachableFrom(0)
	for v, want := range []bool{true, true, true, true} {
		if seen[v] != want {
			t.Fatalf("reach[%d] = %v, want %v", v, seen[v], want)
		}
	}
	// From 1: cannot reach 0, so no hyperedge ever fires.
	seen = h.ReachableFrom(1)
	if seen[0] || seen[2] || seen[3] {
		t.Fatalf("reach from 1 = %v", seen)
	}
}

func TestHyperRandomAgainstBruteForce(t *testing.T) {
	// Fixpoint reachability must match a brute-force saturation.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		h := NewHyperDigraph(n)
		for e := rng.Intn(2 * n); e > 0; e-- {
			h.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for e := rng.Intn(n); e > 0; e-- {
			k := 1 + rng.Intn(3)
			tails := make([]int, k)
			for i := range tails {
				tails[i] = rng.Intn(n)
			}
			h.AddHyperEdge(tails, rng.Intn(n))
		}
		for src := 0; src < n; src++ {
			got := h.ReachableFrom(src)
			want := bruteReach(h, src)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d src %d vertex %d: got %v want %v\n%s",
						trial, src, v, got[v], want[v], h)
				}
			}
		}
	}
}

// bruteReach saturates reachability by repeated full passes.
func bruteReach(h *HyperDigraph, src int) []bool {
	seen := make([]bool, h.N())
	seen[src] = true
	for {
		changed := false
		for u := 0; u < h.N(); u++ {
			if !seen[u] {
				continue
			}
			for _, v := range h.Succ(u) {
				if !seen[v] {
					seen[v] = true
					changed = true
				}
			}
		}
		for _, e := range h.HyperEdges() {
			if seen[e.Head] {
				continue
			}
			all := true
			for _, t := range e.Tails {
				if !seen[t] {
					all = false
				}
			}
			if all {
				seen[e.Head] = true
				changed = true
			}
		}
		if !changed {
			return seen
		}
	}
}
