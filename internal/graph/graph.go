// Package graph provides the directed-graph algorithms that underpin the
// punctuation-graph machinery of the safety checker: adjacency storage,
// breadth-first reachability, Tarjan's strongly connected components, and
// condensation. Vertices are dense integer indices (0..n-1), which matches
// how streams are numbered inside a continuous join query.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over vertices 0..N-1 with adjacency lists.
// Parallel edges are collapsed; self-loops are allowed but ignored by the
// connectivity algorithms (a single vertex is always strongly connected).
type Digraph struct {
	n   int
	adj [][]int
	has []map[int]bool
}

// NewDigraph returns an empty directed graph with n vertices.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{
		n:   n,
		adj: make([][]int, n),
		has: make([]map[int]bool, n),
	}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// AddEdge inserts the directed edge u -> v. Duplicate insertions are
// ignored so callers may add edges discovered through several punctuation
// schemes without bookkeeping.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if g.has[u] == nil {
		g.has[u] = make(map[int]bool)
	}
	if g.has[u][v] {
		return
	}
	g.has[u][v] = true
	g.adj[u] = append(g.adj[u], v)
}

// HasEdge reports whether the directed edge u -> v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.has[u] != nil && g.has[u][v]
}

// Succ returns the successor list of u. The returned slice is owned by the
// graph and must not be modified.
func (g *Digraph) Succ(u int) []int {
	g.check(u)
	return g.adj[u]
}

// EdgeCount returns the number of distinct directed edges.
func (g *Digraph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := NewDigraph(g.n)
	for u, succ := range g.adj {
		for _, v := range succ {
			c.AddEdge(u, v)
		}
	}
	return c
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := NewDigraph(g.n)
	for u, succ := range g.adj {
		for _, v := range succ {
			r.AddEdge(v, u)
		}
	}
	return r
}

func (g *Digraph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// ReachableFrom returns the set of vertices reachable from src (including
// src itself) following directed edges, as a boolean membership slice.
func (g *Digraph) ReachableFrom(src int) []bool {
	g.check(src)
	seen := make([]bool, g.n)
	queue := []int{src}
	seen[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

// ReachesAll reports whether every vertex is reachable from src.
func (g *Digraph) ReachesAll(src int) bool {
	seen := g.ReachableFrom(src)
	for _, ok := range seen {
		if !ok {
			return false
		}
	}
	return true
}

// StronglyConnected reports whether the whole graph forms a single
// strongly connected component. The empty graph and the single-vertex
// graph are considered strongly connected.
func (g *Digraph) StronglyConnected() bool {
	if g.n <= 1 {
		return true
	}
	comp, count := g.SCC()
	_ = comp
	return count == 1
}

// SCC computes strongly connected components using Tarjan's algorithm
// (iterative, so deep graphs cannot overflow the goroutine stack). It
// returns comp, a slice mapping each vertex to its component id, and the
// number of components. Component ids are assigned in reverse topological
// order of the condensation: if there is an edge from component a to
// component b (a != b) then comp id of a is greater than that of b.
func (g *Digraph) SCC() (comp []int, count int) {
	const unvisited = -1
	n := g.n
	comp = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	// Explicit DFS frame: vertex and position within its adjacency list.
	type frame struct {
		v  int
		ai int
	}
	var frames []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ai < len(g.adj[v]) {
				w := g.adj[v][f.ai]
				f.ai++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, count
}

// Condense builds the condensation of the graph: one vertex per strongly
// connected component, with an edge between components whenever any member
// edge crosses them. It returns the condensed graph, the vertex->component
// mapping, and the members of each component (sorted ascending).
func (g *Digraph) Condense() (cond *Digraph, comp []int, members [][]int) {
	comp, count := g.SCC()
	cond = NewDigraph(count)
	members = make([][]int, count)
	for v, c := range comp {
		members[c] = append(members[c], v)
	}
	for _, m := range members {
		sort.Ints(m)
	}
	for u, succ := range g.adj {
		for _, v := range succ {
			if comp[u] != comp[v] {
				cond.AddEdge(comp[u], comp[v])
			}
		}
	}
	return cond, comp, members
}

// SpanningTreeFrom returns, for every vertex reachable from src, its parent
// in a BFS spanning tree rooted at src. parent[src] == src; unreachable
// vertices have parent == -1. The safety checker turns this tree into the
// chained purge strategy for a tuple of stream src.
func (g *Digraph) SpanningTreeFrom(src int) (parent []int) {
	g.check(src)
	parent = make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] == -1 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// Undirected reports whether the graph, viewed with edge directions
// erased, is connected. The empty graph is connected.
func (g *Digraph) UndirectedConnected() bool {
	if g.n <= 1 {
		return true
	}
	und := g.Clone()
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			und.AddEdge(v, u)
		}
	}
	return und.ReachesAll(0)
}
