package graph

// SCCKosaraju computes strongly connected components with Kosaraju's
// two-pass algorithm. It exists as an independently-implemented oracle
// for the Tarjan implementation the safety checker depends on: the test
// suite cross-checks the two on random graphs. Component ids are not
// guaranteed to follow the same numbering as SCC, only the same
// partition.
func (g *Digraph) SCCKosaraju() (comp []int, count int) {
	n := g.n
	// Pass 1: finish-time order on the original graph (iterative DFS).
	order := make([]int, 0, n)
	visited := make([]bool, n)
	type frame struct {
		v  int
		ai int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		stack = append(stack[:0], frame{v: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ai < len(g.adj[f.v]) {
				w := g.adj[f.v][f.ai]
				f.ai++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{v: w})
				}
				continue
			}
			order = append(order, f.v)
			stack = stack[:len(stack)-1]
		}
	}
	// Pass 2: DFS on the reverse graph in decreasing finish time.
	rev := g.Reverse()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var dfs []int
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		dfs = append(dfs[:0], v)
		for len(dfs) > 0 {
			u := dfs[len(dfs)-1]
			dfs = dfs[:len(dfs)-1]
			for _, w := range rev.adj[u] {
				if comp[w] == -1 {
					comp[w] = count
					dfs = append(dfs, w)
				}
			}
		}
		count++
	}
	return comp, count
}
