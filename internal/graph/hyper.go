package graph

import (
	"fmt"
	"sort"
)

// HyperEdge is a generalized directed edge {Tail...} -> Head: the head
// becomes reachable only once every tail vertex is reachable. This is the
// "generalized directed edge" of the paper's Definition 8, created by a
// punctuation scheme whose several punctuatable attributes join with
// several distinct streams.
type HyperEdge struct {
	Tails []int // sorted, deduplicated vertex set
	Head  int
}

// HyperDigraph is a directed graph augmented with generalized (AND-)edges.
// Reachability follows the paper's Definition 9: seed with plain-edge
// reachability, then repeatedly fire any generalized edge whose entire
// tail set is already reachable, until a fixpoint.
type HyperDigraph struct {
	*Digraph
	hyper []HyperEdge
}

// NewHyperDigraph returns an empty hypergraph with n vertices.
func NewHyperDigraph(n int) *HyperDigraph {
	return &HyperDigraph{Digraph: NewDigraph(n)}
}

// AddHyperEdge inserts the generalized edge {tails} -> head. Tails are
// copied, sorted and deduplicated. A single-tail generalized edge is
// equivalent to a plain edge and is stored as one.
func (h *HyperDigraph) AddHyperEdge(tails []int, head int) {
	if len(tails) == 0 {
		panic("graph: hyperedge with empty tail set")
	}
	h.check(head)
	set := make([]int, 0, len(tails))
	seen := make(map[int]bool, len(tails))
	for _, t := range tails {
		h.check(t)
		if !seen[t] {
			seen[t] = true
			set = append(set, t)
		}
	}
	sort.Ints(set)
	if len(set) == 1 {
		h.AddEdge(set[0], head)
		return
	}
	h.hyper = append(h.hyper, HyperEdge{Tails: set, Head: head})
}

// HyperEdges returns the generalized edges (excluding plain edges). The
// returned slice is owned by the graph and must not be modified.
func (h *HyperDigraph) HyperEdges() []HyperEdge { return h.hyper }

// ReachableFrom computes Definition 9 reachability from src: the set of
// vertices reachable through plain edges, closed under generalized edges
// whose tail sets are fully covered.
func (h *HyperDigraph) ReachableFrom(src int) []bool {
	seen := h.Digraph.ReachableFrom(src)
	for changed := true; changed; {
		changed = false
		for _, e := range h.hyper {
			if seen[e.Head] {
				continue
			}
			all := true
			for _, t := range e.Tails {
				if !seen[t] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			// The head is newly reachable; everything it reaches by plain
			// edges becomes reachable too.
			for v, ok := range h.Digraph.ReachableFrom(e.Head) {
				if ok && !seen[v] {
					seen[v] = true
				}
			}
			changed = true
		}
	}
	return seen
}

// ReachesAll reports whether every vertex is reachable from src under
// Definition 9.
func (h *HyperDigraph) ReachesAll(src int) bool {
	for _, ok := range h.ReachableFrom(src) {
		if !ok {
			return false
		}
	}
	return true
}

// StronglyConnected reports Definition 10 strong connection: every vertex
// reaches every other vertex under generalized reachability.
func (h *HyperDigraph) StronglyConnected() bool {
	if h.N() <= 1 {
		return true
	}
	for v := 0; v < h.N(); v++ {
		if !h.ReachesAll(v) {
			return false
		}
	}
	return true
}

// String renders the hypergraph for diagnostics.
func (h *HyperDigraph) String() string {
	s := ""
	for u := 0; u < h.N(); u++ {
		for _, v := range h.Succ(u) {
			s += fmt.Sprintf("%d -> %d\n", u, v)
		}
	}
	for _, e := range h.hyper {
		s += fmt.Sprintf("%v => %d\n", e.Tails, e.Head)
	}
	return s
}
