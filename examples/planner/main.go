// Planner walks the paper's Figures 5, 7, 8, 9 and 10 interactively: it
// builds the cyclic 3-way query, prints the punctuation graph and the
// safety verdict under Example 3's schemes, shows that the MJoin plan is
// safe while every binary tree is not (Figure 7), then switches to the
// §4.2 scheme set with a multi-attribute scheme, where the plain PG fails
// but the generalized/transformed punctuation graph proves safety
// (Figures 8-10), and finally enumerates the safe plans with costs.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"

	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

func main() {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	q := query.NewBuilder().
		AddStream(stream.MustSchema("S1", ia("A"), ia("B"))).
		AddStream(stream.MustSchema("S2", ia("B"), ia("C"))).
		AddStream(stream.MustSchema("S3", ia("A"), ia("C"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		MustBuild()

	fmt.Println("=== Figure 5: punctuation graph and safety ===")
	ex3 := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true), // punctuations on S1.B
		stream.MustScheme("S2", false, true), // punctuations on S2.C
		stream.MustScheme("S3", true, false), // punctuations on S3.A
	)
	fmt.Printf("query:   %s\n", q)
	fmt.Printf("schemes: %s\n", ex3)
	fmt.Printf("PG:      %s\n", safety.BuildPG(q, ex3))
	rep, err := safety.Check(q, ex3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Explain(q))

	fmt.Println()
	fmt.Println("=== Figure 7: plan shape matters ===")
	shapes := []*plan.Node{
		plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2)),
		plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)),
		plan.Join(plan.Join(plan.Leaf(1), plan.Leaf(2)), plan.Leaf(0)),
		plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(2)), plan.Leaf(1)),
	}
	for _, shape := range shapes {
		ok, _, err := plan.CheckPlan(q, ex3, shape)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "UNSAFE"
		if ok {
			verdict = "safe"
		}
		fmt.Printf("  %-28s %s\n", shape.Render(q), verdict)
	}

	fmt.Println()
	fmt.Println("=== Figures 8-10: multi-attribute schemes need the GPG/TPG ===")
	fig8 := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, true), // two punctuatable attributes
	)
	fmt.Printf("schemes: %s\n", fig8)
	pg := safety.BuildPG(q, fig8)
	fmt.Printf("plain PG strongly connected:   %v (Corollary 1 alone would reject)\n",
		pg.OperatorPurgeable())
	gpg := safety.BuildGPG(q, fig8)
	fmt.Printf("GPG strongly connected:        %v (Theorem 4: safe)\n", gpg.StronglyConnected())
	tpg := safety.Transform(q, fig8)
	fmt.Printf("TPG condenses to single node:  %v (Theorem 5)\n", tpg.SingleNode())
	fmt.Println("TPG transformation trace:")
	fmt.Print(tpg)

	fmt.Println()
	fmt.Println("=== §5.2: safe plan enumeration with costs ===")
	model := plan.DefaultCostModel(q)
	plans, err := plan.EnumerateSafe(q, fig8, model)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range plans {
		fmt.Printf("  %d. %-28s cost: %s\n", i+1, p.Render(q), model.PlanCost(q, fig8, p))
	}
	best, err := plan.ChooseSafe(q, fig8, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen: %s\n", best.Render(q))
}
