// Sensors demonstrates the ordered-punctuation (heartbeat/watermark)
// extension: two out-of-order sensor streams are correlated by epoch, and
// periodic heartbeats — punctuations of the form (epoch <= T, *) — keep
// the join state bounded by the disorder window. This is the bridge from
// the paper's punctuation schemes to the watermark semantics of modern
// stream processors.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	"punctsafe/engine"
	"punctsafe/safety"
	"punctsafe/stream"
	"punctsafe/workload"
)

func main() {
	q := workload.SensorQuery()
	schemes := workload.SensorSchemes()

	fmt.Println("=== Sensor correlation: temp ⨝ humid on epoch, out-of-order arrivals ===")
	fmt.Println()
	fmt.Printf("schemes: %s   ('<' marks the ordered/watermark attribute)\n\n", schemes)
	rep, err := safety.Check(q, schemes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Explain(q))
	fmt.Println()

	fmt.Printf("%-12s %-12s %10s %12s %12s %12s\n",
		"disorder", "heartbeats", "results", "max state", "end state", "punct store")
	for _, disorder := range []int{0, 4, 16, 64} {
		for _, hb := range []bool{true, false} {
			if !hb && disorder != 16 {
				continue
			}
			d := engine.New()
			for _, s := range schemes.All() {
				d.RegisterScheme(s)
			}
			results := 0
			reg, err := d.Register("sensors", q, engine.Options{
				OnResult: func(stream.Tuple) { results++ },
			})
			if err != nil {
				log.Fatal(err)
			}
			inputs := workload.Sensor(workload.SensorConfig{
				Epochs: 5000, ReadingsPerEpoch: 2, Disorder: disorder,
				HeartbeatEvery: 4, Heartbeats: hb, Seed: 7,
			})
			for _, in := range inputs {
				if err := d.Push(in.Stream, in.Elem); err != nil {
					log.Fatal(err)
				}
			}
			hbLabel := "every 4"
			if !hb {
				hbLabel = "none"
			}
			root := reg.Tree.Root()
			fmt.Printf("%-12d %-12s %10d %12d %12d %12d\n",
				disorder, hbLabel, results,
				root.StatsSnapshot().MaxStateSize, root.StatsSnapshot().TotalState(),
				root.StatsSnapshot().MaxPunctStoreSize)
		}
	}
	fmt.Println()
	fmt.Println("With heartbeats the state high-water mark tracks the disorder window;")
	fmt.Println("without them every reading is retained forever. The watermark store")
	fmt.Println("compacts to a single entry per stream (only the widest bound matters).")
}
