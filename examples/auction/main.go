// Auction runs the paper's Example 1 end to end: the item and bid streams
// of an online auction are joined on itemid and the bid increases are
// summed per item; punctuations ("each itemid is unique", "the auction
// for item X closed") keep the join state bounded and unblock the
// group-by. The run prints the join-state high-water marks with and
// without punctuations.
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"

	"punctsafe/engine"
	"punctsafe/exec"
	"punctsafe/stream"
	"punctsafe/workload"
)

func main() {
	cfg := workload.AuctionConfig{
		Items:          2_000,
		MaxBidsPerItem: 10,
		OpenWindow:     8,
		PunctuateItems: true,
		PunctuateClose: true,
		Seed:           2006,
	}

	fmt.Println("=== Example 1: track the total bid increase per item ===")
	fmt.Println()

	// With punctuations.
	withStats := run(cfg, true)
	// Without punctuations: same tuples, no purging possible.
	noPunct := cfg
	noPunct.PunctuateItems, noPunct.PunctuateClose = false, false
	withoutStats := run(noPunct, false)

	fmt.Printf("%-28s %15s %15s\n", "", "with punct.", "without punct.")
	fmt.Printf("%-28s %15d %15d\n", "join results", withStats.results, withoutStats.results)
	fmt.Printf("%-28s %15d %15d\n", "max stored tuples", withStats.maxState, withoutStats.maxState)
	fmt.Printf("%-28s %15d %15d\n", "stored tuples at end", withStats.endState, withoutStats.endState)
	fmt.Printf("%-28s %15d %15d\n", "price totals emitted", withStats.groups, withoutStats.groups)
	fmt.Println()
	fmt.Println("With punctuations the join state stays near the open-auction window")
	fmt.Println("and every price total is emitted; without them the state grows with")
	fmt.Println("the stream and the group-by blocks forever.")
}

type runStats struct {
	results  int
	maxState int
	endState int
	groups   uint64
}

func run(cfg workload.AuctionConfig, safe bool) runStats {
	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	q := workload.AuctionQuery()

	var gb *exec.GroupBy
	var st runStats
	reg, err := d.Register("auction", q, engine.Options{
		OnResult: func(t stream.Tuple) {
			st.results++
			if _, err := gb.Push(stream.TupleElement(t)); err != nil {
				log.Fatal(err)
			}
		},
		OnPunct: func(p stream.Punctuation) {
			if _, err := gb.Push(stream.PunctElement(p)); err != nil {
				log.Fatal(err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	gb, err = exec.NewGroupBy(reg.Tree.OutputSchema(), "item_itemid", exec.AggSum, "bid_increase")
	if err != nil {
		log.Fatal(err)
	}

	for _, in := range workload.Auction(cfg) {
		if err := d.Push(in.Stream, in.Elem); err != nil {
			log.Fatal(err)
		}
	}
	st.maxState = reg.Tree.MaxState()
	st.endState = reg.Tree.TotalState()
	st.groups = gb.Emitted()
	return st
}
