// Quickstart: declare two punctuated streams, check that a continuous
// join over them is safe, and run it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"punctsafe/engine"
	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

func main() {
	// Two streams: orders(orderid, amount) and shipments(orderid, carrier).
	orders := stream.MustSchema("orders",
		stream.Attribute{Name: "orderid", Kind: stream.KindInt},
		stream.Attribute{Name: "amount", Kind: stream.KindFloat})
	shipments := stream.MustSchema("shipments",
		stream.Attribute{Name: "orderid", Kind: stream.KindInt},
		stream.Attribute{Name: "carrier", Kind: stream.KindString})

	// The continuous join query: orders ⨝ shipments on orderid.
	q := query.NewBuilder().
		AddStream(orders).AddStream(shipments).
		JoinOn("orders", "shipments", "orderid").
		MustBuild()

	// The application promises punctuations on orderid for both streams
	// (an order is placed once; a shipment batch for an order closes).
	schemes := stream.NewSchemeSet(
		stream.MustScheme("orders", true, false),
		stream.MustScheme("shipments", true, false),
	)

	// Compile-time safety check (Theorem 4 via the transformed
	// punctuation graph).
	rep, err := safety.Check(q, schemes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Explain(q))

	// Run it through the DSMS.
	d := engine.New()
	for _, s := range schemes.All() {
		d.RegisterScheme(s)
	}
	reg, err := d.Register("orders-shipments", q, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted with plan %s\n\n", reg.Plan.Render(q))

	push := func(name string, e stream.Element) {
		if err := d.Push(name, e); err != nil {
			log.Fatal(err)
		}
	}
	punct := func(id int64) stream.Punctuation {
		return stream.MustPunctuation(stream.Const(stream.Int(id)), stream.Wildcard())
	}

	push("orders", stream.TupleElement(stream.NewTuple(stream.Int(1), stream.Float(99.5))))
	push("orders", stream.PunctElement(punct(1))) // order 1 placed exactly once
	push("shipments", stream.TupleElement(stream.NewTuple(stream.Int(1), stream.Str("DHL"))))
	push("shipments", stream.TupleElement(stream.NewTuple(stream.Int(1), stream.Str("UPS"))))
	push("shipments", stream.PunctElement(punct(1))) // no more shipments for order 1

	for _, r := range reg.Results {
		fmt.Println("result:", r)
	}
	fmt.Printf("stored tuples after punctuations: %d (everything about order 1 was purged)\n",
		reg.Tree.TotalState())
}
