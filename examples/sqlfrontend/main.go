// Sqlfrontend declares the paper's Example 1 entirely in SQL — stream
// DDL, punctuation scheme declarations, and the continuous query — then
// runs the auction workload through the engine, shipping the elements
// over the binary wire format on the way in (the full Figure 2 path:
// application environment -> input manager -> query processor).
//
//	go run ./examples/sqlfrontend
package main

import (
	"bytes"
	"fmt"
	"log"

	"punctsafe/engine"
	"punctsafe/workload"
)

const script = `
-- Example 1: track the bid increases per item.
CREATE STREAM item (sellerid INT, itemid INT, name STRING, initialprice FLOAT);
CREATE STREAM bid (bidderid INT, itemid INT, increase FLOAT);

DECLARE SCHEME ON item (itemid);   -- each itemid posted exactly once
DECLARE SCHEME ON bid (itemid);    -- "auction closed for item X"

SELECT item.itemid, bid.increase
FROM item, bid
WHERE item.itemid = bid.itemid;
`

func main() {
	d := engine.New()
	regs, err := d.RegisterSQL("auction", script, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	reg := regs[0]
	fmt.Println("registered:", reg.Name)
	fmt.Println("plan:      ", reg.Plan.Render(reg.Query))
	fmt.Println("output:    ", reg.Output)
	fmt.Println()

	// Encode the workload onto the wire, as the application environment
	// would, then ingest it.
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 1_000, MaxBidsPerItem: 8, OpenWindow: 6,
		PunctuateItems: true, PunctuateClose: true, Seed: 3,
	})
	item, bid := workload.AuctionSchemas()
	var wire bytes.Buffer
	ww := engine.NewWireWriter(&wire, item, bid)
	for _, in := range inputs {
		if err := ww.Write(in.Stream, in.Elem); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wire: %d elements in %d bytes\n", len(inputs), wire.Len())

	n, err := d.IngestWire(&wire, item, bid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d elements\n\n", n)

	var total float64
	for _, r := range reg.Results {
		total += r.Values[1].AsFloat() // projected (itemid, increase)
	}
	fmt.Printf("results:            %d projected (itemid, increase) rows\n", len(reg.Results))
	fmt.Printf("sum of increases:   %.0f\n", total)
	fmt.Printf("state after run:    %d tuples (all purged by punctuations)\n", reg.Tree.TotalState())
}
