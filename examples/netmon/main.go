// Netmon demonstrates the §4.2 and §5.1 machinery on a network-monitoring
// scenario: the conn and pkt streams join on BOTH src and port, the
// end-of-transmission punctuation carries two constants (a punctuation
// scheme with two punctuatable attributes), and — because port/sequence
// spaces wrap around — punctuations expire after a lifespan.
//
//	go run ./examples/netmon
package main

import (
	"fmt"
	"log"

	"punctsafe/engine"
	"punctsafe/safety"
	"punctsafe/workload"
)

func main() {
	q := workload.NetMonQuery()
	schemes := workload.NetMonSchemes()

	fmt.Println("=== Network monitoring: conn ⨝ pkt on (src, port) ===")
	fmt.Println()
	rep, err := safety.Check(q, schemes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Explain(q))
	fmt.Println()

	inputs := workload.NetMon(workload.NetMonConfig{
		Flows:            5_000,
		MaxPktsPerFlow:   12,
		OpenWindow:       16,
		PunctuateFlowEnd: true,
		PunctuateConn:    true,
		Seed:             1,
	})
	st := workload.Summarize(inputs)
	fmt.Printf("workload: %d tuples, %d punctuations\n\n", st.Tuples, st.Puncts)

	fmt.Printf("%-34s %12s %12s %12s\n", "configuration", "max state", "end state", "max puncts")
	for _, mode := range []struct {
		name              string
		lifespan          uint64
		purgePunctuations bool
	}{
		{"keep punctuations forever", 0, false},
		{"counter-punctuation purging", 0, true},
		{"lifespan = 5k elements", 5_000, false},
	} {
		d := engine.New()
		for _, s := range schemes.All() {
			d.RegisterScheme(s)
		}
		reg, err := d.Register("netmon", q, engine.Options{
			PunctLifespan:     mode.lifespan,
			PurgePunctuations: mode.purgePunctuations,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, in := range inputs {
			if err := d.Push(in.Stream, in.Elem); err != nil {
				log.Fatal(err)
			}
		}
		root := reg.Tree.Root()
		fmt.Printf("%-34s %12d %12d %12d\n",
			mode.name, root.StatsSnapshot().MaxStateSize, root.StatsSnapshot().TotalState(),
			root.StatsSnapshot().MaxPunctStoreSize)
	}
	fmt.Println()
	fmt.Println("Data state stays bounded in every mode; §5.1's punctuation purging")
	fmt.Println("and lifespans additionally bound the punctuation store itself.")
}
