package exec

import (
	"fmt"

	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
)

// Tree executes a plan tree: one MJoin per join node, with each
// operator's outputs (result tuples and propagated punctuations) fed to
// its parent. Pushing a raw stream element routes it to the operator
// holding that stream as a leaf; the returned elements are the root
// operator's outputs.
type Tree struct {
	q    *query.CJQ
	root *treeOp
	// leafRoute[streamIdx] locates the operator input a raw stream feeds.
	leafRoute []struct {
		op    *treeOp
		input int
	}
	ops []*treeOp // bottom-up
}

type treeOp struct {
	node   *plan.Node
	join   *MJoin
	parent *treeOp
	// inputIdx is this operator's input position within its parent.
	inputIdx int
}

// NewTree compiles a validated plan into an operator tree. The base
// config's purge knobs (PurgeBatch, PunctLifespan, PurgePunctuations,
// DisablePurge) apply to every operator; Query and Schemes describe the
// whole continuous join query and the register's scheme set.
func NewTree(base Config, root *plan.Node) (*Tree, error) {
	if base.Query == nil {
		return nil, fmt.Errorf("exec: Config.Query is nil")
	}
	if base.Schemes == nil {
		base.Schemes = stream.NewSchemeSet()
	}
	if err := root.Validate(base.Query); err != nil {
		return nil, err
	}
	t := &Tree{q: base.Query}
	t.leafRoute = make([]struct {
		op    *treeOp
		input int
	}, base.Query.N())

	var build func(n *plan.Node, parent *treeOp, inputIdx int) (*treeOp, error)
	build = func(n *plan.Node, parent *treeOp, inputIdx int) (*treeOp, error) {
		oq, err := plan.OperatorQuery(base.Query, n)
		if err != nil {
			return nil, err
		}
		oset := plan.OperatorSchemes(base.Query, base.Schemes, n)
		cfg := base
		cfg.Query = oq
		cfg.Schemes = oset
		join, err := NewMJoin(cfg)
		if err != nil {
			return nil, err
		}
		op := &treeOp{node: n, join: join, parent: parent, inputIdx: inputIdx}
		for ci, child := range n.Children {
			if child.IsLeaf() {
				t.leafRoute[child.Stream] = struct {
					op    *treeOp
					input int
				}{op: op, input: ci}
				continue
			}
			childOp, err := build(child, op, ci)
			if err != nil {
				return nil, err
			}
			t.ops = append(t.ops, childOp)
		}
		return op, nil
	}
	rootOp, err := build(root, nil, -1)
	if err != nil {
		return nil, err
	}
	t.ops = append(t.ops, rootOp)
	t.root = rootOp
	return t, nil
}

// Push feeds one raw stream element and returns the plan's final outputs.
func (t *Tree) Push(streamIdx int, e stream.Element) ([]stream.Element, error) {
	if streamIdx < 0 || streamIdx >= t.q.N() {
		return nil, fmt.Errorf("exec: stream %d out of range", streamIdx)
	}
	route := t.leafRoute[streamIdx]
	return t.feed(route.op, route.input, e)
}

// PushBatch feeds a run of raw elements from one stream, exactly as if
// Push were called per element with the outputs concatenated. It returns
// the concatenated outputs, the number of elements fully processed, and
// the first error; on error the offender is elems[n] and the preceding
// elements' outputs are kept, so element-level error policies can record
// it and resume with elems[n+1:].
func (t *Tree) PushBatch(streamIdx int, elems []stream.Element) ([]stream.Element, int, error) {
	if streamIdx < 0 || streamIdx >= t.q.N() {
		return nil, 0, fmt.Errorf("exec: stream %d out of range", streamIdx)
	}
	route := t.leafRoute[streamIdx]
	if route.op.parent == nil {
		// Single-operator plan (the common case): batch straight into the
		// root so the output buffer grows once per batch.
		return route.op.join.PushBatch(route.input, elems)
	}
	var out []stream.Element
	for i := range elems {
		f, err := t.feed(route.op, route.input, elems[i])
		if err != nil {
			return out, i, err
		}
		out = append(out, f...)
	}
	return out, len(elems), nil
}

// PushBatchEnds is PushBatch appending into caller-owned buffers while
// recording per-element output boundaries: after processing elems[i], out
// has length ends[base+i] where base is len(ends) at entry. The
// partitioned runtime uses the boundaries to slice one partition's outputs
// back into input-sequence order when merging partitions. Semantics
// otherwise match PushBatch: on error the offender is elems[n], it emits
// nothing (no ends entry is appended for it), and preceding elements'
// outputs are kept.
func (t *Tree) PushBatchEnds(streamIdx int, out []stream.Element, ends []int, elems []stream.Element) ([]stream.Element, []int, int, error) {
	if streamIdx < 0 || streamIdx >= t.q.N() {
		return out, ends, 0, fmt.Errorf("exec: stream %d out of range", streamIdx)
	}
	route := t.leafRoute[streamIdx]
	if route.op.parent == nil {
		m := route.op.join
		for i := range elems {
			var err error
			out, err = m.pushInto(out, route.input, elems[i])
			if err != nil {
				return out, ends, i, err
			}
			ends = append(ends, len(out))
		}
		return out, ends, len(elems), nil
	}
	for i := range elems {
		f, err := t.feed(route.op, route.input, elems[i])
		if err != nil {
			return out, ends, i, err
		}
		out = append(out, f...)
		ends = append(ends, len(out))
	}
	return out, ends, len(elems), nil
}

// feed pushes an element into an operator input and recursively forwards
// the operator's outputs to its parent until the root emits.
func (t *Tree) feed(op *treeOp, input int, e stream.Element) ([]stream.Element, error) {
	outs, err := op.join.Push(input, e)
	if err != nil {
		return nil, err
	}
	if op.parent == nil {
		return outs, nil
	}
	var final []stream.Element
	for _, o := range outs {
		f, err := t.feed(op.parent, op.inputIdx, o)
		if err != nil {
			return nil, err
		}
		final = append(final, f...)
	}
	return final, nil
}

// Flush forces pending lazy purge rounds in every operator (bottom-up)
// and forwards any resulting output punctuations; it returns the root's
// outputs.
func (t *Tree) Flush() ([]stream.Element, error) {
	var final []stream.Element
	for _, op := range t.ops {
		outs := op.join.Flush()
		if op.parent == nil {
			final = append(final, outs...)
			continue
		}
		for _, o := range outs {
			f, err := t.feed(op.parent, op.inputIdx, o)
			if err != nil {
				return nil, err
			}
			final = append(final, f...)
		}
	}
	return final, nil
}

// Sweep runs a full background clean-up pass over every operator and
// forwards any punctuations that became emittable. It returns the number
// of tuples removed across the tree plus the root's outputs.
func (t *Tree) Sweep() (int, []stream.Element, error) {
	removed := 0
	var final []stream.Element
	for _, op := range t.ops {
		n, outs := op.join.Sweep()
		removed += n
		if op.parent == nil {
			final = append(final, outs...)
			continue
		}
		for _, o := range outs {
			f, err := t.feed(op.parent, op.inputIdx, o)
			if err != nil {
				return 0, nil, err
			}
			final = append(final, f...)
		}
	}
	return removed, final, nil
}

// emitUnblocked re-tests every stored, not-yet-emitted punctuation in
// every operator (bottom-up) and forwards emissions downstream,
// returning the root's outputs. A live split filters replica state with
// raw removals that never run the purge machinery, so punctuations whose
// last matching tuples were routed away would otherwise stay blocked
// forever; this pass is Sweep's emission half without the tuple
// clean-up.
func (t *Tree) emitUnblocked() ([]stream.Element, error) {
	var final []stream.Element
	for _, op := range t.ops {
		outs := op.join.emitPendingPuncts(nil)
		if op.parent == nil {
			final = append(final, outs...)
			continue
		}
		for _, o := range outs {
			f, err := t.feed(op.parent, op.inputIdx, o)
			if err != nil {
				return nil, err
			}
			final = append(final, f...)
		}
	}
	return final, nil
}

// Operators returns the MJoin operators bottom-up (the root is last).
func (t *Tree) Operators() []*MJoin {
	out := make([]*MJoin, len(t.ops))
	for i, op := range t.ops {
		out[i] = op.join
	}
	return out
}

// Root returns the root operator.
func (t *Tree) Root() *MJoin { return t.root.join }

// StatsSnapshot returns deep-copied stats for every operator, bottom-up
// (same order as Operators). Like MJoin.StatsSnapshot it must be taken on
// the goroutine driving the tree or after quiescence; the engine Runtime
// serializes cross-goroutine snapshot requests through each shard's
// mailbox.
func (t *Tree) StatsSnapshot() []*Stats {
	out := make([]*Stats, len(t.ops))
	for i, op := range t.ops {
		out[i] = op.join.StatsSnapshot()
	}
	return out
}

// TotalState sums the stored tuples across every operator.
func (t *Tree) TotalState() int {
	total := 0
	for _, op := range t.ops {
		total += op.join.Stats().TotalState()
	}
	return total
}

// TotalPunctStore sums the stored punctuations across every operator.
func (t *Tree) TotalPunctStore() int {
	total := 0
	for _, op := range t.ops {
		total += op.join.Stats().TotalPunctStore()
	}
	return total
}

// MaxState sums the per-operator high-water marks.
func (t *Tree) MaxState() int {
	total := 0
	for _, op := range t.ops {
		total += op.join.Stats().MaxStateSize
	}
	return total
}

// OutputSchema is the root operator's output schema.
func (t *Tree) OutputSchema() *stream.Schema { return t.root.join.OutputSchema() }
