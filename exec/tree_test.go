package exec

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
)

// fig5Query builds the cyclic 3-way query of Figures 5/7/8.
func fig5Query(t *testing.T) *query.CJQ {
	t.Helper()
	q, err := query.NewBuilder().
		AddStream(mustSchema("S1", "A", "B")).
		AddStream(mustSchema("S2", "B", "C")).
		AddStream(mustSchema("S3", "A", "C")).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func fig5Schemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("S1", false, true), // S1.B
		stream.MustScheme("S2", false, true), // S2.C
		stream.MustScheme("S3", true, false), // S3.A
	)
}

// event is one raw-stream input.
type event struct {
	stream int
	el     stream.Element
}

// closedWorkload generates rounds of tuples whose attribute values live in
// a per-round window, closing every window value with punctuations on the
// schemes' attributes at the end of each round. All values are eventually
// punctuated, so every purgeable state must fully drain.
func closedWorkload(rng *rand.Rand, rounds, perRound, window int) []event {
	var evs []event
	val := func(r int) int64 { return int64(r*window + rng.Intn(window)) }
	for r := 0; r < rounds; r++ {
		for k := 0; k < perRound; k++ {
			a, b, c := val(r), val(r), val(r)
			evs = append(evs,
				event{0, stream.TupleElement(tup(a, b))},
				event{1, stream.TupleElement(tup(b, c))},
				event{2, stream.TupleElement(tup(a, c))},
			)
		}
		// Close every value of the round's window.
		for w := 0; w < window; w++ {
			v := int64(r*window + w)
			evs = append(evs,
				event{0, stream.PunctElement(punct(-1, v))}, // S1.B
				event{1, stream.PunctElement(punct(-1, v))}, // S2.C
				event{2, stream.PunctElement(punct(v, -1))}, // S3.A
			)
		}
	}
	return evs
}

// normalize re-orders a result tuple's columns into query-stream order so
// plans with different leaf orders compare equal, and renders it as a key.
func normalize(q *query.CJQ, leaves []int, t stream.Tuple) string {
	parts := make([]string, q.N())
	off := 0
	for _, leaf := range leaves {
		n := q.Stream(leaf).Arity()
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(t.Values[off+i].String())
			b.WriteByte(',')
		}
		parts[leaf] = b.String()
		off += n
	}
	return strings.Join(parts, "|")
}

// runPlan pushes the workload through a plan tree and returns the sorted
// normalized results plus the tree for inspection.
func runPlan(t *testing.T, q *query.CJQ, schemes *stream.SchemeSet, node *plan.Node, evs []event, cfg Config) ([]string, *Tree) {
	t.Helper()
	cfg.Query = q
	cfg.Schemes = schemes
	tree, err := NewTree(cfg, node)
	if err != nil {
		t.Fatal(err)
	}
	leaves := node.Leaves()
	var results []string
	for _, ev := range evs {
		outs, err := tree.Push(ev.stream, ev.el)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			if !o.IsPunct() {
				results = append(results, normalize(q, leaves, o.Tuple()))
			}
		}
	}
	outs, err := tree.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if !o.IsPunct() {
			results = append(results, normalize(q, leaves, o.Tuple()))
		}
	}
	sort.Strings(results)
	return results, tree
}

// TestPlanShapesAgreeOnResults: the same workload through the flat MJoin,
// through every binary tree shape, and with purging disabled, must emit
// identical result multisets — purging and plan shape never change the
// answer, only the state.
func TestPlanShapesAgreeOnResults(t *testing.T) {
	q := fig5Query(t)
	schemes := fig5Schemes()
	rng := rand.New(rand.NewSource(1))
	evs := closedWorkload(rng, 6, 4, 3)

	flat := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	baseline, _ := runPlan(t, q, schemes, flat, evs, Config{DisablePurge: true})
	if len(baseline) == 0 {
		t.Fatal("workload produced no results; test is vacuous")
	}

	shapes := []*plan.Node{
		flat,
		plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)),
		plan.Join(plan.Join(plan.Leaf(1), plan.Leaf(2)), plan.Leaf(0)),
		plan.Join(plan.Leaf(2), plan.Join(plan.Leaf(0), plan.Leaf(1))),
	}
	for _, shape := range shapes {
		for _, batch := range []int{1, 16} {
			got, _ := runPlan(t, q, schemes, shape, evs, Config{PurgeBatch: batch})
			if len(got) != len(baseline) {
				t.Fatalf("plan %s batch %d: %d results, want %d",
					shape.Render(q), batch, len(got), len(baseline))
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Fatalf("plan %s batch %d: result %d = %s, want %s",
						shape.Render(q), batch, i, got[i], baseline[i])
				}
			}
		}
	}
}

// TestSafePlanDrains: on the closed workload the safe MJoin plan's state
// must drain to zero and its high-water mark must stay near the per-round
// volume, while the purge-disabled baseline retains everything.
func TestSafePlanDrains(t *testing.T) {
	q := fig5Query(t)
	schemes := fig5Schemes()
	rng := rand.New(rand.NewSource(2))
	evs := closedWorkload(rng, 10, 5, 3)
	flat := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))

	_, purged := runPlan(t, q, schemes, flat, evs, Config{})
	_, kept := runPlan(t, q, schemes, flat, evs, Config{DisablePurge: true})

	if got := purged.TotalState(); got != 0 {
		t.Fatalf("safe plan should drain to 0 stored tuples, has %d", got)
	}
	if kept.TotalState() != 10*5*3 {
		t.Fatalf("baseline should retain all %d tuples, has %d", 10*5*3, kept.TotalState())
	}
	if purged.MaxState() >= kept.MaxState() {
		t.Fatalf("purged high-water %d should be below baseline %d",
			purged.MaxState(), kept.MaxState())
	}
}

// TestFigure7RuntimeBehavior is the runtime counterpart of Figure 7: under
// Example 3's schemes the binary tree's lower operator retains the S1
// tuples forever (its input is not purgeable), while the flat MJoin plan
// drains. Same query, same schemes, same workload — only the plan shape
// differs.
func TestFigure7RuntimeBehavior(t *testing.T) {
	q := fig5Query(t)
	schemes := fig5Schemes()
	rng := rand.New(rand.NewSource(3))
	rounds, perRound := 8, 4
	evs := closedWorkload(rng, rounds, perRound, 2)

	flat := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	tree := plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))

	_, mj := runPlan(t, q, schemes, flat, evs, Config{})
	_, bt := runPlan(t, q, schemes, tree, evs, Config{})

	if mj.TotalState() != 0 {
		t.Fatalf("MJoin plan should drain, has %d", mj.TotalState())
	}
	lower := bt.Operators()[0]
	// The lower operator's S1 input is not purgeable: every S1 tuple stays.
	if got, want := lower.Stats().StateSize[0], rounds*perRound; got != want {
		t.Fatalf("lower op S1 state = %d, want %d (unpurgeable)", got, want)
	}
	if lower.Purgeable(0) {
		t.Fatal("lower op S1 input must not be purgeable")
	}
}

// TestTreePropagationPurgesUpper: in a fully punctuated chain query run
// as a binary tree, the upper operator's intermediate input must also
// drain — which requires the lower operator to emit output punctuations.
func TestTreePropagationPurgesUpper(t *testing.T) {
	q, err := query.NewBuilder().
		AddStream(mustSchema("S1", "A", "B")).
		AddStream(mustSchema("S2", "B", "C")).
		AddStream(mustSchema("S3", "C", "D")).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Punctuate every join attribute everywhere.
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
	)
	ok, _, err := plan.CheckPlan(q, schemes, plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tree plan should be safe under full punctuation")
	}
	tree, err := NewTree(Config{Query: q, Schemes: schemes},
		plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)))
	if err != nil {
		t.Fatal(err)
	}
	push := func(s int, e stream.Element) {
		if _, err := tree.Push(s, e); err != nil {
			t.Fatal(err)
		}
	}
	for r := int64(0); r < 20; r++ {
		push(0, stream.TupleElement(tup(r*10, r)))
		push(1, stream.TupleElement(tup(r, r)))
		push(2, stream.TupleElement(tup(r, r*100)))
		// Close the round's value on every scheme.
		push(0, stream.PunctElement(punct(-1, r))) // S1.B
		push(1, stream.PunctElement(punct(r, -1))) // S2.B
		push(1, stream.PunctElement(punct(-1, r))) // S2.C
		push(2, stream.PunctElement(punct(r, -1))) // S3.C
	}
	lower, upper := tree.Operators()[0], tree.Operators()[1]
	if lower.Stats().TotalState() != 0 {
		t.Fatalf("lower op should drain, state=%v", lower.Stats().StateSize)
	}
	if upper.Stats().TotalState() != 0 {
		t.Fatalf("upper op should drain via propagated punctuations, state=%v", upper.Stats().StateSize)
	}
	if lower.Stats().OutPuncts == 0 {
		t.Fatal("lower op must have propagated punctuations")
	}
}
