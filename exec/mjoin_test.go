package exec

import (
	"testing"

	"punctsafe/query"
	"punctsafe/stream"
)

func intAttrs(names ...string) []stream.Attribute {
	out := make([]stream.Attribute, len(names))
	for i, n := range names {
		out[i] = stream.Attribute{Name: n, Kind: stream.KindInt}
	}
	return out
}

func mustSchema(name string, attrs ...string) *stream.Schema {
	return stream.MustSchema(name, intAttrs(attrs...)...)
}

func tup(vals ...int64) stream.Tuple {
	vs := make([]stream.Value, len(vals))
	for i, v := range vals {
		vs[i] = stream.Int(v)
	}
	return stream.NewTuple(vs...)
}

// punct builds a punctuation from int patterns; -1 means wildcard.
func punct(vals ...int64) stream.Punctuation {
	pats := make([]stream.Pattern, len(vals))
	for i, v := range vals {
		if v == -1 {
			pats[i] = stream.Wildcard()
		} else {
			pats[i] = stream.Const(stream.Int(v))
		}
	}
	return stream.MustPunctuation(pats...)
}

// binaryQuery is R(K,V) join S(K,W) on K.
func binaryQuery(t *testing.T) *query.CJQ {
	t.Helper()
	q, err := query.NewBuilder().
		AddStream(mustSchema("R", "K", "V")).
		AddStream(mustSchema("S", "K", "W")).
		Join("R.K", "S.K").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func bothSideSchemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("R", true, false),
		stream.MustScheme("S", true, false),
	)
}

func pushT(t *testing.T, m *MJoin, input int, tu stream.Tuple) []stream.Element {
	t.Helper()
	out, err := m.Push(input, stream.TupleElement(tu))
	if err != nil {
		t.Fatalf("push tuple: %v", err)
	}
	return out
}

func pushP(t *testing.T, m *MJoin, input int, p stream.Punctuation) []stream.Element {
	t.Helper()
	out, err := m.Push(input, stream.PunctElement(p))
	if err != nil {
		t.Fatalf("push punct: %v", err)
	}
	return out
}

func countTuples(els []stream.Element) int {
	n := 0
	for _, e := range els {
		if !e.IsPunct() {
			n++
		}
	}
	return n
}

func TestBinaryJoinResults(t *testing.T) {
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes()})
	if err != nil {
		t.Fatal(err)
	}
	if got := countTuples(pushT(t, m, 0, tup(1, 10))); got != 0 {
		t.Fatalf("no match expected, got %d results", got)
	}
	out := pushT(t, m, 1, tup(1, 100))
	if countTuples(out) != 1 {
		t.Fatalf("want 1 result, got %d", countTuples(out))
	}
	r := out[0].Tuple()
	want := tup(1, 10, 1, 100)
	for i := range want.Values {
		if !r.Values[i].Equal(want.Values[i]) {
			t.Fatalf("result = %s, want %s", r, want)
		}
	}
	// Symmetric: another R tuple matching the stored S tuple.
	if got := countTuples(pushT(t, m, 0, tup(1, 20))); got != 1 {
		t.Fatalf("want 1 result, got %d", got)
	}
	// Duplicate values join many-to-many.
	pushT(t, m, 1, tup(1, 200))
	// Now stored: R{(1,10),(1,20)}, S{(1,100),(1,200)}; a third R tuple
	// with K=1 joins both S tuples.
	if got := countTuples(pushT(t, m, 0, tup(1, 30))); got != 2 {
		t.Fatalf("want 2 results, got %d", got)
	}
}

func TestBinaryJoinPurge(t *testing.T) {
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes()})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Purgeable(0) || !m.Purgeable(1) {
		t.Fatal("both inputs should be purgeable")
	}
	pushT(t, m, 0, tup(1, 10))
	pushT(t, m, 0, tup(2, 20))
	pushT(t, m, 1, tup(1, 100))
	if m.Stats().StateSize[0] != 2 || m.Stats().StateSize[1] != 1 {
		t.Fatalf("state sizes = %v", m.Stats().StateSize)
	}
	// Punctuation from S on K=1: purges the R tuple with K=1 (no future S
	// tuples with K=1 can join it).
	pushP(t, m, 1, punct(1, -1))
	if m.Stats().StateSize[0] != 1 {
		t.Fatalf("R state after S punct = %d, want 1", m.Stats().StateSize[0])
	}
	if m.Stats().StateSize[1] != 1 {
		t.Fatalf("S state must be untouched, got %d", m.Stats().StateSize[1])
	}
	// Punctuation from R on K=1 purges the stored S tuple with K=1.
	pushP(t, m, 0, punct(1, -1))
	if m.Stats().StateSize[1] != 0 {
		t.Fatalf("S state after R punct = %d, want 0", m.Stats().StateSize[1])
	}
	// K=2 R tuple survives until S punctuates K=2.
	if m.Stats().StateSize[0] != 1 {
		t.Fatalf("R state = %d, want 1", m.Stats().StateSize[0])
	}
	pushP(t, m, 1, punct(2, -1))
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("R state = %d, want 0", m.Stats().StateSize[0])
	}
	if m.Stats().TuplesPurged[0] != 2 || m.Stats().TuplesPurged[1] != 1 {
		t.Fatalf("purged = %v", m.Stats().TuplesPurged)
	}
}

func TestPurgeNeverLosesResults(t *testing.T) {
	// Same element sequence with and without purging must emit the same
	// results. The sequence punctuates K=1 on S, then sends more R
	// tuples with K=1 (they can never match) and fresh K=2 traffic.
	run := func(disable bool) (results int, state int) {
		m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes(), DisablePurge: disable})
		if err != nil {
			t.Fatal(err)
		}
		seq := []struct {
			input int
			el    stream.Element
		}{
			{0, stream.TupleElement(tup(1, 10))},
			{1, stream.TupleElement(tup(1, 100))}, // match -> 1
			{1, stream.PunctElement(punct(1, -1))},
			{0, stream.TupleElement(tup(1, 11))}, // joins stored S (1,100) -> 1
			{0, stream.TupleElement(tup(2, 20))},
			{1, stream.TupleElement(tup(2, 200))}, // match -> 1
			{0, stream.PunctElement(punct(1, -1))},
			{1, stream.TupleElement(tup(2, 201))}, // joins stored R (2,20) -> 1
		}
		total := 0
		for _, s := range seq {
			out, err := m.Push(s.input, s.el)
			if err != nil {
				t.Fatal(err)
			}
			total += countTuples(out)
		}
		return total, m.Stats().TotalState()
	}
	withPurge, stateWith := run(false)
	noPurge, stateWithout := run(true)
	if withPurge != noPurge {
		t.Fatalf("results with purge = %d, without = %d", withPurge, noPurge)
	}
	if stateWith >= stateWithout {
		t.Fatalf("purging should shrink state: with=%d without=%d", stateWith, stateWithout)
	}
}

// chainQuery is the Figure 3 3-way chain: S1(A,B) |x| S2(B,C) |x| S3(C,D).
func chainQuery(t *testing.T) *query.CJQ {
	t.Helper()
	q, err := query.NewBuilder().
		AddStream(mustSchema("S1", "A", "B")).
		AddStream(mustSchema("S2", "B", "C")).
		AddStream(mustSchema("S3", "C", "D")).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestChainedPurge reproduces §3.2's motivating example: to purge the S1
// tuple (a1,b1), the operator needs the punctuation (b1,*) from S2 AND
// punctuations (ci,*) from S3 for every c in the joinable frontier
// T_t[Υ_S2].
func TestChainedPurge(t *testing.T) {
	q := chainQuery(t)
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S2", true, false), // punctuations on S2.B
		stream.MustScheme("S3", true, false), // punctuations on S3.C
	)
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Purgeable(0) {
		t.Fatal("S1 must be purgeable by the chained strategy")
	}
	if m.Purgeable(1) || m.Purgeable(2) {
		t.Fatal("S2/S3 must not be purgeable under these schemes")
	}

	pushT(t, m, 0, tup(100, 1)) // t = (a1=100, b1=1)
	pushT(t, m, 1, tup(1, 7))   // joinable S2 tuple, C=7
	pushT(t, m, 1, tup(1, 8))   // joinable S2 tuple, C=8
	pushT(t, m, 1, tup(2, 9))   // NOT joinable with t (B=2)

	// Punctuation (1,*) from S2 alone is not enough: the frontier's C
	// values {7,8} must also be punctuated in S3.
	pushP(t, m, 1, punct(1, -1))
	if m.Stats().StateSize[0] != 1 {
		t.Fatalf("t purged too early: S2 punctuation alone is insufficient")
	}
	pushP(t, m, 2, punct(7, -1))
	if m.Stats().StateSize[0] != 1 {
		t.Fatalf("t purged too early: C=8 is still open")
	}
	pushP(t, m, 2, punct(8, -1))
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("t should be purged once (1,*) from S2 and (7,*),(8,*) from S3 arrived; state=%v",
			m.Stats().StateSize)
	}
	// The non-joinable S2 tuple and the untouched states stay.
	if m.Stats().StateSize[1] != 3 || m.Stats().StateSize[2] != 0 {
		t.Fatalf("unexpected states %v", m.Stats().StateSize)
	}
}

// TestChainedPurgeOrderIndependence: the same punctuations arriving in the
// opposite order must produce the same purge outcome.
func TestChainedPurgeOrderIndependence(t *testing.T) {
	q := chainQuery(t)
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S3", true, false),
	)
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 0, tup(100, 1))
	pushT(t, m, 1, tup(1, 7))
	// S3 punctuation first, then S2: purge must still trigger.
	pushP(t, m, 2, punct(7, -1))
	if m.Stats().StateSize[0] != 1 {
		t.Fatal("S3 punctuation alone must not purge t")
	}
	pushP(t, m, 1, punct(1, -1))
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("t should purge when the full chain is covered, state=%v", m.Stats().StateSize)
	}
}

// TestEmptyFrontierPurge: when the S2 frontier for t is empty, the S2
// punctuation alone suffices (no S3 punctuations are required because no
// stored S2 tuple can bridge t to S3).
func TestEmptyFrontierPurge(t *testing.T) {
	q := chainQuery(t)
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S3", true, false),
	)
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 0, tup(100, 1))
	pushP(t, m, 1, punct(1, -1))
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("t with empty S2 frontier should purge on the S2 punctuation alone, state=%v",
			m.Stats().StateSize)
	}
}

// TestMultiAttrPurge reproduces the §4.2 example on the Figure 8 query:
// S1(A,B) |x| S2(B,C) |x| S3(A,C) cyclic, schemes {S1(_,+), S2(+,_),
// S2(_,+), S3(+,+)}. The S1 tuple t=(a1,b1) purges once (b1,*) arrives
// from S2 and (a1,ci) arrives from S3 for every frontier value ci.
func TestMultiAttrPurge(t *testing.T) {
	q, err := query.NewBuilder().
		AddStream(mustSchema("S1", "A", "B")).
		AddStream(mustSchema("S2", "B", "C")).
		AddStream(mustSchema("S3", "A", "C")).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, true),
	)
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !m.Purgeable(i) {
			t.Fatalf("input %d must be purgeable (Theorem 3)", i)
		}
	}

	pushT(t, m, 0, tup(5, 1)) // t = (a1=5, b1=1)
	pushT(t, m, 1, tup(1, 7)) // frontier C=7
	pushT(t, m, 1, tup(1, 8)) // frontier C=8

	pushP(t, m, 1, punct(1, -1)) // (b1,*) from S2 via scheme S2(+,_)
	if m.Stats().StateSize[0] != 1 {
		t.Fatal("t needs the S3 multi-attribute punctuations too")
	}
	pushP(t, m, 2, punct(5, 7)) // (a1,c1) from S3 via scheme S3(+,+)
	if m.Stats().StateSize[0] != 1 {
		t.Fatal("C=8 still open")
	}
	pushP(t, m, 2, punct(5, 8)) // (a1,c2)
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("t should purge; states=%v", m.Stats().StateSize)
	}
}

// TestThreeWayJoinResults checks multi-way result emission on the chain.
func TestThreeWayJoinResults(t *testing.T) {
	q := chainQuery(t)
	m, err := NewMJoin(Config{Query: q, Schemes: stream.NewSchemeSet()})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 0, tup(100, 1))
	pushT(t, m, 2, tup(7, 700))
	out := pushT(t, m, 1, tup(1, 7)) // completes S1-S2-S3
	if countTuples(out) != 1 {
		t.Fatalf("want 1 three-way result, got %d", countTuples(out))
	}
	r := out[0].Tuple()
	want := tup(100, 1, 1, 7, 7, 700)
	for i := range want.Values {
		if !r.Values[i].Equal(want.Values[i]) {
			t.Fatalf("result = %s, want %s", r, want)
		}
	}
	// A second S3 tuple with C=7 creates another full result.
	if got := countTuples(pushT(t, m, 2, tup(7, 701))); got != 1 {
		t.Fatalf("want 1, got %d", got)
	}
	// Partial matches emit nothing.
	if got := countTuples(pushT(t, m, 1, tup(99, 42))); got != 0 {
		t.Fatalf("want 0, got %d", got)
	}
}

// TestCascadePurge: purging a bridging S2 tuple shrinks the frontier of an
// S1 tuple, unlocking its purge without any further punctuation.
func TestCascadePurge(t *testing.T) {
	q := chainQuery(t)
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true), // punct on S1.B
		stream.MustScheme("S2", true, false), // punct on S2.B
		stream.MustScheme("S2", false, true), // punct on S2.C
		stream.MustScheme("S3", false, true), // punct on S3.D? no — S3.C:
	)
	_ = schemes
	// Schemes: purging S2 tuples needs punctuations from S1 (on B) and S3
	// (on C); purging S1 tuples needs punctuations from S2 (on B) and S3
	// (on C, for the frontier).
	schemes = stream.NewSchemeSet(
		stream.MustScheme("S1", false, true), // S1.B -> purges S2 side
		stream.MustScheme("S2", true, false), // S2.B -> purges S1 side
		stream.MustScheme("S3", true, false), // S3.C -> purges S2/frontier side
	)
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 0, tup(100, 1)) // t
	pushT(t, m, 1, tup(1, 7))   // u bridges t to S3 with C=7
	pushP(t, m, 1, punct(1, -1))
	if m.Stats().StateSize[0] != 1 {
		t.Fatal("t still blocked by u's C=7 frontier")
	}
	// Punctuate S1.B=1 and S3.C=7: u becomes purgeable (its chain: no new
	// S1 tuples with B=1, frontier toward S3 closed by C=7; wait — u's
	// plan needs punctuations from S1 on B and from S3 on C).
	pushP(t, m, 0, punct(-1, 1))
	if m.Stats().StateSize[1] != 1 {
		t.Fatal("u still blocked by S3 punctuation")
	}
	pushP(t, m, 2, punct(7, -1))
	// u purges; with u gone, t's frontier toward S2 is empty... but t's
	// purge requires the (1,*) punctuation from S2 (already stored) and
	// then S3 coverage of an empty frontier — vacuous. Cascade should
	// remove both.
	if m.Stats().StateSize[1] != 0 {
		t.Fatalf("u should purge; states=%v", m.Stats().StateSize)
	}
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("t should cascade-purge after u; states=%v", m.Stats().StateSize)
	}
}

// TestLazyPurgeBatching: with PurgeBatch=4 the purge work is deferred,
// but results are identical and a final Flush catches up with eager mode.
func TestLazyPurgeBatching(t *testing.T) {
	mk := func(batch int) *MJoin {
		m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes(), PurgeBatch: batch})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	eager, lazy := mk(1), mk(64)
	var eagerResults, lazyResults int
	for i := int64(0); i < 50; i++ {
		for _, m := range []*MJoin{eager, lazy} {
			r := 0
			r += countTuples(pushT(t, m, 0, tup(i, i*10)))
			r += countTuples(pushT(t, m, 1, tup(i, i*100)))
			o1 := pushP(t, m, 0, punct(i, -1))
			o2 := pushP(t, m, 1, punct(i, -1))
			r += countTuples(o1) + countTuples(o2)
			if m == eager {
				eagerResults += r
			} else {
				lazyResults += r
			}
		}
	}
	lazy.Flush()
	if eagerResults != lazyResults {
		t.Fatalf("results eager=%d lazy=%d", eagerResults, lazyResults)
	}
	if eager.Stats().TotalState() != 0 {
		t.Fatalf("eager end state = %d, want 0", eager.Stats().TotalState())
	}
	if lazy.Stats().TotalState() != 0 {
		t.Fatalf("lazy end state after Flush = %d, want 0", lazy.Stats().TotalState())
	}
	if lazy.Stats().MaxStateSize < eager.Stats().MaxStateSize {
		t.Fatalf("lazy high-water %d should be >= eager %d",
			lazy.Stats().MaxStateSize, eager.Stats().MaxStateSize)
	}
}

// TestOutputPunctuationPropagation: once a punctuation's matching tuples
// are gone from its input's state, the operator emits an output
// punctuation on the corresponding output columns.
func TestOutputPunctuationPropagation(t *testing.T) {
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes()})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 0, tup(1, 10))
	pushT(t, m, 1, tup(1, 100))
	// R punctuates K=1; the stored R tuple (1,10) still matches, so no
	// output punctuation yet — but the S tuple (1,100) purges.
	out := pushP(t, m, 0, punct(1, -1))
	if len(out) != 0 {
		t.Fatalf("no output punct while R still holds K=1; got %v", out)
	}
	// S punctuates K=1: the R tuple purges; now BOTH stored sides are
	// free of K=1, so both punctuations propagate.
	out = pushP(t, m, 1, punct(1, -1))
	punctCount := 0
	for _, e := range out {
		if e.IsPunct() {
			punctCount++
			p := e.Punct()
			// Output schema: R_K, R_V, S_K, S_W. The punctuation must
			// constrain K columns only.
			for i, pat := range p.Patterns {
				isK := i == 0 || i == 2
				if isK && !pat.IsWildcard() && pat.Value().AsInt() != 1 {
					t.Fatalf("bad output punct %s", p)
				}
				if !isK && !pat.IsWildcard() {
					t.Fatalf("output punct constrains non-K column: %s", p)
				}
			}
		}
	}
	if punctCount != 2 {
		t.Fatalf("want 2 output punctuations (one per input scheme), got %d: %v", punctCount, out)
	}
	if m.Stats().OutPuncts != 2 {
		t.Fatalf("OutPuncts = %d", m.Stats().OutPuncts)
	}
}

// TestPunctuationStorePurge: §5.1 counter-punctuation purging drops a
// stored punctuation once its partner side is fully closed.
func TestPunctuationStorePurge(t *testing.T) {
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes(), PurgePunctuations: true})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 0, tup(1, 10))
	pushP(t, m, 1, punct(1, -1)) // S punctuates K=1: purges R's tuple, stored in S's store
	if m.Stats().PunctStoreSize[1] != 1 {
		t.Fatalf("punct store S = %d, want 1", m.Stats().PunctStoreSize[1])
	}
	// Counter punctuation from R on K=1: no more R tuples with K=1, and no
	// stored R tuples with K=1 remain -> S's punctuation can be dropped.
	// Symmetrically R's own punctuation is droppable immediately since S
	// holds neither tuples nor... S's punctuation still stored? The
	// condition is per-store; after this push both stores should clear.
	pushP(t, m, 0, punct(1, -1))
	if got := m.Stats().PunctStoreSize[1]; got != 0 {
		t.Fatalf("S punct store after counter-punct = %d, want 0", got)
	}
	if got := m.Stats().PunctStoreSize[0]; got != 0 {
		t.Fatalf("R punct store = %d, want 0", got)
	}
	if m.Stats().PunctsPurged[0]+m.Stats().PunctsPurged[1] == 0 {
		t.Fatal("expected punctuation purges to be counted")
	}
}

// TestPunctLifespan: expired punctuations stop covering purge checks and
// are removed by the periodic cleanup.
func TestPunctLifespan(t *testing.T) {
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes(), PunctLifespan: 10})
	if err != nil {
		t.Fatal(err)
	}
	pushP(t, m, 1, punct(42, -1))
	if m.Stats().PunctStoreSize[1] != 1 {
		t.Fatal("punctuation should be stored")
	}
	// Advance the clock past the lifespan with unrelated traffic.
	for i := int64(0); i < 300; i++ {
		pushT(t, m, 0, tup(1000+i, 0))
	}
	if m.Stats().PunctStoreSize[1] != 0 {
		t.Fatalf("expired punctuation should be cleaned up, store=%d", m.Stats().PunctStoreSize[1])
	}
	// A tuple with K=42 arriving now must NOT be purged by the expired
	// punctuation.
	pushT(t, m, 0, tup(42, 1))
	sizeBefore := m.Stats().StateSize[0]
	m.Sweep()
	if m.Stats().StateSize[0] != sizeBefore {
		t.Fatal("expired punctuation must not purge")
	}
}

// TestIrrelevantPunctuationDropped: punctuations that instantiate no
// registered scheme are consumed but never stored.
func TestIrrelevantPunctuationDropped(t *testing.T) {
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes()})
	if err != nil {
		t.Fatal(err)
	}
	// Scheme is on R.K; punctuation on R.V instantiates nothing.
	pushP(t, m, 0, punct(-1, 7))
	if m.Stats().PunctStoreSize[0] != 0 {
		t.Fatal("irrelevant punctuation must not be stored")
	}
	if m.Stats().PunctsIn[0] != 1 {
		t.Fatal("punctuation should still be counted as consumed")
	}
}

// TestSweepMatchesEager: processing with purging disabled then invoking
// Sweep must reach the same state sizes as eager purging (the background
// clean-up equivalence).
func TestSweepMatchesEager(t *testing.T) {
	eager, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes()})
	if err != nil {
		t.Fatal(err)
	}
	lazyAll, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes(), PurgeBatch: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		for _, m := range []*MJoin{eager, lazyAll} {
			pushT(t, m, 0, tup(i%8, i))
			pushT(t, m, 1, tup(i%8, i))
			if i%3 == 0 {
				pushP(t, m, 0, punct(i%8, -1))
			}
			if i%5 == 0 {
				pushP(t, m, 1, punct(i%8, -1))
			}
		}
	}
	lazyAll.Sweep()
	for input := 0; input < 2; input++ {
		if eager.Stats().StateSize[input] != lazyAll.Stats().StateSize[input] {
			t.Fatalf("input %d: eager state %d != sweep state %d",
				input, eager.Stats().StateSize[input], lazyAll.Stats().StateSize[input])
		}
	}
}

// TestUnsafeInputGrows: with a one-sided scheme set the unpurgeable side
// grows without bound while the purgeable side stays flat (the compile-
// time rejection rationale).
func TestUnsafeInputGrows(t *testing.T) {
	schemes := stream.NewSchemeSet(stream.MustScheme("S", true, false)) // only S punctuates
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	if m.Purgeable(1) {
		t.Fatal("S must not be purgeable (no scheme on R)")
	}
	if !m.Purgeable(0) {
		t.Fatal("R must be purgeable (S punctuates K)")
	}
	for i := int64(0); i < 100; i++ {
		pushT(t, m, 0, tup(i, i))
		pushT(t, m, 1, tup(i, i))
		pushP(t, m, 1, punct(i, -1)) // closes R's tuple i
	}
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("R state = %d, want 0", m.Stats().StateSize[0])
	}
	if m.Stats().StateSize[1] != 100 {
		t.Fatalf("S state = %d, want 100 (unpurgeable)", m.Stats().StateSize[1])
	}
}
