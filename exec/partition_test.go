package exec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
)

// starQuery builds a 3-way star query equi-joined on one shared attribute
// (every stream's A) — the co-partitionable shape the partitioned tree
// routes on.
func starQuery(t *testing.T) *query.CJQ {
	t.Helper()
	q, err := query.NewBuilder().
		AddStream(mustSchema("S1", "A", "B")).
		AddStream(mustSchema("S2", "A", "C")).
		AddStream(mustSchema("S3", "A", "D")).
		Join("S1.A", "S2.A").
		Join("S2.A", "S3.A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func starSchemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("S1", true, false), // S1.A
		stream.MustScheme("S2", true, false), // S2.A
		stream.MustScheme("S3", true, false), // S3.A
	)
}

// starWorkload generates rounds of key-windowed tuples on all three
// streams, closing every key of the round with punctuations on each
// stream's A at the end of the round.
func starWorkload(rng *rand.Rand, rounds, perRound, window int) []event {
	var evs []event
	val := func(r int) int64 { return int64(r*window + rng.Intn(window)) }
	for r := 0; r < rounds; r++ {
		for k := 0; k < perRound; k++ {
			evs = append(evs,
				event{0, stream.TupleElement(tup(val(r), int64(k)))},
				event{1, stream.TupleElement(tup(val(r), int64(k+100)))},
				event{2, stream.TupleElement(tup(val(r), int64(k+200)))},
			)
		}
		for w := 0; w < window; w++ {
			v := int64(r*window + w)
			evs = append(evs,
				event{0, stream.PunctElement(punct(v, -1))},
				event{1, stream.PunctElement(punct(v, -1))},
				event{2, stream.PunctElement(punct(v, -1))},
			)
		}
	}
	return evs
}

// TestPartitionedTreeMatchesSequential: for every P, driving the
// partitioned tree's sequential reference path (Push / Flush) over a
// closed workload must produce the exact element sequence — result tuples
// AND output punctuations, in order — of the single Tree, and both must
// drain to zero state.
func TestPartitionedTreeMatchesSequential(t *testing.T) {
	q := starQuery(t)
	schemes := starSchemes()
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	evs := starWorkload(rand.New(rand.NewSource(11)), 6, 5, 3)
	cfg := Config{Query: q, Schemes: schemes}

	ref, err := NewTree(cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, ev := range evs {
		outs, err := ref.Push(ev.stream, ev.el)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			want = append(want, o.String())
		}
	}
	outs, err := ref.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		want = append(want, o.String())
	}
	if len(want) == 0 {
		t.Fatal("workload produced no outputs; test is vacuous")
	}
	if ref.TotalState() != 0 {
		t.Fatalf("reference tree should drain, has %d tuples", ref.TotalState())
	}

	for _, p := range []int{1, 2, 3, 4} {
		pt, err := NewPartitionedTree(cfg, root, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		var got []string
		for _, ev := range evs {
			outs, err := pt.Push(ev.stream, ev.el)
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			for _, o := range outs {
				got = append(got, o.String())
			}
		}
		outs, err := pt.Flush()
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for _, o := range outs {
			got = append(got, o.String())
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d emitted %d elements, single tree %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d element %d diverges:\n  partitioned: %s\n  single tree: %s", p, i, got[i], want[i])
			}
		}
		if pt.TotalState() != 0 {
			t.Fatalf("p=%d should drain, has %d tuples", p, pt.TotalState())
		}
		if p > 1 {
			spread := 0
			for i := 0; i < p; i++ {
				if pt.Partition(i).StatsSnapshot()[0].TuplesIn[0] > 0 {
					spread++
				}
			}
			if spread < 2 {
				t.Fatalf("p=%d: tuples landed in %d replicas; routing is degenerate", p, spread)
			}
		}
	}
}

// TestPartitionedSnapshotRoundTrip: snapshotting a partitioned tree
// mid-stream and restoring into a fresh one must continue exactly like the
// uninterrupted tree — outputs, state, and gate alignment all carry over.
func TestPartitionedSnapshotRoundTrip(t *testing.T) {
	q := starQuery(t)
	schemes := starSchemes()
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	evs := starWorkload(rand.New(rand.NewSource(12)), 6, 5, 3)
	cfg := Config{Query: q, Schemes: schemes}
	const p = 3
	half := len(evs) / 2

	run := func(pt *PartitionedTree, evs []event) []string {
		var out []string
		for _, ev := range evs {
			outs, err := pt.Push(ev.stream, ev.el)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range outs {
				out = append(out, o.String())
			}
		}
		return out
	}

	orig, err := NewPartitionedTree(cfg, root, p)
	if err != nil {
		t.Fatal(err)
	}
	run(orig, evs[:half])
	var snap bytes.Buffer
	if err := orig.WriteState(&snap); err != nil {
		t.Fatal(err)
	}

	restored, err := NewPartitionedTree(cfg, root, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := restored.DecodeState(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.InstallState(st); err != nil {
		t.Fatal(err)
	}
	if restored.TotalState() != orig.TotalState() || restored.TotalPunctStore() != orig.TotalPunctStore() {
		t.Fatalf("restored state %d/%d tuples/puncts, want %d/%d",
			restored.TotalState(), restored.TotalPunctStore(), orig.TotalState(), orig.TotalPunctStore())
	}

	want := run(orig, evs[half:])
	got := run(restored, evs[half:])
	if len(want) == 0 {
		t.Fatal("second half produced no outputs; test is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("restored tree emitted %d elements after the snapshot, original %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d diverges after restore:\n  restored: %s\n  original: %s", i, got[i], want[i])
		}
	}

	// A snapshot only restores into a tree with the same partition count.
	other, err := NewPartitionedTree(cfg, root, p+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.DecodeState(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("decode into %d partitions = %v, want ErrCorruptState", p+1, err)
	}
}

// TestPartitionedTreeNotCoPartitionable: the cyclic Figure-5 query joins
// on three distinct attribute classes, none spanning all streams, so the
// partitioned tree must refuse it with the sentinel the engine's fallback
// dispatches on.
func TestPartitionedTreeNotCoPartitionable(t *testing.T) {
	q := fig5Query(t)
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	_, err := NewPartitionedTree(Config{Query: q, Schemes: fig5Schemes()}, root, 2)
	if !errors.Is(err, plan.ErrNotCoPartitionable) {
		t.Fatalf("NewPartitionedTree = %v, want ErrNotCoPartitionable", err)
	}
}

// TestPartitionedTreeValidation rejects out-of-range partition counts.
func TestPartitionedTreeValidation(t *testing.T) {
	q := starQuery(t)
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	cfg := Config{Query: q, Schemes: starSchemes()}
	for _, p := range []int{0, -1, maxPartitions + 1} {
		if _, err := NewPartitionedTree(cfg, root, p); err == nil {
			t.Fatalf("NewPartitionedTree accepted partition count %d", p)
		}
	}
}

// TestAlignmentGateSingleEmission pins the gate invariant directly: a
// punctuation emitted by only some replicas is withheld; the full set
// releases exactly one merged copy, and the gate resets for re-emission.
func TestAlignmentGateSingleEmission(t *testing.T) {
	q := starQuery(t)
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	pt, err := NewPartitionedTree(Config{Query: q, Schemes: starSchemes()}, root, 2)
	if err != nil {
		t.Fatal(err)
	}
	pe := stream.PunctElement(punct(7, -1, 7, -1, 7, -1))
	for round := 0; round < 2; round++ {
		if out := pt.MergeOutputs(nil, 0, []stream.Element{pe}); len(out) != 0 {
			t.Fatalf("round %d: gate released %d elements after 1 of 2 replicas", round, len(out))
		}
		out := pt.MergeOutputs(nil, 1, []stream.Element{pe})
		if len(out) != 1 || out[0].String() != pe.String() {
			t.Fatalf("round %d: gate released %v after full set, want exactly the punctuation", round, out)
		}
	}
	if len(pt.gate) != 0 {
		t.Fatalf("gate should be empty after balanced emissions, holds %d entries", len(pt.gate))
	}
}
