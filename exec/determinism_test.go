package exec

import (
	"testing"

	"punctsafe/query"
	"punctsafe/stream"
	"punctsafe/workload"
)

// captureRun drives a feed through a fresh MJoin and records the full
// emitted element sequence (result tuples and output punctuations, in
// order) as strings.
func captureRun(t *testing.T, cfg Config, feed func(m *MJoin, emit func([]stream.Element))) []string {
	t.Helper()
	m, err := NewMJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seq []string
	emit := func(outs []stream.Element) {
		for _, o := range outs {
			seq = append(seq, o.String())
		}
	}
	feed(m, emit)
	emit(m.Flush())
	return seq
}

// TestProbeExpansionDeterministic: when an arriving tuple probes a state
// holding several matches, the results must come out in tupleID (arrival)
// order — not Go map order — so two identical runs emit identical
// sequences. Regression test for the map-iteration nondeterminism in
// joinState.
func TestProbeExpansionDeterministic(t *testing.T) {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	q := query.NewBuilder().
		AddStream(stream.MustSchema("R", ia("A"))).
		AddStream(stream.MustSchema("S", ia("A"), ia("C"))).
		Join("R.A", "S.A").
		MustBuild()
	schemes := stream.NewSchemeSet(
		stream.MustScheme("R", true),
		stream.MustScheme("S", true, false),
	)
	cfg := Config{Query: q, Schemes: schemes}

	run := func() []string {
		return captureRun(t, cfg, func(m *MJoin, emit func([]stream.Element)) {
			// Store 8 S-tuples sharing the join key, then probe with one
			// R-tuple: 8 results whose order exposes the state iteration.
			for c := 0; c < 8; c++ {
				outs, err := m.Push(1, stream.TupleElement(stream.NewTuple(stream.Int(1), stream.Int(int64(c)))))
				if err != nil {
					t.Fatal(err)
				}
				emit(outs)
			}
			outs, err := m.Push(0, stream.TupleElement(stream.NewTuple(stream.Int(1))))
			if err != nil {
				t.Fatal(err)
			}
			emit(outs)
		})
	}

	first := run()
	if len(first) != 8 {
		t.Fatalf("emitted %d elements, want 8 results", len(first))
	}
	// Arrival order: C ascending, because the S-tuples were inserted with
	// ascending C.
	for c := 0; c < 8; c++ {
		want := stream.TupleElement(stream.NewTuple(stream.Int(1), stream.Int(1), stream.Int(int64(c)))).String()
		if first[c] != want {
			t.Fatalf("result %d = %s, want %s (tupleID order)", c, first[c], want)
		}
	}
	for trial := 0; trial < 5; trial++ {
		if again := run(); !sameSeq(first, again) {
			t.Fatalf("run %d emitted a different sequence:\n%v\nvs\n%v", trial, again, first)
		}
	}
}

// TestWorkloadSequenceDeterministic: a full seeded workload (tuples,
// punctuations, purge cascades, propagated output punctuations) emits an
// identical element sequence on every run — the engine-level determinism
// contract.
func TestWorkloadSequenceDeterministic(t *testing.T) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 150, MaxBidsPerItem: 6, OpenWindow: 5,
		PunctuateItems: true, PunctuateClose: true, Seed: 17,
	})
	// Lazy purging batches punctuations, so purge rounds sweep candidate
	// sets — the other code path the determinism fix covers.
	for _, batch := range []int{1, 64} {
		cfg := Config{Query: q, Schemes: schemes, PurgeBatch: batch}
		run := func() []string {
			return captureRun(t, cfg, func(m *MJoin, emit func([]stream.Element)) {
				feed, err := workload.NewFeed(q, inputs)
				if err != nil {
					t.Fatal(err)
				}
				if err := feed.Each(func(i int, e stream.Element) error {
					outs, err := m.Push(i, e)
					emit(outs)
					return err
				}); err != nil {
					t.Fatal(err)
				}
			})
		}
		first := run()
		for trial := 0; trial < 3; trial++ {
			if again := run(); !sameSeq(first, again) {
				t.Fatalf("batch=%d run %d emitted a different sequence", batch, trial)
			}
		}
	}
}

func sameSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
