package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
	"punctsafe/workload"
)

// randomClosedScenario builds a random safe query, its scheme set, and a
// closed workload whose punctuation promises hold by construction.
func randomClosedScenario(rng *rand.Rand) (*query.CJQ, *stream.SchemeSet, []workload.Input) {
	topos := []workload.Topology{workload.Chain, workload.Cycle, workload.Star, workload.Clique}
	topo := topos[rng.Intn(len(topos))]
	k := 2 + rng.Intn(3)
	q, err := workload.SyntheticQuery(topo, k)
	if err != nil {
		panic(err)
	}
	full := workload.AllJoinAttrSchemes(q)
	// Sometimes run with the minimal strongly-connecting subset instead.
	set := full
	if rng.Intn(2) == 0 {
		set = workload.MinimalSchemes(q, full)
	}
	inputs := workload.Closed(q, set, workload.ClosedConfig{
		Rounds:         3 + rng.Intn(5),
		TuplesPerRound: 2 + rng.Intn(5),
		Window:         2 + rng.Intn(3),
		PunctFraction:  1,
		Seed:           rng.Int63(),
	})
	// Shuffle tuples within a small horizon to vary interleaving without
	// violating punctuation promises (tuples stay within their round,
	// before the round's punctuations).
	return q, set, inputs
}

// runResults drives a feed through an MJoin and returns the sorted result
// keys and the operator.
func runResults(t *testing.T, q *query.CJQ, set *stream.SchemeSet, cfg Config, inputs []workload.Input) ([]string, *MJoin) {
	t.Helper()
	cfg.Query = q
	cfg.Schemes = set
	m, err := NewMJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := workload.NewFeed(q, inputs)
	if err != nil {
		t.Fatal(err)
	}
	var results []string
	if err := feed.Each(func(i int, e stream.Element) error {
		outs, err := m.Push(i, e)
		for _, o := range outs {
			if !o.IsPunct() {
				results = append(results, o.Tuple().String())
			}
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	sort.Strings(results)
	return results, m
}

// TestRandomizedPurgeEquivalence is the central runtime soundness check:
// on random closed scenarios, purging (eager, lazy, with punctuation
// purging, with drop-at-insertion) never changes the emitted result
// multiset relative to the purge-disabled baseline, and the safe query's
// state always drains to zero.
func TestRandomizedPurgeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 60; trial++ {
		q, set, inputs := randomClosedScenario(rng)
		baseline, _ := runResults(t, q, set, Config{DisablePurge: true}, inputs)

		for _, cfg := range []Config{
			{},                        // eager
			{PurgeBatch: 7},           // lazy, odd batch
			{PurgeBatch: 1 << 20},     // everything deferred to Flush
			{PurgePunctuations: true}, // §5.1 store purging on
			{PurgeBatch: 16, PurgePunctuations: true},
		} {
			got, m := runResults(t, q, set, cfg, inputs)
			if len(got) != len(baseline) {
				t.Fatalf("trial %d (%s, cfg %+v): %d results, baseline %d",
					trial, q, cfg, len(got), len(baseline))
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Fatalf("trial %d: result %d differs: %s vs %s", trial, i, got[i], baseline[i])
				}
			}
			if m.Stats().TotalState() != 0 {
				t.Fatalf("trial %d (%s, cfg %+v): state did not drain: %v",
					trial, q, cfg, m.Stats().StateSize)
			}
		}
	}
}

// TestRandomizedSweepEquivalence: deferring all purging and then sweeping
// reaches exactly the eager end state on random scenarios.
func TestRandomizedSweepEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 40; trial++ {
		q, set, inputs := randomClosedScenario(rng)
		_, eager := runResults(t, q, set, Config{}, inputs)

		cfg := Config{Query: q, Schemes: set, PurgeBatch: 1 << 30}
		m, err := NewMJoin(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feed, _ := workload.NewFeed(q, inputs)
		if err := feed.Each(func(i int, e stream.Element) error {
			_, err := m.Push(i, e)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		m.Sweep()
		for i := 0; i < q.N(); i++ {
			if m.Stats().StateSize[i] != eager.Stats().StateSize[i] {
				t.Fatalf("trial %d input %d: sweep %d != eager %d",
					trial, i, m.Stats().StateSize[i], eager.Stats().StateSize[i])
			}
		}
	}
}

// TestRandomizedPartialPunctuation: with a fraction of values left open,
// purging still never loses results, purged counts stay consistent, and
// the retained state matches the purge-disabled baseline minus purges.
func TestRandomizedPartialPunctuation(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 40; trial++ {
		q, err := workload.SyntheticQuery(workload.Chain, 2+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		set := workload.AllJoinAttrSchemes(q)
		inputs := workload.Closed(q, set, workload.ClosedConfig{
			Rounds:         4,
			TuplesPerRound: 4,
			Window:         3,
			PunctFraction:  0.5,
			Seed:           rng.Int63(),
		})
		baseline, base := runResults(t, q, set, Config{DisablePurge: true}, inputs)
		got, m := runResults(t, q, set, Config{}, inputs)
		if strings.Join(got, "\n") != strings.Join(baseline, "\n") {
			t.Fatalf("trial %d: results differ under partial punctuation", trial)
		}
		var purged uint64
		for _, v := range m.Stats().TuplesPurged {
			purged += v
		}
		if int(purged)+m.Stats().TotalState() != base.Stats().TotalState() {
			t.Fatalf("trial %d: purged %d + retained %d != baseline %d",
				trial, purged, m.Stats().TotalState(), base.Stats().TotalState())
		}
	}
}

// TestRandomizedSafetyMatchesRuntime ties the theory to the runtime: for
// random queries and scheme sets, exactly the streams the GPG declares
// purgeable drain on a closed workload; the rest retain every tuple.
func TestRandomizedSafetyMatchesRuntime(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		topos := []workload.Topology{workload.Chain, workload.Cycle, workload.Star}
		q, err := workload.SyntheticQuery(topos[rng.Intn(len(topos))], 2+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		// Random subset of the full scheme set: some streams lose their
		// schemes, making some states unpurgeable.
		full := workload.AllJoinAttrSchemes(q).All()
		set := stream.NewSchemeSet()
		for _, s := range full {
			if rng.Intn(3) != 0 {
				set.Add(s)
			}
		}
		gpg := safety.BuildGPG(q, set)
		inputs := workload.Closed(q, set, workload.ClosedConfig{
			Rounds: 5, TuplesPerRound: 3, Window: 2, PunctFraction: 1,
			Seed: rng.Int63(),
		})
		_, m := runResults(t, q, set, Config{}, inputs)
		for i := 0; i < q.N(); i++ {
			if gpg.StreamPurgeable(i) {
				checked++
				if m.Stats().StateSize[i] != 0 {
					t.Fatalf("trial %d: purgeable stream %d retained %d tuples\nquery %s schemes %s",
						trial, i, m.Stats().StateSize[i], q, set)
				}
			} else if m.Stats().StateSize[i] != 5*3 {
				t.Fatalf("trial %d: unpurgeable stream %d has %d tuples, want all %d\nquery %s schemes %s",
					trial, i, m.Stats().StateSize[i], 15, q, set)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no purgeable streams sampled; generator broken")
	}
}

// TestProductOverflowConservative: a purge check whose punctuation
// requirement product exceeds the cap keeps the tuple (no unsound purge)
// without breaking later purges.
func TestProductOverflowConservative(t *testing.T) {
	q := chainQuery(t)
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S3", true, false),
	)
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	// One S1 tuple bridged to a frontier wider than the product cap: its
	// purge would require more punctuation combinations than the checker
	// is willing to enumerate.
	pushT(t, m, 0, tup(1, 1))
	for c := int64(0); c < productCap+10; c++ {
		pushT(t, m, 1, tup(1, c))
	}
	pushP(t, m, 1, punct(1, -1))
	pushP(t, m, 2, punct(0, -1))
	// The requirement product exceeds the cap, so t is conservatively
	// retained: overflow must never purge wrongly.
	if m.Stats().StateSize[0] != 1 {
		t.Fatalf("S1 state = %d; overflow must retain, never wrongly purge", m.Stats().StateSize[0])
	}
	// A narrow-frontier tuple in the same operator still purges normally.
	pushT(t, m, 0, tup(2, 999))
	pushT(t, m, 1, tup(999, 5))
	pushP(t, m, 1, punct(999, -1))
	pushP(t, m, 2, punct(5, -1))
	if m.Stats().StateSize[0] != 1 {
		t.Fatalf("narrow tuple should purge; S1 state = %d", m.Stats().StateSize[0])
	}
}

// TestStringers exercises the diagnostic String methods.
func TestStringers(t *testing.T) {
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes()})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.String(); !strings.Contains(s, "MJoin") {
		t.Errorf("MJoin.String() = %q", s)
	}
	if s := m.Stats().String(); !strings.Contains(s, "state=") {
		t.Errorf("Stats.String() = %q", s)
	}
	if s := fmt.Sprint(m.OutputSchema()); !strings.Contains(s, "R_K") {
		t.Errorf("OutputSchema = %q", s)
	}
}
