package exec

import (
	"fmt"
	"io"
	"strings"
)

// TimelineSample is one observation of an operator tree's resource usage.
type TimelineSample struct {
	// Element is the 1-based count of raw elements processed so far.
	Element int
	// State is the total stored tuples across the tree.
	State int
	// PunctStore is the total stored punctuations.
	PunctStore int
	// Results is the cumulative result count reported by the caller.
	Results int
}

// Timeline samples a plan's resource usage every Every elements — the
// time-series view behind the experiments' state-over-time claims.
type Timeline struct {
	// Every is the sampling period in elements (default 1).
	Every   int
	count   int
	Samples []TimelineSample
}

// Observe is called once per processed element with the current totals;
// it records a sample on period boundaries.
func (tl *Timeline) Observe(tree *Tree, results int) {
	tl.ObserveTotals(tree.TotalState(), tree.TotalPunctStore(), results)
}

// ObserveTotals records from caller-supplied totals — for executors that
// are not a *Tree (e.g. a PartitionedTree's summed replica counters).
func (tl *Timeline) ObserveTotals(state, punctStore, results int) {
	tl.count++
	every := tl.Every
	if every <= 0 {
		every = 1
	}
	if tl.count%every != 0 {
		return
	}
	tl.Samples = append(tl.Samples, TimelineSample{
		Element:    tl.count,
		State:      state,
		PunctStore: punctStore,
		Results:    results,
	})
}

// ObserveOperator records from a single operator instead of a tree.
func (tl *Timeline) ObserveOperator(m *MJoin, results int) {
	tl.count++
	every := tl.Every
	if every <= 0 {
		every = 1
	}
	if tl.count%every != 0 {
		return
	}
	tl.Samples = append(tl.Samples, TimelineSample{
		Element:    tl.count,
		State:      m.Stats().TotalState(),
		PunctStore: m.Stats().TotalPunctStore(),
		Results:    results,
	})
}

// WriteCSV emits the samples as CSV with a header row.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "element,state,punct_store,results\n"); err != nil {
		return err
	}
	var b strings.Builder
	for _, s := range tl.Samples {
		b.Reset()
		fmt.Fprintf(&b, "%d,%d,%d,%d\n", s.Element, s.State, s.PunctStore, s.Results)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// MaxState returns the largest sampled state (0 when empty).
func (tl *Timeline) MaxState() int {
	max := 0
	for _, s := range tl.Samples {
		if s.State > max {
			max = s.State
		}
	}
	return max
}
