// Package exec is the runtime substrate the paper assumes: punctuation-
// aware, non-blocking join operators. It provides a symmetric MJoin
// operator (of which the binary join is the 2-input case) whose join
// states are purged with the chained purge strategy of §3.2.1 — in its
// generalized, multi-attribute form of §4.2 — driven by the purge-plan
// witnesses produced by the safety checker. It also implements the §5.1
// punctuation store (punctuation purging by counter-punctuations and by
// lifespans) and the §5.2 eager/lazy purge timing knob, and propagates
// punctuations across operators so that tree-shaped execution plans can
// purge their upper operators.
package exec

import "fmt"

// Stats is the measurement surface of one join operator: everything the
// paper's §5 cost/benefit discussion talks about is readable here.
type Stats struct {
	// TuplesIn counts tuples consumed, per input.
	TuplesIn []uint64
	// PunctsIn counts punctuations consumed, per input.
	PunctsIn []uint64
	// Results counts result tuples emitted.
	Results uint64
	// OutPuncts counts punctuations emitted on the output.
	OutPuncts uint64
	// TuplesPurged counts tuples removed from join states, per input.
	TuplesPurged []uint64
	// PunctsPurged counts punctuations removed from punctuation stores,
	// per input.
	PunctsPurged []uint64
	// StateSize is the current number of stored tuples, per input (both
	// tiers: hot columns plus frozen cold segment).
	StateSize []int
	// ColdSize is the number of stored tuples resident in the frozen cold
	// tier, per input (a subset of StateSize; zero with tiering off).
	ColdSize []int
	// PunctStoreSize is the current number of stored punctuations, per input.
	PunctStoreSize []int
	// MaxStateSize is the high-water mark of the total stored tuple count.
	MaxStateSize int
	// MaxPunctStoreSize is the high-water mark of the total stored
	// punctuation count.
	MaxPunctStoreSize int
	// PurgeChecks counts tuple purgeability evaluations (work done by the
	// purge machinery).
	PurgeChecks uint64
	// PressureEvents counts SoftStateLimit crossings (forced eager-purge
	// rounds the pressure watermark triggered).
	PressureEvents uint64
	// Freezes counts freeze generations that moved at least one row into
	// the cold tier (Config.ColdAfter).
	Freezes uint64
}

func newStats(n int) *Stats {
	return &Stats{
		TuplesIn:       make([]uint64, n),
		PunctsIn:       make([]uint64, n),
		TuplesPurged:   make([]uint64, n),
		PunctsPurged:   make([]uint64, n),
		StateSize:      make([]int, n),
		ColdSize:       make([]int, n),
		PunctStoreSize: make([]int, n),
	}
}

// TotalColdState returns the current frozen-tier tuple count.
func (s *Stats) TotalColdState() int {
	total := 0
	for _, v := range s.ColdSize {
		total += v
	}
	return total
}

// TotalState returns the current total stored tuple count.
func (s *Stats) TotalState() int {
	total := 0
	for _, v := range s.StateSize {
		total += v
	}
	return total
}

// TotalPunctStore returns the current total stored punctuation count.
func (s *Stats) TotalPunctStore() int {
	total := 0
	for _, v := range s.PunctStoreSize {
		total += v
	}
	return total
}

func (s *Stats) noteWatermarks() {
	if t := s.TotalState(); t > s.MaxStateSize {
		s.MaxStateSize = t
	}
	if t := s.TotalPunctStore(); t > s.MaxPunctStoreSize {
		s.MaxPunctStoreSize = t
	}
}

// Snapshot returns a deep copy of the stats. The copy is detached from
// the operator: it never changes after the call, so callers can hold it
// across further pushes or hand it to other goroutines. Taking the
// snapshot itself must happen on the goroutine driving the operator (or
// after it has quiesced); the engine's sharded Runtime routes snapshot
// requests through each shard's mailbox for exactly that reason.
func (s *Stats) Snapshot() *Stats {
	c := *s
	c.TuplesIn = append([]uint64(nil), s.TuplesIn...)
	c.PunctsIn = append([]uint64(nil), s.PunctsIn...)
	c.TuplesPurged = append([]uint64(nil), s.TuplesPurged...)
	c.PunctsPurged = append([]uint64(nil), s.PunctsPurged...)
	c.StateSize = append([]int(nil), s.StateSize...)
	c.ColdSize = append([]int(nil), s.ColdSize...)
	c.PunctStoreSize = append([]int(nil), s.PunctStoreSize...)
	return &c
}

// Add accumulates o into s: counters and sizes sum, per-input slices add
// element-wise. The partitioned tree reports one aggregate Stats per
// operator position by summing the replicas'. Note the summed watermarks
// (MaxStateSize etc.) are the sum of per-partition peaks, which may exceed
// any instantaneous total; and under partitioned execution PunctsIn counts
// every broadcast copy, so it is P× the punctuations ingested.
func (s *Stats) Add(o *Stats) {
	addU := func(dst, src []uint64) {
		for i := range src {
			dst[i] += src[i]
		}
	}
	addI := func(dst, src []int) {
		for i := range src {
			dst[i] += src[i]
		}
	}
	addU(s.TuplesIn, o.TuplesIn)
	addU(s.PunctsIn, o.PunctsIn)
	addU(s.TuplesPurged, o.TuplesPurged)
	addU(s.PunctsPurged, o.PunctsPurged)
	addI(s.StateSize, o.StateSize)
	addI(s.ColdSize, o.ColdSize)
	addI(s.PunctStoreSize, o.PunctStoreSize)
	s.Results += o.Results
	s.OutPuncts += o.OutPuncts
	s.MaxStateSize += o.MaxStateSize
	s.MaxPunctStoreSize += o.MaxPunctStoreSize
	s.PurgeChecks += o.PurgeChecks
	s.PressureEvents += o.PressureEvents
	s.Freezes += o.Freezes
}

// String summarizes the stats on one line.
func (s *Stats) String() string {
	base := fmt.Sprintf("state=%d (max %d) puncts=%d (max %d) results=%d purged=%v",
		s.TotalState(), s.MaxStateSize, s.TotalPunctStore(), s.MaxPunctStoreSize, s.Results, s.TuplesPurged)
	if cold := s.TotalColdState(); cold > 0 || s.Freezes > 0 {
		base += fmt.Sprintf(" cold=%d (freezes %d)", cold, s.Freezes)
	}
	return base
}
