package exec

import (
	"strings"
	"testing"

	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
	"punctsafe/workload"
)

func TestTimelineSampling(t *testing.T) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	tree, err := NewTree(Config{Query: q, Schemes: schemes},
		plan.Join(plan.Leaf(0), plan.Leaf(1)))
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 100, MaxBidsPerItem: 4, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 33,
	})
	feed, err := workload.NewFeed(q, inputs)
	if err != nil {
		t.Fatal(err)
	}
	tl := &Timeline{Every: 25}
	results := 0
	if err := feed.Each(func(i int, e stream.Element) error {
		outs, err := tree.Push(i, e)
		results += countTuples(outs)
		tl.Observe(tree, results)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wantSamples := len(inputs) / 25
	if len(tl.Samples) != wantSamples {
		t.Fatalf("samples = %d, want %d", len(tl.Samples), wantSamples)
	}
	// Element counters are the period boundaries; results are monotone.
	for i, s := range tl.Samples {
		if s.Element != (i+1)*25 {
			t.Fatalf("sample %d at element %d", i, s.Element)
		}
		if i > 0 && s.Results < tl.Samples[i-1].Results {
			t.Fatal("results must be monotone")
		}
	}
	if tl.MaxState() == 0 {
		t.Fatal("sampled state should be nonzero at some point")
	}
	// Bounded run: sampled state never exceeds the tree's own high-water
	// mark.
	if tl.MaxState() > tree.MaxState() {
		t.Fatalf("sampled max %d > true max %d", tl.MaxState(), tree.MaxState())
	}

	var b strings.Builder
	if err := tl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "element,state,punct_store,results\n") {
		t.Fatalf("csv header: %q", out[:40])
	}
	if strings.Count(out, "\n") != wantSamples+1 {
		t.Fatalf("csv rows = %d", strings.Count(out, "\n"))
	}
}

// TestSelfJoinViaAlias: the Rename aliasing mechanism lets the same
// physical stream join with itself under two names (e.g. pairs of bids on
// the same item by different bidders).
func TestSelfJoinViaAlias(t *testing.T) {
	_, bid := workload.AuctionSchemas()
	left := bid
	right, err := bid.Rename("bid2")
	if err != nil {
		t.Fatal(err)
	}
	q, err := buildSelfJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	schemes := stream.NewSchemeSet(
		stream.MustScheme("bid", false, true, false),
		stream.MustScheme("bid2", false, true, false),
	)
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Purgeable(0) || !m.Purgeable(1) {
		t.Fatal("aliased self-join should be purgeable on both sides")
	}
	// Feed each physical bid to BOTH inputs (the self-join contract).
	bidTuple := func(bidder, item int64) stream.Tuple {
		return stream.NewTuple(stream.Int(bidder), stream.Int(item), stream.Float(1))
	}
	push := func(tu stream.Tuple) int {
		o1, err := m.Push(0, stream.TupleElement(tu))
		if err != nil {
			t.Fatal(err)
		}
		o2, err := m.Push(1, stream.TupleElement(tu))
		if err != nil {
			t.Fatal(err)
		}
		return countTuples(o1) + countTuples(o2)
	}
	total := 0
	total += push(bidTuple(1, 7))
	total += push(bidTuple(2, 7)) // pairs with bidder 1 both ways + self-pairs
	if total < 3 {
		t.Fatalf("self-join results = %d", total)
	}
	// Punctuating item 7 on both aliases drains everything.
	p := stream.MustPunctuation(stream.Wildcard(), stream.Const(stream.Int(7)), stream.Wildcard())
	m.Push(0, stream.PunctElement(p))
	m.Push(1, stream.PunctElement(p))
	if m.Stats().TotalState() != 0 {
		t.Fatalf("state = %d", m.Stats().TotalState())
	}
}

func buildSelfJoin(left, right *stream.Schema) (*query.CJQ, error) {
	return query.NewBuilder().
		AddStream(left).AddStream(right).
		Join(left.Name()+".itemid", right.Name()+".itemid").
		Build()
}
