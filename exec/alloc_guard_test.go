package exec_test

// Allocation guards for the hot path. These pin the steady-state probe
// and chained-purge allocation floors established by the ordered-state
// rewrite: a probe that matches nothing must not allocate at all, a
// probe that emits one result allocates only the result itself, and a
// full chained-purge cycle stays within a small constant budget. A
// regression that reintroduces per-probe garbage (map iteration scratch,
// closure captures, key re-encoding) fails here long before it shows up
// in a benchmark trend.

import (
	"testing"

	"punctsafe/exec"
	"punctsafe/query"
	"punctsafe/stream"
)

func intAttr(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }

// steadyWindowJoin builds a two-stream windowed join with 1000 R tuples
// (keys 0..999) resident, so every S push probes a fixed-size state and
// evicts what it inserts — zero net growth.
func steadyWindowJoin(tb testing.TB) *exec.WindowedMJoin {
	tb.Helper()
	q := query.NewBuilder().
		AddStream(stream.MustSchema("R", intAttr("K"), intAttr("V"))).
		AddStream(stream.MustSchema("S", intAttr("K"), intAttr("W"))).
		JoinOn("R", "S", "K").
		MustBuild()
	wj, err := exec.NewWindowedMJoin(exec.Config{Query: q, Schemes: stream.NewSchemeSet()}, exec.Window{Rows: 1000})
	if err != nil {
		tb.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		if _, err := wj.Push(0, stream.TupleElement(stream.NewTuple(stream.Int(i), stream.Int(i)))); err != nil {
			tb.Fatal(err)
		}
	}
	return wj
}

// TestSteadyStateProbeAllocs: a miss probe (no partner under the key)
// must average ~0 allocs/element — the candidate lookup, window evict
// and state insert all run on reused operator scratch. A hit probe may
// allocate only the emitted result (concatenated value slice + output
// element); everything else is scratch.
func TestSteadyStateProbeAllocs(t *testing.T) {
	mk := func(base int64) []stream.Element {
		out := make([]stream.Element, 1000)
		for i := range out {
			k := base + int64(i)
			out[i] = stream.TupleElement(stream.NewTuple(stream.Int(k), stream.Int(k)))
		}
		return out
	}
	t.Run("miss", func(t *testing.T) {
		wj := steadyWindowJoin(t)
		es := mk(1 << 20)
		// Warm up state-column growth on the S side.
		for i := 0; i < 2000; i++ {
			if _, err := wj.Push(1, es[i%len(es)]); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		avg := testing.AllocsPerRun(4000, func() {
			if _, err := wj.Push(1, es[i%len(es)]); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if avg > 0.5 {
			t.Fatalf("steady-state miss probe averages %.2f allocs/element, want ~0 (<= 0.5)", avg)
		}
	})
	t.Run("hit", func(t *testing.T) {
		wj := steadyWindowJoin(t)
		es := mk(0)
		for i := 0; i < 2000; i++ {
			if _, err := wj.Push(1, es[i%len(es)]); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		avg := testing.AllocsPerRun(4000, func() {
			if _, err := wj.Push(1, es[i%len(es)]); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if avg > 3 {
			t.Fatalf("steady-state hit probe averages %.2f allocs/element, want <= 3 (the result tuple only)", avg)
		}
	})
}

// TestColdTierProbeAllocs: the cold tier must add no per-probe garbage.
// The guard is self-calibrated — the same probe/purge cycle runs against
// an all-hot state and against one whose 32k resident rows are fully
// frozen, and the tiered average may not exceed the hot average by more
// than 10% plus one allocation of slack. An absolute guard on the miss
// cycle (~0 allocs) rides along, mirroring TestSteadyStateProbeAllocs.
func TestColdTierProbeAllocs(t *testing.T) {
	run := func(coldAfter uint64, key int64) float64 {
		m := longStateJoin(t, coldAfter)
		punct := stream.PunctElement(stream.MustPunctuation(stream.Const(stream.Int(key)), stream.Wildcard()))
		i := int64(0)
		cycle := func() {
			// Probe + insert on S, then a key punctuation on R purges the
			// S tuple again: steady state, like the tiering benchmark.
			el := stream.TupleElement(stream.NewTuple(stream.Int(key), stream.Int(i)))
			if _, err := m.Push(1, el); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Push(0, punct); err != nil {
				t.Fatal(err)
			}
			i++
		}
		for j := 0; j < 512; j++ {
			cycle()
		}
		avg := testing.AllocsPerRun(2000, cycle)
		if coldAfter > 0 && m.StatsSnapshot().ColdSize[0] == 0 {
			t.Fatal("tiered operator froze nothing; the guard is vacuous")
		}
		return avg
	}
	t.Run("hit", func(t *testing.T) {
		hot := run(0, 3)
		tiered := run(2048, 3)
		if tiered > hot*1.1+1 {
			t.Fatalf("cold-tier hit cycle averages %.2f allocs vs %.2f all-hot; the tier adds per-probe garbage", tiered, hot)
		}
	})
	t.Run("miss", func(t *testing.T) {
		hot := run(0, 1<<20)
		tiered := run(2048, 1<<20)
		if tiered > hot+0.5 {
			t.Fatalf("cold-tier miss cycle averages %.2f allocs vs %.2f all-hot", tiered, hot)
		}
		if tiered > 2.5 {
			t.Fatalf("miss cycle averages %.2f allocs, want ~2 (the probe tuple only)", tiered)
		}
	})
}

// TestChainedPurgeAllocs pins the budget of one full chained-purge cycle
// on the Figure 3 three-stream chain: insert a joined chain of tuples,
// then punctuate it away through the §4.2 chained rounds. Before the
// ordered-state rewrite a cycle cost ~470 allocs; the reused purge
// scratch brings it to ~50 and this guard holds the line there.
func TestChainedPurgeAllocs(t *testing.T) {
	q := query.NewBuilder().
		AddStream(stream.MustSchema("S1", intAttr("A"), intAttr("B"))).
		AddStream(stream.MustSchema("S2", intAttr("B"), intAttr("C"))).
		AddStream(stream.MustSchema("S3", intAttr("C"), intAttr("D"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		MustBuild()
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
	)
	m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(a, c int64) stream.Tuple { return stream.NewTuple(stream.Int(a), stream.Int(c)) }
	punct := func(pos int, v int64) stream.Punctuation {
		pats := []stream.Pattern{stream.Wildcard(), stream.Wildcard()}
		pats[pos] = stream.Const(stream.Int(v))
		return stream.MustPunctuation(pats...)
	}
	v := int64(0)
	cycle := func() {
		m.Push(0, stream.TupleElement(tup(v, v)))
		m.Push(1, stream.TupleElement(tup(v, v)))
		m.Push(2, stream.TupleElement(tup(v, v)))
		m.Push(1, stream.PunctElement(punct(0, v)))
		m.Push(0, stream.PunctElement(punct(1, v)))
		m.Push(1, stream.PunctElement(punct(1, v)))
		m.Push(2, stream.PunctElement(punct(0, v)))
		v++
	}
	for i := 0; i < 256; i++ {
		cycle()
	}
	avg := testing.AllocsPerRun(2000, cycle)
	if m.StatsSnapshot().TotalState() != 0 {
		t.Fatalf("chained purge left %d tuples", m.StatsSnapshot().TotalState())
	}
	if avg > 64 {
		t.Fatalf("chained-purge cycle averages %.1f allocs, want <= 64", avg)
	}
}
