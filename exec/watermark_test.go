package exec

import (
	"testing"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
	"punctsafe/workload"
)

func wmPunct(bound int64) stream.Punctuation {
	return stream.MustPunctuation(stream.Leq(stream.Int(bound)), stream.Wildcard())
}

// TestWatermarkPurge: an ordered punctuation (epoch <= T) purges every
// partner tuple with epoch at or below the bound in one shot.
func TestWatermarkPurge(t *testing.T) {
	q := workload.SensorQuery()
	schemes := workload.SensorSchemes()
	rep, err := safety.Check(q, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("watermark-punctuated sensor join must be safe:\n%s", rep.Explain(q))
	}
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	reading := func(epoch int64, v float64) stream.Tuple {
		return stream.NewTuple(stream.Int(epoch), stream.Float(v))
	}
	for e := int64(0); e < 5; e++ {
		pushT(t, m, 0, reading(e, 20))
	}
	if m.Stats().StateSize[0] != 5 {
		t.Fatalf("state = %d", m.Stats().StateSize[0])
	}
	// Watermark from humid on epochs <= 2 purges temp epochs 0,1,2.
	pushP(t, m, 1, wmPunct(2))
	if m.Stats().StateSize[0] != 2 {
		t.Fatalf("epochs <= 2 should purge, state = %d", m.Stats().StateSize[0])
	}
	// A stale (narrower) watermark changes nothing.
	pushP(t, m, 1, wmPunct(1))
	if m.Stats().StateSize[0] != 2 {
		t.Fatalf("stale watermark must not purge more, state = %d", m.Stats().StateSize[0])
	}
	// Widening to 4 drains the rest.
	pushP(t, m, 1, wmPunct(4))
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("state = %d, want 0", m.Stats().StateSize[0])
	}
	// The store holds ONE compacted entry, not three.
	if m.Stats().PunctStoreSize[1] != 1 {
		t.Fatalf("watermark store should compact to 1 entry, has %d", m.Stats().PunctStoreSize[1])
	}
	// New tuples at or below the bound are dropped at insertion (they can
	// never join future partner data)... but note the promise is about
	// the PARTNER stream: a temp reading with epoch<=4 cannot join any
	// future humid tuple, so it emits against stored humid and drops.
	pushT(t, m, 0, reading(3, 21))
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("late temp reading below the humid watermark must drop, state=%d", m.Stats().StateSize[0])
	}
}

// TestWatermarkDropIsNotLossy: dropping a below-watermark tuple at
// insertion still emits its joins against stored partner tuples first.
func TestWatermarkDropIsNotLossy(t *testing.T) {
	q := workload.SensorQuery()
	m, err := NewMJoin(Config{Query: q, Schemes: workload.SensorSchemes()})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 1, stream.NewTuple(stream.Int(7), stream.Float(50)))
	pushP(t, m, 1, wmPunct(7)) // humid closed through epoch 7; stored humid tuple remains
	out := pushT(t, m, 0, stream.NewTuple(stream.Int(7), stream.Float(20)))
	if countTuples(out) != 1 {
		t.Fatalf("late temp reading must still join stored humid data, got %d results", countTuples(out))
	}
	if m.Stats().StateSize[0] != 0 {
		t.Fatal("and then drop instead of being stored")
	}
}

// TestSensorWorkloadBoundedByDisorder: on the out-of-order sensor feed
// with heartbeats the join state stays bounded by the disorder window and
// drains completely; without heartbeats it retains everything. Results
// are identical.
func TestSensorWorkloadBoundedByDisorder(t *testing.T) {
	q := workload.SensorQuery()
	schemes := workload.SensorSchemes()
	run := func(heartbeats bool) (int, *MJoin) {
		inputs := workload.Sensor(workload.SensorConfig{
			Epochs: 200, ReadingsPerEpoch: 2, Disorder: 3,
			HeartbeatEvery: 2, Heartbeats: heartbeats, Seed: 5,
		})
		m, err := NewMJoin(Config{Query: q, Schemes: schemes})
		if err != nil {
			t.Fatal(err)
		}
		feed, err := workload.NewFeed(q, inputs)
		if err != nil {
			t.Fatal(err)
		}
		results := 0
		if err := feed.Each(func(i int, e stream.Element) error {
			outs, err := m.Push(i, e)
			results += countTuples(outs)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return results, m
	}
	withHB, m := run(true)
	withoutHB, base := run(false)
	if withHB != withoutHB {
		t.Fatalf("results with heartbeats %d != without %d", withHB, withoutHB)
	}
	if m.Stats().TotalState() != 0 {
		t.Fatalf("state should drain, has %d", m.Stats().TotalState())
	}
	// Bounded by the disorder window: each heartbeat closes everything
	// older than Disorder epochs, so live state ~ readings within the
	// window, far below the total.
	if m.Stats().MaxStateSize >= base.Stats().MaxStateSize/4 {
		t.Fatalf("watermarked max state %d should be far below baseline %d",
			m.Stats().MaxStateSize, base.Stats().MaxStateSize)
	}
	// The compacted watermark store never exceeds one entry per input.
	if m.Stats().MaxPunctStoreSize > 2 {
		t.Fatalf("watermark stores should compact to <=1 entry each, max %d",
			m.Stats().MaxPunctStoreSize)
	}
}

// TestOrderedSchemeWithEqualityAttr: the §5.1 network example — a scheme
// punctuating (src =, seq <=) — purges partner tuples per source once the
// sequence bound passes them.
func TestOrderedSchemeWithEqualityAttr(t *testing.T) {
	conn := mustSchema("c", "src", "seq")
	pkt := mustSchema("p", "src", "seq")
	q, err := buildQ(conn, pkt)
	if err != nil {
		t.Fatal(err)
	}
	schemes := stream.NewSchemeSet(
		stream.MustOrderedScheme("p", []bool{true, true}, []bool{false, true}),
		stream.MustOrderedScheme("c", []bool{true, true}, []bool{false, true}),
	)
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 0, tup(1, 100)) // src 1, seq 100
	pushT(t, m, 0, tup(1, 200))
	pushT(t, m, 0, tup(2, 150))
	// pkt punctuation: src=1 closed through seq 150.
	pushP(t, m, 1, stream.MustPunctuation(stream.Const(stream.Int(1)), stream.Leq(stream.Int(150))))
	if m.Stats().StateSize[0] != 2 {
		t.Fatalf("only (1,100) should purge, state=%d", m.Stats().StateSize[0])
	}
	// src=2 is untouched; widening src=1 to 250 purges (1,200).
	pushP(t, m, 1, stream.MustPunctuation(stream.Const(stream.Int(1)), stream.Leq(stream.Int(250))))
	if m.Stats().StateSize[0] != 1 {
		t.Fatalf("state=%d, want 1 (only src=2 left)", m.Stats().StateSize[0])
	}
	if m.Stats().PunctStoreSize[1] != 1 {
		t.Fatalf("per-source watermark should compact, store=%d", m.Stats().PunctStoreSize[1])
	}
}

func buildQ(a, b *stream.Schema) (*query.CJQ, error) {
	return query.NewBuilder().
		AddStream(a).AddStream(b).
		Join(a.Name()+".src", b.Name()+".src").
		Join(a.Name()+".seq", b.Name()+".seq").
		Build()
}
