package exec

import (
	"errors"
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

// TestStateLimitTripsOnUnpunctuatedFeed: the resource back-stop fails the
// push once the stored-tuple budget is exhausted — the runtime symptom of
// the failure mode the compile-time safety check prevents.
func TestStateLimitTrips(t *testing.T) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	m, err := NewMJoin(Config{Query: q, Schemes: schemes, StateLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 500, MaxBidsPerItem: 5, OpenWindow: 4,
		PunctuateItems: false, PunctuateClose: false, Seed: 2, // no punctuations
	})
	feed, _ := workload.NewFeed(q, inputs)
	err = feed.Each(func(i int, e stream.Element) error {
		_, err := m.Push(i, e)
		return err
	})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("expected ErrStateLimit, got %v", err)
	}
	if m.Stats().TotalState() > 50 {
		t.Fatalf("state %d exceeded the limit", m.Stats().TotalState())
	}
}

// TestStateLimitNeverTripsWhenPunctuated: the same limit is generous for
// the punctuated feed, whose state stays near the open-auction window.
func TestStateLimitNeverTripsWhenPunctuated(t *testing.T) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	m, err := NewMJoin(Config{Query: q, Schemes: schemes, StateLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 500, MaxBidsPerItem: 5, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 2,
	})
	feed, _ := workload.NewFeed(q, inputs)
	if err := feed.Each(func(i int, e stream.Element) error {
		_, err := m.Push(i, e)
		return err
	}); err != nil {
		t.Fatalf("punctuated feed must stay under the limit: %v", err)
	}
	if m.Stats().TotalState() != 0 {
		t.Fatal("state should drain")
	}
}
