package exec

import (
	"fmt"

	"punctsafe/stream"
)

// This file adapts the remaining relational operators to punctuated
// streams — the paper's future-work item (iii) ("extend the current
// safety checking framework ... for adapting other relational operators
// to the streaming punctuation semantics"), following the pass/propagate
// invariants of Tucker et al. [12]:
//
//   - Selection is stateless; it passes every punctuation through
//     unchanged (a promise about all future tuples holds a fortiori for
//     the selected subset).
//   - Projection passes a punctuation iff all of its constant patterns
//     survive the projection; a punctuation constraining a dropped
//     attribute promises nothing expressible in the output schema and is
//     absorbed.
//
// Both preserve punctuation scheme guarantees, so a Select/Project
// pipeline in front of a join keeps the query's safety analysis valid:
// selection leaves schemes untouched, projection keeps exactly the
// schemes whose punctuatable attributes survive (ProjectSchemes).

// Predicate is a tuple filter for Select.
type FilterFunc func(stream.Tuple) bool

// Select filters tuples by a predicate and forwards punctuations
// unchanged.
type Select struct {
	in     *stream.Schema
	filter FilterFunc
	// Passed and Dropped count tuples.
	Passed  uint64
	Dropped uint64
}

// NewSelect builds a selection over the input schema.
func NewSelect(in *stream.Schema, filter FilterFunc) (*Select, error) {
	if filter == nil {
		return nil, fmt.Errorf("exec: Select needs a filter")
	}
	return &Select{in: in, filter: filter}, nil
}

// OutputSchema equals the input schema.
func (s *Select) OutputSchema() *stream.Schema { return s.in }

// Push consumes one element.
func (s *Select) Push(e stream.Element) ([]stream.Element, error) {
	if e.IsPunct() {
		if err := e.Punct().Validate(s.in); err != nil {
			return nil, err
		}
		return []stream.Element{e}, nil
	}
	t := e.Tuple()
	if err := t.Validate(s.in); err != nil {
		return nil, err
	}
	if s.filter(t) {
		s.Passed++
		return []stream.Element{e}, nil
	}
	s.Dropped++
	return nil, nil
}

// AttrEquals returns a filter keeping tuples whose named attribute equals
// the value.
func AttrEquals(in *stream.Schema, attr string, v stream.Value) (FilterFunc, error) {
	i := in.Index(attr)
	if i < 0 {
		return nil, fmt.Errorf("exec: schema %s has no attribute %q", in, attr)
	}
	return func(t stream.Tuple) bool { return t.Values[i].Equal(v) }, nil
}

// Project narrows elements to a subset of attributes (by position).
type Project struct {
	in   *stream.Schema
	out  *stream.Schema
	keep []int
	// Absorbed counts punctuations that could not be expressed in the
	// output schema and were dropped.
	Absorbed uint64
}

// NewProject builds a projection keeping the named attributes, in the
// given order.
func NewProject(in *stream.Schema, attrs ...string) (*Project, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("exec: projection needs at least one attribute")
	}
	p := &Project{in: in}
	var outAttrs []stream.Attribute
	for _, name := range attrs {
		i := in.Index(name)
		if i < 0 {
			return nil, fmt.Errorf("exec: schema %s has no attribute %q", in, name)
		}
		p.keep = append(p.keep, i)
		outAttrs = append(outAttrs, in.Attr(i))
	}
	out, err := stream.NewSchema("project("+in.Name()+")", outAttrs...)
	if err != nil {
		return nil, err
	}
	p.out = out
	return p, nil
}

// OutputSchema is the projected schema.
func (p *Project) OutputSchema() *stream.Schema { return p.out }

// Push consumes one element. Note that projection does not deduplicate
// (bag semantics), so it remains non-blocking and stateless.
func (p *Project) Push(e stream.Element) ([]stream.Element, error) {
	if !e.IsPunct() {
		t := e.Tuple()
		if err := t.Validate(p.in); err != nil {
			return nil, err
		}
		values := make([]stream.Value, len(p.keep))
		for k, i := range p.keep {
			values[k] = t.Values[i]
		}
		return []stream.Element{stream.TupleElement(stream.NewTuple(values...))}, nil
	}
	punct := e.Punct()
	if err := punct.Validate(p.in); err != nil {
		return nil, err
	}
	// The punctuation survives iff every constant pattern's attribute is
	// kept.
	kept := make(map[int]int, len(p.keep))
	for k, i := range p.keep {
		kept[i] = k
	}
	pats := make([]stream.Pattern, len(p.keep))
	for i := range pats {
		pats[i] = stream.Wildcard()
	}
	for _, ci := range punct.ConstIndexes() {
		k, ok := kept[ci]
		if !ok {
			p.Absorbed++
			return nil, nil
		}
		pats[k] = punct.Patterns[ci]
	}
	out, err := stream.NewPunctuation(pats...)
	if err != nil {
		// All constants were projected away is impossible here (handled
		// above), so this only guards an all-wildcard input punctuation,
		// which Validate/NewPunctuation already forbid upstream.
		p.Absorbed++
		return nil, nil
	}
	return []stream.Element{stream.PunctElement(out)}, nil
}

// ProjectSchemes maps a stream's punctuation schemes through a projection:
// a scheme survives iff all its punctuatable attributes are kept, with
// positions remapped to the output schema. This is the compile-time
// counterpart of Project.Push's punctuation rule, used to safety-check
// queries over projected streams.
func ProjectSchemes(p *Project, schemes []stream.Scheme) []stream.Scheme {
	kept := make(map[int]int, len(p.keep))
	for k, i := range p.keep {
		kept[i] = k
	}
	var out []stream.Scheme
	for _, s := range schemes {
		mask := make([]bool, p.out.Arity())
		ordered := make([]bool, p.out.Arity())
		ok := true
		for _, a := range s.PunctuatableIndexes() {
			k, has := kept[a]
			if !has {
				ok = false
				break
			}
			mask[k] = true
		}
		if oi := s.OrderedIndex(); ok && oi >= 0 {
			ordered[kept[oi]] = true
		}
		if ok {
			out = append(out, stream.MustOrderedScheme(p.out.Name(), mask, ordered))
		}
	}
	return out
}
