package exec

import (
	"sort"

	"punctsafe/stream"
)

// tupleID identifies a stored tuple within one join state.
type tupleID uint64

// joinState is the stored input of one stream inside a join operator
// (the Υ_S of §2.2): tuples plus a hash index per join attribute, so both
// probing (for result emission) and purging (for punctuation matching)
// are value lookups rather than scans.
type joinState struct {
	tuples map[tupleID]stream.Tuple
	// index[attr][valueKey] = set of tuple ids whose attribute attr holds
	// the value. Only join attributes are indexed.
	index  map[int]map[stream.ValueKey]map[tupleID]struct{}
	nextID tupleID
}

func newJoinState(joinAttrs []int) *joinState {
	st := &joinState{
		tuples: make(map[tupleID]stream.Tuple),
		index:  make(map[int]map[stream.ValueKey]map[tupleID]struct{}, len(joinAttrs)),
	}
	for _, a := range joinAttrs {
		st.index[a] = make(map[stream.ValueKey]map[tupleID]struct{})
	}
	return st
}

// insert stores a tuple and indexes its join attributes.
func (st *joinState) insert(t stream.Tuple) tupleID {
	id := st.nextID
	st.nextID++
	st.tuples[id] = t
	for a, idx := range st.index {
		k := t.Values[a].Key()
		set := idx[k]
		if set == nil {
			set = make(map[tupleID]struct{})
			idx[k] = set
		}
		set[id] = struct{}{}
	}
	return id
}

// remove deletes a stored tuple and unindexes it. It reports whether the
// id was present.
func (st *joinState) remove(id tupleID) bool {
	t, ok := st.tuples[id]
	if !ok {
		return false
	}
	delete(st.tuples, id)
	for a, idx := range st.index {
		k := t.Values[a].Key()
		if set := idx[k]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(idx, k)
			}
		}
	}
	return true
}

// size returns the number of stored tuples.
func (st *joinState) size() int { return len(st.tuples) }

// lookup returns the ids of stored tuples whose attribute attr equals v.
// The returned set is owned by the state; callers must not modify it.
func (st *joinState) lookup(attr int, v stream.Value) map[tupleID]struct{} {
	idx := st.index[attr]
	if idx == nil {
		return nil
	}
	return idx[v.Key()]
}

// each calls fn for every stored tuple until fn returns false. Tuples are
// visited in tupleID (arrival) order, never in Go map order, so every
// downstream effect — probe expansion, purge cascades, punctuation
// re-emission — is deterministic across runs. Iterating a sorted id
// snapshot also makes it safe for fn to remove tuples mid-walk.
func (st *joinState) each(fn func(tupleID, stream.Tuple) bool) {
	for _, id := range sortedIDs(st.tuples, nil) {
		t, ok := st.tuples[id]
		if !ok {
			continue
		}
		if !fn(id, t) {
			return
		}
	}
}

// sortedIDs collects the keys of a tupleID-keyed map in ascending id
// (arrival) order. The engine's determinism contract (identical runs emit
// identical sequences) rests on every map-keyed iteration in the hot path
// going through here.
func sortedIDs[V any](set map[tupleID]V, buf []tupleID) []tupleID {
	ids := buf[:0]
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
