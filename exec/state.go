package exec

import (
	"sort"

	"punctsafe/stream"
)

// tupleID identifies a stored tuple within one join state.
type tupleID uint64

// joinState is the stored input of one stream inside a join operator
// (the Υ_S of §2.2): tuples plus a hash index per join attribute, so both
// probing (for result emission) and purging (for punctuation matching)
// are value lookups rather than scans.
//
// Layout: tupleIDs are assigned monotonically, so the id/tuple columns
// are append-only sorted slices and every deterministic-iteration
// requirement (probe expansion, purge cascades, sweeps all walk in
// arrival order) is a linear walk instead of a collect-and-sort over map
// keys. Removal tombstones the row; compaction rewrites the columns once
// tombstones dominate. The per-attribute hash index stores sorted
// []tupleID buckets — appends keep them sorted for free, and candidate
// iteration and intersection need no per-probe allocation.
// The state is two-tiered (coldtier.go): rows older than the freeze
// watermark compact into an immutable-layout cold segment, keeping the
// hot columns short under long-lived state. Every cold id < frozenBound
// <= every hot id, so id-based dispatch and per-tier intersection are a
// single comparison.
type joinState struct {
	ids  []tupleID      // sorted ascending (monotonic assignment)
	tups []stream.Tuple // parallel to ids
	dead []bool         // parallel tombstones
	// index[attr][valueKey] = sorted ids of live tuples whose attribute
	// attr holds the value. Only join attributes are indexed.
	index   map[int]map[stream.ValueKey][]tupleID
	nDead   int
	nextID  tupleID
	walkers int // >0 while each() iterates; defers compaction & freezing

	// cold is the frozen tier, nil until the first freeze moves rows.
	cold *coldSegment
	// frozenBound separates the tiers: ids below it live in cold (or are
	// gone), ids at or above it live in the hot columns.
	frozenBound tupleID
	// freezeAt is the pending watermark: the next freeze() moves live hot
	// rows with id < freezeAt. advanceFreeze bumps it to nextID after.
	freezeAt tupleID
}

// compactMinDead bounds how small a state bothers compacting; below it
// tombstones cost less than the rewrite.
const compactMinDead = 64

func newJoinState(joinAttrs []int) *joinState {
	st := &joinState{
		index: make(map[int]map[stream.ValueKey][]tupleID, len(joinAttrs)),
	}
	for _, a := range joinAttrs {
		st.index[a] = make(map[stream.ValueKey][]tupleID)
	}
	return st
}

// insert stores a tuple and indexes its join attributes.
func (st *joinState) insert(t stream.Tuple) tupleID {
	id := st.nextID
	st.nextID++
	st.ids = append(st.ids, id)
	st.tups = append(st.tups, t)
	st.dead = append(st.dead, false)
	for a, idx := range st.index {
		k := t.Values[a].Key()
		idx[k] = append(idx[k], id) // id is the largest yet: stays sorted
	}
	return id
}

// pos returns the row of id in the sorted id column, or -1. Removals
// tombstone in place, so the column is usually a gap-free id run and the
// guess row id-ids[0] resolves in O(1); compaction introduces gaps and
// falls back to binary search.
func (st *joinState) pos(id tupleID) int {
	n := len(st.ids)
	if n == 0 || id < st.ids[0] || id > st.ids[n-1] {
		return -1
	}
	if d := id - st.ids[0]; d < tupleID(n) && st.ids[d] == id {
		return int(d)
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && st.ids[lo] == id {
		return lo
	}
	return -1
}

// get returns the stored tuple for id, if live, from whichever tier
// owns the id.
func (st *joinState) get(id tupleID) (stream.Tuple, bool) {
	if id < st.frozenBound {
		if st.cold == nil {
			return stream.Tuple{}, false
		}
		return st.cold.get(id)
	}
	p := st.pos(id)
	if p < 0 || st.dead[p] {
		return stream.Tuple{}, false
	}
	return st.tups[p], true
}

// remove deletes a stored tuple and unindexes it. It reports whether the
// id was present (and live).
func (st *joinState) remove(id tupleID) bool {
	if id < st.frozenBound {
		if st.cold == nil || !st.cold.remove(id) {
			return false
		}
		// Recompact once tombstones dominate, and release a fully-dead
		// segment immediately — below the threshold its tombstones would
		// otherwise linger forever.
		if st.walkers == 0 && (st.cold.size() == 0 ||
			(st.cold.nDead >= compactMinDead && st.cold.nDead*2 >= len(st.cold.ids))) {
			st.cold.compact()
			if len(st.cold.ids) == 0 {
				st.cold = nil
			}
		}
		return true
	}
	p := st.pos(id)
	if p < 0 || st.dead[p] {
		return false
	}
	t := st.tups[p]
	st.dead[p] = true
	st.tups[p] = stream.Tuple{} // release the value storage now
	st.nDead++
	for a, idx := range st.index {
		k := t.Values[a].Key()
		if bucket := idx[k]; bucket != nil {
			if b := deleteSorted(bucket, id); len(b) == 0 {
				delete(idx, k)
			} else {
				idx[k] = b
			}
		}
	}
	if st.walkers == 0 && st.nDead >= compactMinDead && st.nDead*2 >= len(st.ids) {
		st.compact()
	}
	return true
}

// compact rewrites the columns without tombstoned rows. Index buckets
// hold only live ids, so they are untouched.
func (st *joinState) compact() {
	w := 0
	for r := range st.ids {
		if st.dead[r] {
			continue
		}
		st.ids[w] = st.ids[r]
		st.tups[w] = st.tups[r]
		st.dead[w] = false
		w++
	}
	clearTuples(st.tups[w:])
	st.ids = st.ids[:w]
	st.tups = st.tups[:w]
	st.dead = st.dead[:w]
	st.nDead = 0
}

func clearTuples(ts []stream.Tuple) {
	for i := range ts {
		ts[i] = stream.Tuple{}
	}
}

// deleteSorted removes id from a sorted bucket by binary search.
func deleteSorted(b []tupleID, id tupleID) []tupleID {
	i := sort.Search(len(b), func(i int) bool { return b[i] >= id })
	if i == len(b) || b[i] != id {
		return b
	}
	copy(b[i:], b[i+1:])
	return b[:len(b)-1]
}

// size returns the number of stored (live) tuples across both tiers.
func (st *joinState) size() int { return len(st.ids) - st.nDead + st.coldSize() }

// coldSize returns the live tuples resident in the frozen tier.
func (st *joinState) coldSize() int {
	if st.cold == nil {
		return 0
	}
	return st.cold.size()
}

// lookup2 returns the per-tier sorted ids of stored tuples whose
// attribute attr equals v. The buckets are owned by the state; callers
// must not modify or retain them across inserts, removes, or freezes.
func (st *joinState) lookup2(attr int, v stream.Value) tierBuckets {
	var tb tierBuckets
	k := v.Key()
	if idx := st.index[attr]; idx != nil {
		tb.hot = idx[k]
	}
	if st.cold != nil {
		tb.cold = st.cold.lookup(attr, k)
	}
	return tb
}

// each calls fn for every stored tuple until fn returns false. Tuples are
// visited in tupleID (arrival) order — a linear walk over the ordered
// columns — so every downstream effect (probe expansion, purge cascades,
// punctuation re-emission) is deterministic across runs. Rows removed by
// fn mid-walk are tombstoned in place (compaction is deferred while the
// walk runs), so removal during iteration is safe.
func (st *joinState) each(fn func(tupleID, stream.Tuple) bool) {
	st.walkers++
	defer func() { st.walkers-- }()
	if c := st.cold; c != nil {
		// Cold ids all precede hot ids, so cold-then-hot is arrival order.
		for r := 0; r < len(c.ids); r++ {
			if c.dead[r] {
				continue
			}
			if !fn(c.ids[r], c.tups[r]) {
				return
			}
		}
	}
	for r := 0; r < len(st.ids); r++ {
		if st.dead[r] {
			continue
		}
		if !fn(st.ids[r], st.tups[r]) {
			return
		}
	}
}

// intersectSorted writes the intersection of two ascending id slices into
// dst (galloping through the longer side) and returns it. dst may be
// a[:0] only if the caller no longer needs a; typically it is a reusable
// scratch buffer.
func intersectSorted(dst, a, b []tupleID) []tupleID {
	if len(a) > len(b) {
		a, b = b, a
	}
	dst = dst[:0]
	lo := 0
	for _, id := range a {
		// Gallop: exponential probe then binary search within b[lo:].
		step := 1
		for lo+step < len(b) && b[lo+step] < id {
			step <<= 1
		}
		hi := lo + step
		if hi > len(b) {
			hi = len(b)
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(b) {
			break
		}
		if b[lo] == id {
			dst = append(dst, id)
			lo++
		}
	}
	return dst
}
