package exec

import (
	"fmt"

	"punctsafe/stream"
)

// productCap bounds the number of punctuation-coverage combinations one
// purge check will evaluate. A tuple whose requirement product exceeds the
// cap is conservatively kept (never wrongly purged); the overflow counter
// surfaces how often that happens.
const productCap = 4096

// purgeRound runs the chained purge strategy for a batch of freshly
// arrived punctuations: it collects the join-connected neighborhood of
// the punctuated values, repeatedly purges every tuple in it whose purge
// plan is fully covered by stored punctuations, and finally re-evaluates
// punctuation propagation and §5.1 punctuation purging. It returns any
// output punctuations that became emittable.
func (m *MJoin) purgeRound(batch []pendingPunct) []stream.Element {
	if m.cfg.DisablePurge {
		return nil
	}
	n := m.q.N()
	cand := make([]map[tupleID]struct{}, n)
	for i := range cand {
		cand[i] = make(map[tupleID]struct{})
	}

	// Anchor tuples: stored tuples in partner states carrying a value a
	// new punctuation constrains.
	type sid struct {
		s  int
		id tupleID
	}
	var queue []sid
	seen := make(map[sid]struct{})
	push := func(s int, id tupleID) {
		k := sid{s, id}
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		cand[s][id] = struct{}{}
		queue = append(queue, k)
	}
	for _, pp := range batch {
		for _, a := range pp.p.ConstIndexes() {
			pat := pp.p.Patterns[a]
			for _, p := range m.q.PredicatesTouching(pp.input) {
				other, myAttr, otherAttr := p.Other(pp.input)
				if myAttr != a {
					continue
				}
				if pat.IsLeq() {
					// Ordered bound: the hash index cannot answer range
					// queries, so scan the partner state (watermarks are
					// periodic and few, so this stays cheap).
					m.states[other].each(func(id tupleID, u stream.Tuple) bool {
						if pat.MatchesValue(u.Values[otherAttr]) {
							push(other, id)
						}
						return true
					})
					continue
				}
				for id := range m.states[other].lookup(otherAttr, pat.Value()) {
					push(other, id)
				}
			}
		}
	}
	// Closure: everything join-reachable from an anchor may have had its
	// purge requirements (or frontiers) touched.
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		u, ok := m.states[k.s].tuples[k.id]
		if !ok {
			continue
		}
		for _, p := range m.q.PredicatesTouching(k.s) {
			other, myAttr, otherAttr := p.Other(k.s)
			for id := range m.states[other].lookup(otherAttr, u.Values[myAttr]) {
				push(other, id)
			}
		}
	}

	removed := m.purgeFixpoint(cand)

	var out []stream.Element
	if !m.cfg.DisableOutputPuncts {
		out = append(out, m.emitForRemoved(removed)...)
	}
	if m.cfg.PurgePunctuations {
		m.purgePunctStores(batch, removed)
	}
	return out
}

// purgeFixpoint repeatedly attempts to purge every candidate until a pass
// makes no progress (removals shrink frontiers, which can unlock further
// removals — the cascade of the chained purge strategy). It returns the
// removed tuples per input so punctuation re-emission and §5.1 store
// purging can be targeted instead of rescanning whole stores.
func (m *MJoin) purgeFixpoint(cand []map[tupleID]struct{}) [][]stream.Tuple {
	removed := make([][]stream.Tuple, m.q.N())
	for changed := true; changed; {
		changed = false
		for s := range cand {
			if m.plans[s] == nil {
				continue
			}
			// Sorted candidate order keeps the removal sequence — and
			// therefore the order of re-emitted output punctuations —
			// deterministic across runs.
			for _, id := range sortedIDs(cand[s], nil) {
				t, ok := m.states[s].tuples[id]
				if !ok {
					delete(cand[s], id)
					continue
				}
				m.stats.PurgeChecks++
				if !m.purgeableTuple(s, t) {
					continue
				}
				m.states[s].remove(id)
				delete(cand[s], id)
				m.stats.TuplesPurged[s]++
				m.stats.StateSize[s] = m.states[s].size()
				removed[s] = append(removed[s], t)
				changed = true
			}
		}
	}
	return removed
}

// Sweep runs a full purge pass over every stored tuple of every purgeable
// input (the §5.1 "background clean-up mechanism") and returns the number
// of tuples removed plus any output punctuations that became emittable.
func (m *MJoin) Sweep() (int, []stream.Element) {
	if m.cfg.DisablePurge {
		return 0, nil
	}
	n := m.q.N()
	cand := make([]map[tupleID]struct{}, n)
	for i := range cand {
		cand[i] = make(map[tupleID]struct{}, m.states[i].size())
		m.states[i].each(func(id tupleID, _ stream.Tuple) bool {
			cand[i][id] = struct{}{}
			return true
		})
	}
	removed := m.purgeFixpoint(cand)
	total := 0
	for _, r := range removed {
		total += len(r)
	}
	var out []stream.Element
	if !m.cfg.DisableOutputPuncts {
		out = m.emitPendingPuncts()
	}
	if m.cfg.PurgePunctuations {
		m.sweepPunctStores()
	}
	return total, out
}

// purgeableTuple replays the chained purge strategy (§3.2.1, generalized
// §4.2) for tuple t stored on input root: walk the purge-plan steps; at
// each step compute the punctuation constants required from the source
// frontiers and verify the punctuation store holds every combination;
// then advance the joinable frontier into the step's stream. True means
// t cannot join any future input combination and may be dropped.
func (m *MJoin) purgeableTuple(root int, t stream.Tuple) bool {
	plan := m.plans[root]
	n := m.q.N()
	frontiers := make([][]stream.Tuple, n)
	covered := make([]bool, n)
	frontiers[root] = []stream.Tuple{t}
	covered[root] = true

	for k, st := range plan.Steps {
		j := st.Stream
		valueSets := make([][]stream.Value, len(st.Attrs))
		vacuous := false
		total := 1
		for a := range st.Attrs {
			vs := distinctValues(frontiers[st.Sources[a]], st.SourceAttrs[a])
			if len(vs) == 0 {
				vacuous = true
				break
			}
			valueSets[a] = vs
			total *= len(vs)
			if total > productCap {
				m.stats.PurgeChecks++ // count the aborted attempt's extra work
				return false
			}
		}
		if !vacuous && !m.coveredProduct(j, m.stepScheme[root][k], valueSets) {
			return false
		}
		frontiers[j] = m.frontier(j, covered, frontiers)
		covered[j] = true
	}
	return true
}

// coveredProduct verifies that every combination of the per-attribute
// value sets has a live stored punctuation on input j instantiating
// scheme schemeIdx.
func (m *MJoin) coveredProduct(j, schemeIdx int, valueSets [][]stream.Value) bool {
	consts := make([]stream.Value, len(valueSets))
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(valueSets) {
			return m.puncts[j].covered(schemeIdx, consts, m.clock)
		}
		for _, v := range valueSets[k] {
			consts[k] = v
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// frontier computes the joinable tuples of stream j with respect to the
// already-covered frontiers: stored tuples of j that match, for every
// predicate linking j to a covered stream, at least one value present in
// that stream's frontier. This is the semijoin T_t[Υ_j] of §3.2.1
// (computed per covered neighbor, a superset of the exact joint-joinable
// set, hence conservative).
func (m *MJoin) frontier(j int, covered []bool, frontiers [][]stream.Tuple) []stream.Tuple {
	type constraint struct {
		jAttr int
		set   map[stream.ValueKey]struct{}
	}
	var cons []constraint
	for _, p := range m.q.PredicatesTouching(j) {
		other, jAttr, otherAttr := p.Other(j)
		if !covered[other] {
			continue
		}
		set := make(map[stream.ValueKey]struct{}, len(frontiers[other]))
		for _, u := range frontiers[other] {
			set[u.Values[otherAttr].Key()] = struct{}{}
		}
		cons = append(cons, constraint{jAttr: jAttr, set: set})
	}
	if len(cons) == 0 {
		// Cannot happen for purge plans (each step's stream is adjacent
		// to its sources), but guard against programming errors: with no
		// constraint every stored tuple is joinable.
		out := make([]stream.Tuple, 0, m.states[j].size())
		m.states[j].each(func(_ tupleID, u stream.Tuple) bool {
			out = append(out, u)
			return true
		})
		return out
	}
	// Probe the index with the smallest constraint set; verify the rest.
	best := 0
	for i := 1; i < len(cons); i++ {
		if len(cons[i].set) < len(cons[best].set) {
			best = i
		}
	}
	var out []stream.Tuple
	seenIDs := make(map[tupleID]struct{})
	for vk := range cons[best].set {
		for id := range m.states[j].lookup(cons[best].jAttr, vk.Value()) {
			if _, dup := seenIDs[id]; dup {
				continue
			}
			seenIDs[id] = struct{}{}
			u := m.states[j].tuples[id]
			ok := true
			for ci, c := range cons {
				if ci == best {
					continue
				}
				if _, match := c.set[u.Values[c.jAttr].Key()]; !match {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, u)
			}
		}
	}
	return out
}

// distinctValues projects the frontier onto one attribute, deduplicated.
func distinctValues(frontier []stream.Tuple, attr int) []stream.Value {
	seen := make(map[stream.ValueKey]struct{}, len(frontier))
	var out []stream.Value
	for _, u := range frontier {
		k := u.Values[attr].Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, u.Values[attr])
	}
	return out
}

// tryEmitPunct propagates a stored punctuation to the operator output
// when no stored tuple of its input still matches it: from then on no
// output tuple can carry the punctuated values in that input's columns,
// so downstream operators may rely on it (the propagation invariant that
// lets tree plans purge their upper operators).
func (m *MJoin) tryEmitPunct(input int, e *punctEntry) (stream.Element, bool) {
	if e.emitted || e.expired(m.clock) {
		return stream.Element{}, false
	}
	if m.hasMatchingTuple(input, e.punct) {
		return stream.Element{}, false
	}
	e.emitted = true
	m.stats.OutPuncts++
	pats := make([]stream.Pattern, m.out.Arity())
	for i := range pats {
		pats[i] = stream.Wildcard()
	}
	for _, a := range e.punct.ConstIndexes() {
		pats[m.colBase[input]+a] = e.punct.Patterns[a]
	}
	return stream.PunctElement(stream.MustPunctuation(pats...)), true
}

// emitForRemoved re-tests exactly the stored punctuations a purge round
// could have unblocked: for each removed tuple, the punctuations (on the
// same input) whose constants equal the tuple's values at each scheme's
// punctuatable positions. A removal can only drop the last matching tuple
// of such a punctuation, so nothing else needs rechecking.
func (m *MJoin) emitForRemoved(removed [][]stream.Tuple) []stream.Element {
	var out []stream.Element
	for input, tuples := range removed {
		ps := m.puncts[input]
		for _, u := range tuples {
			for si, scheme := range ps.schemes {
				idx := scheme.PunctuatableIndexes()
				consts := make([]stream.Value, len(idx))
				for k, a := range idx {
					consts[k] = u.Values[a]
				}
				e := ps.lookup(si, consts, m.clock)
				if e == nil {
					continue
				}
				if el, emitted := m.tryEmitPunct(input, e); emitted {
					out = append(out, el)
				}
			}
		}
	}
	return out
}

// emitPendingPuncts re-tests every stored, not-yet-emitted punctuation (a
// full pass, used by the background clean-up Sweep).
func (m *MJoin) emitPendingPuncts() []stream.Element {
	var out []stream.Element
	for input := range m.puncts {
		m.puncts[input].each(m.clock, func(_ int, e *punctEntry) bool {
			if el, ok := m.tryEmitPunct(input, e); ok {
				out = append(out, el)
			}
			return true
		})
	}
	return out
}

// hasMatchingTuple reports whether any stored tuple of the input matches
// the punctuation's constant patterns. Indexed attributes are probed;
// otherwise the state is scanned.
func (m *MJoin) hasMatchingTuple(input int, p stream.Punctuation) bool {
	consts := p.ConstIndexes()
	st := m.states[input]
	for _, a := range consts {
		// The hash index answers equality constraints only.
		if st.index[a] == nil || p.Patterns[a].IsLeq() {
			continue
		}
		ids := st.lookup(a, p.Patterns[a].Value())
		for id := range ids {
			if p.Matches(st.tuples[id]) {
				return true
			}
		}
		return false
	}
	// No constrained attribute is indexed: scan.
	found := false
	st.each(func(_ tupleID, u stream.Tuple) bool {
		if p.Matches(u) {
			found = true
			return false
		}
		return true
	})
	return found
}

// punctVictim identifies one stored punctuation.
type punctVictim struct {
	input     int
	schemeIdx int
	consts    []stream.Value
}

// violatedPromise reports whether a live punctuation stored on the
// tuple's own input forbids it, returning the offending punctuation. The
// check is one exact-key lookup per registered scheme: a tuple matches a
// scheme's instantiation iff its values at the punctuatable positions
// equal the stored constants (with <= for the ordered slot) — exactly the
// covered() query over constants drawn from the tuple itself.
func (m *MJoin) violatedPromise(input int, t stream.Tuple) (stream.Punctuation, bool) {
	ps := m.puncts[input]
	for si, scheme := range ps.schemes {
		idx := scheme.PunctuatableIndexes()
		consts := make([]stream.Value, len(idx))
		for k, a := range idx {
			consts[k] = t.Values[a]
		}
		if ps.covered(si, consts, m.clock) {
			return ps.lookup(si, consts, m.clock).punct, true
		}
	}
	return stream.Punctuation{}, false
}

// purgePunctStores implements §5.1 punctuation purgeability. A stored
// punctuation e on stream j can be dropped once every join partner side
// is closed for it: the partner holds a counter-punctuation implied by
// e's constraint (mapped through the join predicates) and stores no
// tuple still matching that constraint. Candidates are derived from the
// batch (a new punctuation may be the missing counter for its partners'
// punctuations) and from the purge round's removed tuples (a removal may
// have been the last matching partner tuple); a punctuation whose
// blockers lie beyond this neighbourhood is caught by the Sweep's full
// pass instead.
func (m *MJoin) purgePunctStores(batch []pendingPunct, removed [][]stream.Tuple) {
	seen := make(map[string]bool)
	var victims []punctVictim
	consider := func(input, schemeIdx int, e *punctEntry) {
		key := fmt.Sprintf("%d/%d/%s", input, schemeIdx, keyOf(e.consts))
		if seen[key] {
			return
		}
		seen[key] = true
		if m.punctPurgeable(input, schemeIdx, e) {
			victims = append(victims, punctVictim{input: input, schemeIdx: schemeIdx, consts: e.consts})
		}
	}

	// (a) New punctuations: they may complete the counter-coverage of a
	// partner stream's stored punctuation with the mapped constants.
	for _, pp := range batch {
		m.eachMappedEntry(pp.input, pp.p, consider)
		// The new punctuation itself may already be droppable.
		if si := m.puncts[pp.input].schemeIndex(pp.p); si >= 0 {
			if e := m.puncts[pp.input].lookup(si, constsOf(pp.p), m.clock); e != nil {
				consider(pp.input, si, e)
			}
		}
	}
	// (b) Removed tuples: a stored punctuation that matched them on a
	// partner stream may have lost its last blocker.
	for input, tuples := range removed {
		for _, u := range tuples {
			for _, p := range m.q.PredicatesTouching(input) {
				other, myAttr, otherAttr := p.Other(input)
				ps := m.puncts[other]
				for si, scheme := range ps.schemes {
					idx := scheme.PunctuatableIndexes()
					if len(idx) != 1 || idx[0] != otherAttr {
						continue
					}
					if e := ps.lookup(si, []stream.Value{u.Values[myAttr]}, m.clock); e != nil {
						consider(other, si, e)
					}
				}
				// Multi-attribute schemes: reconstruct the constants from
				// the removed tuple when every punctuatable attribute maps
				// back to this input.
				for si, scheme := range ps.schemes {
					idx := scheme.PunctuatableIndexes()
					if len(idx) < 2 {
						continue
					}
					consts := make([]stream.Value, len(idx))
					ok := true
					for k, a := range idx {
						back := m.q.PartnerAttr(other, a, input)
						if back < 0 {
							ok = false
							break
						}
						consts[k] = u.Values[back]
					}
					if !ok {
						continue
					}
					if e := ps.lookup(si, consts, m.clock); e != nil {
						consider(other, si, e)
					}
				}
			}
		}
	}

	// Collect all victims before removing any: two punctuations may
	// certify each other (both sides closed on the same values), and
	// removing one first would strand the other.
	m.removeVictims(victims)
}

// sweepPunctStores is the full §5.1 pass used by Sweep: every stored
// punctuation is re-evaluated.
func (m *MJoin) sweepPunctStores() {
	var victims []punctVictim
	for j := range m.puncts {
		ps := m.puncts[j]
		ps.each(m.clock, func(si int, e *punctEntry) bool {
			if m.punctPurgeable(j, si, e) {
				victims = append(victims, punctVictim{input: j, schemeIdx: si, consts: e.consts})
			}
			return true
		})
	}
	m.removeVictims(victims)
}

func (m *MJoin) removeVictims(victims []punctVictim) {
	for _, v := range victims {
		if m.puncts[v.input].remove(v.schemeIdx, v.consts) {
			m.stats.PunctsPurged[v.input]++
			m.stats.PunctStoreSize[v.input] = m.puncts[v.input].size
		}
	}
}

// eachMappedEntry maps a punctuation's constraint through the join
// predicates onto each partner stream and invokes fn for every stored
// partner punctuation whose constants equal the mapped values.
func (m *MJoin) eachMappedEntry(input int, p stream.Punctuation, fn func(input, schemeIdx int, e *punctEntry)) {
	consts := p.ConstIndexes()
	for _, other := range m.partnerStreams(input) {
		// mapped[attr of other] = value implied by p.
		mapped := make(map[int]stream.Value)
		conflict := false
		for _, a := range consts {
			v := p.Patterns[a].Value()
			for _, pr := range m.q.PredicatesTouching(input) {
				o, myAttr, otherAttr := pr.Other(input)
				if o != other || myAttr != a {
					continue
				}
				if prev, ok := mapped[otherAttr]; ok && !prev.Equal(v) {
					conflict = true
				}
				mapped[otherAttr] = v
			}
		}
		if conflict || len(mapped) == 0 {
			continue
		}
		ps := m.puncts[other]
		for si, scheme := range ps.schemes {
			idx := scheme.PunctuatableIndexes()
			vals := make([]stream.Value, len(idx))
			ok := true
			for k, a := range idx {
				v, has := mapped[a]
				if !has {
					ok = false
					break
				}
				vals[k] = v
			}
			if !ok {
				continue
			}
			if e := ps.lookup(si, vals, m.clock); e != nil {
				fn(other, si, e)
			}
		}
	}
}

// partnerStreams returns the streams sharing a predicate with input.
func (m *MJoin) partnerStreams(input int) []int {
	set := make(map[int]bool)
	var out []int
	for _, p := range m.q.PredicatesTouching(input) {
		other, _, _ := p.Other(input)
		if !set[other] {
			set[other] = true
			out = append(out, other)
		}
	}
	return out
}

// punctPurgeable decides whether a stored punctuation e on input j can be
// dropped: for every join partner reachable through e's constrained
// attributes, the partner must hold a live counter-punctuation implied by
// e's mapped constraint and store no tuple still matching it. Constrained
// attributes that join nothing keep the punctuation alive (nothing can
// certify they will not be needed).
func (m *MJoin) punctPurgeable(j, schemeIdx int, e *punctEntry) bool {
	if m.puncts[j].ordSlot[schemeIdx] >= 0 {
		// Watermark entries are self-compacting (one entry per equality
		// key, bound monotonically widened), so counter-punctuation
		// purging is unnecessary for them; lifespans still apply.
		return false
	}
	scheme := m.puncts[j].schemes[schemeIdx]
	idx := scheme.PunctuatableIndexes()
	partnersTouched := false
	for _, other := range m.partnerStreams(j) {
		// Map e's constraint onto the partner.
		mapped := make(map[int]stream.Value)
		for k, a := range idx {
			v := e.consts[k]
			for _, pr := range m.q.PredicatesTouching(j) {
				o, myAttr, otherAttr := pr.Other(j)
				if o == other && myAttr == a {
					if prev, ok := mapped[otherAttr]; ok && !prev.Equal(v) {
						// Contradictory constraint: no partner tuple can
						// ever match e through this stream.
						mapped = nil
					}
					if mapped != nil {
						mapped[otherAttr] = v
					}
				}
			}
			if mapped == nil {
				break
			}
		}
		if mapped == nil {
			continue // e matches nothing on this partner
		}
		if len(mapped) == 0 {
			continue // partner not linked through constrained attributes
		}
		partnersTouched = true
		if !m.counterCovered(other, mapped) {
			return false
		}
		if m.hasTupleMatching(other, mapped) {
			return false
		}
	}
	// Every constrained attribute must join at least one partner;
	// otherwise the punctuation's purpose cannot be certified away.
	for _, a := range idx {
		if len(m.q.JoinPartners(j, a)) == 0 {
			return false
		}
	}
	return partnersTouched
}

// counterCovered reports whether stream s holds a live punctuation whose
// constrained attributes are a subset of the mapped constraint with equal
// values — such a punctuation forbids every future s-tuple matching the
// constraint.
func (m *MJoin) counterCovered(s int, mapped map[int]stream.Value) bool {
	ps := m.puncts[s]
	for si, scheme := range ps.schemes {
		idx := scheme.PunctuatableIndexes()
		consts := make([]stream.Value, len(idx))
		ok := true
		for k, a := range idx {
			v, has := mapped[a]
			if !has {
				ok = false
				break
			}
			consts[k] = v
		}
		if ok && ps.covered(si, consts, m.clock) {
			return true
		}
	}
	return false
}

// hasTupleMatching reports whether stream s stores a tuple matching every
// (attr, value) pair of the constraint.
func (m *MJoin) hasTupleMatching(s int, mapped map[int]stream.Value) bool {
	// Probe the first indexed attribute; verify the rest.
	for a, v := range mapped {
		if m.states[s].index[a] == nil {
			continue
		}
		for id := range m.states[s].lookup(a, v) {
			u := m.states[s].tuples[id]
			all := true
			for a2, v2 := range mapped {
				if !u.Values[a2].Equal(v2) {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	found := false
	m.states[s].each(func(_ tupleID, u stream.Tuple) bool {
		for a, v := range mapped {
			if !u.Values[a].Equal(v) {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
