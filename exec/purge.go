package exec

import (
	"encoding/binary"
	"slices"

	"punctsafe/stream"
)

// productCap bounds the number of punctuation-coverage combinations one
// purge check will evaluate. A tuple whose requirement product exceeds the
// cap is conservatively kept (never wrongly purged); the overflow counter
// surfaces how often that happens.
const productCap = 4096

// sid identifies a stored tuple across states (stream + id), the node
// type of the purge round's join-connected closure walk.
type sid struct {
	s  int
	id tupleID
}

// purgeScratch is the operator's reusable purge-path state. Like the
// probe scratch, it exists so steady-state purge rounds allocate nothing:
// candidate sets are per-input sorted id slices filtered in place,
// frontiers and value sets reuse per-input buffers, and composite map
// keys are built in a shared byte buffer.
type purgeScratch struct {
	one     []pendingPunct // single-punctuation batch for eager rounds
	cand    [][]tupleID    // per-input purge candidates (sorted before fixpoint)
	seen    map[sid]struct{}
	queue   []sid
	removed [][]stream.Tuple // per-input removed-tuple buffers
	// purgeableTuple scratch.
	frontiers [][]stream.Tuple
	covered   []bool
	valueSets [][]stream.Value
	consts    []stream.Value
	valSeen   map[stream.ValueKey]struct{} // big-set dedup fallback
	// frontier() constraint scratch.
	consAttrs []int
	consKeys  [][]stream.ValueKey
	// purgePunctStores scratch.
	keyBuf   []byte
	seenKeys map[string]bool
	victims  []punctVictim
}

func (m *MJoin) initPurgeScratch() {
	n := m.q.N()
	m.pg = purgeScratch{
		cand:      make([][]tupleID, n),
		removed:   make([][]stream.Tuple, n),
		frontiers: make([][]stream.Tuple, n),
		covered:   make([]bool, n),
		seen:      make(map[sid]struct{}),
		valSeen:   make(map[stream.ValueKey]struct{}),
		seenKeys:  make(map[string]bool),
	}
}

// pgPush adds a candidate to the purge round's closure (deduplicated).
func (m *MJoin) pgPush(s int, id tupleID) {
	k := sid{s, id}
	if _, ok := m.pg.seen[k]; ok {
		return
	}
	m.pg.seen[k] = struct{}{}
	m.pg.cand[s] = append(m.pg.cand[s], id)
	m.pg.queue = append(m.pg.queue, k)
}

// purgeRound runs the chained purge strategy for a batch of freshly
// arrived punctuations: it collects the join-connected neighborhood of
// the punctuated values, repeatedly purges every tuple in it whose purge
// plan is fully covered by stored punctuations, and finally re-evaluates
// punctuation propagation and §5.1 punctuation purging. Output
// punctuations that became emittable are appended to out.
func (m *MJoin) purgeRound(out []stream.Element, batch []pendingPunct) []stream.Element {
	if m.cfg.DisablePurge {
		return out
	}
	pg := &m.pg
	for i := range pg.cand {
		pg.cand[i] = pg.cand[i][:0]
	}
	clear(pg.seen)
	pg.queue = pg.queue[:0]

	// Anchor tuples: stored tuples in partner states carrying a value a
	// new punctuation constrains.
	for _, pp := range batch {
		for _, a := range pp.p.ConstIndexes() {
			pat := pp.p.Patterns[a]
			for _, p := range m.predsTouching[pp.input] {
				other, myAttr, otherAttr := p.Other(pp.input)
				if myAttr != a {
					continue
				}
				if pat.IsLeq() {
					// Ordered bound: the hash index cannot answer range
					// queries, so scan the partner state (watermarks are
					// periodic and few, so this stays cheap).
					m.states[other].each(func(id tupleID, u stream.Tuple) bool {
						if pat.MatchesValue(u.Values[otherAttr]) {
							m.pgPush(other, id)
						}
						return true
					})
					continue
				}
				tb := m.states[other].lookup2(otherAttr, pat.Value())
				for _, run := range tb.runs() {
					for _, id := range run {
						m.pgPush(other, id)
					}
				}
			}
		}
	}
	// Closure: everything join-reachable from an anchor may have had its
	// purge requirements (or frontiers) touched.
	for head := 0; head < len(pg.queue); head++ {
		k := pg.queue[head]
		u, ok := m.states[k.s].get(k.id)
		if !ok {
			continue
		}
		for _, p := range m.predsTouching[k.s] {
			other, myAttr, otherAttr := p.Other(k.s)
			tb := m.states[other].lookup2(otherAttr, u.Values[myAttr])
			for _, run := range tb.runs() {
				for _, id := range run {
					m.pgPush(other, id)
				}
			}
		}
	}
	// Sorted candidate order keeps the removal sequence — and therefore
	// the order of re-emitted output punctuations — deterministic across
	// runs (BFS discovery order is implementation-defined).
	for i := range pg.cand {
		slices.Sort(pg.cand[i])
	}

	removed := m.purgeFixpoint(pg.cand)

	if !m.cfg.DisableOutputPuncts {
		out = m.emitForRemoved(out, removed)
	}
	if m.cfg.PurgePunctuations {
		m.purgePunctStores(batch, removed)
	}
	return out
}

// purgeFixpoint repeatedly attempts to purge every candidate until a pass
// makes no progress (removals shrink frontiers, which can unlock further
// removals — the cascade of the chained purge strategy). Candidate lists
// must be sorted ascending; they are filtered in place (which preserves
// the order). It returns the removed tuples per input — scratch buffers
// valid until the next fixpoint — so punctuation re-emission and §5.1
// store purging can be targeted instead of rescanning whole stores.
func (m *MJoin) purgeFixpoint(cand [][]tupleID) [][]stream.Tuple {
	removed := m.pg.removed
	for s := range removed {
		clearTuples(removed[s])
		removed[s] = removed[s][:0]
	}
	for changed := true; changed; {
		changed = false
		for s := range cand {
			if m.plans[s] == nil {
				continue
			}
			w := 0
			for _, id := range cand[s] {
				t, ok := m.states[s].get(id)
				if !ok {
					continue // gone: drop from the candidate list
				}
				m.stats.PurgeChecks++
				if !m.purgeableTuple(s, t) {
					cand[s][w] = id
					w++
					continue
				}
				m.states[s].remove(id)
				m.stats.TuplesPurged[s]++
				m.stats.StateSize[s] = m.states[s].size()
				m.stats.ColdSize[s] = m.states[s].coldSize()
				removed[s] = append(removed[s], t)
				changed = true
			}
			cand[s] = cand[s][:w]
		}
	}
	m.pg.removed = removed
	return removed
}

// Sweep runs a full purge pass over every stored tuple of every purgeable
// input (the §5.1 "background clean-up mechanism") and returns the number
// of tuples removed plus any output punctuations that became emittable.
func (m *MJoin) Sweep() (int, []stream.Element) {
	if m.cfg.DisablePurge {
		return 0, nil
	}
	pg := &m.pg
	for i := range pg.cand {
		pg.cand[i] = pg.cand[i][:0]
		m.states[i].each(func(id tupleID, _ stream.Tuple) bool {
			pg.cand[i] = append(pg.cand[i], id) // each() walks in id order: already sorted
			return true
		})
	}
	removed := m.purgeFixpoint(pg.cand)
	total := 0
	for _, r := range removed {
		total += len(r)
	}
	var out []stream.Element
	if !m.cfg.DisableOutputPuncts {
		out = m.emitPendingPuncts(nil)
	}
	if m.cfg.PurgePunctuations {
		m.sweepPunctStores()
	}
	return total, out
}

// purgeableTuple replays the chained purge strategy (§3.2.1, generalized
// §4.2) for tuple t stored on input root: walk the purge-plan steps; at
// each step compute the punctuation constants required from the source
// frontiers and verify the punctuation store holds every combination;
// then advance the joinable frontier into the step's stream. True means
// t cannot join any future input combination and may be dropped.
func (m *MJoin) purgeableTuple(root int, t stream.Tuple) bool {
	pg := &m.pg
	plan := m.plans[root]
	for i := range pg.covered {
		pg.covered[i] = false
	}
	pg.frontiers[root] = append(pg.frontiers[root][:0], t)
	pg.covered[root] = true

	for k, st := range plan.Steps {
		j := st.Stream
		for len(pg.valueSets) < len(st.Attrs) {
			pg.valueSets = append(pg.valueSets, nil)
		}
		vacuous := false
		total := 1
		for a := range st.Attrs {
			vs := distinctValuesInto(pg.valueSets[a][:0], pg.frontiers[st.Sources[a]], st.SourceAttrs[a], pg.valSeen)
			pg.valueSets[a] = vs
			if len(vs) == 0 {
				vacuous = true
				break
			}
			total *= len(vs)
			if total > productCap {
				m.stats.PurgeChecks++ // count the aborted attempt's extra work
				return false
			}
		}
		if !vacuous && !m.coveredProduct(j, m.stepScheme[root][k], pg.valueSets[:len(st.Attrs)]) {
			return false
		}
		pg.frontiers[j] = m.frontier(pg.frontiers[j][:0], j, pg.covered, pg.frontiers)
		pg.covered[j] = true
	}
	return true
}

// coveredProduct verifies that every combination of the per-attribute
// value sets has a live stored punctuation on input j instantiating
// scheme schemeIdx.
func (m *MJoin) coveredProduct(j, schemeIdx int, valueSets [][]stream.Value) bool {
	if cap(m.pg.consts) < len(valueSets) {
		m.pg.consts = make([]stream.Value, len(valueSets))
	}
	return m.coveredProductRec(j, schemeIdx, valueSets, m.pg.consts[:len(valueSets)], 0)
}

func (m *MJoin) coveredProductRec(j, schemeIdx int, valueSets [][]stream.Value, consts []stream.Value, k int) bool {
	if k == len(valueSets) {
		return m.puncts[j].covered(schemeIdx, consts, m.clock)
	}
	for _, v := range valueSets[k] {
		consts[k] = v
		if !m.coveredProductRec(j, schemeIdx, valueSets, consts, k+1) {
			return false
		}
	}
	return true
}

// frontier computes the joinable tuples of stream j with respect to the
// already-covered frontiers, appending them to dst: stored tuples of j
// that match, for every predicate linking j to a covered stream, at least
// one value present in that stream's frontier. This is the semijoin
// T_t[Υ_j] of §3.2.1 (computed per covered neighbor, a superset of the
// exact joint-joinable set, hence conservative).
func (m *MJoin) frontier(dst []stream.Tuple, j int, covered []bool, frontiers [][]stream.Tuple) []stream.Tuple {
	pg := &m.pg
	pg.consAttrs = pg.consAttrs[:0]
	nc := 0
	for _, p := range m.predsTouching[j] {
		other, jAttr, otherAttr := p.Other(j)
		if !covered[other] {
			continue
		}
		if nc == len(pg.consKeys) {
			pg.consKeys = append(pg.consKeys, nil)
		}
		pg.consKeys[nc] = dedupKeysInto(pg.consKeys[nc][:0], frontiers[other], otherAttr, pg.valSeen)
		pg.consAttrs = append(pg.consAttrs, jAttr)
		nc++
	}
	if nc == 0 {
		// Cannot happen for purge plans (each step's stream is adjacent
		// to its sources), but guard against programming errors: with no
		// constraint every stored tuple is joinable.
		m.states[j].each(func(_ tupleID, u stream.Tuple) bool {
			dst = append(dst, u)
			return true
		})
		return dst
	}
	// Probe the index with the smallest constraint set; verify the rest.
	// Distinct values of one attribute index disjoint buckets and the key
	// sets are deduplicated, so no id is visited twice.
	best := 0
	for i := 1; i < nc; i++ {
		if len(pg.consKeys[i]) < len(pg.consKeys[best]) {
			best = i
		}
	}
	st := m.states[j]
	for _, vk := range pg.consKeys[best] {
		tb := st.lookup2(pg.consAttrs[best], vk.Value())
		for _, run := range tb.runs() {
			for _, id := range run {
				u, live := st.get(id)
				if !live {
					continue
				}
				ok := true
				for ci := 0; ci < nc; ci++ {
					if ci == best {
						continue
					}
					k := u.Values[pg.consAttrs[ci]].Key()
					if !containsKey(pg.consKeys[ci], k) {
						ok = false
						break
					}
				}
				if ok {
					dst = append(dst, u)
				}
			}
		}
	}
	return dst
}

func containsKey(keys []stream.ValueKey, k stream.ValueKey) bool {
	for _, w := range keys {
		if w == k {
			return true
		}
	}
	return false
}

// distinctValuesInto projects the frontier onto one attribute,
// deduplicated, into dst. Small sets dedup by linear scan (no
// allocation); large ones fall back to the shared scratch map.
func distinctValuesInto(dst []stream.Value, frontier []stream.Tuple, attr int, seen map[stream.ValueKey]struct{}) []stream.Value {
	const linearMax = 24
	useMap := false
	for _, u := range frontier {
		v := u.Values[attr]
		if !useMap {
			dup := false
			for _, w := range dst {
				if w.Equal(v) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			dst = append(dst, v)
			if len(dst) > linearMax {
				useMap = true
				clear(seen)
				for _, w := range dst {
					seen[w.Key()] = struct{}{}
				}
			}
			continue
		}
		k := v.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		dst = append(dst, v)
	}
	return dst
}

// dedupKeysInto is distinctValuesInto over ValueKeys.
func dedupKeysInto(dst []stream.ValueKey, frontier []stream.Tuple, attr int, seen map[stream.ValueKey]struct{}) []stream.ValueKey {
	const linearMax = 24
	useMap := false
	for _, u := range frontier {
		k := u.Values[attr].Key()
		if !useMap {
			if containsKey(dst, k) {
				continue
			}
			dst = append(dst, k)
			if len(dst) > linearMax {
				useMap = true
				clear(seen)
				for _, w := range dst {
					seen[w] = struct{}{}
				}
			}
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		dst = append(dst, k)
	}
	return dst
}

// tryEmitPunct propagates a stored punctuation to the operator output
// when no stored tuple of its input still matches it: from then on no
// output tuple can carry the punctuated values in that input's columns,
// so downstream operators may rely on it (the propagation invariant that
// lets tree plans purge their upper operators).
func (m *MJoin) tryEmitPunct(input int, e *punctEntry) (stream.Element, bool) {
	if e.emitted || e.expired(m.clock) {
		return stream.Element{}, false
	}
	if m.hasMatchingTuple(input, e.punct) {
		return stream.Element{}, false
	}
	e.emitted = true
	m.stats.OutPuncts++
	pats := make([]stream.Pattern, m.out.Arity())
	for i := range pats {
		pats[i] = stream.Wildcard()
	}
	for _, a := range e.punct.ConstIndexes() {
		pats[m.colBase[input]+a] = e.punct.Patterns[a]
	}
	return stream.PunctElement(stream.MustPunctuation(pats...)), true
}

// emitForRemoved re-tests exactly the stored punctuations a purge round
// could have unblocked, appending emissions to out: for each removed
// tuple, the punctuations (on the same input) whose constants equal the
// tuple's values at each scheme's punctuatable positions. A removal can
// only drop the last matching tuple of such a punctuation, so nothing
// else needs rechecking.
func (m *MJoin) emitForRemoved(out []stream.Element, removed [][]stream.Tuple) []stream.Element {
	for input, tuples := range removed {
		ps := m.puncts[input]
		for _, u := range tuples {
			for si, scheme := range ps.schemes {
				idx := scheme.PunctuatableIndexes()
				if cap(m.pg.consts) < len(idx) {
					m.pg.consts = make([]stream.Value, len(idx))
				}
				consts := m.pg.consts[:len(idx)]
				for k, a := range idx {
					consts[k] = u.Values[a]
				}
				e := ps.lookup(si, consts, m.clock)
				if e == nil {
					continue
				}
				if el, emitted := m.tryEmitPunct(input, e); emitted {
					out = append(out, el)
				}
			}
		}
	}
	return out
}

// emitPendingPuncts re-tests every stored, not-yet-emitted punctuation (a
// full pass, used by the background clean-up Sweep).
func (m *MJoin) emitPendingPuncts(out []stream.Element) []stream.Element {
	for input := range m.puncts {
		m.puncts[input].each(m.clock, func(_ int, e *punctEntry) bool {
			if el, ok := m.tryEmitPunct(input, e); ok {
				out = append(out, el)
			}
			return true
		})
	}
	return out
}

// hasMatchingTuple reports whether any stored tuple of the input matches
// the punctuation's constant patterns. Indexed attributes are probed;
// otherwise the state is scanned.
func (m *MJoin) hasMatchingTuple(input int, p stream.Punctuation) bool {
	consts := p.ConstIndexes()
	st := m.states[input]
	for _, a := range consts {
		// The hash index answers equality constraints only.
		if st.index[a] == nil || p.Patterns[a].IsLeq() {
			continue
		}
		tb := st.lookup2(a, p.Patterns[a].Value())
		for _, run := range tb.runs() {
			for _, id := range run {
				if u, ok := st.get(id); ok && p.Matches(u) {
					return true
				}
			}
		}
		return false
	}
	// No constrained attribute is indexed: scan.
	found := false
	st.each(func(_ tupleID, u stream.Tuple) bool {
		if p.Matches(u) {
			found = true
			return false
		}
		return true
	})
	return found
}

// punctVictim identifies one stored punctuation.
type punctVictim struct {
	input     int
	schemeIdx int
	consts    []stream.Value
}

// violatedPromise reports whether a live punctuation stored on the
// tuple's own input forbids it, returning the offending punctuation. The
// check is one exact-key lookup per registered scheme: a tuple matches a
// scheme's instantiation iff its values at the punctuatable positions
// equal the stored constants (with <= for the ordered slot) — exactly the
// covered() query over constants drawn from the tuple itself.
func (m *MJoin) violatedPromise(input int, t stream.Tuple) (stream.Punctuation, bool) {
	ps := m.puncts[input]
	for si, scheme := range ps.schemes {
		idx := scheme.PunctuatableIndexes()
		if cap(m.pg.consts) < len(idx) {
			m.pg.consts = make([]stream.Value, len(idx))
		}
		consts := m.pg.consts[:len(idx)]
		for k, a := range idx {
			consts[k] = t.Values[a]
		}
		if ps.covered(si, consts, m.clock) {
			return ps.lookup(si, consts, m.clock).punct, true
		}
	}
	return stream.Punctuation{}, false
}

// purgePunctStores implements §5.1 punctuation purgeability. A stored
// punctuation e on stream j can be dropped once every join partner side
// is closed for it: the partner holds a counter-punctuation implied by
// e's constraint (mapped through the join predicates) and stores no
// tuple still matching that constraint. Candidates are derived from the
// batch (a new punctuation may be the missing counter for its partners'
// punctuations) and from the purge round's removed tuples (a removal may
// have been the last matching partner tuple); a punctuation whose
// blockers lie beyond this neighbourhood is caught by the Sweep's full
// pass instead.
func (m *MJoin) purgePunctStores(batch []pendingPunct, removed [][]stream.Tuple) {
	pg := &m.pg
	clear(pg.seenKeys)
	pg.victims = pg.victims[:0]
	consider := func(input, schemeIdx int, e *punctEntry) {
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[:8], uint64(input))
		binary.LittleEndian.PutUint64(hdr[8:], uint64(schemeIdx))
		pg.keyBuf = append(pg.keyBuf[:0], hdr[:]...)
		pg.keyBuf = stream.AppendKey(pg.keyBuf, e.consts...)
		if pg.seenKeys[string(pg.keyBuf)] {
			return
		}
		pg.seenKeys[string(pg.keyBuf)] = true
		if m.punctPurgeable(input, schemeIdx, e) {
			pg.victims = append(pg.victims, punctVictim{input: input, schemeIdx: schemeIdx, consts: e.consts})
		}
	}

	// (a) New punctuations: they may complete the counter-coverage of a
	// partner stream's stored punctuation with the mapped constants.
	for _, pp := range batch {
		m.eachMappedEntry(pp.input, pp.p, consider)
		// The new punctuation itself may already be droppable.
		if si := m.puncts[pp.input].schemeIndex(pp.p); si >= 0 {
			if e := m.puncts[pp.input].lookup(si, constsOf(pp.p), m.clock); e != nil {
				consider(pp.input, si, e)
			}
		}
	}
	// (b) Removed tuples: a stored punctuation that matched them on a
	// partner stream may have lost its last blocker.
	for input, tuples := range removed {
		for _, u := range tuples {
			for _, p := range m.predsTouching[input] {
				other, myAttr, otherAttr := p.Other(input)
				ps := m.puncts[other]
				for si, scheme := range ps.schemes {
					idx := scheme.PunctuatableIndexes()
					if len(idx) != 1 || idx[0] != otherAttr {
						continue
					}
					if e := ps.lookup(si, []stream.Value{u.Values[myAttr]}, m.clock); e != nil {
						consider(other, si, e)
					}
				}
				// Multi-attribute schemes: reconstruct the constants from
				// the removed tuple when every punctuatable attribute maps
				// back to this input.
				for si, scheme := range ps.schemes {
					idx := scheme.PunctuatableIndexes()
					if len(idx) < 2 {
						continue
					}
					consts := make([]stream.Value, len(idx))
					ok := true
					for k, a := range idx {
						back := m.q.PartnerAttr(other, a, input)
						if back < 0 {
							ok = false
							break
						}
						consts[k] = u.Values[back]
					}
					if !ok {
						continue
					}
					if e := ps.lookup(si, consts, m.clock); e != nil {
						consider(other, si, e)
					}
				}
			}
		}
	}

	// Collect all victims before removing any: two punctuations may
	// certify each other (both sides closed on the same values), and
	// removing one first would strand the other.
	m.removeVictims(pg.victims)
}

// sweepPunctStores is the full §5.1 pass used by Sweep: every stored
// punctuation is re-evaluated.
func (m *MJoin) sweepPunctStores() {
	pg := &m.pg
	pg.victims = pg.victims[:0]
	for j := range m.puncts {
		ps := m.puncts[j]
		ps.each(m.clock, func(si int, e *punctEntry) bool {
			if m.punctPurgeable(j, si, e) {
				pg.victims = append(pg.victims, punctVictim{input: j, schemeIdx: si, consts: e.consts})
			}
			return true
		})
	}
	m.removeVictims(pg.victims)
}

func (m *MJoin) removeVictims(victims []punctVictim) {
	for _, v := range victims {
		if m.puncts[v.input].remove(v.schemeIdx, v.consts) {
			m.stats.PunctsPurged[v.input]++
			m.stats.PunctStoreSize[v.input] = m.puncts[v.input].size
		}
	}
}

// eachMappedEntry maps a punctuation's constraint through the join
// predicates onto each partner stream and invokes fn for every stored
// partner punctuation whose constants equal the mapped values.
func (m *MJoin) eachMappedEntry(input int, p stream.Punctuation, fn func(input, schemeIdx int, e *punctEntry)) {
	consts := p.ConstIndexes()
	for _, other := range m.partners[input] {
		// mapped[attr of other] = value implied by p.
		mapped := make(map[int]stream.Value)
		conflict := false
		for _, a := range consts {
			v := p.Patterns[a].Value()
			for _, pr := range m.predsTouching[input] {
				o, myAttr, otherAttr := pr.Other(input)
				if o != other || myAttr != a {
					continue
				}
				if prev, ok := mapped[otherAttr]; ok && !prev.Equal(v) {
					conflict = true
				}
				mapped[otherAttr] = v
			}
		}
		if conflict || len(mapped) == 0 {
			continue
		}
		ps := m.puncts[other]
		for si, scheme := range ps.schemes {
			idx := scheme.PunctuatableIndexes()
			vals := make([]stream.Value, len(idx))
			ok := true
			for k, a := range idx {
				v, has := mapped[a]
				if !has {
					ok = false
					break
				}
				vals[k] = v
			}
			if !ok {
				continue
			}
			if e := ps.lookup(si, vals, m.clock); e != nil {
				fn(other, si, e)
			}
		}
	}
}

// punctPurgeable decides whether a stored punctuation e on input j can be
// dropped: for every join partner reachable through e's constrained
// attributes, the partner must hold a live counter-punctuation implied by
// e's mapped constraint and store no tuple still matching it. Constrained
// attributes that join nothing keep the punctuation alive (nothing can
// certify they will not be needed).
func (m *MJoin) punctPurgeable(j, schemeIdx int, e *punctEntry) bool {
	if m.puncts[j].ordSlot[schemeIdx] >= 0 {
		// Watermark entries are self-compacting (one entry per equality
		// key, bound monotonically widened), so counter-punctuation
		// purging is unnecessary for them; lifespans still apply.
		return false
	}
	scheme := m.puncts[j].schemes[schemeIdx]
	idx := scheme.PunctuatableIndexes()
	partnersTouched := false
	for _, other := range m.partners[j] {
		// Map e's constraint onto the partner.
		mapped := make(map[int]stream.Value)
		for k, a := range idx {
			v := e.consts[k]
			for _, pr := range m.predsTouching[j] {
				o, myAttr, otherAttr := pr.Other(j)
				if o == other && myAttr == a {
					if prev, ok := mapped[otherAttr]; ok && !prev.Equal(v) {
						// Contradictory constraint: no partner tuple can
						// ever match e through this stream.
						mapped = nil
					}
					if mapped != nil {
						mapped[otherAttr] = v
					}
				}
			}
			if mapped == nil {
				break
			}
		}
		if mapped == nil {
			continue // e matches nothing on this partner
		}
		if len(mapped) == 0 {
			continue // partner not linked through constrained attributes
		}
		partnersTouched = true
		if !m.counterCovered(other, mapped) {
			return false
		}
		if m.hasTupleMatching(other, mapped) {
			return false
		}
	}
	// Every constrained attribute must join at least one partner;
	// otherwise the punctuation's purpose cannot be certified away.
	for _, a := range idx {
		if len(m.q.JoinPartners(j, a)) == 0 {
			return false
		}
	}
	return partnersTouched
}

// counterCovered reports whether stream s holds a live punctuation whose
// constrained attributes are a subset of the mapped constraint with equal
// values — such a punctuation forbids every future s-tuple matching the
// constraint.
func (m *MJoin) counterCovered(s int, mapped map[int]stream.Value) bool {
	ps := m.puncts[s]
	for si, scheme := range ps.schemes {
		idx := scheme.PunctuatableIndexes()
		consts := make([]stream.Value, len(idx))
		ok := true
		for k, a := range idx {
			v, has := mapped[a]
			if !has {
				ok = false
				break
			}
			consts[k] = v
		}
		if ok && ps.covered(si, consts, m.clock) {
			return true
		}
	}
	return false
}

// hasTupleMatching reports whether stream s stores a tuple matching every
// (attr, value) pair of the constraint.
func (m *MJoin) hasTupleMatching(s int, mapped map[int]stream.Value) bool {
	// Probe the first indexed attribute; verify the rest.
	st := m.states[s]
	for a, v := range mapped {
		if st.index[a] == nil {
			continue
		}
		tb := st.lookup2(a, v)
		for _, run := range tb.runs() {
			for _, id := range run {
				u, live := st.get(id)
				if !live {
					continue
				}
				all := true
				for a2, v2 := range mapped {
					if !u.Values[a2].Equal(v2) {
						all = false
						break
					}
				}
				if all {
					return true
				}
			}
		}
		return false
	}
	found := false
	st.each(func(_ tupleID, u stream.Tuple) bool {
		for a, v := range mapped {
			if !u.Values[a].Equal(v) {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
