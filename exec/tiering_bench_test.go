package exec_test

// BenchmarkTiering backs BENCH_tiering.json (make benchskew): the
// long-state rows compare the steady-state probe over a large resident
// join state with the cold tier off (all rows hot) and on (the bulk
// frozen into compacted segments) — the acceptance bar is tiered ns/op
// within 5% of hot-only with the resident hot tier at least 2× smaller.
// The skew rows drive the Zipfian auction feed through a 2-replica
// partitioned tree with a soft state limit: the no-split row latches
// pressure and lets the hot replica grow, the split row force-splits the
// pressured replica the way the engine's watcher does and must hold
// every replica near the limit.

import (
	"fmt"
	"testing"

	"punctsafe/exec"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
	"punctsafe/workload"
)

// longStateJoin builds the R ⋈ S probe harness: residentRows R tuples
// over fanout-sized key groups. R has an equality scheme on the join key,
// so the probe loop can punctuate R per key — which purges the just-probed
// S tuple (its only remaining use was joining future R) while leaving R's
// long-lived state untouched. The timed loop therefore measures the probe
// over R's tiers at a steady state size, not harness-side state growth.
func longStateJoin(b testing.TB, coldAfter uint64) *exec.MJoin {
	b.Helper()
	q := query.NewBuilder().
		AddStream(stream.MustSchema("R", intAttr("K"), intAttr("V"))).
		AddStream(stream.MustSchema("S", intAttr("K"), intAttr("W"))).
		JoinOn("R", "S", "K").
		MustBuild()
	schemes := stream.NewSchemeSet(stream.MustScheme("R", true, false))
	m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes, ColdAfter: coldAfter})
	if err != nil {
		b.Fatal(err)
	}
	const residentRows, keys = 32768, 4096
	for i := int64(0); i < residentRows; i++ {
		if _, err := m.Push(0, stream.TupleElement(stream.NewTuple(stream.Int(i%keys), stream.Int(i)))); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

func benchLongState(b *testing.B, coldAfter uint64) {
	m := longStateJoin(b, coldAfter)
	const keys = 4096
	puncts := make([]stream.Element, keys)
	for k := range puncts {
		puncts[k] = stream.PunctElement(stream.MustPunctuation(stream.Const(stream.Int(int64(k))), stream.Wildcard()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % keys
		el := stream.TupleElement(stream.NewTuple(stream.Int(int64(k)), stream.Int(int64(i))))
		if _, err := m.Push(1, el); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Push(0, puncts[k]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Resident tiers of the probed (R) state: the acceptance bar reads
	// hot-resident off these rows (tiered must be >= 2x lower).
	st := m.StatsSnapshot()
	b.ReportMetric(float64(st.StateSize[0]), "state-rows")
	b.ReportMetric(float64(st.StateSize[0]-st.ColdSize[0]), "hot-resident")
}

// benchSkew drives the skewed unpunctuated auction feed through a
// 2-replica partitioned tree under a soft state limit, optionally
// force-splitting the pressured replica (the engine watcher's policy,
// run deterministically inline).
func benchSkew(b *testing.B, split bool) {
	const softLimit = 800
	const maxSplits = 6
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	root := plan.Join(plan.Leaf(0), plan.Leaf(1))
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 400, MaxBidsPerItem: 6, OpenWindow: 4, Skew: 1.1, Seed: 17,
	})
	feed, err := workload.NewFeed(q, inputs)
	if err != nil {
		b.Fatal(err)
	}
	var peak, final, pressures, splits float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hot := -1
		cfg := exec.Config{
			Query: q, Schemes: schemes, ColdAfter: 64, SoftStateLimit: softLimit,
			OnPressure: func(ev exec.PressureEvent) {
				pressures++
				hot = ev.Partition
			},
		}
		pt, err := exec.NewPartitionedTree(cfg, root, 2)
		if err != nil {
			b.Fatal(err)
		}
		done, n := 0, 0
		maxReplica := func() int {
			m := 0
			for p := 0; p < pt.Partitions(); p++ {
				if s := pt.Partition(p).TotalState(); s > m {
					m = s
				}
			}
			return m
		}
		if err := feed.Each(func(idx int, e stream.Element) error {
			if _, err := pt.Push(idx, e); err != nil {
				return err
			}
			if split && hot >= 0 && done < maxSplits {
				if _, _, err := pt.Split(hot); err == nil {
					done++
				}
				hot = -1
			}
			if n++; n%32 == 0 {
				if m := float64(maxReplica()); m > peak {
					peak = m
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if m := float64(maxReplica()); m > peak {
			peak = m
		}
		final = float64(maxReplica())
		splits += float64(done)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(len(inputs)), "elements/op")
	b.ReportMetric(float64(softLimit), "soft-limit")
	b.ReportMetric(final, "max-replica-final")
	b.ReportMetric(peak, "max-replica-peak")
	b.ReportMetric(pressures/n, "pressure-events/op")
	b.ReportMetric(splits/n, "splits/op")
}

func BenchmarkTiering(b *testing.B) {
	for _, mode := range []struct {
		name      string
		coldAfter uint64
	}{{"hot-only", 0}, {"tiered", 2048}} {
		b.Run(fmt.Sprintf("long-state/%s", mode.name), func(b *testing.B) {
			benchLongState(b, mode.coldAfter)
		})
	}
	b.Run("skew/no-split", func(b *testing.B) { benchSkew(b, false) })
	b.Run("skew/split", func(b *testing.B) { benchSkew(b, true) })
}
