package exec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"punctsafe/stream"
)

// Operator state serialization: a versioned, length-prefixed encoding of
// everything an MJoin accumulates at runtime — the ordered join-state
// columns, the punctuation stores (including lifespan deadlines), the
// stats counters, any punctuations pending a lazy purge round, and the
// pressure latch. Tuple and punctuation payloads reuse stream.Codec, so
// the on-disk form is schema-checked on the way back in.
//
// The index side of a joinState is NOT serialized: buckets are derivable
// from the ordered columns, and rebuilding them on load (inserting rows
// in ascending tupleID order, which keeps every bucket sorted for free)
// is cheaper and safer than trusting bytes from disk.
//
// Decoding is two-phase: DecodeState parses and validates a complete
// TreeState without touching the live operators; InstallState swaps it in
// afterwards. A corrupt snapshot therefore fails cleanly — wrapped in
// ErrCorruptState — and can never leave a tree half-restored.

// ErrCorruptState is returned (wrapped) when serialized operator state
// fails to parse or validate.
var ErrCorruptState = errors.New("exec: corrupt operator state")

// Format version tags. Bump when the layout changes; decoders reject
// anything else as corrupt (version-mismatched state is indistinguishable
// from damage once the layout moved).
// MJS2 extends MJS1 with the state-tiering section: per input, the tier
// watermarks (frozenBound, freezeAt) and the frozen cold rows serialized
// separately from the hot rows, plus the ColdSize/Freezes stats columns.
const (
	treeStateMagic = "PTR1"
	opStateMagic   = "MJS2"
)

// TreeState is a fully decoded, validated snapshot of a tree's operator
// states, detached from any live tree until InstallState commits it.
type TreeState struct {
	ops []*opState
}

// opState is the staged state of one MJoin.
type opState struct {
	clock     uint64
	states    []*joinState
	puncts    []*punctStore
	stats     *Stats
	pending   []pendingPunct
	pressured bool
}

// WriteState serializes the tree's operator states (bottom-up, the
// Operators order) to w. Call it only from the goroutine driving the
// tree, or after it has quiesced; the engine Runtime routes checkpoint
// requests through each shard's mailbox for exactly that reason.
func (t *Tree) WriteState(w io.Writer) error {
	buf := make([]byte, 0, 4096)
	buf = append(buf, treeStateMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(t.ops)))
	for _, op := range t.ops {
		blob, err := op.join.appendState(nil)
		if err != nil {
			return err
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	_, err := w.Write(buf)
	return err
}

// DecodeState parses a WriteState snapshot against this tree's shape
// (same plan, same operator count, same schemas) without modifying the
// tree. Any parse or validation failure returns an error wrapping
// ErrCorruptState and leaves the tree untouched.
func (t *Tree) DecodeState(r io.Reader) (*TreeState, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading state: %v", ErrCorruptState, err)
	}
	d := &stateDec{buf: buf}
	magic, err := d.take(len(treeStateMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != treeStateMagic {
		return nil, fmt.Errorf("%w: unsupported tree state version %q", ErrCorruptState, magic)
	}
	n, err := d.count("operator count")
	if err != nil {
		return nil, err
	}
	if n != len(t.ops) {
		return nil, fmt.Errorf("%w: snapshot holds %d operators, tree has %d", ErrCorruptState, n, len(t.ops))
	}
	ts := &TreeState{ops: make([]*opState, n)}
	for i, op := range t.ops {
		blobLen, err := d.count("operator blob length")
		if err != nil {
			return nil, err
		}
		blob, err := d.take(blobLen)
		if err != nil {
			return nil, err
		}
		os, err := op.join.decodeState(blob)
		if err != nil {
			return nil, fmt.Errorf("operator %d: %w", i, err)
		}
		ts.ops[i] = os
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after tree state", ErrCorruptState, len(d.buf)-d.off)
	}
	return ts, nil
}

// InstallState commits a snapshot previously decoded against this tree.
func (t *Tree) InstallState(s *TreeState) error {
	if len(s.ops) != len(t.ops) {
		return fmt.Errorf("%w: snapshot holds %d operators, tree has %d", ErrCorruptState, len(s.ops), len(t.ops))
	}
	for i, op := range t.ops {
		op.join.installState(s.ops[i])
	}
	return nil
}

// ReadState decodes and installs a snapshot in one call.
func (t *Tree) ReadState(r io.Reader) error {
	s, err := t.DecodeState(r)
	if err != nil {
		return err
	}
	return t.InstallState(s)
}

// appendState appends the operator's serialized state to dst.
func (m *MJoin) appendState(dst []byte) ([]byte, error) {
	dst = append(dst, opStateMagic...)
	dst = binary.AppendUvarint(dst, m.clock)
	dst = binary.AppendUvarint(dst, uint64(m.q.N()))
	var err error
	for i := 0; i < m.q.N(); i++ {
		codec := stream.NewCodec(m.q.Stream(i))
		dst, err = m.appendInputState(dst, i, codec)
		if err != nil {
			return nil, err
		}
	}
	dst = m.stats.appendState(dst)
	dst = binary.AppendUvarint(dst, uint64(len(m.pending)))
	for _, pp := range m.pending {
		dst = binary.AppendUvarint(dst, uint64(pp.input))
		dst, err = stream.NewCodec(m.q.Stream(pp.input)).Encode(dst, stream.PunctElement(pp.p))
		if err != nil {
			return nil, fmt.Errorf("exec: serializing pending punctuation: %w", err)
		}
	}
	dst = append(dst, boolByte(m.pressured))
	return dst, nil
}

// appendInputState serializes one input's join state and punctuation
// store. Live rows travel in ascending tupleID order — the cold tier's
// rows first (ids below frozenBound), then the hot rows — so decoding
// rebuilds each tier's columns and index buckets born sorted.
// Punctuation entries travel per scheme in sorted key order (including
// expired-but-unswept entries, which still count toward the store size
// the stats report).
func (m *MJoin) appendInputState(dst []byte, input int, codec *stream.Codec) ([]byte, error) {
	st := m.states[input]
	dst = binary.AppendUvarint(dst, uint64(st.nextID))
	dst = binary.AppendUvarint(dst, uint64(st.frozenBound))
	dst = binary.AppendUvarint(dst, uint64(st.freezeAt))
	var encErr error
	dst = binary.AppendUvarint(dst, uint64(st.coldSize()))
	if c := st.cold; c != nil {
		for r := range c.ids {
			if c.dead[r] {
				continue
			}
			dst = binary.AppendUvarint(dst, uint64(c.ids[r]))
			if dst, encErr = codec.Encode(dst, stream.TupleElement(c.tups[r])); encErr != nil {
				return nil, fmt.Errorf("exec: serializing frozen tuple: %w", encErr)
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(st.ids)-st.nDead))
	for r := range st.ids {
		if st.dead[r] {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(st.ids[r]))
		if dst, encErr = codec.Encode(dst, stream.TupleElement(st.tups[r])); encErr != nil {
			return nil, fmt.Errorf("exec: serializing stored tuple: %w", encErr)
		}
	}
	ps := m.puncts[input]
	dst = binary.AppendUvarint(dst, uint64(len(ps.schemes)))
	var keys []string
	for k := range ps.entries {
		keys = keys[:0]
		for key := range ps.entries[k] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for _, key := range keys {
			e := ps.entries[k][key]
			var err error
			dst, err = codec.Encode(dst, stream.PunctElement(e.punct))
			if err != nil {
				return nil, fmt.Errorf("exec: serializing stored punctuation: %w", err)
			}
			dst = binary.AppendUvarint(dst, e.arrived)
			dst = binary.AppendUvarint(dst, e.expires)
			dst = append(dst, boolByte(e.emitted))
		}
	}
	return dst, nil
}

// decodeState parses one operator's blob into a staged opState without
// touching the live operator.
func (m *MJoin) decodeState(blob []byte) (*opState, error) {
	d := &stateDec{buf: blob}
	magic, err := d.take(len(opStateMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != opStateMagic {
		return nil, fmt.Errorf("%w: unsupported operator state version %q", ErrCorruptState, magic)
	}
	os := &opState{}
	if os.clock, err = d.uvarint("clock"); err != nil {
		return nil, err
	}
	n, err := d.count("input count")
	if err != nil {
		return nil, err
	}
	if n != m.q.N() {
		return nil, fmt.Errorf("%w: snapshot holds %d inputs, operator has %d", ErrCorruptState, n, m.q.N())
	}
	os.states = make([]*joinState, n)
	os.puncts = make([]*punctStore, n)
	for i := 0; i < n; i++ {
		codec := stream.NewCodec(m.q.Stream(i))
		if os.states[i], err = m.decodeJoinState(d, i, codec); err != nil {
			return nil, fmt.Errorf("input %d: %w", i, err)
		}
		if os.puncts[i], err = m.decodePunctStore(d, i, codec, os.clock); err != nil {
			return nil, fmt.Errorf("input %d: %w", i, err)
		}
	}
	if os.stats, err = decodeStats(d, n); err != nil {
		return nil, err
	}
	nPending, err := d.count("pending punctuation count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nPending; i++ {
		input, err := d.count("pending punctuation input")
		if err != nil {
			return nil, err
		}
		if input >= n {
			return nil, fmt.Errorf("%w: pending punctuation input %d out of range", ErrCorruptState, input)
		}
		e, err := d.element(stream.NewCodec(m.q.Stream(input)))
		if err != nil {
			return nil, err
		}
		if !e.IsPunct() {
			return nil, fmt.Errorf("%w: pending entry is not a punctuation", ErrCorruptState)
		}
		os.pending = append(os.pending, pendingPunct{input: input, p: e.Punct()})
	}
	pressured, err := d.byteVal("pressure latch")
	if err != nil {
		return nil, err
	}
	os.pressured = pressured != 0
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after operator state", ErrCorruptState, len(d.buf)-d.off)
	}
	return os, nil
}

// decodeJoinState rebuilds one input's ordered columns — cold tier, then
// hot — and re-derives the per-attribute index buckets of both tiers
// (rows arrive in ascending id order, so appended buckets are born
// sorted). Tier membership is validated against the serialized
// watermarks: cold ids below frozenBound, hot ids at or above it, and
// frozenBound <= freezeAt <= nextID.
func (m *MJoin) decodeJoinState(d *stateDec, input int, codec *stream.Codec) (*joinState, error) {
	nextID, err := d.uvarint("nextID")
	if err != nil {
		return nil, err
	}
	frozenBound, err := d.uvarint("frozenBound")
	if err != nil {
		return nil, err
	}
	freezeAt, err := d.uvarint("freezeAt")
	if err != nil {
		return nil, err
	}
	if frozenBound > freezeAt || freezeAt > nextID {
		return nil, fmt.Errorf("%w: tier watermarks out of order (frozenBound %d, freezeAt %d, nextID %d)",
			ErrCorruptState, frozenBound, freezeAt, nextID)
	}
	st := &joinState{
		index:       make(map[int]map[stream.ValueKey][]tupleID, len(m.states[input].index)),
		frozenBound: tupleID(frozenBound),
		freezeAt:    tupleID(freezeAt),
	}
	for a := range m.states[input].index {
		st.index[a] = make(map[stream.ValueKey][]tupleID)
	}
	coldLive, err := d.count("frozen tuple count")
	if err != nil {
		return nil, err
	}
	prev := int64(-1)
	decodeRow := func(what string, max uint64) (tupleID, stream.Tuple, error) {
		id64, err := d.uvarint(what)
		if err != nil {
			return 0, stream.Tuple{}, err
		}
		if int64(id64) <= prev {
			return 0, stream.Tuple{}, fmt.Errorf("%w: tuple ids not strictly ascending", ErrCorruptState)
		}
		if id64 >= max {
			return 0, stream.Tuple{}, fmt.Errorf("%w: %s %d out of tier bound %d", ErrCorruptState, what, id64, max)
		}
		prev = int64(id64)
		e, err := d.element(codec)
		if err != nil {
			return 0, stream.Tuple{}, err
		}
		if e.IsPunct() {
			return 0, stream.Tuple{}, fmt.Errorf("%w: stored row is not a tuple", ErrCorruptState)
		}
		return tupleID(id64), e.Tuple(), nil
	}
	if coldLive > 0 {
		st.cold = newColdSegment(st.index)
		for r := 0; r < coldLive; r++ {
			id, t, err := decodeRow("frozen tuple id", frozenBound)
			if err != nil {
				return nil, err
			}
			st.cold.appendRow(id, t)
			for a := range st.cold.index {
				st.cold.appendBucketRun(a, t.Values[a].Key(), []tupleID{id})
			}
		}
	}
	live, err := d.count("live tuple count")
	if err != nil {
		return nil, err
	}
	for r := 0; r < live; r++ {
		id, t, err := decodeRow("tuple id", nextID)
		if err != nil {
			return nil, err
		}
		if uint64(id) < frozenBound {
			return nil, fmt.Errorf("%w: hot tuple id %d below frozenBound %d", ErrCorruptState, id, frozenBound)
		}
		st.ids = append(st.ids, id)
		st.tups = append(st.tups, t)
		st.dead = append(st.dead, false)
		for a, idx := range st.index {
			k := t.Values[a].Key()
			idx[k] = append(idx[k], id)
		}
	}
	st.nextID = tupleID(nextID)
	return st, nil
}

// decodePunctStore rebuilds one input's punctuation store, re-deriving
// each entry's equality key and validating it against the scheme it was
// stored under.
func (m *MJoin) decodePunctStore(d *stateDec, input int, codec *stream.Codec, clock uint64) (*punctStore, error) {
	ps := newPunctStore(m.puncts[input].schemes)
	nSchemes, err := d.count("scheme count")
	if err != nil {
		return nil, err
	}
	if nSchemes != len(ps.schemes) {
		return nil, fmt.Errorf("%w: snapshot holds %d schemes, store has %d", ErrCorruptState, nSchemes, len(ps.schemes))
	}
	for k := 0; k < nSchemes; k++ {
		nEntries, err := d.count("punctuation entry count")
		if err != nil {
			return nil, err
		}
		for j := 0; j < nEntries; j++ {
			e, err := d.element(codec)
			if err != nil {
				return nil, err
			}
			if !e.IsPunct() {
				return nil, fmt.Errorf("%w: stored entry is not a punctuation", ErrCorruptState)
			}
			p := e.Punct()
			if !ps.schemes[k].Instantiates(p) {
				return nil, fmt.Errorf("%w: punctuation %s does not instantiate scheme %s", ErrCorruptState, p, ps.schemes[k])
			}
			entry := &punctEntry{punct: p, consts: constsOf(p)}
			if entry.arrived, err = d.uvarint("punctuation arrival clock"); err != nil {
				return nil, err
			}
			if entry.expires, err = d.uvarint("punctuation expiry clock"); err != nil {
				return nil, err
			}
			emitted, err := d.byteVal("punctuation emitted flag")
			if err != nil {
				return nil, err
			}
			entry.emitted = emitted != 0
			if entry.arrived > clock {
				return nil, fmt.Errorf("%w: punctuation arrival clock %d beyond operator clock %d", ErrCorruptState, entry.arrived, clock)
			}
			key := string(ps.appendEqKey(nil, k, entry.consts))
			if _, dup := ps.entries[k][key]; dup {
				return nil, fmt.Errorf("%w: duplicate punctuation entry for scheme %s", ErrCorruptState, ps.schemes[k])
			}
			ps.entries[k][key] = entry
			ps.size++
		}
	}
	return ps, nil
}

// installState commits a staged opState into the live operator.
func (m *MJoin) installState(s *opState) {
	m.clock = s.clock
	m.states = s.states
	m.puncts = s.puncts
	m.stats = s.stats
	m.pending = s.pending
	m.pressured = s.pressured
}

// appendState serializes the stats counters.
func (s *Stats) appendState(dst []byte) []byte {
	for _, col := range [][]uint64{s.TuplesIn, s.PunctsIn, s.TuplesPurged, s.PunctsPurged} {
		for _, v := range col {
			dst = binary.AppendUvarint(dst, v)
		}
	}
	for _, col := range [][]int{s.StateSize, s.ColdSize, s.PunctStoreSize} {
		for _, v := range col {
			dst = binary.AppendUvarint(dst, uint64(v))
		}
	}
	dst = binary.AppendUvarint(dst, s.Results)
	dst = binary.AppendUvarint(dst, s.OutPuncts)
	dst = binary.AppendUvarint(dst, uint64(s.MaxStateSize))
	dst = binary.AppendUvarint(dst, uint64(s.MaxPunctStoreSize))
	dst = binary.AppendUvarint(dst, s.PurgeChecks)
	dst = binary.AppendUvarint(dst, s.PressureEvents)
	dst = binary.AppendUvarint(dst, s.Freezes)
	return dst
}

func decodeStats(d *stateDec, n int) (*Stats, error) {
	s := newStats(n)
	var err error
	for _, col := range [][]uint64{s.TuplesIn, s.PunctsIn, s.TuplesPurged, s.PunctsPurged} {
		for i := range col {
			if col[i], err = d.uvarint("stats counter"); err != nil {
				return nil, err
			}
		}
	}
	for _, col := range [][]int{s.StateSize, s.ColdSize, s.PunctStoreSize} {
		for i := range col {
			v, err := d.uvarint("stats size")
			if err != nil {
				return nil, err
			}
			col[i] = int(v)
		}
	}
	if s.Results, err = d.uvarint("stats results"); err != nil {
		return nil, err
	}
	if s.OutPuncts, err = d.uvarint("stats out puncts"); err != nil {
		return nil, err
	}
	v, err := d.uvarint("stats max state")
	if err != nil {
		return nil, err
	}
	s.MaxStateSize = int(v)
	if v, err = d.uvarint("stats max punct store"); err != nil {
		return nil, err
	}
	s.MaxPunctStoreSize = int(v)
	if s.PurgeChecks, err = d.uvarint("stats purge checks"); err != nil {
		return nil, err
	}
	if s.PressureEvents, err = d.uvarint("stats pressure events"); err != nil {
		return nil, err
	}
	if s.Freezes, err = d.uvarint("stats freezes"); err != nil {
		return nil, err
	}
	return s, nil
}

// stateDec is a bounds-checked cursor over a serialized state buffer;
// every failure wraps ErrCorruptState.
type stateDec struct {
	buf []byte
	off int
}

func (d *stateDec) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad %s at byte %d", ErrCorruptState, what, d.off)
	}
	d.off += n
	return v, nil
}

// count decodes a collection size, bounding it by the bytes remaining
// (every collection member costs at least one byte) so a corrupt count
// cannot drive a huge allocation.
func (d *stateDec) count(what string) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.buf)-d.off) {
		return 0, fmt.Errorf("%w: %s %d exceeds remaining %d bytes", ErrCorruptState, what, v, len(d.buf)-d.off)
	}
	return int(v), nil
}

func (d *stateDec) take(n int) ([]byte, error) {
	if n < 0 || n > len(d.buf)-d.off {
		return nil, fmt.Errorf("%w: truncated at byte %d (want %d more)", ErrCorruptState, d.off, n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *stateDec) byteVal(what string) (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated %s at byte %d", ErrCorruptState, what, d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

// element decodes one codec-framed element in place (the codec encoding
// is self-delimiting).
func (d *stateDec) element(c *stream.Codec) (stream.Element, error) {
	e, rest, err := c.Decode(d.buf[d.off:])
	if err != nil {
		return stream.Element{}, fmt.Errorf("%w: element at byte %d: %v", ErrCorruptState, d.off, err)
	}
	d.off = len(d.buf) - len(rest)
	return e, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
