package exec

import (
	"bytes"
	"math/rand"
	"testing"

	"punctsafe/plan"
	"punctsafe/stream"
)

// Cold-tier and live-split property suite: tiering and repartitioning are
// performance levers, never semantic ones. Every test here pins the same
// shape of claim — a tree with freezing enabled, or a partitioned tree
// split mid-stream, must be observationally identical to the untouched
// run, element for element.

// driveTree pushes a workload through a tree and renders every output.
func driveTree(t *testing.T, tr *Tree, evs []event) []string {
	t.Helper()
	var out []string
	for _, ev := range evs {
		outs, err := tr.Push(ev.stream, ev.el)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			out = append(out, o.String())
		}
	}
	outs, err := tr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		out = append(out, o.String())
	}
	return out
}

// TestTieredTreeBisimulation: with ColdAfter set, outputs must match the
// all-hot run element for element, purges must still drain the state to
// zero, and freezes must actually have happened (the check is not
// vacuous).
func TestTieredTreeBisimulation(t *testing.T) {
	q := starQuery(t)
	schemes := starSchemes()
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	evs := starWorkload(rand.New(rand.NewSource(21)), 8, 6, 3)

	ref, err := NewTree(Config{Query: q, Schemes: schemes}, root)
	if err != nil {
		t.Fatal(err)
	}
	want := driveTree(t, ref, evs)
	if len(want) == 0 {
		t.Fatal("workload produced no outputs; test is vacuous")
	}

	for _, coldAfter := range []uint64{1, 3, 16} {
		tr, err := NewTree(Config{Query: q, Schemes: schemes, ColdAfter: coldAfter}, root)
		if err != nil {
			t.Fatal(err)
		}
		got := driveTree(t, tr, evs)
		if len(got) != len(want) {
			t.Fatalf("ColdAfter=%d emitted %d elements, all-hot %d", coldAfter, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ColdAfter=%d element %d diverges:\n  tiered: %s\n  hot:    %s", coldAfter, i, got[i], want[i])
			}
		}
		if tr.TotalState() != 0 {
			t.Fatalf("ColdAfter=%d: purges should drain through the cold tier, %d tuples remain", coldAfter, tr.TotalState())
		}
		froze := false
		for _, st := range tr.StatsSnapshot() {
			if st.Freezes > 0 {
				froze = true
			}
			for i, c := range st.ColdSize {
				if c > st.StateSize[i] {
					t.Fatalf("ColdAfter=%d: ColdSize[%d]=%d exceeds StateSize %d", coldAfter, i, c, st.StateSize[i])
				}
			}
		}
		if !froze {
			t.Fatalf("ColdAfter=%d: no freeze generation moved a row; the bisimulation is vacuous", coldAfter)
		}
	}
}

// TestJoinStateFreeze pins the two-tier mechanics directly: rows below
// the watermark move cold, lookups see both tiers in arrival order,
// removals reach into the segment, and heavy cold deletion recompacts.
func TestJoinStateFreeze(t *testing.T) {
	st := newJoinState([]int{0})
	const n = 200
	for i := 0; i < n; i++ {
		st.insert(tup(int64(i%5), int64(i)))
	}
	// Freeze the first generation: everything currently stored is below
	// the watermark after two advances (first advance sets the bound).
	if moved := st.advanceFreeze(); moved != 0 {
		t.Fatalf("first advance froze %d rows, want 0 (rows must age one interval)", moved)
	}
	if moved := st.advanceFreeze(); moved != n {
		t.Fatalf("second advance froze %d rows, want %d", moved, n)
	}
	if st.cold == nil || st.cold.size() != n {
		t.Fatalf("cold segment holds %v, want %d live rows", st.cold, n)
	}
	if st.size() != n {
		t.Fatalf("size() = %d across tiers, want %d", st.size(), n)
	}
	// Hot inserts continue above the bound; lookup sees both tiers with
	// cold ids strictly below hot ids.
	for i := n; i < n+50; i++ {
		st.insert(tup(int64(i%5), int64(i)))
	}
	tb := st.lookup2(0, stream.Int(3))
	if len(tb.cold) == 0 || len(tb.hot) == 0 {
		t.Fatalf("lookup2 found cold=%d hot=%d buckets, want both tiers populated", len(tb.cold), len(tb.hot))
	}
	if tb.cold[len(tb.cold)-1] >= tb.hot[0] {
		t.Fatalf("tier invariant broken: max cold id %d >= min hot id %d", tb.cold[len(tb.cold)-1], tb.hot[0])
	}
	seen := 0
	for _, run := range tb.runs() {
		for _, id := range run {
			u, ok := st.get(id)
			if !ok {
				t.Fatalf("candidate id %d not retrievable", id)
			}
			if u.Values[0].AsInt() != 3 {
				t.Fatalf("candidate id %d has key %v, want 3", id, u.Values[0])
			}
			seen++
		}
	}
	if seen != tb.total() {
		t.Fatalf("walked %d candidates, total() says %d", seen, tb.total())
	}
	// Remove every frozen row with key 3: tombstones first, then the
	// deferred recompaction once the dead fraction crosses the policy.
	coldVictims := append([]tupleID(nil), tb.cold...)
	for _, id := range coldVictims {
		if !st.remove(id) {
			t.Fatalf("remove(%d) found nothing", id)
		}
	}
	if got := st.lookup2(0, stream.Int(3)); len(got.cold) != 0 {
		t.Fatalf("cold bucket still holds %d ids after removal", len(got.cold))
	}
	for _, id := range coldVictims {
		if _, ok := st.get(id); ok {
			t.Fatalf("removed cold id %d still retrievable", id)
		}
	}
	// Drain the rest of the segment; it must recompact away entirely.
	for _, key := range []int64{0, 1, 2, 4} {
		for _, id := range append([]tupleID(nil), st.lookup2(0, stream.Int(key)).cold...) {
			st.remove(id)
		}
	}
	if st.cold != nil {
		t.Fatalf("fully drained cold segment not released: %d ids, %d dead", len(st.cold.ids), st.cold.nDead)
	}
}

// TestLiveSplitContinuesExactly: splitting replicas mid-stream must not
// change a single output element, and the post-split replica set must
// spread the remaining load and drain to zero.
func TestLiveSplitContinuesExactly(t *testing.T) {
	q := starQuery(t)
	schemes := starSchemes()
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	evs := starWorkload(rand.New(rand.NewSource(31)), 8, 6, 3)
	cfg := Config{Query: q, Schemes: schemes, ColdAfter: 8}

	ref, err := NewTree(cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	want := driveTree(t, ref, evs)

	pt, err := NewPartitionedTree(cfg, root, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	push := func(evs []event) {
		for _, ev := range evs {
			outs, err := pt.Push(ev.stream, ev.el)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range outs {
				got = append(got, o.String())
			}
		}
	}
	collect := func(outs []stream.Element) {
		for _, o := range outs {
			got = append(got, o.String())
		}
	}
	third := len(evs) / 3
	push(evs[:third])
	newPart, outs, err := pt.Split(0)
	if err != nil || newPart != 2 {
		t.Fatalf("Split(0) = %d, %v; want 2, nil", newPart, err)
	}
	collect(outs)
	push(evs[third : 2*third])
	newPart, outs, err = pt.Split(1)
	if err != nil || newPart != 3 {
		t.Fatalf("Split(1) = %d, %v; want 3, nil", newPart, err)
	}
	collect(outs)
	push(evs[2*third:])
	outs, err = pt.Flush()
	if err != nil {
		t.Fatal(err)
	}
	collect(outs)

	if pt.Partitions() != 4 {
		t.Fatalf("Partitions() = %d after two splits, want 4", pt.Partitions())
	}
	if len(got) != len(want) {
		t.Fatalf("split run emitted %d elements, single tree %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d diverges across the splits:\n  split run:   %s\n  single tree: %s", i, got[i], want[i])
		}
	}
	if pt.TotalState() != 0 {
		t.Fatalf("split tree should drain, has %d tuples", pt.TotalState())
	}
	spread := 0
	for i := 0; i < pt.Partitions(); i++ {
		if pt.Partition(i).StatsSnapshot()[0].TuplesIn[0] > 0 {
			spread++
		}
	}
	if spread < 3 {
		t.Fatalf("post-split tuples landed in %d replicas; the split did not redistribute", spread)
	}
}

// TestSplitSnapshotRoundTrip: a snapshot taken after a split (3 replicas)
// must restore into a tree built with the pre-split count (2 replicas) —
// the PTP2 owner table and the staged extra replica carry the growth —
// and the restored tree must continue exactly like the original.
func TestSplitSnapshotRoundTrip(t *testing.T) {
	q := starQuery(t)
	schemes := starSchemes()
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	evs := starWorkload(rand.New(rand.NewSource(41)), 6, 5, 3)
	cfg := Config{Query: q, Schemes: schemes, ColdAfter: 4}
	half := len(evs) / 2

	drive := func(pt *PartitionedTree, evs []event) []string {
		var out []string
		for _, ev := range evs {
			outs, err := pt.Push(ev.stream, ev.el)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range outs {
				out = append(out, o.String())
			}
		}
		return out
	}

	orig, err := NewPartitionedTree(cfg, root, 2)
	if err != nil {
		t.Fatal(err)
	}
	drive(orig, evs[:half/2])
	if _, _, err := orig.Split(0); err != nil {
		t.Fatal(err)
	}
	drive(orig, evs[half/2:half])
	var snap bytes.Buffer
	if err := orig.WriteState(&snap); err != nil {
		t.Fatal(err)
	}

	restored, err := NewPartitionedTree(cfg, root, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := restored.DecodeState(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.InstallState(st); err != nil {
		t.Fatal(err)
	}
	if restored.Partitions() != 3 {
		t.Fatalf("restored tree has %d partitions, want the snapshot's 3", restored.Partitions())
	}
	wantRest := drive(orig, evs[half:])
	gotRest := drive(restored, evs[half:])
	if len(gotRest) != len(wantRest) {
		t.Fatalf("restored tree emitted %d elements, original %d", len(gotRest), len(wantRest))
	}
	for i := range wantRest {
		if gotRest[i] != wantRest[i] {
			t.Fatalf("post-restore element %d diverges:\n  restored: %s\n  original: %s", i, gotRest[i], wantRest[i])
		}
	}
}
