package exec

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
	"punctsafe/workload"
)

func buildTree(t *testing.T, q *query.CJQ, set *stream.SchemeSet, cfg Config) *Tree {
	t.Helper()
	cfg.Query = q
	cfg.Schemes = set
	p, err := plan.ChooseSafe(q, set, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTree(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func pushAll(t *testing.T, tr *Tree, q *query.CJQ, inputs []workload.Input) []string {
	t.Helper()
	feed, err := workload.NewFeed(q, inputs)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	if err := feed.Each(func(i int, e stream.Element) error {
		outs, err := tr.Push(i, e)
		for _, o := range outs {
			out = append(out, o.String())
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTreeStateBisimulation is the core state-fidelity check: a tree
// restored from a mid-stream snapshot must behave exactly like the tree
// it was taken from — element for element, counter for counter — for the
// rest of the stream, across purge configurations (eager, lazy batches,
// punctuation purging, lifespans).
func TestTreeStateBisimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	cfgs := []Config{
		{},
		{PurgeBatch: 7},
		{PurgePunctuations: true},
		{PurgeBatch: 4, PurgePunctuations: true},
		{PunctLifespan: 64},
	}
	for trial := 0; trial < 12; trial++ {
		q, set, inputs := randomClosedScenario(rng)
		cut := len(inputs) / 2
		for ci, cfg := range cfgs {
			orig := buildTree(t, q, set, cfg)
			pushAll(t, orig, q, inputs[:cut])

			var snap bytes.Buffer
			if err := orig.WriteState(&snap); err != nil {
				t.Fatalf("trial %d cfg %d: WriteState: %v", trial, ci, err)
			}
			restored := buildTree(t, q, set, cfg)
			if err := restored.ReadState(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("trial %d cfg %d: ReadState: %v", trial, ci, err)
			}
			if !reflect.DeepEqual(orig.StatsSnapshot(), restored.StatsSnapshot()) {
				t.Fatalf("trial %d cfg %d: stats diverge right after restore:\n%v\nvs\n%v",
					trial, ci, orig.StatsSnapshot(), restored.StatsSnapshot())
			}

			wantOut := pushAll(t, orig, q, inputs[cut:])
			gotOut := pushAll(t, restored, q, inputs[cut:])
			if len(wantOut) != len(gotOut) {
				t.Fatalf("trial %d cfg %d: %d outputs after restore, want %d",
					trial, ci, len(gotOut), len(wantOut))
			}
			for i := range wantOut {
				if wantOut[i] != gotOut[i] {
					t.Fatalf("trial %d cfg %d: output %d differs: %s vs %s",
						trial, ci, i, gotOut[i], wantOut[i])
				}
			}
			wantFlush, err := orig.Flush()
			if err != nil {
				t.Fatal(err)
			}
			gotFlush, err := restored.Flush()
			if err != nil {
				t.Fatal(err)
			}
			if len(wantFlush) != len(gotFlush) {
				t.Fatalf("trial %d cfg %d: flush outputs differ: %d vs %d",
					trial, ci, len(gotFlush), len(wantFlush))
			}
			for i := range wantFlush {
				if wantFlush[i].String() != gotFlush[i].String() {
					t.Fatalf("trial %d cfg %d: flush output %d differs", trial, ci, i)
				}
			}
			if !reflect.DeepEqual(orig.StatsSnapshot(), restored.StatsSnapshot()) {
				t.Fatalf("trial %d cfg %d: final stats diverge:\n%v\nvs\n%v",
					trial, ci, orig.StatsSnapshot(), restored.StatsSnapshot())
			}
		}
	}
}

// TestCheckpointedLifespanExpiresOnSchedule is the §5.1 lifespan
// regression: a punctuation whose lifespan was mid-flight at checkpoint
// time must stop covering tuples at exactly the same logical tick after a
// restore as it would have without one.
func TestCheckpointedLifespanExpiresOnSchedule(t *testing.T) {
	q := binaryQuery(t)
	set := bothSideSchemes()
	cfg := Config{PunctLifespan: 40, EnforcePromises: true}

	orig := buildTree(t, q, set, cfg)
	// A few warm-up elements so the punctuation arrives at a non-zero clock.
	if _, err := orig.Push(1, stream.TupleElement(tup(100, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Push(0, stream.PunctElement(punct(7, -1))); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := orig.WriteState(&snap); err != nil {
		t.Fatal(err)
	}
	restored := buildTree(t, q, set, cfg)
	if err := restored.ReadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}

	// White-box: both trees hold the entry with the same absolute deadline.
	entryExpiry := func(tr *Tree) uint64 {
		ps := tr.Root().puncts[0]
		for _, m := range ps.entries {
			for _, e := range m {
				return e.expires
			}
		}
		t.Fatal("no stored punctuation entry")
		return 0
	}
	wantExpiry := entryExpiry(orig)
	if got := entryExpiry(restored); got != wantExpiry {
		t.Fatalf("restored expiry %d, original %d", got, wantExpiry)
	}
	if wantExpiry == 0 {
		t.Fatal("expiry not set; lifespan config did not take")
	}

	// Behavioral: probe each tick with a tuple the punctuation forbids.
	// Every rejected probe advances the clock by one in both trees, so the
	// first accepted probe marks the expiry tick; it must be the same tick
	// in both, exactly one past the recorded deadline.
	expiryTick := func(tr *Tree) uint64 {
		for i := 0; i < 200; i++ {
			_, err := tr.Push(0, stream.TupleElement(tup(7, int64(i))))
			if err == nil {
				return tr.Root().clock
			}
			if !errors.Is(err, ErrPromiseViolated) {
				t.Fatalf("unexpected error while covered: %v", err)
			}
		}
		t.Fatal("punctuation never expired")
		return 0
	}
	wantTick := expiryTick(orig)
	gotTick := expiryTick(restored)
	if wantTick != gotTick {
		t.Fatalf("restored tree expired at tick %d, uninterrupted at %d", gotTick, wantTick)
	}
	if wantTick != wantExpiry+1 {
		t.Fatalf("expired at tick %d, want deadline %d + 1", wantTick, wantExpiry)
	}
}

// TestTreeStateCorruptRejected: a damaged snapshot must fail with
// ErrCorruptState (never panic), and DecodeState must leave the target
// tree untouched.
func TestTreeStateCorruptRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	q, set, inputs := randomClosedScenario(rng)
	tr := buildTree(t, q, set, Config{PunctLifespan: 32})
	pushAll(t, tr, q, inputs[:len(inputs)/2])
	var snap bytes.Buffer
	if err := tr.WriteState(&snap); err != nil {
		t.Fatal(err)
	}
	blob := snap.Bytes()

	fresh := func() *Tree { return buildTree(t, q, set, Config{PunctLifespan: 32}) }

	// Every truncation must be rejected.
	for _, cut := range []int{0, 1, 2, 3, len(blob) / 4, len(blob) / 2, len(blob) - 1} {
		if cut >= len(blob) {
			continue
		}
		_, err := fresh().DecodeState(bytes.NewReader(blob[:cut]))
		if !errors.Is(err, ErrCorruptState) {
			t.Fatalf("truncation at %d: got %v, want ErrCorruptState", cut, err)
		}
	}
	// Trailing garbage must be rejected.
	if _, err := fresh().DecodeState(bytes.NewReader(append(append([]byte(nil), blob...), 0xAB))); !errors.Is(err, ErrCorruptState) {
		t.Fatal("trailing garbage accepted")
	}
	// A version-mismatched header must be rejected.
	wrong := append([]byte(nil), blob...)
	wrong[3] = '9'
	if _, err := fresh().DecodeState(bytes.NewReader(wrong)); !errors.Is(err, ErrCorruptState) {
		t.Fatal("version mismatch accepted")
	}
	// Seeded single-byte garbles: decode must never panic; any error must
	// be the typed corruption error. (Some flips only change a counter
	// value and still parse — that is acceptable; the property under test
	// is typed failure, not detection of every possible flip.)
	for i := 0; i < 64; i++ {
		g := append([]byte(nil), blob...)
		g[rng.Intn(len(g))] ^= 0xFF
		if _, err := fresh().DecodeState(bytes.NewReader(g)); err != nil && !errors.Is(err, ErrCorruptState) {
			t.Fatalf("garble %d: untyped error %v", i, err)
		}
	}
	// The intact snapshot still restores after all those rejections.
	if err := fresh().ReadState(bytes.NewReader(blob)); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
}
