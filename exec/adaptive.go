package exec

import (
	"fmt"

	"punctsafe/stream"
)

// AdaptivePolicy bounds the state-vs-throughput trade-off of §5.2 Plan
// Parameter II at runtime, in the spirit of the paper's "Adaptive Query
// Processing" discussion: run with a lazy purge batch while state is
// comfortable (amortizing purge work), and fall back to eager purging
// the moment the stored-tuple count crosses the high watermark, returning
// to lazy once it sinks below the low watermark.
type AdaptivePolicy struct {
	// HighWater switches purging to eager when total stored tuples reach
	// it.
	HighWater int
	// LowWater switches back to the lazy batch when total stored tuples
	// sink below it. Must be < HighWater.
	LowWater int
	// LazyBatch is the purge batch used while relaxed (must be > 1).
	LazyBatch int
}

// AdaptiveMJoin wraps an MJoin with an AdaptivePolicy.
type AdaptiveMJoin struct {
	m      *MJoin
	policy AdaptivePolicy
	eager  bool
	// Switches counts policy transitions (for observability and tests).
	Switches int
}

// NewAdaptiveMJoin builds the operator; it starts in lazy mode.
func NewAdaptiveMJoin(cfg Config, policy AdaptivePolicy) (*AdaptiveMJoin, error) {
	if policy.LazyBatch <= 1 {
		return nil, fmt.Errorf("exec: adaptive LazyBatch must be > 1, got %d", policy.LazyBatch)
	}
	if policy.LowWater >= policy.HighWater || policy.LowWater < 0 {
		return nil, fmt.Errorf("exec: adaptive watermarks invalid: low=%d high=%d", policy.LowWater, policy.HighWater)
	}
	cfg.PurgeBatch = policy.LazyBatch
	m, err := NewMJoin(cfg)
	if err != nil {
		return nil, err
	}
	return &AdaptiveMJoin{m: m, policy: policy}, nil
}

// Push feeds one element and lets the policy react to the resulting state.
func (a *AdaptiveMJoin) Push(input int, e stream.Element) ([]stream.Element, error) {
	out, err := a.m.Push(input, e)
	if err != nil {
		return nil, err
	}
	total := a.m.stats.TotalState()
	switch {
	case !a.eager && total >= a.policy.HighWater:
		a.eager = true
		a.Switches++
		a.m.cfg.PurgeBatch = 1
		// Catch up on the deferred work immediately.
		out = append(out, a.m.Flush()...)
	case a.eager && total < a.policy.LowWater:
		a.eager = false
		a.Switches++
		a.m.cfg.PurgeBatch = a.policy.LazyBatch
	}
	return out, nil
}

// Eager reports the current mode.
func (a *AdaptiveMJoin) Eager() bool { return a.eager }

// Flush forces pending purge work.
func (a *AdaptiveMJoin) Flush() []stream.Element { return a.m.Flush() }

// Stats exposes the underlying operator counters (live; see MJoin.Stats
// for the aliasing caveat).
func (a *AdaptiveMJoin) Stats() *Stats { return a.m.Stats() }

// StatsSnapshot returns a deep-copied, detached copy of the counters.
func (a *AdaptiveMJoin) StatsSnapshot() *Stats { return a.m.StatsSnapshot() }

// Inner returns the wrapped MJoin (for schema and purgeability queries).
func (a *AdaptiveMJoin) Inner() *MJoin { return a.m }
