package exec

import (
	"fmt"

	"punctsafe/stream"
)

// Window configures the alternative state-bounding mechanism the paper
// contrasts with punctuations (§2.2, §6): sliding-window semantics. A
// tuple is retained only while it is inside the window; once it slides
// out it is purged regardless of punctuations. Windows guarantee bounded
// state unconditionally but change the query's answer — joins between
// tuples farther apart than the window are silently lost — whereas
// punctuation-based purging is exact. The WindowedMJoin exists to measure
// exactly that trade-off (experiment E11).
type Window struct {
	// Rows is the per-input row-based window size: each input retains at
	// most the last Rows tuples.
	Rows int
}

// WindowedMJoin is a symmetric multi-way join whose state is bounded by
// sliding windows instead of punctuations. It shares the probe machinery
// shape with MJoin but its purging is positional: the oldest tuple of an
// input is evicted when the window overflows.
type WindowedMJoin struct {
	m *MJoin
	w Window
	// fifo[i] holds the ids of input i's stored tuples in arrival order.
	fifo [][]tupleID
	// Evicted counts tuples dropped by window slide, per input.
	Evicted []uint64
}

// NewWindowedMJoin builds the operator. The window must be positive.
func NewWindowedMJoin(cfg Config, w Window) (*WindowedMJoin, error) {
	if w.Rows <= 0 {
		return nil, fmt.Errorf("exec: window size must be positive, got %d", w.Rows)
	}
	// Window purging replaces punctuation purging entirely.
	cfg.DisablePurge = true
	m, err := NewMJoin(cfg)
	if err != nil {
		return nil, err
	}
	return &WindowedMJoin{
		m:       m,
		w:       w,
		fifo:    make([][]tupleID, cfg.Query.N()),
		Evicted: make([]uint64, cfg.Query.N()),
	}, nil
}

// Push feeds one element. Tuples probe and enter the window (evicting the
// oldest tuple if full); punctuations are consumed but ignored — the
// window mechanism does not need them.
func (wj *WindowedMJoin) Push(input int, e stream.Element) ([]stream.Element, error) {
	if e.IsPunct() {
		// Count it, nothing else: windows do not use punctuations.
		if err := e.Punct().Validate(wj.m.q.Stream(input)); err != nil {
			return nil, err
		}
		wj.m.clock++
		wj.m.stats.PunctsIn[input]++
		return nil, nil
	}
	t := e.Tuple()
	if err := t.Validate(wj.m.q.Stream(input)); err != nil {
		return nil, err
	}
	wj.m.clock++
	wj.m.stats.TuplesIn[input]++
	results, err := wj.m.probe(input, t)
	if err != nil {
		return nil, err
	}
	wj.m.stats.Results += uint64(len(results))
	id := wj.m.states[input].insert(t)
	wj.fifo[input] = append(wj.fifo[input], id)
	if len(wj.fifo[input]) > wj.w.Rows {
		oldest := wj.fifo[input][0]
		wj.fifo[input] = wj.fifo[input][1:]
		wj.m.states[input].remove(oldest)
		wj.Evicted[input]++
	}
	wj.m.stats.StateSize[input] = wj.m.states[input].size()
	wj.m.stats.noteWatermarks()
	out := make([]stream.Element, 0, len(results))
	for _, r := range results {
		out = append(out, stream.TupleElement(r))
	}
	return out, nil
}

// Stats exposes the underlying operator counters (live; see MJoin.Stats
// for the aliasing caveat).
func (wj *WindowedMJoin) Stats() *Stats { return wj.m.stats }

// StatsSnapshot returns a deep-copied, detached copy of the counters.
func (wj *WindowedMJoin) StatsSnapshot() *Stats { return wj.m.StatsSnapshot() }

// OutputSchema is the concatenated result schema.
func (wj *WindowedMJoin) OutputSchema() *stream.Schema { return wj.m.OutputSchema() }
