package exec

import (
	"sort"

	"punctsafe/stream"
)

// punctEntry is one stored punctuation together with its §5.1 lifecycle
// metadata. For an ordered (watermark) scheme the entry is the compacted
// representative of every instantiation seen for its equality constants:
// only the widest bound needs keeping, since a <=T promise subsumes every
// <=T' with T' <= T.
type punctEntry struct {
	punct stream.Punctuation
	// consts are the constant values in punctuatable-attribute order
	// (the ordered slot, if any, holds the current bound).
	consts []stream.Value
	// arrived is the operator clock value when the punctuation arrived
	// (or was last widened).
	arrived uint64
	// expires is the clock value after which the punctuation no longer
	// holds (§5.1 lifespans, e.g. TCP sequence-number wraparound); zero
	// means it holds forever.
	expires uint64
	// emitted records whether the operator already propagated this
	// punctuation to its output (so tree plans do not emit duplicates).
	// Widening a watermark bound resets it: the wider promise is news.
	emitted bool
}

// punctStore holds the punctuations received on one operator input,
// organized per scheme and keyed by the constants assigned to the
// scheme's equality attributes, so the chained purge machinery can answer
// "is the punctuation P(v1..vm) present?" in one lookup. Watermark
// schemes compare the ordered slot against the stored bound instead.
type punctStore struct {
	schemes []stream.Scheme
	// ordSlot[k] is the position of schemes[k]'s ordered attribute within
	// its punctuatable-attribute order, or -1.
	ordSlot []int
	// entries[k] holds the stored instantiations of schemes[k], keyed by
	// the equality constants.
	entries []map[string]*punctEntry
	size    int
	// keyBuf is the reusable composite-key buffer: probes go through
	// m[string(keyBuf)], which the compiler compiles without a string
	// allocation, so the coverage checks inside purge chains cost no
	// allocations.
	keyBuf []byte
	// keysBuf is each()'s reusable sort buffer.
	keysBuf []string
}

func newPunctStore(schemes []stream.Scheme) *punctStore {
	ps := &punctStore{
		schemes: schemes,
		ordSlot: make([]int, len(schemes)),
		entries: make([]map[string]*punctEntry, len(schemes)),
	}
	for i, s := range schemes {
		ps.entries[i] = make(map[string]*punctEntry)
		ps.ordSlot[i] = -1
		oi := s.OrderedIndex()
		for slot, a := range s.PunctuatableIndexes() {
			if a == oi {
				ps.ordSlot[i] = slot
			}
		}
	}
	return ps
}

// appendEqKey drops the ordered slot (if any) from the constant list and
// appends the key encoding of the rest to dst.
func (ps *punctStore) appendEqKey(dst []byte, schemeIdx int, consts []stream.Value) []byte {
	slot := ps.ordSlot[schemeIdx]
	for i, v := range consts {
		if i == slot {
			continue
		}
		dst = stream.AppendKey(dst, v)
	}
	return dst
}

// eqKeyBuf encodes the equality key into the store's reusable buffer.
// The result is valid until the next eqKeyBuf call.
func (ps *punctStore) eqKeyBuf(schemeIdx int, consts []stream.Value) []byte {
	ps.keyBuf = ps.appendEqKey(ps.keyBuf[:0], schemeIdx, consts)
	return ps.keyBuf
}

// schemeIndex returns the index of the scheme the punctuation
// instantiates, or -1 when it matches none (the punctuation is then
// irrelevant to this operator and is dropped).
func (ps *punctStore) schemeIndex(p stream.Punctuation) int {
	for i, s := range ps.schemes {
		if s.Instantiates(p) {
			return i
		}
	}
	return -1
}

// indexOfScheme returns the store's index for a registered scheme value.
func (ps *punctStore) indexOfScheme(s stream.Scheme) int {
	for i, have := range ps.schemes {
		if have.Equal(s) {
			return i
		}
	}
	return -1
}

// lookup returns the live entry for the scheme with the given constants'
// equality part, or nil.
func (ps *punctStore) lookup(schemeIdx int, consts []stream.Value, now uint64) *punctEntry {
	e, ok := ps.entries[schemeIdx][string(ps.eqKeyBuf(schemeIdx, consts))]
	if !ok || e.expired(now) {
		return nil
	}
	return e
}

// add stores a punctuation. It returns the entry when the punctuation is
// new information (fresh entry, or a widened watermark bound), or nil
// when it instantiates no registered scheme or adds nothing.
func (ps *punctStore) add(p stream.Punctuation, now, lifespan uint64) *punctEntry {
	si := ps.schemeIndex(p)
	if si < 0 {
		return nil
	}
	consts := constsOf(p)
	slot := ps.ordSlot[si]
	if old, ok := ps.entries[si][string(ps.eqKeyBuf(si, consts))]; ok && !old.expired(now) {
		if slot < 0 {
			return nil // exact duplicate
		}
		// Watermark: keep only the widest bound.
		le, cmp := stream.LessEq(consts[slot], old.consts[slot])
		if cmp && le {
			return nil // not wider than what we hold
		}
		old.punct = p
		old.consts = consts
		old.arrived = now
		if lifespan > 0 {
			old.expires = now + lifespan
		}
		old.emitted = false
		return old
	} else if ok {
		ps.size-- // replace an expired entry
	}
	e := &punctEntry{punct: p, consts: consts, arrived: now}
	if lifespan > 0 {
		e.expires = now + lifespan
	}
	ps.entries[si][string(ps.eqKeyBuf(si, consts))] = e
	ps.size++
	return e
}

func (e *punctEntry) expired(now uint64) bool {
	return e.expires != 0 && now > e.expires
}

// covered reports whether a live stored punctuation guarantees the given
// constants: for equality slots an exact match, for the ordered slot a
// stored bound at or above the value.
func (ps *punctStore) covered(schemeIdx int, consts []stream.Value, now uint64) bool {
	e := ps.lookup(schemeIdx, consts, now)
	if e == nil {
		return false
	}
	slot := ps.ordSlot[schemeIdx]
	if slot < 0 {
		return true
	}
	le, ok := stream.LessEq(consts[slot], e.consts[slot])
	return ok && le
}

// coveredSimple reports whether a live stored punctuation constrains
// exactly the single attribute attr so as to forbid the value v — the
// guarantee "no future tuple carries v at attr" needed by plain
// purge-chain steps.
func (ps *punctStore) coveredSimple(attr int, v stream.Value, now uint64) bool {
	for si, s := range ps.schemes {
		idx := s.PunctuatableIndexes()
		if len(idx) != 1 || idx[0] != attr {
			continue
		}
		if ps.covered(si, []stream.Value{v}, now) {
			return true
		}
	}
	return false
}

// remove deletes the stored entry matching the constants' equality part;
// it reports whether an entry was removed.
func (ps *punctStore) remove(schemeIdx int, consts []stream.Value) bool {
	key := ps.eqKeyBuf(schemeIdx, consts)
	if _, ok := ps.entries[schemeIdx][string(key)]; !ok {
		return false
	}
	delete(ps.entries[schemeIdx], string(key))
	ps.size--
	return true
}

// expire removes entries whose lifespan has elapsed and returns the count.
func (ps *punctStore) expire(now uint64) int {
	removed := 0
	for _, m := range ps.entries {
		for k, e := range m {
			if e.expired(now) {
				delete(m, k)
				removed++
			}
		}
	}
	ps.size -= removed
	return removed
}

// each visits every live entry until fn returns false. Entries are
// visited per scheme in sorted key order (not Go map order) so sweep-time
// punctuation emission is deterministic across runs.
func (ps *punctStore) each(now uint64, fn func(schemeIdx int, e *punctEntry) bool) {
	for si, m := range ps.entries {
		keys := ps.keysBuf[:0]
		for k := range m {
			keys = append(keys, k)
		}
		ps.keysBuf = keys
		sort.Strings(keys)
		for _, k := range keys {
			e, ok := m[k]
			if !ok || e.expired(now) {
				continue
			}
			if !fn(si, e) {
				return
			}
		}
	}
}

// constsOf extracts the constant values of a punctuation in ascending
// attribute order (bounds included).
func constsOf(p stream.Punctuation) []stream.Value {
	var out []stream.Value
	for _, pat := range p.Patterns {
		if !pat.IsWildcard() {
			out = append(out, pat.Value())
		}
	}
	return out
}
