package exec

import (
	"fmt"

	"punctsafe/stream"
)

// AggKind selects the aggregate a GroupBy computes.
type AggKind uint8

const (
	// AggCount counts tuples per group.
	AggCount AggKind = iota
	// AggSum sums a numeric attribute per group.
	AggSum
	// AggMin keeps the minimum of a numeric attribute per group.
	AggMin
	// AggMax keeps the maximum of a numeric attribute per group.
	AggMax
)

// GroupBy is the blocking operator of the paper's motivation (§1): it
// groups its input by one attribute and emits one aggregate tuple per
// group — but only once a punctuation certifies the group is complete.
// Without punctuations it would block forever on an unbounded stream;
// with them it streams out finished groups and frees their state
// (Example 1: "the groupby operator can now output the result for this
// item").
type GroupBy struct {
	in       *stream.Schema
	groupAt  int
	aggAt    int
	kind     AggKind
	out      *stream.Schema
	groups   map[stream.ValueKey]*groupAcc
	emitted  uint64
	maxState int
}

type groupAcc struct {
	key   stream.Value
	count int64
	sum   float64
	min   float64
	max   float64
}

// NewGroupBy builds a group-by over input schema in, grouping on
// attribute groupAttr and aggregating aggAttr (ignored for AggCount).
func NewGroupBy(in *stream.Schema, groupAttr string, kind AggKind, aggAttr string) (*GroupBy, error) {
	g := &GroupBy{in: in, kind: kind, groups: make(map[stream.ValueKey]*groupAcc)}
	g.groupAt = in.Index(groupAttr)
	if g.groupAt < 0 {
		return nil, fmt.Errorf("exec: groupby attribute %q not in %s", groupAttr, in)
	}
	aggName := "count"
	aggKind := stream.KindInt
	if kind != AggCount {
		g.aggAt = in.Index(aggAttr)
		if g.aggAt < 0 {
			return nil, fmt.Errorf("exec: aggregate attribute %q not in %s", aggAttr, in)
		}
		switch in.Attr(g.aggAt).Kind {
		case stream.KindInt, stream.KindFloat:
		default:
			return nil, fmt.Errorf("exec: aggregate attribute %q must be numeric", aggAttr)
		}
		switch kind {
		case AggSum:
			aggName = "sum_" + aggAttr
		case AggMin:
			aggName = "min_" + aggAttr
		case AggMax:
			aggName = "max_" + aggAttr
		}
		aggKind = stream.KindFloat
	}
	var err error
	g.out, err = stream.NewSchema("groupby("+in.Name()+")",
		stream.Attribute{Name: groupAttr, Kind: in.Attr(g.groupAt).Kind},
		stream.Attribute{Name: aggName, Kind: aggKind})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// OutputSchema is (groupAttr, aggregate).
func (g *GroupBy) OutputSchema() *stream.Schema { return g.out }

// GroupsHeld returns the number of open (not yet emitted) groups.
func (g *GroupBy) GroupsHeld() int { return len(g.groups) }

// MaxGroupsHeld returns the high-water mark of open groups.
func (g *GroupBy) MaxGroupsHeld() int { return g.maxState }

// Emitted returns the number of finished groups output so far.
func (g *GroupBy) Emitted() uint64 { return g.emitted }

// Push consumes one element. Tuples accumulate into their group; a
// punctuation that constrains exactly the grouping attribute closes the
// matching group, emits its aggregate and frees its state. Other
// punctuations pass through unused.
func (g *GroupBy) Push(e stream.Element) ([]stream.Element, error) {
	if !e.IsPunct() {
		t := e.Tuple()
		if err := t.Validate(g.in); err != nil {
			return nil, err
		}
		g.accumulate(t)
		if len(g.groups) > g.maxState {
			g.maxState = len(g.groups)
		}
		return nil, nil
	}
	p := e.Punct()
	if err := p.Validate(g.in); err != nil {
		return nil, err
	}
	consts := p.ConstIndexes()
	if len(consts) != 1 || consts[0] != g.groupAt {
		return nil, nil // not a group-closing punctuation
	}
	key := p.Patterns[g.groupAt].Value()
	acc, ok := g.groups[key.Key()]
	if !ok {
		return nil, nil // empty group: nothing to emit
	}
	delete(g.groups, key.Key())
	g.emitted++
	return []stream.Element{stream.TupleElement(g.result(acc))}, nil
}

func (g *GroupBy) accumulate(t stream.Tuple) {
	key := t.Values[g.groupAt]
	acc, ok := g.groups[key.Key()]
	if !ok {
		acc = &groupAcc{key: key}
		g.groups[key.Key()] = acc
	}
	acc.count++
	if g.kind == AggCount {
		return
	}
	v := numeric(t.Values[g.aggAt])
	acc.sum += v
	if acc.count == 1 || v < acc.min {
		acc.min = v
	}
	if acc.count == 1 || v > acc.max {
		acc.max = v
	}
}

func (g *GroupBy) result(acc *groupAcc) stream.Tuple {
	switch g.kind {
	case AggCount:
		return stream.NewTuple(acc.key, stream.Int(acc.count))
	case AggSum:
		return stream.NewTuple(acc.key, stream.Float(acc.sum))
	case AggMin:
		return stream.NewTuple(acc.key, stream.Float(acc.min))
	default:
		return stream.NewTuple(acc.key, stream.Float(acc.max))
	}
}

func numeric(v stream.Value) float64 {
	if v.Kind() == stream.KindInt {
		return float64(v.AsInt())
	}
	return v.AsFloat()
}
