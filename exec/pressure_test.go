package exec

import (
	"errors"
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

// lazyAuctionFeed drives the punctuated auction workload through a fully
// lazy operator (the batch threshold is never crossed), so stored state
// grows until something forces a purge round.
func lazyAuctionFeed(t *testing.T, cfg Config) (*MJoin, error) {
	t.Helper()
	cfg.Query = workload.AuctionQuery()
	cfg.Schemes = workload.AuctionSchemes()
	cfg.PurgeBatch = 1 << 20
	m, err := NewMJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 500, MaxBidsPerItem: 5, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 2,
	})
	feed, _ := workload.NewFeed(cfg.Query, inputs)
	return m, feed.Each(func(i int, e stream.Element) error {
		_, err := m.Push(i, e)
		return err
	})
}

// TestSoftStateLimitRelievesPressure: with purging fully lazy, the hard
// StateLimit alone kills the punctuated feed; adding a soft watermark
// below it forces eager purge rounds that keep the query alive, and each
// crossing is reported exactly once.
func TestSoftStateLimitRelievesPressure(t *testing.T) {
	// Baseline: the lazy operator hoards state past the hard limit.
	if _, err := lazyAuctionFeed(t, Config{StateLimit: 100}); !errors.Is(err, ErrStateLimit) {
		t.Fatalf("lazy feed without a soft watermark must trip ErrStateLimit, got %v", err)
	}

	// Soft watermark: forced rounds purge the punctuated state in time.
	var events []PressureEvent
	m, err := lazyAuctionFeed(t, Config{
		StateLimit:     100,
		SoftStateLimit: 60,
		OnPressure:     func(e PressureEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatalf("soft watermark must keep the feed under the hard limit: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no pressure events fired")
	}
	if got := m.Stats().PressureEvents; got != uint64(len(events)) {
		t.Fatalf("PressureEvents stat = %d, callbacks = %d", got, len(events))
	}
	for _, e := range events {
		if e.State < 60 {
			t.Fatalf("event fired below the watermark: %+v", e)
		}
		if e.Relieved >= e.State {
			t.Fatalf("forced purge round removed nothing: %+v", e)
		}
		if e.SoftLimit != 60 || e.HardLimit != 100 {
			t.Fatalf("event limits wrong: %+v", e)
		}
	}
}

// TestSoftStateLimitHysteresis: a sustained excursion above the watermark
// fires one event, not one per element — the flag re-arms only after
// state falls back below the soft limit.
func TestSoftStateLimitHysteresis(t *testing.T) {
	q := workload.AuctionQuery()
	m, err := NewMJoin(Config{
		Query:          q,
		Schemes:        stream.NewSchemeSet(), // no schemes: nothing is purgeable
		SoftStateLimit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := m.Push(0, stream.TupleElement(stream.NewTuple(
			stream.Int(int64(i)), stream.Int(int64(i)), stream.Str("x"), stream.Float(1)))); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Stats().PressureEvents; got != 1 {
		t.Fatalf("sustained pressure fired %d events, want 1", got)
	}
}
