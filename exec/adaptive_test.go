package exec

import (
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

func TestAdaptiveConfigValidation(t *testing.T) {
	q := binaryQuery(t)
	cases := []AdaptivePolicy{
		{HighWater: 10, LowWater: 2, LazyBatch: 1},  // batch too small
		{HighWater: 2, LowWater: 10, LazyBatch: 8},  // inverted watermarks
		{HighWater: 10, LowWater: -1, LazyBatch: 8}, // negative low
	}
	for _, p := range cases {
		if _, err := NewAdaptiveMJoin(Config{Query: q, Schemes: bothSideSchemes()}, p); err == nil {
			t.Errorf("policy %+v must be rejected", p)
		}
	}
}

// TestAdaptiveSwitches: the policy flips to eager when the watermark is
// crossed and flushes the backlog, then relaxes once state sinks.
func TestAdaptiveSwitches(t *testing.T) {
	q := binaryQuery(t)
	a, err := NewAdaptiveMJoin(
		Config{Query: q, Schemes: bothSideSchemes()},
		AdaptivePolicy{HighWater: 10, LowWater: 3, LazyBatch: 1 << 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	push := func(input int, e stream.Element) {
		if _, err := a.Push(input, e); err != nil {
			t.Fatal(err)
		}
	}
	// Fill state past the high watermark with the huge lazy batch
	// deferring all purge work. First 9 tuples: lazy, state grows.
	for i := int64(0); i < 9; i++ {
		push(0, stream.TupleElement(tup(i, i)))
		push(1, stream.PunctElement(punct(i, -1)))
	}
	if a.Eager() {
		t.Fatalf("still below the high watermark (state=%d), must be lazy", a.Stats().TotalState())
	}
	if got := a.Stats().TotalState(); got != 9 {
		t.Fatalf("lazy mode must defer purging, state=%d want 9", got)
	}
	// The 10th tuple crosses the watermark: the operator flips to eager
	// and flushes the backlog inside that Push.
	push(0, stream.TupleElement(tup(9, 9)))
	if !a.Eager() {
		t.Fatal("must have switched to eager at the high watermark")
	}
	if got := a.Stats().TotalState(); got != 1 {
		t.Fatalf("switch must flush the 9 punctuated tuples, state=%d want 1 (tuple 9)", got)
	}
	// The matching punctuation purges tuple 9 eagerly; the resulting
	// empty state sits below the low watermark, so the next Push relaxes
	// back to lazy.
	push(1, stream.PunctElement(punct(9, -1)))
	push(0, stream.TupleElement(tup(10, 10)))
	if a.Eager() {
		t.Fatal("must have relaxed below the low watermark")
	}
	if a.Switches != 2 {
		t.Fatalf("expected exactly 2 policy switches, got %d", a.Switches)
	}
}

// TestAdaptiveBoundsStateLikeEager: on the auction workload the adaptive
// operator keeps max state within the policy band while spending fewer
// purge rounds than always-eager.
func TestAdaptiveBoundsStateLikeEager(t *testing.T) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 3000, MaxBidsPerItem: 6, OpenWindow: 8,
		PunctuateItems: true, PunctuateClose: true, Seed: 21,
	})
	feed, err := workload.NewFeed(q, inputs)
	if err != nil {
		t.Fatal(err)
	}

	a, err := NewAdaptiveMJoin(Config{Query: q, Schemes: schemes},
		AdaptivePolicy{HighWater: 64, LowWater: 16, LazyBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	adaptiveResults := 0
	if err := feed.Each(func(i int, e stream.Element) error {
		outs, err := a.Push(i, e)
		adaptiveResults += countTuples(outs)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	a.Flush()

	eager, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	feed2, _ := workload.NewFeed(q, inputs)
	eagerResults := 0
	if err := feed2.Each(func(i int, e stream.Element) error {
		outs, err := eager.Push(i, e)
		eagerResults += countTuples(outs)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	if adaptiveResults != eagerResults {
		t.Fatalf("results adaptive=%d eager=%d", adaptiveResults, eagerResults)
	}
	// Max state stays within a small slack of the high watermark (state
	// can overshoot by the elements arriving within one batch window).
	if a.Stats().MaxStateSize > 64+256 {
		t.Fatalf("adaptive max state %d exceeded the policy band", a.Stats().MaxStateSize)
	}
	if a.Stats().TotalState() != 0 {
		t.Fatalf("adaptive end state = %d", a.Stats().TotalState())
	}
}
