package exec

import (
	"testing"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

func TestSelectPassesPunctuations(t *testing.T) {
	in := mustSchema("S", "K", "V")
	filter, err := AttrEquals(in, "V", stream.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelect(in, filter)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sel.Push(stream.TupleElement(tup(7, 1)))
	if err != nil || len(out) != 1 {
		t.Fatalf("matching tuple must pass: %v %v", out, err)
	}
	out, err = sel.Push(stream.TupleElement(tup(7, 2)))
	if err != nil || len(out) != 0 {
		t.Fatalf("non-matching tuple must drop: %v %v", out, err)
	}
	// Punctuations always pass, even ones the filter would reject.
	out, err = sel.Push(stream.PunctElement(punct(7, -1)))
	if err != nil || len(out) != 1 || !out[0].IsPunct() {
		t.Fatalf("punctuation must pass: %v %v", out, err)
	}
	if sel.Passed != 1 || sel.Dropped != 1 {
		t.Fatalf("counters: passed=%d dropped=%d", sel.Passed, sel.Dropped)
	}
	if _, err := NewSelect(in, nil); err == nil {
		t.Fatal("nil filter must be rejected")
	}
	if _, err := AttrEquals(in, "nope", stream.Int(0)); err == nil {
		t.Fatal("unknown attribute must be rejected")
	}
}

func TestProjectTuplesAndPunctuations(t *testing.T) {
	in := mustSchema("S", "A", "B", "C")
	p, err := NewProject(in, "C", "A")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.OutputSchema().String(); got != "project(S)(C:int, A:int)" {
		t.Fatalf("output schema = %s", got)
	}
	out, err := p.Push(stream.TupleElement(tup(1, 2, 3)))
	if err != nil || len(out) != 1 {
		t.Fatal(out, err)
	}
	r := out[0].Tuple()
	if r.Values[0].AsInt() != 3 || r.Values[1].AsInt() != 1 {
		t.Fatalf("projected tuple = %s", r)
	}
	// Punctuation on kept attribute A: survives, remapped to position 1.
	out, err = p.Push(stream.PunctElement(punct(5, -1, -1)))
	if err != nil || len(out) != 1 {
		t.Fatal(out, err)
	}
	pp := out[0].Punct()
	if !pp.Patterns[0].IsWildcard() || pp.Patterns[1].Value().AsInt() != 5 {
		t.Fatalf("projected punctuation = %s", pp)
	}
	// Punctuation constraining dropped attribute B: absorbed.
	out, err = p.Push(stream.PunctElement(punct(-1, 9, -1)))
	if err != nil || len(out) != 0 {
		t.Fatalf("punctuation on dropped attribute must be absorbed: %v", out)
	}
	// Mixed: one kept, one dropped constant -> absorbed (the promise is
	// not expressible on the output schema).
	out, err = p.Push(stream.PunctElement(punct(5, 9, -1)))
	if err != nil || len(out) != 0 {
		t.Fatalf("partially-expressible punctuation must be absorbed: %v", out)
	}
	if p.Absorbed != 2 {
		t.Fatalf("absorbed = %d", p.Absorbed)
	}
	if _, err := NewProject(in); err == nil {
		t.Fatal("empty projection must be rejected")
	}
	if _, err := NewProject(in, "Z"); err == nil {
		t.Fatal("unknown attribute must be rejected")
	}
}

// TestProjectSchemes: the compile-time scheme mapping matches the runtime
// punctuation rule, so a projected stream can feed a safety-checked join.
func TestProjectSchemes(t *testing.T) {
	in := mustSchema("S", "A", "B", "C")
	p, err := NewProject(in, "C", "A")
	if err != nil {
		t.Fatal(err)
	}
	schemes := []stream.Scheme{
		stream.MustScheme("S", true, false, false), // on A -> survives at pos 1
		stream.MustScheme("S", false, true, false), // on B -> dropped
		stream.MustScheme("S", true, false, true),  // on A,C -> survives at pos 0,1
	}
	out := ProjectSchemes(p, schemes)
	if len(out) != 2 {
		t.Fatalf("surviving schemes = %d, want 2", len(out))
	}
	if out[0].String() != "project(S)(_, +)" {
		t.Errorf("scheme 0 = %s", out[0])
	}
	if out[1].String() != "project(S)(+, +)" {
		t.Errorf("scheme 1 = %s", out[1])
	}
}

// TestSelectProjectJoinPipeline runs the full relational pipeline the
// future-work item sketches: Select -> Project -> Join, with punctuations
// flowing through the stateless operators and still purging the join.
func TestSelectProjectJoinPipeline(t *testing.T) {
	// Raw stream: events(K, V, tag); keep tag==1 events, project (K, V),
	// join with ref(K, W) on K.
	events := mustSchema("events", "K", "V", "tag")
	filter, err := AttrEquals(events, "tag", stream.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelect(events, filter)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProject(events, "K", "V")
	if err != nil {
		t.Fatal(err)
	}

	ref := mustSchema("ref", "K", "W")
	q, err := query.NewBuilder().
		AddStream(proj.OutputSchema()).
		AddStream(ref).
		Join(proj.OutputSchema().Name()+".K", "ref.K").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Schemes: events punctuates K; ref punctuates K. The events scheme
	// maps through the projection.
	eventSchemes := []stream.Scheme{stream.MustScheme("events", true, false, false)}
	schemes := stream.NewSchemeSet(stream.MustScheme("ref", true, false))
	for _, s := range ProjectSchemes(proj, eventSchemes) {
		schemes.Add(s)
	}
	rep, err := safety.Check(q, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("pipeline join should be safe:\n%s", rep.Explain(q))
	}
	m, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}

	feedEvent := func(e stream.Element) int {
		outs, err := sel.Push(e)
		if err != nil {
			t.Fatal(err)
		}
		results := 0
		for _, o := range outs {
			po, err := proj.Push(o)
			if err != nil {
				t.Fatal(err)
			}
			for _, pe := range po {
				jo, err := m.Push(0, pe)
				if err != nil {
					t.Fatal(err)
				}
				results += countTuples(jo)
			}
		}
		return results
	}

	if _, err := m.Push(1, stream.TupleElement(tup(7, 700))); err != nil {
		t.Fatal(err)
	}
	if got := feedEvent(stream.TupleElement(tup(7, 1, 1))); got != 1 {
		t.Fatalf("selected event should join, got %d", got)
	}
	if got := feedEvent(stream.TupleElement(tup(7, 2, 0))); got != 0 {
		t.Fatal("filtered event must not join")
	}
	// Punctuation on events.K=7 flows through Select and Project and
	// purges the stored ref tuple.
	feedEvent(stream.PunctElement(punct(7, -1, -1)))
	if m.Stats().StateSize[1] != 0 {
		t.Fatalf("ref tuple should purge via the propagated punctuation, state=%v", m.Stats().StateSize)
	}
	// Ref punctuation purges the stored (projected) event tuple.
	if _, err := m.Push(1, stream.PunctElement(punct(7, -1))); err != nil {
		t.Fatal(err)
	}
	if m.Stats().StateSize[0] != 0 {
		t.Fatalf("event side should purge, state=%v", m.Stats().StateSize)
	}
}
