package exec

// FuzzColdSegment hardens the MJS2 snapshot decoder against arbitrary
// bytes, with the cold tier populated: the seed corpus is a real tiered
// snapshot (frozen segments, gap watermarks, punctuation stores) plus
// torn, bit-flipped, and garbage variants. The invariants are the
// snapshot contract of DecodeState/InstallState — never panic, reject
// with an error wrapping ErrCorruptState, and an accepted restore must
// leave the tree usable (a push and a flush still run).

import (
	"bytes"
	"errors"
	"testing"

	"punctsafe/internal/faultinject"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
)

// fuzzTieredTree builds the three-stream star tree with aggressive
// freezing so snapshots carry cold segments.
func fuzzTieredTree(tb testing.TB) *Tree {
	tb.Helper()
	q, err := query.NewBuilder().
		AddStream(mustSchema("S1", "A", "B")).
		AddStream(mustSchema("S2", "A", "C")).
		AddStream(mustSchema("S3", "A", "D")).
		Join("S1.A", "S2.A").
		Join("S2.A", "S3.A").
		Build()
	if err != nil {
		tb.Fatal(err)
	}
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	tr, err := NewTree(Config{Query: q, Schemes: starSchemes(), ColdAfter: 2}, root)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// fuzzTieredSnapshot drives enough of the star workload through a tiered
// tree for rows to freeze and one punctuation to be stored, then
// serializes the state.
func fuzzTieredSnapshot(tb testing.TB) []byte {
	tb.Helper()
	tr := fuzzTieredTree(tb)
	for k := int64(0); k < 12; k++ {
		for _, input := range []int{0, 1, 2} {
			if _, err := tr.Push(input, stream.TupleElement(tup(k%4, k))); err != nil {
				tb.Fatal(err)
			}
		}
	}
	// A stored (unemittable) punctuation: key 1 still has matches.
	if _, err := tr.Push(0, stream.PunctElement(punct(1, -1))); err != nil {
		tb.Fatal(err)
	}
	cold := 0
	for _, st := range tr.StatsSnapshot() {
		for _, c := range st.ColdSize {
			cold += c
		}
	}
	if cold == 0 {
		tb.Fatal("seed snapshot has no frozen rows; the fuzz corpus is vacuous")
	}
	var buf bytes.Buffer
	if err := tr.WriteState(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzColdSegment(f *testing.F) {
	blob := fuzzTieredSnapshot(f)
	f.Add(blob)
	f.Add(blob[:1])
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:len(blob)-3])
	f.Add(blob[:4])                       // magic only
	f.Add([]byte("MJS9............"))     // wrong version
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // uvarint soup
	for _, c := range faultinject.CorruptCopies(blob, 8, 7) {
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := fuzzTieredTree(t)
		st, err := tr.DecodeState(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptState) {
				t.Fatalf("DecodeState rejected with untyped error: %v", err)
			}
			return
		}
		if err := tr.InstallState(st); err != nil {
			if !errors.Is(err, ErrCorruptState) {
				t.Fatalf("InstallState rejected with untyped error: %v", err)
			}
			return
		}
		// An accepted restore must leave a usable tree: a probe into the
		// restored (possibly tiered) state and a flush both run clean.
		if _, err := tr.Push(0, stream.TupleElement(tup(1, 99))); err != nil {
			t.Fatalf("push after accepted restore: %v", err)
		}
		if _, err := tr.Flush(); err != nil {
			t.Fatalf("flush after accepted restore: %v", err)
		}
	})
}
