package exec

import (
	"fmt"
	"strings"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

// Config parameterizes an MJoin operator. The zero value of the optional
// knobs selects the paper's defaults: eager purging, punctuations kept
// forever, output punctuation propagation on.
type Config struct {
	// Query describes the operator's inputs and join predicates. A
	// 2-stream query yields the classic symmetric binary hash join; more
	// streams yield a generalized symmetric MJoin.
	Query *query.CJQ
	// Schemes is the punctuation scheme set ℜ visible to the operator.
	Schemes *stream.SchemeSet
	// PurgeBatch controls purge timing (§5.2 Plan Parameter II): 0 or 1
	// purges eagerly on every punctuation arrival; K>1 batches
	// punctuations and purges every K input elements.
	PurgeBatch int
	// PunctLifespan, when nonzero, expires stored punctuations after this
	// many input elements (§5.1 lifespans). Expired punctuations stop
	// contributing to purge decisions.
	PunctLifespan uint64
	// DisablePurge turns data purging off entirely; join states then grow
	// without bound. Used as the no-punctuation baseline in experiments.
	DisablePurge bool
	// PurgePunctuations enables §5.1 punctuation purging: a stored
	// punctuation is dropped once counter-punctuations on its non-*
	// attributes arrive from every join partner and no stored partner
	// tuples still need it.
	PurgePunctuations bool
	// DisableOutputPuncts turns off punctuation propagation to the
	// operator output (needed by upper operators of tree plans).
	DisableOutputPuncts bool
	// DynamicProbeOrder expands join results by always probing the
	// not-yet-bound input with the smallest candidate set next (the
	// greedy ordering of MJoin literature), instead of the static BFS
	// order. Identical results, often far less intermediate work on
	// skewed data.
	DynamicProbeOrder bool
	// StateLimit, when nonzero, makes Push fail once the total stored
	// tuple count would exceed it — the resource back-stop that keeps an
	// unsafe (or insufficiently punctuated) query from exhausting memory,
	// the failure mode the paper's compile-time check exists to prevent.
	StateLimit int
	// SoftStateLimit, when nonzero, is a pressure watermark (set it below
	// StateLimit): crossing it forces an eager purge round — pending lazy
	// punctuations are flushed and a full clean-up sweep runs — and fires
	// OnPressure, so the query degrades gracefully before the hard limit
	// trips. One event fires per excursion above the watermark.
	SoftStateLimit int
	// OnPressure, when set, observes SoftStateLimit crossings. It runs on
	// the goroutine driving the operator and must not call back into it.
	OnPressure func(PressureEvent)
	// ColdAfter, when nonzero, enables adaptive state tiering: every
	// ColdAfter input elements the operator runs a freeze generation,
	// compacting stored tuples that survived a full inter-freeze interval
	// into the immutable cold segment (coldtier.go). The hot columns stay
	// short — recent, churning state — while long-lived state is probed
	// through the cold segment's frozen sorted runs. A pressure excursion
	// (SoftStateLimit) additionally forces a full freeze, so state that
	// legitimately outlives punctuation horizons stops taxing the hot
	// tier. 0 disables tiering entirely (single-tier, the prior behavior).
	ColdAfter uint64
	// EnforcePromises makes Push fail when an input tuple matches a live
	// punctuation previously received on ITS OWN input — a violation of
	// the punctuation contract ("no future tuple will satisfy this
	// predicate"). Correctness of purging rests on that contract, so
	// surfacing violations loudly beats silently wrong results. Off by
	// default: §5.1 notes punctuations can be missed or malformed in
	// practice, and some applications prefer to tolerate them.
	EnforcePromises bool
}

// ErrPromiseViolated is returned (wrapped) when EnforcePromises catches a
// tuple arriving after a punctuation that forbids it.
var ErrPromiseViolated = fmt.Errorf("exec: punctuation promise violated")

// ErrStateLimit is returned (wrapped) when a configured StateLimit is
// exceeded.
var ErrStateLimit = fmt.Errorf("exec: join state limit exceeded")

// ErrMalformedElement is returned (wrapped) when an input element fails
// schema validation — wrong arity, wrong value kinds, or a punctuation
// whose patterns do not fit the stream. It marks element-level damage:
// rejecting the offender leaves the operator state untouched, so callers
// may drop or quarantine the element and continue.
var ErrMalformedElement = fmt.Errorf("exec: malformed element")

// ErrProbeDisconnected is returned when result expansion cannot reach an
// unbound input through any predicate to a bound one. It cannot occur for
// the connected queries the planner admits; it surfaces (instead of
// panicking) if an invariant is broken, so one poisoned operator fails
// its own query rather than the process.
var ErrProbeDisconnected = fmt.Errorf("exec: probe order disconnected")

// MJoin is a symmetric, non-blocking multi-way join operator with
// punctuation-driven state purging. It is single-threaded by design; the
// engine package provides the concurrent shell around operators.
type MJoin struct {
	q       *query.CJQ
	cfg     Config
	states  []*joinState
	puncts  []*punctStore
	plans   []*safety.PurgePlan
	stats   *Stats
	clock   uint64
	out     *stream.Schema
	colBase []int // output column offset per input
	// pending holds punctuations awaiting a lazy purge round.
	pending []pendingPunct
	// pressured latches while stored state sits above SoftStateLimit so a
	// sustained excursion triggers one forced purge, not one per element.
	pressured bool
	// probeOrders[i] is the BFS stream order used to expand results for a
	// tuple arriving on input i.
	probeOrders [][]int
	// stepScheme[i][k] caches the punct-store scheme index used by step k
	// of input i's purge plan.
	stepScheme [][]int
	// predsTouching[i] caches q.PredicatesTouching(i): the accessor
	// allocates a fresh slice per call, which the probe and purge hot
	// paths must not pay per element.
	predsTouching [][]query.Predicate
	// partners[i] caches the streams sharing a predicate with input i.
	partners [][]int
	// pr and pg hold the operator's reusable probe and purge scratch;
	// steady-state probing and purging allocate nothing beyond the result
	// tuples themselves.
	pr probeScratch
	pg purgeScratch
}

// probeScratch is the per-operator reusable state of result expansion.
// MJoin is single-threaded, so one set of buffers serves every Push.
type probeScratch struct {
	bound   []stream.Tuple
	isBound []bool
	results []stream.Tuple
	// candA/candB are per-depth double buffers for multi-predicate bucket
	// intersections (two, so an intersection never reads the buffer it is
	// writing). Intersections run per tier — cold ids and hot ids are
	// disjoint ranges, so tierwise intersection is exact — with coldA/
	// coldB as the cold-tier counterparts.
	candA [][]tupleID
	candB [][]tupleID
	coldA [][]tupleID
	coldB [][]tupleID
	// consts is the promise-check scratch.
	consts []stream.Value
}

type pendingPunct struct {
	input int
	p     stream.Punctuation
}

// NewMJoin builds the operator. The safety analysis runs once here: each
// input that is purgeable under the scheme set (Theorem 3) gets its
// chained purge plan; non-purgeable inputs are stored but never purged
// (exactly the failure mode the compile-time safety check exists to
// reject).
func NewMJoin(cfg Config) (*MJoin, error) {
	if cfg.Query == nil {
		return nil, fmt.Errorf("exec: Config.Query is nil")
	}
	if cfg.Schemes == nil {
		cfg.Schemes = stream.NewSchemeSet()
	}
	q := cfg.Query
	m := &MJoin{
		q:      q,
		cfg:    cfg,
		states: make([]*joinState, q.N()),
		puncts: make([]*punctStore, q.N()),
		plans:  make([]*safety.PurgePlan, q.N()),
		stats:  newStats(q.N()),
	}
	gpg := safety.BuildGPG(q, cfg.Schemes)
	for i := 0; i < q.N(); i++ {
		m.states[i] = newJoinState(q.JoinAttrs(i))
		m.puncts[i] = newPunctStore(cfg.Schemes.ForStream(q.Stream(i).Name()))
		m.plans[i] = gpg.PurgePlan(i)
	}
	m.stepScheme = make([][]int, q.N())
	for i, plan := range m.plans {
		if plan == nil {
			continue
		}
		idx := make([]int, len(plan.Steps))
		for k, st := range plan.Steps {
			idx[k] = m.puncts[st.Stream].indexOfScheme(st.Scheme)
			if idx[k] < 0 {
				return nil, fmt.Errorf("exec: purge plan for input %d uses unregistered scheme %s", i, st.Scheme)
			}
		}
		m.stepScheme[i] = idx
	}
	m.predsTouching = make([][]query.Predicate, q.N())
	m.partners = make([][]int, q.N())
	for i := 0; i < q.N(); i++ {
		m.predsTouching[i] = q.PredicatesTouching(i)
		m.partners[i] = partnerStreamsOf(m.predsTouching[i], i)
	}
	m.pr = probeScratch{
		bound:   make([]stream.Tuple, q.N()),
		isBound: make([]bool, q.N()),
		candA:   make([][]tupleID, q.N()),
		candB:   make([][]tupleID, q.N()),
		coldA:   make([][]tupleID, q.N()),
		coldB:   make([][]tupleID, q.N()),
	}
	m.initPurgeScratch()
	m.buildOutputSchema()
	m.buildProbeOrders()
	return m, nil
}

// partnerStreamsOf returns the distinct streams the predicate list links
// input to, in first-predicate order (matching the historical
// partnerStreams helper).
func partnerStreamsOf(preds []query.Predicate, input int) []int {
	var out []int
	for _, p := range preds {
		other, _, _ := p.Other(input)
		dup := false
		for _, o := range out {
			if o == other {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, other)
		}
	}
	return out
}

// Purgeable reports whether input i's join state is purgeable (Theorem 3).
func (m *MJoin) Purgeable(i int) bool { return m.plans[i] != nil }

// Stats returns the operator's counters (live; do not modify). The
// returned pointer aliases the operator's mutable state: reading it while
// another goroutine drives the operator is a data race. Cross-goroutine
// readers must use StatsSnapshot (or the engine Runtime's snapshot API).
func (m *MJoin) Stats() *Stats { return m.stats }

// StatsSnapshot returns a deep-copied, detached copy of the operator's
// counters. Call it from the goroutine driving the operator, or after the
// operator has quiesced.
func (m *MJoin) StatsSnapshot() *Stats { return m.stats.Snapshot() }

// OutputSchema is the schema of emitted result tuples: the concatenation
// of the input schemas, with columns named <stream>_<attr>.
func (m *MJoin) OutputSchema() *stream.Schema { return m.out }

// Query returns the operator's join query.
func (m *MJoin) Query() *query.CJQ { return m.q }

func (m *MJoin) buildOutputSchema() {
	var attrs []stream.Attribute
	m.colBase = make([]int, m.q.N())
	var names []string
	for i := 0; i < m.q.N(); i++ {
		m.colBase[i] = len(attrs)
		sc := m.q.Stream(i)
		names = append(names, sc.Name())
		for j := 0; j < sc.Arity(); j++ {
			attrs = append(attrs, stream.Attribute{
				Name: sc.Name() + "_" + sc.Attr(j).Name,
				Kind: sc.Attr(j).Kind,
			})
		}
	}
	m.out = stream.MustSchema("join("+strings.Join(names, ",")+")", attrs...)
}

// buildProbeOrders computes, per arrival input, a BFS order of the other
// inputs over the join graph so each expansion step joins a stream
// already connected to the bound set.
func (m *MJoin) buildProbeOrders() {
	jg := m.q.JoinGraph()
	m.probeOrders = make([][]int, m.q.N())
	for i := 0; i < m.q.N(); i++ {
		var order []int
		seen := make([]bool, m.q.N())
		seen[i] = true
		queue := []int{i}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range jg.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					order = append(order, v)
					queue = append(queue, v)
				}
			}
		}
		m.probeOrders[i] = order
	}
}

// Push feeds one element into the given input and returns the emitted
// output elements (result tuples first, then any output punctuations).
func (m *MJoin) Push(input int, e stream.Element) ([]stream.Element, error) {
	return m.pushInto(nil, input, e)
}

// PushBatch feeds a run of elements into one input, exactly as if Push
// were called per element with the outputs concatenated. It returns the
// concatenated outputs, the number of elements fully processed, and the
// first error. On error the outputs of the preceding elements are kept
// (the offender is elems[n]); callers with element-level error policies
// can record the offender and resume with elems[n+1:]. Batching exists to
// amortize per-call overhead — notably the output buffer, which grows
// once per batch instead of once per element.
func (m *MJoin) PushBatch(input int, elems []stream.Element) (out []stream.Element, n int, err error) {
	for i := range elems {
		out, err = m.pushInto(out, input, elems[i])
		if err != nil {
			return out, i, err
		}
	}
	return out, len(elems), nil
}

// pushInto is the shared Push/PushBatch body: it appends the element's
// outputs to out and returns the extended slice. On error, out is
// returned truncated to its length at entry (an element that fails emits
// nothing).
func (m *MJoin) pushInto(out []stream.Element, input int, e stream.Element) ([]stream.Element, error) {
	if input < 0 || input >= m.q.N() {
		return out, fmt.Errorf("exec: input %d out of range [0,%d)", input, m.q.N())
	}
	mark := len(out)
	m.clock++
	var err error
	if e.IsPunct() {
		out, err = m.pushPunct(out, input, e.Punct())
	} else {
		out, err = m.pushTuple(out, input, e.Tuple())
	}
	if err != nil {
		return out[:mark], err
	}
	if m.cfg.PunctLifespan > 0 && m.clock%256 == 0 {
		for i, ps := range m.puncts {
			n := ps.expire(m.clock)
			m.stats.PunctsPurged[i] += uint64(n)
			m.stats.PunctStoreSize[i] = ps.size
		}
	}
	// Lazy purge round when the batch threshold is crossed.
	if len(m.pending) > 0 && m.cfg.PurgeBatch > 1 && m.clock%uint64(m.cfg.PurgeBatch) == 0 {
		out = m.flushPendingInto(out)
	}
	if m.cfg.ColdAfter > 0 && m.clock%m.cfg.ColdAfter == 0 {
		m.freezeStates()
	}
	if m.cfg.SoftStateLimit > 0 {
		out = m.relievePressure(out)
	}
	m.stats.noteWatermarks()
	return out, nil
}

// freezeStates runs one freeze generation over every input's state (see
// Config.ColdAfter). Freezing is purely an internal re-tiering: it emits
// nothing and changes no live-tuple set, so running it on the element
// clock keeps crash-equivalence exact — a restored run freezes at the
// same points the uninterrupted run did.
func (m *MJoin) freezeStates() {
	froze := false
	for i, st := range m.states {
		if st.advanceFreeze() > 0 {
			froze = true
		}
		m.stats.ColdSize[i] = st.coldSize()
	}
	if froze {
		m.stats.Freezes++
	}
}

func (m *MJoin) pushTuple(out []stream.Element, input int, t stream.Tuple) ([]stream.Element, error) {
	if err := t.Validate(m.q.Stream(input)); err != nil {
		return out, fmt.Errorf("%w: input %d: %v", ErrMalformedElement, input, err)
	}
	if m.cfg.EnforcePromises {
		if p, violated := m.violatedPromise(input, t); violated {
			return out, fmt.Errorf("%w: stream %s tuple %s matches its own punctuation %s",
				ErrPromiseViolated, m.q.Stream(input).Name(), t, p)
		}
	}
	m.stats.TuplesIn[input]++
	results, err := m.probe(input, t)
	if err != nil {
		return out, err
	}
	m.stats.Results += uint64(len(results))
	// Drop-at-insertion (eager mode): a tuple already covered by stored
	// punctuations can never join future inputs — after emitting its
	// results against the stored states, it need not be stored at all.
	// Lazy mode defers this to the next batched purge round, which finds
	// the tuple through its state lookups.
	stored := true
	if !m.cfg.DisablePurge && m.cfg.PurgeBatch <= 1 && m.plans[input] != nil {
		m.stats.PurgeChecks++
		if m.purgeableTuple(input, t) {
			m.stats.TuplesPurged[input]++
			stored = false
		}
	}
	if stored {
		if m.cfg.StateLimit > 0 && m.stats.TotalState() >= m.cfg.StateLimit {
			return out, fmt.Errorf("%w: %d tuples stored, limit %d (query %s)",
				ErrStateLimit, m.stats.TotalState(), m.cfg.StateLimit, m.q)
		}
		m.states[input].insert(t)
		m.stats.StateSize[input] = m.states[input].size()
	}
	for _, r := range results {
		out = append(out, stream.TupleElement(r))
	}
	return out, nil
}

func (m *MJoin) pushPunct(out []stream.Element, input int, p stream.Punctuation) ([]stream.Element, error) {
	if err := p.Validate(m.q.Stream(input)); err != nil {
		return out, fmt.Errorf("%w: input %d: %v", ErrMalformedElement, input, err)
	}
	m.stats.PunctsIn[input]++
	entry := m.puncts[input].add(p, m.clock, m.cfg.PunctLifespan)
	m.stats.PunctStoreSize[input] = m.puncts[input].size
	if entry == nil {
		// Irrelevant (no registered scheme) or duplicate punctuation:
		// nothing further to do — this is the "identify the useful
		// punctuations" filtering of §1.
		return out, nil
	}
	if m.cfg.PurgeBatch <= 1 {
		m.pg.one = append(m.pg.one[:0], pendingPunct{input: input, p: p})
		out = m.purgeRound(out, m.pg.one)
	} else {
		m.pending = append(m.pending, pendingPunct{input: input, p: p})
	}
	// Output punctuation propagation for the freshly arrived punctuation.
	if !m.cfg.DisableOutputPuncts {
		if op, ok := m.tryEmitPunct(input, entry); ok {
			out = append(out, op)
		}
	}
	return out, nil
}

// flushPendingInto runs one purge round over the accumulated punctuations
// (the lazy strategy of §5.2), appending any emitted punctuations to out.
func (m *MJoin) flushPendingInto(out []stream.Element) []stream.Element {
	batch := m.pending
	m.pending = nil
	return m.purgeRound(out, batch)
}

// Flush forces a purge round over any pending punctuations (used at the
// end of a lazy-mode run).
func (m *MJoin) Flush() []stream.Element {
	if len(m.pending) == 0 {
		return nil
	}
	return m.flushPendingInto(nil)
}

// probe computes all join results involving the arriving tuple t on input
// `input` and the stored tuples of every other input, by expanding along
// the precomputed BFS order (or, with DynamicProbeOrder, the greedy
// smallest-candidate-set order). The returned slice is the operator's
// scratch result buffer: valid until the next probe, copied out by the
// caller element-wise.
func (m *MJoin) probe(input int, t stream.Tuple) ([]stream.Tuple, error) {
	pr := &m.pr
	pr.results = pr.results[:0]
	for i := range pr.isBound {
		pr.isBound[i] = false
	}
	pr.bound[input] = t
	pr.isBound[input] = true

	if m.cfg.DynamicProbeOrder {
		if err := m.probeDynamic(1); err != nil {
			return nil, err
		}
		return pr.results, nil
	}
	if err := m.expand(m.probeOrders[input], 0); err != nil {
		return nil, err
	}
	return pr.results, nil
}

// expand is the static-order expansion step: bind stream order[k] to each
// exact candidate, recurse, unbind. Candidates come from intersecting the
// index buckets of every predicate into the bound prefix, so no
// per-candidate predicate re-verification is needed (buckets are keyed by
// exact value, and all join predicates are equalities). Buckets are
// sorted by construction, so candidates are visited in tupleID (arrival)
// order and the emitted result sequence is identical run to run.
func (m *MJoin) expand(order []int, k int) error {
	pr := &m.pr
	if k == len(order) {
		pr.results = append(pr.results, m.concat(pr.bound))
		return nil
	}
	j := order[k]
	cand, err := m.candidateIDs(j, k)
	if err != nil {
		return err
	}
	st := m.states[j]
	// Cold run first, then hot: candidate ids ascend across the pair, so
	// results keep exact arrival order regardless of tiering.
	for _, run := range cand.runs() {
		for _, id := range run {
			u, ok := st.get(id)
			if !ok {
				continue
			}
			pr.bound[j] = u
			pr.isBound[j] = true
			if err := m.expand(order, k+1); err != nil {
				return err
			}
			pr.isBound[j] = false
		}
	}
	return nil
}

// candidateIDs returns the sorted ids of stream j's stored tuples that
// satisfy every predicate between j and the bound prefix: the
// intersection of the per-predicate index buckets (galloping, into the
// depth's scratch buffer). A single-predicate candidate set is the bucket
// itself, borrowed read-only from the state.
func (m *MJoin) candidateIDs(j, depth int) (tierBuckets, error) {
	pr := &m.pr
	var cand tierBuckets
	first := true
	flip := false
	for _, p := range m.predsTouching[j] {
		other, jAttr, otherAttr := p.Other(j)
		if !pr.isBound[other] {
			continue
		}
		tb := m.states[j].lookup2(jAttr, pr.bound[other].Values[otherAttr])
		if first {
			cand, first = tb, false
		} else {
			// Intersect tierwise — cold ids and hot ids occupy disjoint
			// ranges, so cold∩cold ++ hot∩hot is the exact intersection —
			// alternating the two depth buffers so an intersection never
			// writes the slice it reads.
			if flip {
				pr.candB[depth] = intersectSorted(pr.candB[depth], cand.hot, tb.hot)
				pr.coldB[depth] = intersectSorted(pr.coldB[depth], cand.cold, tb.cold)
				cand = tierBuckets{cold: pr.coldB[depth], hot: pr.candB[depth]}
			} else {
				pr.candA[depth] = intersectSorted(pr.candA[depth], cand.hot, tb.hot)
				pr.coldA[depth] = intersectSorted(pr.coldA[depth], cand.cold, tb.cold)
				cand = tierBuckets{cold: pr.coldA[depth], hot: pr.candA[depth]}
			}
			flip = !flip
		}
		if cand.empty() {
			return tierBuckets{}, nil
		}
	}
	if first {
		// Unreachable for connected queries expanded in a connectivity order.
		return tierBuckets{}, fmt.Errorf("%w: stream %d unreachable from bound set (query %s)", ErrProbeDisconnected, j, m.q)
	}
	return cand, nil
}

// probeDynamic expands the join by always choosing, among the unbound
// streams adjacent to the bound set, the one with the fewest candidates
// on its first bound predicate — pruning dead branches as early as
// possible. Remaining predicates are verified per candidate.
func (m *MJoin) probeDynamic(boundCount int) error {
	pr := &m.pr
	if boundCount == m.q.N() {
		pr.results = append(pr.results, m.concat(pr.bound))
		return nil
	}
	best := -1
	var bestBucket tierBuckets
	for j := 0; j < m.q.N(); j++ {
		if pr.isBound[j] {
			continue
		}
		adjacent := false
		var bucket tierBuckets
		for _, p := range m.predsTouching[j] {
			other, jAttr, otherAttr := p.Other(j)
			if !pr.isBound[other] {
				continue
			}
			if !adjacent {
				adjacent = true
				bucket = m.states[j].lookup2(jAttr, pr.bound[other].Values[otherAttr])
			}
		}
		if !adjacent {
			continue
		}
		if best < 0 || bucket.total() < bestBucket.total() {
			best, bestBucket = j, bucket
		}
		if bestBucket.empty() {
			return nil // some adjacent stream has no match: dead branch
		}
	}
	if best < 0 {
		return fmt.Errorf("%w: no unbound stream adjacent to bound set (query %s)", ErrProbeDisconnected, m.q)
	}
	st := m.states[best]
	for _, run := range bestBucket.runs() {
		for _, id := range run {
			u, ok := st.get(id)
			if !ok {
				continue
			}
			if !m.matchesBound(best, u) {
				continue
			}
			pr.bound[best] = u
			pr.isBound[best] = true
			if err := m.probeDynamic(boundCount + 1); err != nil {
				return err
			}
			pr.isBound[best] = false
		}
	}
	return nil
}

// matchesBound verifies every predicate between stream j's tuple u and
// the bound prefix.
func (m *MJoin) matchesBound(j int, u stream.Tuple) bool {
	pr := &m.pr
	for _, p := range m.predsTouching[j] {
		other, jAttr, otherAttr := p.Other(j)
		if !pr.isBound[other] {
			continue
		}
		if !u.Values[jAttr].Equal(pr.bound[other].Values[otherAttr]) {
			return false
		}
	}
	return true
}

func (m *MJoin) concat(bound []stream.Tuple) stream.Tuple {
	values := make([]stream.Value, 0, m.out.Arity())
	for i := range bound {
		values = append(values, bound[i].Values...)
	}
	return stream.NewTuple(values...)
}

// String summarizes the operator.
func (m *MJoin) String() string {
	return fmt.Sprintf("MJoin(%s)", m.q)
}
