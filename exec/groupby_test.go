package exec

import (
	"testing"

	"punctsafe/stream"
)

func gbSchema() *stream.Schema {
	return stream.MustSchema("sales",
		stream.Attribute{Name: "item", Kind: stream.KindInt},
		stream.Attribute{Name: "price", Kind: stream.KindFloat})
}

func gbPush(t *testing.T, g *GroupBy, e stream.Element) []stream.Element {
	t.Helper()
	out, err := g.Push(e)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func saleTuple(item int64, price float64) stream.Element {
	return stream.TupleElement(stream.NewTuple(stream.Int(item), stream.Float(price)))
}

func closeItem(item int64) stream.Element {
	return stream.PunctElement(stream.MustPunctuation(
		stream.Const(stream.Int(item)), stream.Wildcard()))
}

func TestGroupBySum(t *testing.T) {
	g, err := NewGroupBy(gbSchema(), "item", AggSum, "price")
	if err != nil {
		t.Fatal(err)
	}
	gbPush(t, g, saleTuple(1, 10))
	gbPush(t, g, saleTuple(1, 2.5))
	gbPush(t, g, saleTuple(2, 7))
	if out := gbPush(t, g, saleTuple(1, 0.5)); len(out) != 0 {
		t.Fatal("group must stay blocked until punctuated")
	}
	if g.GroupsHeld() != 2 {
		t.Fatalf("groups held = %d", g.GroupsHeld())
	}
	out := gbPush(t, g, closeItem(1))
	if len(out) != 1 {
		t.Fatalf("want 1 closed group, got %d", len(out))
	}
	r := out[0].Tuple()
	if r.Values[0].AsInt() != 1 || r.Values[1].AsFloat() != 13.0 {
		t.Fatalf("sum tuple = %s", r)
	}
	if g.GroupsHeld() != 1 || g.Emitted() != 1 {
		t.Fatalf("bookkeeping: held=%d emitted=%d", g.GroupsHeld(), g.Emitted())
	}
	// Closing an empty group emits nothing.
	if out := gbPush(t, g, closeItem(99)); len(out) != 0 {
		t.Fatal("empty group must not emit")
	}
	// Non-grouping punctuation passes through unused.
	other := stream.PunctElement(stream.MustPunctuation(
		stream.Wildcard(), stream.Const(stream.Float(7))))
	if out := gbPush(t, g, other); len(out) != 0 {
		t.Fatal("non-group punctuation must not close groups")
	}
}

func TestGroupByAggregates(t *testing.T) {
	for _, tc := range []struct {
		kind AggKind
		want float64
	}{
		{AggMin, 2.5},
		{AggMax, 10},
	} {
		g, err := NewGroupBy(gbSchema(), "item", tc.kind, "price")
		if err != nil {
			t.Fatal(err)
		}
		gbPush(t, g, saleTuple(1, 10))
		gbPush(t, g, saleTuple(1, 2.5))
		out := gbPush(t, g, closeItem(1))
		if len(out) != 1 || out[0].Tuple().Values[1].AsFloat() != tc.want {
			t.Fatalf("agg %d: got %v, want %v", tc.kind, out, tc.want)
		}
	}
	g, err := NewGroupBy(gbSchema(), "item", AggCount, "")
	if err != nil {
		t.Fatal(err)
	}
	gbPush(t, g, saleTuple(3, 1))
	gbPush(t, g, saleTuple(3, 1))
	gbPush(t, g, saleTuple(3, 1))
	out := gbPush(t, g, closeItem(3))
	if len(out) != 1 || out[0].Tuple().Values[1].AsInt() != 3 {
		t.Fatalf("count: %v", out)
	}
	if g.OutputSchema().Attr(1).Name != "count" {
		t.Fatalf("output schema %s", g.OutputSchema())
	}
}

func TestGroupByIntAggregate(t *testing.T) {
	s := stream.MustSchema("x",
		stream.Attribute{Name: "k", Kind: stream.KindInt},
		stream.Attribute{Name: "v", Kind: stream.KindInt})
	g, err := NewGroupBy(s, "k", AggSum, "v")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		gbPush(t, g, stream.TupleElement(stream.NewTuple(stream.Int(7), stream.Int(i))))
	}
	out := gbPush(t, g, stream.PunctElement(stream.MustPunctuation(
		stream.Const(stream.Int(7)), stream.Wildcard())))
	if len(out) != 1 || out[0].Tuple().Values[1].AsFloat() != 10 {
		t.Fatalf("int sum: %v", out)
	}
}

func TestGroupByErrors(t *testing.T) {
	s := gbSchema()
	if _, err := NewGroupBy(s, "nope", AggSum, "price"); err == nil {
		t.Error("unknown group attr must fail")
	}
	if _, err := NewGroupBy(s, "item", AggSum, "nope"); err == nil {
		t.Error("unknown agg attr must fail")
	}
	str := stream.MustSchema("s",
		stream.Attribute{Name: "k", Kind: stream.KindInt},
		stream.Attribute{Name: "v", Kind: stream.KindString})
	if _, err := NewGroupBy(str, "k", AggSum, "v"); err == nil {
		t.Error("string aggregate must fail")
	}
	g, err := NewGroupBy(s, "item", AggSum, "price")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Push(stream.TupleElement(stream.NewTuple(stream.Int(1)))); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := g.Push(stream.PunctElement(stream.MustPunctuation(stream.Const(stream.Int(1))))); err == nil {
		t.Error("punctuation arity mismatch must fail")
	}
}

func TestGroupByHighWater(t *testing.T) {
	g, err := NewGroupBy(gbSchema(), "item", AggCount, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		gbPush(t, g, saleTuple(i, 1))
	}
	for i := int64(0); i < 10; i++ {
		gbPush(t, g, closeItem(i))
	}
	if g.GroupsHeld() != 0 || g.MaxGroupsHeld() != 10 || g.Emitted() != 10 {
		t.Fatalf("held=%d max=%d emitted=%d", g.GroupsHeld(), g.MaxGroupsHeld(), g.Emitted())
	}
}
