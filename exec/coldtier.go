package exec

import (
	"sort"

	"punctsafe/stream"
)

// coldSegment is the frozen tier of a joinState: tuples whose ids fell
// below the freeze watermark, compacted out of the hot columns into an
// immutable-layout segment. "Immutable" refers to the rows, not the
// membership — punctuation purges still remove frozen tuples (tombstone
// + deferred recompaction, like the hot tier) — but nothing is ever
// inserted, so the segment carries no tombstones at freeze time, its id
// runs stay sorted for free, and the per-attribute buckets intersect
// directly with hot buckets under the same galloping probe.
//
// The tier invariant is held by the owning joinState: every cold id <
// frozenBound <= every hot id. That disjointness is what lets the probe
// intersect cold-with-cold and hot-with-hot independently and
// concatenate — the concatenation is still sorted.
type coldSegment struct {
	ids  []tupleID      // sorted ascending, all < owner's frozenBound
	tups []stream.Tuple // parallel to ids
	dead []bool         // parallel tombstones (purges after freezing)
	// index[attr][valueKey] = sorted live ids, mirroring the hot index.
	index map[int]map[stream.ValueKey][]tupleID
	nDead int
}

// newColdSegment mirrors the attribute set of the hot index.
func newColdSegment(hotIndex map[int]map[stream.ValueKey][]tupleID) *coldSegment {
	c := &coldSegment{index: make(map[int]map[stream.ValueKey][]tupleID, len(hotIndex))}
	for a := range hotIndex {
		c.index[a] = make(map[stream.ValueKey][]tupleID)
	}
	return c
}

// pos returns the row of id in the sorted id column, or -1. Segments are
// usually gap-free (a frozen arrival prefix, born tombstone-free), so the
// guess row id-ids[0] hits exactly and the probe's per-candidate id
// resolution is O(1); compaction after purges introduces gaps and falls
// back to binary search.
func (c *coldSegment) pos(id tupleID) int {
	n := len(c.ids)
	if n == 0 || id < c.ids[0] || id > c.ids[n-1] {
		return -1
	}
	if d := id - c.ids[0]; d < tupleID(n) && c.ids[d] == id {
		return int(d)
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && c.ids[lo] == id {
		return lo
	}
	return -1
}

// get returns the frozen tuple for id, if live. The gap-free guess (see
// pos) is duplicated here so the probe's per-candidate resolution stays
// a single inlinable branch on the common dense-segment path.
func (c *coldSegment) get(id tupleID) (stream.Tuple, bool) {
	if n := len(c.ids); n > 0 && id >= c.ids[0] {
		if d := id - c.ids[0]; d < tupleID(n) && c.ids[d] == id {
			if c.dead[d] {
				return stream.Tuple{}, false
			}
			return c.tups[d], true
		}
	}
	return c.getSlow(id)
}

func (c *coldSegment) getSlow(id tupleID) (stream.Tuple, bool) {
	p := c.pos(id)
	if p < 0 || c.dead[p] {
		return stream.Tuple{}, false
	}
	return c.tups[p], true
}

// remove tombstones a frozen tuple and unindexes it. Recompaction policy
// lives with the owning joinState (it knows about active walkers).
func (c *coldSegment) remove(id tupleID) bool {
	p := c.pos(id)
	if p < 0 || c.dead[p] {
		return false
	}
	t := c.tups[p]
	c.dead[p] = true
	c.tups[p] = stream.Tuple{}
	c.nDead++
	for a, idx := range c.index {
		k := t.Values[a].Key()
		if bucket := idx[k]; bucket != nil {
			if b := deleteSorted(bucket, id); len(b) == 0 {
				delete(idx, k)
			} else {
				idx[k] = b
			}
		}
	}
	return true
}

// compact rewrites the columns without tombstoned rows.
func (c *coldSegment) compact() {
	w := 0
	for r := range c.ids {
		if c.dead[r] {
			continue
		}
		c.ids[w] = c.ids[r]
		c.tups[w] = c.tups[r]
		c.dead[w] = false
		w++
	}
	clearTuples(c.tups[w:])
	c.ids = c.ids[:w]
	c.tups = c.tups[:w]
	c.dead = c.dead[:w]
	c.nDead = 0
}

// size returns the number of live frozen tuples.
func (c *coldSegment) size() int { return len(c.ids) - c.nDead }

// lookup returns the sorted live ids whose attribute attr equals key k.
func (c *coldSegment) lookup(attr int, k stream.ValueKey) []tupleID {
	idx := c.index[attr]
	if idx == nil {
		return nil
	}
	return idx[k]
}

// appendRow adds one frozen row. The caller guarantees ids arrive in
// ascending order and above every id already present, so columns and
// (via appendBucketRun) buckets stay sorted by construction.
func (c *coldSegment) appendRow(id tupleID, t stream.Tuple) {
	c.ids = append(c.ids, id)
	c.tups = append(c.tups, t)
	c.dead = append(c.dead, false)
}

// appendBucketRun extends the bucket for (attr, k) with a sorted run of
// ids, all above the bucket's current maximum.
func (c *coldSegment) appendBucketRun(attr int, k stream.ValueKey, run []tupleID) {
	idx := c.index[attr]
	if idx == nil {
		idx = make(map[stream.ValueKey][]tupleID)
		c.index[attr] = idx
	}
	idx[k] = append(idx[k], run...)
}

// tierBuckets is a two-tier candidate set: the cold and hot index
// buckets for one (attribute, value) pair. Ids in cold are all below
// ids in hot (the frozenBound invariant), so per-tier intersections
// concatenate into a single sorted candidate run. Returned by value —
// probing allocates nothing for the split.
type tierBuckets struct {
	cold, hot []tupleID
}

func (tb tierBuckets) empty() bool { return len(tb.cold) == 0 && len(tb.hot) == 0 }

func (tb tierBuckets) total() int { return len(tb.cold) + len(tb.hot) }

// runs returns the tiers as an iterable pair, cold first: walking runs
// in order visits candidate ids in ascending (arrival) order.
func (tb tierBuckets) runs() [2][]tupleID { return [2][]tupleID{tb.cold, tb.hot} }

// advanceFreeze runs one freeze generation: live hot rows older than the
// current watermark (id < freezeAt) move into the cold segment, then the
// watermark advances to nextID. Rows therefore spend at least one full
// inter-freeze interval in the hot tier before freezing. Freezing is
// skipped while a walker iterates (the walk would see moved rows twice
// or not at all); the next generation picks the rows up. Returns the
// number of rows frozen.
func (st *joinState) advanceFreeze() int {
	moved := st.freeze()
	st.freezeAt = st.nextID
	return moved
}

// freezeAll freezes every currently stored hot row regardless of age —
// the pressure-driven path: once purging has done what it can, whatever
// survives is long-lived by definition.
func (st *joinState) freezeAll() int {
	st.freezeAt = st.nextID
	return st.freeze()
}

// freeze moves the live hot prefix below freezeAt into the cold segment.
// Tombstoned prefix rows are dropped outright — the segment is born
// tombstone-free. Hot index buckets are split at the watermark: the
// prefix of each bucket (sorted, so a contiguous run) moves wholesale to
// the cold bucket, whose existing ids are all smaller — appends keep
// every bucket sorted with no per-id work.
func (st *joinState) freeze() int {
	if st.walkers > 0 || st.freezeAt <= st.frozenBound {
		return 0
	}
	cut := sort.Search(len(st.ids), func(i int) bool { return st.ids[i] >= st.freezeAt })
	if cut == 0 {
		st.frozenBound = st.freezeAt
		return 0
	}
	if st.cold == nil {
		st.cold = newColdSegment(st.index)
	}
	c := st.cold
	moved := 0
	for r := 0; r < cut; r++ {
		if st.dead[r] {
			continue
		}
		c.appendRow(st.ids[r], st.tups[r])
		moved++
	}
	for a, idx := range st.index {
		for k, bucket := range idx {
			i := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= st.freezeAt })
			if i == 0 {
				continue
			}
			c.appendBucketRun(a, k, bucket[:i])
			rest := bucket[i:]
			if len(rest) == 0 {
				delete(idx, k)
				continue
			}
			n := copy(bucket, rest)
			idx[k] = bucket[:n]
		}
	}
	n := len(st.ids) - cut
	if cap(st.ids) >= 64 && n*4 <= cap(st.ids) {
		// A mass freeze leaves the hot columns nearly empty: keeping the
		// old backing arrays would hold live-heap (and GC scan work) at
		// hot+cold ≈ 2× the stored rows. Re-allocate right-sized columns
		// so the frozen bulk is resident once, in the segment.
		st.ids = append(make([]tupleID, 0, 2*n), st.ids[cut:]...)
		st.tups = append(make([]stream.Tuple, 0, 2*n), st.tups[cut:]...)
		st.dead = append(make([]bool, 0, 2*n), st.dead[cut:]...)
	} else {
		copy(st.ids, st.ids[cut:])
		st.ids = st.ids[:n]
		copy(st.tups, st.tups[cut:])
		clearTuples(st.tups[n:])
		st.tups = st.tups[:n]
		copy(st.dead, st.dead[cut:])
		st.dead = st.dead[:n]
	}
	st.nDead -= cut - moved
	st.frozenBound = st.freezeAt
	if moved == 0 && c.size() == 0 {
		st.cold = nil
	}
	return moved
}
