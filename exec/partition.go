package exec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
)

// PartitionedTree executes one query as P independent replicas of its plan
// tree, each holding the join state of the keys hash-routed to it by the
// query's co-partitioning attribute class (plan.FindCoPartition). Tuples
// go to exactly one replica; punctuations go to all of them, so Theorem
// 1's purge guarantee holds replica-locally (a replica's state is the full
// state restricted to the keys it owns, and the punctuations it sees are
// the full punctuation stream).
//
// Output punctuations pass through an alignment gate: replica p emits a
// propagated punctuation once ITS state holds no matching tuple, which
// says nothing about the other replicas, so the merged output may carry a
// punctuation only after every replica has emitted it. The gate counts
// emissions per punctuation identity and releases one merged emission per
// full set, keeping the output stream's promises sound.
//
// Like Tree, a PartitionedTree is single-threaded: one goroutine drives
// Push/PushBatch/Flush/Sweep. The engine's partitioned shard instead
// drives the replicas from a worker pool through PushPartitionEnds +
// MergeOutputs, scatter-gathering so that at most one worker touches a
// replica at a time and the merge runs on the routing goroutine.
// Routing is a two-level map: the co-partition value hashes into one of
// plan.PartitionBuckets fixed buckets, and an immutable owner table
// (plan.PartitionSpec) maps buckets to replicas. The spec is held behind
// an atomic pointer so producers may hash without locks; a live split
// (Split) publishes a new spec wholesale. Everything else about a split
// — cloning the hot replica, filtering both sides, growing the gate —
// runs under the engine's control barrier with every worker parked, so
// only the routing pointer needs atomicity.
type PartitionedTree struct {
	q     *query.CJQ
	parts []*Tree
	route *plan.CoPartition
	desc  string
	// gate[punct identity] counts, per replica, output-punctuation
	// emissions not yet released into the merged stream.
	gate map[string][]uint32
	// routing is the current bucket→replica owner table.
	routing atomic.Pointer[plan.PartitionSpec]
	// base and root rebuild replica trees on Split and on restore of a
	// post-split snapshot. base.OnPressure holds the caller's original
	// (unserialized) callback; replicaConfig wraps it per replica.
	base Config
	root *plan.Node
	// pressMu serializes the shared pressure callback across replicas
	// driven by concurrent workers.
	pressMu sync.Mutex
}

// maxPartitions bounds P; the snapshot format and the engine's worker
// pool assume a sane small fan-out.
const maxPartitions = 64

// NewPartitionedTree compiles P replicas of the plan for Config's query.
// It fails with an error wrapping plan.ErrNotCoPartitionable when the join
// graph has no attribute class spanning every stream; callers fall back to
// the unpartitioned Tree.
func NewPartitionedTree(base Config, root *plan.Node, p int) (*PartitionedTree, error) {
	if p < 1 || p > maxPartitions {
		return nil, fmt.Errorf("exec: partition count %d out of range [1,%d]", p, maxPartitions)
	}
	if base.Query == nil {
		return nil, fmt.Errorf("exec: Config.Query is nil")
	}
	cp, err := plan.FindCoPartition(base.Query)
	if err != nil {
		return nil, err
	}
	pt := &PartitionedTree{
		q:     base.Query,
		parts: make([]*Tree, p),
		route: cp,
		desc:  cp.Describe(base.Query),
		gate:  make(map[string][]uint32),
		base:  base,
		root:  root,
	}
	pt.routing.Store(plan.NewPartitionSpec(p))
	for i := range pt.parts {
		t, err := NewTree(pt.replicaConfig(i), root)
		if err != nil {
			return nil, err
		}
		pt.parts[i] = t
	}
	return pt, nil
}

// replicaConfig derives replica part's operator Config: the shared base
// with the pressure callback wrapped to stamp the replica index (so the
// engine's split watcher can target the hot replica) and serialized
// across replicas driven by concurrent workers.
func (pt *PartitionedTree) replicaConfig(part int) Config {
	cfg := pt.base
	if orig := pt.base.OnPressure; orig != nil {
		cfg.OnPressure = func(ev PressureEvent) {
			pt.pressMu.Lock()
			defer pt.pressMu.Unlock()
			ev.Partition = part
			orig(ev)
		}
	}
	return cfg
}

// Partitions returns P.
func (pt *PartitionedTree) Partitions() int { return len(pt.parts) }

// Routing describes the co-partitioning attribute class, e.g.
// "item.itemid = bid.itemid".
func (pt *PartitionedTree) Routing() string { return pt.desc }

// Partition returns replica i. The engine's worker pool drives replicas
// directly; any other use must respect the one-driver-at-a-time rule.
func (pt *PartitionedTree) Partition(i int) *Tree { return pt.parts[i] }

// PartitionOf routes a tuple of stream streamIdx by the hash of its
// co-partitioning attribute through the current owner table. A tuple too
// short to carry the attribute (malformed; it will fail schema
// validation) routes to replica 0 so that rejection happens
// deterministically in exactly one replica. Safe to call from producer
// goroutines: the owner table is an immutable snapshot (see
// RoutingSpec for callers that must detect concurrent splits).
func (pt *PartitionedTree) PartitionOf(streamIdx int, t stream.Tuple) int {
	return pt.PartitionOfSpec(pt.routing.Load(), streamIdx, t)
}

// PartitionOfSpec is PartitionOf against a caller-held routing snapshot.
// The engine's ingestion front-end hashes whole runs outside its lock,
// then re-validates the snapshot pointer under the lock (RoutingSpec)
// and rehashes if a split replaced the table in between.
func (pt *PartitionedTree) PartitionOfSpec(spec *plan.PartitionSpec, streamIdx int, t stream.Tuple) int {
	if spec.Parts == 1 {
		return 0
	}
	a := pt.route.Attrs[streamIdx]
	if a >= len(t.Values) {
		return 0
	}
	return spec.OwnerOf(t.Values[a].Hash())
}

// RoutingSpec returns the current immutable owner table.
func (pt *PartitionedTree) RoutingSpec() *plan.PartitionSpec { return pt.routing.Load() }

// MergeOutputs folds one replica's output run into dst: result tuples
// pass through, output punctuations pass the alignment gate and are
// released only once every replica has emitted them. Call it on the
// routing goroutine, in a deterministic replica order, to keep the merged
// stream deterministic.
func (pt *PartitionedTree) MergeOutputs(dst []stream.Element, part int, outs []stream.Element) []stream.Element {
	for _, e := range outs {
		if !e.IsPunct() {
			dst = append(dst, e)
			continue
		}
		key := e.Punct().String()
		counts := pt.gate[key]
		if counts == nil {
			counts = make([]uint32, len(pt.parts))
			pt.gate[key] = counts
		}
		counts[part]++
		ready := true
		for _, c := range counts {
			if c == 0 {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		allZero := true
		for i := range counts {
			counts[i]--
			if counts[i] != 0 {
				allZero = false
			}
		}
		if allZero {
			delete(pt.gate, key)
		}
		dst = append(dst, e)
	}
	return dst
}

// PushPartitionEnds drives one replica over a run of already-routed
// elements, appending outputs and per-element boundaries into the
// caller's buffers (see Tree.PushBatchEnds). It is the engine worker
// entry point; outputs must subsequently pass MergeOutputs on the routing
// goroutine.
func (pt *PartitionedTree) PushPartitionEnds(part, streamIdx int, out []stream.Element, ends []int, elems []stream.Element) ([]stream.Element, []int, int, error) {
	return pt.parts[part].PushBatchEnds(streamIdx, out, ends, elems)
}

// Push feeds one raw element sequentially: a tuple to the replica owning
// its key, a punctuation to every replica in order. Outputs are merged
// through the alignment gate. This is the reference semantics the engine's
// worker pool must match element-for-element.
func (pt *PartitionedTree) Push(streamIdx int, e stream.Element) ([]stream.Element, error) {
	if streamIdx < 0 || streamIdx >= pt.q.N() {
		return nil, fmt.Errorf("exec: stream %d out of range", streamIdx)
	}
	if e.IsPunct() {
		var out []stream.Element
		var firstErr error
		for p := range pt.parts {
			outs, err := pt.parts[p].Push(streamIdx, e)
			if err != nil {
				// Validation is deterministic, so every replica rejects the
				// same element before mutating state; keep broadcasting so
				// replica clocks stay aligned.
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			out = pt.MergeOutputs(out, p, outs)
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return out, nil
	}
	p := pt.PartitionOf(streamIdx, e.Tuple())
	outs, err := pt.parts[p].Push(streamIdx, e)
	if err != nil {
		return nil, err
	}
	return pt.MergeOutputs(nil, p, outs), nil
}

// PushBatch feeds a run of elements from one stream with Tree.PushBatch's
// offender semantics: on error the offender is elems[n] and preceding
// outputs are kept.
func (pt *PartitionedTree) PushBatch(streamIdx int, elems []stream.Element) ([]stream.Element, int, error) {
	var out []stream.Element
	for i := range elems {
		outs, err := pt.Push(streamIdx, elems[i])
		if err != nil {
			return out, i, err
		}
		out = append(out, outs...)
	}
	return out, len(elems), nil
}

// Flush forces pending lazy purge rounds in every replica, merging their
// outputs in replica order.
func (pt *PartitionedTree) Flush() ([]stream.Element, error) {
	var out []stream.Element
	for p := range pt.parts {
		outs, err := pt.parts[p].Flush()
		if err != nil {
			return out, err
		}
		out = pt.MergeOutputs(out, p, outs)
	}
	return out, nil
}

// Sweep runs a clean-up pass over every replica, returning the total
// tuples removed plus merged outputs.
func (pt *PartitionedTree) Sweep() (int, []stream.Element, error) {
	removed := 0
	var out []stream.Element
	for p := range pt.parts {
		n, outs, err := pt.parts[p].Sweep()
		if err != nil {
			return 0, nil, err
		}
		removed += n
		out = pt.MergeOutputs(out, p, outs)
	}
	return removed, out, nil
}

// StatsSnapshot returns one aggregate Stats per operator position (the
// Tree.Operators order), summing across replicas via Stats.Add. Note
// PunctsIn counts every broadcast copy (P× the ingested punctuations) and
// the Max* watermarks sum per-replica peaks.
func (pt *PartitionedTree) StatsSnapshot() []*Stats {
	agg := pt.parts[0].StatsSnapshot()
	for p := 1; p < len(pt.parts); p++ {
		for i, s := range pt.parts[p].StatsSnapshot() {
			agg[i].Add(s)
		}
	}
	return agg
}

// TotalState sums stored tuples across replicas and operators.
func (pt *PartitionedTree) TotalState() int {
	total := 0
	for _, t := range pt.parts {
		total += t.TotalState()
	}
	return total
}

// TotalPunctStore sums stored punctuations across replicas and operators.
func (pt *PartitionedTree) TotalPunctStore() int {
	total := 0
	for _, t := range pt.parts {
		total += t.TotalPunctStore()
	}
	return total
}

// MaxState sums the per-replica high-water marks.
func (pt *PartitionedTree) MaxState() int {
	total := 0
	for _, t := range pt.parts {
		total += t.MaxState()
	}
	return total
}

// OutputSchema is the (replica-independent) root output schema.
func (pt *PartitionedTree) OutputSchema() *stream.Schema { return pt.parts[0].OutputSchema() }

// coValueCol returns the column holding the co-partition value inside
// the stored tuples of one operator input (= one plan child). A child's
// output schema concatenates its leaf schemas in subtree order, so the
// first leaf's columns start at offset 0 and the routing attribute of
// that leaf IS the column. (An intermediate tuple can carry differing
// co-values across its leaves only if it can never complete a join
// result — the predicates equate the class on every result — so
// assigning by the first leaf is both safe and deterministic.)
func (pt *PartitionedTree) coValueCol(node *plan.Node, child int) int {
	return pt.route.Attrs[node.Children[child].Leaves()[0]]
}

// bucketLoad accumulates a replica's stored-tuple count per hash bucket
// — the skew histogram SplitOwner balances against.
func (pt *PartitionedTree) bucketLoad(t *Tree, load *[plan.PartitionBuckets]uint64) {
	for _, op := range t.ops {
		m := op.join
		for ci, st := range m.states {
			col := pt.coValueCol(op.node, ci)
			st.each(func(_ tupleID, u stream.Tuple) bool {
				if col < len(u.Values) {
					load[u.Values[col].Hash()%plan.PartitionBuckets]++
				}
				return true
			})
		}
	}
}

// Split carves replica hot's key range in two: a new replica (index
// Partitions()) is cloned from hot's full state — join columns,
// punctuation stores, pending punctuations, clocks — via the snapshot
// codec, both sides drop the stored tuples the new owner table routes
// away from them, and the new table is published. The caller must hold
// the tree quiesced (no worker driving any replica, no producer
// enqueuing): the engine runs Split inside its control barrier.
//
// The returned elements are gate-merged outputs the split itself
// unblocked: a stored punctuation whose last matching tuples were
// filtered to the sibling becomes emittable on the side that lost them,
// and without re-testing it there the alignment gate would starve and
// the merged stream would never carry it. The caller must deliver them
// in stream position (the engine's merge stage does so at the barrier).
//
// Split fails without touching the tree when the replica bound is
// reached or when hot's load sits in a single hash bucket (one
// pathological key cannot be separated by bucket routing).
func (pt *PartitionedTree) Split(hot int) (int, []stream.Element, error) {
	spec := pt.routing.Load()
	if hot < 0 || hot >= len(pt.parts) {
		return -1, nil, fmt.Errorf("exec: split of unknown partition %d (have %d)", hot, len(pt.parts))
	}
	if len(pt.parts) >= maxPartitions {
		return -1, nil, fmt.Errorf("exec: partition bound %d reached; cannot split further", maxPartitions)
	}
	var load [plan.PartitionBuckets]uint64
	pt.bucketLoad(pt.parts[hot], &load)
	next, err := spec.SplitOwner(hot, load)
	if err != nil {
		return -1, nil, err
	}
	newPart := next.Parts - 1
	// Clone hot through the snapshot codec: the round-trip is the proven
	// state copier (checkpoint equivalence rests on it), and it rebuilds
	// the clone's index tiers born-sorted.
	var blob bytes.Buffer
	if err := pt.parts[hot].WriteState(&blob); err != nil {
		return -1, nil, fmt.Errorf("exec: snapshotting hot partition %d: %w", hot, err)
	}
	clone, err := NewTree(pt.replicaConfig(newPart), pt.root)
	if err != nil {
		return -1, nil, err
	}
	if err := clone.ReadState(bytes.NewReader(blob.Bytes())); err != nil {
		return -1, nil, fmt.Errorf("exec: cloning hot partition %d: %w", hot, err)
	}
	pt.filterReplica(pt.parts[hot], hot, next)
	pt.filterReplica(clone, newPart, next)
	resetCumulativeStats(clone)
	// The clone inherited hot's emitted-punctuation history (it will
	// never re-emit those), so credit it with hot's outstanding gate
	// counts; punctuations neither side has emitted yet will be emitted
	// by both as their filtered states drain.
	for k, counts := range pt.gate {
		pt.gate[k] = append(counts, counts[hot])
	}
	pt.parts = append(pt.parts, clone)
	pt.routing.Store(next)
	// Filtering removed tuples without the purge machinery; re-test each
	// side's stored punctuations so emissions unblocked by the move reach
	// the gate. The side still owning a punctuation's keys declines (it
	// has the matches), so the merged release keeps the single-tree
	// position.
	var out []stream.Element
	for _, p := range []int{hot, newPart} {
		outs, err := pt.parts[p].emitUnblocked()
		if err != nil {
			return -1, nil, fmt.Errorf("exec: re-testing punctuations after split of %d: %w", hot, err)
		}
		out = pt.MergeOutputs(out, p, outs)
	}
	return newPart, out, nil
}

// filterReplica drops every stored tuple the owner table routes away
// from replica part, across all operators and tiers, and refreshes the
// size gauges. Removals bypass the purge counters: the tuples move to
// the sibling replica, they do not leave the query's state.
func (pt *PartitionedTree) filterReplica(t *Tree, part int, spec *plan.PartitionSpec) {
	var doomed []tupleID
	for _, op := range t.ops {
		m := op.join
		for ci, st := range m.states {
			col := pt.coValueCol(op.node, ci)
			doomed = doomed[:0]
			st.each(func(id tupleID, u stream.Tuple) bool {
				if col < len(u.Values) && spec.OwnerOf(u.Values[col].Hash()) != part {
					doomed = append(doomed, id)
				}
				return true
			})
			for _, id := range doomed {
				st.remove(id)
			}
			m.stats.StateSize[ci] = st.size()
			m.stats.ColdSize[ci] = st.coldSize()
		}
	}
}

// resetCumulativeStats zeroes a cloned replica's lifetime counters so
// replica sums stay exact across a split: the clone keeps only the
// gauges describing what it now holds (state and store sizes), with its
// watermarks restarted from them. Everything cumulative — inputs,
// results, purges — already lives in the parent's counters.
func resetCumulativeStats(t *Tree) {
	for _, op := range t.ops {
		s := op.join.stats
		for i := range s.TuplesIn {
			s.TuplesIn[i] = 0
			s.PunctsIn[i] = 0
			s.TuplesPurged[i] = 0
			s.PunctsPurged[i] = 0
		}
		s.Results = 0
		s.OutPuncts = 0
		s.PurgeChecks = 0
		s.PressureEvents = 0
		s.Freezes = 0
		s.MaxStateSize = s.TotalState()
		s.MaxPunctStoreSize = s.TotalPunctStore()
	}
}

// Partitioned state serialization: a "PTP2" wrapper holding the owner
// table, P length-prefixed Tree snapshots (the PTR1 format of
// snapshot.go), and the alignment-gate counters, so a restored
// PartitionedTree resumes emission exactly where the checkpoint left it.
// Unlike PTP1, the partition count is data, not shape: a snapshot taken
// after live splits restores into a tree registered with the original
// partition count by growing it to match (InstallState appends the
// staged extra replicas before committing).

const partTreeStateMagic = "PTP2"

// PartitionedTreeState is a decoded, validated snapshot of a partitioned
// tree, detached until InstallState commits it.
type PartitionedTreeState struct {
	spec  *plan.PartitionSpec
	parts []*TreeState
	// extra holds freshly built replica trees for snapshot partitions
	// beyond the live tree's current count (post-split snapshots);
	// parts[len(pt.parts)+i] installs into extra[i].
	extra []*Tree
	gate  map[string][]uint32
}

// WriteState serializes the owner table, all replica states and the
// alignment gate. Same quiescence rule as Tree.WriteState.
func (pt *PartitionedTree) WriteState(w io.Writer) error {
	buf := make([]byte, 0, 4096)
	buf = append(buf, partTreeStateMagic...)
	spec := pt.routing.Load()
	buf = binary.AppendUvarint(buf, uint64(spec.Parts))
	for _, o := range spec.Owner {
		buf = append(buf, byte(o))
	}
	buf = binary.AppendUvarint(buf, uint64(len(pt.parts)))
	var blob bytes.Buffer
	for _, t := range pt.parts {
		blob.Reset()
		if err := t.WriteState(&blob); err != nil {
			return err
		}
		buf = binary.AppendUvarint(buf, uint64(blob.Len()))
		buf = append(buf, blob.Bytes()...)
	}
	keys := make([]string, 0, len(pt.gate))
	for k := range pt.gate {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		for _, c := range pt.gate[k] {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
	}
	_, err := w.Write(buf)
	return err
}

// DecodeState parses a WriteState snapshot against this tree's shape (same
// P, same plan) without modifying it; failures wrap ErrCorruptState.
func (pt *PartitionedTree) DecodeState(r io.Reader) (*PartitionedTreeState, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading state: %v", ErrCorruptState, err)
	}
	d := &stateDec{buf: buf}
	magic, err := d.take(len(partTreeStateMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != partTreeStateMagic {
		return nil, fmt.Errorf("%w: unsupported partitioned state version %q", ErrCorruptState, magic)
	}
	specParts, err := d.count("routing partition count")
	if err != nil {
		return nil, err
	}
	if specParts < 1 || specParts > maxPartitions {
		return nil, fmt.Errorf("%w: routing partition count %d out of range [1,%d]", ErrCorruptState, specParts, maxPartitions)
	}
	owners, err := d.take(plan.PartitionBuckets)
	if err != nil {
		return nil, err
	}
	spec := &plan.PartitionSpec{Parts: specParts}
	for b, o := range owners {
		if int(o) >= specParts {
			return nil, fmt.Errorf("%w: bucket %d owned by partition %d of %d", ErrCorruptState, b, o, specParts)
		}
		spec.Owner[b] = int32(o)
	}
	p, err := d.count("partition count")
	if err != nil {
		return nil, err
	}
	if p != specParts {
		return nil, fmt.Errorf("%w: snapshot holds %d partitions but routes over %d", ErrCorruptState, p, specParts)
	}
	if p < len(pt.parts) {
		return nil, fmt.Errorf("%w: snapshot holds %d partitions, tree has %d", ErrCorruptState, p, len(pt.parts))
	}
	st := &PartitionedTreeState{
		spec:  spec,
		parts: make([]*TreeState, p),
		gate:  make(map[string][]uint32),
	}
	for i := 0; i < p; i++ {
		blobLen, err := d.count("partition blob length")
		if err != nil {
			return nil, err
		}
		blob, err := d.take(blobLen)
		if err != nil {
			return nil, err
		}
		// Snapshot partitions beyond the live tree (post-split snapshots)
		// decode against — and later install into — freshly built replicas.
		tree := (*Tree)(nil)
		if i < len(pt.parts) {
			tree = pt.parts[i]
		} else {
			if tree, err = NewTree(pt.replicaConfig(i), pt.root); err != nil {
				return nil, fmt.Errorf("partition %d: %w", i, err)
			}
			st.extra = append(st.extra, tree)
		}
		ts, err := tree.DecodeState(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", i, err)
		}
		st.parts[i] = ts
	}
	nGate, err := d.count("gate entry count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nGate; i++ {
		keyLen, err := d.count("gate key length")
		if err != nil {
			return nil, err
		}
		key, err := d.take(keyLen)
		if err != nil {
			return nil, err
		}
		if _, dup := st.gate[string(key)]; dup {
			return nil, fmt.Errorf("%w: duplicate gate entry %q", ErrCorruptState, key)
		}
		counts := make([]uint32, p)
		for j := range counts {
			v, err := d.uvarint("gate count")
			if err != nil {
				return nil, err
			}
			if v > 1<<31 {
				return nil, fmt.Errorf("%w: gate count %d out of range", ErrCorruptState, v)
			}
			counts[j] = uint32(v)
		}
		st.gate[string(key)] = counts
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after partitioned state", ErrCorruptState, len(d.buf)-d.off)
	}
	return st, nil
}

// InstallState commits a snapshot previously decoded against this tree,
// growing the replica set when the snapshot was taken after live splits.
func (pt *PartitionedTree) InstallState(s *PartitionedTreeState) error {
	if len(s.parts) != len(pt.parts)+len(s.extra) {
		return fmt.Errorf("%w: snapshot holds %d partitions, tree has %d (+%d staged)",
			ErrCorruptState, len(s.parts), len(pt.parts), len(s.extra))
	}
	for i, t := range pt.parts {
		if err := t.InstallState(s.parts[i]); err != nil {
			return err
		}
	}
	for j, t := range s.extra {
		if err := t.InstallState(s.parts[len(pt.parts)+j]); err != nil {
			return err
		}
	}
	pt.parts = append(pt.parts, s.extra...)
	pt.routing.Store(s.spec)
	pt.gate = s.gate
	return nil
}
