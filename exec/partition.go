package exec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
)

// PartitionedTree executes one query as P independent replicas of its plan
// tree, each holding the join state of the keys hash-routed to it by the
// query's co-partitioning attribute class (plan.FindCoPartition). Tuples
// go to exactly one replica; punctuations go to all of them, so Theorem
// 1's purge guarantee holds replica-locally (a replica's state is the full
// state restricted to the keys it owns, and the punctuations it sees are
// the full punctuation stream).
//
// Output punctuations pass through an alignment gate: replica p emits a
// propagated punctuation once ITS state holds no matching tuple, which
// says nothing about the other replicas, so the merged output may carry a
// punctuation only after every replica has emitted it. The gate counts
// emissions per punctuation identity and releases one merged emission per
// full set, keeping the output stream's promises sound.
//
// Like Tree, a PartitionedTree is single-threaded: one goroutine drives
// Push/PushBatch/Flush/Sweep. The engine's partitioned shard instead
// drives the replicas from a worker pool through PushPartitionEnds +
// MergeOutputs, scatter-gathering so that at most one worker touches a
// replica at a time and the merge runs on the routing goroutine.
type PartitionedTree struct {
	q     *query.CJQ
	parts []*Tree
	route *plan.CoPartition
	desc  string
	// gate[punct identity] counts, per replica, output-punctuation
	// emissions not yet released into the merged stream.
	gate map[string][]uint32
}

// maxPartitions bounds P; the snapshot format and the engine's worker
// pool assume a sane small fan-out.
const maxPartitions = 64

// NewPartitionedTree compiles P replicas of the plan for Config's query.
// It fails with an error wrapping plan.ErrNotCoPartitionable when the join
// graph has no attribute class spanning every stream; callers fall back to
// the unpartitioned Tree.
func NewPartitionedTree(base Config, root *plan.Node, p int) (*PartitionedTree, error) {
	if p < 1 || p > maxPartitions {
		return nil, fmt.Errorf("exec: partition count %d out of range [1,%d]", p, maxPartitions)
	}
	if base.Query == nil {
		return nil, fmt.Errorf("exec: Config.Query is nil")
	}
	cp, err := plan.FindCoPartition(base.Query)
	if err != nil {
		return nil, err
	}
	if base.OnPressure != nil {
		// Replicas run on concurrent workers under the engine; serialize
		// the shared callback so observers need no locking of their own.
		var mu sync.Mutex
		orig := base.OnPressure
		base.OnPressure = func(ev PressureEvent) {
			mu.Lock()
			defer mu.Unlock()
			orig(ev)
		}
	}
	pt := &PartitionedTree{
		q:     base.Query,
		parts: make([]*Tree, p),
		route: cp,
		desc:  cp.Describe(base.Query),
		gate:  make(map[string][]uint32),
	}
	for i := range pt.parts {
		t, err := NewTree(base, root)
		if err != nil {
			return nil, err
		}
		pt.parts[i] = t
	}
	return pt, nil
}

// Partitions returns P.
func (pt *PartitionedTree) Partitions() int { return len(pt.parts) }

// Routing describes the co-partitioning attribute class, e.g.
// "item.itemid = bid.itemid".
func (pt *PartitionedTree) Routing() string { return pt.desc }

// Partition returns replica i. The engine's worker pool drives replicas
// directly; any other use must respect the one-driver-at-a-time rule.
func (pt *PartitionedTree) Partition(i int) *Tree { return pt.parts[i] }

// PartitionOf routes a tuple of stream streamIdx by the hash of its
// co-partitioning attribute. A tuple too short to carry the attribute
// (malformed; it will fail schema validation) routes to replica 0 so that
// rejection happens deterministically in exactly one replica.
func (pt *PartitionedTree) PartitionOf(streamIdx int, t stream.Tuple) int {
	if len(pt.parts) == 1 {
		return 0
	}
	a := pt.route.Attrs[streamIdx]
	if a >= len(t.Values) {
		return 0
	}
	return int(t.Values[a].Hash() % uint64(len(pt.parts)))
}

// MergeOutputs folds one replica's output run into dst: result tuples
// pass through, output punctuations pass the alignment gate and are
// released only once every replica has emitted them. Call it on the
// routing goroutine, in a deterministic replica order, to keep the merged
// stream deterministic.
func (pt *PartitionedTree) MergeOutputs(dst []stream.Element, part int, outs []stream.Element) []stream.Element {
	for _, e := range outs {
		if !e.IsPunct() {
			dst = append(dst, e)
			continue
		}
		key := e.Punct().String()
		counts := pt.gate[key]
		if counts == nil {
			counts = make([]uint32, len(pt.parts))
			pt.gate[key] = counts
		}
		counts[part]++
		ready := true
		for _, c := range counts {
			if c == 0 {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		allZero := true
		for i := range counts {
			counts[i]--
			if counts[i] != 0 {
				allZero = false
			}
		}
		if allZero {
			delete(pt.gate, key)
		}
		dst = append(dst, e)
	}
	return dst
}

// PushPartitionEnds drives one replica over a run of already-routed
// elements, appending outputs and per-element boundaries into the
// caller's buffers (see Tree.PushBatchEnds). It is the engine worker
// entry point; outputs must subsequently pass MergeOutputs on the routing
// goroutine.
func (pt *PartitionedTree) PushPartitionEnds(part, streamIdx int, out []stream.Element, ends []int, elems []stream.Element) ([]stream.Element, []int, int, error) {
	return pt.parts[part].PushBatchEnds(streamIdx, out, ends, elems)
}

// Push feeds one raw element sequentially: a tuple to the replica owning
// its key, a punctuation to every replica in order. Outputs are merged
// through the alignment gate. This is the reference semantics the engine's
// worker pool must match element-for-element.
func (pt *PartitionedTree) Push(streamIdx int, e stream.Element) ([]stream.Element, error) {
	if streamIdx < 0 || streamIdx >= pt.q.N() {
		return nil, fmt.Errorf("exec: stream %d out of range", streamIdx)
	}
	if e.IsPunct() {
		var out []stream.Element
		var firstErr error
		for p := range pt.parts {
			outs, err := pt.parts[p].Push(streamIdx, e)
			if err != nil {
				// Validation is deterministic, so every replica rejects the
				// same element before mutating state; keep broadcasting so
				// replica clocks stay aligned.
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			out = pt.MergeOutputs(out, p, outs)
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return out, nil
	}
	p := pt.PartitionOf(streamIdx, e.Tuple())
	outs, err := pt.parts[p].Push(streamIdx, e)
	if err != nil {
		return nil, err
	}
	return pt.MergeOutputs(nil, p, outs), nil
}

// PushBatch feeds a run of elements from one stream with Tree.PushBatch's
// offender semantics: on error the offender is elems[n] and preceding
// outputs are kept.
func (pt *PartitionedTree) PushBatch(streamIdx int, elems []stream.Element) ([]stream.Element, int, error) {
	var out []stream.Element
	for i := range elems {
		outs, err := pt.Push(streamIdx, elems[i])
		if err != nil {
			return out, i, err
		}
		out = append(out, outs...)
	}
	return out, len(elems), nil
}

// Flush forces pending lazy purge rounds in every replica, merging their
// outputs in replica order.
func (pt *PartitionedTree) Flush() ([]stream.Element, error) {
	var out []stream.Element
	for p := range pt.parts {
		outs, err := pt.parts[p].Flush()
		if err != nil {
			return out, err
		}
		out = pt.MergeOutputs(out, p, outs)
	}
	return out, nil
}

// Sweep runs a clean-up pass over every replica, returning the total
// tuples removed plus merged outputs.
func (pt *PartitionedTree) Sweep() (int, []stream.Element, error) {
	removed := 0
	var out []stream.Element
	for p := range pt.parts {
		n, outs, err := pt.parts[p].Sweep()
		if err != nil {
			return 0, nil, err
		}
		removed += n
		out = pt.MergeOutputs(out, p, outs)
	}
	return removed, out, nil
}

// StatsSnapshot returns one aggregate Stats per operator position (the
// Tree.Operators order), summing across replicas via Stats.Add. Note
// PunctsIn counts every broadcast copy (P× the ingested punctuations) and
// the Max* watermarks sum per-replica peaks.
func (pt *PartitionedTree) StatsSnapshot() []*Stats {
	agg := pt.parts[0].StatsSnapshot()
	for p := 1; p < len(pt.parts); p++ {
		for i, s := range pt.parts[p].StatsSnapshot() {
			agg[i].Add(s)
		}
	}
	return agg
}

// TotalState sums stored tuples across replicas and operators.
func (pt *PartitionedTree) TotalState() int {
	total := 0
	for _, t := range pt.parts {
		total += t.TotalState()
	}
	return total
}

// TotalPunctStore sums stored punctuations across replicas and operators.
func (pt *PartitionedTree) TotalPunctStore() int {
	total := 0
	for _, t := range pt.parts {
		total += t.TotalPunctStore()
	}
	return total
}

// MaxState sums the per-replica high-water marks.
func (pt *PartitionedTree) MaxState() int {
	total := 0
	for _, t := range pt.parts {
		total += t.MaxState()
	}
	return total
}

// OutputSchema is the (replica-independent) root output schema.
func (pt *PartitionedTree) OutputSchema() *stream.Schema { return pt.parts[0].OutputSchema() }

// Partitioned state serialization: a "PTP1" wrapper holding P
// length-prefixed Tree snapshots (the PTR1 format of snapshot.go,
// unchanged) plus the alignment-gate counters, so a restored
// PartitionedTree resumes emission exactly where the checkpoint left it.

const partTreeStateMagic = "PTP1"

// PartitionedTreeState is a decoded, validated snapshot of a partitioned
// tree, detached until InstallState commits it.
type PartitionedTreeState struct {
	parts []*TreeState
	gate  map[string][]uint32
}

// WriteState serializes all replica states and the alignment gate. Same
// quiescence rule as Tree.WriteState.
func (pt *PartitionedTree) WriteState(w io.Writer) error {
	buf := make([]byte, 0, 4096)
	buf = append(buf, partTreeStateMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(pt.parts)))
	var blob bytes.Buffer
	for _, t := range pt.parts {
		blob.Reset()
		if err := t.WriteState(&blob); err != nil {
			return err
		}
		buf = binary.AppendUvarint(buf, uint64(blob.Len()))
		buf = append(buf, blob.Bytes()...)
	}
	keys := make([]string, 0, len(pt.gate))
	for k := range pt.gate {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		for _, c := range pt.gate[k] {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
	}
	_, err := w.Write(buf)
	return err
}

// DecodeState parses a WriteState snapshot against this tree's shape (same
// P, same plan) without modifying it; failures wrap ErrCorruptState.
func (pt *PartitionedTree) DecodeState(r io.Reader) (*PartitionedTreeState, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading state: %v", ErrCorruptState, err)
	}
	d := &stateDec{buf: buf}
	magic, err := d.take(len(partTreeStateMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != partTreeStateMagic {
		return nil, fmt.Errorf("%w: unsupported partitioned state version %q", ErrCorruptState, magic)
	}
	p, err := d.count("partition count")
	if err != nil {
		return nil, err
	}
	if p != len(pt.parts) {
		return nil, fmt.Errorf("%w: snapshot holds %d partitions, tree has %d", ErrCorruptState, p, len(pt.parts))
	}
	st := &PartitionedTreeState{
		parts: make([]*TreeState, p),
		gate:  make(map[string][]uint32),
	}
	for i := 0; i < p; i++ {
		blobLen, err := d.count("partition blob length")
		if err != nil {
			return nil, err
		}
		blob, err := d.take(blobLen)
		if err != nil {
			return nil, err
		}
		ts, err := pt.parts[i].DecodeState(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", i, err)
		}
		st.parts[i] = ts
	}
	nGate, err := d.count("gate entry count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nGate; i++ {
		keyLen, err := d.count("gate key length")
		if err != nil {
			return nil, err
		}
		key, err := d.take(keyLen)
		if err != nil {
			return nil, err
		}
		if _, dup := st.gate[string(key)]; dup {
			return nil, fmt.Errorf("%w: duplicate gate entry %q", ErrCorruptState, key)
		}
		counts := make([]uint32, p)
		for j := range counts {
			v, err := d.uvarint("gate count")
			if err != nil {
				return nil, err
			}
			if v > 1<<31 {
				return nil, fmt.Errorf("%w: gate count %d out of range", ErrCorruptState, v)
			}
			counts[j] = uint32(v)
		}
		st.gate[string(key)] = counts
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after partitioned state", ErrCorruptState, len(d.buf)-d.off)
	}
	return st, nil
}

// InstallState commits a snapshot previously decoded against this tree.
func (pt *PartitionedTree) InstallState(s *PartitionedTreeState) error {
	if len(s.parts) != len(pt.parts) {
		return fmt.Errorf("%w: snapshot holds %d partitions, tree has %d", ErrCorruptState, len(s.parts), len(pt.parts))
	}
	for i, t := range pt.parts {
		if err := t.InstallState(s.parts[i]); err != nil {
			return err
		}
	}
	pt.gate = s.gate
	return nil
}
