package exec

import (
	"errors"
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

// TestEnforcePromisesCatchesViolation: a tuple arriving after its own
// stream punctuated its value is a contract violation.
func TestEnforcePromisesCatchesViolation(t *testing.T) {
	m, err := NewMJoin(Config{Query: binaryQuery(t), Schemes: bothSideSchemes(), EnforcePromises: true})
	if err != nil {
		t.Fatal(err)
	}
	pushT(t, m, 0, tup(1, 10))
	pushP(t, m, 0, punct(1, -1)) // R promises: no more K=1
	// A K=2 tuple is fine.
	if _, err := m.Push(0, stream.TupleElement(tup(2, 20))); err != nil {
		t.Fatalf("unrelated tuple rejected: %v", err)
	}
	// A K=1 tuple violates the promise.
	_, err = m.Push(0, stream.TupleElement(tup(1, 11)))
	if !errors.Is(err, ErrPromiseViolated) {
		t.Fatalf("want ErrPromiseViolated, got %v", err)
	}
	// The partner stream is unaffected: S may still send K=1.
	if _, err := m.Push(1, stream.TupleElement(tup(1, 100))); err != nil {
		t.Fatalf("partner tuple rejected: %v", err)
	}
}

// TestEnforcePromisesWatermark: the ordered form — readings at or below
// the own-stream watermark are violations; above it they pass.
func TestEnforcePromisesWatermark(t *testing.T) {
	q := workload.SensorQuery()
	m, err := NewMJoin(Config{Query: q, Schemes: workload.SensorSchemes(), EnforcePromises: true})
	if err != nil {
		t.Fatal(err)
	}
	reading := func(epoch int64) stream.Element {
		return stream.TupleElement(stream.NewTuple(stream.Int(epoch), stream.Float(1)))
	}
	pushP(t, m, 0, wmPunct(10)) // temp watermark: epochs <= 10 closed
	if _, err := m.Push(0, reading(11)); err != nil {
		t.Fatalf("epoch 11 should pass: %v", err)
	}
	if _, err := m.Push(0, reading(10)); !errors.Is(err, ErrPromiseViolated) {
		t.Fatalf("epoch 10 must violate, got %v", err)
	}
	if _, err := m.Push(0, reading(3)); !errors.Is(err, ErrPromiseViolated) {
		t.Fatalf("epoch 3 must violate, got %v", err)
	}
	// The humid stream has its own (absent) watermark: unaffected.
	if _, err := m.Push(1, stream.TupleElement(stream.NewTuple(stream.Int(2), stream.Float(1)))); err != nil {
		t.Fatalf("humid epoch 2 should pass: %v", err)
	}
}

// TestEnforcePromisesAcceptsCleanWorkloads: the generators keep their
// promises, so enforcement never fires on them.
func TestEnforcePromisesAcceptsCleanWorkloads(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    func() (*MJoin, []workload.Input)
	}{
		{"auction", func() (*MJoin, []workload.Input) {
			q := workload.AuctionQuery()
			m, err := NewMJoin(Config{Query: q, Schemes: workload.AuctionSchemes(), EnforcePromises: true})
			if err != nil {
				t.Fatal(err)
			}
			return m, workload.Auction(workload.AuctionConfig{
				Items: 300, MaxBidsPerItem: 5, OpenWindow: 4,
				PunctuateItems: true, PunctuateClose: true, Seed: 61,
			})
		}},
		{"sensors", func() (*MJoin, []workload.Input) {
			q := workload.SensorQuery()
			m, err := NewMJoin(Config{Query: q, Schemes: workload.SensorSchemes(), EnforcePromises: true})
			if err != nil {
				t.Fatal(err)
			}
			return m, workload.Sensor(workload.SensorConfig{
				Epochs: 300, ReadingsPerEpoch: 2, Disorder: 4,
				HeartbeatEvery: 3, Heartbeats: true, Seed: 62,
			})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, inputs := tc.q()
			feed, err := workload.NewFeed(m.Query(), inputs)
			if err != nil {
				t.Fatal(err)
			}
			if err := feed.Each(func(i int, e stream.Element) error {
				_, err := m.Push(i, e)
				return err
			}); err != nil {
				t.Fatalf("clean workload must not violate promises: %v", err)
			}
		})
	}
}
