package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"punctsafe/query"
	"punctsafe/stream"
	"punctsafe/workload"
)

// referenceJoin computes the full multi-way join of finite tuple sets by
// brute force: every combination of one tuple per stream is tested
// against every predicate. It is the ground truth the streaming operator
// must reproduce on finite inputs.
func referenceJoin(q *query.CJQ, tuples [][]stream.Tuple) []string {
	var results []string
	bound := make([]stream.Tuple, q.N())
	var rec func(i int)
	rec = func(i int) {
		if i == q.N() {
			var b strings.Builder
			for _, t := range bound {
				b.WriteString(t.String())
				b.WriteByte('|')
			}
			results = append(results, b.String())
			return
		}
		for _, t := range tuples[i] {
			ok := true
			for _, p := range q.Predicates() {
				if p.Right == i && p.Left < i {
					if !t.Values[p.RightAttr].Equal(bound[p.Left].Values[p.LeftAttr]) {
						ok = false
						break
					}
				}
				if p.Left == i && p.Right < i {
					if !t.Values[p.LeftAttr].Equal(bound[p.Right].Values[p.RightAttr]) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			bound[i] = t
			rec(i + 1)
		}
	}
	rec(0)
	sort.Strings(results)
	return results
}

// renderStreamed renders a streamed result tuple in the reference's
// format (per-stream segments in stream order).
func renderStreamed(q *query.CJQ, t stream.Tuple) string {
	var b strings.Builder
	off := 0
	for i := 0; i < q.N(); i++ {
		n := q.Stream(i).Arity()
		seg := stream.NewTuple(t.Values[off : off+n]...)
		b.WriteString(seg.String())
		b.WriteByte('|')
		off += n
	}
	return b.String()
}

// TestMJoinMatchesBruteForce: on random topologies and random finite
// tuple sets (no punctuations), the streamed join must emit exactly the
// brute-force join, regardless of arrival interleaving.
func TestMJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 120; trial++ {
		topo := []workload.Topology{workload.Chain, workload.Cycle, workload.Star, workload.Clique}[rng.Intn(4)]
		k := 2 + rng.Intn(3)
		q, err := workload.SyntheticQuery(topo, k)
		if err != nil {
			t.Fatal(err)
		}
		// Random finite tuple sets with small value domains so joins occur.
		tuples := make([][]stream.Tuple, q.N())
		type arrival struct {
			input int
			t     stream.Tuple
		}
		var arrivals []arrival
		for i := 0; i < q.N(); i++ {
			n := 1 + rng.Intn(6)
			for c := 0; c < n; c++ {
				vals := make([]stream.Value, q.Stream(i).Arity())
				for a := range vals {
					vals[a] = stream.Int(int64(rng.Intn(3)))
				}
				tu := stream.NewTuple(vals...)
				tuples[i] = append(tuples[i], tu)
				arrivals = append(arrivals, arrival{input: i, t: tu})
			}
		}
		rng.Shuffle(len(arrivals), func(a, b int) {
			arrivals[a], arrivals[b] = arrivals[b], arrivals[a]
		})

		want := referenceJoin(q, tuples)
		for _, dynamic := range []bool{false, true} {
			m, err := NewMJoin(Config{Query: q, Schemes: stream.NewSchemeSet(), DynamicProbeOrder: dynamic})
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, ar := range arrivals {
				outs, err := m.Push(ar.input, stream.TupleElement(ar.t))
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range outs {
					got = append(got, renderStreamed(q, o.Tuple()))
				}
			}
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d (%s k=%d dynamic=%v): streamed %d results, brute force %d",
					trial, topo, k, dynamic, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d (dynamic=%v): result %d = %s, want %s", trial, dynamic, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMJoinMatchesBruteForceWithPurging: same differential, but with a
// closed punctuated feed — purging must not change the answer even
// against the brute-force ground truth computed from all tuples.
func TestMJoinMatchesBruteForceWithPurging(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 60; trial++ {
		topo := []workload.Topology{workload.Chain, workload.Cycle, workload.Star}[rng.Intn(3)]
		k := 2 + rng.Intn(2)
		q, err := workload.SyntheticQuery(topo, k)
		if err != nil {
			t.Fatal(err)
		}
		schemes := workload.AllJoinAttrSchemes(q)
		inputs := workload.Closed(q, schemes, workload.ClosedConfig{
			Rounds: 3, TuplesPerRound: 3, Window: 2, PunctFraction: 1, Seed: rng.Int63(),
		})
		tuples := make([][]stream.Tuple, q.N())
		m, err := NewMJoin(Config{Query: q, Schemes: schemes})
		if err != nil {
			t.Fatal(err)
		}
		feed, _ := workload.NewFeed(q, inputs)
		var got []string
		if err := feed.Each(func(i int, e stream.Element) error {
			if !e.IsPunct() {
				tuples[i] = append(tuples[i], e.Tuple())
			}
			outs, err := m.Push(i, e)
			for _, o := range outs {
				if !o.IsPunct() {
					got = append(got, renderStreamed(q, o.Tuple()))
				}
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		want := referenceJoin(q, tuples)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d (%s k=%d): purged streamed join diverged from brute force (%d vs %d results)",
				trial, topo, k, len(got), len(want))
		}
		if m.Stats().TotalState() != 0 {
			t.Fatalf("trial %d: closed feed should drain", trial)
		}
	}
}
