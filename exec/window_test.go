package exec

import (
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

func TestWindowedJoinEviction(t *testing.T) {
	wj, err := NewWindowedMJoin(Config{Query: binaryQuery(t), Schemes: stream.NewSchemeSet()}, Window{Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	push := func(input int, e stream.Element) []stream.Element {
		out, err := wj.Push(input, e)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	push(0, stream.TupleElement(tup(1, 10)))
	push(0, stream.TupleElement(tup(2, 20)))
	push(0, stream.TupleElement(tup(3, 30))) // evicts K=1
	if wj.Stats().StateSize[0] != 2 || wj.Evicted[0] != 1 {
		t.Fatalf("window bookkeeping: state=%d evicted=%d", wj.Stats().StateSize[0], wj.Evicted[0])
	}
	// K=1 was evicted: its join is silently lost.
	if out := push(1, stream.TupleElement(tup(1, 100))); countTuples(out) != 0 {
		t.Fatal("evicted tuple must not join (the window's lost-result failure mode)")
	}
	// K=3 is still inside the window.
	if out := push(1, stream.TupleElement(tup(3, 300))); countTuples(out) != 1 {
		t.Fatal("in-window tuple must join")
	}
	// Punctuations are ignored (consumed only).
	push(1, stream.PunctElement(punct(3, -1)))
	if wj.Stats().StateSize[0] != 2 {
		t.Fatal("window join must not purge on punctuations")
	}
	if _, err := NewWindowedMJoin(Config{Query: binaryQuery(t)}, Window{}); err == nil {
		t.Fatal("zero window must be rejected")
	}
}

// TestWindowVsPunctuationTradeoff quantifies the §6 comparison on the
// auction workload: a window large enough never loses results but holds
// more state than punctuation purging; a small window holds less state
// but loses joins.
func TestWindowVsPunctuationTradeoff(t *testing.T) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 400, MaxBidsPerItem: 6, OpenWindow: 5,
		PunctuateItems: true, PunctuateClose: true, Seed: 11,
	})
	feedInto := func(push func(int, stream.Element) ([]stream.Element, error)) int {
		feed, err := workload.NewFeed(q, inputs)
		if err != nil {
			t.Fatal(err)
		}
		results := 0
		if err := feed.Each(func(i int, e stream.Element) error {
			outs, err := push(i, e)
			results += countTuples(outs)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return results
	}

	punctJoin, err := NewMJoin(Config{Query: q, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	exact := feedInto(punctJoin.Push)

	big, err := NewWindowedMJoin(Config{Query: q, Schemes: schemes}, Window{Rows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	bigResults := feedInto(big.Push)
	if bigResults != exact {
		t.Fatalf("unbounded window results %d != exact %d", bigResults, exact)
	}
	if big.Stats().MaxStateSize <= punctJoin.Stats().MaxStateSize {
		t.Fatalf("punctuation purging should beat the huge window on state: punct=%d window=%d",
			punctJoin.Stats().MaxStateSize, big.Stats().MaxStateSize)
	}

	small, err := NewWindowedMJoin(Config{Query: q, Schemes: schemes}, Window{Rows: 4})
	if err != nil {
		t.Fatal(err)
	}
	smallResults := feedInto(small.Push)
	if smallResults >= exact {
		t.Fatalf("tight window must lose results: window=%d exact=%d", smallResults, exact)
	}
	if small.Evicted[0]+small.Evicted[1] == 0 {
		t.Fatal("tight window must evict")
	}
}
