package exec

import "punctsafe/stream"

// State-pressure degradation: StateLimit is the hard back-stop that fails
// the query once the bounded-memory precondition (enough punctuations,
// honored promises) has demonstrably broken. SoftStateLimit is the
// graceful layer below it: crossing the watermark forces an eager purge
// round — pending lazy punctuations are applied at once and a full
// background clean-up pass runs — and reports a PressureEvent, giving the
// application a chance to shed load or repair its punctuation feed before
// the hard limit trips.

// PressureEvent describes one soft-watermark crossing.
type PressureEvent struct {
	// Operator identifies the pressured operator (its String form).
	Operator string
	// State is the stored-tuple count that crossed the watermark;
	// Relieved is the count after the forced purge round.
	State, Relieved int
	// SoftLimit and HardLimit echo the operator's configured watermarks
	// (HardLimit is 0 when no hard StateLimit is set).
	SoftLimit, HardLimit int
	// Partition identifies which replica of a partitioned query fired the
	// event (-1 on the single-tree path). The engine's split watcher uses
	// it to target skew-aware repartitioning at the hot replica.
	Partition int
	// Frozen is the number of tuples the pressure round moved into the
	// cold tier (0 with tiering off).
	Frozen int
}

// relievePressure runs the soft-watermark check after an element has been
// processed. One event fires per excursion above the watermark: the flag
// re-arms only once state falls back below SoftStateLimit, so a feed that
// stays pressured does not pay a full sweep per element.
func (m *MJoin) relievePressure(out []stream.Element) []stream.Element {
	total := m.stats.TotalState()
	if total < m.cfg.SoftStateLimit {
		m.pressured = false
		return out
	}
	if m.pressured {
		return out
	}
	m.pressured = true
	m.stats.PressureEvents++
	if len(m.pending) > 0 {
		out = m.flushPendingInto(out)
	}
	if m.stats.TotalState() >= m.cfg.SoftStateLimit {
		_, souts := m.Sweep()
		out = append(out, souts...)
	}
	frozen := 0
	if m.cfg.ColdAfter > 0 {
		// Still pressured after purging: what remains is long-lived state
		// the punctuation horizon legitimately retains. Freeze all of it so
		// the hot tier at least stops paying for it on every probe.
		froze := false
		for i, st := range m.states {
			if n := st.freezeAll(); n > 0 {
				frozen += n
				froze = true
			}
			m.stats.ColdSize[i] = st.coldSize()
		}
		if froze {
			m.stats.Freezes++
		}
	}
	if m.cfg.OnPressure != nil {
		m.cfg.OnPressure(PressureEvent{
			Operator:  m.String(),
			State:     total,
			Relieved:  m.stats.TotalState(),
			SoftLimit: m.cfg.SoftStateLimit,
			HardLimit: m.cfg.StateLimit,
			Partition: -1,
			Frozen:    frozen,
		})
	}
	return out
}
