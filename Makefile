# Standard verify entry point: `make check` (or scripts/check.sh where
# make is unavailable) runs everything CI expects to pass.

GO ?= go

.PHONY: check vet build test race bench fmt

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent layers (sharded runtime, async input) must stay
# race-clean; exec rides along because the shards drive it.
race:
	$(GO) test -race ./engine/... ./exec/...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

fmt:
	gofmt -l .
