# Standard verify entry point: `make check` (or scripts/check.sh where
# make is unavailable) runs everything CI expects to pass.

GO ?= go

.PHONY: check vet build test race racestress soakfailover fuzzseed bench benchfull benchskew benchserving benchmultiquery fmt fmtcheck

check: fmtcheck vet build test race racestress soakfailover fuzzseed

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole module must stay race-clean: the partitioned worker pools
# drive exec replicas concurrently, and everything else rides along.
race:
	$(GO) test -race ./...

# Multi-producer ingestion stress, repeated under the race detector: one
# pass rarely covers the interleavings of concurrent SendBatch producers,
# the parallel wire pipeline, and Stats/Checkpoint barriers.
racestress:
	$(GO) test -race -run TestParallelIngestStress -count 5 ./engine/

# Warm-standby failover chaos soak under the race detector: repeated
# kill -> promote -> re-seed cycles over one continuous stream, requiring
# an element-exact delivery stream and one epoch bump per promotion.
# SOAKFAILOVER_CYCLES raises the round count (default 5 here).
SOAKFAILOVER_CYCLES ?= 5
soakfailover:
	SOAKFAILOVER_CYCLES=$(SOAKFAILOVER_CYCLES) $(GO) test -race -run 'TestFailoverSoak|TestStandbyFailoverChaos' -count 1 ./server/

# Run the fuzz targets over their checked-in seed corpus: wire-format
# (truncated frames, oversized lengths, unknown streams), the serving
# handshake (bad magic, bad role, absurd name lengths), and the tiered
# join-state snapshot decoder (torn cold segments, corrupted bytes).
# `go test -fuzz` explores further; the seed set is the regression gate.
fuzzseed:
	$(GO) test -run Fuzz ./engine/... ./server/... ./exec/...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# Full hot-path benchmark pass (-benchmem, 2s per benchmark) and refresh
# of the recorded trajectory in BENCH_hotpath.json.
benchfull:
	BENCHTIME=2s scripts/bench.sh

# Adaptive state-tiering acceptance run only: cold-tier probe parity over
# long-lived state and the skew-split state bound, recorded (with
# per-name medians across repeated samples) into BENCH_tiering.json.
benchskew:
	ONLY=tiering scripts/bench.sh

# Serving-layer benchmark pass only: sustained throughput plus the
# warm-standby failover RTO row, recorded into BENCH_serving.json.
benchserving:
	ONLY=serving scripts/bench.sh

fmt:
	gofmt -l .

# Failing formatting gate: `make check` aborts if any file needs gofmt.
fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Shared-subplan multi-query benchmark pass only: view ladders per
# overlap shape, recorded (with per-name medians across repeated
# samples) into BENCH_multiquery.json.
benchmultiquery:
	ONLY=multiquery scripts/bench.sh
