package experiments

import (
	"strings"
	"testing"
)

func sample() *Table {
	return &Table{
		ID:      "EX",
		Title:   "sample",
		Columns: []string{"a", "long column"},
		Rows: [][]string{
			{"1", "x"},
			{"22222", "y"},
		},
		Notes: "note text",
	}
}

func TestTableRender(t *testing.T) {
	out := sample().Render()
	for _, want := range []string{"=== EX: sample ===", "long column", "22222", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: every data row starts at the same offset as
	// the header's second column.
	lines := strings.Split(out, "\n")
	header := lines[1]
	col2 := strings.Index(header, "long column")
	if col2 <= 0 {
		t.Fatalf("header: %q", header)
	}
	if lines[3][col2] != 'x' {
		t.Errorf("row misaligned:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	out := sample().Markdown()
	for _, want := range []string{"### EX: sample", "| a | long column |", "|---|---|", "| 22222 | y |", "note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("Markdown missing %q:\n%s", want, out)
		}
	}
}

// TestSmallScaleExperimentsHoldShape runs the cheap experiments at tiny
// scale and asserts no shape violations (the full-scale counterpart lives
// in the repository-root TestExperimentShapes).
func TestSmallScaleExperimentsHoldShape(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	for _, tb := range []*Table{
		E2ChainedPurge(),
		E3MJoinSafe(4),
		E5MultiAttr(4),
		E13Watermarks(100),
	} {
		if strings.Contains(tb.Notes, "VIOLATION") {
			t.Errorf("%s violated its shape:\n%s", tb.ID, tb.Render())
		}
	}
}
