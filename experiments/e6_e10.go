package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"punctsafe/exec"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
	"punctsafe/workload"
)

// E6TPGvsGPG reproduces the §4.3 algorithmic claim: the TPG transformation
// decides safety in polynomial time, the naive Definition-9/10 fixpoint is
// more expensive, and enumerating execution plans (what the theory lets us
// avoid) is exponential. Verdict agreement (Theorem 5) is also counted.
func E6TPGvsGPG(ns []int) *Table {
	if ns == nil {
		ns = []int{4, 8, 16, 32, 64, 96}
	}
	t := &Table{
		ID:      "E6",
		Title:   "Safety checking cost: TPG vs naive GPG vs plan enumeration (Fig. 10, §4.3)",
		Columns: []string{"streams", "TPG", "naive GPG", "plan enum", "verdicts agree"},
	}
	for _, n := range ns {
		// Clique topology: the densest case, where the naive per-stream
		// Definition-9 fixpoint is most expensive.
		q, err := workload.SyntheticQuery(workload.Clique, n)
		if err != nil {
			panic(err)
		}
		// Use a scheme set with a couple of multi-attribute schemes so the
		// generalized machinery is exercised.
		schemes := mixedSchemes(q, 77)

		tpgT := timeIt(func() { safety.Transform(q, schemes) })
		gpgT := timeIt(func() { safety.BuildGPG(q, schemes).StronglyConnected() })
		enumCell := "-"
		if n <= 8 {
			// Timed once: the exponential blowup makes repetition
			// pointless (and n=8 already takes seconds).
			start := time.Now()
			if _, err := plan.EnumerateSafe(q, schemes, nil); err != nil {
				panic(err)
			}
			enumCell = time.Since(start).String()
		}
		agree := safety.Transform(q, schemes).SingleNode() == safety.BuildGPG(q, schemes).StronglyConnected()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), tpgT.String(), gpgT.String(), enumCell, fmt.Sprint(agree),
		})
	}
	t.Notes = "shape holds when TPG <= naive GPG as n grows, plan enumeration blows up (timed once; omitted beyond n=8), and every verdict pair agrees (Theorem 5)."
	return t
}

// mixedSchemes builds a deterministic scheme set with simple schemes on
// most join attributes plus some multi-attribute schemes.
func mixedSchemes(q *query.CJQ, seed int64) *stream.SchemeSet {
	rng := rand.New(rand.NewSource(seed))
	set := stream.NewSchemeSet()
	for i := 0; i < q.N(); i++ {
		ja := q.JoinAttrs(i)
		for _, a := range ja {
			if rng.Intn(4) == 0 {
				continue // leave some attributes unpunctuated
			}
			mask := make([]bool, q.Stream(i).Arity())
			mask[a] = true
			set.Add(stream.MustScheme(q.Stream(i).Name(), mask...))
		}
		if len(ja) >= 2 && rng.Intn(2) == 0 {
			mask := make([]bool, q.Stream(i).Arity())
			mask[ja[0]], mask[ja[1]] = true, true
			set.Add(stream.MustScheme(q.Stream(i).Name(), mask...))
		}
	}
	return set
}

func timeIt(fn func()) time.Duration {
	fn() // warm-up: exclude first-call allocation effects
	const reps = 20
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / reps
}

// E7SchemeChoice reproduces §5.2 Plan Parameter I: using ALL available
// punctuation schemes vs only a MINIMAL strongly-connecting subset. All
// schemes purge data more aggressively but store more punctuations and
// pay more punctuation processing; the minimal set flips the trade-off.
func E7SchemeChoice(ks []int) *Table {
	if ks == nil {
		ks = []int{3, 4, 5}
	}
	t := &Table{
		ID:      "E7",
		Title:   "Scheme choice: all vs minimal (§5.2 Plan Parameter I)",
		Columns: []string{"streams", "scheme set", "schemes", "feed puncts", "max data state", "max punct store", "elements/ms"},
	}
	for _, k := range ks {
		q, err := workload.SyntheticQuery(workload.Cycle, k)
		if err != nil {
			panic(err)
		}
		full := workload.AllJoinAttrSchemes(q)
		minimal := workload.MinimalSchemes(q, full)
		for _, mode := range []struct {
			name string
			set  *stream.SchemeSet
		}{{"all", full}, {"minimal", minimal}} {
			inputs := workload.Closed(q, mode.set, workload.ClosedConfig{
				Rounds: 60, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 5,
			})
			m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: mode.set})
			if err != nil {
				panic(err)
			}
			feed, _ := workload.NewFeed(q, inputs)
			start := time.Now()
			if err := feed.Each(func(i int, e stream.Element) error {
				_, err := m.Push(i, e)
				return err
			}); err != nil {
				panic(err)
			}
			elapsed := time.Since(start)
			st := workload.Summarize(inputs)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(k), mode.name, fmt.Sprint(mode.set.Len()), fmt.Sprint(st.Puncts),
				fmt.Sprint(m.StatsSnapshot().MaxStateSize), fmt.Sprint(m.StatsSnapshot().MaxPunctStoreSize),
				fmt.Sprintf("%.0f", float64(len(inputs))/float64(elapsed.Milliseconds()+1)),
			})
		}
	}
	t.Notes = "shape holds when the minimal set stores fewer punctuations (and sees fewer arrive) while the full set purges data at least as aggressively (max data state <= minimal's)."
	return t
}

// E8EagerLazy reproduces §5.2 Plan Parameter II: eager purging minimizes
// state, lazy batching trades state for throughput by amortizing purge
// work.
func E8EagerLazy(batches []int) *Table {
	if batches == nil {
		batches = []int{1, 64, 1024}
	}
	t := &Table{
		ID:      "E8",
		Title:   "Purge timing: eager vs lazy (§5.2 Plan Parameter II)",
		Columns: []string{"batch", "results", "max state", "end state", "purge checks", "elements/ms"},
	}
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 20_000, MaxBidsPerItem: 8, OpenWindow: 8,
		PunctuateItems: true, PunctuateClose: true, Seed: 6,
	})
	var maxStates []int
	var resultCounts []int
	for _, batch := range batches {
		m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes, PurgeBatch: batch})
		if err != nil {
			panic(err)
		}
		feed, _ := workload.NewFeed(q, inputs)
		results := 0
		start := time.Now()
		if err := feed.Each(func(i int, e stream.Element) error {
			outs, err := m.Push(i, e)
			for _, o := range outs {
				if !o.IsPunct() {
					results++
				}
			}
			return err
		}); err != nil {
			panic(err)
		}
		m.Flush()
		elapsed := time.Since(start)
		maxStates = append(maxStates, m.StatsSnapshot().MaxStateSize)
		resultCounts = append(resultCounts, results)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(batch), fmt.Sprint(results),
			fmt.Sprint(m.StatsSnapshot().MaxStateSize), fmt.Sprint(m.StatsSnapshot().TotalState()),
			fmt.Sprint(m.StatsSnapshot().PurgeChecks),
			fmt.Sprintf("%.0f", float64(len(inputs))/float64(elapsed.Milliseconds()+1)),
		})
	}
	shapeOK := true
	for i := 1; i < len(maxStates); i++ {
		if maxStates[i] < maxStates[i-1] || resultCounts[i] != resultCounts[0] {
			shapeOK = false
		}
	}
	if shapeOK {
		t.Notes = "shape holds: max state grows monotonically with the batch size while results stay identical — the §5.2 memory-vs-purge-latency trade-off. (Throughput effects are implementation-dependent: this engine's targeted eager purge keeps per-punctuation rounds tiny, so eager is also fast here.)"
	} else {
		t.Notes = "SHAPE VIOLATION: state not monotone in batch size or results diverged."
	}
	return t
}

// E9PunctStore reproduces §5.1: without punctuation purging the store
// grows with the stream; counter-punctuation purging and lifespans bound
// it. Data state stays bounded in every mode.
func E9PunctStore(flows int) *Table {
	if flows <= 0 {
		flows = 10_000
	}
	t := &Table{
		ID:      "E9",
		Title:   "Punctuation purgeability and lifespans (§5.1)",
		Columns: []string{"mode", "max data state", "end data state", "max punct store", "end punct store"},
	}
	q := workload.NetMonQuery()
	schemes := workload.NetMonSchemes()
	inputs := workload.NetMon(workload.NetMonConfig{
		Flows: flows, MaxPktsPerFlow: 10, OpenWindow: 12,
		PunctuateFlowEnd: true, PunctuateConn: true, Seed: 7,
	})
	for _, mode := range []struct {
		name       string
		lifespan   uint64
		purgePunct bool
	}{
		{"keep forever", 0, false},
		{"counter-punct purge", 0, true},
		{"lifespan 5k", 5_000, false},
	} {
		m, err := exec.NewMJoin(exec.Config{
			Query: q, Schemes: schemes,
			PunctLifespan: mode.lifespan, PurgePunctuations: mode.purgePunct,
		})
		if err != nil {
			panic(err)
		}
		feed, _ := workload.NewFeed(q, inputs)
		if err := feed.Each(func(i int, e stream.Element) error {
			_, err := m.Push(i, e)
			return err
		}); err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			mode.name,
			fmt.Sprint(m.StatsSnapshot().MaxStateSize), fmt.Sprint(m.StatsSnapshot().TotalState()),
			fmt.Sprint(m.StatsSnapshot().MaxPunctStoreSize), fmt.Sprint(m.StatsSnapshot().TotalPunctStore()),
		})
	}
	t.Notes = "shape holds when data state is bounded in all modes while the punctuation store is bounded only under counter-punct purging (open-window sized) or lifespans (arrival-window sized)."
	return t
}

// E10CheckerScaling reproduces the §4.3 complexity claim for simple
// schemes: the checker's cost grows roughly linearly with the query size
// across topologies (each round is a linear SCC pass; simple-scheme
// queries finish in one or two rounds).
func E10CheckerScaling(ns []int) *Table {
	if ns == nil {
		ns = []int{4, 8, 16, 32, 64, 128}
	}
	t := &Table{
		ID:      "E10",
		Title:   "Safety-checker scaling on simple schemes (§4.3 linear-time claim)",
		Columns: []string{"streams", "chain", "cycle", "star", "clique"},
	}
	topos := []workload.Topology{workload.Chain, workload.Cycle, workload.Star, workload.Clique}
	for _, n := range ns {
		row := []string{fmt.Sprint(n)}
		for _, topo := range topos {
			if topo == workload.Clique && n > 64 {
				row = append(row, "-")
				continue
			}
			q, err := workload.SyntheticQuery(topo, n)
			if err != nil {
				panic(err)
			}
			schemes := workload.AllJoinAttrSchemes(q)
			d := timeIt(func() { safety.Transform(q, schemes) })
			row = append(row, d.String())
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "shape holds when per-topology time grows near-linearly in the graph size (vertices+edges; the clique's edge count is quadratic in n, so its time tracks n^2)."
	return t
}
