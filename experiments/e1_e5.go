package experiments

import (
	"fmt"

	"punctsafe/exec"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
	"punctsafe/workload"
)

// E1Auction reproduces Figure 1 / Example 1: the auction join's state
// growth with and without punctuations as the stream length grows. The
// paper's claim: with punctuations the state is bounded by the open
// auctions; without them it grows linearly and "the system will
// eventually break down".
func E1Auction(sizes []int) *Table {
	if sizes == nil {
		sizes = []int{500, 1000, 2000, 4000, 8000}
	}
	t := &Table{
		ID:      "E1",
		Title:   "Auction join state: punctuated vs unpunctuated (Fig. 1, Example 1)",
		Columns: []string{"items", "elements", "results", "max state (punct)", "end state (punct)", "max state (none)", "end state (none)"},
	}
	bounded := true
	for _, items := range sizes {
		p := runAuction(items, true)
		n := runAuction(items, false)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(items), fmt.Sprint(p.elements), fmt.Sprint(p.results),
			fmt.Sprint(p.maxState), fmt.Sprint(p.endState),
			fmt.Sprint(n.maxState), fmt.Sprint(n.endState),
		})
		if p.maxState > 64 || p.endState != 0 {
			bounded = false
		}
		if p.results != n.results {
			bounded = false
		}
	}
	if bounded {
		t.Notes = "shape holds: punctuated state bounded by the open-auction window and drains to 0; unpunctuated state grows linearly; identical results."
	} else {
		t.Notes = "SHAPE VIOLATION: punctuated state not bounded or results diverged."
	}
	return t
}

type auctionRun struct {
	elements, results, maxState, endState int
}

func runAuction(items int, punct bool) auctionRun {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: items, MaxBidsPerItem: 8, OpenWindow: 6,
		PunctuateItems: punct, PunctuateClose: punct, Seed: 1,
	})
	m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
	if err != nil {
		panic(err)
	}
	feed, err := workload.NewFeed(q, inputs)
	if err != nil {
		panic(err)
	}
	results := 0
	if err := feed.Each(func(i int, e stream.Element) error {
		outs, err := m.Push(i, e)
		for _, o := range outs {
			if !o.IsPunct() {
				results++
			}
		}
		return err
	}); err != nil {
		panic(err)
	}
	return auctionRun{
		elements: len(inputs),
		results:  results,
		maxState: m.StatsSnapshot().MaxStateSize,
		endState: m.StatsSnapshot().TotalState(),
	}
}

func fig3Chain() *query.CJQ {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	return query.NewBuilder().
		AddStream(stream.MustSchema("S1", ia("A"), ia("B"))).
		AddStream(stream.MustSchema("S2", ia("B"), ia("C"))).
		AddStream(stream.MustSchema("S3", ia("C"), ia("D"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		MustBuild()
}

func fig5Query() *query.CJQ {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	return query.NewBuilder().
		AddStream(stream.MustSchema("S1", ia("A"), ia("B"))).
		AddStream(stream.MustSchema("S2", ia("B"), ia("C"))).
		AddStream(stream.MustSchema("S3", ia("A"), ia("C"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		MustBuild()
}

func fig5Schemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
	)
}

func fig8Schemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, true),
	)
}

// E2ChainedPurge reproduces the §3.2 motivating example (Figure 3): the
// S1 tuple t=(a1,b1) purges only once the chain is covered — the (b1,*)
// punctuation from S2 plus one (ci,*) punctuation from S3 for each value
// in the joinable frontier T_t[Υ_S2]. The table walks the punctuations
// in and reports t's state after each.
func E2ChainedPurge() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Chained purge strategy on the Fig. 3 MJoin (§3.2.1)",
		Columns: []string{"event", "S1 state", "S2 state", "S3 state", "purged so far"},
	}
	q := fig3Chain()
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S3", true, false),
	)
	m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
	if err != nil {
		panic(err)
	}
	it := func(vals ...int64) stream.Tuple {
		vs := make([]stream.Value, len(vals))
		for i, v := range vals {
			vs[i] = stream.Int(v)
		}
		return stream.NewTuple(vs...)
	}
	pv := func(first bool, v int64) stream.Punctuation {
		if first {
			return stream.MustPunctuation(stream.Const(stream.Int(v)), stream.Wildcard())
		}
		return stream.MustPunctuation(stream.Wildcard(), stream.Const(stream.Int(v)))
	}
	step := func(label string, input int, e stream.Element) {
		if _, err := m.Push(input, e); err != nil {
			panic(err)
		}
		purged := uint64(0)
		for _, v := range m.StatsSnapshot().TuplesPurged {
			purged += v
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprint(m.StatsSnapshot().StateSize[0]),
			fmt.Sprint(m.StatsSnapshot().StateSize[1]),
			fmt.Sprint(m.StatsSnapshot().StateSize[2]),
			fmt.Sprint(purged),
		})
	}
	step("t=(a1,b1) on S1", 0, stream.TupleElement(it(100, 1)))
	step("(b1,c1) on S2", 1, stream.TupleElement(it(1, 7)))
	step("(b1,c2) on S2", 1, stream.TupleElement(it(1, 8)))
	step("punct (b1,*) from S2", 1, stream.PunctElement(pv(true, 1)))
	step("punct (c1,*) from S3", 2, stream.PunctElement(pv(true, 7)))
	step("punct (c2,*) from S3", 2, stream.PunctElement(pv(true, 8)))
	last := t.Rows[len(t.Rows)-1]
	if last[1] == "0" {
		t.Notes = "shape holds: t survives the S2 punctuation and the first S3 punctuation; it purges exactly when the full frontier {c1,c2} is covered."
	} else {
		t.Notes = "SHAPE VIOLATION: t not purged after full chain coverage."
	}
	return t
}

// E3MJoinSafe reproduces Figure 5 / Corollary 1 at runtime: the cyclic
// 3-way MJoin under Example 3's schemes keeps bounded state on a closed
// workload and drains completely.
func E3MJoinSafe(rounds int) *Table {
	if rounds <= 0 {
		rounds = 40
	}
	t := &Table{
		ID:      "E3",
		Title:   "Safe MJoin keeps bounded state (Fig. 5, Corollary 1)",
		Columns: []string{"rounds", "elements", "results", "max state", "end state", "tuples purged"},
	}
	q := fig5Query()
	schemes := fig5Schemes()
	for _, r := range []int{rounds / 4, rounds / 2, rounds} {
		inputs := workload.Closed(q, schemes, workload.ClosedConfig{
			Rounds: r, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 2,
		})
		m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
		if err != nil {
			panic(err)
		}
		feed, _ := workload.NewFeed(q, inputs)
		results := 0
		if err := feed.Each(func(i int, e stream.Element) error {
			outs, err := m.Push(i, e)
			for _, o := range outs {
				if !o.IsPunct() {
					results++
				}
			}
			return err
		}); err != nil {
			panic(err)
		}
		purged := uint64(0)
		for _, v := range m.StatsSnapshot().TuplesPurged {
			purged += v
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r), fmt.Sprint(len(inputs)), fmt.Sprint(results),
			fmt.Sprint(m.StatsSnapshot().MaxStateSize), fmt.Sprint(m.StatsSnapshot().TotalState()),
			fmt.Sprint(purged),
		})
	}
	t.Notes = "shape holds when max state stays flat across rounds (bounded by the round volume) and end state is 0."
	return t
}

// E4UnsafeBinaryTree reproduces Figure 7 at runtime: same query, same
// schemes, same workload — the MJoin plan drains while the binary tree's
// lower operator retains every S1 tuple.
func E4UnsafeBinaryTree(rounds int) *Table {
	if rounds <= 0 {
		rounds = 40
	}
	t := &Table{
		ID:      "E4",
		Title:   "Unsafe plan shape grows without bound (Fig. 7, Theorem 2)",
		Columns: []string{"rounds", "plan", "max state", "end state", "lower-op S1 state"},
	}
	q := fig5Query()
	schemes := fig5Schemes()
	shapes := []struct {
		name string
		node *plan.Node
	}{
		{"MJoin(S1,S2,S3)", plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))},
		{"(S1 x S2) x S3", plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))},
	}
	shapeHolds := true
	for _, r := range []int{rounds / 2, rounds} {
		inputs := workload.Closed(q, schemes, workload.ClosedConfig{
			Rounds: r, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 3,
		})
		for _, sh := range shapes {
			tree, err := exec.NewTree(exec.Config{Query: q, Schemes: schemes}, sh.node)
			if err != nil {
				panic(err)
			}
			feed, _ := workload.NewFeed(q, inputs)
			if err := feed.Each(func(i int, e stream.Element) error {
				_, err := tree.Push(i, e)
				return err
			}); err != nil {
				panic(err)
			}
			lowerS1 := "-"
			if len(tree.Operators()) > 1 {
				lowerS1 = fmt.Sprint(tree.Operators()[0].StatsSnapshot().StateSize[0])
				if tree.Operators()[0].StatsSnapshot().StateSize[0] != r*6 {
					shapeHolds = false
				}
			} else if tree.TotalState() != 0 {
				shapeHolds = false
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(r), sh.name,
				fmt.Sprint(tree.MaxState()), fmt.Sprint(tree.TotalState()), lowerS1,
			})
		}
	}
	if shapeHolds {
		t.Notes = "shape holds: the MJoin plan drains to 0; the binary tree's lower operator retains every S1 tuple (state = rounds x tuples/round), growing linearly."
	} else {
		t.Notes = "SHAPE VIOLATION: see rows."
	}
	return t
}

// E5MultiAttr reproduces Figures 8-10 at runtime: under the §4.2 scheme
// set the plain PG is not strongly connected, yet the MJoin purges all
// three states using the multi-attribute S3(+,+) punctuations.
func E5MultiAttr(rounds int) *Table {
	if rounds <= 0 {
		rounds = 40
	}
	t := &Table{
		ID:      "E5",
		Title:   "Multi-attribute schemes: GPG-safe query purges at runtime (Figs. 8-10)",
		Columns: []string{"rounds", "elements", "results", "max state", "end state", "purged S1/S2/S3"},
	}
	q := fig5Query()
	schemes := fig8Schemes()
	for _, r := range []int{rounds / 2, rounds} {
		inputs := workload.Closed(q, schemes, workload.ClosedConfig{
			Rounds: r, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 4,
		})
		m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
		if err != nil {
			panic(err)
		}
		feed, _ := workload.NewFeed(q, inputs)
		results := 0
		if err := feed.Each(func(i int, e stream.Element) error {
			outs, err := m.Push(i, e)
			for _, o := range outs {
				if !o.IsPunct() {
					results++
				}
			}
			return err
		}); err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r), fmt.Sprint(len(inputs)), fmt.Sprint(results),
			fmt.Sprint(m.StatsSnapshot().MaxStateSize), fmt.Sprint(m.StatsSnapshot().TotalState()),
			fmt.Sprintf("%d/%d/%d", m.StatsSnapshot().TuplesPurged[0], m.StatsSnapshot().TuplesPurged[1], m.StatsSnapshot().TuplesPurged[2]),
		})
	}
	t.Notes = "shape holds when every state purges (all three purge counters positive) and end state is 0 — Corollary 1 alone would have rejected this query; Theorems 3/4 admit it."
	return t
}
