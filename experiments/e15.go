package experiments

import (
	"fmt"

	"punctsafe/exec"
	"punctsafe/stream"
	"punctsafe/workload"
)

// E15PunctDelay measures the purge-latency dimension of §5.2's cost
// discussion: how the live join state scales with how promptly the
// application punctuates. A round's punctuations are delayed by D rounds;
// the state high-water mark should grow linearly in D (each live round
// holds its tuples until its punctuations arrive) while the result set
// stays identical.
func E15PunctDelay(rounds int) *Table {
	if rounds <= 0 {
		rounds = 80
	}
	t := &Table{
		ID:      "E15",
		Title:   "Purge latency: punctuation delay vs live state (§5.2)",
		Columns: []string{"delay (rounds)", "results", "max state", "end state"},
	}
	q, err := workload.SyntheticQuery(workload.Chain, 3)
	if err != nil {
		panic(err)
	}
	schemes := workload.AllJoinAttrSchemes(q)

	var maxStates []int
	baselineResults := -1
	for _, delay := range []int{0, 2, 8, 16} {
		inputs := workload.Closed(q, schemes, workload.ClosedConfig{
			Rounds: rounds, TuplesPerRound: 6, Window: 3, PunctFraction: 1,
			PunctDelay: delay, Seed: 16,
		})
		m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
		if err != nil {
			panic(err)
		}
		feed, _ := workload.NewFeed(q, inputs)
		results := 0
		if err := feed.Each(func(i int, e stream.Element) error {
			outs, err := m.Push(i, e)
			for _, o := range outs {
				if !o.IsPunct() {
					results++
				}
			}
			return err
		}); err != nil {
			panic(err)
		}
		if baselineResults < 0 {
			baselineResults = results
		}
		maxStates = append(maxStates, m.StatsSnapshot().MaxStateSize)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(delay), fmt.Sprint(results),
			fmt.Sprint(m.StatsSnapshot().MaxStateSize), fmt.Sprint(m.StatsSnapshot().TotalState()),
		})
		if results != baselineResults || m.StatsSnapshot().TotalState() != 0 {
			t.Notes = "SHAPE VIOLATION: results diverged or state did not drain."
			return t
		}
	}
	monotone := true
	for i := 1; i < len(maxStates); i++ {
		if maxStates[i] < maxStates[i-1] {
			monotone = false
		}
	}
	if monotone && maxStates[len(maxStates)-1] > 4*maxStates[0] {
		t.Notes = "shape holds: the state high-water mark grows with the punctuation delay (roughly one round-volume per delayed round) while results and final drain are unchanged."
	} else {
		t.Notes = "SHAPE VIOLATION: state not monotone in delay."
	}
	return t
}
