package experiments

import (
	"fmt"
	"time"

	"punctsafe/exec"
	"punctsafe/plan"
	"punctsafe/stream"
	"punctsafe/workload"
)

// E14PlanChoice validates the §5.2 cost model against measurement: for a
// fully punctuated 4-way chain (where several plan shapes are safe), every
// enumerated safe plan is executed on the same closed workload and its
// measured peak state and wall time are compared with the model's
// ranking. The experiment asserts the weak property a planner needs: the
// model's chosen plan is measurably no worse than the median alternative
// on state.
func E14PlanChoice(rounds int) *Table {
	if rounds <= 0 {
		rounds = 60
	}
	t := &Table{
		ID:      "E14",
		Title:   "Cost-model plan choice vs measurement (§5.2)",
		Columns: []string{"rank", "plan", "est. cost", "max state", "end state", "elapsed"},
	}
	q, err := workload.SyntheticQuery(workload.Chain, 4)
	if err != nil {
		panic(err)
	}
	schemes := workload.AllJoinAttrSchemes(q)
	model := plan.DefaultCostModel(q)
	plans, err := plan.EnumerateSafe(q, schemes, model)
	if err != nil {
		panic(err)
	}
	inputs := workload.Closed(q, schemes, workload.ClosedConfig{
		Rounds: rounds, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 15,
	})

	type measured struct {
		maxState int
		elapsed  time.Duration
	}
	var ms []measured
	for rank, p := range plans {
		tree, err := exec.NewTree(exec.Config{Query: q, Schemes: schemes}, p)
		if err != nil {
			panic(err)
		}
		feed, _ := workload.NewFeed(q, inputs)
		start := time.Now()
		if err := feed.Each(func(i int, e stream.Element) error {
			_, err := tree.Push(i, e)
			return err
		}); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		ms = append(ms, measured{maxState: tree.MaxState(), elapsed: elapsed})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(rank + 1), p.Render(q),
			fmt.Sprintf("%.1f", model.PlanCost(q, schemes, p).Total()),
			fmt.Sprint(tree.MaxState()), fmt.Sprint(tree.TotalState()),
			elapsed.Round(time.Microsecond).String(),
		})
	}
	if len(ms) < 2 {
		t.Notes = "SHAPE VIOLATION: expected several safe plans to compare."
		return t
	}
	// Weak validation: the top-ranked plan's measured peak state is at
	// most the median of all candidates'.
	states := make([]int, len(ms))
	for i, m := range ms {
		states[i] = m.maxState
	}
	median := medianInt(states)
	if ms[0].maxState <= median {
		t.Notes = fmt.Sprintf("shape holds: the model's first choice peaks at %d stored tuples, at or below the %d-plan median of %d.",
			ms[0].maxState, len(ms), median)
	} else {
		t.Notes = fmt.Sprintf("SHAPE VIOLATION: chosen plan peaks at %d, above the median %d.", ms[0].maxState, median)
	}
	return t
}

func medianInt(xs []int) int {
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
