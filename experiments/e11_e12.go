package experiments

import (
	"fmt"
	"time"

	"punctsafe/exec"
	"punctsafe/stream"
	"punctsafe/workload"
)

// E11WindowVsPunct quantifies the §2.2/§6 comparison between the two
// state-bounding mechanisms: sliding windows bound state unconditionally
// but lose joins that span more than the window, while punctuation-based
// purging is exact. The paper's related-work claim — "exploiting
// punctuations ... can further reduce the memory consumption at runtime"
// relative to windows sized for correctness — is measured directly.
func E11WindowVsPunct(items int) *Table {
	if items <= 0 {
		items = 4000
	}
	t := &Table{
		ID:      "E11",
		Title:   "Sliding windows vs punctuations (§2.2, §6)",
		Columns: []string{"mechanism", "results", "lost", "max state", "end state"},
	}
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: items, MaxBidsPerItem: 8, OpenWindow: 6,
		PunctuateItems: true, PunctuateClose: true, Seed: 12,
	})

	type pushFn func(int, stream.Element) ([]stream.Element, error)
	run := func(push pushFn) int {
		feed, err := workload.NewFeed(q, inputs)
		if err != nil {
			panic(err)
		}
		results := 0
		if err := feed.Each(func(i int, e stream.Element) error {
			outs, err := push(i, e)
			for _, o := range outs {
				if !o.IsPunct() {
					results++
				}
			}
			return err
		}); err != nil {
			panic(err)
		}
		return results
	}

	punctJoin, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
	if err != nil {
		panic(err)
	}
	exact := run(punctJoin.Push)
	t.Rows = append(t.Rows, []string{
		"punctuations", fmt.Sprint(exact), "0",
		fmt.Sprint(punctJoin.StatsSnapshot().MaxStateSize), fmt.Sprint(punctJoin.StatsSnapshot().TotalState()),
	})

	shapeOK := punctJoin.StatsSnapshot().TotalState() == 0
	lossSeen := false
	for _, rows := range []int{2, 64, 1 << 20} {
		wj, err := exec.NewWindowedMJoin(exec.Config{Query: q, Schemes: schemes}, exec.Window{Rows: rows})
		if err != nil {
			panic(err)
		}
		got := run(wj.Push)
		label := fmt.Sprintf("window rows=%d", rows)
		if rows == 1<<20 {
			label = "window rows=inf"
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprint(got), fmt.Sprint(exact - got),
			fmt.Sprint(wj.StatsSnapshot().MaxStateSize), fmt.Sprint(wj.StatsSnapshot().TotalState()),
		})
		if rows == 1<<20 {
			if got != exact || wj.StatsSnapshot().MaxStateSize <= punctJoin.StatsSnapshot().MaxStateSize {
				shapeOK = false
			}
		}
		if got < exact {
			lossSeen = true
		}
	}
	if !lossSeen {
		shapeOK = false
	}
	if shapeOK {
		t.Notes = "shape holds: only the lossless (huge) window matches the exact result count, at far larger state than punctuation purging; small windows bound state but silently lose joins."
	} else {
		t.Notes = "SHAPE VIOLATION: see rows."
	}
	return t
}

// E12Adaptive measures the §5.2 adaptive-processing extension: a policy
// that runs lazily while state is low and flips to eager at a high
// watermark should track eager's state bound at (close to) lazy's purge
// cost.
func E12Adaptive(items int) *Table {
	if items <= 0 {
		items = 10_000
	}
	t := &Table{
		ID:      "E12",
		Title:   "Adaptive purge control (§5.2 Adaptive Query Processing)",
		Columns: []string{"strategy", "results", "max state", "end state", "elements/ms", "switches"},
	}
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: items, MaxBidsPerItem: 8, OpenWindow: 8,
		PunctuateItems: true, PunctuateClose: true, Seed: 13,
	})

	run := func(push func(int, stream.Element) ([]stream.Element, error), flush func() []stream.Element) (int, float64) {
		feed, err := workload.NewFeed(q, inputs)
		if err != nil {
			panic(err)
		}
		results := 0
		start := time.Now()
		if err := feed.Each(func(i int, e stream.Element) error {
			outs, err := push(i, e)
			for _, o := range outs {
				if !o.IsPunct() {
					results++
				}
			}
			return err
		}); err != nil {
			panic(err)
		}
		if flush != nil {
			flush()
		}
		rate := float64(len(inputs)) / (float64(time.Since(start).Microseconds())/1000 + 1)
		return results, rate
	}

	var maxState [3]int
	var rate [3]float64
	for i, mode := range []struct {
		name  string
		batch int
	}{{"eager", 1}, {"lazy batch=512", 512}} {
		m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes, PurgeBatch: mode.batch})
		if err != nil {
			panic(err)
		}
		results, r := run(m.Push, m.Flush)
		maxState[i], rate[i] = m.StatsSnapshot().MaxStateSize, r
		t.Rows = append(t.Rows, []string{
			mode.name, fmt.Sprint(results),
			fmt.Sprint(m.StatsSnapshot().MaxStateSize), fmt.Sprint(m.StatsSnapshot().TotalState()),
			fmt.Sprintf("%.0f", r), "-",
		})
	}

	a, err := exec.NewAdaptiveMJoin(exec.Config{Query: q, Schemes: schemes},
		exec.AdaptivePolicy{HighWater: 96, LowWater: 24, LazyBatch: 512})
	if err != nil {
		panic(err)
	}
	results, r := run(a.Push, a.Flush)
	maxState[2], rate[2] = a.StatsSnapshot().MaxStateSize, r
	t.Rows = append(t.Rows, []string{
		"adaptive hw=96", fmt.Sprint(results),
		fmt.Sprint(a.StatsSnapshot().MaxStateSize), fmt.Sprint(a.StatsSnapshot().TotalState()),
		fmt.Sprintf("%.0f", r), fmt.Sprint(a.Switches),
	})

	// Shape: adaptive's state is capped at its high watermark, far below
	// plain lazy's peak, with identical results. (The elements/ms column
	// is informational: relative throughput between modes varies with
	// process conditions, while the state cap is structural.)
	_ = rate
	if maxState[2] < maxState[1] && maxState[2] <= 96 {
		t.Notes = "shape holds: adaptive caps state exactly at its high watermark — far below plain lazy's peak — with identical results; eager remains the state-minimal reference."
	} else {
		t.Notes = "SHAPE VIOLATION: adaptive exceeded its watermark or lazy's peak."
	}
	return t
}
