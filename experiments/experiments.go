// Package experiments implements the reproduction suite indexed in
// DESIGN.md and EXPERIMENTS.md: one function per paper artifact (figures
// 1-10 and the §4.3/§5 quantitative claims). Each function runs its
// scenario and returns a Table; cmd/punctbench prints them, the top-level
// benchmarks wrap their inner loops, and EXPERIMENTS.md records one run.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes states the shape the paper predicts and whether it held.
	Notes string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown formats the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Notes)
	}
	return b.String()
}

// All runs every experiment at its default scale, in index order.
func All() []*Table {
	return []*Table{
		E1Auction(nil),
		E2ChainedPurge(),
		E3MJoinSafe(0),
		E4UnsafeBinaryTree(0),
		E5MultiAttr(0),
		E6TPGvsGPG(nil),
		E7SchemeChoice(nil),
		E8EagerLazy(nil),
		E9PunctStore(0),
		E10CheckerScaling(nil),
		E11WindowVsPunct(0),
		E12Adaptive(0),
		E13Watermarks(0),
		E14PlanChoice(0),
		E15PunctDelay(0),
	}
}
