package experiments

import (
	"fmt"

	"punctsafe/exec"
	"punctsafe/stream"
	"punctsafe/workload"
)

// E13Watermarks measures the ordered-punctuation (heartbeat/watermark)
// extension: on an out-of-order sensor join, heartbeat punctuations
// (epoch <= T) bound the join state by the disorder window — the
// watermark behaviour modern stream engines rely on, expressed in the
// paper's punctuation-scheme framework (cf. reference [11]).
func E13Watermarks(epochs int) *Table {
	if epochs <= 0 {
		epochs = 2000
	}
	t := &Table{
		ID:      "E13",
		Title:   "Ordered punctuations (heartbeats/watermarks) bound state by disorder",
		Columns: []string{"disorder", "heartbeats", "results", "max state", "end state", "max punct store"},
	}
	q := workload.SensorQuery()
	schemes := workload.SensorSchemes()

	var maxStates []int
	baselineMax := 0
	for _, disorder := range []int{0, 2, 8, 32} {
		for _, hb := range []bool{true, false} {
			if !hb && disorder != 8 {
				continue // one baseline row is enough
			}
			inputs := workload.Sensor(workload.SensorConfig{
				Epochs: epochs, ReadingsPerEpoch: 2, Disorder: disorder,
				HeartbeatEvery: 2, Heartbeats: hb, Seed: 14,
			})
			m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
			if err != nil {
				panic(err)
			}
			feed, _ := workload.NewFeed(q, inputs)
			results := 0
			if err := feed.Each(func(i int, e stream.Element) error {
				outs, err := m.Push(i, e)
				for _, o := range outs {
					if !o.IsPunct() {
						results++
					}
				}
				return err
			}); err != nil {
				panic(err)
			}
			hbLabel := "yes"
			if !hb {
				hbLabel = "no"
				baselineMax = m.StatsSnapshot().MaxStateSize
			} else {
				maxStates = append(maxStates, m.StatsSnapshot().MaxStateSize)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(disorder), hbLabel, fmt.Sprint(results),
				fmt.Sprint(m.StatsSnapshot().MaxStateSize), fmt.Sprint(m.StatsSnapshot().TotalState()),
				fmt.Sprint(m.StatsSnapshot().MaxPunctStoreSize),
			})
		}
	}
	// Shape: watermarked max state grows with the disorder window and
	// stays far below the no-heartbeat baseline (which retains all
	// epochs); the watermark store compacts to one entry per input.
	shapeOK := baselineMax > 0
	for i := 1; i < len(maxStates); i++ {
		if maxStates[i] < maxStates[i-1] {
			shapeOK = false
		}
	}
	if len(maxStates) > 0 && maxStates[len(maxStates)-1]*4 > baselineMax {
		shapeOK = false
	}
	if shapeOK {
		t.Notes = "shape holds: with heartbeats the state high-water mark tracks the disorder window (monotone in it) and sits far below the keep-everything baseline; the compacted watermark store never exceeds one entry per input."
	} else {
		t.Notes = "SHAPE VIOLATION: see rows."
	}
	return t
}
