// Package workload generates punctuated stream workloads for the
// experiments: the paper's online-auction scenario (Example 1), a
// network-monitoring scenario with multi-attribute punctuation schemes
// and lifespans (§4.2, §5.1), and synthetic k-way queries (chain, cycle,
// star, clique) with closed-world workloads whose every value is
// eventually punctuated. The paper reports no testbed of its own, so
// these generators parameterize exactly the scenarios its examples
// describe.
package workload

import (
	"fmt"

	"punctsafe/query"
	"punctsafe/stream"
)

// Input is one element of a named raw stream, in global arrival order.
type Input struct {
	Stream string
	Elem   stream.Element
}

// Feed routes a generated input list into any consumer keyed by stream
// index (e.g. an exec.Tree). The mapping is resolved once against q.
type Feed struct {
	inputs []Input
	index  map[string]int
}

// NewFeed resolves the inputs' stream names against the query.
func NewFeed(q *query.CJQ, inputs []Input) (*Feed, error) {
	f := &Feed{inputs: inputs, index: make(map[string]int)}
	for i := 0; i < q.N(); i++ {
		f.index[q.Stream(i).Name()] = i
	}
	for _, in := range inputs {
		if _, ok := f.index[in.Stream]; !ok {
			return nil, fmt.Errorf("workload: input references unknown stream %q", in.Stream)
		}
	}
	return f, nil
}

// Len returns the number of inputs.
func (f *Feed) Len() int { return len(f.inputs) }

// Each invokes fn for every input with its resolved stream index.
func (f *Feed) Each(fn func(streamIdx int, e stream.Element) error) error {
	for _, in := range f.inputs {
		if err := fn(f.index[in.Stream], in.Elem); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a generated workload.
type Stats struct {
	Tuples int
	Puncts int
}

// Summarize counts tuples and punctuations in an input list.
func Summarize(inputs []Input) Stats {
	var s Stats
	for _, in := range inputs {
		if in.Elem.IsPunct() {
			s.Puncts++
		} else {
			s.Tuples++
		}
	}
	return s
}
