package workload

import (
	"fmt"
	"math/rand"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

// Topology names a synthetic k-way join shape.
type Topology string

const (
	// Chain joins S0-S1-...-Sk-1 linearly.
	Chain Topology = "chain"
	// Cycle closes the chain back to S0.
	Cycle Topology = "cycle"
	// Star joins S1..Sk-1 each to the hub S0.
	Star Topology = "star"
	// Clique joins every pair of streams.
	Clique Topology = "clique"
)

// SyntheticQuery builds a k-way join query with the given topology. Each
// stream Si has integer attributes; attribute names encode the linked
// pair so predicates are easy to read (e.g. chain predicate i<->i+1 joins
// Si.R with Si+1.L).
func SyntheticQuery(topo Topology, k int) (*query.CJQ, error) {
	if k < 2 {
		return nil, fmt.Errorf("workload: synthetic query needs k >= 2, got %d", k)
	}
	type pair struct{ a, b int }
	var pairs []pair
	switch topo {
	case Chain:
		for i := 0; i+1 < k; i++ {
			pairs = append(pairs, pair{i, i + 1})
		}
	case Cycle:
		for i := 0; i+1 < k; i++ {
			pairs = append(pairs, pair{i, i + 1})
		}
		if k > 2 {
			pairs = append(pairs, pair{k - 1, 0})
		}
	case Star:
		for i := 1; i < k; i++ {
			pairs = append(pairs, pair{0, i})
		}
	case Clique:
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				pairs = append(pairs, pair{i, j})
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown topology %q", topo)
	}

	// Attribute layout: stream i gets one attribute per incident pair
	// (named jNM for the pair SN-SM) plus a payload attribute.
	attrsOf := make([][]stream.Attribute, k)
	attrPos := make(map[[2]int]int) // (stream, pairIdx) -> attr position... keyed below
	pos := func(s, p int) int { return attrPos[[2]int{s, p}] }
	for pi, pr := range pairs {
		for _, s := range []int{pr.a, pr.b} {
			attrPos[[2]int{s, pi}] = len(attrsOf[s])
			attrsOf[s] = append(attrsOf[s], stream.Attribute{
				Name: fmt.Sprintf("j%d_%d", pr.a, pr.b),
				Kind: stream.KindInt,
			})
		}
	}
	schemas := make([]*stream.Schema, k)
	for i := 0; i < k; i++ {
		attrs := append(attrsOf[i], stream.Attribute{Name: "payload", Kind: stream.KindInt})
		var err error
		schemas[i], err = stream.NewSchema(fmt.Sprintf("S%d", i), attrs...)
		if err != nil {
			return nil, err
		}
	}
	var preds []query.Predicate
	for pi, pr := range pairs {
		preds = append(preds, query.Predicate{
			Left: pr.a, LeftAttr: pos(pr.a, pi),
			Right: pr.b, RightAttr: pos(pr.b, pi),
		})
	}
	return query.NewCJQ(schemas, preds)
}

// AllJoinAttrSchemes returns one simple scheme per (stream, join
// attribute) of the query — the richest useful scheme set (§5.2 Plan
// Parameter I, option (a)).
func AllJoinAttrSchemes(q *query.CJQ) *stream.SchemeSet {
	set := stream.NewSchemeSet()
	for i := 0; i < q.N(); i++ {
		for _, a := range q.JoinAttrs(i) {
			mask := make([]bool, q.Stream(i).Arity())
			mask[a] = true
			set.Add(stream.MustScheme(q.Stream(i).Name(), mask...))
		}
	}
	return set
}

// MinimalSchemes greedily drops schemes from the given set while the
// query stays safe, returning a minimal subset that keeps the punctuation
// graph strongly connected (§5.2 Plan Parameter I, option (b)). The
// result depends on iteration order but is always a safe subset.
func MinimalSchemes(q *query.CJQ, set *stream.SchemeSet) *stream.SchemeSet {
	current := set.All()
	for i := 0; i < len(current); i++ {
		trial := make([]stream.Scheme, 0, len(current)-1)
		trial = append(trial, current[:i]...)
		trial = append(trial, current[i+1:]...)
		if safety.Transform(q, stream.NewSchemeSet(trial...)).SingleNode() {
			current = trial
			i--
		}
	}
	return stream.NewSchemeSet(current...)
}

// ClosedConfig parameterizes a closed-world synthetic workload: tuples
// draw their join values from a sliding per-round window, and at the end
// of each round a fraction of the window's values is punctuated on every
// usable scheme, so purgeable state drains as rounds advance.
type ClosedConfig struct {
	// Rounds is the number of generation rounds.
	Rounds int
	// TuplesPerRound is the number of tuples emitted per stream per round.
	TuplesPerRound int
	// Window is the number of distinct join values live within a round.
	Window int
	// PunctFraction in [0,1] is the fraction of a round's values closed
	// by punctuations at round end (1 = closed world, 0 = no punctuation).
	PunctFraction float64
	// ZipfS, when > 1, skews the per-round value choice with a Zipf(s)
	// distribution (hot values drawn far more often); 0 keeps the uniform
	// draw.
	ZipfS float64
	// PunctDelay postpones a round's punctuations by this many rounds
	// (they are emitted after the tuples of round r+PunctDelay). Larger
	// delays lengthen the purge latency and thus the live state (the
	// "punctuation arrival rate" dimension of §5.2's cost discussion).
	PunctDelay int
	// Seed drives the deterministic generator.
	Seed int64
}

// Closed generates the workload for a synthetic query under the given
// scheme set. Join values are assigned per attribute-equivalence-class
// (attributes linked by predicates share a value domain), so results
// actually join; punctuations instantiate every scheme in the set over
// the closed values.
func Closed(q *query.CJQ, schemes *stream.SchemeSet, cfg ClosedConfig) []Input {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 10
	}
	if cfg.TuplesPerRound <= 0 {
		cfg.TuplesPerRound = 10
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	class := attrClasses(q)

	gpg := safety.BuildGPG(q, schemes)
	useful := gpg.UsefulSchemes()

	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Window-1))
	}

	var out []Input
	payload := int64(0)
	for r := 0; r < cfg.Rounds; r++ {
		base := int64(r * cfg.Window)
		pick := func() int64 {
			if zipf != nil {
				return base + int64(zipf.Uint64())
			}
			return base + int64(rng.Intn(cfg.Window))
		}
		for k := 0; k < cfg.TuplesPerRound; k++ {
			for i := 0; i < q.N(); i++ {
				sc := q.Stream(i)
				vals := make([]stream.Value, sc.Arity())
				for a := 0; a < sc.Arity(); a++ {
					if class[[2]int{i, a}] >= 0 {
						vals[a] = stream.Int(pick())
						continue
					}
					payload++
					switch sc.Attr(a).Kind {
					case stream.KindInt:
						vals[a] = stream.Int(payload)
					case stream.KindFloat:
						vals[a] = stream.Float(float64(payload))
					default:
						vals[a] = stream.Str(fmt.Sprintf("p%d", payload))
					}
				}
				out = append(out, Input{Stream: sc.Name(), Elem: stream.TupleElement(stream.NewTuple(vals...))})
			}
		}
		// Close the delayed round: punctuate a fraction of its window's
		// values on every useful scheme. Multi-attribute schemes get the
		// full product of closed values.
		closeRound := r - cfg.PunctDelay
		if closeRound >= 0 {
			out = append(out, closePunctuations(useful, closeRound, cfg)...)
		}
	}
	// Flush the delayed tail so the workload stays closed.
	for r := cfg.Rounds - cfg.PunctDelay; r < cfg.Rounds; r++ {
		if r >= 0 {
			out = append(out, closePunctuations(useful, r, cfg)...)
		}
	}
	return out
}

// closePunctuations emits the punctuations closing one round's window.
func closePunctuations(useful []stream.Scheme, round int, cfg ClosedConfig) []Input {
	base := int64(round * cfg.Window)
	closeCount := int(float64(cfg.Window)*cfg.PunctFraction + 0.5)
	var out []Input
	for _, s := range useful {
		idx := s.PunctuatableIndexes()
		var emit func(d int, consts []stream.Value)
		emit = func(d int, consts []stream.Value) {
			if d == len(idx) {
				p, err := s.Instantiate(consts...)
				if err != nil {
					panic(err)
				}
				out = append(out, Input{Stream: s.Stream, Elem: stream.PunctElement(p)})
				return
			}
			for w := 0; w < closeCount; w++ {
				emit(d+1, append(consts, stream.Int(base+int64(w))))
			}
		}
		emit(0, nil)
	}
	return out
}

// attrClasses assigns every (stream, attr) pair linked by some predicate
// to an equivalence class id (>= 0); non-join attributes get -1.
func attrClasses(q *query.CJQ) map[[2]int]int {
	parent := make(map[[2]int][2]int)
	var find func(x [2]int) [2]int
	find = func(x [2]int) [2]int {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b [2]int) {
		parent[find(a)] = find(b)
	}
	for _, p := range q.Predicates() {
		l := [2]int{p.Left, p.LeftAttr}
		r := [2]int{p.Right, p.RightAttr}
		if _, ok := parent[l]; !ok {
			parent[l] = l
		}
		if _, ok := parent[r]; !ok {
			parent[r] = r
		}
		union(l, r)
	}
	class := make(map[[2]int]int)
	roots := make(map[[2]int]int)
	for i := 0; i < q.N(); i++ {
		for a := 0; a < q.Stream(i).Arity(); a++ {
			key := [2]int{i, a}
			if _, ok := parent[key]; !ok {
				class[key] = -1
				continue
			}
			root := find(key)
			id, ok := roots[root]
			if !ok {
				id = len(roots)
				roots[root] = id
			}
			class[key] = id
		}
	}
	return class
}
