package workload

import (
	"math/rand"

	"punctsafe/query"
	"punctsafe/stream"
)

// NetMonConfig parameterizes the network-monitoring scenario sketched in
// §5.1: a conn stream announces transmissions (source address, port) and
// a pkt stream carries their packets; the continuous query correlates
// packets with their connection by joining on BOTH src and port
// (conjunctive predicates). The application emits an end-of-transmission
// punctuation on (src, port) — a punctuation scheme with TWO punctuatable
// attributes, the §4.2 case — and, because port/sequence spaces wrap
// around, such punctuations only hold for a limited lifespan.
type NetMonConfig struct {
	// Flows is the number of transmissions generated.
	Flows int
	// MaxPktsPerFlow bounds the packets per transmission.
	MaxPktsPerFlow int
	// OpenWindow is the number of concurrently active transmissions.
	OpenWindow int
	// PunctuateFlowEnd emits the (src, port) end-of-transmission
	// punctuation on the pkt stream when a flow completes.
	PunctuateFlowEnd bool
	// PunctuateConn emits a conn-stream punctuation on (src, port) right
	// after the conn tuple (each transmission is announced exactly once).
	PunctuateConn bool
	// Seed drives the deterministic generator.
	Seed int64
}

// NetMonSchemas returns the conn and pkt schemas.
func NetMonSchemas() (conn, pkt *stream.Schema) {
	conn = stream.MustSchema("conn",
		stream.Attribute{Name: "src", Kind: stream.KindInt},
		stream.Attribute{Name: "port", Kind: stream.KindInt},
		stream.Attribute{Name: "proto", Kind: stream.KindString})
	pkt = stream.MustSchema("pkt",
		stream.Attribute{Name: "src", Kind: stream.KindInt},
		stream.Attribute{Name: "port", Kind: stream.KindInt},
		stream.Attribute{Name: "bytes", Kind: stream.KindInt})
	return conn, pkt
}

// NetMonQuery joins conn and pkt on src AND port.
func NetMonQuery() *query.CJQ {
	conn, pkt := NetMonSchemas()
	return query.NewBuilder().
		AddStream(conn).AddStream(pkt).
		JoinOn("conn", "pkt", "src").
		JoinOn("conn", "pkt", "port").
		MustBuild()
}

// NetMonSchemes returns the multi-attribute scheme set: both streams
// punctuate (src, port) pairs.
func NetMonSchemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("conn", true, true, false),
		stream.MustScheme("pkt", true, true, false),
	)
}

// NetMon generates the interleaved conn/pkt feed.
func NetMon(cfg NetMonConfig) []Input {
	if cfg.Flows <= 0 {
		cfg.Flows = 100
	}
	if cfg.MaxPktsPerFlow <= 0 {
		cfg.MaxPktsPerFlow = 10
	}
	if cfg.OpenWindow <= 0 {
		cfg.OpenWindow = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type flow struct {
		src, port int64
		pending   int
	}
	var open []flow
	var out []Input
	started := 0

	pairPunct := func(streamName string, src, port int64) Input {
		return Input{Stream: streamName, Elem: stream.PunctElement(stream.MustPunctuation(
			stream.Const(stream.Int(src)), stream.Const(stream.Int(port)), stream.Wildcard(),
		))}
	}

	for started < cfg.Flows || len(open) > 0 {
		for len(open) < cfg.OpenWindow && started < cfg.Flows {
			f := flow{
				src:     int64(10_000 + started),
				port:    int64(1024 + rng.Intn(64512)),
				pending: 1 + rng.Intn(cfg.MaxPktsPerFlow),
			}
			started++
			open = append(open, f)
			proto := "tcp"
			if rng.Intn(4) == 0 {
				proto = "udp"
			}
			out = append(out, Input{Stream: "conn", Elem: stream.TupleElement(stream.NewTuple(
				stream.Int(f.src), stream.Int(f.port), stream.Str(proto),
			))})
			if cfg.PunctuateConn {
				out = append(out, pairPunct("conn", f.src, f.port))
			}
		}
		i := rng.Intn(len(open))
		f := &open[i]
		out = append(out, Input{Stream: "pkt", Elem: stream.TupleElement(stream.NewTuple(
			stream.Int(f.src), stream.Int(f.port), stream.Int(64+rng.Int63n(1400)),
		))})
		f.pending--
		if f.pending <= 0 {
			if cfg.PunctuateFlowEnd {
				out = append(out, pairPunct("pkt", f.src, f.port))
			}
			open = append(open[:i], open[i+1:]...)
		}
	}
	return out
}
