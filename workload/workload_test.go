package workload

import (
	"testing"

	"punctsafe/exec"
	"punctsafe/safety"
	"punctsafe/stream"
)

// TestAuctionGeneratorInvariants: items are unique, every bid references
// an already-posted item, and punctuation promises are honored (no bid
// for an item after its close punctuation; no item after its item
// punctuation).
func TestAuctionGeneratorInvariants(t *testing.T) {
	inputs := Auction(AuctionConfig{
		Items: 300, MaxBidsPerItem: 7, OpenWindow: 6,
		PunctuateItems: true, PunctuateClose: true, Seed: 5,
	})
	itemsSeen := make(map[int64]bool)
	itemPunct := make(map[int64]bool)
	bidClosed := make(map[int64]bool)
	for _, in := range inputs {
		switch {
		case in.Stream == "item" && !in.Elem.IsPunct():
			id := in.Elem.Tuple().Values[1].AsInt()
			if itemsSeen[id] {
				t.Fatalf("duplicate itemid %d", id)
			}
			if itemPunct[id] {
				t.Fatalf("item %d arrived after its punctuation", id)
			}
			itemsSeen[id] = true
		case in.Stream == "item":
			itemPunct[in.Elem.Punct().Patterns[1].Value().AsInt()] = true
		case in.Stream == "bid" && !in.Elem.IsPunct():
			id := in.Elem.Tuple().Values[1].AsInt()
			if !itemsSeen[id] {
				t.Fatalf("bid for unposted item %d", id)
			}
			if bidClosed[id] {
				t.Fatalf("bid for item %d after its close punctuation", id)
			}
		case in.Stream == "bid":
			bidClosed[in.Elem.Punct().Patterns[1].Value().AsInt()] = true
		}
	}
	if len(itemsSeen) != 300 {
		t.Fatalf("items generated = %d", len(itemsSeen))
	}
	if len(bidClosed) != 300 {
		t.Fatalf("auctions closed = %d, want all", len(bidClosed))
	}
	// Determinism: same seed, same workload.
	again := Auction(AuctionConfig{
		Items: 300, MaxBidsPerItem: 7, OpenWindow: 6,
		PunctuateItems: true, PunctuateClose: true, Seed: 5,
	})
	if len(again) != len(inputs) {
		t.Fatal("generator must be deterministic per seed")
	}
}

// TestNetMonGeneratorInvariants: packets only for announced flows, none
// after the flow-end punctuation.
func TestNetMonGeneratorInvariants(t *testing.T) {
	inputs := NetMon(NetMonConfig{
		Flows: 200, MaxPktsPerFlow: 9, OpenWindow: 7,
		PunctuateFlowEnd: true, PunctuateConn: true, Seed: 3,
	})
	type key struct{ src, port int64 }
	announced := make(map[key]bool)
	ended := make(map[key]bool)
	pkts := 0
	for _, in := range inputs {
		switch {
		case in.Stream == "conn" && !in.Elem.IsPunct():
			tu := in.Elem.Tuple()
			announced[key{tu.Values[0].AsInt(), tu.Values[1].AsInt()}] = true
		case in.Stream == "pkt" && !in.Elem.IsPunct():
			tu := in.Elem.Tuple()
			k := key{tu.Values[0].AsInt(), tu.Values[1].AsInt()}
			if !announced[k] {
				t.Fatalf("packet for unannounced flow %v", k)
			}
			if ended[k] {
				t.Fatalf("packet after end punctuation for %v", k)
			}
			pkts++
		case in.Stream == "pkt":
			p := in.Elem.Punct()
			ended[key{p.Patterns[0].Value().AsInt(), p.Patterns[1].Value().AsInt()}] = true
		}
	}
	if len(ended) != 200 {
		t.Fatalf("flows ended = %d, want all", len(ended))
	}
	if pkts == 0 {
		t.Fatal("no packets generated")
	}
}

// TestSyntheticTopologies: each topology builds the expected shape and is
// safe under the all-join-attrs scheme set.
func TestSyntheticTopologies(t *testing.T) {
	cases := []struct {
		topo  Topology
		k     int
		preds int
	}{
		{Chain, 4, 3},
		{Cycle, 4, 4},
		{Star, 5, 4},
		{Clique, 4, 6},
	}
	for _, c := range cases {
		q, err := SyntheticQuery(c.topo, c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.topo, err)
		}
		if q.N() != c.k || len(q.Predicates()) != c.preds {
			t.Fatalf("%s: n=%d preds=%d, want n=%d preds=%d",
				c.topo, q.N(), len(q.Predicates()), c.k, c.preds)
		}
		set := AllJoinAttrSchemes(q)
		if !safety.Transform(q, set).SingleNode() {
			t.Fatalf("%s fully punctuated must be safe", c.topo)
		}
		minimal := MinimalSchemes(q, set)
		if !safety.Transform(q, minimal).SingleNode() {
			t.Fatalf("%s minimal scheme set must stay safe", c.topo)
		}
		if minimal.Len() > set.Len() {
			t.Fatalf("%s minimal %d > full %d", c.topo, minimal.Len(), set.Len())
		}
		// Dropping any one scheme from the minimal set must break safety.
		all := minimal.All()
		for i := range all {
			trial := append(append([]stream.Scheme(nil), all[:i]...), all[i+1:]...)
			if safety.Transform(q, stream.NewSchemeSet(trial...)).SingleNode() {
				t.Fatalf("%s: minimal set is not minimal (scheme %s removable)", c.topo, all[i])
			}
		}
	}
	if _, err := SyntheticQuery(Chain, 1); err == nil {
		t.Error("k=1 must fail")
	}
	if _, err := SyntheticQuery("pentagram", 4); err == nil {
		t.Error("unknown topology must fail")
	}
}

// TestClosedWorkloadDrains: a fully punctuated closed workload drains the
// MJoin over every topology.
func TestClosedWorkloadDrains(t *testing.T) {
	for _, topo := range []Topology{Chain, Cycle, Star} {
		q, err := SyntheticQuery(topo, 3)
		if err != nil {
			t.Fatal(err)
		}
		schemes := AllJoinAttrSchemes(q)
		inputs := Closed(q, schemes, ClosedConfig{Rounds: 6, TuplesPerRound: 4, Window: 3, PunctFraction: 1, Seed: 9})
		feed, err := NewFeed(q, inputs)
		if err != nil {
			t.Fatal(err)
		}
		m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
		if err != nil {
			t.Fatal(err)
		}
		results := 0
		err = feed.Each(func(i int, e stream.Element) error {
			outs, err := m.Push(i, e)
			for _, o := range outs {
				if !o.IsPunct() {
					results++
				}
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.StatsSnapshot().TotalState(); got != 0 {
			t.Errorf("%s: state should drain, has %d (stats %s)", topo, got, m.StatsSnapshot())
		}
		if results == 0 {
			t.Errorf("%s: workload produced no results; generator broken", topo)
		}
	}
}

// TestClosedWorkloadPartialPunctuation: with PunctFraction=0 nothing is
// punctuated and nothing purges.
func TestClosedWorkloadPartialPunctuation(t *testing.T) {
	q, err := SyntheticQuery(Chain, 3)
	if err != nil {
		t.Fatal(err)
	}
	schemes := AllJoinAttrSchemes(q)
	inputs := Closed(q, schemes, ClosedConfig{Rounds: 5, TuplesPerRound: 3, Window: 2, PunctFraction: 0, Seed: 1})
	if s := Summarize(inputs); s.Puncts != 0 || s.Tuples != 5*3*3 {
		t.Fatalf("summary = %+v", s)
	}
	full := Closed(q, schemes, ClosedConfig{Rounds: 5, TuplesPerRound: 3, Window: 2, PunctFraction: 1, Seed: 1})
	if s := Summarize(full); s.Puncts == 0 {
		t.Fatalf("full workload must punctuate, summary = %+v", s)
	}
}

// TestFeedRejectsUnknownStream.
func TestFeedRejectsUnknownStream(t *testing.T) {
	q := AuctionQuery()
	_, err := NewFeed(q, []Input{{Stream: "nope", Elem: stream.TupleElement(stream.NewTuple(stream.Int(1)))}})
	if err == nil {
		t.Fatal("unknown stream must be rejected")
	}
}
