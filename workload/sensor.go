package workload

import (
	"math/rand"

	"punctsafe/query"
	"punctsafe/stream"
)

// SensorConfig parameterizes the heartbeat/watermark scenario (the
// ordered-punctuation extension; cf. Srivastava & Widom's heartbeats,
// the paper's reference [11]): two sensor streams produce readings
// stamped with an epoch, arriving out of order within a bounded disorder
// window; the continuous query correlates readings of the same epoch.
// Periodically each source emits a heartbeat punctuation (epoch <= T),
// promising that every epoch at or below T is complete.
type SensorConfig struct {
	// Epochs is the number of logical epochs generated.
	Epochs int
	// ReadingsPerEpoch is the number of readings per stream per epoch.
	ReadingsPerEpoch int
	// Disorder is the maximum number of epochs a reading can arrive late.
	Disorder int
	// HeartbeatEvery emits a heartbeat after this many epochs (0 = every
	// epoch).
	HeartbeatEvery int
	// Heartbeats disables heartbeat emission when false (the unbounded
	// baseline).
	Heartbeats bool
	// Seed drives the deterministic generator.
	Seed int64
}

// SensorSchemas returns the two sensor stream schemas.
func SensorSchemas() (temp, humid *stream.Schema) {
	temp = stream.MustSchema("temp",
		stream.Attribute{Name: "epoch", Kind: stream.KindInt},
		stream.Attribute{Name: "celsius", Kind: stream.KindFloat})
	humid = stream.MustSchema("humid",
		stream.Attribute{Name: "epoch", Kind: stream.KindInt},
		stream.Attribute{Name: "percent", Kind: stream.KindFloat})
	return temp, humid
}

// SensorQuery joins the two sensor streams on epoch.
func SensorQuery() *query.CJQ {
	temp, humid := SensorSchemas()
	return query.NewBuilder().
		AddStream(temp).AddStream(humid).
		JoinOn("temp", "humid", "epoch").
		MustBuild()
}

// SensorSchemes returns the watermark scheme set: both streams carry
// ordered punctuations on epoch.
func SensorSchemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustOrderedScheme("temp", []bool{true, false}, []bool{true, false}),
		stream.MustOrderedScheme("humid", []bool{true, false}, []bool{true, false}),
	)
}

// Sensor generates the out-of-order reading feed with heartbeats. The
// heartbeat bound trails the generation epoch by the disorder window, so
// the promise holds by construction: a reading for epoch e is emitted no
// later than generation step e+Disorder, and the heartbeat at step g
// covers epochs <= g-Disorder-1.
func Sensor(cfg SensorConfig) []Input {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	if cfg.ReadingsPerEpoch <= 0 {
		cfg.ReadingsPerEpoch = 2
	}
	if cfg.Disorder < 0 {
		cfg.Disorder = 0
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// pending[s] holds generated readings not yet emitted, shuffled into
	// the future by at most Disorder steps.
	type reading struct {
		stream string
		emitAt int
		tuple  stream.Tuple
	}
	var pendings []reading
	for e := 0; e < cfg.Epochs; e++ {
		for r := 0; r < cfg.ReadingsPerEpoch; r++ {
			delayT := 0
			delayH := 0
			if cfg.Disorder > 0 {
				delayT = rng.Intn(cfg.Disorder + 1)
				delayH = rng.Intn(cfg.Disorder + 1)
			}
			pendings = append(pendings,
				reading{stream: "temp", emitAt: e + delayT, tuple: stream.NewTuple(
					stream.Int(int64(e)), stream.Float(15+10*rng.Float64()))},
				reading{stream: "humid", emitAt: e + delayH, tuple: stream.NewTuple(
					stream.Int(int64(e)), stream.Float(30+40*rng.Float64()))},
			)
		}
	}

	heartbeat := func(bound int64) stream.Punctuation {
		return stream.MustPunctuation(stream.Leq(stream.Int(bound)), stream.Wildcard())
	}

	var out []Input
	lastStep := cfg.Epochs - 1 + cfg.Disorder
	for step := 0; step <= lastStep; step++ {
		for _, r := range pendings {
			if r.emitAt == step {
				out = append(out, Input{Stream: r.stream, Elem: stream.TupleElement(r.tuple)})
			}
		}
		if cfg.Heartbeats && step%cfg.HeartbeatEvery == 0 {
			bound := int64(step - cfg.Disorder - 1)
			if bound >= 0 {
				out = append(out,
					Input{Stream: "temp", Elem: stream.PunctElement(heartbeat(bound))},
					Input{Stream: "humid", Elem: stream.PunctElement(heartbeat(bound))},
				)
			}
		}
	}
	if cfg.Heartbeats {
		// Final heartbeats close every epoch.
		out = append(out,
			Input{Stream: "temp", Elem: stream.PunctElement(heartbeat(int64(cfg.Epochs - 1)))},
			Input{Stream: "humid", Elem: stream.PunctElement(heartbeat(int64(cfg.Epochs - 1)))},
		)
	}
	return out
}
