package workload

import (
	"fmt"
	"math/rand"

	"punctsafe/query"
	"punctsafe/stream"
)

// AuctionConfig parameterizes the online-auction scenario of Example 1:
// sellers post items, buyers post bids, and the continuous query joins
// the two streams on itemid.
type AuctionConfig struct {
	// Items is the total number of auctioned items.
	Items int
	// MaxBidsPerItem bounds the bids drawn (uniformly in [1, max]) for
	// each item.
	MaxBidsPerItem int
	// OpenWindow is the number of auctions open concurrently: an item's
	// bids interleave with those of the next OpenWindow-1 items, and its
	// auction closes (bid punctuation) once it leaves the window.
	OpenWindow int
	// PunctuateItems, when true, emits an item-stream punctuation on
	// itemid right after each item tuple (each itemid is unique in the
	// item stream, so the promise holds by construction).
	PunctuateItems bool
	// PunctuateClose, when true, emits a bid-stream punctuation on itemid
	// when an auction closes ("no more bids for item X").
	PunctuateClose bool
	// Skew, when > 0, draws each auction's bid count from a Zipf
	// distribution with exponent 1+Skew over [1, 64*MaxBidsPerItem]
	// instead of uniformly over [1, MaxBidsPerItem]: most auctions see a
	// bid or two while a few heavy hitters soak up hundreds, so the join
	// state concentrates on a handful of itemids. This is the adversarial
	// feed for skew-aware repartitioning — hash-partitioned replicas
	// inherit the key skew as replica skew. Heavy auctions always run to
	// their full bid count (no random force-close under skew).
	Skew float64
	// Seed drives the deterministic generator.
	Seed int64
}

// AuctionSchemas returns the item and bid schemas of Example 1.
func AuctionSchemas() (item, bid *stream.Schema) {
	item = stream.MustSchema("item",
		stream.Attribute{Name: "sellerid", Kind: stream.KindInt},
		stream.Attribute{Name: "itemid", Kind: stream.KindInt},
		stream.Attribute{Name: "name", Kind: stream.KindString},
		stream.Attribute{Name: "initialprice", Kind: stream.KindFloat})
	bid = stream.MustSchema("bid",
		stream.Attribute{Name: "bidderid", Kind: stream.KindInt},
		stream.Attribute{Name: "itemid", Kind: stream.KindInt},
		stream.Attribute{Name: "increase", Kind: stream.KindFloat})
	return item, bid
}

// AuctionQuery returns the Example 1 continuous join query
// item ⨝_itemid bid.
func AuctionQuery() *query.CJQ {
	item, bid := AuctionSchemas()
	return query.NewBuilder().
		AddStream(item).AddStream(bid).
		JoinOn("item", "bid", "itemid").
		MustBuild()
}

// AuctionSchemes returns the scheme set the scenario supports: item
// punctuates itemid (unique ids) and bid punctuates itemid (auction
// close).
func AuctionSchemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("item", false, true, false, false),
		stream.MustScheme("bid", false, true, false),
	)
}

// Auction generates the interleaved item/bid/punctuation feed.
func Auction(cfg AuctionConfig) []Input {
	if cfg.Items <= 0 {
		cfg.Items = 100
	}
	if cfg.MaxBidsPerItem <= 0 {
		cfg.MaxBidsPerItem = 8
	}
	if cfg.OpenWindow <= 0 {
		cfg.OpenWindow = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Skew > 0 {
		zipf = rand.NewZipf(rng, 1+cfg.Skew, 1, uint64(cfg.MaxBidsPerItem)*64)
	}

	type openAuction struct {
		itemid  int64
		pending int
	}
	var open []openAuction
	var out []Input
	nextItem := int64(0)

	emitItem := func() {
		id := nextItem
		nextItem++
		out = append(out, Input{Stream: "item", Elem: stream.TupleElement(stream.NewTuple(
			stream.Int(rng.Int63n(1000)),
			stream.Int(id),
			stream.Str(fmt.Sprintf("item-%d", id)),
			stream.Float(float64(1+rng.Intn(100))),
		))})
		if cfg.PunctuateItems {
			out = append(out, Input{Stream: "item", Elem: stream.PunctElement(stream.MustPunctuation(
				stream.Wildcard(), stream.Const(stream.Int(id)), stream.Wildcard(), stream.Wildcard(),
			))})
		}
		pending := 1 + rng.Intn(cfg.MaxBidsPerItem)
		if zipf != nil {
			pending = 1 + int(zipf.Uint64())
		}
		open = append(open, openAuction{itemid: id, pending: pending})
	}
	closeOldest := func() {
		a := open[0]
		open = open[1:]
		if cfg.PunctuateClose {
			out = append(out, Input{Stream: "bid", Elem: stream.PunctElement(stream.MustPunctuation(
				stream.Wildcard(), stream.Const(stream.Int(a.itemid)), stream.Wildcard(),
			))})
		}
	}

	for nextItem < int64(cfg.Items) || len(open) > 0 {
		// Keep the window full while items remain.
		for len(open) < cfg.OpenWindow && nextItem < int64(cfg.Items) {
			emitItem()
		}
		// Emit one bid for a random open auction.
		i := rng.Intn(len(open))
		out = append(out, Input{Stream: "bid", Elem: stream.TupleElement(stream.NewTuple(
			stream.Int(rng.Int63n(5000)),
			stream.Int(open[i].itemid),
			stream.Float(float64(1+rng.Intn(20))),
		))})
		open[i].pending--
		// Close fully-bid auctions (oldest-first to keep the window moving).
		for len(open) > 0 && open[0].pending <= 0 {
			closeOldest()
		}
		// An auction with pending bids can also be force-closed rarely —
		// except under skew, where heavy auctions must run their course.
		if zipf == nil && len(open) > 0 && rng.Intn(50) == 0 {
			closeOldest()
		}
	}
	return out
}
