// Package punctsafe's top-level benchmarks wrap the reproduction suite:
// one testing.B benchmark per experiment in the DESIGN.md index (E1-E14;
// E15 is table-only), measuring the experiment's inner operation, plus
// micro-benchmarks of the safety checker and the join/purge hot paths.
// Regenerate the full tables with `go run ./cmd/punctbench`.
package punctsafe_test

import (
	"fmt"
	"testing"

	"punctsafe/exec"
	"punctsafe/experiments"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
	"punctsafe/workload"
)

// drive pushes a prepared feed through a fresh MJoin; it is the common
// inner loop of the workload benchmarks.
func drive(b *testing.B, q *query.CJQ, schemes *stream.SchemeSet, cfg exec.Config, inputs []workload.Input) *exec.MJoin {
	b.Helper()
	cfg.Query = q
	cfg.Schemes = schemes
	m, err := exec.NewMJoin(cfg)
	if err != nil {
		b.Fatal(err)
	}
	feed, err := workload.NewFeed(q, inputs)
	if err != nil {
		b.Fatal(err)
	}
	if err := feed.Each(func(i int, e stream.Element) error {
		_, err := m.Push(i, e)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	m.Flush()
	return m
}

// BenchmarkE1AuctionPurging measures the punctuated auction join
// (Figure 1 / Example 1) end to end; b.N scales the item count. The
// no-punctuation baseline is BenchmarkE1AuctionBaseline.
func BenchmarkE1AuctionPurging(b *testing.B) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 2000, MaxBidsPerItem: 8, OpenWindow: 6,
		PunctuateItems: true, PunctuateClose: true, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := drive(b, q, schemes, exec.Config{}, inputs)
		if m.StatsSnapshot().TotalState() != 0 {
			b.Fatal("state did not drain")
		}
	}
	b.ReportMetric(float64(len(inputs)), "elements/op")
}

// BenchmarkE1AuctionBaseline is the same feed with punctuation processing
// disabled: state grows linearly (the unsafe baseline of Figure 1).
func BenchmarkE1AuctionBaseline(b *testing.B) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 2000, MaxBidsPerItem: 8, OpenWindow: 6,
		PunctuateItems: false, PunctuateClose: false, Seed: 1,
	})
	b.ResetTimer()
	var end int
	for i := 0; i < b.N; i++ {
		m := drive(b, q, schemes, exec.Config{}, inputs)
		end = m.StatsSnapshot().TotalState()
	}
	b.ReportMetric(float64(end), "retained-tuples")
}

// BenchmarkE2ChainedPurge measures one full chained-purge cycle on the
// Figure 3 query: insert a chain of tuples, then punctuate it away.
func BenchmarkE2ChainedPurge(b *testing.B) {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	q := query.NewBuilder().
		AddStream(stream.MustSchema("S1", ia("A"), ia("B"))).
		AddStream(stream.MustSchema("S2", ia("B"), ia("C"))).
		AddStream(stream.MustSchema("S3", ia("C"), ia("D"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		MustBuild()
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
	)
	m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes})
	if err != nil {
		b.Fatal(err)
	}
	tup := func(a, c int64) stream.Tuple { return stream.NewTuple(stream.Int(a), stream.Int(c)) }
	punct := func(pos int, v int64) stream.Punctuation {
		pats := []stream.Pattern{stream.Wildcard(), stream.Wildcard()}
		pats[pos] = stream.Const(stream.Int(v))
		return stream.MustPunctuation(pats...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int64(i)
		m.Push(0, stream.TupleElement(tup(v, v)))
		m.Push(1, stream.TupleElement(tup(v, v)))
		m.Push(2, stream.TupleElement(tup(v, v)))
		m.Push(1, stream.PunctElement(punct(0, v)))
		m.Push(0, stream.PunctElement(punct(1, v)))
		m.Push(1, stream.PunctElement(punct(1, v)))
		m.Push(2, stream.PunctElement(punct(0, v)))
	}
	b.StopTimer()
	if m.StatsSnapshot().TotalState() != 0 {
		b.Fatalf("chained purge left %d tuples", m.StatsSnapshot().TotalState())
	}
}

// BenchmarkE3MJoinSafe measures the safe cyclic MJoin of Figure 5 on a
// closed workload.
func BenchmarkE3MJoinSafe(b *testing.B) {
	q := mustSynthetic(b, workload.Cycle, 3)
	schemes := workload.AllJoinAttrSchemes(q)
	inputs := workload.Closed(q, schemes, workload.ClosedConfig{
		Rounds: 50, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 2,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := drive(b, q, schemes, exec.Config{}, inputs)
		if m.StatsSnapshot().TotalState() != 0 {
			b.Fatal("state did not drain")
		}
	}
}

// BenchmarkE4UnsafeBinaryTree measures the Figure 7 contrast: the same
// closed workload through the safe MJoin plan and the unsafe binary tree.
func BenchmarkE4UnsafeBinaryTree(b *testing.B) {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	q := query.NewBuilder().
		AddStream(stream.MustSchema("S1", ia("A"), ia("B"))).
		AddStream(stream.MustSchema("S2", ia("B"), ia("C"))).
		AddStream(stream.MustSchema("S3", ia("A"), ia("C"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		MustBuild()
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, false),
	)
	inputs := workload.Closed(q, schemes, workload.ClosedConfig{
		Rounds: 30, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 3,
	})
	for _, shape := range []struct {
		name string
		node *plan.Node
	}{
		{"mjoin", plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))},
		{"binarytree", plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))},
	} {
		b.Run(shape.name, func(b *testing.B) {
			var retained int
			for i := 0; i < b.N; i++ {
				tree, err := exec.NewTree(exec.Config{Query: q, Schemes: schemes}, shape.node)
				if err != nil {
					b.Fatal(err)
				}
				feed, _ := workload.NewFeed(q, inputs)
				if err := feed.Each(func(i int, e stream.Element) error {
					_, err := tree.Push(i, e)
					return err
				}); err != nil {
					b.Fatal(err)
				}
				retained = tree.TotalState()
			}
			b.ReportMetric(float64(retained), "retained-tuples")
		})
	}
}

// BenchmarkE5MultiAttr measures the Figures 8-10 scenario: purging driven
// by a multi-attribute punctuation scheme.
func BenchmarkE5MultiAttr(b *testing.B) {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	q := query.NewBuilder().
		AddStream(stream.MustSchema("S1", ia("A"), ia("B"))).
		AddStream(stream.MustSchema("S2", ia("B"), ia("C"))).
		AddStream(stream.MustSchema("S3", ia("A"), ia("C"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		MustBuild()
	schemes := stream.NewSchemeSet(
		stream.MustScheme("S1", false, true),
		stream.MustScheme("S2", true, false),
		stream.MustScheme("S2", false, true),
		stream.MustScheme("S3", true, true),
	)
	inputs := workload.Closed(q, schemes, workload.ClosedConfig{
		Rounds: 30, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 4,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := drive(b, q, schemes, exec.Config{}, inputs)
		if m.StatsSnapshot().TotalState() != 0 {
			b.Fatal("state did not drain")
		}
	}
}

// BenchmarkE6SafetyCheck measures the two safety-checking algorithms on
// clique queries of growing size (the §4.3 comparison).
func BenchmarkE6SafetyCheck(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		q := mustSynthetic(b, workload.Clique, n)
		schemes := workload.AllJoinAttrSchemes(q)
		b.Run(fmt.Sprintf("tpg/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !safety.Transform(q, schemes).SingleNode() {
					b.Fatal("must be safe")
				}
			}
		})
		b.Run(fmt.Sprintf("naivegpg/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !safety.BuildGPG(q, schemes).StronglyConnected() {
					b.Fatal("must be safe")
				}
			}
		})
	}
}

// BenchmarkE6PlanEnumeration measures the exponential alternative the
// theory avoids.
func BenchmarkE6PlanEnumeration(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		q := mustSynthetic(b, workload.Clique, n)
		schemes := workload.AllJoinAttrSchemes(q)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.EnumerateSafe(q, schemes, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7SchemeChoice measures §5.2 Plan Parameter I: full vs minimal
// scheme sets on the same query.
func BenchmarkE7SchemeChoice(b *testing.B) {
	q := mustSynthetic(b, workload.Cycle, 4)
	full := workload.AllJoinAttrSchemes(q)
	minimal := workload.MinimalSchemes(q, full)
	for _, mode := range []struct {
		name string
		set  *stream.SchemeSet
	}{{"all", full}, {"minimal", minimal}} {
		inputs := workload.Closed(q, mode.set, workload.ClosedConfig{
			Rounds: 40, TuplesPerRound: 6, Window: 3, PunctFraction: 1, Seed: 5,
		})
		b.Run(mode.name, func(b *testing.B) {
			var maxPunct int
			for i := 0; i < b.N; i++ {
				m := drive(b, q, mode.set, exec.Config{}, inputs)
				maxPunct = m.StatsSnapshot().MaxPunctStoreSize
			}
			b.ReportMetric(float64(maxPunct), "max-punct-store")
		})
	}
}

// BenchmarkE8EagerLazy measures §5.2 Plan Parameter II across purge batch
// sizes.
func BenchmarkE8EagerLazy(b *testing.B) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 5000, MaxBidsPerItem: 8, OpenWindow: 8,
		PunctuateItems: true, PunctuateClose: true, Seed: 6,
	})
	for _, batch := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var maxState int
			for i := 0; i < b.N; i++ {
				m := drive(b, q, schemes, exec.Config{PurgeBatch: batch}, inputs)
				maxState = m.StatsSnapshot().MaxStateSize
			}
			b.ReportMetric(float64(maxState), "max-state")
		})
	}
}

// BenchmarkE9PunctStore measures the §5.1 punctuation-store modes.
func BenchmarkE9PunctStore(b *testing.B) {
	q := workload.NetMonQuery()
	schemes := workload.NetMonSchemes()
	inputs := workload.NetMon(workload.NetMonConfig{
		Flows: 3000, MaxPktsPerFlow: 10, OpenWindow: 12,
		PunctuateFlowEnd: true, PunctuateConn: true, Seed: 7,
	})
	for _, mode := range []struct {
		name string
		cfg  exec.Config
	}{
		{"keepforever", exec.Config{}},
		{"counterpurge", exec.Config{PurgePunctuations: true}},
		{"lifespan", exec.Config{PunctLifespan: 5000}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var maxPunct int
			for i := 0; i < b.N; i++ {
				m := drive(b, q, schemes, mode.cfg, inputs)
				maxPunct = m.StatsSnapshot().MaxPunctStoreSize
			}
			b.ReportMetric(float64(maxPunct), "max-punct-store")
		})
	}
}

// BenchmarkE10CheckerScaling measures the simple-scheme checker across
// topology sizes (the §4.3 linear-time claim).
func BenchmarkE10CheckerScaling(b *testing.B) {
	for _, topo := range []workload.Topology{workload.Chain, workload.Cycle, workload.Star} {
		for _, n := range []int{8, 32, 128} {
			q := mustSynthetic(b, topo, n)
			schemes := workload.AllJoinAttrSchemes(q)
			b.Run(fmt.Sprintf("%s/n=%d", topo, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					safety.Transform(q, schemes)
				}
			})
		}
	}
}

// BenchmarkE11WindowVsPunct contrasts the two state-bounding mechanisms
// (§2.2/§6) on the auction feed.
func BenchmarkE11WindowVsPunct(b *testing.B) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 2000, MaxBidsPerItem: 8, OpenWindow: 6,
		PunctuateItems: true, PunctuateClose: true, Seed: 12,
	})
	b.Run("punctuations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drive(b, q, schemes, exec.Config{}, inputs)
		}
	})
	b.Run("window", func(b *testing.B) {
		var maxState int
		for i := 0; i < b.N; i++ {
			wj, err := exec.NewWindowedMJoin(exec.Config{Query: q, Schemes: schemes}, exec.Window{Rows: 64})
			if err != nil {
				b.Fatal(err)
			}
			feed, _ := workload.NewFeed(q, inputs)
			if err := feed.Each(func(i int, e stream.Element) error {
				_, err := wj.Push(i, e)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			maxState = wj.StatsSnapshot().MaxStateSize
		}
		b.ReportMetric(float64(maxState), "max-state")
	})
}

// BenchmarkE12Adaptive measures the adaptive purge controller against the
// fixed strategies.
func BenchmarkE12Adaptive(b *testing.B) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 5000, MaxBidsPerItem: 8, OpenWindow: 8,
		PunctuateItems: true, PunctuateClose: true, Seed: 13,
	})
	b.Run("adaptive", func(b *testing.B) {
		var maxState int
		for i := 0; i < b.N; i++ {
			a, err := exec.NewAdaptiveMJoin(exec.Config{Query: q, Schemes: schemes},
				exec.AdaptivePolicy{HighWater: 96, LowWater: 24, LazyBatch: 512})
			if err != nil {
				b.Fatal(err)
			}
			feed, _ := workload.NewFeed(q, inputs)
			if err := feed.Each(func(i int, e stream.Element) error {
				_, err := a.Push(i, e)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			a.Flush()
			maxState = a.StatsSnapshot().MaxStateSize
		}
		b.ReportMetric(float64(maxState), "max-state")
	})
	for _, batch := range []int{1, 512} {
		b.Run(fmt.Sprintf("fixed-batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drive(b, q, schemes, exec.Config{PurgeBatch: batch}, inputs)
			}
		})
	}
}

// BenchmarkE13Watermarks measures the heartbeat/watermark scenario: the
// out-of-order sensor join purged by ordered punctuations.
func BenchmarkE13Watermarks(b *testing.B) {
	q := workload.SensorQuery()
	schemes := workload.SensorSchemes()
	inputs := workload.Sensor(workload.SensorConfig{
		Epochs: 2000, ReadingsPerEpoch: 2, Disorder: 8,
		HeartbeatEvery: 2, Heartbeats: true, Seed: 14,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := drive(b, q, schemes, exec.Config{}, inputs)
		if m.StatsSnapshot().TotalState() != 0 {
			b.Fatal("sensor state did not drain")
		}
	}
	b.ReportMetric(float64(len(inputs)), "elements/op")
}

// BenchmarkE14PlanChoice measures plan enumeration plus cost ranking on
// the 4-way chain (the §5.2 planning step itself).
func BenchmarkE14PlanChoice(b *testing.B) {
	q := mustSynthetic(b, workload.Chain, 4)
	schemes := workload.AllJoinAttrSchemes(q)
	model := plan.DefaultCostModel(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plans, err := plan.EnumerateSafe(q, schemes, model)
		if err != nil || len(plans) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeOrder compares the static BFS probe order against the
// greedy dynamic order on a Zipf-skewed 4-way chain (skew is where early
// pruning pays).
func BenchmarkProbeOrder(b *testing.B) {
	q := mustSynthetic(b, workload.Chain, 4)
	schemes := workload.AllJoinAttrSchemes(q)
	inputs := workload.Closed(q, schemes, workload.ClosedConfig{
		Rounds: 20, TuplesPerRound: 20, Window: 8, PunctFraction: 1, ZipfS: 1.5, Seed: 16,
	})
	for _, mode := range []struct {
		name    string
		dynamic bool
	}{{"static", false}, {"dynamic", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drive(b, q, schemes, exec.Config{DynamicProbeOrder: mode.dynamic}, inputs)
			}
		})
	}
}

// BenchmarkJoinProbe isolates the result-emission hot path: symmetric
// hash probe with no punctuations.
func BenchmarkJoinProbe(b *testing.B) {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	q := query.NewBuilder().
		AddStream(stream.MustSchema("R", ia("K"), ia("V"))).
		AddStream(stream.MustSchema("S", ia("K"), ia("W"))).
		JoinOn("R", "S", "K").
		MustBuild()
	m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: stream.NewSchemeSet()})
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		m.Push(0, stream.TupleElement(stream.NewTuple(stream.Int(i), stream.Int(i))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % 1000)
		m.Push(1, stream.TupleElement(stream.NewTuple(stream.Int(k), stream.Int(k))))
	}
}

// BenchmarkProbeSteadyState measures the probe machinery at fixed state
// size: a windowed join (insert + evict per push, zero net growth) probed
// with pre-built elements, so the loop isolates per-element probe cost —
// "hit" emits one result per push, "miss" emits none. The miss case is
// the floor: everything it allocates is probe overhead, not results.
func BenchmarkProbeSteadyState(b *testing.B) {
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	build := func(b *testing.B) *exec.WindowedMJoin {
		q := query.NewBuilder().
			AddStream(stream.MustSchema("R", ia("K"), ia("V"))).
			AddStream(stream.MustSchema("S", ia("K"), ia("W"))).
			JoinOn("R", "S", "K").
			MustBuild()
		wj, err := exec.NewWindowedMJoin(exec.Config{Query: q, Schemes: stream.NewSchemeSet()}, exec.Window{Rows: 1000})
		if err != nil {
			b.Fatal(err)
		}
		for i := int64(0); i < 1000; i++ {
			if _, err := wj.Push(0, stream.TupleElement(stream.NewTuple(stream.Int(i), stream.Int(i)))); err != nil {
				b.Fatal(err)
			}
		}
		return wj
	}
	elems := func(base int64) []stream.Element {
		out := make([]stream.Element, 1000)
		for i := range out {
			k := base + int64(i)
			out[i] = stream.TupleElement(stream.NewTuple(stream.Int(k), stream.Int(k)))
		}
		return out
	}
	for _, mode := range []struct {
		name string
		base int64 // key offset: 0 hits the stored R keys, 1<<20 misses all
	}{{"hit", 0}, {"miss", 1 << 20}} {
		b.Run(mode.name, func(b *testing.B) {
			wj := build(b)
			es := elems(mode.base)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := wj.Push(1, es[i%len(es)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPurgeCheck isolates one purgeability evaluation via Sweep on a
// mid-sized chain state.
func BenchmarkPurgeCheck(b *testing.B) {
	q := workload.AuctionQuery()
	schemes := workload.AuctionSchemes()
	m, err := exec.NewMJoin(exec.Config{Query: q, Schemes: schemes, PurgeBatch: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 1000, MaxBidsPerItem: 5, OpenWindow: 6,
		PunctuateItems: true, PunctuateClose: false, Seed: 8,
	})
	feed, _ := workload.NewFeed(q, inputs)
	feed.Each(func(i int, e stream.Element) error {
		_, err := m.Push(i, e)
		return err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sweep()
	}
}

func mustSynthetic(b *testing.B, topo workload.Topology, k int) *query.CJQ {
	b.Helper()
	q, err := workload.SyntheticQuery(topo, k)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// TestExperimentShapes runs the full experiment suite at reduced scale
// and asserts every table reports its paper-predicted shape (the notes
// embed the check results).
func TestExperimentShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is not short")
	}
	tables := []*experiments.Table{
		experiments.E1Auction([]int{200, 400}),
		experiments.E2ChainedPurge(),
		experiments.E3MJoinSafe(8),
		experiments.E4UnsafeBinaryTree(8),
		experiments.E5MultiAttr(8),
		experiments.E6TPGvsGPG([]int{4, 6}),
		experiments.E7SchemeChoice([]int{3}),
		experiments.E9PunctStore(500),
		experiments.E10CheckerScaling([]int{4, 8}),
		experiments.E11WindowVsPunct(500),
		experiments.E12Adaptive(2000),
		experiments.E13Watermarks(400),
		experiments.E14PlanChoice(15),
		experiments.E15PunctDelay(20),
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		if len(tb.Notes) == 0 {
			t.Errorf("%s: no shape note", tb.ID)
		}
		if containsViolation(tb.Notes) {
			t.Errorf("%s reported a shape violation:\n%s", tb.ID, tb.Render())
		}
	}
}

func containsViolation(s string) bool {
	return len(s) >= 5 && (stringContains(s, "VIOLATION"))
}

func stringContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
