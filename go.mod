module punctsafe

go 1.22
