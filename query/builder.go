package query

import (
	"fmt"
	"strings"

	"punctsafe/stream"
)

// Builder assembles a CJQ by name: add streams, then join predicates
// written as "Stream.Attr = Stream.Attr". Errors are accumulated and
// reported by Build, so call sites can chain fluently.
type Builder struct {
	schemas []*stream.Schema
	preds   []Predicate
	errs    []error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// AddStream registers a stream schema. Order of registration defines the
// stream indices of the resulting query.
func (b *Builder) AddStream(s *stream.Schema) *Builder {
	if s == nil {
		b.errs = append(b.errs, fmt.Errorf("query: AddStream(nil)"))
		return b
	}
	b.schemas = append(b.schemas, s)
	return b
}

// Join adds an equi-join predicate between two "Stream.Attr" references.
func (b *Builder) Join(left, right string) *Builder {
	ls, la, err := b.resolve(left)
	if err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	rs, ra, err := b.resolve(right)
	if err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	b.preds = append(b.preds, Predicate{Left: ls, LeftAttr: la, Right: rs, RightAttr: ra})
	return b
}

// JoinOn adds a natural-join style predicate: both streams join on an
// attribute of the same name.
func (b *Builder) JoinOn(leftStream, rightStream, attr string) *Builder {
	return b.Join(leftStream+"."+attr, rightStream+"."+attr)
}

func (b *Builder) resolve(ref string) (streamIdx, attrIdx int, err error) {
	dot := strings.LastIndex(ref, ".")
	if dot <= 0 || dot == len(ref)-1 {
		return 0, 0, fmt.Errorf("query: attribute reference %q is not of the form Stream.Attr", ref)
	}
	sName, aName := ref[:dot], ref[dot+1:]
	for i, s := range b.schemas {
		if s.Name() != sName {
			continue
		}
		if a := s.Index(aName); a >= 0 {
			return i, a, nil
		}
		return 0, 0, fmt.Errorf("query: stream %q has no attribute %q", sName, aName)
	}
	return 0, 0, fmt.Errorf("query: unknown stream %q in reference %q", sName, ref)
}

// Build validates and returns the query.
func (b *Builder) Build() (*CJQ, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return NewCJQ(b.schemas, b.preds)
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *CJQ {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}
