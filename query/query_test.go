package query

import (
	"testing"

	"punctsafe/stream"
)

func ia(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }

func triQuery(t *testing.T) *CJQ {
	t.Helper()
	q, err := NewBuilder().
		AddStream(stream.MustSchema("S1", ia("A"), ia("B"))).
		AddStream(stream.MustSchema("S2", ia("B"), ia("C"))).
		AddStream(stream.MustSchema("S3", ia("A"), ia("C"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestBuilderErrors(t *testing.T) {
	s1 := stream.MustSchema("S1", ia("A"))
	s2 := stream.MustSchema("S2", ia("A"))
	cases := []struct {
		name  string
		build func() (*CJQ, error)
	}{
		{"unknown stream", func() (*CJQ, error) {
			return NewBuilder().AddStream(s1).AddStream(s2).Join("S9.A", "S2.A").Build()
		}},
		{"unknown attr", func() (*CJQ, error) {
			return NewBuilder().AddStream(s1).AddStream(s2).Join("S1.Z", "S2.A").Build()
		}},
		{"bad ref", func() (*CJQ, error) {
			return NewBuilder().AddStream(s1).AddStream(s2).Join("S1A", "S2.A").Build()
		}},
		{"no predicates", func() (*CJQ, error) {
			return NewBuilder().AddStream(s1).AddStream(s2).Build()
		}},
		{"one stream", func() (*CJQ, error) {
			return NewBuilder().AddStream(s1).Build()
		}},
		{"nil stream", func() (*CJQ, error) {
			return NewBuilder().AddStream(nil).AddStream(s2).Build()
		}},
		{"duplicate names", func() (*CJQ, error) {
			return NewBuilder().AddStream(s1).AddStream(stream.MustSchema("S1", ia("A"))).Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestKindMismatchRejected(t *testing.T) {
	s1 := stream.MustSchema("S1", ia("A"))
	s2 := stream.MustSchema("S2", stream.Attribute{Name: "A", Kind: stream.KindString})
	if _, err := NewBuilder().AddStream(s1).AddStream(s2).Join("S1.A", "S2.A").Build(); err == nil {
		t.Error("kind mismatch must be rejected")
	}
}

func TestCrossProductRejected(t *testing.T) {
	// Four streams, two disconnected join components.
	q, err := NewCJQ(
		[]*stream.Schema{
			stream.MustSchema("A", ia("x")),
			stream.MustSchema("B", ia("x")),
			stream.MustSchema("C", ia("x")),
			stream.MustSchema("D", ia("x")),
		},
		[]Predicate{
			{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0},
			{Left: 2, LeftAttr: 0, Right: 3, RightAttr: 0},
		})
	if err == nil {
		t.Fatalf("disconnected join graph must be rejected, got %s", q)
	}
}

func TestSelfJoinPredicateRejected(t *testing.T) {
	_, err := NewCJQ(
		[]*stream.Schema{stream.MustSchema("A", ia("x"), ia("y")), stream.MustSchema("B", ia("x"))},
		[]Predicate{
			{Left: 0, LeftAttr: 0, Right: 0, RightAttr: 1},
			{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0},
		})
	if err == nil {
		t.Error("self-join predicate must be rejected")
	}
}

func TestPredicateNormalizationAndDedup(t *testing.T) {
	s1 := stream.MustSchema("S1", ia("A"))
	s2 := stream.MustSchema("S2", ia("A"))
	q, err := NewCJQ([]*stream.Schema{s1, s2}, []Predicate{
		{Left: 0, LeftAttr: 0, Right: 1, RightAttr: 0},
		{Left: 1, LeftAttr: 0, Right: 0, RightAttr: 0}, // same predicate, flipped
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Predicates()); got != 1 {
		t.Errorf("predicates = %d, want 1 after dedup", got)
	}
}

func TestJoinAttrsAndPartners(t *testing.T) {
	q := triQuery(t)
	if got := q.JoinAttrs(0); len(got) != 2 {
		t.Errorf("S1 join attrs = %v", got)
	}
	if got := q.JoinPartners(0, 1); len(got) != 1 || got[0] != 1 {
		t.Errorf("S1.B partners = %v, want [S2]", got)
	}
	if got := q.JoinPartners(0, 0); len(got) != 1 || got[0] != 2 {
		t.Errorf("S1.A partners = %v, want [S3]", got)
	}
	if got := q.PartnerAttr(0, 1, 1); got != 0 {
		t.Errorf("PartnerAttr(S1.B, S2) = %d, want 0 (S2.B)", got)
	}
	if got := q.PartnerAttr(0, 1, 2); got != -1 {
		t.Errorf("PartnerAttr(S1.B, S3) = %d, want -1", got)
	}
	if q.StreamIndex("S2") != 1 || q.StreamIndex("nope") != -1 {
		t.Error("StreamIndex broken")
	}
}

func TestRestrict(t *testing.T) {
	q := triQuery(t)
	sub, mapping, err := q.Restrict([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 || len(sub.Predicates()) != 1 {
		t.Fatalf("sub = %s", sub)
	}
	if mapping[0] != 0 || mapping[1] != 1 {
		t.Fatalf("mapping = %v", mapping)
	}
	if _, _, err := q.Restrict([]int{0}); err == nil {
		t.Error("single-stream restriction must fail")
	}
	if _, _, err := q.Restrict([]int{0, 0}); err == nil {
		t.Error("repeated stream must fail")
	}
	if _, _, err := q.Restrict([]int{0, 9}); err == nil {
		t.Error("out-of-range stream must fail")
	}
}

func TestJoinGraph(t *testing.T) {
	q := triQuery(t)
	jg := q.JoinGraph()
	if jg.N() != 3 || jg.EdgeCount() != 3 {
		t.Fatalf("join graph %s", jg)
	}
	if !jg.Connected() {
		t.Error("must be connected")
	}
	if jg.Acyclic() {
		t.Error("triangle is cyclic")
	}
	if !jg.HasEdge(0, 1) || !jg.HasEdge(1, 0) {
		t.Error("edges are undirected")
	}
	if got := jg.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if got := len(jg.EdgePredicates(0, 1)); got != 1 {
		t.Errorf("EdgePredicates = %d", got)
	}

	// Chain is acyclic.
	chain, err := NewBuilder().
		AddStream(stream.MustSchema("A", ia("x"))).
		AddStream(stream.MustSchema("B", ia("x"), ia("y"))).
		AddStream(stream.MustSchema("C", ia("y"))).
		Join("A.x", "B.x").Join("B.y", "C.y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !chain.JoinGraph().Acyclic() {
		t.Error("chain must be acyclic")
	}
}

func TestQueryString(t *testing.T) {
	q := triQuery(t)
	s := q.String()
	for _, want := range []string{"S1", "S2", "S3", "S1.B = S2.B"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
