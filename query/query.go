// Package query models continuous join queries (CJQs): a set of data
// streams joined under conjunctive equi-join predicates, together with
// the join graph of Definition 6. The safety package analyses these
// queries against a punctuation scheme set; the plan and exec packages
// execute them.
package query

import (
	"fmt"
	"sort"
	"strings"

	"punctsafe/stream"
)

// Predicate is one equi-join predicate between two streams, identified by
// stream index into the query's stream list and attribute position within
// each stream's schema: Streams[Left].Attr(LeftAttr) = Streams[Right].Attr(RightAttr).
type Predicate struct {
	Left      int
	LeftAttr  int
	Right     int
	RightAttr int
}

// Normalize returns the predicate with the lower stream index on the left,
// so structurally equal predicates compare equal.
func (p Predicate) Normalize() Predicate {
	if p.Left > p.Right {
		return Predicate{Left: p.Right, LeftAttr: p.RightAttr, Right: p.Left, RightAttr: p.LeftAttr}
	}
	return p
}

// Touches reports whether the predicate involves the given stream index.
func (p Predicate) Touches(s int) bool { return p.Left == s || p.Right == s }

// Other returns the stream on the opposite side of s, and the attribute
// positions (s's attribute first). It panics if the predicate does not
// touch s.
func (p Predicate) Other(s int) (other, sAttr, otherAttr int) {
	switch s {
	case p.Left:
		return p.Right, p.LeftAttr, p.RightAttr
	case p.Right:
		return p.Left, p.RightAttr, p.LeftAttr
	default:
		panic(fmt.Sprintf("query: predicate %+v does not touch stream %d", p, s))
	}
}

// CJQ is a continuous join query over n data streams with conjunctive
// equi-join predicates. Build one with NewCJQ or with the Builder.
type CJQ struct {
	streams []*stream.Schema
	byName  map[string]int
	preds   []Predicate
}

// NewCJQ validates and constructs a CJQ. It requires at least two streams
// with distinct names, every predicate to reference valid streams and
// attributes with matching kinds, no self-join predicates on a single
// stream instance, and a connected join graph (a disconnected query is a
// cross product, which is never safe over unbounded streams and is
// rejected outright).
func NewCJQ(streams []*stream.Schema, preds []Predicate) (*CJQ, error) {
	if len(streams) < 2 {
		return nil, fmt.Errorf("query: a join query needs at least two streams, got %d", len(streams))
	}
	q := &CJQ{
		streams: append([]*stream.Schema(nil), streams...),
		byName:  make(map[string]int, len(streams)),
	}
	for i, s := range streams {
		if s == nil {
			return nil, fmt.Errorf("query: stream %d is nil", i)
		}
		if _, dup := q.byName[s.Name()]; dup {
			return nil, fmt.Errorf("query: duplicate stream name %q (self-joins need aliased schemas)", s.Name())
		}
		q.byName[s.Name()] = i
	}
	seen := make(map[Predicate]bool, len(preds))
	for _, p := range preds {
		if err := q.checkPredicate(p); err != nil {
			return nil, err
		}
		n := p.Normalize()
		if seen[n] {
			continue
		}
		seen[n] = true
		q.preds = append(q.preds, n)
	}
	if len(q.preds) == 0 {
		return nil, fmt.Errorf("query: a join query needs at least one join predicate")
	}
	if !q.JoinGraph().Connected() {
		return nil, fmt.Errorf("query: join graph is not connected (cross products over unbounded streams are never safe)")
	}
	return q, nil
}

func (q *CJQ) checkPredicate(p Predicate) error {
	if p.Left < 0 || p.Left >= len(q.streams) || p.Right < 0 || p.Right >= len(q.streams) {
		return fmt.Errorf("query: predicate %+v references stream out of range [0,%d)", p, len(q.streams))
	}
	if p.Left == p.Right {
		return fmt.Errorf("query: predicate %+v joins stream %q with itself", p, q.streams[p.Left].Name())
	}
	ls, rs := q.streams[p.Left], q.streams[p.Right]
	if p.LeftAttr < 0 || p.LeftAttr >= ls.Arity() {
		return fmt.Errorf("query: predicate %+v attribute out of range for %s", p, ls)
	}
	if p.RightAttr < 0 || p.RightAttr >= rs.Arity() {
		return fmt.Errorf("query: predicate %+v attribute out of range for %s", p, rs)
	}
	lk, rk := ls.Attr(p.LeftAttr).Kind, rs.Attr(p.RightAttr).Kind
	if lk != rk {
		return fmt.Errorf("query: predicate joins %s.%s (%s) with %s.%s (%s): kind mismatch",
			ls.Name(), ls.Attr(p.LeftAttr).Name, lk, rs.Name(), rs.Attr(p.RightAttr).Name, rk)
	}
	return nil
}

// N returns the number of streams in the query.
func (q *CJQ) N() int { return len(q.streams) }

// Stream returns the schema of the i-th stream.
func (q *CJQ) Stream(i int) *stream.Schema { return q.streams[i] }

// Streams returns a copy of the stream list.
func (q *CJQ) Streams() []*stream.Schema {
	return append([]*stream.Schema(nil), q.streams...)
}

// StreamIndex returns the index of the named stream, or -1.
func (q *CJQ) StreamIndex(name string) int {
	if i, ok := q.byName[name]; ok {
		return i
	}
	return -1
}

// Predicates returns a copy of the normalized predicate list.
func (q *CJQ) Predicates() []Predicate {
	return append([]Predicate(nil), q.preds...)
}

// PredicatesTouching returns the predicates involving stream s.
func (q *CJQ) PredicatesTouching(s int) []Predicate {
	var out []Predicate
	for _, p := range q.preds {
		if p.Touches(s) {
			out = append(out, p)
		}
	}
	return out
}

// JoinAttrs returns the set of attribute positions of stream s that occur
// in some join predicate, ascending.
func (q *CJQ) JoinAttrs(s int) []int {
	set := make(map[int]bool)
	for _, p := range q.preds {
		if p.Left == s {
			set[p.LeftAttr] = true
		}
		if p.Right == s {
			set[p.RightAttr] = true
		}
	}
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// JoinPartners returns the stream indexes that attribute attr of stream s
// joins with, ascending. Empty when attr is not a join attribute.
func (q *CJQ) JoinPartners(s, attr int) []int {
	set := make(map[int]bool)
	for _, p := range q.preds {
		if p.Left == s && p.LeftAttr == attr {
			set[p.Right] = true
		}
		if p.Right == s && p.RightAttr == attr {
			set[p.Left] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// PartnerAttr returns the attribute position on partner's side of the
// first join predicate linking s.attr with partner, or -1 when no such
// predicate exists.
func (q *CJQ) PartnerAttr(s, attr, partner int) int {
	for _, p := range q.preds {
		if p.Left == s && p.LeftAttr == attr && p.Right == partner {
			return p.RightAttr
		}
		if p.Right == s && p.RightAttr == attr && p.Left == partner {
			return p.LeftAttr
		}
	}
	return -1
}

// Restrict builds the sub-query induced by the given stream subset: the
// streams keep their relative order and only predicates internal to the
// subset survive. It returns the sub-query and the mapping from new stream
// index to original index. An error is returned if the induced join graph
// is not connected (such a subset cannot form one join operator).
func (q *CJQ) Restrict(subset []int) (*CJQ, []int, error) {
	if len(subset) < 2 {
		return nil, nil, fmt.Errorf("query: restriction needs at least two streams")
	}
	idx := append([]int(nil), subset...)
	sort.Ints(idx)
	old2new := make(map[int]int, len(idx))
	schemas := make([]*stream.Schema, len(idx))
	for newI, oldI := range idx {
		if oldI < 0 || oldI >= len(q.streams) {
			return nil, nil, fmt.Errorf("query: restriction stream %d out of range", oldI)
		}
		if _, dup := old2new[oldI]; dup {
			return nil, nil, fmt.Errorf("query: restriction repeats stream %d", oldI)
		}
		old2new[oldI] = newI
		schemas[newI] = q.streams[oldI]
	}
	var preds []Predicate
	for _, p := range q.preds {
		l, lok := old2new[p.Left]
		r, rok := old2new[p.Right]
		if lok && rok {
			preds = append(preds, Predicate{Left: l, LeftAttr: p.LeftAttr, Right: r, RightAttr: p.RightAttr})
		}
	}
	if len(preds) == 0 {
		return nil, nil, fmt.Errorf("query: restriction to %v has no internal join predicate", subset)
	}
	sub, err := NewCJQ(schemas, preds)
	if err != nil {
		return nil, nil, err
	}
	return sub, idx, nil
}

// String renders the query as streams + predicates.
func (q *CJQ) String() string {
	var b strings.Builder
	b.WriteString("CJQ[")
	for i, s := range q.streams {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Name())
	}
	b.WriteString(" | ")
	for i, p := range q.preds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		ls, rs := q.streams[p.Left], q.streams[p.Right]
		fmt.Fprintf(&b, "%s.%s = %s.%s",
			ls.Name(), ls.Attr(p.LeftAttr).Name, rs.Name(), rs.Attr(p.RightAttr).Name)
	}
	b.WriteString("]")
	return b.String()
}
