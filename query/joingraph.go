package query

import (
	"fmt"
	"sort"
	"strings"
)

// JoinGraph is the undirected, labeled graph of Definition 6: one vertex
// per input stream, one edge per pair of streams sharing at least one join
// predicate (the edge carries all predicates between the pair).
type JoinGraph struct {
	n     int
	edges map[[2]int][]Predicate // key [lo,hi]
}

// JoinGraph builds the join graph of the query.
func (q *CJQ) JoinGraph() *JoinGraph {
	jg := &JoinGraph{n: q.N(), edges: make(map[[2]int][]Predicate)}
	for _, p := range q.preds {
		k := edgeKey(p.Left, p.Right)
		jg.edges[k] = append(jg.edges[k], p)
	}
	return jg
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// N returns the number of vertices (streams).
func (jg *JoinGraph) N() int { return jg.n }

// HasEdge reports whether streams a and b share a join predicate.
func (jg *JoinGraph) HasEdge(a, b int) bool {
	_, ok := jg.edges[edgeKey(a, b)]
	return ok
}

// EdgePredicates returns the predicates between a and b (nil if none).
func (jg *JoinGraph) EdgePredicates(a, b int) []Predicate {
	return jg.edges[edgeKey(a, b)]
}

// Neighbors returns the vertices adjacent to v, ascending.
func (jg *JoinGraph) Neighbors(v int) []int {
	var out []int
	for k := range jg.edges {
		if k[0] == v {
			out = append(out, k[1])
		} else if k[1] == v {
			out = append(out, k[0])
		}
	}
	sort.Ints(out)
	return out
}

// EdgeCount returns the number of distinct stream pairs joined.
func (jg *JoinGraph) EdgeCount() int { return len(jg.edges) }

// Connected reports whether the join graph is connected. A query whose
// join graph is disconnected contains a cross product.
func (jg *JoinGraph) Connected() bool {
	if jg.n <= 1 {
		return true
	}
	seen := make([]bool, jg.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range jg.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == jg.n
}

// Acyclic reports whether the join graph is a tree/forest (|E| = |V| - #components
// with no cycles). Cyclic join graphs admit multiple purge paths (§3.2.1).
func (jg *JoinGraph) Acyclic() bool {
	// Union-find over edges: a cycle appears when an edge joins two
	// vertices already in the same set.
	parent := make([]int, jg.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for k := range jg.edges {
		a, b := find(k[0]), find(k[1])
		if a == b {
			return false
		}
		parent[a] = b
	}
	return true
}

// String renders vertices and edges.
func (jg *JoinGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "JoinGraph(n=%d)", jg.n)
	for k, preds := range jg.edges {
		fmt.Fprintf(&b, " %d--%d(%d preds)", k[0], k[1], len(preds))
	}
	return b.String()
}
