#!/bin/sh
# Hot-path benchmark trajectory: runs the join/purge/ingestion benchmarks
# with -benchmem, pairs them with the recorded pre-optimization baseline
# (scripts/bench_baseline.txt), and rewrites BENCH_hotpath.json at the
# repo root — appending this run (git SHA + timestamp) to the report's
# `trajectory` array so history accumulates instead of being overwritten.
# Also runs the partitioned-ingest scaling benchmark (BENCH_partition.json)
# and the punctserve sustained serving benchmark (BENCH_serving.json).
# Run from the repository root, or via `make benchfull`.
#
#   BENCHTIME=2s scripts/bench.sh        # the checked-in configuration
#   BENCHTIME=100ms scripts/bench.sh     # a quick smoke pass
set -eu

BENCHTIME=${BENCHTIME:-2s}
OUT=${OUT:-BENCH_hotpath.json}
PART_OUT=${PART_OUT:-BENCH_partition.json}
SERVE_OUT=${SERVE_OUT:-BENCH_serving.json}
raw=$(mktemp)
partraw=$(mktemp)
serveraw=$(mktemp)
trap 'rm -f "$raw" "$partraw" "$serveraw"' EXIT

sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
now=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Root-package hot-path benchmarks: chained purge cycle, join probe,
# purge check, and the steady-state probe floor.
go test . -run xxx \
  -bench 'BenchmarkE2ChainedPurge|BenchmarkJoinProbe|BenchmarkPurgeCheck|BenchmarkProbeSteadyState' \
  -benchtime "$BENCHTIME" -benchmem | tee "$raw"

# Engine ingestion benchmarks: sequential vs sharded vs batched-sharded
# feeds, steady-state wire frame decoding, and the checkpoint/restore
# durability tax over a live runtime.
go test ./engine -run xxx \
  -bench 'BenchmarkIngest$|BenchmarkWireReaderRead|BenchmarkCheckpoint' \
  -benchtime "$BENCHTIME" -benchmem | tee -a "$raw"

# Partitioned-ingest scaling: the critical-path rows measure router + one
# replica (the parallel span), the engine rows the live worker pool.
go test ./engine -run xxx \
  -bench 'BenchmarkPartitionedIngest' \
  -benchtime "$BENCHTIME" | tee "$partraw"

# Serving-layer sustained throughput: P producer x S subscriber
# connections over a unix socket against a live punctserve server, with
# background checkpoints and durable producer acks on.
go test ./server -run xxx \
  -bench 'BenchmarkServe' \
  -benchtime "$BENCHTIME" | tee "$serveraw"

tmp=$(mktemp)
go run ./cmd/punctbench -bench-json "$raw" -baseline scripts/bench_baseline.txt \
  -prev "$OUT" -sha "$sha" -time "$now" > "$tmp"
mv "$tmp" "$OUT"
echo "wrote $OUT"

tmp=$(mktemp)
go run ./cmd/punctbench -partition-json "$partraw" \
  -prev "$PART_OUT" -sha "$sha" -time "$now" > "$tmp"
mv "$tmp" "$PART_OUT"
echo "wrote $PART_OUT"

tmp=$(mktemp)
go run ./cmd/punctbench -serving-json "$serveraw" \
  -prev "$SERVE_OUT" -sha "$sha" -time "$now" > "$tmp"
mv "$tmp" "$SERVE_OUT"
echo "wrote $SERVE_OUT"
