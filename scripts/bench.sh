#!/bin/sh
# Hot-path benchmark trajectory: runs the join/purge/ingestion benchmarks
# with -benchmem, pairs them with the recorded pre-optimization baseline
# (scripts/bench_baseline.txt), and rewrites BENCH_hotpath.json at the
# repo root — appending this run (git SHA + timestamp) to the report's
# `trajectory` array so history accumulates instead of being overwritten.
# Also runs the partitioned-ingest scaling benchmark (BENCH_partition.json),
# the punctserve sustained serving benchmark (BENCH_serving.json), the
# adaptive state-tiering benchmark (BENCH_tiering.json), and the
# shared-subplan multi-query benchmark (BENCH_multiquery.json).
# Run from the repository root, or via `make benchfull`.
#
#   BENCHTIME=2s scripts/bench.sh        # the checked-in configuration
#   BENCHTIME=100ms scripts/bench.sh     # a quick smoke pass
#   ONLY=tiering scripts/bench.sh        # just the tiering section
#   ONLY=serving scripts/bench.sh        # just the serving + failover-RTO section
set -eu

BENCHTIME=${BENCHTIME:-2s}
ONLY=${ONLY:-all}
OUT=${OUT:-BENCH_hotpath.json}
PART_OUT=${PART_OUT:-BENCH_partition.json}
SERVE_OUT=${SERVE_OUT:-BENCH_serving.json}
TIER_OUT=${TIER_OUT:-BENCH_tiering.json}
MQ_OUT=${MQ_OUT:-BENCH_multiquery.json}
# The tiering acceptance is a ratio of two rows. The loop below runs the
# whole benchmark set TIER_COUNT times (NOT -count, which runs one name's
# samples back to back): sample i of each mode lands seconds apart, so
# punctbench's per-pair ratio medians cancel host load drift.
TIER_COUNT=${TIER_COUNT:-9}
# The multi-query acceptance (1k identical views within 2x one view) is
# also a ratio of rows, interleaved the same way.
MQ_COUNT=${MQ_COUNT:-5}
raw=$(mktemp)
partraw=$(mktemp)
serveraw=$(mktemp)
tierraw=$(mktemp)
mqraw=$(mktemp)
trap 'rm -f "$raw" "$partraw" "$serveraw" "$tierraw" "$mqraw"' EXIT

sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
now=$(date -u +%Y-%m-%dT%H:%M:%SZ)

if [ "$ONLY" = all ]; then
  # Root-package hot-path benchmarks: chained purge cycle, join probe,
  # purge check, and the steady-state probe floor.
  go test . -run xxx \
    -bench 'BenchmarkE2ChainedPurge|BenchmarkJoinProbe|BenchmarkPurgeCheck|BenchmarkProbeSteadyState' \
    -benchtime "$BENCHTIME" -benchmem | tee "$raw"

  # Engine ingestion benchmarks: sequential vs sharded vs batched-sharded
  # feeds, steady-state wire frame decoding, and the checkpoint/restore
  # durability tax over a live runtime.
  go test ./engine -run xxx \
    -bench 'BenchmarkIngest$|BenchmarkWireReaderRead|BenchmarkCheckpoint' \
    -benchtime "$BENCHTIME" -benchmem | tee -a "$raw"

  # Partitioned-ingest scaling: the critical-path rows measure router + one
  # replica (the parallel span), the engine rows the live worker pool.
  go test ./engine -run xxx \
    -bench 'BenchmarkPartitionedIngest' \
    -benchtime "$BENCHTIME" | tee "$partraw"

fi

if [ "$ONLY" = all ] || [ "$ONLY" = serving ]; then
  # Serving-layer sustained throughput (P producer x S subscriber
  # connections over a unix socket against a live punctserve server, with
  # background checkpoints and durable producer acks on) plus the
  # warm-standby failover recovery time (kill -> promotion -> first
  # post-failover delivery; ns/op is the RTO).
  go test ./server -run xxx \
    -bench 'BenchmarkServe|BenchmarkFailoverRTO' \
    -benchtime "$BENCHTIME" | tee "$serveraw"
fi

# Adaptive state tiering: cold-tier probe parity over long-lived state and
# the skew-split state bound (also reachable alone via `make benchskew`).
if [ "$ONLY" = all ] || [ "$ONLY" = tiering ]; then
  i=0
  while [ "$i" -lt "$TIER_COUNT" ]; do
    go test ./exec -run xxx \
      -bench 'BenchmarkTiering' \
      -benchtime "$BENCHTIME" -benchmem | tee -a "$tierraw"
    i=$((i + 1))
  done
fi

# Shared-subplan multi-query execution: view ladders per overlap shape
# (identical / mixed / disjoint / independent baseline).
if [ "$ONLY" = all ] || [ "$ONLY" = multiquery ]; then
  i=0
  while [ "$i" -lt "$MQ_COUNT" ]; do
    go test ./engine -run xxx \
      -bench 'BenchmarkMultiQuery' \
      -benchtime "$BENCHTIME" | tee -a "$mqraw"
    i=$((i + 1))
  done
fi

if [ "$ONLY" = all ]; then
  tmp=$(mktemp)
  go run ./cmd/punctbench -bench-json "$raw" -baseline scripts/bench_baseline.txt \
    -prev "$OUT" -sha "$sha" -time "$now" > "$tmp"
  mv "$tmp" "$OUT"
  echo "wrote $OUT"

  tmp=$(mktemp)
  go run ./cmd/punctbench -partition-json "$partraw" \
    -prev "$PART_OUT" -sha "$sha" -time "$now" > "$tmp"
  mv "$tmp" "$PART_OUT"
  echo "wrote $PART_OUT"
fi

if [ "$ONLY" = all ] || [ "$ONLY" = serving ]; then
  tmp=$(mktemp)
  go run ./cmd/punctbench -serving-json "$serveraw" \
    -prev "$SERVE_OUT" -sha "$sha" -time "$now" > "$tmp"
  mv "$tmp" "$SERVE_OUT"
  echo "wrote $SERVE_OUT"
fi

if [ "$ONLY" = all ] || [ "$ONLY" = tiering ]; then
  tmp=$(mktemp)
  go run ./cmd/punctbench -tiering-json "$tierraw" \
    -prev "$TIER_OUT" -sha "$sha" -time "$now" > "$tmp"
  mv "$tmp" "$TIER_OUT"
  echo "wrote $TIER_OUT"
fi

if [ "$ONLY" = all ] || [ "$ONLY" = multiquery ]; then
  tmp=$(mktemp)
  go run ./cmd/punctbench -multiquery-json "$mqraw" \
    -prev "$MQ_OUT" -sha "$sha" -time "$now" > "$tmp"
  mv "$tmp" "$MQ_OUT"
  echo "wrote $MQ_OUT"
fi
