#!/bin/sh
# Hot-path benchmark trajectory: runs the join/purge/ingestion benchmarks
# with -benchmem, pairs them with the recorded pre-optimization baseline
# (scripts/bench_baseline.txt), and writes BENCH_hotpath.json at the repo
# root. Run from the repository root, or via `make benchfull`.
#
#   BENCHTIME=2s scripts/bench.sh        # the checked-in configuration
#   BENCHTIME=100ms scripts/bench.sh     # a quick smoke pass
set -eu

BENCHTIME=${BENCHTIME:-2s}
OUT=${OUT:-BENCH_hotpath.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Root-package hot-path benchmarks: chained purge cycle, join probe,
# purge check, and the steady-state probe floor.
go test . -run xxx \
  -bench 'BenchmarkE2ChainedPurge|BenchmarkJoinProbe|BenchmarkPurgeCheck|BenchmarkProbeSteadyState' \
  -benchtime "$BENCHTIME" -benchmem | tee "$raw"

# Engine ingestion benchmarks: sequential vs sharded vs batched-sharded
# feeds, steady-state wire frame decoding, and the checkpoint/restore
# durability tax over a live runtime.
go test ./engine -run xxx \
  -bench 'BenchmarkIngest|BenchmarkWireReaderRead|BenchmarkCheckpoint' \
  -benchtime "$BENCHTIME" -benchmem | tee -a "$raw"

go run ./cmd/punctbench -bench-json "$raw" -baseline scripts/bench_baseline.txt > "$OUT"
echo "wrote $OUT"
