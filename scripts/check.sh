#!/bin/sh
# Standard verify entry point (mirrors `make check`): vet, build, test,
# and race-test the whole module. Run from the repository root.
set -eux

# gofmt is a failing gate: any unformatted file lists here and aborts.
unformatted=$(gofmt -l .)
[ -z "$unformatted" ] || { echo "gofmt needed: $unformatted" >&2; exit 1; }

go vet ./...
go build ./...
go test ./...
go test -race ./...

# Multi-producer ingestion stress, repeated under the race detector: one
# pass rarely covers the interleavings of concurrent SendBatch producers,
# the parallel wire pipeline, and Stats/Checkpoint barriers.
go test -race -run TestParallelIngestStress -count 5 ./engine/

# Warm-standby failover chaos soak under the race detector: repeated
# kill -> promote -> re-seed cycles over one continuous stream, requiring
# an element-exact delivery stream and one epoch bump per promotion.
SOAKFAILOVER_CYCLES=${SOAKFAILOVER_CYCLES:-5} \
  go test -race -run 'TestFailoverSoak|TestStandbyFailoverChaos' -count 1 ./server/

# Fuzz targets over their checked-in seed corpus: wire-format framing,
# the serving handshake front door, and the tiered join-state snapshot
# decoder (torn cold segments, corrupted bytes).
go test -run Fuzz ./engine/... ./server/... ./exec/...

# Checkpoint round-trip smoke: run a sharded workload writing periodic
# snapshots, then restore from the final snapshot and resume (a no-op
# resume at end-of-feed still exercises open -> parse -> install -> run).
ckpt=$(mktemp -u)
go run ./cmd/punctrun -scenario auction -n 300 -parallel \
  -checkpoint "$ckpt" -checkpoint-every 500 > /dev/null
go run ./cmd/punctrun -scenario auction -n 300 -parallel \
  -checkpoint "$ckpt" -restore | grep '^restore: resuming' > /dev/null
rm -f "$ckpt"

# Allocation floors for the hot path (testing.AllocsPerRun guards): the
# steady-state probe must stay ~alloc-free, a chained-purge cycle within
# its scratch budget, and the cold-tier probe at parity with the all-hot
# probe; frame decoding keeps its per-frame bound.
go test -run 'TestSteadyStateProbeAllocs|TestChainedPurgeAllocs|TestColdTierProbeAllocs' -count 1 ./exec/...
go test -run 'TestWireReaderReadAllocs' -count 1 ./engine/...

# Shared-tree fan-out alloc floor: delivering one output batch to extra
# subscribers (callback or passive) must not allocate per batch — sharing
# is O(subscribers) pointer work, never O(subscribers) copies.
go test -run 'TestFanOutDeliveryAllocs' -count 1 ./engine/
