package stream

import (
	"fmt"
	"sort"
	"strings"
)

// Scheme is a punctuation scheme (Section 2.3): a compile-time description
// of the punctuations a stream may carry. Each attribute slot is either
// punctuatable ("+", punctuations carry a constant there) or not ("_",
// punctuations carry a wildcard there). An actual punctuation is an
// instantiation of the scheme when its constant positions are exactly the
// scheme's punctuatable positions.
//
// As an extension beyond the paper (heartbeats [11] / watermark
// semantics), at most one punctuatable attribute may additionally be
// marked ordered ("<"): its instantiations carry a <=bound pattern
// instead of an equality constant, promising that all values at or below
// the bound are closed. For safety analysis an ordered attribute behaves
// exactly like an equality one (it is punctuatable); only the runtime
// coverage test differs (<= bound instead of exact match).
type Scheme struct {
	Stream       string // stream name the scheme belongs to
	Punctuatable []bool // per attribute: true = "+" or "<", false = "_"
	// Ordered marks the punctuatable attribute carrying <= bounds; nil
	// when the scheme is pure-equality. Ordered[i] implies Punctuatable[i].
	Ordered []bool
}

// NewScheme builds a scheme for the named stream. At least one attribute
// must be punctuatable; a scheme with none promises nothing and is
// rejected.
func NewScheme(streamName string, punctuatable ...bool) (Scheme, error) {
	any := false
	for _, p := range punctuatable {
		if p {
			any = true
			break
		}
	}
	if streamName == "" {
		return Scheme{}, fmt.Errorf("stream: scheme needs a stream name")
	}
	if len(punctuatable) == 0 || !any {
		return Scheme{}, fmt.Errorf("stream: scheme on %q must mark at least one attribute punctuatable", streamName)
	}
	return Scheme{Stream: streamName, Punctuatable: punctuatable}, nil
}

// MustScheme is NewScheme that panics on error.
func MustScheme(streamName string, punctuatable ...bool) Scheme {
	s, err := NewScheme(streamName, punctuatable...)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseScheme builds a scheme from the paper's textual mask, e.g.
// "(_, +, _)" or "_+_": '+' marks an equality-punctuatable attribute,
// '<' an ordered (watermark) one, '_' a non-punctuatable one.
// Parentheses, commas and spaces are ignored.
func ParseScheme(streamName, mask string) (Scheme, error) {
	var flags, ordered []bool
	hasOrdered := false
	for _, r := range mask {
		switch r {
		case '+':
			flags = append(flags, true)
			ordered = append(ordered, false)
		case '<':
			flags = append(flags, true)
			ordered = append(ordered, true)
			hasOrdered = true
		case '_':
			flags = append(flags, false)
			ordered = append(ordered, false)
		case '(', ')', ',', ' ', '\t':
		default:
			return Scheme{}, fmt.Errorf("stream: scheme mask %q has invalid rune %q", mask, r)
		}
	}
	if !hasOrdered {
		return NewScheme(streamName, flags...)
	}
	return NewOrderedScheme(streamName, flags, ordered)
}

// NewOrderedScheme builds a scheme with an ordered (watermark) attribute.
// Exactly one attribute may be ordered, and it must be punctuatable.
func NewOrderedScheme(streamName string, punctuatable, ordered []bool) (Scheme, error) {
	s, err := NewScheme(streamName, punctuatable...)
	if err != nil {
		return Scheme{}, err
	}
	if len(ordered) != len(punctuatable) {
		return Scheme{}, fmt.Errorf("stream: ordered mask arity %d != %d", len(ordered), len(punctuatable))
	}
	count := 0
	for i, o := range ordered {
		if o {
			count++
			if !punctuatable[i] {
				return Scheme{}, fmt.Errorf("stream: ordered attribute %d must be punctuatable", i)
			}
		}
	}
	if count == 0 {
		return s, nil
	}
	if count > 1 {
		return Scheme{}, fmt.Errorf("stream: at most one ordered attribute per scheme, got %d", count)
	}
	s.Ordered = append([]bool(nil), ordered...)
	return s, nil
}

// MustOrderedScheme is NewOrderedScheme that panics on error.
func MustOrderedScheme(streamName string, punctuatable, ordered []bool) Scheme {
	s, err := NewOrderedScheme(streamName, punctuatable, ordered)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attribute slots.
func (s Scheme) Arity() int { return len(s.Punctuatable) }

// PunctuatableIndexes returns the positions marked "+", ascending.
func (s Scheme) PunctuatableIndexes() []int {
	var out []int
	for i, p := range s.Punctuatable {
		if p {
			out = append(out, i)
		}
	}
	return out
}

// IsSimple reports whether the scheme has exactly one punctuatable
// attribute (the Section 4.1 case).
func (s Scheme) IsSimple() bool { return len(s.PunctuatableIndexes()) == 1 }

// OrderedIndex returns the position of the ordered attribute, or -1 for a
// pure-equality scheme.
func (s Scheme) OrderedIndex() int {
	for i, o := range s.Ordered {
		if o {
			return i
		}
	}
	return -1
}

// Validate checks the scheme against the stream schema it claims to
// describe.
func (s Scheme) Validate(sc *Schema) error {
	if s.Stream != sc.Name() {
		return fmt.Errorf("stream: scheme names stream %q, schema is %q", s.Stream, sc.Name())
	}
	if len(s.Punctuatable) != sc.Arity() {
		return fmt.Errorf("stream: scheme arity %d does not match schema %s", len(s.Punctuatable), sc)
	}
	if oi := s.OrderedIndex(); oi >= 0 {
		if k := sc.Attr(oi).Kind; k != KindInt && k != KindFloat {
			return fmt.Errorf("stream: ordered attribute %q must be numeric, is %s", sc.Attr(oi).Name, k)
		}
	}
	return nil
}

// Instantiate builds the punctuation that assigns the given constants to
// the scheme's punctuatable attributes (in ascending position order) and
// wildcards elsewhere.
func (s Scheme) Instantiate(consts ...Value) (Punctuation, error) {
	idx := s.PunctuatableIndexes()
	if len(consts) != len(idx) {
		return Punctuation{}, fmt.Errorf("stream: scheme %s needs %d constants, got %d", s, len(idx), len(consts))
	}
	pats := make([]Pattern, len(s.Punctuatable))
	for i := range pats {
		pats[i] = Wildcard()
	}
	oi := s.OrderedIndex()
	for k, i := range idx {
		if i == oi {
			pats[i] = Leq(consts[k])
		} else {
			pats[i] = Const(consts[k])
		}
	}
	return NewPunctuation(pats...)
}

// Instantiates reports whether the punctuation is an instantiation of this
// scheme: the punctuation's constant positions coincide exactly with the
// scheme's punctuatable positions.
func (s Scheme) Instantiates(p Punctuation) bool {
	if len(p.Patterns) != len(s.Punctuatable) {
		return false
	}
	oi := s.OrderedIndex()
	for i, pat := range p.Patterns {
		if pat.IsWildcard() == s.Punctuatable[i] {
			return false
		}
		if !pat.IsWildcard() && pat.IsLeq() != (i == oi) {
			return false
		}
	}
	return true
}

// Equal reports structural equality of schemes.
func (s Scheme) Equal(o Scheme) bool {
	if s.Stream != o.Stream || len(s.Punctuatable) != len(o.Punctuatable) {
		return false
	}
	for i := range s.Punctuatable {
		if s.Punctuatable[i] != o.Punctuatable[i] {
			return false
		}
	}
	return s.OrderedIndex() == o.OrderedIndex()
}

// String renders the scheme as Stream(_, +, _).
func (s Scheme) String() string {
	var b strings.Builder
	b.WriteString(s.Stream)
	b.WriteByte('(')
	oi := s.OrderedIndex()
	for i, p := range s.Punctuatable {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case i == oi:
			b.WriteByte('<')
		case p:
			b.WriteByte('+')
		default:
			b.WriteByte('_')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// SchemeSet is the punctuation scheme set ℜ held by the query register: a
// multimap from stream name to the schemes available on that stream.
type SchemeSet struct {
	byStream map[string][]Scheme
	count    int
}

// NewSchemeSet builds a set from the given schemes, deduplicating exact
// repeats.
func NewSchemeSet(schemes ...Scheme) *SchemeSet {
	set := &SchemeSet{byStream: make(map[string][]Scheme)}
	for _, s := range schemes {
		set.Add(s)
	}
	return set
}

// Add inserts a scheme unless an identical one is already present.
// It reports whether the scheme was added.
func (ss *SchemeSet) Add(s Scheme) bool {
	for _, have := range ss.byStream[s.Stream] {
		if have.Equal(s) {
			return false
		}
	}
	ss.byStream[s.Stream] = append(ss.byStream[s.Stream], s)
	ss.count++
	return true
}

// Remove deletes an exactly matching scheme; it reports whether one was
// removed.
func (ss *SchemeSet) Remove(s Scheme) bool {
	list := ss.byStream[s.Stream]
	for i, have := range list {
		if have.Equal(s) {
			ss.byStream[s.Stream] = append(list[:i], list[i+1:]...)
			if len(ss.byStream[s.Stream]) == 0 {
				delete(ss.byStream, s.Stream)
			}
			ss.count--
			return true
		}
	}
	return false
}

// ForStream returns the schemes registered for the named stream.
func (ss *SchemeSet) ForStream(name string) []Scheme {
	return ss.byStream[name]
}

// Len returns the total number of schemes in the set.
func (ss *SchemeSet) Len() int { return ss.count }

// All returns every scheme, grouped by stream name (names sorted) for
// deterministic iteration.
func (ss *SchemeSet) All() []Scheme {
	names := make([]string, 0, len(ss.byStream))
	for n := range ss.byStream {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Scheme
	for _, n := range names {
		out = append(out, ss.byStream[n]...)
	}
	return out
}

// Clone returns a deep copy of the set.
func (ss *SchemeSet) Clone() *SchemeSet {
	return NewSchemeSet(ss.All()...)
}

// HasPunctuatable reports whether some scheme on the named stream marks
// the given attribute position punctuatable (used for building the simple
// punctuation graph, where only single-attribute schemes create plain
// edges; multi-attribute schemes are handled by the generalized graph).
func (ss *SchemeSet) HasPunctuatable(streamName string, attr int) bool {
	for _, s := range ss.byStream[streamName] {
		if attr < len(s.Punctuatable) && s.Punctuatable[attr] {
			return true
		}
	}
	return false
}

// String lists the schemes.
func (ss *SchemeSet) String() string {
	var parts []string
	for _, s := range ss.All() {
		parts = append(parts, s.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
