package stream

import "testing"

// TestValueHashEquality: equal values hash equal — the routing invariant
// the partitioned join relies on (tuples agreeing on the join attribute
// must land in the same partition).
func TestValueHashEquality(t *testing.T) {
	pairs := [][2]Value{
		{Int(42), Int(42)},
		{Int(0), Int(0)},
		{Int(-7), Int(-7)},
		{Str("itemid-17"), Str("itemid-17")},
		{Str(""), Str("")},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Fatalf("test bug: %v and %v should be equal", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Fatalf("equal values %v hash to %x and %x", p[0], p[0].Hash(), p[1].Hash())
		}
	}
}

// TestValueHashDiscriminates: distinct values — including the same bits
// under a different kind — should not collide on a tiny probe set.
func TestValueHashDiscriminates(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-1), Int(256), Int(65), // 65 = 'A'
		Str("A"), Str(""), Str("0"), Str("AB"), Str("BA"),
	}
	seen := make(map[uint64]Value)
	for _, v := range vals {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("%v and %v collide at %x", prev, v, h)
		}
		seen[h] = v
	}
}

// TestValueHashSpreads: sequential int keys must spread across small
// modulus buckets, not pile into one partition.
func TestValueHashSpreads(t *testing.T) {
	const parts = 4
	var buckets [parts]int
	for k := int64(0); k < 1024; k++ {
		buckets[Int(k).Hash()%parts]++
	}
	for i, n := range buckets {
		if n == 0 {
			t.Fatalf("bucket %d empty over 1024 sequential keys: %v", i, buckets)
		}
		if n > 1024/2 {
			t.Fatalf("bucket %d holds %d of 1024 keys; hash is degenerate: %v", i, n, buckets)
		}
	}
}
