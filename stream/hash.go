package stream

// Hash returns a 64-bit FNV-1a hash of the value, equal for equal values
// (same kind and payload). The partitioned execution layer routes tuples
// by Hash of their co-partitioning attribute, so the function must be
// deterministic across processes and allocation-free.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(v.kind)
	h *= prime64
	n := v.num
	for i := 0; i < 8; i++ {
		h ^= n & 0xff
		h *= prime64
		n >>= 8
	}
	for i := 0; i < len(v.str); i++ {
		h ^= uint64(v.str[i])
		h *= prime64
	}
	return h
}
