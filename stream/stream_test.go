package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueRoundTrip(t *testing.T) {
	cases := []Value{Int(0), Int(-5), Int(1 << 40), Float(3.25), Float(-0.5), Str(""), Str("héllo")}
	for _, v := range cases {
		if !v.Equal(v.Key().Value()) {
			t.Errorf("Key/Value round trip broke %s", v)
		}
	}
	if Int(1).Equal(Float(1)) {
		t.Error("int and float must not compare equal")
	}
	if !Float(0).Equal(Float(math.Copysign(0, -1))) {
		t.Error("negative zero should normalize to zero")
	}
}

func TestValueAccessorsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { Int(1).AsFloat() },
		func() { Float(1).AsString() },
		func() { Str("x").AsInt() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on wrong-kind accessor")
				}
			}()
			fn()
		}()
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"42":     Int(42),
		"-1":     Int(-1),
		"3.5":    Float(3.5),
		`"hi"`:   Str("hi"),
		"1e+100": Float(1e100),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestKeyOfInjective(t *testing.T) {
	// Adjacent values whose naive concatenation would collide.
	a := KeyOf(Str("ab"), Str("c"))
	b := KeyOf(Str("a"), Str("bc"))
	if a == b {
		t.Error("KeyOf must be injective across boundaries")
	}
	if KeyOf(Int(1), Int(2)) == KeyOf(Int(2), Int(1)) {
		t.Error("KeyOf must respect order")
	}
	err := quick.Check(func(x, y int64, s1, s2 string) bool {
		k1 := KeyOf(Int(x), Str(s1))
		k2 := KeyOf(Int(y), Str(s2))
		same := x == y && s1 == s2
		return (k1 == k2) == same
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := NewSchema("S"); err == nil {
		t.Error("no attributes must fail")
	}
	if _, err := NewSchema("S", Attribute{Name: "a", Kind: KindInt}, Attribute{Name: "a", Kind: KindInt}); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if _, err := NewSchema("S", Attribute{Name: "a"}); err == nil {
		t.Error("invalid kind must fail")
	}
	s := MustSchema("S", Attribute{Name: "a", Kind: KindInt}, Attribute{Name: "b", Kind: KindString})
	if s.Index("b") != 1 || s.Index("z") != -1 {
		t.Error("Index lookup broken")
	}
	if s.String() != "S(a:int, b:string)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTupleValidate(t *testing.T) {
	s := MustSchema("S", Attribute{Name: "a", Kind: KindInt}, Attribute{Name: "b", Kind: KindString})
	if err := NewTuple(Int(1), Str("x")).Validate(s); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := NewTuple(Int(1)).Validate(s); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := NewTuple(Str("x"), Str("y")).Validate(s); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestPunctuationMatches(t *testing.T) {
	// The paper's (*, 1, *) example.
	p := MustPunctuation(Wildcard(), Const(Int(1)), Wildcard())
	if !p.Matches(NewTuple(Int(9), Int(1), Int(7))) {
		t.Error("should match itemid=1")
	}
	if p.Matches(NewTuple(Int(9), Int(2), Int(7))) {
		t.Error("should not match itemid=2")
	}
	if p.Matches(NewTuple(Int(1), Int(1))) {
		t.Error("arity mismatch should not match")
	}
	if got := p.String(); got != "(*, 1, *)" {
		t.Errorf("String() = %q", got)
	}
	if _, err := NewPunctuation(Wildcard(), Wildcard()); err == nil {
		t.Error("all-wildcard punctuation must be rejected")
	}
	if _, err := NewPunctuation(); err == nil {
		t.Error("empty punctuation must be rejected")
	}
	if got := p.ConstIndexes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("ConstIndexes = %v", got)
	}
}

func TestPunctuationValidate(t *testing.T) {
	s := MustSchema("S", Attribute{Name: "a", Kind: KindInt}, Attribute{Name: "b", Kind: KindString})
	if err := MustPunctuation(Const(Int(1)), Wildcard()).Validate(s); err != nil {
		t.Errorf("valid punctuation rejected: %v", err)
	}
	if err := MustPunctuation(Const(Str("x")), Wildcard()).Validate(s); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := MustPunctuation(Const(Int(1))).Validate(s); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestSchemeParseAndInstantiate(t *testing.T) {
	s, err := ParseScheme("bid", "(_, +, _)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsSimple() || s.Arity() != 3 {
		t.Fatalf("parsed scheme %s wrong", s)
	}
	if s.String() != "bid(_, +, _)" {
		t.Errorf("String() = %q", s.String())
	}
	p, err := s.Instantiate(Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "(*, 1, *)" {
		t.Errorf("instantiation = %s", p)
	}
	if !s.Instantiates(p) {
		t.Error("scheme must recognize its own instantiation")
	}
	// A punctuation with extra constants is NOT an instantiation.
	p2 := MustPunctuation(Const(Int(9)), Const(Int(1)), Wildcard())
	if s.Instantiates(p2) {
		t.Error("over-constrained punctuation is not an instantiation")
	}
	if _, err := s.Instantiate(Int(1), Int(2)); err == nil {
		t.Error("wrong constant count must fail")
	}
	if _, err := ParseScheme("s", "(x)"); err == nil {
		t.Error("bad mask rune must fail")
	}
	if _, err := ParseScheme("s", "(___)"); err == nil {
		t.Error("all-wildcard scheme must fail")
	}
	if _, err := NewScheme("", true); err == nil {
		t.Error("empty stream name must fail")
	}
}

func TestSchemeSet(t *testing.T) {
	set := NewSchemeSet()
	a := MustScheme("S", true, false)
	b := MustScheme("S", false, true)
	if !set.Add(a) || set.Add(a) {
		t.Error("Add dedup broken")
	}
	set.Add(b)
	set.Add(MustScheme("T", true))
	if set.Len() != 3 {
		t.Errorf("Len = %d", set.Len())
	}
	if got := len(set.ForStream("S")); got != 2 {
		t.Errorf("ForStream(S) = %d schemes", got)
	}
	if !set.HasPunctuatable("S", 0) || set.HasPunctuatable("S", 2) || set.HasPunctuatable("X", 0) {
		t.Error("HasPunctuatable broken")
	}
	clone := set.Clone()
	clone.Add(MustScheme("U", true))
	if set.Len() != 3 || clone.Len() != 4 {
		t.Error("Clone must be independent")
	}
	if got := set.String(); got != "{S(+, _), S(_, +), T(+)}" {
		t.Errorf("String() = %q", got)
	}
}

func TestElement(t *testing.T) {
	te := TupleElement(NewTuple(Int(1)))
	pe := PunctElement(MustPunctuation(Const(Int(1))))
	if te.IsPunct() || !pe.IsPunct() {
		t.Error("tags broken")
	}
	func() {
		defer func() { recover() }()
		te.Punct()
		t.Error("Punct() on tuple element must panic")
	}()
	func() {
		defer func() { recover() }()
		pe.Tuple()
		t.Error("Tuple() on punct element must panic")
	}()
}
