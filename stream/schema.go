package stream

import (
	"fmt"
	"strings"
)

// Attribute describes one column of a stream schema.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is the relational schema of a data stream: an ordered list of
// named, typed attributes. Schemas are immutable after construction.
type Schema struct {
	name  string
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema for the stream called name. Attribute names
// must be unique and non-empty.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("stream: schema needs a stream name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("stream: schema %q needs at least one attribute", name)
	}
	s := &Schema{
		name:  name,
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("stream: schema %q attribute %d has empty name", name, i)
		}
		if a.Kind == KindInvalid {
			return nil, fmt.Errorf("stream: schema %q attribute %q has invalid kind", name, a.Name)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("stream: schema %q has duplicate attribute %q", name, a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests,
// examples and statically known schemas.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the stream name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Rename returns a copy of the schema under a new stream name — the
// aliasing mechanism for self-joins, where the same physical stream feeds
// a query twice under two names.
func (s *Schema) Rename(name string) (*Schema, error) {
	return NewSchema(name, s.attrs...)
}

// String renders the schema as Name(attr:kind, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one data element of a stream: a flat value list positionally
// matching a schema. Tuples are treated as immutable once emitted.
type Tuple struct {
	Values []Value
}

// NewTuple wraps values into a tuple.
func NewTuple(values ...Value) Tuple { return Tuple{Values: values} }

// Validate checks the tuple against a schema: arity and per-attribute kind.
func (t Tuple) Validate(s *Schema) error {
	if len(t.Values) != s.Arity() {
		return fmt.Errorf("stream: tuple arity %d does not match schema %s", len(t.Values), s)
	}
	for i, v := range t.Values {
		if v.Kind() != s.attrs[i].Kind {
			return fmt.Errorf("stream: attribute %q expects %s, tuple has %s",
				s.attrs[i].Name, s.attrs[i].Kind, v.Kind())
		}
	}
	return nil
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
