package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Codec serializes stream elements against a fixed schema, so the input
// manager can accept tuples and punctuations from the application
// environment over a wire. The format is schema-directed and compact:
//
//	element   = kind byte (0 tuple, 1 punctuation) , payload
//	tuple     = value*arity
//	punct     = slot*arity           slot = 0x00 "*" | 0x01 value
//	value     = int64 LE | float64 bits LE | uvarint len + bytes
//
// Decoding validates against the schema, so a corrupted or mis-schema'd
// payload fails loudly instead of producing garbage elements.
type Codec struct {
	schema *Schema
}

// NewCodec returns a codec bound to the schema.
func NewCodec(s *Schema) *Codec { return &Codec{schema: s} }

const (
	codecTuple byte = 0
	codecPunct byte = 1

	slotWildcard byte = 0
	slotConst    byte = 1
	slotLeq      byte = 2
)

// Encode appends the element's wire form to dst and returns the extended
// slice.
func (c *Codec) Encode(dst []byte, e Element) ([]byte, error) {
	if e.IsPunct() {
		p := e.Punct()
		if err := p.Validate(c.schema); err != nil {
			return nil, err
		}
		dst = append(dst, codecPunct)
		for _, pat := range p.Patterns {
			switch {
			case pat.IsWildcard():
				dst = append(dst, slotWildcard)
			case pat.IsLeq():
				dst = append(dst, slotLeq)
				dst = appendValue(dst, pat.Value())
			default:
				dst = append(dst, slotConst)
				dst = appendValue(dst, pat.Value())
			}
		}
		return dst, nil
	}
	t := e.Tuple()
	if err := t.Validate(c.schema); err != nil {
		return nil, err
	}
	dst = append(dst, codecTuple)
	for _, v := range t.Values {
		dst = appendValue(dst, v)
	}
	return dst, nil
}

func appendValue(dst []byte, v Value) []byte {
	switch v.Kind() {
	case KindInt:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.AsInt()))
		return append(dst, buf[:]...)
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.AsFloat()))
		return append(dst, buf[:]...)
	case KindString:
		s := v.AsString()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	default:
		panic("stream: encode of invalid value")
	}
}

// Decode parses one element from the front of src, returning the element
// and the remaining bytes.
func (c *Codec) Decode(src []byte) (Element, []byte, error) {
	if len(src) == 0 {
		return Element{}, nil, io.ErrUnexpectedEOF
	}
	kind := src[0]
	src = src[1:]
	switch kind {
	case codecTuple:
		values := make([]Value, c.schema.Arity())
		var err error
		for i := range values {
			values[i], src, err = c.decodeValue(src, c.schema.Attr(i).Kind)
			if err != nil {
				return Element{}, nil, err
			}
		}
		return TupleElement(NewTuple(values...)), src, nil
	case codecPunct:
		pats := make([]Pattern, c.schema.Arity())
		for i := range pats {
			if len(src) == 0 {
				return Element{}, nil, io.ErrUnexpectedEOF
			}
			slot := src[0]
			src = src[1:]
			switch slot {
			case slotWildcard:
				pats[i] = Wildcard()
			case slotConst, slotLeq:
				var v Value
				var err error
				v, src, err = c.decodeValue(src, c.schema.Attr(i).Kind)
				if err != nil {
					return Element{}, nil, err
				}
				if slot == slotLeq {
					pats[i] = Leq(v)
				} else {
					pats[i] = Const(v)
				}
			default:
				return Element{}, nil, fmt.Errorf("stream: codec: bad pattern slot 0x%02x", slot)
			}
		}
		p, err := NewPunctuation(pats...)
		if err != nil {
			return Element{}, nil, fmt.Errorf("stream: codec: %w", err)
		}
		if err := p.Validate(c.schema); err != nil {
			return Element{}, nil, fmt.Errorf("stream: codec: %w", err)
		}
		return PunctElement(p), src, nil
	default:
		return Element{}, nil, fmt.Errorf("stream: codec: bad element kind 0x%02x", kind)
	}
}

func (c *Codec) decodeValue(src []byte, k Kind) (Value, []byte, error) {
	switch k {
	case KindInt:
		if len(src) < 8 {
			return Value{}, nil, io.ErrUnexpectedEOF
		}
		return Int(int64(binary.LittleEndian.Uint64(src))), src[8:], nil
	case KindFloat:
		if len(src) < 8 {
			return Value{}, nil, io.ErrUnexpectedEOF
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(src))), src[8:], nil
	case KindString:
		n, used := binary.Uvarint(src)
		if used <= 0 || uint64(len(src)-used) < n {
			return Value{}, nil, io.ErrUnexpectedEOF
		}
		return Str(string(src[used : used+int(n)])), src[used+int(n):], nil
	default:
		return Value{}, nil, fmt.Errorf("stream: codec: invalid kind %d", k)
	}
}
