package stream

import "fmt"

// Element is one item of a punctuated data stream: either a tuple or a
// punctuation, in arrival order on a single feed (§2.3 treats punctuations
// as data interleaved with tuples).
type Element struct {
	punct bool
	tuple Tuple
	p     Punctuation
}

// TupleElement wraps a tuple as a stream element.
func TupleElement(t Tuple) Element { return Element{tuple: t} }

// PunctElement wraps a punctuation as a stream element.
func PunctElement(p Punctuation) Element { return Element{punct: true, p: p} }

// IsPunct reports whether the element is a punctuation.
func (e Element) IsPunct() bool { return e.punct }

// Tuple returns the tuple payload; it panics on a punctuation element.
func (e Element) Tuple() Tuple {
	if e.punct {
		panic("stream: Tuple() on punctuation element")
	}
	return e.tuple
}

// Punct returns the punctuation payload; it panics on a tuple element.
func (e Element) Punct() Punctuation {
	if !e.punct {
		panic("stream: Punct() on tuple element")
	}
	return e.p
}

// String renders the element.
func (e Element) String() string {
	if e.punct {
		return fmt.Sprintf("punct%s", e.p)
	}
	return fmt.Sprintf("tuple%s", e.tuple)
}
