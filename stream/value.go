// Package stream defines the data model for punctuated data streams:
// typed attribute values, relational schemas, tuples, punctuations
// (Tucker et al.'s pattern notation), punctuation schemes (the paper's
// compile-time description of which punctuations an application may
// generate), and the stream elements that interleave tuples and
// punctuations on a single ordered feed.
package stream

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the attribute types supported by the engine.
type Kind uint8

const (
	// KindInvalid is the zero Kind; no valid value carries it.
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer attribute.
	KindInt
	// KindFloat is a 64-bit floating point attribute.
	KindFloat
	// KindString is a string attribute.
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return "invalid"
	}
}

// Value is a compact tagged union holding one attribute value. It avoids
// interface boxing on the join hot path: numeric payloads live in num and
// strings in str.
type Value struct {
	kind Kind
	num  uint64
	str  string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, num: uint64(v)} }

// Float returns a floating point Value.
func Float(v float64) Value {
	return Value{kind: KindFloat, num: floatBits(v)}
}

// String returns a string Value. (The constructor is named Str to leave
// the String method for fmt.Stringer.)
func Str(v string) Value { return Value{kind: KindString, str: v} }

// Kind returns the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it panics if the value is not an int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("stream: AsInt on " + v.kind.String() + " value")
	}
	return int64(v.num)
}

// AsFloat returns the float payload; it panics if the value is not a float.
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		panic("stream: AsFloat on " + v.kind.String() + " value")
	}
	return floatFromBits(v.num)
}

// AsString returns the string payload; it panics if the value is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("stream: AsString on " + v.kind.String() + " value")
	}
	return v.str
}

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	return v.kind == o.kind && v.num == o.num && v.str == o.str
}

// Key returns a hashable representation suitable for use as a Go map key
// in join hash tables and punctuation indexes.
func (v Value) Key() ValueKey {
	return ValueKey{kind: v.kind, num: v.num, str: v.str}
}

// ValueKey is the comparable form of a Value.
type ValueKey struct {
	kind Kind
	num  uint64
	str  string
}

// Value reconstructs the Value a key was derived from.
func (k ValueKey) Value() Value { return Value{kind: k.kind, num: k.num, str: k.str} }

// String renders the value as a literal.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(floatFromBits(v.num), 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	default:
		return "<invalid>"
	}
}

// Zero returns the zero value of a kind (0, 0.0, "").
func Zero(k Kind) Value {
	switch k {
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindString:
		return Str("")
	default:
		panic(fmt.Sprintf("stream: Zero of invalid kind %d", k))
	}
}

// LessEq reports v <= bound for numeric values of the same kind; ok is
// false when the values are not comparable (different or non-numeric
// kinds).
func LessEq(v, bound Value) (le, ok bool) {
	if v.kind != bound.kind {
		return false, false
	}
	switch v.kind {
	case KindInt:
		return int64(v.num) <= int64(bound.num), true
	case KindFloat:
		return floatFromBits(v.num) <= floatFromBits(bound.num), true
	default:
		return false, false
	}
}

// KeyOf encodes a value list as an injective string key, suitable for
// hash-map composite keys (e.g. multi-attribute punctuation constants):
// kind byte, fixed-width numeric payload, then length-prefixed string
// payload per value.
func KeyOf(values ...Value) string {
	return string(AppendKey(nil, values...))
}

// AppendKey appends the KeyOf encoding of the value list to dst and
// returns the extended slice. Callers that reuse dst and look the key up
// via m[string(dst)] get composite-key map probes with no per-probe
// allocation (the compiler elides the string conversion in that pattern).
func AppendKey(dst []byte, values ...Value) []byte {
	var buf [8]byte
	for _, v := range values {
		dst = append(dst, byte(v.kind))
		binary.LittleEndian.PutUint64(buf[:], v.num)
		dst = append(dst, buf[:]...)
		binary.LittleEndian.PutUint64(buf[:], uint64(len(v.str)))
		dst = append(dst, buf[:]...)
		dst = append(dst, v.str...)
	}
	return dst
}

func floatBits(f float64) uint64 {
	// Normalize negative zero so Equal/Key behave as equality on the
	// observable value.
	if f == 0 {
		f = 0
	}
	return math.Float64bits(f)
}

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
