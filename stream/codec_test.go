package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func codecSchema() *Schema {
	return MustSchema("mix",
		Attribute{Name: "a", Kind: KindInt},
		Attribute{Name: "b", Kind: KindFloat},
		Attribute{Name: "c", Kind: KindString})
}

func TestCodecTupleRoundTrip(t *testing.T) {
	c := NewCodec(codecSchema())
	orig := TupleElement(NewTuple(Int(-42), Float(3.75), Str("héllo\x00world")))
	buf, err := c.Encode(nil, orig)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("unconsumed bytes: %d", len(rest))
	}
	if got.IsPunct() {
		t.Fatal("kind flipped")
	}
	for i, v := range got.Tuple().Values {
		if !v.Equal(orig.Tuple().Values[i]) {
			t.Fatalf("value %d = %s, want %s", i, v, orig.Tuple().Values[i])
		}
	}
}

func TestCodecPunctRoundTrip(t *testing.T) {
	c := NewCodec(codecSchema())
	orig := PunctElement(MustPunctuation(Const(Int(7)), Wildcard(), Const(Str("x"))))
	buf, err := c.Encode(nil, orig)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := c.Decode(buf)
	if err != nil || len(rest) != 0 {
		t.Fatal(err, len(rest))
	}
	p := got.Punct()
	if !p.Patterns[0].Value().Equal(Int(7)) || !p.Patterns[1].IsWildcard() ||
		!p.Patterns[2].Value().Equal(Str("x")) {
		t.Fatalf("punct = %s", p)
	}
}

func TestCodecStreamOfElements(t *testing.T) {
	c := NewCodec(codecSchema())
	var buf []byte
	var want []Element
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		var e Element
		if rng.Intn(3) == 0 {
			e = PunctElement(MustPunctuation(Const(Int(rng.Int63())), Wildcard(), Wildcard()))
		} else {
			e = TupleElement(NewTuple(Int(rng.Int63()), Float(rng.NormFloat64()), Str("s")))
		}
		var err error
		buf, err = c.Encode(buf, e)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, e)
	}
	for i := 0; len(buf) > 0; i++ {
		got, rest, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("element %d: %v", i, err)
		}
		if got.String() != want[i].String() {
			t.Fatalf("element %d = %s, want %s", i, got, want[i])
		}
		buf = rest
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	c := NewCodec(codecSchema())
	err := quick.Check(func(a int64, b float64, s string, punct bool, wild uint8) bool {
		var e Element
		if punct {
			pats := []Pattern{Const(Int(a)), Const(Float(b)), Const(Str(s))}
			anyConst := false
			for i := 0; i < 3; i++ {
				if wild&(1<<uint(i)) != 0 {
					pats[i] = Wildcard()
				} else {
					anyConst = true
				}
			}
			if !anyConst {
				return true // all-wildcard punctuations are invalid by design
			}
			p, err := NewPunctuation(pats...)
			if err != nil {
				return false
			}
			e = PunctElement(p)
		} else {
			e = TupleElement(NewTuple(Int(a), Float(b), Str(s)))
		}
		buf, err := c.Encode(nil, e)
		if err != nil {
			return false
		}
		got, rest, err := c.Decode(buf)
		return err == nil && len(rest) == 0 && got.String() == e.String()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCodecErrors(t *testing.T) {
	c := NewCodec(codecSchema())
	// Wrong arity rejected at encode time.
	if _, err := c.Encode(nil, TupleElement(NewTuple(Int(1)))); err == nil {
		t.Error("arity mismatch must fail")
	}
	// Truncated payloads rejected at decode time.
	good, err := c.Encode(nil, TupleElement(NewTuple(Int(1), Float(2), Str("abc"))))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := c.Decode(good[:cut]); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
	// Bad element kind.
	if _, _, err := c.Decode([]byte{0xFF}); err == nil {
		t.Error("bad kind must fail")
	}
	// Bad pattern slot.
	if _, _, err := c.Decode([]byte{1, 0xEE}); err == nil {
		t.Error("bad slot must fail")
	}
	// A float NaN round-trips structurally (bit pattern preserved).
	nan, err := c.Encode(nil, TupleElement(NewTuple(Int(0), Float(mathNaN()), Str(""))))
	if err != nil {
		t.Fatal(err)
	}
	if _, rest, err := c.Decode(nan); err != nil || len(rest) != 0 {
		t.Fatal("NaN must decode")
	}
}

func mathNaN() float64 {
	z := 0.0
	return z / z
}
