package stream

import (
	"fmt"
	"strings"
)

// Pattern is one attribute slot of a punctuation: the wildcard "*" (no
// constraint on future values of that attribute), a constant equal-value
// constraint, or an ordered "<=" bound (an extension of the paper's
// model in the spirit of heartbeats [11] and modern watermarks: the
// promise that no future tuple carries a value at or below the bound).
type Pattern struct {
	wild bool
	leq  bool
	val  Value
}

// Wildcard is the "*" pattern.
func Wildcard() Pattern { return Pattern{wild: true} }

// Const returns an equal-value constant pattern.
func Const(v Value) Pattern { return Pattern{val: v} }

// Leq returns an ordered bound pattern: it matches every value <= v.
// Only numeric values are comparable; Validate enforces that against the
// schema.
func Leq(v Value) Pattern { return Pattern{leq: true, val: v} }

// IsWildcard reports whether the pattern is "*".
func (p Pattern) IsWildcard() bool { return p.wild }

// IsLeq reports whether the pattern is an ordered bound.
func (p Pattern) IsLeq() bool { return p.leq }

// Value returns the constant (or bound) of a non-wildcard pattern; it
// panics on "*".
func (p Pattern) Value() Value {
	if p.wild {
		panic("stream: Value of wildcard pattern")
	}
	return p.val
}

// MatchesValue reports whether a single attribute value satisfies the
// pattern: wildcards match everything, constants match by equality, and
// ordered bounds match every value at or below the bound.
func (p Pattern) MatchesValue(v Value) bool {
	if p.wild {
		return true
	}
	if p.leq {
		le, ok := LessEq(v, p.val)
		return ok && le
	}
	return p.val.Equal(v)
}

// String renders "*", the constant literal, or "<=bound".
func (p Pattern) String() string {
	if p.wild {
		return "*"
	}
	if p.leq {
		return "<=" + p.val.String()
	}
	return p.val.String()
}

// Punctuation is a promise that no future tuple of its stream matches all
// of its non-wildcard patterns. Positionally aligned with the stream
// schema. A punctuation whose patterns are all wildcards would assert the
// end of the stream; constructors reject it because the paper's schemes
// always instantiate at least one constant.
type Punctuation struct {
	Patterns []Pattern
}

// NewPunctuation wraps patterns into a punctuation.
func NewPunctuation(patterns ...Pattern) (Punctuation, error) {
	allWild := true
	for _, p := range patterns {
		if !p.IsWildcard() {
			allWild = false
			break
		}
	}
	if len(patterns) == 0 || allWild {
		return Punctuation{}, fmt.Errorf("stream: punctuation must constrain at least one attribute")
	}
	return Punctuation{Patterns: patterns}, nil
}

// MustPunctuation is NewPunctuation that panics on error.
func MustPunctuation(patterns ...Pattern) Punctuation {
	p, err := NewPunctuation(patterns...)
	if err != nil {
		panic(err)
	}
	return p
}

// Matches reports whether the tuple satisfies the punctuation's predicate,
// i.e. whether the punctuation promises that tuples like t will never
// arrive again.
func (p Punctuation) Matches(t Tuple) bool {
	if len(p.Patterns) != len(t.Values) {
		return false
	}
	for i, pat := range p.Patterns {
		if !pat.MatchesValue(t.Values[i]) {
			return false
		}
	}
	return true
}

// ConstIndexes returns the positions of the non-wildcard patterns, in
// ascending order.
func (p Punctuation) ConstIndexes() []int {
	var out []int
	for i, pat := range p.Patterns {
		if !pat.IsWildcard() {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks arity and that every constant pattern's kind matches the
// schema.
func (p Punctuation) Validate(s *Schema) error {
	if len(p.Patterns) != s.Arity() {
		return fmt.Errorf("stream: punctuation arity %d does not match schema %s", len(p.Patterns), s)
	}
	for i, pat := range p.Patterns {
		if pat.IsWildcard() {
			continue
		}
		if pat.Value().Kind() != s.Attr(i).Kind {
			return fmt.Errorf("stream: punctuation pattern %d expects %s, has %s",
				i, s.Attr(i).Kind, pat.Value().Kind())
		}
		if pat.IsLeq() && s.Attr(i).Kind != KindInt && s.Attr(i).Kind != KindFloat {
			return fmt.Errorf("stream: ordered pattern on non-numeric attribute %q", s.Attr(i).Name)
		}
	}
	return nil
}

// String renders the punctuation as (*, 1, *).
func (p Punctuation) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, pat := range p.Patterns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(pat.String())
	}
	b.WriteByte(')')
	return b.String()
}
