package engine_test

// Live query evolution under load (run under -race in `make race`):
// registering and unregistering views concurrently with active
// producers, stats snapshots, and a checkpoint barrier must never
// disturb the surviving views — their output must stay element-identical
// to a churn-free run, an attached view must receive an exact suffix of
// the shared delivery sequence, and a detached view must keep an exact
// prefix.

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"punctsafe/engine"
	"punctsafe/stream"
	"punctsafe/workload"
)

// liveFeed is the deterministic element feed the evolve-under-load tests
// drive: closed per-item auction groups.
func liveFeed(items, bids int) []engine.TaggedElement {
	var out []engine.TaggedElement
	for i := 0; i < items; i++ {
		out = append(out, engine.TaggedElement{Stream: "item", Elem: stream.TupleElement(stream.NewTuple(
			stream.Int(1), stream.Int(int64(i)), stream.Str("x"), stream.Float(1)))})
		for b := 0; b < bids; b++ {
			out = append(out, engine.TaggedElement{Stream: "bid", Elem: stream.TupleElement(stream.NewTuple(
				stream.Int(int64(b)), stream.Int(int64(i)), stream.Float(float64(b))))})
		}
		out = append(out, engine.TaggedElement{Stream: "bid", Elem: stream.PunctElement(stream.MustPunctuation(
			stream.Wildcard(), stream.Const(stream.Int(int64(i))), stream.Wildcard()))})
		out = append(out, engine.TaggedElement{Stream: "item", Elem: stream.PunctElement(stream.MustPunctuation(
			stream.Wildcard(), stream.Const(stream.Int(int64(i))), stream.Wildcard(), stream.Wildcard()))})
	}
	return out
}

func registerShare(t *testing.T, d *engine.DSMS, name, tag string) *engine.Registered {
	t.Helper()
	reg, err := d.Register(name, workload.AuctionQuery(), engine.Options{Share: true, ShareTag: tag})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestLiveEvolveUnderLoad: one producer streams the full feed while a
// churn goroutine attaches and detaches views (both joining the live
// share group and spawning/retiring whole trees) and an observer hammers
// Stats, DeadLetters, and a mid-run Checkpoint. The views that survive
// from start to finish must deliver exactly what a churn-free sequential
// run delivers.
func TestLiveEvolveUnderLoad(t *testing.T) {
	feed := liveFeed(120, 4)

	// Churn-free sequential reference.
	ref := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		ref.RegisterScheme(s)
	}
	refKeep := registerShare(t, ref, "keep0", "")
	for _, te := range feed {
		if err := ref.Push(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(refKeep.Results))
	for i, r := range refKeep.Results {
		want[i] = r.String()
	}
	if len(want) != 120*4 {
		t.Fatalf("reference delivered %d results, want %d", len(want), 120*4)
	}

	// Live run with churn.
	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	keep0 := registerShare(t, d, "keep0", "")
	keep1 := registerShare(t, d, "keep1", "")
	early := registerShare(t, d, "early", "")
	rt := d.RunSharded(engine.RuntimeOptions{Buffer: 8})

	half := len(feed) / 2
	halfSent := make(chan struct{})
	churnDone := make(chan struct{})
	var wg sync.WaitGroup

	// Producer: the deterministic feed, element order fixed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, te := range feed {
			if err := rt.Send(te.Stream, te.Elem); err != nil {
				t.Error(err)
				return
			}
			if i == half {
				close(halfSent)
			}
		}
	}()

	// Churn: attach/detach views against the live group and as fresh
	// single-member trees (spawn + retire), until the producer finishes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-halfSent:
				return
			default:
			}
			shared := fmt.Sprintf("churn-shared-%d", i)
			if _, err := rt.Attach(shared, workload.AuctionQuery(), engine.Options{Share: true}); err != nil {
				t.Error(err)
				return
			}
			solo := fmt.Sprintf("churn-solo-%d", i)
			if _, err := rt.Attach(solo, workload.AuctionQuery(), engine.Options{Share: true, ShareTag: solo}); err != nil {
				t.Error(err)
				return
			}
			if err := rt.Detach(shared); err != nil {
				t.Error(err)
				return
			}
			if err := rt.Detach(solo); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Observer: stats snapshots by follower name, dead-letter snapshots,
	// and one checkpoint barrier mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		checkpointed := false
		for {
			select {
			case <-churnDone:
				return
			default:
			}
			if _, err := rt.Stats("keep1"); err != nil {
				t.Error(err)
				return
			}
			rt.DeadLetters()
			if !checkpointed {
				if err := rt.Checkpoint(io.Discard); err != nil {
					t.Error(err)
					return
				}
				checkpointed = true
			}
		}
	}()

	// After the first half is in flight, attach a surviving late view and
	// detach the early one from the main goroutine.
	<-halfSent
	late, err := rt.Attach("late", workload.AuctionQuery(), engine.Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Detach("early"); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	got := func(reg *engine.Registered) []string {
		out := make([]string, len(reg.Results))
		for i, r := range reg.Results {
			out[i] = r.String()
		}
		return out
	}
	// Survivors: element-identical to the churn-free run.
	for _, reg := range []*engine.Registered{keep0, keep1} {
		g := got(reg)
		if len(g) != len(want) {
			t.Fatalf("%s delivered %d results under churn, want %d", reg.Name, len(g), len(want))
		}
		for i := range want {
			if g[i] != want[i] {
				t.Fatalf("%s: result %d diverges under churn:\n  got:  %s\n  want: %s", reg.Name, i, g[i], want[i])
			}
		}
	}
	// The late survivor holds an exact suffix, the early leaver an exact
	// prefix, of the same delivery sequence.
	lg := got(late)
	if len(lg) == 0 || len(lg) >= len(want) {
		t.Fatalf("late view delivered %d results; want a proper non-empty suffix of %d", len(lg), len(want))
	}
	for i := range lg {
		if lg[i] != want[len(want)-len(lg)+i] {
			t.Fatalf("late view result %d is not the matching suffix element", i)
		}
	}
	eg := got(early)
	if len(eg) == 0 || len(eg) >= len(want) {
		t.Fatalf("early view kept %d results; want a proper non-empty prefix of %d", len(eg), len(want))
	}
	for i := range eg {
		if eg[i] != want[i] {
			t.Fatalf("early view result %d is not the matching prefix element", i)
		}
	}
	if got := d.PhysicalTrees(); got != 1 {
		t.Fatalf("PhysicalTrees after churn = %d, want 1", got)
	}
}
