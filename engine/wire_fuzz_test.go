package engine

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"punctsafe/workload"
)

// FuzzWireReader feeds arbitrary bytes to both reader modes. Invariants:
// neither mode panics or loops forever; the lenient reader always reaches
// a clean io.EOF on an in-memory source (every corruption is skippable);
// and the lenient reader recovers at least as many frames as the strict
// one (it can only skip damage, never good frames the strict mode kept).
func FuzzWireReader(f *testing.F) {
	wire, _ := buildAuctionWire(f, 4)
	f.Add(wire)                           // a fully valid wire
	f.Add(wire[:len(wire)-3])             // truncated final frame
	f.Add(wire[1:])                       // desynced start
	f.Add([]byte{})                       // empty input
	f.Add([]byte{0x00})                   // zero-length name, missing payload
	f.Add(oversizedFrame())               // absurd declared payload length
	f.Add(unknownStreamFrame(wire))       // unknown stream then valid frames
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // varint overflow soup

	item, bid := workload.AuctionSchemas()
	f.Fuzz(func(t *testing.T, data []byte) {
		strict := NewWireReader(bytes.NewReader(data), item, bid)
		strictFrames := 0
		for {
			_, err := strict.Read()
			if err != nil {
				break
			}
			strictFrames++
		}

		faults := 0
		lenient := NewWireReader(bytes.NewReader(data), item, bid).
			Lenient(func(WireFault) { faults++ })
		lenientFrames := 0
		for {
			_, err := lenient.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("lenient reader failed on in-memory input: %v", err)
			}
			lenientFrames++
		}
		if lenientFrames < strictFrames {
			t.Fatalf("lenient recovered %d frames, strict %d", lenientFrames, strictFrames)
		}
		if len(data) > 0 && lenientFrames == 0 && faults == 0 {
			t.Fatalf("%d bytes vanished without frames or faults", len(data))
		}
	})
}

// oversizedFrame declares a payload far past the wire limit.
func oversizedFrame() []byte {
	var out []byte
	out = binary.AppendUvarint(out, 4)
	out = append(out, "item"...)
	out = binary.AppendUvarint(out, 1<<40)
	return out
}

// unknownStreamFrame prefixes a valid wire with a frame for a stream the
// reader does not know.
func unknownStreamFrame(valid []byte) []byte {
	var out []byte
	out = binary.AppendUvarint(out, 5)
	out = append(out, "ghost"...)
	out = binary.AppendUvarint(out, 2)
	out = append(out, 0xAB, 0xCD)
	return append(out, valid...)
}
