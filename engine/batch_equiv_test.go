package engine_test

// Batching equivalence property suite: the batched ingestion paths
// (exec.Tree.PushBatch, Runtime.SendBatch with batched shard drain) must
// be observationally identical to the one-at-a-time Push/Send paths —
// element-for-element identical result tuples, punctuations, errors and
// dead-letter accounting — across every error policy and every seeded
// internal/faultinject workload. Batching is a performance lever, never
// a semantic one.

import (
	"testing"

	"punctsafe/engine"
	"punctsafe/internal/faultinject"
	"punctsafe/stream"
	"punctsafe/workload"
)

// batchWorkloads enumerates the seeded chaos variants every equivalence
// pair runs over: a clean feed, a feed with injected promise violations
// and malformed elements, and a feed with benign perturbations.
func batchWorkloads(t *testing.T) map[string][]faultinject.Item {
	t.Helper()
	chaos := chaosBaseFeed()
	chaos, late := faultinject.InjectLate(chaos, 6, 1)
	chaos, mal := faultinject.InjectMalformed(chaos, "bid", 4, 2)
	if late.Total()+mal.Total() == 0 {
		t.Fatal("chaos workload injected nothing")
	}
	benign := chaosBaseFeed()
	benign, dup := faultinject.DuplicatePuncts(benign, 10, 3)
	benign, swap := faultinject.SwapAdjacentTuples(benign, 10, 4)
	if dup.DupPuncts+swap.Swapped == 0 {
		t.Fatal("benign workload injected nothing")
	}
	return map[string][]faultinject.Item{
		"clean":  chaosBaseFeed(),
		"chaos":  chaos,
		"benign": benign,
	}
}

// runOutcome is everything observable from one runtime pass: delivered
// tuples and punctuations in delivery order, the terminal error, and the
// dead-letter snapshot.
type runOutcome struct {
	results []string
	puncts  []string
	err     error
	dl      engine.DeadLetterSnapshot
}

// runRuntime drives a single-query sharded runtime over the feed, either
// one element per Send or one SendBatch per contiguous same-stream run
// (the grouping Runtime.IngestWire produces from decoded frames).
func runRuntime(t *testing.T, policy engine.ErrorPolicy, feed []faultinject.Item, batched bool) runOutcome {
	t.Helper()
	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	var out runOutcome
	reg, err := d.Register("q0", workload.AuctionQuery(), engine.Options{
		EnforcePromises: true,
		OnPunct: func(p stream.Punctuation) {
			out.puncts = append(out.puncts, p.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := d.RunSharded(engine.RuntimeOptions{OnError: policy})
	if batched {
		for start := 0; start < len(feed); {
			end := start + 1
			for end < len(feed) && feed[end].Stream == feed[start].Stream {
				end++
			}
			elems := make([]stream.Element, 0, end-start)
			for _, it := range feed[start:end] {
				elems = append(elems, it.Elem)
			}
			if err := rt.SendBatch(feed[start].Stream, elems); err != nil {
				t.Fatalf("SendBatch: %v", err)
			}
			start = end
		}
	} else {
		for _, it := range feed {
			if err := rt.Send(it.Stream, it.Elem); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
	}
	rt.Close()
	out.err = rt.Wait()
	for _, r := range reg.Results {
		out.results = append(out.results, r.String())
	}
	out.dl = rt.DeadLetters()
	return out
}

// requireSameOutcome asserts element-for-element equality of two passes.
func requireSameOutcome(t *testing.T, want, got runOutcome) {
	t.Helper()
	if len(got.results) != len(want.results) {
		t.Fatalf("batched pass delivered %d results, element-wise pass %d", len(got.results), len(want.results))
	}
	for i := range want.results {
		if got.results[i] != want.results[i] {
			t.Fatalf("result %d diverges:\n  batched:      %s\n  element-wise: %s", i, got.results[i], want.results[i])
		}
	}
	if len(got.puncts) != len(want.puncts) {
		t.Fatalf("batched pass propagated %d punctuations, element-wise pass %d", len(got.puncts), len(want.puncts))
	}
	for i := range want.puncts {
		if got.puncts[i] != want.puncts[i] {
			t.Fatalf("punctuation %d diverges:\n  batched:      %s\n  element-wise: %s", i, got.puncts[i], want.puncts[i])
		}
	}
	switch {
	case (want.err == nil) != (got.err == nil):
		t.Fatalf("error divergence: batched %v, element-wise %v", got.err, want.err)
	case want.err != nil && want.err.Error() != got.err.Error():
		t.Fatalf("different failures:\n  batched:      %v\n  element-wise: %v", got.err, want.err)
	}
	if got.dl.Total != want.dl.Total {
		t.Fatalf("dead-letter totals diverge: batched %d, element-wise %d", got.dl.Total, want.dl.Total)
	}
	if len(got.dl.Entries) != len(want.dl.Entries) {
		t.Fatalf("retained entries diverge: batched %d, element-wise %d", len(got.dl.Entries), len(want.dl.Entries))
	}
	for i := range want.dl.Entries {
		w, g := want.dl.Entries[i], got.dl.Entries[i]
		if g.Stream != w.Stream || g.Query != w.Query || g.Err.Error() != w.Err.Error() {
			t.Fatalf("dead letter %d diverges:\n  batched:      stream=%q query=%q err=%v\n  element-wise: stream=%q query=%q err=%v",
				i, g.Stream, g.Query, g.Err, w.Stream, w.Query, w.Err)
		}
	}
	for s, n := range want.dl.ByStream {
		if got.dl.ByStream[s] != n {
			t.Fatalf("ByStream[%q] diverges: batched %d, element-wise %d", s, got.dl.ByStream[s], n)
		}
	}
	for q, n := range want.dl.ByQuery {
		if got.dl.ByQuery[q] != n {
			t.Fatalf("ByQuery[%q] diverges: batched %d, element-wise %d", q, got.dl.ByQuery[q], n)
		}
	}
}

// TestSendBatchEquivalence: for every (policy × workload) pair the
// batched runtime pass must be observationally identical to the
// element-wise pass.
func TestSendBatchEquivalence(t *testing.T) {
	policies := map[string]engine.ErrorPolicy{
		"fail":       engine.Fail,
		"drop":       engine.Drop,
		"quarantine": engine.Quarantine,
	}
	for wname, feed := range batchWorkloads(t) {
		for pname, policy := range policies {
			t.Run(wname+"/"+pname, func(t *testing.T) {
				want := runRuntime(t, policy, feed, false)
				got := runRuntime(t, policy, feed, true)
				if wname == "clean" && len(want.results) == 0 {
					t.Fatal("clean workload produced no results; the equivalence check is vacuous")
				}
				requireSameOutcome(t, want, got)
			})
		}
	}
}

// treeOutcome is everything observable from driving an exec.Tree
// directly: emitted elements in order and every error encountered.
type treeOutcome struct {
	outs []string
	errs []string
}

// runTree drives a query tree over the feed either one Tree.Push per
// element or via Tree.PushBatch over contiguous same-input runs,
// skipping each offender and resuming — the same per-element error
// semantics the shard workers implement.
func runTree(t *testing.T, feed []faultinject.Item, batched bool) treeOutcome {
	t.Helper()
	d, regs := newFaultDSMS(t, "q0")
	_ = d
	reg := regs[0]
	inputOf := make(map[string]int)
	for i := 0; i < reg.Query.N(); i++ {
		inputOf[reg.Query.Stream(i).Name()] = i
	}
	var out treeOutcome
	record := func(es []stream.Element) {
		for _, e := range es {
			out.outs = append(out.outs, e.String())
		}
	}
	if batched {
		for start := 0; start < len(feed); {
			end := start + 1
			for end < len(feed) && feed[end].Stream == feed[start].Stream {
				end++
			}
			run := make([]stream.Element, 0, end-start)
			for _, it := range feed[start:end] {
				run = append(run, it.Elem)
			}
			input := inputOf[feed[start].Stream]
			for len(run) > 0 {
				os, n, err := reg.Tree.PushBatch(input, run)
				record(os)
				if err == nil {
					break
				}
				out.errs = append(out.errs, err.Error())
				run = run[n+1:]
			}
			start = end
		}
	} else {
		for _, it := range feed {
			os, err := reg.Tree.Push(inputOf[it.Stream], it.Elem)
			record(os)
			if err != nil {
				out.errs = append(out.errs, err.Error())
			}
		}
	}
	return out
}

// TestTreePushBatchEquivalence: at the exec layer, PushBatch with
// skip-and-resume must emit the identical element sequence and identical
// error sequence as per-element Push over every workload.
func TestTreePushBatchEquivalence(t *testing.T) {
	for wname, feed := range batchWorkloads(t) {
		t.Run(wname, func(t *testing.T) {
			want := runTree(t, feed, false)
			got := runTree(t, feed, true)
			if len(got.outs) != len(want.outs) {
				t.Fatalf("batched tree emitted %d elements, element-wise %d", len(got.outs), len(want.outs))
			}
			for i := range want.outs {
				if got.outs[i] != want.outs[i] {
					t.Fatalf("element %d diverges:\n  batched:      %s\n  element-wise: %s", i, got.outs[i], want.outs[i])
				}
			}
			if len(got.errs) != len(want.errs) {
				t.Fatalf("batched tree saw %d errors, element-wise %d", len(got.errs), len(want.errs))
			}
			for i := range want.errs {
				if got.errs[i] != want.errs[i] {
					t.Fatalf("error %d diverges:\n  batched:      %s\n  element-wise: %s", i, got.errs[i], want.errs[i])
				}
			}
			if wname == "chaos" && len(want.errs) == 0 {
				t.Fatal("chaos workload surfaced no tree errors; the equivalence check is vacuous")
			}
		})
	}
}
