package engine

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// RetryReader turns a flaky byte source into a resilient io.Reader: when
// a Read fails with a transient error, it reconnects through Open at the
// byte offset already delivered and retries with jittered exponential
// backoff, bounded by MaxRetries consecutive failures and capped at
// MaxBackoff. io.EOF always passes through (a finished source is not a
// fault). Wrap the source handed to IngestWire in one of these to survive
// transient transport failures without losing or duplicating frames.
//
// Not safe for concurrent use; like any io.Reader it serves one consumer.
type RetryReader struct {
	// Open (re)opens the source positioned at the given byte offset. It
	// is called lazily on first Read and after every transient failure.
	Open func(offset int64) (io.Reader, error)
	// MaxRetries bounds consecutive failed reconnect attempts before the
	// error is surfaced (<= 0 selects the default of 4). Any successful
	// read resets the count.
	MaxRetries int
	// Backoff is the delay before the first retry, doubling per
	// consecutive failure (<= 0 selects the default of 10ms). Each delay
	// is jittered ±50% so a fleet of readers reconnecting to one endpoint
	// does not stampede in lockstep.
	Backoff time.Duration
	// MaxBackoff caps the doubling delay (<= 0 selects the default of
	// 1s). The cap applies before jitter.
	MaxBackoff time.Duration
	// Context, when non-nil, cancels the reconnect loop: a Read blocked
	// in backoff (or about to retry) returns the context's error instead
	// of sleeping a stuck transport forever.
	Context context.Context
	// StartOffset positions the first Open (a restored ingest resumes
	// mid-stream). Zero starts at the beginning.
	StartOffset int64
	// Sleep replaces the backoff sleep in tests. When set, it is called
	// with the jittered delay and context cancellation is checked after
	// it returns rather than during it.
	Sleep func(time.Duration)
	// Rand replaces the jitter source in tests: a function returning a
	// value in [0, 1). Defaults to math/rand's global source.
	Rand func() float64
	// Retries counts transient failures absorbed over the reader's life.
	Retries int

	cur     io.Reader
	offset  int64
	started bool
}

const (
	defaultRetryBackoff    = 10 * time.Millisecond
	defaultRetryMaxBackoff = time.Second
)

// Offset returns the byte offset delivered so far (StartOffset included).
func (rr *RetryReader) Offset() int64 {
	if !rr.started {
		return rr.StartOffset
	}
	return rr.offset
}

// Read implements io.Reader with reconnect-and-resume semantics.
func (rr *RetryReader) Read(p []byte) (int, error) {
	if !rr.started {
		rr.offset = rr.StartOffset
		rr.started = true
	}
	maxRetries := rr.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 4
	}
	backoff := rr.Backoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	maxBackoff := rr.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = defaultRetryMaxBackoff
	}
	failures := 0
	for {
		if err := rr.ctxErr(); err != nil {
			return 0, err
		}
		if rr.cur == nil {
			r, err := rr.Open(rr.offset)
			if err != nil {
				rr.Retries++
				failures++
				if failures > maxRetries {
					return 0, fmt.Errorf("engine: retry reader: giving up after %d attempts: %w", failures, err)
				}
				if serr := rr.sleepBackoff(&backoff, maxBackoff); serr != nil {
					return 0, serr
				}
				continue
			}
			rr.cur = r
		}
		n, err := rr.cur.Read(p)
		rr.offset += int64(n)
		if err == nil || err == io.EOF {
			return n, err
		}
		// Transient failure: drop the connection and retry. Bytes already
		// read are delivered first; the reconnect happens on the next call.
		rr.cur = nil
		rr.Retries++
		if n > 0 {
			return n, nil
		}
		failures++
		if failures > maxRetries {
			return 0, fmt.Errorf("engine: retry reader: giving up after %d attempts: %w", failures, err)
		}
		if serr := rr.sleepBackoff(&backoff, maxBackoff); serr != nil {
			return 0, serr
		}
	}
}

// ctxErr surfaces a canceled Context as the reader's error.
func (rr *RetryReader) ctxErr() error {
	if rr.Context == nil {
		return nil
	}
	if err := rr.Context.Err(); err != nil {
		return fmt.Errorf("engine: retry reader: %w", err)
	}
	return nil
}

// sleepBackoff sleeps the current capped-and-jittered delay, doubles the
// base for next time, and honors Context cancellation mid-sleep.
func (rr *RetryReader) sleepBackoff(backoff *time.Duration, maxBackoff time.Duration) error {
	d := *backoff
	if d > maxBackoff {
		d = maxBackoff
	}
	d = rr.jitter(d)
	if *backoff < maxBackoff {
		*backoff *= 2
	}
	if rr.Sleep != nil {
		rr.Sleep(d)
		return rr.ctxErr()
	}
	if rr.Context == nil {
		time.Sleep(d)
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-rr.Context.Done():
		return fmt.Errorf("engine: retry reader: %w", rr.Context.Err())
	}
}

// jitter spreads a delay uniformly over [d/2, 3d/2).
func (rr *RetryReader) jitter(d time.Duration) time.Duration {
	random := rr.Rand
	if random == nil {
		random = rand.Float64
	}
	return d/2 + time.Duration(random()*float64(d))
}
