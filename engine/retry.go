package engine

import (
	"fmt"
	"io"
	"time"
)

// RetryReader turns a flaky byte source into a resilient io.Reader: when
// a Read fails with a transient error, it reconnects through Open at the
// byte offset already delivered and retries with exponential backoff,
// bounded by MaxRetries consecutive failures. io.EOF always passes
// through (a finished source is not a fault). Wrap the source handed to
// IngestWire in one of these to survive transient transport failures
// without losing or duplicating frames.
//
// Not safe for concurrent use; like any io.Reader it serves one consumer.
type RetryReader struct {
	// Open (re)opens the source positioned at the given byte offset. It
	// is called lazily on first Read and after every transient failure.
	Open func(offset int64) (io.Reader, error)
	// MaxRetries bounds consecutive failed reconnect attempts before the
	// error is surfaced (<= 0 selects the default of 4). Any successful
	// read resets the count.
	MaxRetries int
	// Backoff is the delay before the first retry, doubling per
	// consecutive failure (<= 0 selects the default of 10ms).
	Backoff time.Duration
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)
	// Retries counts transient failures absorbed over the reader's life.
	Retries int

	cur    io.Reader
	offset int64
}

// Read implements io.Reader with reconnect-and-resume semantics.
func (rr *RetryReader) Read(p []byte) (int, error) {
	sleep := rr.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	maxRetries := rr.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 4
	}
	backoff := rr.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	failures := 0
	for {
		if rr.cur == nil {
			r, err := rr.Open(rr.offset)
			if err != nil {
				rr.Retries++
				failures++
				if failures > maxRetries {
					return 0, fmt.Errorf("engine: retry reader: giving up after %d attempts: %w", failures, err)
				}
				sleep(backoff)
				backoff *= 2
				continue
			}
			rr.cur = r
		}
		n, err := rr.cur.Read(p)
		rr.offset += int64(n)
		if err == nil || err == io.EOF {
			return n, err
		}
		// Transient failure: drop the connection and retry. Bytes already
		// read are delivered first; the reconnect happens on the next call.
		rr.cur = nil
		rr.Retries++
		if n > 0 {
			return n, nil
		}
		failures++
		if failures > maxRetries {
			return 0, fmt.Errorf("engine: retry reader: giving up after %d attempts: %w", failures, err)
		}
		sleep(backoff)
		backoff *= 2
	}
}
