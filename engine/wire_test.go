package engine

import (
	"bytes"
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

// TestWireRoundTripAuction: the auction workload encoded to the wire and
// ingested back produces exactly the direct-push results.
func TestWireRoundTripAuction(t *testing.T) {
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 120, MaxBidsPerItem: 5, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 23,
	})
	item, bid := workload.AuctionSchemas()

	// Direct run.
	direct := New()
	for _, s := range workload.AuctionSchemes().All() {
		direct.RegisterScheme(s)
	}
	dreg, err := direct.Register("q", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs {
		if err := direct.Push(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}

	// Wire run.
	var buf bytes.Buffer
	ww := NewWireWriter(&buf, item, bid)
	for _, in := range inputs {
		if err := ww.Write(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}
	wired := New()
	for _, s := range workload.AuctionSchemes().All() {
		wired.RegisterScheme(s)
	}
	wreg, err := wired.Register("q", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := wired.IngestWire(&buf, item, bid)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(inputs) {
		t.Fatalf("ingested %d of %d", n, len(inputs))
	}
	if len(wreg.Results) != len(dreg.Results) {
		t.Fatalf("wire results %d != direct %d", len(wreg.Results), len(dreg.Results))
	}
	for i := range wreg.Results {
		if wreg.Results[i].String() != dreg.Results[i].String() {
			t.Fatalf("result %d differs", i)
		}
	}
	if wreg.Tree.TotalState() != 0 {
		t.Fatal("state should drain")
	}
}

// TestWireErrors: unknown streams, truncation, and junk are reported.
func TestWireErrors(t *testing.T) {
	item, bid := workload.AuctionSchemas()
	d := New()

	var buf bytes.Buffer
	ww := NewWireWriter(&buf, item)
	if err := ww.Write("bid", stream.TupleElement(stream.NewTuple(
		stream.Int(1), stream.Int(1), stream.Float(1)))); err == nil {
		t.Fatal("writer must reject undeclared stream")
	}
	if err := ww.Write("item", stream.TupleElement(stream.NewTuple(stream.Int(1)))); err == nil {
		t.Fatal("writer must reject arity mismatch")
	}

	// A valid frame for a stream the reader does not know.
	buf.Reset()
	ww = NewWireWriter(&buf, item)
	if err := ww.Write("item", stream.TupleElement(stream.NewTuple(
		stream.Int(1), stream.Int(2), stream.Str("x"), stream.Float(1)))); err != nil {
		t.Fatal(err)
	}
	if _, err := d.IngestWire(bytes.NewReader(buf.Bytes()), bid); err == nil {
		t.Fatal("reader must reject unknown stream")
	}

	// Truncated frame.
	full := append([]byte(nil), buf.Bytes()...)
	if _, err := d.IngestWire(bytes.NewReader(full[:len(full)-3]), item); err == nil {
		t.Fatal("reader must reject truncation")
	}
	// Junk header.
	if _, err := d.IngestWire(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}), item); err == nil {
		t.Fatal("reader must reject oversized name length")
	}
}

// TestDropScheme: withdrawing a promise that a registered query depends
// on is refused, then force-dropped.
func TestDropScheme(t *testing.T) {
	d := New()
	itemScheme := stream.MustScheme("item", false, true, false, false)
	bidScheme := stream.MustScheme("bid", false, true, false)
	d.RegisterScheme(itemScheme)
	d.RegisterScheme(bidScheme)
	if _, err := d.Register("q", workload.AuctionQuery(), Options{}); err != nil {
		t.Fatal(err)
	}

	// Dropping the bid scheme would strand the item state: refused.
	victims, err := d.DropScheme(bidScheme, false)
	if err == nil {
		t.Fatal("drop must be refused while q depends on the scheme")
	}
	if len(victims) != 1 || victims[0] != "q" {
		t.Fatalf("victims = %v", victims)
	}
	// The register is unchanged.
	if d.Schemes().Len() != 2 || len(d.Queries()) != 1 {
		t.Fatal("refused drop must leave the register unchanged")
	}

	// Force: the query is evicted along with the scheme.
	victims, err = d.DropScheme(bidScheme, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 1 || len(d.Queries()) != 0 {
		t.Fatalf("victims = %v, queries = %v", victims, d.Queries())
	}
	if d.Schemes().Len() != 1 {
		t.Fatalf("schemes left = %d", d.Schemes().Len())
	}
	// Dropping an unregistered scheme errors.
	if _, err := d.DropScheme(bidScheme, false); err == nil {
		t.Fatal("double drop must fail")
	}
	// Dropping an unused scheme succeeds with no victims.
	if victims, err := d.DropScheme(itemScheme, false); err != nil || len(victims) != 0 {
		t.Fatalf("unused drop: victims=%v err=%v", victims, err)
	}
}
