package engine

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"punctsafe/internal/faultinject"
	"punctsafe/workload"
)

// auctionFeed flattens item groups into one ordered feed.
func auctionFeed(items, bids int) []TaggedElement {
	var out []TaggedElement
	for i := 0; i < items; i++ {
		out = append(out, auctionElems(int64(i), bids)...)
	}
	return out
}

func resultStrings(reg *Registered) []string {
	out := make([]string, len(reg.Results))
	for i, r := range reg.Results {
		out[i] = r.String()
	}
	return out
}

// sendAtAll feeds elements [from, to) with their index+1 as the
// committed offset, so ResumeOffset counts elements delivered.
func sendAtAll(t testing.TB, rt *Runtime, feed []TaggedElement, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := rt.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatalf("SendAt %d: %v", i, err)
		}
	}
}

// TestCheckpointRestoreRoundTrip: checkpoint mid-stream, restore into a
// fresh register, resume from the recorded offset — the prefix captured
// at the barrier plus the restored run's output must equal the
// uninterrupted run exactly, stats included.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	feed := auctionFeed(40, 3)
	cut := len(feed) / 2

	d, regs := newAuctionDSMS(t, 2)
	rt := d.RunSharded(RuntimeOptions{})
	sendAtAll(t, rt, feed, 0, cut)
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// The barrier guarantees every pre-checkpoint element is reflected in
	// Results by the time Checkpoint returns.
	prefix := make(map[string][]string, len(regs))
	for _, reg := range regs {
		prefix[reg.Name] = resultStrings(reg)
	}
	sendAtAll(t, rt, feed, cut, len(feed))
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	d2, regs2 := newAuctionDSMS(t, 2)
	rt2, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatalf("RestoreRuntime: %v", err)
	}
	resume := rt2.ResumeOffset("feed")
	if resume != int64(cut) {
		t.Fatalf("ResumeOffset = %d, want %d", resume, cut)
	}
	sendAtAll(t, rt2, feed, int(resume), len(feed))
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}

	for i, reg := range regs {
		want := resultStrings(reg)
		got := append(append([]string(nil), prefix[reg.Name]...), resultStrings(regs2[i])...)
		if len(got) != len(want) {
			t.Fatalf("query %s: %d results across the crash, want %d", reg.Name, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %s: result %d differs: %s vs %s", reg.Name, j, got[j], want[j])
			}
		}
		wantStats, err := rt.Stats(reg.Name)
		if err != nil {
			t.Fatal(err)
		}
		gotStats, err := rt2.Stats(reg.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Fatalf("query %s: stats diverge:\n%v\nvs\n%v", reg.Name, gotStats, wantStats)
		}
	}
}

// TestCheckpointClosedRuntime: a drained runtime can still be
// checkpointed, and the snapshot restores with identical stats.
func TestCheckpointClosedRuntime(t *testing.T) {
	feed := auctionFeed(10, 2)
	d, _ := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{})
	sendAtAll(t, rt, feed, 0, len(feed))
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatalf("Checkpoint after Close: %v", err)
	}
	d2, _ := newAuctionDSMS(t, 1)
	rt2, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatalf("RestoreRuntime: %v", err)
	}
	if got := rt2.ResumeOffset("feed"); got != int64(len(feed)) {
		t.Fatalf("ResumeOffset = %d, want %d", got, len(feed))
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
	want, err := rt.Stats("q0")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt2.Stats("q0")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored stats diverge:\n%v\nvs\n%v", got, want)
	}
}

// TestCheckpointKilledRuntimeFails: a crashed runtime has no trustworthy
// state; Checkpoint must refuse, and Wait must surface the kill.
func TestCheckpointKilledRuntimeFails(t *testing.T) {
	d, _ := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{})
	sendAtAll(t, rt, auctionFeed(5, 2), 0, 10)
	rt.Kill()
	if err := rt.Checkpoint(io.Discard); !errors.Is(err, ErrKilled) {
		t.Fatalf("Checkpoint on killed runtime: %v, want ErrKilled", err)
	}
	rt.Close()
	if err := rt.Wait(); !errors.Is(err, ErrKilled) {
		t.Fatalf("Wait = %v, want ErrKilled", err)
	}
}

// makeCheckpoint runs half a feed and returns the snapshot blob.
func makeCheckpoint(t testing.TB) []byte {
	t.Helper()
	feed := auctionFeed(20, 3)
	d, _ := newAuctionDSMS(t, 2)
	rt := d.RunSharded(RuntimeOptions{})
	sendAtAll(t, rt, feed, 0, len(feed)/2)
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes()
}

// TestRestoreCorruptRejected: every damaged variant of a checkpoint —
// torn prefixes, bit rot, garbage tails, bad magic, even a garble with a
// freshly recomputed CRC — must fail with ErrCorruptCheckpoint, never
// panic, and never half-restore: the same register accepts the intact
// blob afterwards.
func TestRestoreCorruptRejected(t *testing.T) {
	blob := makeCheckpoint(t)
	d, _ := newAuctionDSMS(t, 2)

	tryRestore := func(b []byte) error {
		rt, err := d.RestoreRuntime(bytes.NewReader(b), RuntimeOptions{})
		if err == nil {
			rt.Close()
			rt.Wait()
		}
		return err
	}

	for _, cut := range []int{0, 1, len(checkpointMagic), len(checkpointMagic) + 1, len(blob) / 3, len(blob) - 1} {
		if err := tryRestore(blob[:cut]); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncation at %d: got %v, want ErrCorruptCheckpoint", cut, err)
		}
	}
	badMagic := append([]byte(nil), blob...)
	badMagic[7] = '9'
	if err := tryRestore(badMagic); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("version mismatch: got %v", err)
	}
	for i, g := range faultinject.CorruptCopies(blob, 48, 99) {
		if bytes.Equal(g, blob) {
			continue // garbage happened to reproduce the original
		}
		if err := tryRestore(g); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("corrupt copy %d: got %v, want ErrCorruptCheckpoint", i, err)
		}
	}

	// Structural validation must not lean on the CRC alone: flip a byte of
	// a checkpointed query name and patch the checksum — the restore must
	// still reject it (the name no longer matches a registered query).
	garbled := append([]byte(nil), blob...)
	at := bytes.LastIndex(garbled, []byte("q0"))
	if at < 0 {
		t.Fatal("query name not found in blob")
	}
	garbled[at] = 'z'
	crc := crc32.ChecksumIEEE(garbled[:len(garbled)-4])
	garbled[len(garbled)-4] = byte(crc)
	garbled[len(garbled)-3] = byte(crc >> 8)
	garbled[len(garbled)-2] = byte(crc >> 16)
	garbled[len(garbled)-1] = byte(crc >> 24)
	if err := tryRestore(garbled); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("recomputed-CRC garble: got %v, want ErrCorruptCheckpoint", err)
	}

	// After all those rejections the register is still pristine enough to
	// restore the intact snapshot.
	rt, err := d.RestoreRuntime(bytes.NewReader(blob), RuntimeOptions{})
	if err != nil {
		t.Fatalf("intact snapshot rejected after corrupt attempts: %v", err)
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreWrongRegisterRejected: a snapshot only restores into a DSMS
// holding the same query set.
func TestRestoreWrongRegisterRejected(t *testing.T) {
	blob := makeCheckpoint(t) // queries q0, q1
	d, _ := newAuctionDSMS(t, 1)
	if _, err := d.RestoreRuntime(bytes.NewReader(blob), RuntimeOptions{}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("query-count mismatch: got %v, want ErrCorruptCheckpoint", err)
	}
	d3 := New()
	for _, s := range workload.AuctionSchemes().All() {
		d3.RegisterScheme(s)
	}
	for _, name := range []string{"other0", "other1"} {
		if _, err := d3.Register(name, workload.AuctionQuery(), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d3.RestoreRuntime(bytes.NewReader(blob), RuntimeOptions{}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("query-name mismatch: got %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCheckpointFileTornWrite: CheckpointFile lands atomically, a torn
// copy is rejected as corrupt, and the previous intact snapshot still
// restores — the operational crash-during-checkpoint story.
func TestCheckpointFileTornWrite(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	torn := filepath.Join(dir, "torn.ckpt")

	feed := auctionFeed(15, 2)
	d, _ := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{})
	sendAtAll(t, rt, feed, 0, len(feed)/2)
	if err := rt.CheckpointFile(good); err != nil {
		t.Fatalf("CheckpointFile: %v", err)
	}
	if _, err := os.Stat(good + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind")
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, blob[:len(blob)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, _ := newAuctionDSMS(t, 1)
	tf, err := os.Open(torn)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := d2.RestoreRuntime(tf, RuntimeOptions{})
	tf.Close()
	if !errors.Is(rerr, ErrCorruptCheckpoint) {
		t.Fatalf("torn file: got %v, want ErrCorruptCheckpoint", rerr)
	}
	gf, err := os.Open(good)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := d2.RestoreRuntime(gf, RuntimeOptions{})
	gf.Close()
	if err != nil {
		t.Fatalf("previous intact snapshot rejected: %v", err)
	}
	if got := rt2.ResumeOffset("feed"); got != int64(len(feed)/2) {
		t.Fatalf("ResumeOffset = %d, want %d", got, len(feed)/2)
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestWireFromResumesAfterRestore: wire ingestion committed through
// IngestWireFrom resumes exactly after the last checkpointed frame — the
// restored runtime re-reads nothing and skips nothing, even over a flaky
// transport, and the combined results equal an uninterrupted ingest.
func TestIngestWireFromResumesAfterRestore(t *testing.T) {
	feed := auctionFeed(30, 2)
	item := workload.AuctionQuery().Stream(0)
	bid := workload.AuctionQuery().Stream(1)
	var buf bytes.Buffer
	ww := NewWireWriter(&buf, item, bid)
	var boundary int64 // wire offset after the first half's frames
	for i, te := range feed {
		if err := ww.Write(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
		if i == len(feed)/2 {
			boundary = int64(buf.Len())
		}
	}
	wire := buf.Bytes()

	// Uninterrupted reference.
	ref, refRegs := newAuctionDSMS(t, 1)
	rtRef := ref.RunSharded(RuntimeOptions{})
	if _, err := rtRef.IngestWire(bytes.NewReader(wire), item, bid); err != nil {
		t.Fatal(err)
	}
	rtRef.Close()
	if err := rtRef.Wait(); err != nil {
		t.Fatal(err)
	}

	// First life: ingest only the wire's first half (the transport "ends"
	// at the boundary), checkpoint, crash.
	d, regs := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{})
	n1, err := rt.IngestWireFrom("wire", func(off int64) (io.Reader, error) {
		return faultinject.NewFlakyReader(wire[off:boundary], 900), nil
	}, item, bid)
	if err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	prefix := resultStrings(regs[0])
	rt.Kill()
	rt.Close()
	rt.Wait()

	// Second life: same source, full wire; ingestion must resume at the
	// committed boundary offset.
	d2, regs2 := newAuctionDSMS(t, 1)
	rt2, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.ResumeOffset("wire"); got != boundary {
		t.Fatalf("ResumeOffset = %d, want wire boundary %d", got, boundary)
	}
	opens := 0
	n2, err := rt2.IngestWireFrom("wire", func(off int64) (io.Reader, error) {
		opens++
		if opens == 1 && off != boundary {
			t.Errorf("first reopen at %d, want %d", off, boundary)
		}
		return faultinject.NewFlakyReader(wire[off:], 900), nil
	}, item, bid)
	if err != nil {
		t.Fatalf("resumed ingest: %v", err)
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(feed) {
		t.Fatalf("ingested %d + %d elements, want exactly %d (no loss, no duplication)", n1, n2, len(feed))
	}
	want := resultStrings(refRegs[0])
	got := append(prefix, resultStrings(regs2[0])...)
	if len(got) != len(want) {
		t.Fatalf("%d results across the crash, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d differs: %s vs %s", i, got[i], want[i])
		}
	}
	wantStats, err := rtRef.Stats("q0")
	if err != nil {
		t.Fatal(err)
	}
	gotStats, err := rt2.Stats("q0")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("stats diverge:\n%v\nvs\n%v", gotStats, wantStats)
	}
}
