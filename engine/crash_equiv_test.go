package engine_test

// The crash-recovery equivalence suite — the tentpole acceptance test:
// checkpoint → crash → restore → resume must be observationally
// indistinguishable from an uninterrupted run. "Indistinguishable" is
// checked exactly: the result sequence per query (the pre-crash prefix
// captured at the barrier plus everything the restored runtime emits),
// the full operator stats, and the dead-letter queue (counts and entry
// multiset) — across the Fail, Drop, and Quarantine policies, seeded
// chaos workloads, multiple purge configurations, and multiple crash
// points per run.

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"punctsafe/engine"
	"punctsafe/internal/faultinject"
	"punctsafe/workload"
)

// newEquivDSMS registers the auction schemes and one promise-enforcing
// auction query per name, all with the same exec options.
func newEquivDSMS(t testing.TB, opts engine.Options, names ...string) (*engine.DSMS, []*engine.Registered) {
	t.Helper()
	opts.EnforcePromises = true
	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	regs := make([]*engine.Registered, len(names))
	for i, name := range names {
		reg, err := d.Register(name, workload.AuctionQuery(), opts)
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = reg
	}
	return d, regs
}

// runObservation is everything a downstream observer can see of a run.
type runObservation struct {
	results map[string][]string // per query, in emission order
	stats   map[string]any      // per query, full operator stats
	dlTotal uint64
	dlEvict uint64
	dlByStr map[string]uint64
	dlByQry map[string]uint64
	dlItems []string // retained entries, order-independent
}

func orderedResults(reg *engine.Registered) []string {
	out := make([]string, len(reg.Results))
	for i, r := range reg.Results {
		out[i] = r.String()
	}
	return out
}

// dlKey renders a dead letter without its Seq (entry arrival order across
// concurrently failing shards is scheduling-dependent even without a
// crash) and with its error as text (restored errors carry text only).
func dlKey(e engine.DeadLetter) string {
	errText := ""
	if e.Err != nil {
		errText = e.Err.Error()
	}
	return fmt.Sprintf("s=%s|q=%s|e=%s|f=%x|err=%s", e.Stream, e.Query, e.Elem, e.Frame, errText)
}

// observe gathers the observation from a finished runtime, folding in
// per-query result prefixes captured before a crash.
func observe(t *testing.T, rt *engine.Runtime, regs []*engine.Registered, prefix map[string][]string) runObservation {
	t.Helper()
	obs := runObservation{
		results: make(map[string][]string, len(regs)),
		stats:   make(map[string]any, len(regs)),
	}
	for _, reg := range regs {
		obs.results[reg.Name] = append(append([]string(nil), prefix[reg.Name]...), orderedResults(reg)...)
		st, err := rt.Stats(reg.Name)
		if err != nil {
			t.Fatal(err)
		}
		obs.stats[reg.Name] = st
	}
	dl := rt.DeadLetters()
	obs.dlTotal, obs.dlEvict = dl.Total, dl.Evicted
	obs.dlByStr, obs.dlByQry = dl.ByStream, dl.ByQuery
	for _, e := range dl.Entries {
		obs.dlItems = append(obs.dlItems, dlKey(e))
	}
	sort.Strings(obs.dlItems)
	return obs
}

// referenceRun feeds the whole workload uninterrupted.
func referenceRun(t *testing.T, policy engine.ErrorPolicy, opts engine.Options, feed []faultinject.Item, queries ...string) runObservation {
	t.Helper()
	d, regs := newEquivDSMS(t, opts, queries...)
	rt := d.RunSharded(engine.RuntimeOptions{OnError: policy})
	for i, it := range feed {
		if err := rt.SendAt("feed", it.Stream, it.Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	return observe(t, rt, regs, nil)
}

// crashRun feeds the workload through a crash at element boundary k: it
// checkpoints after k elements, keeps feeding a while, kills the runtime
// mid-flight, restores the snapshot into a fresh register, and resumes
// from the recorded offset.
func crashRun(t *testing.T, policy engine.ErrorPolicy, opts engine.Options, feed []faultinject.Item, k int, queries ...string) runObservation {
	t.Helper()
	d, regs := newEquivDSMS(t, opts, queries...)
	rt := d.RunSharded(engine.RuntimeOptions{OnError: policy})
	for i := 0; i < k; i++ {
		if err := rt.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatalf("checkpoint at %d: %v", k, err)
	}
	prefix := make(map[string][]string, len(regs))
	for _, reg := range regs {
		prefix[reg.Name] = append([]string(nil), orderedResults(reg)...)
	}
	// Keep feeding past the checkpoint, then crash mid-flight: everything
	// after the snapshot must leave no trace that survives the restore.
	extra := k + 25
	if extra > len(feed) {
		extra = len(feed)
	}
	for i := k; i < extra; i++ {
		if err := rt.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	rt.Kill()
	rt.Close()
	if err := rt.Wait(); !errors.Is(err, engine.ErrKilled) {
		t.Fatalf("killed runtime Wait = %v, want ErrKilled", err)
	}

	d2, regs2 := newEquivDSMS(t, opts, queries...)
	rt2, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), engine.RuntimeOptions{OnError: policy})
	if err != nil {
		t.Fatalf("restore of checkpoint at %d: %v", k, err)
	}
	resume := rt2.ResumeOffset("feed")
	if resume != int64(k) {
		t.Fatalf("ResumeOffset = %d, want %d", resume, k)
	}
	for i := int(resume); i < len(feed); i++ {
		if err := rt2.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
	return observe(t, rt2, regs2, prefix)
}

func compareObservations(t *testing.T, label string, got, want runObservation) {
	t.Helper()
	for name, w := range want.results {
		g := got.results[name]
		if len(g) != len(w) {
			t.Fatalf("%s: query %s emitted %d results across the crash, want %d", label, name, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: query %s result %d differs: %s vs %s", label, name, i, g[i], w[i])
			}
		}
	}
	for name := range want.stats {
		if !reflect.DeepEqual(got.stats[name], want.stats[name]) {
			t.Fatalf("%s: query %s stats diverge:\n%v\nvs\n%v", label, name, got.stats[name], want.stats[name])
		}
	}
	if got.dlTotal != want.dlTotal || got.dlEvict != want.dlEvict {
		t.Fatalf("%s: dead-letter total/evicted = %d/%d, want %d/%d",
			label, got.dlTotal, got.dlEvict, want.dlTotal, want.dlEvict)
	}
	if !reflect.DeepEqual(got.dlByStr, want.dlByStr) || !reflect.DeepEqual(got.dlByQry, want.dlByQry) {
		t.Fatalf("%s: dead-letter breakdown diverges:\n%v %v\nvs\n%v %v",
			label, got.dlByStr, got.dlByQry, want.dlByStr, want.dlByQry)
	}
	if !reflect.DeepEqual(got.dlItems, want.dlItems) {
		t.Fatalf("%s: dead-letter entries diverge:\n%v\nvs\n%v", label, got.dlItems, want.dlItems)
	}
}

// equivChaosFeed layers seeded late tuples and malformed elements over
// the base auction workload (offenders for Drop/Quarantine to absorb).
func equivChaosFeed() []faultinject.Item {
	feed := chaosBaseFeed()
	feed, _ = faultinject.InjectLate(feed, 6, 21)
	feed, _ = faultinject.InjectMalformed(feed, "bid", 4, 22)
	return feed
}

// TestCrashRecoveryEquivalence runs the core matrix: every error policy,
// several seeded crash points each, single query. Fail gets the clean
// feed (any offender would fail the reference run too); Drop and
// Quarantine get the chaos feed so dead-letter state crosses the crash.
func TestCrashRecoveryEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		policy engine.ErrorPolicy
		feed   []faultinject.Item
	}{
		{"Fail/clean", engine.Fail, chaosBaseFeed()},
		{"Drop/chaos", engine.Drop, equivChaosFeed()},
		{"Quarantine/chaos", engine.Quarantine, equivChaosFeed()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := referenceRun(t, tc.policy, engine.Options{}, tc.feed, "q0")
			for _, k := range faultinject.CrashPoints(len(tc.feed), 3, 42) {
				got := crashRun(t, tc.policy, engine.Options{}, tc.feed, k, "q0")
				compareObservations(t, fmt.Sprintf("crash at %d", k), got, want)
			}
		})
	}
}

// TestCrashRecoveryEquivalenceAcrossConfigs crosses the crash with the
// purge configurations whose state is hardest to snapshot faithfully:
// lazy purge batches mid-round, punctuation lifespans mid-countdown, and
// punctuation-store purging.
func TestCrashRecoveryEquivalenceAcrossConfigs(t *testing.T) {
	feed := equivChaosFeed()
	configs := []engine.Options{
		{PurgeBatch: 5},
		{PunctLifespan: 128},
		{PurgeBatch: 3, PurgePunctuations: true},
	}
	for ci, opts := range configs {
		want := referenceRun(t, engine.Quarantine, opts, feed, "q0")
		for _, k := range faultinject.CrashPoints(len(feed), 2, int64(100+ci)) {
			got := crashRun(t, engine.Quarantine, opts, feed, k, "q0")
			compareObservations(t, fmt.Sprintf("config %d crash at %d", ci, k), got, want)
		}
	}
}

// TestCrashRecoveryEquivalencePartitioned: the crash matrix with
// partitioned execution enabled — the PSCKPT02 snapshot's per-partition
// section (replica states plus the output-punctuation alignment gate)
// must restore a partitioned shard to observational equivalence, and a
// partitioned restore must also match the partitioned reference exactly.
func TestCrashRecoveryEquivalencePartitioned(t *testing.T) {
	feed := equivChaosFeed()
	opts := engine.Options{Partitions: 3}
	want := referenceRun(t, engine.Quarantine, opts, feed, "q0")
	for _, k := range faultinject.CrashPoints(len(feed), 3, 55) {
		got := crashRun(t, engine.Quarantine, opts, feed, k, "q0")
		compareObservations(t, fmt.Sprintf("partitioned crash at %d", k), got, want)
	}
}

// TestCrashRecoveryEquivalenceMultiQuery: one snapshot captures all
// shards consistently — every query's stream recovers exactly.
func TestCrashRecoveryEquivalenceMultiQuery(t *testing.T) {
	feed := equivChaosFeed()
	queries := []string{"qa", "qb", "qc"}
	want := referenceRun(t, engine.Quarantine, engine.Options{PurgeBatch: 4}, feed, queries...)
	for _, k := range faultinject.CrashPoints(len(feed), 2, 7) {
		got := crashRun(t, engine.Quarantine, engine.Options{PurgeBatch: 4}, feed, k, queries...)
		compareObservations(t, fmt.Sprintf("crash at %d", k), got, want)
	}
}
