package engine

import (
	"bytes"
	"errors"
	"testing"

	"punctsafe/internal/faultinject"
)

// FuzzRestoreRuntime throws arbitrary bytes at the restore path. The
// invariants are the corruption-hardening contract: RestoreRuntime never
// panics, every rejection is the typed ErrCorruptCheckpoint, and a
// rejected restore leaves the register usable (an accepted one yields a
// runtime that shuts down cleanly). The seed corpus covers a valid
// snapshot, torn and bit-rotted variants of it, and framing edge cases.
func FuzzRestoreRuntime(f *testing.F) {
	blob := makeCheckpoint(f)
	f.Add(blob)                           // fully valid snapshot
	f.Add(blob[:len(blob)-5])             // torn tail (checksum gone)
	f.Add(blob[:len(blob)/2])             // torn mid-body
	f.Add(blob[:len(checkpointMagic)])    // bare magic, nothing else
	f.Add([]byte{})                       // empty file
	f.Add([]byte(checkpointMagic))        // magic only
	f.Add([]byte("PSCKPT99garbage"))      // future version
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // varint overflow soup
	for _, g := range faultinject.CorruptCopies(blob, 8, 7) {
		f.Add(g)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		d, _ := newAuctionDSMS(t, 2)
		rt, err := d.RestoreRuntime(bytes.NewReader(data), RuntimeOptions{})
		if err != nil {
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("untyped restore error: %v", err)
			}
			return
		}
		rt.Close()
		if werr := rt.Wait(); werr != nil {
			t.Fatalf("restored runtime failed to shut down: %v", werr)
		}
	})
}
