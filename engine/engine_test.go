package engine

import (
	"strings"
	"testing"

	"punctsafe/exec"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
	"punctsafe/workload"
)

// fig5Query builds the cyclic 3-way query of Figures 5/7/8.
func fig5Query(t *testing.T) *query.CJQ {
	t.Helper()
	ia := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	q, err := query.NewBuilder().
		AddStream(stream.MustSchema("S1", ia("A"), ia("B"))).
		AddStream(stream.MustSchema("S2", ia("B"), ia("C"))).
		AddStream(stream.MustSchema("S3", ia("A"), ia("C"))).
		Join("S1.B", "S2.B").
		Join("S2.C", "S3.C").
		Join("S3.A", "S1.A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestAuctionEndToEnd runs Example 1 through the full DSMS: register the
// auction schemes, admit the item-bid join, stream a complete auction
// season, and verify that every bid found its item and both join states
// drained to zero.
func TestAuctionEndToEnd(t *testing.T) {
	d := New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	reg, err := d.Register("auction", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Report.Safe {
		t.Fatal("auction query must be admitted as safe")
	}

	inputs := workload.Auction(workload.AuctionConfig{
		Items: 200, MaxBidsPerItem: 6, OpenWindow: 5,
		PunctuateItems: true, PunctuateClose: true, Seed: 42,
	})
	bids := 0
	for _, in := range inputs {
		if in.Stream == "bid" && !in.Elem.IsPunct() {
			bids++
		}
		if err := d.Push(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(reg.Results); got != bids {
		t.Fatalf("results = %d, want one per bid = %d", got, bids)
	}
	if got := reg.Tree.TotalState(); got != 0 {
		t.Fatalf("join states should drain to 0, have %d", got)
	}
	root := reg.Tree.Root()
	if root.Stats().TuplesPurged[0] == 0 || root.Stats().TuplesPurged[1] == 0 {
		t.Fatalf("both sides should have purged tuples: %v", root.Stats().TuplesPurged)
	}
}

// TestUnsafeQueryRejected: with only the bidderid scheme the auction
// query must be rejected at registration (the §1 motivating case).
func TestUnsafeQueryRejected(t *testing.T) {
	d := New()
	d.RegisterScheme(stream.MustScheme("bid", true, false, false)) // bidderid only
	_, err := d.Register("auction", workload.AuctionQuery(), Options{})
	if err == nil {
		t.Fatal("unsafe query must be rejected")
	}
	if !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("rejection should explain unsafety, got: %v", err)
	}
	if len(d.Queries()) != 0 {
		t.Fatal("rejected query must not be registered")
	}
}

// TestForcedUnsafePlanRejected: forcing the Figure 7 binary tree on the
// Figure 5 query must fail even though the query itself is safe.
func TestForcedUnsafePlanRejected(t *testing.T) {
	d := New()
	d.RegisterScheme(stream.MustScheme("S1", false, true))
	d.RegisterScheme(stream.MustScheme("S2", false, true))
	d.RegisterScheme(stream.MustScheme("S3", true, false))
	q := fig5Query(t)
	bad := plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))
	if _, err := d.Register("fig5", q, Options{Plan: bad}); err == nil {
		t.Fatal("forced unsafe plan must be rejected")
	}
	// Without forcing a plan the query is admitted (the MJoin plan).
	reg, err := d.Register("fig5", q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Plan.Children) != 3 {
		t.Fatalf("expected the 3-way MJoin plan, got %s", reg.Plan.Render(q))
	}
}

// TestNetMonEndToEnd: the multi-attribute scheme scenario drains both
// states and pairs every packet with its connection.
func TestNetMonEndToEnd(t *testing.T) {
	d := New()
	for _, s := range workload.NetMonSchemes().All() {
		d.RegisterScheme(s)
	}
	reg, err := d.Register("netmon", workload.NetMonQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.NetMon(workload.NetMonConfig{
		Flows: 150, MaxPktsPerFlow: 8, OpenWindow: 6,
		PunctuateFlowEnd: true, PunctuateConn: true, Seed: 7,
	})
	pkts := 0
	for _, in := range inputs {
		if in.Stream == "pkt" && !in.Elem.IsPunct() {
			pkts++
		}
		if err := d.Push(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(reg.Results); got != pkts {
		t.Fatalf("results = %d, want one per packet = %d", got, pkts)
	}
	if got := reg.Tree.TotalState(); got != 0 {
		t.Fatalf("states should drain, have %d", got)
	}
}

// TestMultipleQueriesShareInput: two queries over the same streams each
// receive the input manager's elements.
func TestMultipleQueriesShareInput(t *testing.T) {
	d := New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	q1, err1 := d.Register("q1", workload.AuctionQuery(), Options{})
	q2, err2 := d.Register("q2", workload.AuctionQuery(), Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 50, MaxBidsPerItem: 4, OpenWindow: 3,
		PunctuateItems: true, PunctuateClose: true, Seed: 1,
	})
	for _, in := range inputs {
		if err := d.Push(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if len(q1.Results) == 0 || len(q1.Results) != len(q2.Results) {
		t.Fatalf("both queries should see identical results: %d vs %d", len(q1.Results), len(q2.Results))
	}
	if got := d.StreamsInUse(); len(got) != 2 {
		t.Fatalf("StreamsInUse = %v", got)
	}
	if !d.Unregister("q2") || d.Unregister("q2") {
		t.Fatal("Unregister bookkeeping broken")
	}
}

// TestDSMSSweep: with purging fully deferred, the engine-level background
// clean-up removes everything the punctuations cover.
func TestDSMSSweep(t *testing.T) {
	d := New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	reg, err := d.Register("auction", workload.AuctionQuery(), Options{PurgeBatch: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 80, MaxBidsPerItem: 4, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 44,
	})
	for _, in := range inputs {
		if err := d.Push(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Tree.TotalState() == 0 {
		t.Fatal("deferred purging should have left state behind")
	}
	removed, err := d.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || reg.Tree.TotalState() != 0 {
		t.Fatalf("sweep removed %d, state %d", removed, reg.Tree.TotalState())
	}
}

// TestDescribe renders the status block of a registered query.
func TestDescribe(t *testing.T) {
	d := New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	if _, err := d.Register("auction", workload.AuctionQuery(), Options{}); err != nil {
		t.Fatal(err)
	}
	out, err := d.Describe("auction")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`query "auction"`, "plan: (item JOIN bid)", "SAFE", "operator 0:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	if _, err := d.Describe("nope"); err == nil {
		t.Error("Describe of unknown query must fail")
	}
}

// TestGroupByDownstream wires the paper's full Example 1 pipeline: join
// item with bid, then sum the increases per item. The join's PROPAGATED
// punctuations (emitted once both sides closed an item) unblock the
// group-by, which emits exactly one total per item that received bids.
func TestGroupByDownstream(t *testing.T) {
	d := New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	q := workload.AuctionQuery()

	var gb *exec.GroupBy
	var finished []stream.Tuple
	feed := func(e stream.Element) {
		outs, err := gb.Push(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			finished = append(finished, o.Tuple())
		}
	}
	reg, err := d.Register("auction", q, Options{
		OnResult: func(tu stream.Tuple) { feed(stream.TupleElement(tu)) },
		OnPunct:  func(p stream.Punctuation) { feed(stream.PunctElement(p)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	gb, err = exec.NewGroupBy(reg.Tree.OutputSchema(), "item_itemid", exec.AggSum, "bid_increase")
	if err != nil {
		t.Fatal(err)
	}

	inputs := workload.Auction(workload.AuctionConfig{
		Items: 100, MaxBidsPerItem: 5, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 99,
	})
	// Reference: per-item sum of increases.
	wantSum := make(map[int64]float64)
	for _, in := range inputs {
		if in.Stream == "bid" && !in.Elem.IsPunct() {
			tu := in.Elem.Tuple()
			wantSum[tu.Values[1].AsInt()] += tu.Values[2].AsFloat()
		}
	}
	for _, in := range inputs {
		if err := d.Push(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if len(finished) != len(wantSum) {
		t.Fatalf("groups emitted = %d, want %d (one per item with bids)", len(finished), len(wantSum))
	}
	for _, g := range finished {
		id := g.Values[0].AsInt()
		if got, want := g.Values[1].AsFloat(), wantSum[id]; got != want {
			t.Fatalf("item %d sum = %v, want %v", id, got, want)
		}
	}
	if gb.GroupsHeld() != 0 {
		t.Fatalf("all groups should be closed, %d held", gb.GroupsHeld())
	}
}
