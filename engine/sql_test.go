package engine

import (
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

// TestRegisterSQLAuction runs the paper's Example 1 declared entirely in
// SQL, with a projection, against the real auction workload.
func TestRegisterSQLAuction(t *testing.T) {
	d := New()
	regs, err := d.RegisterSQL("auction", `
CREATE STREAM item (sellerid INT, itemid INT, name STRING, initialprice FLOAT);
CREATE STREAM bid (bidderid INT, itemid INT, increase FLOAT);
DECLARE SCHEME ON item (itemid);
DECLARE SCHEME ON bid (itemid);
SELECT item.itemid, bid.increase FROM item, bid
WHERE item.itemid = bid.itemid;
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("registered %d queries", len(regs))
	}
	reg := regs[0]
	if reg.Output.Arity() != 2 {
		t.Fatalf("projected output schema = %s", reg.Output)
	}

	inputs := workload.Auction(workload.AuctionConfig{
		Items: 150, MaxBidsPerItem: 5, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 17,
	})
	bids := 0
	var wantTotal float64
	for _, in := range inputs {
		if in.Stream == "bid" && !in.Elem.IsPunct() {
			bids++
			wantTotal += in.Elem.Tuple().Values[2].AsFloat()
		}
		if err := d.Push(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}
	if len(reg.Results) != bids {
		t.Fatalf("results = %d, want %d", len(reg.Results), bids)
	}
	var gotTotal float64
	for _, r := range reg.Results {
		if len(r.Values) != 2 {
			t.Fatalf("projected result arity = %d", len(r.Values))
		}
		gotTotal += r.Values[1].AsFloat()
	}
	if gotTotal != wantTotal {
		t.Fatalf("sum of projected increases = %v, want %v", gotTotal, wantTotal)
	}
	if reg.Tree.TotalState() != 0 {
		t.Fatal("state should drain")
	}
}

// TestRegisterSQLFilters: literal predicates act as selections — filtered
// tuples never enter the join, and punctuations still purge.
func TestRegisterSQLFilters(t *testing.T) {
	d := New()
	regs, err := d.RegisterSQL("q", `
CREATE STREAM ev (k INT, tag INT);
CREATE STREAM ref (k INT, w INT);
DECLARE SCHEME ON ev (k);
DECLARE SCHEME ON ref (k);
SELECT * FROM ev, ref WHERE ev.k = ref.k AND ev.tag = 1;
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := regs[0]
	tup := func(vals ...int64) stream.Element {
		vs := make([]stream.Value, len(vals))
		for i, v := range vals {
			vs[i] = stream.Int(v)
		}
		return stream.TupleElement(stream.NewTuple(vs...))
	}
	punctK := func(streamName string, k int64) {
		if err := d.Push(streamName, stream.PunctElement(stream.MustPunctuation(
			stream.Const(stream.Int(k)), stream.Wildcard()))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Push("ref", tup(7, 700)); err != nil {
		t.Fatal(err)
	}
	if err := d.Push("ev", tup(7, 0)); err != nil { // filtered out
		t.Fatal(err)
	}
	if err := d.Push("ev", tup(7, 1)); err != nil { // passes
		t.Fatal(err)
	}
	if len(reg.Results) != 1 {
		t.Fatalf("results = %d, want 1 (tag=0 filtered)", len(reg.Results))
	}
	// The filtered tuple never entered the state.
	if got := reg.Tree.Root().Stats().StateSize[0]; got != 1 {
		t.Fatalf("ev state = %d, want 1", got)
	}
	punctK("ev", 7)
	punctK("ref", 7)
	if reg.Tree.TotalState() != 0 {
		t.Fatalf("state = %d after punctuations", reg.Tree.TotalState())
	}
}

// TestRegisterSQLUnsafeRejectedAndRolledBack: a script whose second query
// is unsafe registers nothing.
func TestRegisterSQLUnsafeRejected(t *testing.T) {
	d := New()
	_, err := d.RegisterSQL("q", `
CREATE STREAM a (k INT);
CREATE STREAM b (k INT);
DECLARE SCHEME ON a (k);
DECLARE SCHEME ON b (k);
SELECT * FROM a, b WHERE a.k = b.k;
SELECT * FROM b, c WHERE b.k = c.k;
`, Options{})
	if err == nil {
		t.Fatal("script referencing undeclared stream must fail")
	}
	if len(d.Queries()) != 0 {
		t.Fatalf("failed script must roll back, %d queries registered", len(d.Queries()))
	}

	_, err = d.RegisterSQL("q", `
CREATE STREAM a (k INT, x INT);
CREATE STREAM b (k INT);
DECLARE SCHEME ON b (k);
SELECT * FROM a, b WHERE a.k = b.k;
`, Options{})
	if err == nil {
		t.Fatal("unsafe query must be rejected")
	}
	if len(d.Queries()) != 0 {
		t.Fatal("unsafe script must register nothing")
	}
}

const shareSQLBase = `
CREATE STREAM ev (k INT, tag INT);
CREATE STREAM ref (k INT, w INT);
DECLARE SCHEME ON ev (k);
DECLARE SCHEME ON ref (k);
`

// TestSQLShareFiltersAndProjections: two SQL views share one physical
// tree exactly when their joins AND canonical filters agree — the
// projection is delivery-side and never blocks sharing — while a
// different filter value, or a permuted FROM order (different physical
// child order, different output schema), keeps trees apart.
func TestSQLShareFiltersAndProjections(t *testing.T) {
	d := New()
	mustSQL := func(prefix, stmt string) *Registered {
		t.Helper()
		regs, err := d.RegisterSQL(prefix, shareSQLBase+stmt, Options{Share: true})
		if err != nil {
			t.Fatal(err)
		}
		return regs[0]
	}
	v1 := mustSQL("v1", "SELECT ev.k FROM ev, ref WHERE ev.k = ref.k AND ev.tag = 1;")
	v2 := mustSQL("v2", "SELECT ref.w FROM ev, ref WHERE ev.k = ref.k AND ev.tag = 1;")
	v3 := mustSQL("v3", "SELECT * FROM ev, ref WHERE ev.k = ref.k AND ev.tag = 2;")
	v4 := mustSQL("v4", "SELECT * FROM ref, ev WHERE ev.k = ref.k AND ev.tag = 1;")
	if v2.Tree != v1.Tree {
		t.Fatal("same join + same filter + different projection must share one tree")
	}
	if v3.Tree == v1.Tree {
		t.Fatal("a different filter value must not share the tree")
	}
	if v4.Tree == v1.Tree {
		t.Fatal("a permuted FROM order is a different physical tree (different output schema) and must not share")
	}
	if got := d.PhysicalTrees(); got != 3 {
		t.Fatalf("PhysicalTrees = %d, want 3", got)
	}

	tup := func(vals ...int64) stream.Element {
		vs := make([]stream.Value, len(vals))
		for i, v := range vals {
			vs[i] = stream.Int(v)
		}
		return stream.TupleElement(stream.NewTuple(vs...))
	}
	if err := d.Push("ref", tup(7, 700)); err != nil {
		t.Fatal(err)
	}
	if err := d.Push("ev", tup(7, 0)); err != nil { // fails every tag filter
		t.Fatal(err)
	}
	if err := d.Push("ev", tup(7, 1)); err != nil { // passes tag=1
		t.Fatal(err)
	}
	if len(v1.Results) != 1 || v1.Results[0].Values[0].AsInt() != 7 {
		t.Fatalf("v1 results = %v, want one projected (7)", v1.Results)
	}
	if len(v2.Results) != 1 || v2.Results[0].Values[0].AsInt() != 700 {
		t.Fatalf("v2 results = %v, want one projected (700) off the shared tree", v2.Results)
	}
	if len(v3.Results) != 0 {
		t.Fatalf("v3 (tag=2) delivered %d results, want 0", len(v3.Results))
	}
	if len(v4.Results) != 1 {
		t.Fatalf("v4 delivered %d results, want 1", len(v4.Results))
	}
	for _, streamName := range []string{"ev", "ref"} {
		if err := d.Push(streamName, stream.PunctElement(stream.MustPunctuation(
			stream.Const(stream.Int(7)), stream.Wildcard()))); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.TotalState(); got != 0 {
		t.Fatalf("TotalState = %d after punctuations, want 0", got)
	}
}

// TestAttachSQLLive: a SQL view attached to a running runtime joins the
// matching share group instantly, receives only post-attach outputs
// through its own projection, and detaches without disturbing the
// group.
func TestAttachSQLLive(t *testing.T) {
	d := New()
	base, err := d.RegisterSQL("v1", shareSQLBase+"SELECT ev.k FROM ev, ref WHERE ev.k = ref.k AND ev.tag = 1;", Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	v1 := base[0]
	rt := d.RunSharded(RuntimeOptions{})
	tup := func(vals ...int64) stream.Element {
		vs := make([]stream.Value, len(vals))
		for i, v := range vals {
			vs[i] = stream.Int(v)
		}
		return stream.TupleElement(stream.NewTuple(vs...))
	}
	if err := rt.Send("ref", tup(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Send("ev", tup(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Barrier so the pre-attach result is delivered before the cut.
	if _, err := rt.Stats("v1#1"); err != nil {
		t.Fatal(err)
	}
	regs, err := rt.AttachSQL("v5", shareSQLBase+"SELECT ref.w FROM ev, ref WHERE ev.k = ref.k AND ev.tag = 1;", Options{Share: true})
	if err != nil {
		t.Fatalf("AttachSQL: %v", err)
	}
	v5 := regs[0]
	if v5.Tree != v1.Tree {
		t.Fatal("attached SQL view must join the live share group")
	}
	if err := rt.Send("ev", tup(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Detach("v5#1"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Send("ev", tup(1, 1)); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := len(v1.Results); got != 3 {
		t.Fatalf("v1 delivered %d results, want 3", got)
	}
	if got := len(v5.Results); got != 1 {
		t.Fatalf("v5 delivered %d results across its attach window, want 1", got)
	}
	if v5.Results[0].Values[0].AsInt() != 10 {
		t.Fatalf("v5 projected %v, want ref.w = 10", v5.Results[0])
	}
}

// TestRegisterSQLMultipleQueries: one script, several queries, each
// independently named and fed.
func TestRegisterSQLMultipleQueries(t *testing.T) {
	d := New()
	regs, err := d.RegisterSQL("multi", `
CREATE STREAM a (k INT);
CREATE STREAM b (k INT);
CREATE STREAM c (k INT);
DECLARE SCHEME ON a (k);
DECLARE SCHEME ON b (k);
DECLARE SCHEME ON c (k);
SELECT * FROM a, b WHERE a.k = b.k;
SELECT * FROM b, c WHERE b.k = c.k;
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || regs[0].Name != "multi#1" || regs[1].Name != "multi#2" {
		t.Fatalf("regs = %v", regs)
	}
	one := stream.TupleElement(stream.NewTuple(stream.Int(1)))
	for _, s := range []string{"a", "b", "c"} {
		if err := d.Push(s, one); err != nil {
			t.Fatal(err)
		}
	}
	if len(regs[0].Results) != 1 || len(regs[1].Results) != 1 {
		t.Fatalf("results = %d/%d", len(regs[0].Results), len(regs[1].Results))
	}
}
