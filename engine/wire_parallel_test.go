package engine

// Parallel wire-ingestion equivalence: IngestWireParallel and
// IngestWireFromParallel fan frame decoding out over worker goroutines,
// but the assembly stage must make that invisible — element order, fault
// accounting, strict-mode failure, and the offset-exact resume contract
// all match the sequential reader.

import (
	"bytes"
	"io"
	"testing"

	"punctsafe/internal/faultinject"
	"punctsafe/workload"
)

// TestIngestWireParallelClean: a clean wire ingested with parallel
// decoding produces element-for-element identical results to the
// sequential path (exact order — the assembly stage restores wire
// order, and a single producer keeps shard delivery deterministic).
func TestIngestWireParallelClean(t *testing.T) {
	itemSchema := workload.AuctionQuery().Stream(0)
	bidSchema := workload.AuctionQuery().Stream(1)
	var buf bytes.Buffer
	ww := NewWireWriter(&buf, itemSchema, bidSchema)
	feed := auctionFeed(40, 3)
	for _, te := range feed {
		if err := ww.Write(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	wire := buf.Bytes()

	ref, refRegs := newAuctionDSMS(t, 1)
	rtRef := ref.RunSharded(RuntimeOptions{})
	nRef, err := rtRef.IngestWire(bytes.NewReader(wire), itemSchema, bidSchema)
	if err != nil {
		t.Fatal(err)
	}
	rtRef.Close()
	if err := rtRef.Wait(); err != nil {
		t.Fatal(err)
	}

	d, regs := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{})
	n, err := rt.IngestWireParallel(bytes.NewReader(wire), 4, itemSchema, bidSchema)
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != nRef {
		t.Fatalf("parallel ingest routed %d elements, sequential %d", n, nRef)
	}
	want, got := resultStrings(refRegs[0]), resultStrings(regs[0])
	if len(want) == 0 {
		t.Fatal("reference run produced no results; the check is vacuous")
	}
	if !equalStrings(want, got) {
		t.Fatalf("parallel wire ingest diverges: %d results vs %d", len(got), len(want))
	}
}

// TestIngestWireParallelChaos: a damaged wire under Quarantine loses
// exactly the injected faults — every original element still arrives and
// the dead-letter queue accounts for each corrupt region — and the same
// wire under the strict policy fails the parallel ingest fast, exactly
// like the sequential reader.
func TestIngestWireParallelChaos(t *testing.T) {
	itemSchema := workload.AuctionQuery().Stream(0)
	bidSchema := workload.AuctionQuery().Stream(1)
	feed := auctionFeed(40, 3)
	frames := make([][]byte, len(feed))
	for i, te := range feed {
		var buf bytes.Buffer
		ww := NewWireWriter(&buf, itemSchema, bidSchema)
		if err := ww.Write(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
		frames[i] = buf.Bytes()
	}
	wire, rep := faultinject.BuildWire(frames, faultinject.WireChaosConfig{
		GarbleEvery: 13, UnknownEvery: 19, TruncateTail: true,
	})
	if rep.Garbled == 0 || rep.Unknown == 0 || rep.Truncated != 1 {
		t.Fatalf("wire chaos injected nothing: %+v", rep)
	}

	ref, refRegs := newAuctionDSMS(t, 1)
	rtRef := ref.RunSharded(RuntimeOptions{OnError: Quarantine})
	if _, err := rtRef.IngestWire(bytes.NewReader(wire), itemSchema, bidSchema); err != nil {
		t.Fatal(err)
	}
	rtRef.Close()
	if err := rtRef.Wait(); err != nil {
		t.Fatal(err)
	}

	d, regs := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{OnError: Quarantine})
	n, err := rt.IngestWireParallel(bytes.NewReader(wire), 4, itemSchema, bidSchema)
	if err != nil {
		t.Fatalf("lenient parallel ingest failed: %v", err)
	}
	if n != len(feed) {
		t.Fatalf("ingested %d elements, want all %d originals", n, len(feed))
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if !equalStrings(resultStrings(regs[0]), resultStrings(refRegs[0])) {
		t.Fatal("parallel chaos ingest changed the results")
	}
	dl := rt.DeadLetters()
	if dl.Total != uint64(rep.Total()) {
		t.Fatalf("dead-letter total = %d, want exactly %d injected wire faults", dl.Total, rep.Total())
	}
	for _, e := range dl.Entries {
		if e.Stream == "item" || e.Stream == "bid" {
			if len(e.Frame) == 0 {
				t.Fatal("garbled frame retained without raw bytes")
			}
		}
	}

	// Strict mode: the first corrupt region is terminal, as in the
	// sequential path; elements decoded before it are still routed.
	strict, _ := newAuctionDSMS(t, 1)
	srt := strict.RunSharded(RuntimeOptions{})
	if _, err := srt.IngestWireParallel(bytes.NewReader(wire), 4, itemSchema, bidSchema); err == nil {
		t.Fatal("strict parallel ingest accepted a corrupt wire")
	}
	srt.Kill()
	srt.Close()
	srt.Wait()
}

// TestIngestWireFromParallelResume: the resumable parallel ingest commits
// offsets in wire order, so checkpoint → crash → restore resumes exactly
// after the last committed frame with no loss and no duplication, even
// over a flaky transport.
func TestIngestWireFromParallelResume(t *testing.T) {
	feed := auctionFeed(30, 2)
	item := workload.AuctionQuery().Stream(0)
	bid := workload.AuctionQuery().Stream(1)
	var buf bytes.Buffer
	ww := NewWireWriter(&buf, item, bid)
	var boundary int64
	for i, te := range feed {
		if err := ww.Write(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
		if i == len(feed)/2 {
			boundary = int64(buf.Len())
		}
	}
	wire := buf.Bytes()

	ref, refRegs := newAuctionDSMS(t, 1)
	rtRef := ref.RunSharded(RuntimeOptions{})
	if _, err := rtRef.IngestWire(bytes.NewReader(wire), item, bid); err != nil {
		t.Fatal(err)
	}
	rtRef.Close()
	if err := rtRef.Wait(); err != nil {
		t.Fatal(err)
	}

	d, regs := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{})
	n1, err := rt.IngestWireFromParallel("wire", func(off int64) (io.Reader, error) {
		return faultinject.NewFlakyReader(wire[off:boundary], 700), nil
	}, 4, item, bid)
	if err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	prefix := resultStrings(regs[0])
	rt.Kill()
	rt.Close()
	rt.Wait()

	d2, regs2 := newAuctionDSMS(t, 1)
	rt2, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.ResumeOffset("wire"); got != boundary {
		t.Fatalf("ResumeOffset = %d, want wire boundary %d", got, boundary)
	}
	n2, err := rt2.IngestWireFromParallel("wire", func(off int64) (io.Reader, error) {
		return faultinject.NewFlakyReader(wire[off:], 700), nil
	}, 4, item, bid)
	if err != nil {
		t.Fatalf("resumed ingest: %v", err)
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(feed) {
		t.Fatalf("ingested %d + %d elements, want exactly %d (no loss, no duplication)", n1, n2, len(feed))
	}
	want := resultStrings(refRegs[0])
	got := append(prefix, resultStrings(regs2[0])...)
	if !equalStrings(want, got) {
		t.Fatalf("%d results across the crash, want %d", len(got), len(want))
	}
}
