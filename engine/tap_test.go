package engine

// IngestTap contract tests: the tap observes every committed wire batch
// with byte-exact frames and contiguous offsets, its call order is a
// total ingress order even across concurrently-ingesting sources, and
// replaying the tapped records in call order into a second runtime
// reproduces the exact delivery stream — the property the serving
// layer's primary→standby replication feed is built on.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

type tapRecord struct {
	source     string
	frames     []byte
	start, end int64
}

func tapAuctionDSMS(t *testing.T) (*DSMS, *[]string) {
	t.Helper()
	d := New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	reg, err := d.Register("q", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	deliveries := &[]string{}
	reg.SetDeliveryHook(func(seq uint64, e stream.Element) {
		*deliveries = append(*deliveries, fmt.Sprintf("%d|%s", seq, e))
	})
	return d, deliveries
}

func TestIngestTapTotalOrderAndReplay(t *testing.T) {
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 80, MaxBidsPerItem: 4, OpenWindow: 3,
		PunctuateItems: true, PunctuateClose: true, Seed: 31,
	})
	item, bid := workload.AuctionSchemas()

	// Two sources, each carrying an alternating half of the workload.
	wires := map[string]*bytes.Buffer{"a": {}, "b": {}}
	writers := map[string]*WireWriter{
		"a": NewWireWriter(wires["a"], item, bid),
		"b": NewWireWriter(wires["b"], item, bid),
	}
	names := []string{"a", "b"}
	for i, in := range inputs {
		if err := writers[names[i%2]].Write(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}

	// First run: both sources ingest concurrently under a tap.
	var taps []tapRecord
	d, deliveries := tapAuctionDSMS(t)
	rt := d.RunSharded(RuntimeOptions{
		IngestTap: func(source string, frames []byte, start, end int64) {
			taps = append(taps, tapRecord{source, append([]byte(nil), frames...), start, end})
		},
	})
	var wg sync.WaitGroup
	for _, src := range names {
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			if _, err := rt.IngestWireResume(src, bytes.NewReader(wires[src].Bytes()), item, bid); err != nil {
				t.Errorf("ingest %s: %v", src, err)
			}
		}(src)
	}
	wg.Wait()
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	// Per source: offsets are contiguous from zero and the concatenated
	// tapped frames are byte-identical to what went over the wire.
	rebuilt := map[string][]byte{}
	next := map[string]int64{}
	for i, rec := range taps {
		if rec.start != next[rec.source] {
			t.Fatalf("tap %d: source %s jumps from offset %d to %d", i, rec.source, next[rec.source], rec.start)
		}
		if rec.end-rec.start != int64(len(rec.frames)) {
			t.Fatalf("tap %d: %d bytes labelled [%d,%d)", i, len(rec.frames), rec.start, rec.end)
		}
		next[rec.source] = rec.end
		rebuilt[rec.source] = append(rebuilt[rec.source], rec.frames...)
	}
	for _, src := range names {
		if !bytes.Equal(rebuilt[src], wires[src].Bytes()) {
			t.Fatalf("source %s: tapped bytes differ from wire bytes (%d vs %d)", src, len(rebuilt[src]), len(wires[src].Bytes()))
		}
	}

	// Replay the tapped records in call order into a fresh runtime: the
	// delivery stream (elements AND sequence numbers) must be identical.
	d2, replayed := tapAuctionDSMS(t)
	rt2 := d2.RunSharded(RuntimeOptions{})
	for i, rec := range taps {
		if got := rt2.ResumeOffset(rec.source); got != rec.start {
			t.Fatalf("replay %d: source %s resumes at %d, record starts at %d", i, rec.source, got, rec.start)
		}
		if _, err := rt2.IngestWireResume(rec.source, bytes.NewReader(rec.frames), item, bid); err != nil {
			t.Fatal(err)
		}
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*deliveries) == 0 {
		t.Fatal("no deliveries observed")
	}
	if len(*replayed) != len(*deliveries) {
		t.Fatalf("replay delivered %d, original %d", len(*replayed), len(*deliveries))
	}
	for i := range *deliveries {
		if (*deliveries)[i] != (*replayed)[i] {
			t.Fatalf("delivery %d differs:\n  original %s\n  replay   %s", i, (*deliveries)[i], (*replayed)[i])
		}
	}
}

// TestIngestTapIgnoresDirectSend pins the tap's scope: only the
// wire-ingest path is observed; direct Send calls bypass it.
func TestIngestTapIgnoresDirectSend(t *testing.T) {
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 10, MaxBidsPerItem: 2, OpenWindow: 2,
		PunctuateItems: true, PunctuateClose: true, Seed: 7,
	})
	d, _ := tapAuctionDSMS(t)
	calls := 0
	rt := d.RunSharded(RuntimeOptions{
		IngestTap: func(string, []byte, int64, int64) { calls++ },
	})
	for _, in := range inputs {
		if err := rt.Send(in.Stream, in.Elem); err != nil {
			t.Fatal(err)
		}
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("tap fired %d times on the direct Send path", calls)
	}
}
