package engine_test

// The fault-isolation acceptance suite: under seeded chaos input the
// Quarantine policy must lose only the injected offenders (dead-letter
// counts match the injection report exactly), Drop must emit the same
// results as Quarantine, Fail must reproduce the strict behavior, and a
// panicking operator in one query must leave every other shard's output
// identical to its no-fault run. It lives in an external test package so
// it can drive the engine through internal/faultinject.

import (
	"bytes"
	"errors"
	"io"
	"sort"
	"testing"
	"time"

	"punctsafe/engine"
	"punctsafe/exec"
	"punctsafe/internal/faultinject"
	"punctsafe/stream"
	"punctsafe/workload"
)

// chaosBaseFeed is the clean auction workload every chaos pass perturbs.
func chaosBaseFeed() []faultinject.Item {
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 60, MaxBidsPerItem: 4, OpenWindow: 3,
		PunctuateItems: true, PunctuateClose: true, Seed: 11,
	})
	feed := make([]faultinject.Item, len(inputs))
	for i, in := range inputs {
		feed[i] = faultinject.Item(in)
	}
	return feed
}

// newFaultDSMS registers the auction schemes and one promise-enforcing
// auction query per name.
func newFaultDSMS(t testing.TB, names ...string) (*engine.DSMS, []*engine.Registered) {
	t.Helper()
	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	regs := make([]*engine.Registered, len(names))
	for i, name := range names {
		reg, err := d.Register(name, workload.AuctionQuery(), engine.Options{EnforcePromises: true})
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = reg
	}
	return d, regs
}

func sortedStrings(ts []stream.Tuple) []string {
	out := make([]string, len(ts))
	for i, r := range ts {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// runFeed pushes a feed through a single-query sharded runtime under the
// given policy and returns the sorted result multiset, the dead-letter
// snapshot, and Wait's error.
func runFeed(t *testing.T, policy engine.ErrorPolicy, feed []faultinject.Item) ([]string, engine.DeadLetterSnapshot, error) {
	t.Helper()
	d, regs := newFaultDSMS(t, "q0")
	rt := d.RunSharded(engine.RuntimeOptions{OnError: policy})
	for _, it := range feed {
		if err := rt.Send(it.Stream, it.Elem); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	rt.Close()
	err := rt.Wait()
	return sortedStrings(regs[0].Results), rt.DeadLetters(), err
}

// chaosFeed layers late tuples and malformed elements over the base feed
// with fixed seeds, so every policy test perturbs identically.
func chaosFeed(t *testing.T) ([]faultinject.Item, int) {
	t.Helper()
	feed := chaosBaseFeed()
	feed, late := faultinject.InjectLate(feed, 6, 1)
	if late.Late != 6 {
		t.Fatalf("injected %d late tuples, want 6", late.Late)
	}
	feed, mal := faultinject.InjectMalformed(feed, "bid", 4, 2)
	return feed, late.Total() + mal.Total()
}

// TestQuarantineLosesOnlyInjectedOffenders is the core acceptance test:
// with injected promise violations and malformed elements, Quarantine
// must produce exactly the clean run's results, and the dead-letter
// queue must hold exactly the injected offenders — classified, counted
// per stream and query, and retained.
func TestQuarantineLosesOnlyInjectedOffenders(t *testing.T) {
	base, cleanDL, err := runFeed(t, engine.Fail, chaosBaseFeed())
	if err != nil {
		t.Fatalf("clean strict run failed: %v", err)
	}
	if cleanDL.Total != 0 {
		t.Fatalf("clean run dead-lettered %d elements", cleanDL.Total)
	}

	feed, injected := chaosFeed(t)
	got, dl, err := runFeed(t, engine.Quarantine, feed)
	if err != nil {
		t.Fatalf("quarantine run failed: %v", err)
	}
	if !equalStrings(got, base) {
		t.Fatalf("quarantine results diverge from clean run: got %d results, want %d", len(got), len(base))
	}
	if dl.Total != uint64(injected) {
		t.Fatalf("dead-letter total = %d, want exactly the %d injected offenders", dl.Total, injected)
	}
	if len(dl.Entries) != injected {
		t.Fatalf("retained %d entries, want %d", len(dl.Entries), injected)
	}
	if dl.ByQuery["q0"] != uint64(injected) {
		t.Fatalf("ByQuery[q0] = %d, want %d", dl.ByQuery["q0"], injected)
	}
	var sum uint64
	for _, n := range dl.ByStream {
		sum += n
	}
	if sum != dl.Total {
		t.Fatalf("ByStream sums to %d, total is %d", sum, dl.Total)
	}
	late, malformed := 0, 0
	for _, e := range dl.Entries {
		switch {
		case errors.Is(e.Err, exec.ErrPromiseViolated):
			late++
		case errors.Is(e.Err, exec.ErrMalformedElement):
			malformed++
		default:
			t.Fatalf("unclassified dead letter: %v", e.Err)
		}
		if e.Query != "q0" || e.Stream == "" || e.Seq == 0 {
			t.Fatalf("incomplete dead letter: %+v", e)
		}
	}
	if late != 6 || malformed != 4 {
		t.Fatalf("classified %d late + %d malformed, want 6 + 4", late, malformed)
	}
}

// TestDropMatchesQuarantine: Drop must emit exactly Quarantine's results
// and counts while retaining nothing.
func TestDropMatchesQuarantine(t *testing.T) {
	feed, injected := chaosFeed(t)
	qRes, qDL, err := runFeed(t, engine.Quarantine, feed)
	if err != nil {
		t.Fatal(err)
	}
	dRes, dDL, err := runFeed(t, engine.Drop, feed)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(dRes, qRes) {
		t.Fatalf("Drop results diverge from Quarantine: %d vs %d", len(dRes), len(qRes))
	}
	if dDL.Total != qDL.Total || dDL.Total != uint64(injected) {
		t.Fatalf("Drop counted %d, Quarantine %d, injected %d", dDL.Total, qDL.Total, injected)
	}
	if len(dDL.Entries) != 0 {
		t.Fatalf("Drop retained %d entries, want 0", len(dDL.Entries))
	}
}

// TestFailReproducesStrictBehavior: under the default policy the first
// injected offender fails its shard, exactly as before policies existed.
func TestFailReproducesStrictBehavior(t *testing.T) {
	feed, _ := chaosFeed(t)
	_, dl, err := runFeed(t, engine.Fail, feed)
	if err == nil {
		t.Fatal("strict run over chaos input succeeded")
	}
	if !errors.Is(err, exec.ErrPromiseViolated) && !errors.Is(err, exec.ErrMalformedElement) {
		t.Fatalf("strict failure is not an injected fault: %v", err)
	}
	if dl.Total != 0 {
		t.Fatalf("Fail policy dead-lettered %d elements", dl.Total)
	}
}

// TestBenignChaosIsHarmless: duplicated punctuations and same-stream
// reorderings are absorbed without dead letters or result drift.
func TestBenignChaosIsHarmless(t *testing.T) {
	base, _, err := runFeed(t, engine.Fail, chaosBaseFeed())
	if err != nil {
		t.Fatal(err)
	}
	feed := chaosBaseFeed()
	feed, dup := faultinject.DuplicatePuncts(feed, 10, 3)
	feed, swap := faultinject.SwapAdjacentTuples(feed, 10, 4)
	if dup.DupPuncts == 0 || swap.Swapped == 0 {
		t.Fatalf("benign chaos injected nothing: %+v %+v", dup, swap)
	}
	got, dl, err := runFeed(t, engine.Quarantine, feed)
	if err != nil {
		t.Fatalf("benign chaos failed the run: %v", err)
	}
	if dl.Total != 0 {
		t.Fatalf("benign chaos dead-lettered %d elements", dl.Total)
	}
	if !equalStrings(got, base) {
		t.Fatal("benign chaos changed the result multiset")
	}
}

// TestPanicContainmentIsolatesShards: a deliberately panicking operator
// in one query fails only that shard — with a captured stack — while
// every sibling's output is identical to its no-fault run, and nothing
// is quarantined (a panicked shard's state cannot be trusted, so panics
// are never element-recoverable).
func TestPanicContainmentIsolatesShards(t *testing.T) {
	feed := chaosBaseFeed()
	base, _, err := runFeed(t, engine.Fail, feed)
	if err != nil {
		t.Fatal(err)
	}

	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	steady, err := d.Register("steady", workload.AuctionQuery(), engine.Options{EnforcePromises: true})
	if err != nil {
		t.Fatal(err)
	}
	results := 0
	if _, err := d.Register("poisoned", workload.AuctionQuery(), engine.Options{
		OnResult: func(stream.Tuple) {
			results++
			if results == 7 {
				panic("injected operator bug")
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	rt := d.RunSharded(engine.RuntimeOptions{OnError: engine.Quarantine})
	for _, it := range feed {
		if err := rt.Send(it.Stream, it.Elem); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	rt.Close()
	err = rt.Wait()
	if err == nil {
		t.Fatal("poisoned shard did not fail")
	}
	var pe *engine.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("shard failure is not a contained panic: %v", err)
	}
	if pe.Value != "injected operator bug" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
	if got := sortedStrings(steady.Results); !equalStrings(got, base) {
		t.Fatalf("sibling shard output diverged: got %d results, want %d", len(got), len(base))
	}
	if dl := rt.DeadLetters(); dl.Total != 0 {
		t.Fatalf("panic was quarantined: %d dead letters", dl.Total)
	}
}

// TestWireChaosQuarantine: a wire carrying garbled frames, frames for an
// unknown stream, and a truncated tail ingests under Quarantine with the
// clean results intact and exactly one dead letter per injected fault —
// garbled frames retained with their raw bytes and stream name.
func TestWireChaosQuarantine(t *testing.T) {
	feed := chaosBaseFeed()
	base, _, err := runFeed(t, engine.Fail, feed)
	if err != nil {
		t.Fatal(err)
	}
	item, bid := workload.AuctionSchemas()
	frames := make([][]byte, len(feed))
	for i, it := range feed {
		var buf bytes.Buffer
		ww := engine.NewWireWriter(&buf, item, bid)
		if err := ww.Write(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
		frames[i] = buf.Bytes()
	}
	wire, rep := faultinject.BuildWire(frames, faultinject.WireChaosConfig{
		GarbleEvery: 17, UnknownEvery: 23, TruncateTail: true,
	})
	if rep.Garbled == 0 || rep.Unknown == 0 || rep.Truncated != 1 {
		t.Fatalf("wire chaos injected nothing: %+v", rep)
	}

	d, regs := newFaultDSMS(t, "q0")
	rt := d.RunSharded(engine.RuntimeOptions{OnError: engine.Quarantine})
	n, err := rt.IngestWire(bytes.NewReader(wire), item, bid)
	if err != nil {
		t.Fatalf("lenient ingest failed: %v", err)
	}
	if n != len(feed) {
		t.Fatalf("ingested %d elements, want all %d originals", n, len(feed))
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := sortedStrings(regs[0].Results); !equalStrings(got, base) {
		t.Fatal("wire chaos changed the result multiset")
	}
	dl := rt.DeadLetters()
	if dl.Total != uint64(rep.Total()) {
		t.Fatalf("dead-letter total = %d, want exactly %d injected wire faults", dl.Total, rep.Total())
	}
	garbled := 0
	for _, e := range dl.Entries {
		if e.Query != "" {
			t.Fatalf("wire fault attributed to query %q", e.Query)
		}
		if e.Stream == "item" || e.Stream == "bid" {
			garbled++
			if len(e.Frame) == 0 {
				t.Fatal("garbled frame retained without raw bytes")
			}
		}
	}
	if garbled != rep.Garbled {
		t.Fatalf("retained %d garbled frames, want %d", garbled, rep.Garbled)
	}
	if dl.ByStream["chaos-unknown"] != uint64(rep.Unknown) {
		t.Fatalf("ByStream[chaos-unknown] = %d, want %d", dl.ByStream["chaos-unknown"], rep.Unknown)
	}

	// The same wire under the strict sequential path fails fast.
	strict, _ := newFaultDSMS(t, "q0")
	if _, err := strict.IngestWire(bytes.NewReader(wire), item, bid); err == nil {
		t.Fatal("strict ingest accepted a corrupt wire")
	}
}

// TestRetryReaderResumesFlakyTransport: a transport that drops every few
// hundred bytes, wrapped in a RetryReader, still delivers the whole wire
// with no frame lost or duplicated.
func TestRetryReaderResumesFlakyTransport(t *testing.T) {
	feed := chaosBaseFeed()
	item, bid := workload.AuctionSchemas()
	var buf bytes.Buffer
	ww := engine.NewWireWriter(&buf, item, bid)
	for _, it := range feed {
		if err := ww.Write(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	wire := buf.Bytes()

	opens := 0
	rr := &engine.RetryReader{
		Open: func(offset int64) (io.Reader, error) {
			opens++
			return faultinject.NewFlakyReader(wire[offset:], 700), nil
		},
		Sleep: func(time.Duration) {},
	}
	d, regs := newFaultDSMS(t, "q0")
	n, err := d.IngestWire(rr, item, bid)
	if err != nil {
		t.Fatalf("ingest over flaky transport failed: %v", err)
	}
	if n != len(feed) {
		t.Fatalf("ingested %d elements, want %d", n, len(feed))
	}
	if opens < 2 || rr.Retries == 0 {
		t.Fatalf("transport never dropped: opens=%d retries=%d", opens, rr.Retries)
	}
	if len(regs[0].Results) == 0 {
		t.Fatal("no results from flaky ingest")
	}

	// A transport that never comes back surfaces a bounded failure.
	dead := &engine.RetryReader{
		MaxRetries: 3,
		Sleep:      func(time.Duration) {},
		Open: func(int64) (io.Reader, error) {
			return nil, errors.New("connection refused")
		},
	}
	if _, err := dead.Read(make([]byte, 16)); err == nil {
		t.Fatal("dead transport read succeeded")
	} else if dead.Retries != 4 {
		t.Fatalf("dead transport retried %d times, want MaxRetries+1 = 4", dead.Retries)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
