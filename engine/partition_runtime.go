package engine

import (
	"errors"
	"fmt"
	"sync"

	"punctsafe/stream"
)

// The partitioned shard: when a query registers with Options.Partitions,
// its shard goroutine becomes a router over P partition workers, each
// owning one replica of the query's plan tree (exec.PartitionedTree).
// Tuple runs scatter across workers by the co-partitioning hash;
// punctuations broadcast to every worker. Each scatter/broadcast is a
// sequence-numbered barrier — the router gathers every reply before
// touching the replicas or issuing the next round — so replicas only ever
// have one driver, purge rounds stay aligned with the input order, and
// the merge below reassembles outputs in exact input-sequence order.
//
// The mailbox protocol, batching, error policies and checkpoint barriers
// are unchanged: the router is the same shard goroutine, and control
// messages (stats, checkpoint) run between barriers while the workers are
// idle.

// partJob is one scatter or broadcast hand-off to a partition worker.
type partJob struct {
	seq   uint64
	input int
	elems []stream.Element
}

// partResult is a worker's reply: its replica's outputs for the job with
// per-element boundaries, recoverable offenders (under Drop/Quarantine),
// or a fatal error with the local element index it struck at.
type partResult struct {
	seq     uint64
	part    int
	outs    []stream.Element
	ends    []int // ends[i] = len(outs) after local element i (offenders included, contributing nothing)
	offIdx  []int // local indexes of recoverable offenders, ascending
	offErr  []error
	fatal   error
	fatalAt int // local index processing stopped at when fatal != nil
}

func (r *partResult) reset(part int, seq uint64) {
	clearElements(r.outs)
	r.part, r.seq = part, seq
	r.outs, r.ends = r.outs[:0], r.ends[:0]
	r.offIdx, r.offErr = r.offIdx[:0], r.offErr[:0]
	r.fatal, r.fatalAt = nil, 0
}

// partRunner is the worker pool of one partitioned shard. All fields are
// owned by the shard goroutine except the channels; worker replies
// synchronize replica memory back to the router (channel happens-before).
type partRunner struct {
	s    *shard
	p    int
	jobs []chan partJob
	res  chan *partResult
	wg   sync.WaitGroup
	seq  uint64

	// Router scratch, reused across runs.
	slots   []*partResult      // gather slots, indexed by partition
	chunks  [][]stream.Element // per-partition scatter buffers
	script  []int32            // per-element partition id of the current tuple run
	lastEnd []int              // per-partition output cursor during merge
	cursor  []int              // per-partition local element cursor during merge
	offCur  []int              // per-partition offender cursor during merge
	merged  []stream.Element
	bcast   [1]stream.Element
}

func newPartRunner(s *shard) *partRunner {
	p := s.reg.Part.Partitions()
	pr := &partRunner{
		s:       s,
		p:       p,
		jobs:    make([]chan partJob, p),
		res:     make(chan *partResult, p),
		slots:   make([]*partResult, p),
		chunks:  make([][]stream.Element, p),
		lastEnd: make([]int, p),
		cursor:  make([]int, p),
		offCur:  make([]int, p),
	}
	pr.wg.Add(p)
	for i := 0; i < p; i++ {
		pr.jobs[i] = make(chan partJob)
		go pr.worker(i, pr.jobs[i])
	}
	return pr
}

// stop releases the workers; the router guarantees no job is in flight
// (every scatter/broadcast gathers before returning).
func (pr *partRunner) stop() {
	for _, ch := range pr.jobs {
		close(ch)
	}
	pr.wg.Wait()
}

// worker owns replica `part`: it processes one job at a time and replies
// on the shared gather channel. Its result buffers are reused across jobs;
// the barrier protocol guarantees the router is done with them before the
// next job arrives.
func (pr *partRunner) worker(part int, jobs <-chan partJob) {
	defer pr.wg.Done()
	res := &partResult{}
	for job := range jobs {
		res.reset(part, job.seq)
		pr.process(part, job, res)
		pr.res <- res
	}
}

// process pushes a job's elements through the worker's replica, applying
// the element-level error policy locally: recoverable offenders are
// recorded and skipped (the router dead-letters them in global input
// order), anything else stops the job at fatalAt.
func (pr *partRunner) process(part int, job partJob, res *partResult) {
	elems := job.elems
	base := 0
	for base < len(elems) {
		n, err := pr.pushContained(part, job.input, res, elems[base:])
		if err == nil {
			return
		}
		at := base + n
		if pr.s.rt.policy != Fail && recoverableError(err) {
			res.offIdx = append(res.offIdx, at)
			res.offErr = append(res.offErr, err)
			res.ends = append(res.ends, len(res.outs)) // offenders emit nothing
			base = at + 1
			continue
		}
		res.fatal, res.fatalAt = err, at
		return
	}
}

// pushContained drives the replica with panic containment (one recover
// frame per job segment, as the sequential path does per batch). On panic
// the result's buffers are rewound to the segment start: a panic fails
// the whole shard, so partial outputs are irrelevant, but the boundaries
// must stay consistent for the merge walk.
func (pr *partRunner) pushContained(part, input int, res *partResult, elems []stream.Element) (n int, err error) {
	outsMark, endsMark := len(res.outs), len(res.ends)
	defer func() {
		if r := recover(); r != nil {
			res.outs, res.ends = res.outs[:outsMark], res.ends[:endsMark]
			n, err = 0, newPanicError(r)
		}
	}()
	var processed int
	res.outs, res.ends, processed, err = pr.s.reg.Part.PushPartitionEnds(part, input, res.outs, res.ends, elems)
	return processed, err
}

// flushRun is the partitioned flushBatch: it walks the shard's
// accumulated same-input run, scattering contiguous tuple stretches and
// broadcasting each punctuation as its own barrier, preserving the run's
// element order end to end.
func (pr *partRunner) flushRun() {
	s := pr.s
	elems := s.batch
	i := 0
	for i < len(elems) && !s.failed {
		if elems[i].IsPunct() {
			pr.broadcast(s.batchInput, s.batchStream, elems[i])
			i++
			continue
		}
		j := i
		for j < len(elems) && !elems[j].IsPunct() {
			j++
		}
		pr.scatter(s.batchInput, s.batchStream, elems[i:j])
		i = j
	}
	clearElements(s.batch)
	s.batch = s.batch[:0]
}

// scatter routes one tuple run across the workers, gathers every reply,
// and merges the outputs back into input-sequence order.
func (pr *partRunner) scatter(input int, streamName string, elems []stream.Element) {
	part0 := pr.s.reg.Part
	pr.script = pr.script[:0]
	for p := 0; p < pr.p; p++ {
		pr.chunks[p] = pr.chunks[p][:0]
	}
	for _, e := range elems {
		p := part0.PartitionOf(input, e.Tuple())
		pr.script = append(pr.script, int32(p))
		pr.chunks[p] = append(pr.chunks[p], e)
	}
	pr.seq++
	sent := 0
	for p := 0; p < pr.p; p++ {
		pr.slots[p] = nil
		if len(pr.chunks[p]) > 0 {
			pr.jobs[p] <- partJob{seq: pr.seq, input: input, elems: pr.chunks[p]}
			sent++
		}
	}
	if !pr.gather(sent) {
		return
	}
	pr.merge(streamName, elems)
	for p := 0; p < pr.p; p++ {
		clearElements(pr.chunks[p])
		pr.chunks[p] = pr.chunks[p][:0]
	}
}

// broadcast sends one punctuation to every worker behind one barrier and
// merges the replies in partition order through the alignment gate.
func (pr *partRunner) broadcast(input int, streamName string, e stream.Element) {
	pr.seq++
	pr.bcast[0] = e
	for p := 0; p < pr.p; p++ {
		pr.slots[p] = nil
		pr.jobs[p] <- partJob{seq: pr.seq, input: input, elems: pr.bcast[:]}
	}
	if !pr.gather(pr.p) {
		return
	}
	s := pr.s
	for p := 0; p < pr.p; p++ {
		if f := pr.slots[p].fatal; f != nil {
			s.failShard(f)
			return
		}
	}
	// Validation is deterministic, so either every replica rejected the
	// punctuation or none did; a split verdict means replica state has
	// diverged, which is a runtime bug worth failing loudly on.
	offenders := 0
	for p := 0; p < pr.p; p++ {
		offenders += len(pr.slots[p].offIdx)
	}
	if offenders > 0 {
		if offenders != pr.p {
			s.failShard(fmt.Errorf("internal: punctuation rejected by %d of %d partitions", offenders, pr.p))
			return
		}
		s.rt.dlq.add(DeadLetter{
			Stream: streamName,
			Query:  s.reg.Name,
			Elem:   e,
			Err:    pr.slots[0].offErr[0],
		})
		return
	}
	merged := pr.merged[:0]
	for p := 0; p < pr.p; p++ {
		merged = gateMerge(s.reg, p, pr.slots[p].outs, merged)
	}
	pr.merged = merged
	s.reg.deliver(merged)
	clearElements(pr.merged)
	pr.merged = pr.merged[:0]
}

// gateMerge folds one replica's outputs through the tree's alignment
// gate into dst.
func gateMerge(reg *Registered, part int, outs, dst []stream.Element) []stream.Element {
	return reg.Part.MergeOutputs(dst, part, outs)
}

// gather collects `sent` worker replies for the current barrier. It
// returns false (failing the shard) on a sequence mismatch, which would
// mean a stale reply from a previous barrier — an alignment bug, never
// expected in practice.
func (pr *partRunner) gather(sent int) bool {
	for i := 0; i < sent; i++ {
		r := <-pr.res
		if r.seq != pr.seq {
			pr.s.failShard(fmt.Errorf("internal: partition %d replied for barrier %d during barrier %d", r.part, r.seq, pr.seq))
			return false
		}
		pr.slots[r.part] = r
	}
	return true
}

// merge reassembles a gathered scatter into input-sequence order: element
// g's outputs are the next chunk of its partition's reply. Recoverable
// offenders dead-letter at their global position; the globally first
// fatal error truncates delivery there and fails the shard (a panic
// anywhere discards the whole run, matching the sequential path where a
// panicking batch delivers nothing).
func (pr *partRunner) merge(streamName string, elems []stream.Element) {
	s := pr.s
	for p := 0; p < pr.p; p++ {
		if r := pr.slots[p]; r != nil && r.fatal != nil {
			var pe *PanicError
			if errors.As(r.fatal, &pe) {
				s.failShard(r.fatal)
				return
			}
		}
	}
	for p := 0; p < pr.p; p++ {
		pr.lastEnd[p], pr.cursor[p], pr.offCur[p] = 0, 0, 0
	}
	merged := pr.merged[:0]
	var fatal error
	for g := range elems {
		p := int(pr.script[g])
		r := pr.slots[p]
		li := pr.cursor[p]
		pr.cursor[p]++
		if r.fatal != nil && li >= r.fatalAt {
			fatal = r.fatal
			break
		}
		if oc := pr.offCur[p]; oc < len(r.offIdx) && r.offIdx[oc] == li {
			pr.offCur[p]++
			pr.lastEnd[p] = r.ends[li]
			s.rt.dlq.add(DeadLetter{
				Stream: streamName,
				Query:  s.reg.Name,
				Elem:   elems[g],
				Err:    r.offErr[oc],
			})
			continue
		}
		end := r.ends[li]
		merged = gateMerge(s.reg, p, r.outs[pr.lastEnd[p]:end], merged)
		pr.lastEnd[p] = end
	}
	pr.merged = merged
	s.reg.deliver(merged)
	clearElements(pr.merged)
	pr.merged = pr.merged[:0]
	if fatal != nil {
		s.failShard(fatal)
	}
}

// failShard marks the shard failed and records the runtime's first error,
// mirroring the sequential flushBatch failure path.
func (s *shard) failShard(err error) {
	s.failed = true
	s.rt.fail(fmt.Errorf("engine: query %q: %w", s.reg.Name, err))
}
