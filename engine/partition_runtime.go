package engine

import (
	"errors"
	"fmt"
	"sync"

	"punctsafe/exec"
	"punctsafe/stream"
)

// The parallel partitioned front-end: when a query registers with
// Options.Partitions, its ingestion no longer funnels through a serial
// router goroutine. Instead every producer (Send, SendBatch, IngestWire)
// computes the co-partition hash itself and scatters its run directly
// into per-partition mailboxes, so tuples flow producer → partition
// worker with no element ever crossing a global serial stage.
//
// Three goroutine roles per partitioned shard:
//
//   - producers (any goroutine calling Send/SendBatch): hash each tuple
//     to its owner with exec.PartitionedTree.PartitionOf (pure, safe
//     concurrently), build one chunk per partition for the run, and —
//     under a short ingress lock — enqueue the chunks followed by a
//     routing script describing the run's global element order. The
//     ingress lock is the only serial point and it covers channel sends
//     only, never join work.
//
//   - P partition workers: each owns one replica tree and drains its own
//     mailbox, pushing chunks through exec's batched path with the same
//     per-element error policy as the sequential shard (recoverable
//     offenders recorded and skipped, panics contained, fatals latched).
//     Tuples of different partitions are processed genuinely in parallel;
//     nothing gathers between punctuations.
//
//   - one merger (the shard's goroutine): replays the routing scripts in
//     ingress order, consuming each worker's result records and folding
//     outputs through the MergeOutputs alignment gate, so delivery
//     order, dead-letter order and error positions are exactly those of
//     the single-tree run even though the workers ran free.
//
// Punctuations are epoch seals rather than barriers: a producer appends
// the punctuation to every partition's chunk in position (sealing the
// epoch in each mailbox) and the workers keep flowing — no
// scatter/gather round trip. Alignment happens only at the merge stage:
// the merger consumes the seal from all P record streams before
// releasing the gate-merged output punctuation, which is the paper's
// safety argument applied per replica (each replica saw the full
// punctuation stream, so its purges are the single tree's purges
// restricted to the keys it owns).
//
// Control requests (Stats, Checkpoint) reuse the same ordering: a
// control chunk is enqueued to every partition mailbox plus the script
// under the ingress lock, each worker acks it in FIFO position and
// parks, and the merger — having by then delivered everything enqueued
// before the request — snapshots the quiescent replicas and releases
// the workers. That preserves the mailbox-FIFO checkpoint barrier
// contract: a checkpoint reflects exactly the elements sent before it.

// opPunct marks a broadcast punctuation in a routing script. Any smaller
// value is the owning partition of a tuple (exec caps partitions at 64,
// far below the sentinel).
const opPunct = 0xFF

// partChunk is one producer hand-off to a partition worker: that
// partition's slice of a run (its owned tuples plus every punctuation,
// in run order), or a control barrier.
type partChunk struct {
	input int
	elems []stream.Element
	ctrl  *partCtrl
}

// scriptBatch describes one run's global element order to the merger:
// ops[i] says which partition's record stream element i's outputs come
// from (or opPunct for a seal consumed from all P). elems carries the
// original elements for dead-letter reporting.
type scriptBatch struct {
	input  int
	stream string
	elems  []stream.Element
	ops    []byte
	ctrl   *partCtrl
}

// partCtrl is a control barrier travelling through every partition
// mailbox and the script: a stats snapshot request, a checkpoint
// request, a live repartition, a subscription change, or both sides of
// the quiesce handshake.
type partCtrl struct {
	stats   chan<- []*exec.Stats
	ckpt    chan<- shardCkpt
	split   *splitReq
	attach  *Registered   // new subscriber from this barrier on
	detach  string        // departing subscriber name
	release chan struct{} // closed by the merger once the snapshot is taken
}

// splitReq asks the merge stage to split a hot replica while every
// worker is parked at the barrier: the one moment the replica set is
// provably quiescent, which is what exec.PartitionedTree.Split
// requires. The reply carries the split's outcome (nil, or the reason
// the replica could not be split).
type splitReq struct {
	hot   int
	reply chan error // buffered; the merger never blocks answering
}

// partRecord is one worker reply covering one chunk: the replica's
// outputs with per-element boundaries, recoverable offenders, or a
// fatal error with the local element index it struck at. Records are
// recycled through the free lists once the merger has consumed them.
type partRecord struct {
	n       int // element count of the chunk this record covers
	outs    []stream.Element
	ends    []int // ends[i] = len(outs) after local element i
	offIdx  []int // local indexes of recoverable offenders, ascending
	offErr  []error
	fatal   error
	fatalAt int  // local index processing stopped at when fatal != nil
	skipped bool // worker latched an earlier fatal and did not process
	ctrl    *partCtrl
}

func (r *partRecord) reset() {
	clearElements(r.outs)
	r.n = 0
	r.outs, r.ends = r.outs[:0], r.ends[:0]
	r.offIdx, r.offErr = r.offIdx[:0], r.offErr[:0]
	r.fatal, r.fatalAt = nil, 0
	r.skipped, r.ctrl = false, nil
}

// Channel capacities: enough slack that producers, workers and merger
// pipeline instead of lock-stepping, small enough that backpressure
// still propagates to Send quickly.
const (
	partInBuffer     = 8
	partOutBuffer    = 4
	partScriptBuffer = 16
)

// partFront is one partitioned shard's parallel ingestion front.
type partFront struct {
	s      *shard
	p      int
	in     []chan partChunk   // per-partition worker mailboxes
	out    []chan *partRecord // per-partition result streams (worker → merger, SPSC)
	free   []chan *partRecord // record recycling (merger → worker)
	script chan scriptBatch   // run scripts in ingress order (producers → merger)

	// mu is the ingress lock: it makes "chunks for a run, then its
	// script" atomic across producers, so the script order equals each
	// partition's mailbox order. It guards channel sends only.
	mu sync.Mutex
	wg sync.WaitGroup // partition workers
}

func newPartFront(s *shard) *partFront {
	p := s.reg.Part.Partitions()
	pf := &partFront{
		s:      s,
		p:      p,
		in:     make([]chan partChunk, p),
		out:    make([]chan *partRecord, p),
		free:   make([]chan *partRecord, p),
		script: make(chan scriptBatch, partScriptBuffer),
	}
	pf.wg.Add(p)
	for i := 0; i < p; i++ {
		pf.in[i] = make(chan partChunk, partInBuffer)
		pf.out[i] = make(chan *partRecord, partOutBuffer)
		pf.free[i] = make(chan *partRecord, partOutBuffer)
		go pf.worker(i, pf.in[i], pf.out[i], pf.free[i])
	}
	return pf
}

// sendOne routes a single element (Send's path).
func (pf *partFront) sendOne(input int, streamName string, e stream.Element) {
	pf.sendRun(input, streamName, []stream.Element{e})
}

// sendRun routes one contiguous same-stream run: hash outside the lock,
// enqueue under it. The caller must not reuse elems afterwards (the
// merger keeps it until the run is delivered).
//
// Hashing runs against a snapshot of the routing spec taken before the
// lock. A live repartition (splitPartition) replaces the spec while
// holding the ingress lock, so a producer that hashed against the old
// owner table discovers the swap the moment it acquires the lock and
// simply rehashes — chunks routed by a stale table never enter a
// mailbox.
func (pf *partFront) sendRun(input int, streamName string, elems []stream.Element) {
	pt := pf.s.reg.Part
	ops := make([]byte, len(elems))
	for {
		spec := pt.RoutingSpec()
		chunks := make([][]stream.Element, spec.Parts)
		for i, e := range elems {
			if e.IsPunct() {
				// Epoch seal: every partition sees the punctuation in
				// position, preserving its order against the tuples that
				// partition owns.
				ops[i] = opPunct
				for p := range chunks {
					chunks[p] = append(chunks[p], e)
				}
				continue
			}
			d := pt.PartitionOfSpec(spec, input, e.Tuple())
			ops[i] = byte(d)
			chunks[d] = append(chunks[d], e)
		}
		pf.mu.Lock()
		if pt.RoutingSpec() != spec {
			// A repartition landed between hashing and the lock: rehash
			// against the published table.
			pf.mu.Unlock()
			continue
		}
		for p := range chunks {
			if len(chunks[p]) > 0 {
				pf.in[p] <- partChunk{input: input, elems: chunks[p]}
			}
		}
		pf.script <- scriptBatch{input: input, stream: streamName, elems: elems, ops: ops}
		pf.mu.Unlock()
		return
	}
}

// control enqueues a barrier to every partition mailbox and the script.
// The reply arrives on the partCtrl's channel once the merger has
// delivered everything enqueued before this call and quiesced the
// workers.
func (pf *partFront) control(c *partCtrl) {
	pf.mu.Lock()
	for p := 0; p < pf.p; p++ {
		pf.in[p] <- partChunk{ctrl: c}
	}
	pf.script <- scriptBatch{ctrl: c}
	pf.mu.Unlock()
}

// splitPartition performs a live repartition: it enqueues a split
// barrier and holds the ingress lock until the merge stage has executed
// the split and published the new routing table. The hold is load-
// bearing, not just convenient: a run enqueued after the barrier but
// before the table swap would have been hashed against the old owner
// table, landing tuples on a replica that no longer owns their keys.
// With the lock held, every producer that raced the split re-validates
// its spec snapshot in sendRun and rehashes.
func (pf *partFront) splitPartition(hot int) error {
	c := &partCtrl{
		split:   &splitReq{hot: hot, reply: make(chan error, 1)},
		release: make(chan struct{}),
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	for p := 0; p < pf.p; p++ {
		pf.in[p] <- partChunk{ctrl: c}
	}
	pf.script <- scriptBatch{ctrl: c}
	select {
	case err := <-c.split.reply:
		return err
	case <-pf.s.rt.kill:
		return ErrKilled
	}
}

// close ends the input: the caller (Runtime.Close, under the write side
// of closeMu) guarantees no producer is in flight.
func (pf *partFront) close() {
	for _, ch := range pf.in {
		close(ch)
	}
	close(pf.script)
}

// worker owns replica part: it drains its own mailbox, processing chunks
// through the replica with the element-level error policy and emitting
// one record per chunk. After its replica's first fatal it stops
// processing (the state is no longer meaningful) but keeps the record
// stream aligned with skipped records. On kill it drains without effect
// so producers never block forever.
//
// The channels arrive as arguments rather than through pf.in[part]
// indexing: a live repartition appends to the channel slices from the
// merge stage, so a worker must never touch the slice headers after
// spawn.
func (pf *partFront) worker(part int, in chan partChunk, out, free chan *partRecord) {
	defer pf.wg.Done()
	fatal := false
	for {
		var ck partChunk
		var ok bool
		select {
		case ck, ok = <-in:
			if !ok {
				return
			}
		case <-pf.s.rt.kill:
			drainIn(in)
			return
		}
		rec := pf.record(free)
		if ck.ctrl != nil {
			// Ack in FIFO position — every record for earlier chunks is
			// already in the out stream — then park until the merger has
			// taken its snapshot.
			rec.ctrl = ck.ctrl
			if !pf.emit(out, rec) {
				drainIn(in)
				return
			}
			select {
			case <-ck.ctrl.release:
			case <-pf.s.rt.kill:
				drainIn(in)
				return
			}
			continue
		}
		rec.n = len(ck.elems)
		if fatal {
			rec.skipped = true
		} else {
			pf.process(part, ck, rec)
			if rec.fatal != nil {
				fatal = true
			}
		}
		if !pf.emit(out, rec) {
			drainIn(in)
			return
		}
	}
}

// drainIn is the post-kill worker loop: consume the mailbox without
// effect until Close closes it, so blocked producers unwind.
func drainIn(in chan partChunk) {
	for range in {
	}
}

// record pops a recycled record or allocates a fresh one.
func (pf *partFront) record(free chan *partRecord) *partRecord {
	select {
	case r := <-free:
		r.reset()
		return r
	default:
		return &partRecord{}
	}
}

// emit hands a record to the merger, aborting on kill.
func (pf *partFront) emit(out chan *partRecord, rec *partRecord) bool {
	select {
	case out <- rec:
		return true
	case <-pf.s.rt.kill:
		return false
	}
}

// process pushes a chunk through the worker's replica, applying the
// element-level error policy locally: recoverable offenders are recorded
// and skipped (the merger dead-letters them in global input order),
// anything else stops the chunk at fatalAt.
func (pf *partFront) process(part int, ck partChunk, rec *partRecord) {
	elems := ck.elems
	base := 0
	for base < len(elems) {
		n, err := pf.pushContained(part, ck.input, rec, elems[base:])
		if err == nil {
			return
		}
		at := base + n
		if pf.s.rt.policy != Fail && recoverableError(err) {
			rec.offIdx = append(rec.offIdx, at)
			rec.offErr = append(rec.offErr, err)
			rec.ends = append(rec.ends, len(rec.outs)) // offenders emit nothing
			base = at + 1
			continue
		}
		rec.fatal, rec.fatalAt = err, at
		return
	}
}

// pushContained drives the replica with panic containment (one recover
// frame per chunk segment, as the sequential path does per batch). On
// panic the record's buffers are rewound to the segment start: a panic
// fails the whole shard, so partial outputs are irrelevant, but the
// boundaries must stay consistent for the merger's walk.
func (pf *partFront) pushContained(part, input int, rec *partRecord, elems []stream.Element) (n int, err error) {
	outsMark, endsMark := len(rec.outs), len(rec.ends)
	defer func() {
		if r := recover(); r != nil {
			rec.outs, rec.ends = rec.outs[:outsMark], rec.ends[:endsMark]
			n, err = 0, newPanicError(r)
		}
	}()
	var processed int
	rec.outs, rec.ends, processed, err = pf.s.reg.Part.PushPartitionEnds(part, input, rec.outs, rec.ends, elems)
	return processed, err
}

// partMerger is the merge stage's state: the current record per
// partition with its consumption cursors.
type partMerger struct {
	s  *shard
	pf *partFront

	rec     []*partRecord
	cursor  []int // local element index within rec[p]
	lastEnd []int // output cursor within rec[p].outs
	offCur  []int // offender cursor within rec[p].offIdx
	merged  []stream.Element
}

func newPartMerger(s *shard) *partMerger {
	p := s.pf.p
	return &partMerger{
		s:       s,
		pf:      s.pf,
		rec:     make([]*partRecord, p),
		cursor:  make([]int, p),
		lastEnd: make([]int, p),
		offCur:  make([]int, p),
	}
}

// runPartitioned is the partitioned shard's goroutine: the merge stage.
// It replays routing scripts in ingress order, so delivery is
// deterministic regardless of how the workers interleaved.
func (s *shard) runPartitioned() {
	defer close(s.done)
	m := newPartMerger(s)
	for {
		var sb scriptBatch
		var ok bool
		select {
		case sb, ok = <-s.pf.script:
			if !ok {
				// End of input: the workers exit once their mailboxes
				// close; waiting on them synchronizes replica memory
				// before the final flush reads it.
				s.pf.wg.Wait()
				s.finish()
				return
			}
		case <-s.rt.kill:
			s.killDrain()
			return
		}
		if !m.consume(sb) {
			s.killDrain()
			return
		}
	}
}

// killDrain is the merger's post-kill loop, the crash model's analogue
// of shard.discard: scripts drain without effect, control waiters are
// answered so they unwind, and the workers are joined before done
// closes so Wait leaves no goroutine touching the replicas.
func (s *shard) killDrain() {
	s.materializePassive()
	for sb := range s.pf.script {
		if sb.ctrl != nil {
			answerCtrlKilled(s, sb.ctrl)
		}
	}
	s.pf.wg.Wait()
}

func answerCtrlKilled(s *shard, c *partCtrl) {
	if c.stats != nil {
		c.stats <- nil
	}
	if c.ckpt != nil {
		c.ckpt <- shardCkpt{idx: s.idx, err: ErrKilled}
	}
	if c.split != nil {
		c.split.reply <- ErrKilled
	}
}

// current returns partition p's record under consumption, fetching the
// next one (and resetting the cursors) when the previous was exhausted.
// Returns false only on kill.
func (m *partMerger) current(p int) (*partRecord, bool) {
	if r := m.rec[p]; r != nil {
		return r, true
	}
	select {
	case r := <-m.pf.out[p]:
		m.rec[p] = r
		m.cursor[p], m.lastEnd[p], m.offCur[p] = 0, 0, 0
		return r, true
	case <-m.s.rt.kill:
		return nil, false
	}
}

// bump advances partition p past one consumed element, recycling the
// record once exhausted. Callers must be done reading the record's
// outs: a recycled record's buffers belong to the worker again.
func (m *partMerger) bump(p int) {
	m.cursor[p]++
	if m.cursor[p] >= m.rec[p].n {
		m.release(p)
	}
}

func (m *partMerger) release(p int) {
	r := m.rec[p]
	m.rec[p] = nil
	select {
	case m.pf.free[p] <- r:
	default: // free list full; let the GC have it
	}
}

// consume replays one script batch: tuple ops take the next element's
// outputs from the owning partition's record stream, seals take one from
// every stream and release through the alignment gate, control ops
// quiesce and snapshot. Outputs accumulate and deliver once per batch.
// Returns false only on kill.
func (m *partMerger) consume(sb scriptBatch) bool {
	if sb.ctrl != nil {
		return m.consumeCtrl(sb.ctrl)
	}
	s := m.s
	merged := m.merged[:0]
	for g, op := range sb.ops {
		if s.failed {
			// Keep the record streams aligned but deliver nothing; the
			// sequential path likewise drains without processing after
			// its first error.
			if !m.discardOp(op) {
				return false
			}
			continue
		}
		if op == opPunct {
			fatal, ok := m.consumeSeal(sb, g, &merged)
			if !ok {
				return false
			}
			if fatal != nil {
				m.fail(fatal, &merged)
			}
			continue
		}
		p := int(op)
		rec, ok := m.current(p)
		if !ok {
			return false
		}
		li := m.cursor[p]
		if rec.fatal != nil && li >= rec.fatalAt {
			m.fail(rec.fatal, &merged)
			m.bump(p)
			continue
		}
		if oc := m.offCur[p]; oc < len(rec.offIdx) && rec.offIdx[oc] == li {
			m.offCur[p]++
			m.lastEnd[p] = rec.ends[li]
			s.deadLetter(sb.stream, sb.elems[g], rec.offErr[oc])
			m.bump(p)
			continue
		}
		end := rec.ends[li]
		merged = s.reg.Part.MergeOutputs(merged, p, rec.outs[m.lastEnd[p]:end])
		m.lastEnd[p] = end
		m.bump(p)
	}
	m.merged = merged
	s.deliver(merged)
	clearElements(m.merged)
	m.merged = m.merged[:0]
	return true
}

// fail delivers the outputs merged before the fatal element and fails
// the shard there, truncating delivery exactly where the single tree
// would stop. A panic discards the undelivered prefix instead (the
// sequential path delivers nothing from a panicking batch).
func (m *partMerger) fail(fatal error, merged *[]stream.Element) {
	var pe *PanicError
	if !errors.As(fatal, &pe) {
		m.s.deliver(*merged)
	}
	clearElements(*merged)
	*merged = (*merged)[:0]
	m.s.failShard(fatal)
}

// consumeSeal consumes one broadcast punctuation: one element from every
// partition's record stream, in partition order, then the verdict.
// Validation is deterministic, so either every replica rejected the
// punctuation or none did; a split verdict means replica state has
// diverged, which is a runtime bug worth failing loudly on. The records
// are only advanced after the gate merge so no worker can recycle a
// buffer still being read.
func (m *partMerger) consumeSeal(sb scriptBatch, g int, merged *[]stream.Element) (error, bool) {
	s := m.s
	var fatal error
	offenders := 0
	var offErr error
	for p := 0; p < m.pf.p; p++ {
		rec, ok := m.current(p)
		if !ok {
			return nil, false
		}
		li := m.cursor[p]
		if rec.fatal != nil && li >= rec.fatalAt {
			if fatal == nil {
				fatal = rec.fatal
			}
			continue
		}
		if oc := m.offCur[p]; oc < len(rec.offIdx) && rec.offIdx[oc] == li {
			offenders++
			if offErr == nil {
				offErr = rec.offErr[oc]
			}
		}
	}
	if fatal == nil {
		switch {
		case offenders == 0:
			for p := 0; p < m.pf.p; p++ {
				rec := m.rec[p]
				li := m.cursor[p]
				end := rec.ends[li]
				*merged = s.reg.Part.MergeOutputs(*merged, p, rec.outs[m.lastEnd[p]:end])
				m.lastEnd[p] = end
			}
		case offenders == m.pf.p:
			// Unanimous rejection: the punctuation itself is the
			// offender. Dead-letter it once per subscriber, in script
			// position.
			s.deadLetter(sb.stream, sb.elems[g], offErr)
		default:
			fatal = fmt.Errorf("internal: punctuation rejected by %d of %d partitions", offenders, m.pf.p)
		}
	}
	for p := 0; p < m.pf.p; p++ {
		rec := m.rec[p]
		li := m.cursor[p]
		if rec.fatal == nil || li < rec.fatalAt {
			if oc := m.offCur[p]; oc < len(rec.offIdx) && rec.offIdx[oc] == li {
				m.offCur[p]++
				m.lastEnd[p] = rec.ends[li]
			}
		}
		m.bump(p)
	}
	return fatal, true
}

// discardOp keeps the per-partition cursors aligned with the script
// after the shard has failed, consuming without delivering.
func (m *partMerger) discardOp(op byte) bool {
	if op == opPunct {
		for p := 0; p < m.pf.p; p++ {
			if !m.discardOne(p) {
				return false
			}
		}
		return true
	}
	return m.discardOne(int(op))
}

func (m *partMerger) discardOne(p int) bool {
	if _, ok := m.current(p); !ok {
		return false
	}
	m.bump(p)
	return true
}

// consumeCtrl is the merge-stage half of a control barrier: consume the
// ack record from every partition — by mailbox FIFO all earlier records
// are consumed and delivered, and every worker is parked on release, so
// the replicas and the gate are quiescent — snapshot, reply, release.
// Stats are answered even on a failed shard (matching the sequential
// path); checkpointReply itself refuses failed state.
func (m *partMerger) consumeCtrl(c *partCtrl) bool {
	s := m.s
	for p := 0; p < m.pf.p; p++ {
		rec, ok := m.current(p)
		if !ok {
			// Killed mid-barrier: answer like the kill drain so the
			// waiter unwinds; parked workers unpark via the kill signal.
			answerCtrlKilled(s, c)
			return false
		}
		if rec.ctrl != c {
			s.failShard(fmt.Errorf("internal: partition %d out of sync at control barrier", p))
		}
		m.release(p)
	}
	if c.stats != nil {
		s.materializePassive()
		c.stats <- s.reg.StatsSnapshot()
	}
	if c.ckpt != nil {
		c.ckpt <- s.checkpointReply()
	}
	if c.split != nil {
		c.split.reply <- m.doSplit(c.split.hot)
	}
	if c.attach != nil {
		// The barrier is the subscription cut: everything enqueued before
		// it has been delivered to the old subscriber set.
		s.attachSub(c.attach)
	}
	if c.detach != "" {
		s.dropSub(c.detach)
	}
	close(c.release)
	return true
}

// doSplit executes a live repartition at the quiescent point of a
// control barrier: every worker is parked on release, every record
// enqueued before the barrier is consumed, so the replica set is
// exactly as still as it is for a checkpoint. exec does the state
// surgery (clone hot, filter both halves by the new owner table,
// publish the table); the front then grows by one worker lane and the
// merger by one cursor set. The new worker only ever sees chunks
// enqueued after the barrier — splitPartition holds the ingress lock
// until this returns, and every later producer hashes against the new
// table.
func (m *partMerger) doSplit(hot int) error {
	s := m.s
	if s.failed {
		return fmt.Errorf("engine: query %q has failed; cannot repartition", s.reg.Name)
	}
	_, unblocked, err := s.reg.Part.Split(hot)
	if err != nil {
		return err
	}
	pf := m.pf
	part := pf.p
	in := make(chan partChunk, partInBuffer)
	out := make(chan *partRecord, partOutBuffer)
	free := make(chan *partRecord, partOutBuffer)
	pf.in = append(pf.in, in)
	pf.out = append(pf.out, out)
	pf.free = append(pf.free, free)
	pf.p++
	pf.wg.Add(1)
	go pf.worker(part, in, out, free)
	m.rec = append(m.rec, nil)
	m.cursor = append(m.cursor, 0)
	m.lastEnd = append(m.lastEnd, 0)
	m.offCur = append(m.offCur, 0)
	// Punctuations the state filter unblocked deliver at the barrier —
	// everything enqueued before the split is already out, so this is
	// their exact stream position.
	if len(unblocked) > 0 {
		s.deliver(unblocked)
	}
	return nil
}

// failShard marks the shard failed and records the runtime's first
// error, mirroring the sequential flushBatch failure path.
func (s *shard) failShard(err error) {
	s.failed = true
	s.rt.fail(fmt.Errorf("engine: query %q: %w", s.reg.Name, err))
}
