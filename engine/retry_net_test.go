package engine_test

// RetryReader over a real socket: until now the reconnect-at-offset
// contract was only exercised against in-memory fakes. Here a plain TCP
// offset server serves a byte blob from any requested offset, and the
// client dials it through the seeded chaos wrapper — partial reads,
// latency spikes, and injected resets every few KB. The reader must
// deliver the exact blob, byte for byte, across however many reconnects
// the chaos schedule forces.

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"punctsafe/engine"
	"punctsafe/internal/faultinject"
)

// offsetServer serves blob[offset:] to every connection: the client
// sends a uvarint offset, the server streams the rest and closes (a
// clean EOF at the true end of the data).
func offsetServer(t *testing.T, blob []byte) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				var hdr [binary.MaxVarintLen64]byte
				n := 0
				for {
					if _, err := io.ReadFull(c, hdr[n:n+1]); err != nil {
						return
					}
					if off, read := binary.Uvarint(hdr[:n+1]); read > 0 {
						if off <= uint64(len(blob)) {
							c.Write(blob[off:])
						}
						return
					}
					if n++; n >= len(hdr) {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String(), func() { l.Close(); wg.Wait() }
}

func TestRetryReaderOverChaosSocket(t *testing.T) {
	blob := make([]byte, 64*1024)
	rand.New(rand.NewSource(42)).Read(blob)
	addr, stop := offsetServer(t, blob)
	defer stop()

	dial := faultinject.ChaosDialer(
		func() (net.Conn, error) { return net.Dial("tcp", addr) },
		faultinject.ChaosConfig{
			Seed:         1311,
			PartialReads: true,
			MaxDelay:     20 * time.Microsecond,
			CutAfter:     8 * 1024,
			CutJitter:    4 * 1024,
		})

	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	rr := &engine.RetryReader{
		Open: func(offset int64) (io.Reader, error) {
			c, err := dial()
			if err != nil {
				return nil, err
			}
			conns = append(conns, c)
			if _, err := c.Write(binary.AppendUvarint(nil, uint64(offset))); err != nil {
				c.Close()
				return nil, err
			}
			return c, nil
		},
		MaxRetries: 50,
		Backoff:    time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
	}

	got, err := io.ReadAll(rr)
	if err != nil {
		t.Fatalf("read through chaos: %v (retries %d)", err, rr.Retries)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("chaos transport corrupted the stream: got %d bytes, want %d (retries %d)",
			len(got), len(blob), rr.Retries)
	}
	if rr.Retries == 0 {
		t.Fatal("chaos schedule injected no resets: the test exercised nothing")
	}
	if rr.Offset() != int64(len(blob)) {
		t.Fatalf("final offset %d, want %d", rr.Offset(), len(blob))
	}
}

// TestChaosConnDeterminism pins the injector contract: the same seed
// over the same traffic produces the same fault schedule.
func TestChaosConnDeterminism(t *testing.T) {
	blob := make([]byte, 8*1024)
	rand.New(rand.NewSource(7)).Read(blob)
	run := func() (int, error) {
		a, b := net.Pipe()
		defer a.Close()
		go func() {
			b.Write(blob)
			b.Close()
		}()
		cc := faultinject.NewChaosConn(a, faultinject.ChaosConfig{
			Seed: 99, PartialReads: true, CutAfter: 2048, CutJitter: 512,
		})
		n, err := io.Copy(io.Discard, cc)
		return int(n), err
	}
	n1, err1 := run()
	n2, err2 := run()
	if n1 != n2 {
		t.Fatalf("same seed, different cut points: %d vs %d", n1, n2)
	}
	if err1 == nil || err2 == nil {
		t.Fatalf("cut budget of 2048+512 over 8192 bytes did not trigger: %v, %v", err1, err2)
	}
}
