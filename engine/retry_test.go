package engine

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"punctsafe/internal/faultinject"
)

// TestRetryReaderBackoffCapAndJitter pins the backoff schedule: the base
// delay doubles per consecutive failure, stops doubling at MaxBackoff,
// and every slept delay is the capped base jittered into [d/2, 3d/2).
func TestRetryReaderBackoffCapAndJitter(t *testing.T) {
	var slept []time.Duration
	rr := &RetryReader{
		Open:       func(int64) (io.Reader, error) { return nil, errors.New("down") },
		MaxRetries: 6,
		Backoff:    100 * time.Millisecond,
		MaxBackoff: 400 * time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
		Rand:       func() float64 { return 0.5 },
	}
	if _, err := rr.Read(make([]byte, 8)); err == nil {
		t.Fatal("dead transport must surface an error")
	}
	// Rand = 0.5 makes the jittered delay exactly the capped base.
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times, want %d: %v", len(slept), len(want), slept)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, slept[i], want[i], slept)
		}
	}

	// Edge jitter values stay inside the documented band.
	for _, r := range []float64{0, 0.25, 0.999} {
		slept = slept[:0]
		rr := &RetryReader{
			Open:       func(int64) (io.Reader, error) { return nil, errors.New("down") },
			MaxRetries: 4,
			Backoff:    80 * time.Millisecond,
			MaxBackoff: 320 * time.Millisecond,
			Sleep:      func(d time.Duration) { slept = append(slept, d) },
			Rand:       func() float64 { return r },
		}
		rr.Read(make([]byte, 8))
		base := 80 * time.Millisecond
		for i, d := range slept {
			lo, hi := base/2, base+base/2
			if d < lo || d > hi {
				t.Fatalf("rand %v sleep %d = %v outside [%v, %v]", r, i, d, lo, hi)
			}
			if base < 320*time.Millisecond {
				base *= 2
			}
		}
	}
}

// TestRetryReaderContextCancel: a canceled Context stops the reconnect
// loop — both when cancellation lands mid-backoff and when Read is
// entered after the fact.
func TestRetryReaderContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	rr := &RetryReader{
		Open: func(int64) (io.Reader, error) {
			attempts++
			return nil, errors.New("down")
		},
		MaxRetries: 100,
		Context:    ctx,
		Sleep: func(time.Duration) {
			if attempts == 2 {
				cancel()
			}
		},
	}
	_, err := rr.Read(make([]byte, 8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if attempts != 2 {
		t.Fatalf("transport probed %d times after cancel, want 2", attempts)
	}

	// Already-canceled context: Read refuses before touching the transport.
	attempts = 0
	if _, err := rr.Read(make([]byte, 8)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if attempts != 0 {
		t.Fatalf("canceled reader still opened the transport %d times", attempts)
	}
}

// TestRetryReaderStartOffset: a reader given a resume offset opens the
// source there, counts delivered bytes from it, and reconnects at
// absolute offsets after transient drops.
func TestRetryReaderStartOffset(t *testing.T) {
	data := []byte("0123456789abcdefghij")
	var opened []int64
	rr := &RetryReader{
		Open: func(off int64) (io.Reader, error) {
			opened = append(opened, off)
			// A fresh connection that drops after 6 bytes.
			return faultinject.NewFlakyReader(data[off:], 6), nil
		},
		StartOffset: 5,
		Sleep:       func(time.Duration) {},
	}
	if got := rr.Offset(); got != 5 {
		t.Fatalf("Offset before first read = %d, want 5", got)
	}
	var all bytes.Buffer
	if _, err := io.Copy(&all, rr); err != nil {
		t.Fatal(err)
	}
	if want := string(data[5:]); all.String() != want {
		t.Fatalf("read %q, want %q", all.String(), want)
	}
	if got := rr.Offset(); got != int64(len(data)) {
		t.Fatalf("final Offset = %d, want %d", got, len(data))
	}
	if len(opened) < 2 {
		t.Fatalf("expected reconnects, got opens at %v", opened)
	}
	if opened[0] != 5 {
		t.Fatalf("first open at %d, want StartOffset 5", opened[0])
	}
	for i := 1; i < len(opened); i++ {
		if opened[i] <= opened[i-1] {
			t.Fatalf("reconnect offsets not advancing: %v", opened)
		}
	}
}
