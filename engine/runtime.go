package engine

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"punctsafe/exec"
	"punctsafe/stream"
)

// The sharded runtime is the concurrent query processor of Figure 2:
// every registered query becomes a shard — one goroutine owning that
// query's exec.Tree and a bounded mailbox feeding it — and the input
// manager becomes a router that fans each element out only to the shards
// subscribed to its stream. exec.MJoin stays single-threaded; concurrency
// lives entirely in this layer. Independent queries therefore process
// independent streams in parallel while each query still sees its input
// in router order.

// RuntimeOptions tunes the sharded runtime.
type RuntimeOptions struct {
	// Buffer is the per-shard mailbox capacity (the backpressure knob):
	// Send blocks once a subscribed shard's mailbox is full. <= 0 selects
	// the default of 64.
	Buffer int
	// FailFast makes Send return the runtime's first error as soon as any
	// shard has failed, so producers can stop feeding early. Without it
	// Send keeps routing (failed shards drain their mailboxes without
	// processing) and the error surfaces from Err and Wait.
	FailFast bool
	// OnError selects how shards treat recoverable element-level errors
	// (late tuples, malformed elements, panicking filters): Fail stops the
	// shard (the default), Drop discards and counts the offender,
	// Quarantine additionally retains it in the dead-letter queue.
	// Operator panics and state-limit trips always fail their shard.
	OnError ErrorPolicy
	// DeadLetterLimit bounds how many offenders Quarantine retains (<= 0
	// selects the default of 128); the newest offenders win. Counts are
	// never bounded.
	DeadLetterLimit int
	// IngestTap, when set, observes every committed wire-ingest batch in
	// commit order: the source name, the raw frame bytes just committed,
	// and the wire offset range [start, end) they occupy on that source.
	// While a tap is installed, wire-ingest commits are serialized across
	// sources, so the tap's call order IS the runtime's ingress order:
	// replaying the tapped records into a second runtime in call order
	// reproduces the exact interleaving, and therefore the exact output
	// and delivery sequence, of this one. The serving layer's
	// primary→standby replication feed rides this hook. Only the
	// IngestWireResume/IngestWireFrom path is tapped; direct Send calls
	// bypass it. The callback runs inside the commit critical section and
	// must not call back into the runtime.
	IngestTap func(source string, frames []byte, start, end int64)
}

const defaultShardBuffer = 64

// Runtime executes the registered queries of a DSMS concurrently, one
// shard per query. Register every query and scheme first, then call
// RunSharded; registering on the DSMS while the runtime runs is not
// supported. Feed elements with Send (any number of producer
// goroutines), then Close once all producers are done and Wait for the
// drain. While the runtime runs the DSMS must not be used directly.
type Runtime struct {
	d        *DSMS
	shards   []*shard
	byName   map[string]*shard
	route    map[string][]*shard
	buffer   int // per-shard mailbox capacity (Attach reuses it)
	failFast bool
	policy   ErrorPolicy
	dlq      *deadLetterQueue

	// tap is RuntimeOptions.IngestTap; tapMu serializes tapped wire-ingest
	// commits across sources so the tap observes a total ingress order.
	tap   func(source string, frames []byte, start, end int64)
	tapMu sync.Mutex

	// closeMu serializes Close against in-flight Send/Stats calls so a
	// mailbox is never closed mid-send. Producers share the read side;
	// Close takes the write side once. Checkpoint also takes the write
	// side: the quiescence barrier must not race new sends, and an offset
	// committed under the read side is therefore atomic with the send it
	// describes.
	closeMu sync.RWMutex
	closed  bool

	// srcMu guards sources, the per-ingest-source committed resume
	// offsets (see SendAt and Checkpoint).
	srcMu   sync.Mutex
	sources map[string]int64

	// kill, once closed, makes every worker stop processing and drain
	// its mailbox without effect — the crash model of the recovery tests.
	kill     chan struct{}
	killOnce sync.Once

	errMu    sync.Mutex
	firstErr error
	failed   chan struct{} // closed when firstErr is set
}

// shard is one share group's mailbox goroutine — one physical executor,
// any number of subscribed queries. Everything behind it — the
// exec.Tree, its operator stats, the member Registered result buffers —
// is confined to the worker goroutine while the runtime runs, which
// keeps the hot path free of locks.
type shard struct {
	// reg is the executor handle: the group's original driver, whose
	// Tree/Part every member aliases. It stays the shard's handle even if
	// that query later detaches (the physical state lives in the tree,
	// which survives until the last subscriber leaves).
	reg *Registered
	// group is the live membership view shared with the DSMS register.
	// It is mutated only under closeMu's write side (Attach/Detach) and
	// read by producers under the read side (dead-letter fan-out).
	group *shareGroup
	// subs is the worker-owned subscriber list outputs fan out to. It
	// tracks group.members through attach/detach mailbox messages, so the
	// cut between "old subscribers" and "new subscribers" falls exactly
	// on a mailbox FIFO boundary. active/passive split it by delivery
	// mode (rebuildSubs): active subscribers carry callbacks and get
	// per-element fan-out; passive ones are served from the shared
	// delivery log below, so the per-element cost of a shared tree is
	// O(active), not O(subscribers).
	subs    []*Registered
	active  []*Registered
	passive []*Registered
	// logTuples/logCount are the shared delivery log, maintained only
	// while passive subscribers exist: every result tuple once (appended
	// here instead of into N per-member Results buffers), and the count
	// of all output elements (tuples + punctuations) for delivery
	// sequence numbers. Passive members' Results are materialized as
	// zero-copy slices of this log at barrier points (materialize).
	logTuples []stream.Tuple
	logCount  uint64
	mb        chan shardMsg
	done      chan struct{}
	rt        *Runtime
	idx       int  // position in rt.shards (checkpoint reply routing)
	failed    bool // worker-goroutine-local
	// retired is set (under closeMu's write side) when the last
	// subscriber detaches and the tree is being drained; Close skips the
	// shard's already-closed mailbox.
	retired bool
	// batch accumulates the current contiguous same-input run of mailbox
	// elements; the worker pushes it through exec's batched path in one
	// call, amortizing per-element overhead. Worker-goroutine-local.
	batch       []stream.Element
	batchInput  int
	batchStream string
	// pf is the shard's parallel partition front-end, non-nil only when
	// the query runs partitioned (Registered.Part). A partitioned shard
	// has no mailbox: producers route into the front's per-partition
	// mailboxes themselves, and the shard goroutine runs the merge stage
	// (runPartitioned) instead of run.
	pf *partFront
}

// shardMsg is one mailbox entry: a routed stream element (or, from
// SendBatch, a run of elements of one stream), a control request
// answered by the worker itself — a stats snapshot (stats non-nil) or a
// checkpoint barrier (ckpt non-nil) — or a live subscription change
// (attach/detach) applied at this exact FIFO position.
type shardMsg struct {
	input  int
	stream string
	elem   stream.Element
	elems  []stream.Element // batch payload; owned by the shard once sent
	stats  chan<- []*exec.Stats
	ckpt   chan<- shardCkpt
	attach *Registered // new subscriber: outputs after this point fan to it
	detach string      // departing subscriber name: no outputs after this point
}

// shardCkpt is a worker's answer to a checkpoint barrier: its tree's
// serialized state and each subscriber's delivery count, taken after the
// in-flight batch was flushed.
type shardCkpt struct {
	idx   int
	state []byte
	subs  []subDelivered
	err   error
}

// subDelivered is one subscriber's delivery count at a checkpoint
// barrier.
type subDelivered struct {
	name      string
	delivered uint64
}

// maxShardBatch caps how many elements a worker accumulates before
// pushing, bounding both the batch buffer and output-delivery latency.
const maxShardBatch = 256

// RunSharded starts the sharded runtime over the currently registered
// queries.
func (d *DSMS) RunSharded(opts RuntimeOptions) *Runtime {
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = defaultShardBuffer
	}
	rt := &Runtime{
		d:        d,
		byName:   make(map[string]*shard, len(d.order)),
		route:    make(map[string][]*shard),
		buffer:   buffer,
		failed:   make(chan struct{}),
		kill:     make(chan struct{}),
		sources:  make(map[string]int64),
		failFast: opts.FailFast,
		policy:   opts.OnError,
		tap:      opts.IngestTap,
		dlq:      newDeadLetterQueue(opts.OnError == Quarantine, opts.DeadLetterLimit),
	}
	for _, name := range d.order {
		r := d.queries[name]
		if !r.isDriver() {
			// Share-group member: its driver's shard already (or will,
			// registration order puts drivers first) fans out to it.
			continue
		}
		rt.spawnShard(r)
	}
	return rt
}

// spawnShard starts the shard goroutine for one share group, wiring
// routing and the per-member name index. Called from RunSharded and,
// under closeMu's write side, from Attach.
func (rt *Runtime) spawnShard(r *Registered) *shard {
	s := &shard{
		reg:   r,
		group: r.group,
		subs:  append([]*Registered(nil), r.group.members...),
		done:  make(chan struct{}),
		rt:    rt,
		idx:   len(rt.shards),
	}
	rt.shards = append(rt.shards, s)
	for _, m := range s.subs {
		if m.passiveSub() {
			m.logBase, m.logStart, m.logStartCount = 0, 0, 0
			m.logPure = len(m.Results) == 0
		}
	}
	s.rebuildSubs()
	for _, m := range s.group.members {
		rt.byName[m.Name] = s
	}
	for streamName := range s.reg.streamInput {
		rt.route[streamName] = append(rt.route[streamName], s)
	}
	if s.reg.Part != nil {
		// Partitioned query: no mailbox. Producers scatter directly
		// into the front's per-partition mailboxes and the shard
		// goroutine becomes the merge stage.
		s.pf = newPartFront(s)
		go s.runPartitioned()
		if s.reg.pressure != nil && s.reg.maxSplits > 0 {
			go s.splitWatcher()
		}
		return s
	}
	s.mb = make(chan shardMsg, rt.buffer)
	go s.run()
	return s
}

// run is the shard worker: it drains the mailbox into the query's tree
// and, on clean shutdown, flushes the tree's pending lazy purge rounds so
// Wait leaves every shard fully purged. After the shard's first error it
// keeps draining without processing so producers never block forever.
//
// Faults are contained per element and per shard: recoverable element
// errors go to the dead-letter queue under Drop/Quarantine, and operator
// panics are recovered into shard-local errors, so one poisoned query
// never takes down its siblings or the process.
func (s *shard) run() {
	defer close(s.done)
	for {
		var msg shardMsg
		var ok bool
		select {
		case msg, ok = <-s.mb:
		case <-s.rt.kill:
			s.discard()
			return
		}
		if !ok {
			break
		}
		s.handle(msg)
		// Greedy drain: while producers have more queued, keep
		// accumulating the contiguous same-input run without blocking;
		// the run is pushed in one batched call the moment the mailbox
		// goes empty (so an idle stream never waits on a partial batch).
	drain:
		for {
			select {
			case next, ok := <-s.mb:
				if !ok {
					s.flushBatch()
					s.finish()
					return
				}
				s.handle(next)
			case <-s.rt.kill:
				s.discard()
				return
			default:
				break drain
			}
		}
		s.flushBatch()
	}
	s.flushBatch()
	s.finish()
}

// discard is the post-Kill worker loop: the crash model stops all
// processing dead (no batch flush, no lazy-purge finish), but the
// mailbox keeps draining without effect so producers blocked on a full
// mailbox and control-message waiters all unwind. It returns when the
// mailbox closes.
func (s *shard) discard() {
	s.materializePassive()
	for {
		msg, ok := <-s.mb
		if !ok {
			return
		}
		if msg.stats != nil {
			msg.stats <- nil
		}
		if msg.ckpt != nil {
			msg.ckpt <- shardCkpt{idx: s.idx, err: ErrKilled}
		}
	}
}

// handle processes one mailbox message: stats requests are answered after
// flushing the pending run (so the snapshot reflects every element queued
// before the request); elements extend the current run, which is flushed
// whenever the input switches or the batch cap is reached.
func (s *shard) handle(msg shardMsg) {
	if msg.stats != nil {
		s.flushBatch()
		s.materializePassive()
		msg.stats <- s.reg.StatsSnapshot()
		return
	}
	if msg.ckpt != nil {
		// Checkpoint barrier: everything queued before it has been handled
		// (mailbox FIFO); flushing the in-flight run makes the tree state a
		// consistent cut, which the worker itself serializes (the tree is
		// goroutine-confined). Pending lazy purges are NOT forced: they are
		// part of the state and travel in the snapshot, so the restored run
		// purges on the same schedule as an uninterrupted one.
		s.flushBatch()
		msg.ckpt <- s.checkpointReply()
		return
	}
	if msg.attach != nil || msg.detach != "" {
		// Live subscription change: flush the pending run first so its
		// outputs reach exactly the subscribers that were attached when
		// its elements were enqueued, then cut the list here.
		s.flushBatch()
		if msg.attach != nil {
			s.attachSub(msg.attach)
		}
		if msg.detach != "" {
			s.dropSub(msg.detach)
		}
		return
	}
	if s.failed {
		return // drain without processing
	}
	if len(s.batch) > 0 && msg.input != s.batchInput {
		s.flushBatch()
	}
	s.batchInput, s.batchStream = msg.input, msg.stream
	if msg.elems != nil {
		s.batch = append(s.batch, msg.elems...)
	} else {
		s.batch = append(s.batch, msg.elem)
	}
	if len(s.batch) >= maxShardBatch {
		s.flushBatch()
	}
}

// deliver fans one output batch out to every subscribed query. Passive
// subscribers share one append into the delivery log regardless of how
// many there are; only subscribers with callbacks pay per-element work.
func (s *shard) deliver(outs []stream.Element) {
	if len(outs) == 0 {
		return
	}
	if len(s.passive) > 0 {
		s.logCount += uint64(len(outs))
		for _, o := range outs {
			if !o.IsPunct() {
				s.logTuples = append(s.logTuples, o.Tuple())
			}
		}
	}
	for _, m := range s.active {
		m.deliver(outs)
	}
}

// rebuildSubs recomputes the active/passive split after any change to
// the subscriber list. Slices are rebuilt in subs order so fan-out order
// stays deterministic.
func (s *shard) rebuildSubs() {
	s.active, s.passive = s.active[:0], s.passive[:0]
	for _, m := range s.subs {
		if m.passiveSub() {
			s.passive = append(s.passive, m)
		} else {
			s.active = append(s.active, m)
		}
	}
}

// attachSub adds a live subscriber at the current mailbox cut. A passive
// joiner's log view begins here: its Results will be exactly the log
// suffix from this point on.
func (s *shard) attachSub(m *Registered) {
	if m.passiveSub() {
		m.logBase, m.logStart = len(s.logTuples), len(s.logTuples)
		m.logStartCount = s.logCount
		m.logPure = len(m.Results) == 0
	}
	s.subs = append(s.subs, m)
	s.rebuildSubs()
}

// materialize publishes one passive subscriber's pending log range into
// its Results and delivered count. When Results is a pure log alias the
// publish is a zero-copy re-slice (capacity-clamped so a later append by
// anyone reallocates instead of scribbling over the shared log);
// otherwise the new range is appended. O(1) per call on the pure path,
// so barriers stay cheap at any subscriber count.
func (s *shard) materialize(m *Registered) {
	cur := len(s.logTuples)
	if m.logPure {
		m.Results = s.logTuples[m.logBase:cur:cur]
	} else if tail := s.logTuples[m.logStart:cur:cur]; len(tail) > 0 {
		m.Results = append(m.Results, tail...)
	}
	m.logStart = cur
	m.delivered += s.logCount - m.logStartCount
	m.logStartCount = s.logCount
}

// materializePassive publishes every passive subscriber's pending log
// range. Called at every barrier a subscriber's Results or Delivered may
// be observed behind: stats, checkpoint, detach, end of input, kill.
func (s *shard) materializePassive() {
	for _, m := range s.passive {
		s.materialize(m)
	}
}

// deadLetter records one offender against every subscribed query —
// exactly the accounting N independent trees would have produced.
func (s *shard) deadLetter(streamName string, e stream.Element, err error) {
	for _, m := range s.subs {
		s.rt.dlq.add(DeadLetter{Stream: streamName, Query: m.Name, Elem: e, Err: err})
	}
}

// dropSub removes a departing subscriber from the worker-owned list,
// freezing a passive leaver's Results at this exact cut (the prefix it
// was subscribed for; later log appends land beyond its clamped view).
func (s *shard) dropSub(name string) {
	for i, m := range s.subs {
		if m.Name == name {
			if m.passiveSub() {
				s.materialize(m)
			}
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			s.rebuildSubs()
			return
		}
	}
}

// flushBatch pushes the accumulated run through the tree's batched path,
// applying the element-level error policy per offender: recoverable
// offenders are dead-lettered and the rest of the run resumes after them,
// so batching never changes which elements a policy keeps or drops.
func (s *shard) flushBatch() {
	elems := s.batch
	for len(elems) > 0 && !s.failed {
		n, err := s.pushBatchContained(s.batchInput, elems)
		if err == nil {
			break
		}
		if s.rt.policy != Fail && recoverableError(err) {
			s.deadLetter(s.batchStream, elems[n], err)
			elems = elems[n+1:]
			continue
		}
		s.failed = true
		s.rt.fail(fmt.Errorf("engine: query %q: %w", s.reg.Name, err))
	}
	clearElements(s.batch)
	s.batch = s.batch[:0]
}

// checkpointReply serializes the shard's tree for a checkpoint barrier,
// with every subscriber's delivery count at the cut.
func (s *shard) checkpointReply() shardCkpt {
	s.materializePassive()
	if s.failed {
		return shardCkpt{idx: s.idx, err: fmt.Errorf("engine: query %q has failed; state not checkpointable", s.reg.Name)}
	}
	var buf bytes.Buffer
	if err := s.reg.writeState(&buf); err != nil {
		return shardCkpt{idx: s.idx, err: fmt.Errorf("engine: query %q: serializing state: %w", s.reg.Name, err)}
	}
	subs := make([]subDelivered, len(s.subs))
	for i, m := range s.subs {
		subs[i] = subDelivered{name: m.Name, delivered: m.delivered}
	}
	return shardCkpt{idx: s.idx, state: buf.Bytes(), subs: subs}
}

// finish runs the end-of-input flush once the mailbox has fully drained.
func (s *shard) finish() {
	defer s.materializePassive()
	if s.failed {
		return
	}
	if err := s.flushContained(); err != nil {
		s.rt.fail(fmt.Errorf("engine: query %q: %w", s.reg.Name, err))
	}
}

func clearElements(elems []stream.Element) {
	for i := range elems {
		elems[i] = stream.Element{}
	}
}

// pushBatchContained feeds a run of elements into the shard's tree and
// fans the outputs out to the subscribers, converting an operator panic
// into a returned *PanicError (one recover frame per batch instead of
// per element). A panic always fails the whole shard, so the unknown
// progress index is irrelevant; element-level errors report the
// offender's index for resumption, with the preceding elements' outputs
// already delivered.
func (s *shard) pushBatchContained(input int, elems []stream.Element) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(r)
		}
	}()
	outs, n, err := s.reg.pushBatchExec(input, elems)
	s.deliver(outs)
	return n, err
}

// flushContained runs the end-of-input flush with the same panic
// containment as pushContained.
func (s *shard) flushContained() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(r)
		}
	}()
	outs, err := s.reg.flushExec()
	if err != nil {
		return err
	}
	s.deliver(outs)
	return nil
}

// fail records the runtime's first error and signals it.
func (rt *Runtime) fail(err error) {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	if rt.firstErr == nil {
		rt.firstErr = err
		close(rt.failed)
	}
}

// Err returns the first error any shard hit, without blocking; nil while
// everything is healthy.
func (rt *Runtime) Err() error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.firstErr
}

// Send routes one element of the named raw stream to every subscribed
// shard, applying each query's input filter on the router side. It blocks
// while a subscribed shard's mailbox is full (backpressure) and is safe
// to call from any number of producer goroutines. After Close it returns
// an error instead of panicking; with FailFast it returns the runtime's
// first error once any shard has failed.
func (rt *Runtime) Send(streamName string, e stream.Element) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if err := rt.sendGuard("Send"); err != nil {
		return err
	}
	return rt.sendLocked(streamName, e)
}

// sendGuard applies the closed/fail-fast preflight checks shared by every
// producer entry point; the caller holds closeMu.RLock.
func (rt *Runtime) sendGuard(op string) error {
	if rt.closed {
		return fmt.Errorf("engine: runtime: %s after Close", op)
	}
	if rt.failFast {
		select {
		case <-rt.failed:
			return rt.Err()
		default:
		}
	}
	return nil
}

// sendLocked is Send's routing body; the caller holds closeMu.RLock.
func (rt *Runtime) sendLocked(streamName string, e stream.Element) error {
	for _, s := range rt.route[streamName] {
		input := s.reg.streamInput[streamName]
		ok, err := safeAccepts(s.reg, input, e)
		if err != nil {
			// A panicking input filter leaves the element unclassifiable
			// for this query: dead-letter it under Drop/Quarantine (once
			// per subscribed query, as independent trees would), or fail
			// the runtime under Fail — the router goroutine survives
			// either way.
			err = fmt.Errorf("engine: query %q: %w", s.reg.Name, err)
			if rt.policy != Fail {
				for _, m := range s.group.members {
					rt.dlq.add(DeadLetter{Stream: streamName, Query: m.Name, Elem: e, Err: err})
				}
				continue
			}
			rt.fail(err)
			return err
		}
		if !ok {
			continue
		}
		if s.pf != nil {
			// Partitioned query: the producer routes the element itself
			// — hash to the owning partition, or seal every partition's
			// mailbox for a punctuation.
			s.pf.sendOne(input, streamName, e)
			continue
		}
		s.mb <- shardMsg{input: input, stream: streamName, elem: e}
	}
	return nil
}

// SendBatch routes a run of elements of one named stream, equivalent to
// calling Send per element but with one mailbox hand-off per subscribed
// shard: the run is filtered per query on the router side and the
// accepted elements travel as one message, so per-element routing, lock,
// and channel overhead is amortized across the batch. The caller keeps
// ownership of elems (each shard receives its own copy). Filter errors
// follow Send's policy handling per element; under Fail the offender
// fails the runtime and the batch is not delivered to the failing
// query's shard.
func (rt *Runtime) SendBatch(streamName string, elems []stream.Element) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if err := rt.sendGuard("SendBatch"); err != nil {
		return err
	}
	return rt.sendBatchLocked(streamName, elems)
}

// sendBatchLocked is SendBatch's routing body; the caller holds
// closeMu.RLock and has passed sendGuard.
func (rt *Runtime) sendBatchLocked(streamName string, elems []stream.Element) error {
	if len(elems) == 1 {
		// A one-element run gains nothing from the batch copy.
		return rt.sendLocked(streamName, elems[0])
	}
	for _, s := range rt.route[streamName] {
		input := s.reg.streamInput[streamName]
		accepted := make([]stream.Element, 0, len(elems))
		var ferr error
		for _, e := range elems {
			ok, err := safeAccepts(s.reg, input, e)
			if err != nil {
				err = fmt.Errorf("engine: query %q: %w", s.reg.Name, err)
				if rt.policy != Fail {
					for _, m := range s.group.members {
						rt.dlq.add(DeadLetter{Stream: streamName, Query: m.Name, Elem: e, Err: err})
					}
					continue
				}
				ferr = err
				break
			}
			if ok {
				accepted = append(accepted, e)
			}
		}
		if ferr != nil {
			rt.fail(ferr)
			return ferr
		}
		if len(accepted) == 0 {
			continue
		}
		if s.pf != nil {
			// Partitioned query: hash-scatter the run from this producer
			// goroutine (accepted is this shard's own copy, so handing it
			// to the front is safe).
			s.pf.sendRun(input, streamName, accepted)
			continue
		}
		s.mb <- shardMsg{input: input, stream: streamName, elems: accepted}
	}
	return nil
}

// safeAccepts evaluates the query's input filter with panic containment:
// a filter that panics yields errFilterPanic instead of unwinding the
// producer goroutine.
func safeAccepts(r *Registered, input int, e stream.Element) (ok bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%w: %v", errFilterPanic, v)
		}
	}()
	return r.accepts(input, e), nil
}

// DeadLetters returns a detached snapshot of the runtime's dead-letter
// queue: totals and per-stream/per-query counts under Drop and
// Quarantine, plus the retained offenders under Quarantine. Safe to call
// from any goroutine at any time.
func (rt *Runtime) DeadLetters() DeadLetterSnapshot { return rt.dlq.snapshot() }

// AddDeadLetter records an externally classified offender in the
// runtime's dead-letter queue — counted always, retained under
// Quarantine — exactly as if a shard had rejected it. The serving
// layer's drop-with-counter slow-consumer policy uses this so dropped
// deliveries ride the same accounting as every other absorbed fault.
// Safe to call from any goroutine.
func (rt *Runtime) AddDeadLetter(d DeadLetter) { rt.dlq.add(d) }

// Close signals the end of input: every shard finishes its queued
// elements, flushes pending lazy purges, and exits. Idempotent; call it
// once all producers are done (a Send racing with Close errors rather
// than panicking, because Close waits for in-flight Sends).
func (rt *Runtime) Close() {
	rt.closeMu.Lock()
	defer rt.closeMu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	for _, s := range rt.shards {
		if s.retired {
			continue // Detach already closed its input
		}
		if s.pf != nil {
			s.pf.close()
			continue
		}
		close(s.mb)
	}
}

// Wait blocks until every shard has drained and flushed (after Close) and
// returns the runtime's first error, if any. Once Wait returns the DSMS
// and its Registered handles are quiescent and safe to read directly.
// The shard list is re-snapshotted per iteration so a Wait racing a live
// Attach (before Close) still joins every spawned shard.
func (rt *Runtime) Wait() error {
	for i := 0; ; i++ {
		rt.closeMu.RLock()
		if i >= len(rt.shards) {
			rt.closeMu.RUnlock()
			break
		}
		s := rt.shards[i]
		rt.closeMu.RUnlock()
		<-s.done
	}
	return rt.Err()
}

// Stats returns a race-safe snapshot of the named query's operator stats
// (bottom-up, as exec.Tree.Operators orders them). For a share-group
// member this is the shared tree's stats — identical to what the query's
// own tree would report, since it would have processed the same input.
// While the shard runs the request travels through its mailbox and is
// answered by the worker goroutine itself — a consistent point-in-time
// snapshot with no locks on the hot path; after the shard has drained
// the tree is read directly. Safe to call from any goroutine,
// concurrently with Send and Close: the runtime's close lock serializes
// the mailbox hand-off, and a request already queued when Close lands is
// still answered during the drain.
func (rt *Runtime) Stats(name string) ([]*exec.Stats, error) {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	s, ok := rt.byName[name]
	if !ok {
		return nil, fmt.Errorf("engine: no query %q", name)
	}
	if rt.closed {
		// Mailbox closed: the worker is draining or done. Wait for it,
		// then read directly — the <-done synchronizes with the worker's
		// final writes.
		<-s.done
		return s.reg.StatsSnapshot(), nil
	}
	reply := make(chan []*exec.Stats, 1)
	if s.pf != nil {
		// Partitioned query: the request travels as a control barrier
		// through every partition mailbox; the merge stage answers once
		// everything enqueued before it has been delivered and the
		// workers are quiescent.
		s.pf.control(&partCtrl{stats: reply, release: make(chan struct{})})
		return <-reply, nil
	}
	s.mb <- shardMsg{stats: reply}
	return <-reply, nil
}

// SplitPartition live-splits one replica of the named partitioned query:
// the hot replica's key range is divided by observed bucket load, a new
// replica takes over the heavier half, and producers re-route on the
// published owner table — all behind the same control barrier a
// checkpoint uses, so no element is lost, duplicated, or reordered by
// the move. It blocks until the split is complete (or refused: a
// replica whose load sits in one hash bucket cannot be split by
// routing). Safe from any goroutine; the skew watcher calls it
// automatically when Options.MaxPartitionSplits allows.
func (rt *Runtime) SplitPartition(name string, hot int) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	s, ok := rt.byName[name]
	if !ok {
		return fmt.Errorf("engine: no query %q", name)
	}
	if s.pf == nil {
		return fmt.Errorf("engine: query %q is not partitioned", name)
	}
	if rt.closed {
		return fmt.Errorf("engine: runtime: SplitPartition after Close")
	}
	return s.pf.splitPartition(hot)
}

// splitWatcher is the skew-repartitioning policy loop, one per
// partitioned shard with a split budget. It watches the query's
// pressure events for a replica that stayed at or above its soft state
// limit after the forced purge round — state the punctuation horizon
// legitimately retains, concentrated on one replica by key skew — and
// splits that replica. Replicas whose load cannot be separated by
// bucket routing (single pathological key) are remembered and not
// retried.
func (s *shard) splitWatcher() {
	splits := 0
	unsplittable := make(map[int]bool)
	for splits < s.reg.maxSplits {
		var ev exec.PressureEvent
		select {
		case ev = <-s.reg.pressure:
		case <-s.done:
			return
		case <-s.rt.kill:
			return
		}
		if ev.Partition < 0 || ev.Relieved < ev.SoftLimit || unsplittable[ev.Partition] {
			continue
		}
		err := s.rt.SplitPartition(s.reg.Name, ev.Partition)
		rev := RepartitionEvent{
			Query: s.reg.Name,
			Hot:   ev.Partition,
			Parts: s.reg.Partitions(),
			Err:   err,
		}
		if err == nil {
			splits++
			rev.New = rev.Parts - 1
		} else {
			if errors.Is(err, ErrKilled) {
				return
			}
			unsplittable[ev.Partition] = true
		}
		if s.reg.onRepartition != nil {
			s.reg.onRepartition(rev)
		}
	}
}
