package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"punctsafe/exec"
	"punctsafe/stream"
)

// Durable checkpoint/restore for the sharded runtime.
//
// A checkpoint is one atomic snapshot of everything the runtime would
// lose in a crash: every shard's operator state (join states,
// punctuation stores with lifespans, stats, pending lazy purges), the
// dead-letter queue, and the committed resume offset of every named
// ingest source. The file layout is
//
//	"PSCKPT02" uvarint(len(body)) body crc32(everything before it)
//
// so a torn write is detectable three ways: short header, length
// mismatch, checksum mismatch. Operator state inside the body reuses
// exec's versioned tree-state encoding.
//
// Consistency comes from a mailbox barrier: Checkpoint holds the
// runtime's close lock (no new sends can start) and posts a barrier
// message to every shard; mailbox FIFO order means each worker has fully
// applied everything enqueued before the barrier when it serializes its
// own tree. Offsets committed via SendAt/SendBatchAt/IngestWireFrom move
// under the same lock's read side, so a snapshot never pairs applied
// elements with a stale offset or an advanced offset with unapplied
// elements. Results delivered downstream after the checkpoint are
// replayed on resume — the runtime is exactly-once for state and
// at-least-once for output, as DESIGN.md § Recovery model spells out.

// ErrCorruptCheckpoint is returned (wrapped) when a checkpoint fails to
// parse, validate, or match the registered queries. Restoring never
// panics and never half-applies: on any error the register's trees are
// exactly as they were.
var ErrCorruptCheckpoint = errors.New("engine: corrupt checkpoint")

// ErrKilled is the error a killed runtime reports (see Kill).
var ErrKilled = errors.New("engine: runtime killed")

// checkpointMagic doubles as format version; readers reject anything
// else, so a layout change shows up as ErrCorruptCheckpoint, not as
// silently misparsed state. Version 02 added the per-query delivery
// count to the per-shard section (serving-layer sequence numbers).
const checkpointMagic = "PSCKPT02"

// Kill simulates a crash: every worker stops processing mid-stream (no
// batch flush, no final purge round) and the runtime reports ErrKilled.
// Mailboxes keep draining without effect so blocked producers unwind;
// call Close and Wait afterwards to reap the workers. The recovery test
// harness uses this to prove checkpoint→crash→restore equivalence.
func (rt *Runtime) Kill() {
	rt.killOnce.Do(func() {
		rt.fail(ErrKilled)
		close(rt.kill)
	})
}

// SendAt is Send plus offset bookkeeping: on success it records offset
// as the named ingest source's committed resume position. The commit
// happens under the same lock hold as the send, so a concurrent
// Checkpoint observes either both or neither — the consistent cut that
// makes resume-after-restore exactly-once.
func (rt *Runtime) SendAt(source, streamName string, e stream.Element, offset int64) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if err := rt.sendGuard("SendAt"); err != nil {
		return err
	}
	if err := rt.sendLocked(streamName, e); err != nil {
		return err
	}
	rt.commitOffset(source, offset)
	return nil
}

// SendBatchAt is SendBatch plus the same atomic offset commit as SendAt.
func (rt *Runtime) SendBatchAt(source, streamName string, elems []stream.Element, offset int64) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if err := rt.sendGuard("SendBatchAt"); err != nil {
		return err
	}
	if err := rt.sendBatchLocked(streamName, elems); err != nil {
		return err
	}
	rt.commitOffset(source, offset)
	return nil
}

// ResumeOffset returns the named source's committed resume position:
// zero on a fresh runtime, the restored offset after RestoreRuntime, the
// last committed offset while feeding. Producers resume feeding from
// exactly this position after a restore.
func (rt *Runtime) ResumeOffset(source string) int64 {
	rt.srcMu.Lock()
	defer rt.srcMu.Unlock()
	return rt.sources[source]
}

// SourceOffsets returns a copy of every named ingest source's committed
// resume offset. The serving layer's standby uses it to acknowledge
// applied (memory-durable) replication progress when no checkpoint path
// is configured.
func (rt *Runtime) SourceOffsets() map[string]int64 {
	return rt.sourceOffsets()
}

// commitOffset records a source's resume position; the caller holds
// closeMu's read side (see SendAt).
func (rt *Runtime) commitOffset(source string, offset int64) {
	rt.srcMu.Lock()
	rt.sources[source] = offset
	rt.srcMu.Unlock()
}

// sourceOffsets copies the committed offsets map.
func (rt *Runtime) sourceOffsets() map[string]int64 {
	rt.srcMu.Lock()
	defer rt.srcMu.Unlock()
	out := make(map[string]int64, len(rt.sources))
	for k, v := range rt.sources {
		out[k] = v
	}
	return out
}

// CheckpointSummary describes the consistent cut a checkpoint captured:
// the committed resume offset of every ingest source and each query's
// delivery count at the barrier. The serving layer uses it to send
// durable acknowledgements to producers and to trim its subscriber
// replay rings to the cut.
type CheckpointSummary struct {
	// Offsets maps ingest source names to their committed resume offsets.
	Offsets map[string]int64
	// Delivered maps query names to their total delivery counts at the
	// cut (see Registered.Delivered).
	Delivered map[string]uint64
}

// Checkpoint quiesces every shard via a mailbox barrier and writes one
// atomic snapshot of the runtime to w: operator state per query, the
// dead-letter queue, and the committed ingest offsets. It blocks
// concurrent sends for the barrier's duration and fails (writing
// nothing) if the runtime has failed. Checkpointing a Closed runtime
// waits for the drain and snapshots the final state.
func (rt *Runtime) Checkpoint(w io.Writer) error {
	_, err := rt.CheckpointSummary(w)
	return err
}

// CheckpointSummary is Checkpoint plus a description of the cut it
// captured.
func (rt *Runtime) CheckpointSummary(w io.Writer) (CheckpointSummary, error) {
	var sum CheckpointSummary
	rt.closeMu.Lock()
	defer rt.closeMu.Unlock()
	if err := rt.Err(); err != nil {
		return sum, fmt.Errorf("engine: checkpoint: runtime has failed: %w", err)
	}
	// A retired shard (last subscriber detached) is still draining its
	// final flush but represents no registered query: it contributes
	// nothing to the snapshot and its input is already closed, so the
	// barrier must skip it.
	states := make([][]byte, len(rt.shards))
	delivered := make(map[string]uint64, len(rt.d.order))
	if rt.closed {
		for _, s := range rt.shards {
			<-s.done
		}
		if err := rt.Err(); err != nil {
			return sum, fmt.Errorf("engine: checkpoint: runtime has failed: %w", err)
		}
		for i, s := range rt.shards {
			if s.retired {
				continue
			}
			var buf bytes.Buffer
			if err := s.reg.writeState(&buf); err != nil {
				return sum, fmt.Errorf("engine: checkpoint: query %q: %w", s.reg.Name, err)
			}
			states[i] = buf.Bytes()
			// <-s.done above synchronized with the worker's final writes,
			// so its subscriber list and delivery counts are readable.
			for _, m := range s.subs {
				delivered[m.Name] = m.delivered
			}
		}
	} else {
		reply := make(chan shardCkpt, len(rt.shards))
		live := 0
		for _, s := range rt.shards {
			if s.retired {
				continue
			}
			live++
			if s.pf != nil {
				// Partitioned shard: the barrier travels as a control
				// chunk through every partition mailbox plus the routing
				// script; the merge stage serializes the quiesced
				// replicas and the alignment gate in one consistent cut.
				s.pf.control(&partCtrl{ckpt: reply, release: make(chan struct{})})
				continue
			}
			s.mb <- shardMsg{ckpt: reply}
		}
		var firstErr error
		for i := 0; i < live; i++ {
			c := <-reply
			if c.err != nil {
				if firstErr == nil {
					firstErr = c.err
				}
				continue
			}
			states[c.idx] = c.state
			for _, sd := range c.subs {
				delivered[sd.name] = sd.delivered
			}
		}
		if firstErr != nil {
			return sum, fmt.Errorf("engine: checkpoint: %w", firstErr)
		}
	}
	sum.Offsets = rt.sourceOffsets()
	sum.Delivered = delivered
	body := rt.appendCheckpointBody(make([]byte, 0, 4096), sum.Offsets, states, delivered)
	out := make([]byte, 0, len(body)+len(checkpointMagic)+binary.MaxVarintLen64+4)
	out = append(out, checkpointMagic...)
	out = binary.AppendUvarint(out, uint64(len(body)))
	out = append(out, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	out = append(out, crc[:]...)
	if _, err := w.Write(out); err != nil {
		return sum, err
	}
	return sum, nil
}

// CheckpointFile writes a checkpoint to path atomically: the snapshot
// lands in a temporary sibling, is fsynced, and then renamed over path,
// so a crash mid-write leaves the previous checkpoint intact.
func (rt *Runtime) CheckpointFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := rt.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// appendCheckpointBody serializes the snapshot body: sorted source
// offsets, the dead-letter queue, then each query's delivery count and
// state in registration order. A shared physical tree's state is written
// once, on its group's driver; follower sections carry a zero-length
// state, which restore recognizes as "aliases the preceding driver".
func (rt *Runtime) appendCheckpointBody(dst []byte, offsets map[string]int64, states [][]byte, delivered map[string]uint64) []byte {
	names := make([]string, 0, len(offsets))
	for name := range offsets {
		names = append(names, name)
	}
	sort.Strings(names)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, name := range names {
		dst = appendCkptString(dst, name)
		dst = binary.AppendUvarint(dst, uint64(offsets[name]))
	}
	dst = appendDeadLetterState(dst, rt.dlq.snapshot())
	dst = binary.AppendUvarint(dst, uint64(len(rt.d.order)))
	for _, name := range rt.d.order {
		reg := rt.d.queries[name]
		dst = appendCkptString(dst, name)
		dst = binary.AppendUvarint(dst, delivered[name])
		var state []byte
		if reg.isDriver() {
			state = states[rt.byName[name].idx]
		}
		dst = binary.AppendUvarint(dst, uint64(len(state)))
		dst = append(dst, state...)
	}
	return dst
}

// checkpointSnapshot is a fully parsed checkpoint, not yet applied.
type checkpointSnapshot struct {
	offsets map[string]int64
	dlq     DeadLetterSnapshot
	shards  []shardState
}

type shardState struct {
	name      string
	delivered uint64
	state     []byte
}

// RestoreRuntime rebuilds a sharded runtime from a checkpoint written by
// Checkpoint. The DSMS must hold the same registered schemes and queries
// (same names, plans, and options) as the runtime that wrote the
// snapshot. Restoring is all-or-nothing: every blob is parsed and
// validated before any operator state is touched, so a truncated,
// garbled, or version-mismatched checkpoint returns an error wrapping
// ErrCorruptCheckpoint and leaves the register exactly as it was.
//
// After a successful restore, feed each ingest source from its
// ResumeOffset (IngestWireFrom does this automatically): elements up to
// the recorded offsets are already inside the restored state, elements
// after them have left no trace, so resumption neither loses nor
// duplicates input. Result tuples delivered between the checkpoint and
// the crash are emitted again on resume; Registered result buffers are
// not part of the snapshot.
func (d *DSMS) RestoreRuntime(r io.Reader, opts RuntimeOptions) (*Runtime, error) {
	snap, err := readCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if len(snap.shards) != len(d.order) {
		return nil, fmt.Errorf("%w: checkpoint holds %d queries, register has %d",
			ErrCorruptCheckpoint, len(snap.shards), len(d.order))
	}
	// A staged state is either a Tree snapshot or a PartitionedTree
	// snapshot, matching the executor the query registered with — a
	// checkpoint taken at one partition count only restores into the same
	// count (the formats differ, so a mismatch parses as corrupt). A
	// share-group follower carries no state of its own (zero-length
	// section): its driver's install covers the aliased tree. A state
	// presence/role mismatch means the register's Share options disagree
	// with the snapshot's, which restore treats as corrupt.
	type stagedState struct {
		reg       *Registered
		delivered uint64
		state     *exec.TreeState
		part      *exec.PartitionedTreeState
	}
	staged := make([]stagedState, 0, len(snap.shards))
	seen := make(map[string]bool, len(snap.shards))
	for _, sh := range snap.shards {
		reg, ok := d.queries[sh.name]
		if !ok {
			return nil, fmt.Errorf("%w: checkpointed query %q is not registered", ErrCorruptCheckpoint, sh.name)
		}
		if seen[sh.name] {
			return nil, fmt.Errorf("%w: duplicate query %q", ErrCorruptCheckpoint, sh.name)
		}
		seen[sh.name] = true
		st := stagedState{reg: reg, delivered: sh.delivered}
		if !reg.isDriver() {
			if len(sh.state) != 0 {
				return nil, fmt.Errorf("%w: query %q: shared-tree subscriber carries %d bytes of state",
					ErrCorruptCheckpoint, sh.name, len(sh.state))
			}
			staged = append(staged, st)
			continue
		}
		if len(sh.state) == 0 {
			return nil, fmt.Errorf("%w: query %q: tree owner section has no state (share-group mismatch)",
				ErrCorruptCheckpoint, sh.name)
		}
		var err error
		if reg.Part != nil {
			st.part, err = reg.Part.DecodeState(bytes.NewReader(sh.state))
		} else {
			st.state, err = reg.Tree.DecodeState(bytes.NewReader(sh.state))
		}
		if err != nil {
			return nil, fmt.Errorf("%w: query %q: %v", ErrCorruptCheckpoint, sh.name, err)
		}
		staged = append(staged, st)
	}
	// Commit point: everything parsed and validated; install cannot fail.
	for _, st := range staged {
		var err error
		switch {
		case st.part != nil:
			err = st.reg.Part.InstallState(st.part)
		case st.state != nil:
			err = st.reg.Tree.InstallState(st.state)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
		}
		st.reg.delivered = st.delivered
	}
	rt := d.RunSharded(opts)
	rt.dlq.install(snap.dlq)
	rt.srcMu.Lock()
	for k, v := range snap.offsets {
		rt.sources[k] = v
	}
	rt.srcMu.Unlock()
	return rt, nil
}

// readCheckpoint parses and verifies a checkpoint stream without
// touching any runtime state.
func readCheckpoint(r io.Reader) (*checkpointSnapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("engine: reading checkpoint: %w", err)
	}
	if len(data) < len(checkpointMagic)+1+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any checkpoint", ErrCorruptCheckpoint, len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q (version mismatch, or not a checkpoint)",
			ErrCorruptCheckpoint, data[:len(checkpointMagic)])
	}
	bodyLen, n := binary.Uvarint(data[len(checkpointMagic):])
	if n <= 0 {
		return nil, fmt.Errorf("%w: unreadable body length", ErrCorruptCheckpoint)
	}
	bodyStart := len(checkpointMagic) + n
	if bodyLen > uint64(len(data)-bodyStart) {
		return nil, fmt.Errorf("%w: torn file: body claims %d bytes, %d remain",
			ErrCorruptCheckpoint, bodyLen, len(data)-bodyStart)
	}
	total := bodyStart + int(bodyLen) + 4
	if len(data) != total {
		return nil, fmt.Errorf("%w: torn or padded file: %d bytes, want %d", ErrCorruptCheckpoint, len(data), total)
	}
	want := binary.LittleEndian.Uint32(data[total-4:])
	if got := crc32.ChecksumIEEE(data[:total-4]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorruptCheckpoint, want, got)
	}
	d := &ckptDec{buf: data[bodyStart : total-4]}
	snap := &checkpointSnapshot{offsets: make(map[string]int64)}
	nSources, err := d.count("source count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nSources; i++ {
		name, err := d.str("source name")
		if err != nil {
			return nil, err
		}
		off, err := d.uvarint("source offset")
		if err != nil {
			return nil, err
		}
		if _, dup := snap.offsets[name]; dup {
			return nil, fmt.Errorf("%w: duplicate source %q", ErrCorruptCheckpoint, name)
		}
		snap.offsets[name] = int64(off)
	}
	if snap.dlq, err = decodeDeadLetterState(d); err != nil {
		return nil, err
	}
	nShards, err := d.count("query count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nShards; i++ {
		name, err := d.str("query name")
		if err != nil {
			return nil, err
		}
		delivered, err := d.uvarint("query delivery count")
		if err != nil {
			return nil, err
		}
		stateLen, err := d.count("query state length")
		if err != nil {
			return nil, err
		}
		state, err := d.take(stateLen)
		if err != nil {
			return nil, err
		}
		snap.shards = append(snap.shards, shardState{name: name, delivered: delivered, state: state})
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes in body", ErrCorruptCheckpoint, len(d.buf)-d.off)
	}
	return snap, nil
}

// appendDeadLetterState serializes a dead-letter snapshot (sorted count
// maps, entries oldest first). DeadLetter errors survive as their
// message text: error types are not round-trippable, and the text is
// what inspection and equivalence checks consume.
func appendDeadLetterState(dst []byte, s DeadLetterSnapshot) []byte {
	dst = binary.AppendUvarint(dst, s.Total)
	dst = binary.AppendUvarint(dst, s.Evicted)
	dst = appendCountMap(dst, s.ByStream)
	dst = appendCountMap(dst, s.ByQuery)
	dst = binary.AppendUvarint(dst, uint64(len(s.Entries)))
	for _, e := range s.Entries {
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = appendCkptString(dst, e.Stream)
		dst = appendCkptString(dst, e.Query)
		dst = appendAnyElement(dst, e.Elem)
		dst = binary.AppendUvarint(dst, uint64(len(e.Frame)))
		dst = append(dst, e.Frame...)
		errText := ""
		if e.Err != nil {
			errText = e.Err.Error()
		}
		dst = appendCkptString(dst, errText)
	}
	return dst
}

func decodeDeadLetterState(d *ckptDec) (DeadLetterSnapshot, error) {
	var s DeadLetterSnapshot
	var err error
	if s.Total, err = d.uvarint("dead-letter total"); err != nil {
		return s, err
	}
	if s.Evicted, err = d.uvarint("dead-letter evicted"); err != nil {
		return s, err
	}
	if s.ByStream, err = decodeCountMap(d, "per-stream counts"); err != nil {
		return s, err
	}
	if s.ByQuery, err = decodeCountMap(d, "per-query counts"); err != nil {
		return s, err
	}
	n, err := d.count("dead-letter entry count")
	if err != nil {
		return s, err
	}
	for i := 0; i < n; i++ {
		var e DeadLetter
		if e.Seq, err = d.uvarint("dead-letter seq"); err != nil {
			return s, err
		}
		if e.Stream, err = d.str("dead-letter stream"); err != nil {
			return s, err
		}
		if e.Query, err = d.str("dead-letter query"); err != nil {
			return s, err
		}
		if e.Elem, err = decodeAnyElement(d); err != nil {
			return s, err
		}
		frameLen, err := d.count("dead-letter frame length")
		if err != nil {
			return s, err
		}
		frame, err := d.take(frameLen)
		if err != nil {
			return s, err
		}
		if frameLen > 0 {
			e.Frame = append([]byte(nil), frame...)
		}
		errText, err := d.str("dead-letter error")
		if err != nil {
			return s, err
		}
		if errText != "" {
			e.Err = errors.New(errText)
		}
		s.Entries = append(s.Entries, e)
	}
	return s, nil
}

func appendCountMap(dst []byte, m map[string]uint64) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendCkptString(dst, k)
		dst = binary.AppendUvarint(dst, m[k])
	}
	return dst
}

func decodeCountMap(d *ckptDec, what string) (map[string]uint64, error) {
	n, err := d.count(what)
	if err != nil {
		return nil, err
	}
	m := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		k, err := d.str(what)
		if err != nil {
			return nil, err
		}
		v, err := d.uvarint(what)
		if err != nil {
			return nil, err
		}
		if _, dup := m[k]; dup {
			return nil, fmt.Errorf("%w: duplicate key %q in %s", ErrCorruptCheckpoint, k, what)
		}
		m[k] = v
	}
	return m, nil
}

// Schema-free element encoding for dead letters: quarantined elements
// are by nature things that failed schema validation (wrong arity, a
// tuple for the wrong stream), so stream.Codec cannot carry them; this
// encoding is total over whatever Element the queue holds.
const (
	anyElemAbsent byte = 0
	anyElemTuple  byte = 1
	anyElemPunct  byte = 2

	anyValInt     byte = 0
	anyValFloat   byte = 1
	anyValString  byte = 2
	anyValInvalid byte = 3

	anyPatWildcard byte = 0
	anyPatConst    byte = 1
	anyPatLeq      byte = 2
)

func appendAnyElement(dst []byte, e stream.Element) []byte {
	if e.IsPunct() {
		p := e.Punct()
		dst = append(dst, anyElemPunct)
		dst = binary.AppendUvarint(dst, uint64(len(p.Patterns)))
		for _, pat := range p.Patterns {
			switch {
			case pat.IsWildcard():
				dst = append(dst, anyPatWildcard)
			case pat.IsLeq():
				dst = append(dst, anyPatLeq)
				dst = appendAnyValue(dst, pat.Value())
			default:
				dst = append(dst, anyPatConst)
				dst = appendAnyValue(dst, pat.Value())
			}
		}
		return dst
	}
	t := e.Tuple()
	if len(t.Values) == 0 {
		return append(dst, anyElemAbsent)
	}
	dst = append(dst, anyElemTuple)
	dst = binary.AppendUvarint(dst, uint64(len(t.Values)))
	for _, v := range t.Values {
		dst = appendAnyValue(dst, v)
	}
	return dst
}

func appendAnyValue(dst []byte, v stream.Value) []byte {
	switch v.Kind() {
	case stream.KindInt:
		dst = append(dst, anyValInt)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.AsInt()))
		return append(dst, buf[:]...)
	case stream.KindFloat:
		dst = append(dst, anyValFloat)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.AsFloat()))
		return append(dst, buf[:]...)
	case stream.KindString:
		dst = append(dst, anyValString)
		s := v.AsString()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	default:
		return append(dst, anyValInvalid)
	}
}

func decodeAnyElement(d *ckptDec) (stream.Element, error) {
	kind, err := d.byteVal("element kind")
	if err != nil {
		return stream.Element{}, err
	}
	switch kind {
	case anyElemAbsent:
		return stream.Element{}, nil
	case anyElemTuple:
		n, err := d.count("tuple arity")
		if err != nil {
			return stream.Element{}, err
		}
		values := make([]stream.Value, n)
		for i := range values {
			if values[i], err = decodeAnyValue(d); err != nil {
				return stream.Element{}, err
			}
		}
		return stream.TupleElement(stream.NewTuple(values...)), nil
	case anyElemPunct:
		n, err := d.count("punctuation arity")
		if err != nil {
			return stream.Element{}, err
		}
		pats := make([]stream.Pattern, n)
		for i := range pats {
			pk, err := d.byteVal("pattern kind")
			if err != nil {
				return stream.Element{}, err
			}
			switch pk {
			case anyPatWildcard:
				pats[i] = stream.Wildcard()
			case anyPatConst, anyPatLeq:
				v, err := decodeAnyValue(d)
				if err != nil {
					return stream.Element{}, err
				}
				if pk == anyPatLeq {
					pats[i] = stream.Leq(v)
				} else {
					pats[i] = stream.Const(v)
				}
			default:
				return stream.Element{}, fmt.Errorf("%w: bad pattern kind 0x%02x", ErrCorruptCheckpoint, pk)
			}
		}
		p, err := stream.NewPunctuation(pats...)
		if err != nil {
			return stream.Element{}, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
		}
		return stream.PunctElement(p), nil
	default:
		return stream.Element{}, fmt.Errorf("%w: bad element kind 0x%02x", ErrCorruptCheckpoint, kind)
	}
}

func decodeAnyValue(d *ckptDec) (stream.Value, error) {
	kind, err := d.byteVal("value kind")
	if err != nil {
		return stream.Value{}, err
	}
	switch kind {
	case anyValInt:
		b, err := d.take(8)
		if err != nil {
			return stream.Value{}, err
		}
		return stream.Int(int64(binary.LittleEndian.Uint64(b))), nil
	case anyValFloat:
		b, err := d.take(8)
		if err != nil {
			return stream.Value{}, err
		}
		return stream.Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case anyValString:
		n, err := d.count("string length")
		if err != nil {
			return stream.Value{}, err
		}
		b, err := d.take(n)
		if err != nil {
			return stream.Value{}, err
		}
		return stream.Str(string(b)), nil
	case anyValInvalid:
		return stream.Value{}, nil
	default:
		return stream.Value{}, fmt.Errorf("%w: bad value kind 0x%02x", ErrCorruptCheckpoint, kind)
	}
}

func appendCkptString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ckptDec is a bounds-checked cursor over a checkpoint body; every
// failure wraps ErrCorruptCheckpoint.
type ckptDec struct {
	buf []byte
	off int
}

func (d *ckptDec) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad %s at byte %d", ErrCorruptCheckpoint, what, d.off)
	}
	d.off += n
	return v, nil
}

// count decodes a collection size bounded by the bytes remaining, so a
// corrupt count cannot drive a huge allocation.
func (d *ckptDec) count(what string) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.buf)-d.off) {
		return 0, fmt.Errorf("%w: %s %d exceeds remaining %d bytes", ErrCorruptCheckpoint, what, v, len(d.buf)-d.off)
	}
	return int(v), nil
}

func (d *ckptDec) take(n int) ([]byte, error) {
	if n < 0 || n > len(d.buf)-d.off {
		return nil, fmt.Errorf("%w: truncated at byte %d (want %d more)", ErrCorruptCheckpoint, d.off, n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *ckptDec) byteVal(what string) (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated %s at byte %d", ErrCorruptCheckpoint, what, d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *ckptDec) str(what string) (string, error) {
	n, err := d.count(what)
	if err != nil {
		return "", err
	}
	b, err := d.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// IngestWireFrom is the resumable counterpart of IngestWire: it opens
// the named source through open at the runtime's committed resume offset
// (zero on a fresh runtime, the checkpointed offset after a restore),
// reads frames until EOF, and commits the advancing offset atomically
// with each routed batch. A runtime restored from a checkpoint therefore
// resumes exactly after the last frame inside the snapshot — no lost and
// no duplicated tuples. The transport is wrapped in a RetryReader, so
// transient failures reconnect at the right offset automatically.
//
// Under Drop and Quarantine the reader runs in skip-and-resync mode;
// a corrupt region is dead-lettered in the same commit as the first
// batch whose offset moves past it, so faults are exactly-once across a
// crash too.
func (rt *Runtime) IngestWireFrom(source string, open func(offset int64) (io.Reader, error), schemas ...*stream.Schema) (int, error) {
	rr := &RetryReader{Open: open, StartOffset: rt.ResumeOffset(source)}
	return rt.IngestWireResume(source, rr, schemas...)
}

// IngestWireResume is the transport-agnostic half of IngestWireFrom: r
// must already be positioned at the source's committed resume offset
// (rt.ResumeOffset(source)), and no reconnection is attempted — a read
// failure surfaces after committing everything read before it. The
// serving front-end feeds each producer connection through this path:
// the connection handshake positions the client at the resume offset,
// and reconnection is the client's job, not the reader's.
func (rt *Runtime) IngestWireResume(source string, r io.Reader, schemas ...*stream.Schema) (int, error) {
	start := rt.ResumeOffset(source)
	var rec *tapRecorder
	if rt.tap != nil {
		rec = &tapRecorder{r: r, base: start, mark: start}
		r = rec
	}
	wr := NewWireReader(r, schemas...)
	wr.base = start
	var pendingFaults []WireFault
	if rt.policy != Fail {
		wr.Lenient(func(f WireFault) {
			pendingFaults = append(pendingFaults, f)
		})
	}
	const ingestBatch = 128
	batch := make([]stream.Element, 0, ingestBatch)
	batchStream := ""
	count := 0
	commit := func(off int64) error {
		var ready []DeadLetter
		rest := pendingFaults[:0]
		for _, f := range pendingFaults {
			if f.Offset+int64(f.Skipped) <= off {
				ready = append(ready, DeadLetter{Stream: f.Stream, Frame: f.Frame, Err: f.Err})
			} else {
				rest = append(rest, f)
			}
		}
		pendingFaults = rest
		if len(ready) == 0 && len(batch) == 0 {
			return nil
		}
		if err := rt.ingestCommit(source, batchStream, batch, ready, off, rec); err != nil {
			return err
		}
		count += len(batch)
		batch = batch[:0]
		return nil
	}
	lastEnd := start
	for {
		te, err := wr.Read()
		if err == io.EOF {
			// A clean EOF consumes the whole wire: trailing skipped regions
			// commit with the final offset.
			if ferr := commit(wr.Offset()); ferr != nil {
				return count, ferr
			}
			return count, nil
		}
		if err != nil {
			if ferr := commit(lastEnd); ferr != nil {
				return count, ferr
			}
			if errors.Is(err, ErrWouldBlock) {
				// The transport drained its buffered bytes: progress so
				// far is committed, the next Read blocks for more.
				continue
			}
			return count, err
		}
		if len(batch) > 0 && (te.Stream != batchStream || len(batch) >= ingestBatch) {
			if ferr := commit(lastEnd); ferr != nil {
				return count, ferr
			}
		}
		batchStream = te.Stream
		batch = append(batch, te.Elem)
		lastEnd = wr.Offset()
	}
}

// ingestCommit routes a batch and commits its source offset (plus any
// wire faults whose regions the offset has passed) in one critical
// section, so a concurrent Checkpoint sees all of it or none of it.
// With a tap recorder attached, the whole commit additionally runs
// under tapMu and finishes by handing the committed raw bytes to the
// tap, so tap order equals send order across concurrent sources.
func (rt *Runtime) ingestCommit(source, streamName string, elems []stream.Element, faults []DeadLetter, offset int64, rec *tapRecorder) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if err := rt.sendGuard("IngestWireFrom"); err != nil {
		return err
	}
	if rec != nil {
		rt.tapMu.Lock()
		defer rt.tapMu.Unlock()
	}
	for _, f := range faults {
		rt.dlq.add(f)
	}
	if len(elems) > 0 {
		if err := rt.sendBatchLocked(streamName, elems); err != nil {
			return err
		}
	}
	rt.commitOffset(source, offset)
	if rec != nil {
		if raw, from := rec.pending(offset); len(raw) > 0 {
			rt.tap(source, raw, from, offset)
		}
		rec.release(offset)
	}
	return nil
}

// tapRecorder wraps a wire-ingest reader, retaining every byte read
// until the commit that covers it fires the tap. The retained window is
// bounded by the ingest batch size plus one frame: release trims it at
// every commit.
type tapRecorder struct {
	r    io.Reader
	buf  []byte
	base int64 // wire offset of buf[0]
	mark int64 // bytes below mark have been handed to the tap
}

func (t *tapRecorder) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 {
		t.buf = append(t.buf, p[:n]...)
	}
	return n, err
}

// pending returns the raw bytes in [mark, off) and their start offset.
// The slice is valid until release.
func (t *tapRecorder) pending(off int64) ([]byte, int64) {
	return t.buf[t.mark-t.base : off-t.base], t.mark
}

// release marks everything below off as committed and trims the buffer.
func (t *tapRecorder) release(off int64) {
	t.buf = append(t.buf[:0], t.buf[off-t.base:]...)
	t.base = off
	t.mark = off
}
