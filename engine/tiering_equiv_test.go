package engine_test

// Adaptive-state-tiering equivalence suite (ISSUE 8): two-tier join
// state (ColdAfter) and live skew-driven repartitioning are performance
// levers, never semantic ones. Every test pins the same claim shape —
// the tiered run, the live-split run, and the crash-recovered run with
// frozen segments must be element-for-element identical to the plain
// reference — and the watcher test pins the policy half: sustained
// single-replica pressure on a skewed feed actually triggers a split.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"punctsafe/engine"
	"punctsafe/internal/faultinject"
	"punctsafe/stream"
	"punctsafe/workload"
)

// runTiered mirrors runRuntime's batched pass with arbitrary Options
// layered on top (ColdAfter, Partitions, pressure limits), plus optional
// manual partition splits at element boundaries.
func runTiered(t *testing.T, policy engine.ErrorPolicy, feed []faultinject.Item, opts engine.Options, splitAt map[int]int) runOutcome {
	t.Helper()
	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	var out runOutcome
	opts.EnforcePromises = true
	opts.OnPunct = func(p stream.Punctuation) {
		out.puncts = append(out.puncts, p.String())
	}
	reg, err := d.Register("q0", workload.AuctionQuery(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rt := d.RunSharded(engine.RuntimeOptions{OnError: policy})
	splitPoints := make([]int, 0, len(splitAt))
	for at := range splitAt {
		splitPoints = append(splitPoints, at)
	}
	sort.Ints(splitPoints)
	for start := 0; start < len(feed); {
		// Batch boundaries need not land exactly on a requested index, so
		// trigger each split on the first boundary at or past it.
		for len(splitPoints) > 0 && start >= splitPoints[0] {
			hot := splitAt[splitPoints[0]]
			splitPoints = splitPoints[1:]
			if err := rt.SplitPartition("q0", hot); err != nil {
				t.Fatalf("SplitPartition(%d) at element %d: %v", hot, start, err)
			}
		}
		end := start + 1
		for end < len(feed) && feed[end].Stream == feed[start].Stream {
			end++
		}
		elems := make([]stream.Element, 0, end-start)
		for _, it := range feed[start:end] {
			elems = append(elems, it.Elem)
		}
		if err := rt.SendBatch(feed[start].Stream, elems); err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
		start = end
	}
	rt.Close()
	out.err = rt.Wait()
	for _, r := range reg.Results {
		out.results = append(out.results, r.String())
	}
	out.dl = rt.DeadLetters()
	if want := opts.Partitions + len(splitAt); len(splitAt) > 0 && reg.Partitions() != want {
		t.Fatalf("query runs %d partitions after %d splits, want %d", reg.Partitions(), len(splitAt), want)
	}
	return out
}

// TestTieredRuntimeBisimulation: for every (workload × policy ×
// ColdAfter) cell — and the partitioned+tiered combination — the tiered
// pass must be observationally identical to the all-hot batched pass.
func TestTieredRuntimeBisimulation(t *testing.T) {
	policies := map[string]engine.ErrorPolicy{
		"fail":       engine.Fail,
		"drop":       engine.Drop,
		"quarantine": engine.Quarantine,
	}
	for wname, feed := range batchWorkloads(t) {
		for pname, policy := range policies {
			want := runRuntime(t, policy, feed, true)
			for _, coldAfter := range []uint64{1, 16} {
				t.Run(fmt.Sprintf("%s/%s/cold%d", wname, pname, coldAfter), func(t *testing.T) {
					got := runTiered(t, policy, feed, engine.Options{ColdAfter: coldAfter}, nil)
					requireSameOutcome(t, want, got)
				})
				t.Run(fmt.Sprintf("%s/%s/cold%d/p3", wname, pname, coldAfter), func(t *testing.T) {
					got := runTiered(t, policy, feed, engine.Options{ColdAfter: coldAfter, Partitions: 3}, nil)
					requireSameOutcome(t, want, got)
				})
			}
		}
	}
}

// skewedFeed is the Zipfian auction workload: a few heavy itemids soak
// up most bids, so hash-partitioned replicas inherit the key skew.
func skewedFeed(punctuate bool) []faultinject.Item {
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 60, MaxBidsPerItem: 6, OpenWindow: 4, Skew: 1.1,
		PunctuateItems: punctuate, PunctuateClose: punctuate, Seed: 17,
	})
	feed := make([]faultinject.Item, len(inputs))
	for i, in := range inputs {
		feed[i] = faultinject.Item(in)
	}
	return feed
}

// TestLiveSplitRuntimeEquivalence: manual SplitPartition calls at fixed
// element boundaries — mid-feed, on a skewed workload, with cold
// segments present — must not change a single delivered element
// relative to the single-tree run.
func TestLiveSplitRuntimeEquivalence(t *testing.T) {
	feed := skewedFeed(true)
	want := runRuntime(t, engine.Fail, feed, true)
	if len(want.results) == 0 {
		t.Fatal("skewed feed produced no results; the equivalence check is vacuous")
	}
	third := len(feed) / 3
	got := runTiered(t, engine.Fail, feed,
		engine.Options{Partitions: 2, ColdAfter: 8},
		map[int]int{third: 0, 2 * third: 1})
	requireSameOutcome(t, want, got)
}

// TestSplitWatcherSplitsHotReplica pins the policy loop end to end: a
// skewed, unpunctuated feed drives one replica over its soft state
// limit, purging cannot relieve it, and the armed watcher live-splits
// the hot replica — while the delivered results stay exactly those of
// the single-tree run.
func TestSplitWatcherSplitsHotReplica(t *testing.T) {
	feed := skewedFeed(false)
	want := runRuntime(t, engine.Fail, feed, true)

	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	events := make(chan engine.RepartitionEvent, 8)
	reg, err := d.Register("q0", workload.AuctionQuery(), engine.Options{
		EnforcePromises:    true,
		Partitions:         2,
		ColdAfter:          32,
		SoftStateLimit:     120,
		MaxPartitionSplits: 2,
		OnRepartition: func(ev engine.RepartitionEvent) {
			select {
			case events <- ev:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := d.RunSharded(engine.RuntimeOptions{OnError: engine.Fail})
	for _, it := range feed {
		if err := rt.Send(it.Stream, it.Elem); err != nil {
			t.Fatal(err)
		}
	}
	// The pressure event is deterministic (a replica crossed the soft
	// limit while feeding); the watcher's split is asynchronous, so wait
	// for its verdict before closing input.
	select {
	case ev := <-events:
		if ev.Err != nil {
			t.Fatalf("watcher split refused: %v", ev.Err)
		}
		if ev.Query != "q0" || ev.Parts != 3 || ev.New != 2 {
			t.Fatalf("unexpected repartition event %+v", ev)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no repartition event: the skewed feed never tripped the watcher")
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if reg.Partitions() < 3 {
		t.Fatalf("query still runs %d partitions; the watcher split did not install", reg.Partitions())
	}
	got := make([]string, len(reg.Results))
	for i, r := range reg.Results {
		got[i] = r.String()
	}
	if len(got) != len(want.results) {
		t.Fatalf("watcher-split run delivered %d results, single tree %d", len(got), len(want.results))
	}
	for i := range want.results {
		if got[i] != want.results[i] {
			t.Fatalf("result %d diverges after the watcher split:\n  split run:   %s\n  single tree: %s", i, got[i], want.results[i])
		}
	}
}

// TestCrashRecoveryEquivalenceTiered: the crash matrix with cold
// segments present — frozen state, freeze watermarks, and the compacted
// segments themselves must snapshot and restore to exact observational
// equivalence (including the full stats, freeze counters included).
func TestCrashRecoveryEquivalenceTiered(t *testing.T) {
	feed := equivChaosFeed()
	configs := []engine.Options{
		{ColdAfter: 5},
		{ColdAfter: 3, PurgeBatch: 3},
		{ColdAfter: 4, Partitions: 3},
	}
	for ci, opts := range configs {
		want := referenceRun(t, engine.Quarantine, opts, feed, "q0")
		for _, k := range faultinject.CrashPoints(len(feed), 2, int64(200+ci)) {
			got := crashRun(t, engine.Quarantine, opts, feed, k, "q0")
			compareObservations(t, fmt.Sprintf("tiered config %d crash at %d", ci, k), got, want)
		}
	}
}

// TestCrashDuringLiveSplit: a kill landing while a live split is in
// flight must neither deadlock nor corrupt recovery — the restore from
// the pre-split checkpoint replays to exact equivalence whatever the
// split had or had not done when the crash hit.
func TestCrashDuringLiveSplit(t *testing.T) {
	feed := skewedFeed(true)
	opts := engine.Options{Partitions: 2, ColdAfter: 4}
	want := referenceRun(t, engine.Quarantine, opts, feed, "q0")
	for _, k := range faultinject.CrashPoints(len(feed), 3, 77) {
		got := crashRunDuringSplit(t, engine.Quarantine, opts, feed, k)
		compareObservations(t, fmt.Sprintf("mid-split crash at %d", k), got, want)
	}
}

// crashRunDuringSplit is crashRun with the kill racing a live split: the
// split launches right before Kill, so the crash lands somewhere inside
// the split protocol (barrier travelling, merger splitting, or just
// after) depending on scheduling — recovery must hold on every
// interleaving.
func crashRunDuringSplit(t *testing.T, policy engine.ErrorPolicy, opts engine.Options, feed []faultinject.Item, k int) runObservation {
	t.Helper()
	d, regs := newEquivDSMS(t, opts, "q0")
	rt := d.RunSharded(engine.RuntimeOptions{OnError: policy})
	for i := 0; i < k; i++ {
		if err := rt.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := rt.Checkpoint(&snap); err != nil {
		t.Fatalf("checkpoint at %d: %v", k, err)
	}
	prefix := map[string][]string{"q0": append([]string(nil), orderedResults(regs[0])...)}
	extra := k + 25
	if extra > len(feed) {
		extra = len(feed)
	}
	for i := k; i < extra; i++ {
		if err := rt.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	splitDone := make(chan error, 1)
	go func() { splitDone <- rt.SplitPartition("q0", 0) }()
	rt.Kill()
	rt.Close()
	if err := rt.Wait(); !errors.Is(err, engine.ErrKilled) {
		t.Fatalf("killed runtime Wait = %v, want ErrKilled", err)
	}
	// The split either completed before the kill, was answered by the
	// kill path, or observed the already-closed runtime — any outcome is
	// legal in the race, but the goroutine must unwind promptly.
	select {
	case <-splitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("split blocked across the kill")
	}

	d2, regs2 := newEquivDSMS(t, opts, "q0")
	rt2, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), engine.RuntimeOptions{OnError: policy})
	if err != nil {
		t.Fatalf("restore of checkpoint at %d: %v", k, err)
	}
	for i := int(rt2.ResumeOffset("feed")); i < len(feed); i++ {
		if err := rt2.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
	return observe(t, rt2, regs2, prefix)
}

// TestCheckpointAfterSplitRestores: a checkpoint taken after a live
// split carries the grown owner table and the extra replica; restoring
// it into a register built with the original partition count must grow
// the replica set and continue to exact equivalence — against a
// reference that split at the same element boundary.
func TestCheckpointAfterSplitRestores(t *testing.T) {
	feed := skewedFeed(true)
	opts := engine.Options{Partitions: 2, ColdAfter: 4}
	splitK := len(feed) / 3
	ckptK := len(feed) / 2

	// Reference: uninterrupted run with the same manual split.
	d, regs := newEquivDSMS(t, opts, "q0")
	rt := d.RunSharded(engine.RuntimeOptions{OnError: engine.Quarantine})
	for i, it := range feed {
		if i == splitK {
			if err := rt.SplitPartition("q0", 0); err != nil {
				t.Fatalf("reference split: %v", err)
			}
		}
		if err := rt.SendAt("feed", it.Stream, it.Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	want := observe(t, rt, regs, nil)

	// Crash run: split, checkpoint the grown runtime, kill, restore into
	// a fresh 2-partition register, resume.
	d1, regs1 := newEquivDSMS(t, opts, "q0")
	rt1 := d1.RunSharded(engine.RuntimeOptions{OnError: engine.Quarantine})
	for i := 0; i < ckptK; i++ {
		if i == splitK {
			if err := rt1.SplitPartition("q0", 0); err != nil {
				t.Fatalf("split: %v", err)
			}
		}
		if err := rt1.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := rt1.Checkpoint(&snap); err != nil {
		t.Fatalf("post-split checkpoint: %v", err)
	}
	prefix := map[string][]string{"q0": append([]string(nil), orderedResults(regs1[0])...)}
	rt1.Kill()
	rt1.Close()
	if err := rt1.Wait(); !errors.Is(err, engine.ErrKilled) {
		t.Fatalf("killed runtime Wait = %v, want ErrKilled", err)
	}

	d2, regs2 := newEquivDSMS(t, opts, "q0")
	rt2, err := d2.RestoreRuntime(bytes.NewReader(snap.Bytes()), engine.RuntimeOptions{OnError: engine.Quarantine})
	if err != nil {
		t.Fatalf("restore of post-split checkpoint: %v", err)
	}
	if got := regs2[0].Partitions(); got != 3 {
		t.Fatalf("restored query runs %d partitions, want the snapshot's 3", got)
	}
	for i := int(rt2.ResumeOffset("feed")); i < len(feed); i++ {
		if err := rt2.SendAt("feed", feed[i].Stream, feed[i].Elem, int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	rt2.Close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}
	compareObservations(t, "post-split restore", observe(t, rt2, regs2, prefix), want)
}
