package engine

import (
	"fmt"

	"punctsafe/exec"
	"punctsafe/stream"
	"punctsafe/streamsql"
)

// RegisterSQL runs a streamsql script against the DSMS: stream
// declarations register their schemas, DECLARE SCHEME statements add to
// the query register's scheme set, and each SELECT statement is admitted
// as a continuous query named <prefix>#<n> — with its literal filters
// applied as selections in front of the join and its select list applied
// as a projection over the join output. Unsafe queries are rejected, as
// in Register.
func (d *DSMS) RegisterSQL(prefix, src string, opts Options) ([]*Registered, error) {
	script, err := streamsql.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, s := range script.Schemes.All() {
		d.RegisterScheme(s)
	}
	compiled, err := streamsql.Compile(script)
	if err != nil {
		return nil, err
	}
	var regs []*Registered
	for i, cq := range compiled {
		name := fmt.Sprintf("%s#%d", prefix, i+1)
		reg, err := d.registerCompiled(name, cq, opts)
		if err != nil {
			// Roll back the queries this call already registered so a
			// failing script leaves the DSMS unchanged.
			for _, r := range regs {
				d.Unregister(r.Name)
			}
			return nil, fmt.Errorf("engine: %s: %w", name, err)
		}
		regs = append(regs, reg)
	}
	return regs, nil
}

func (d *DSMS) registerCompiled(name string, cq *streamsql.CompiledQuery, opts Options) (*Registered, error) {
	// Build the projection over the join output, if any.
	var project *exec.Project
	userOnResult := opts.OnResult

	reg, err := d.Register(name, cq.Query, optsWithResultHook(opts, nil))
	if err != nil {
		return nil, err
	}
	if len(cq.Projection) > 0 {
		project, err = exec.NewProject(reg.OutputSchema(), cq.Projection...)
		if err != nil {
			d.Unregister(name)
			return nil, err
		}
		reg.Output = project.OutputSchema()
	} else {
		reg.Output = reg.OutputSchema()
	}

	// Result hook: project, then deliver.
	reg.onResult = func(t stream.Tuple) {
		if project != nil {
			outs, err := project.Push(stream.TupleElement(t))
			if err != nil || len(outs) == 0 {
				return
			}
			t = outs[0].Tuple()
		}
		if userOnResult != nil {
			userOnResult(t)
		} else {
			reg.Results = append(reg.Results, t)
		}
	}

	// Per-stream literal filters, evaluated before elements reach the
	// plan (tuples failing a filter are dropped; punctuations always
	// pass — the Select operator's rule).
	if len(cq.Filters) > 0 {
		filters := make(map[int][]streamsql.CompiledFilter)
		for _, f := range cq.Filters {
			filters[f.Stream] = append(filters[f.Stream], f)
		}
		reg.filter = func(input int, t stream.Tuple) bool {
			for _, f := range filters[input] {
				if !t.Values[f.Attr].Equal(f.Value) {
					return false
				}
			}
			return true
		}
	}
	return reg, nil
}

// optsWithResultHook strips the user's OnResult (the compiled wrapper
// re-installs it around the projection).
func optsWithResultHook(opts Options, hook func(stream.Tuple)) Options {
	opts.OnResult = hook
	return opts
}
