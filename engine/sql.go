package engine

import (
	"fmt"

	"punctsafe/exec"
	"punctsafe/stream"
	"punctsafe/streamsql"
)

// RegisterSQL runs a streamsql script against the DSMS: stream
// declarations register their schemas, DECLARE SCHEME statements add to
// the query register's scheme set, and each SELECT statement is admitted
// as a continuous query named <prefix>#<n> — with its literal filters
// applied as selections in front of the join and its select list applied
// as a projection over the join output. Unsafe queries are rejected, as
// in Register. Under Options.Share the literal filters are canonicalized
// into the share tag, so two SQL views share one physical tree exactly
// when their joins AND their filters agree (projections stay per-view —
// they live on the delivery side and never block sharing).
func (d *DSMS) RegisterSQL(prefix, src string, opts Options) ([]*Registered, error) {
	compiled, err := compileSQL(d, src)
	if err != nil {
		return nil, err
	}
	var regs []*Registered
	for i, cq := range compiled {
		name := fmt.Sprintf("%s#%d", prefix, i+1)
		reg, err := d.registerCompiled(name, cq, opts)
		if err != nil {
			// Roll back the queries this call already registered so a
			// failing script leaves the DSMS unchanged.
			for _, r := range regs {
				d.Unregister(r.Name)
			}
			return nil, fmt.Errorf("engine: %s: %w", name, err)
		}
		regs = append(regs, reg)
	}
	return regs, nil
}

// compileSQL parses a script, registers its declared schemes on the
// DSMS, and compiles its SELECT statements.
func compileSQL(d *DSMS, src string) ([]*streamsql.CompiledQuery, error) {
	script, err := streamsql.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, s := range script.Schemes.All() {
		d.RegisterScheme(s)
	}
	return streamsql.Compile(script)
}

func (d *DSMS) registerCompiled(name string, cq *streamsql.CompiledQuery, opts Options) (*Registered, error) {
	reg, err := d.Register(name, cq.Query, sqlExecOpts(cq, opts))
	if err != nil {
		return nil, err
	}
	if err := wireCompiled(reg, cq, opts.OnResult); err != nil {
		d.Unregister(name)
		return nil, err
	}
	return reg, nil
}

// attachCompiled is registerCompiled on a running runtime: the delivery
// wiring happens inside Attach's exclusive lock hold, before the query
// is published to the router or its shard, so no producer or worker ever
// observes a half-wired registration.
func (rt *Runtime) attachCompiled(name string, cq *streamsql.CompiledQuery, opts Options) (*Registered, error) {
	return rt.attach(name, cq.Query, sqlExecOpts(cq, opts), func(reg *Registered) error {
		return wireCompiled(reg, cq, opts.OnResult)
	})
}

// sqlExecOpts derives the executor-side options for a compiled SQL
// query: the user's OnResult is stripped (the compiled wrapper
// re-installs it around the projection), and under Share the canonical
// filter key joins the share tag — filters select which tuples enter the
// tree, so they are part of the physical tree's identity.
func sqlExecOpts(cq *streamsql.CompiledQuery, opts Options) Options {
	opts.OnResult = nil
	if opts.Share {
		opts.ShareTag = "sql:" + cq.FilterKey() + "|" + opts.ShareTag
	}
	return opts
}

// wireCompiled installs a compiled query's delivery-side behavior on its
// registration: the projection over the join output, the result hook,
// and the per-stream literal filters. Filters are keyed by the
// registration's live stream indices (reg.streamInput), which for a
// share-group follower are the DRIVER's indices — the index space the
// router actually routes in.
func wireCompiled(reg *Registered, cq *streamsql.CompiledQuery, userOnResult func(stream.Tuple)) error {
	var project *exec.Project
	if len(cq.Projection) > 0 {
		var err error
		project, err = exec.NewProject(reg.OutputSchema(), cq.Projection...)
		if err != nil {
			return err
		}
		reg.Output = project.OutputSchema()
	} else {
		reg.Output = reg.OutputSchema()
	}

	// Result hook: project, then deliver.
	reg.onResult = func(t stream.Tuple) {
		if project != nil {
			outs, err := project.Push(stream.TupleElement(t))
			if err != nil || len(outs) == 0 {
				return
			}
			t = outs[0].Tuple()
		}
		if userOnResult != nil {
			userOnResult(t)
		} else {
			reg.Results = append(reg.Results, t)
		}
	}

	// Per-stream literal filters, evaluated before elements reach the
	// plan (tuples failing a filter are dropped; punctuations always
	// pass — the Select operator's rule).
	if len(cq.Filters) > 0 {
		filters := make(map[int][]streamsql.CompiledFilter)
		for _, f := range cq.Filters {
			input := reg.streamInput[cq.Query.Stream(f.Stream).Name()]
			filters[input] = append(filters[input], f)
		}
		reg.filter = func(input int, t stream.Tuple) bool {
			for _, f := range filters[input] {
				if !t.Values[f.Attr].Equal(f.Value) {
					return false
				}
			}
			return true
		}
	}
	return nil
}
