package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"punctsafe/stream"
)

// Parallel wire ingestion: the decode half of IngestWire fanned out over
// multiple cores. One splitter goroutine owns the WireReader and does
// only the cheap, inherently serial work — framing, stream dispatch,
// lenient skip-and-resync — while frame payloads are decoded by a pool
// of workers (stream.Codec is stateless, so decoding is embarrassingly
// parallel). A bounded assembly stage on the caller's goroutine consumes
// the decoded batches strictly in wire order, so per-source frame order,
// fault order, and the offset-exact checkpoint semantics of the
// sequential path are all preserved; only the decode CPU time leaves the
// critical path.
//
//	splitter ──work──▶ decode workers
//	   │                    │ (per-batch result channel)
//	   └──────order──▶ assembly (caller) ──▶ SendBatch / ingestCommit
//
// The splitter pushes every batch to the workers and, in the same order,
// to the bounded order queue; the assembler takes batches from the order
// queue and waits on each batch's own result channel, which restores the
// wire order no matter how the workers interleaved.

// wireParallelBatch caps how many contiguous same-stream frames one
// decode batch carries (the routing granularity, matching the
// sequential ingest's batching).
const wireParallelBatch = 128

// wireFrameSpan locates one raw frame inside its batch buffer.
type wireFrameSpan struct {
	frameStart   int   // frame bytes start in buf (header included)
	payloadStart int   // payload bytes start in buf
	end          int   // frame end in buf
	wireEnd      int64 // absolute wire offset just past this frame
}

// wireRawBatch is one splitter hand-off: a run of contiguous same-stream
// raw frames copied out of the reader's window, or the terminal sentinel
// (last set) carrying the final offset and the reader's terminal error.
type wireRawBatch struct {
	ws     wireStream
	buf    []byte
	frames []wireFrameSpan
	pre    []WireFault // framing faults preceding this batch, wire order
	end    int64       // wire offset after the last frame (final offset for the sentinel)
	err    error       // sentinel only: terminal reader error (nil at clean EOF)
	last   bool
	res    chan wireDecoded
}

// wireDecoded is a worker's reply for one batch.
type wireDecoded struct {
	elems  []stream.Element
	faults []WireFault // payload-corrupt frames skipped under Lenient, wire order
	err    error       // strict mode: terminal decode error at frame len(elems)
	endOK  int64       // wire offset after the last frame accounted for (0 if none)
}

// decodeRawBatch decodes a batch's frames. Under lenient a corrupt
// payload becomes a WireFault (the frame's boundary is known, so it
// skips whole); under strict it truncates the batch with the error.
func decodeRawBatch(b *wireRawBatch, lenient bool) wireDecoded {
	d := wireDecoded{elems: make([]stream.Element, 0, len(b.frames))}
	for _, span := range b.frames {
		e, err := decodeWireFrame(b.ws, b.buf[span.payloadStart:span.end])
		if err == nil {
			d.elems = append(d.elems, e)
			d.endOK = span.wireEnd
			continue
		}
		if !lenient {
			d.err = fmt.Errorf("engine: wire: %w", err)
			return d
		}
		frame := append([]byte(nil), b.buf[span.frameStart:span.end]...)
		d.faults = append(d.faults, WireFault{
			Stream:  b.ws.name,
			Offset:  span.wireEnd - int64(span.end-span.frameStart),
			Skipped: span.end - span.frameStart,
			Frame:   frame,
			Err:     fmt.Errorf("engine: wire: %w", err),
		})
		d.endOK = span.wireEnd
	}
	return d
}

// runWirePipeline drives the splitter/worker/assembly pipeline over wr.
// sink runs on the caller's goroutine, once per batch in wire order (d
// is nil for the terminal sentinel); its first non-nil error cancels the
// pipeline and is returned after all pipeline goroutines have exited, so
// wr and its underlying reader are never touched after return.
func runWirePipeline(wr *WireReader, workers int, sink func(b *wireRawBatch, d *wireDecoded) error) error {
	work := make(chan *wireRawBatch, workers*2)
	order := make(chan *wireRawBatch, workers*2)
	cancel := make(chan struct{})
	var wg sync.WaitGroup

	// Lenient framing faults surface inside readRaw; collect them in
	// order (splitter-goroutine-local) and ride them to the assembler on
	// the next batch, preserving their wire position.
	var pending []WireFault
	lenient := wr.lenient
	if lenient {
		wr.onFault = func(f WireFault) { pending = append(pending, f) }
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(order)
		defer close(work)
		var b *wireRawBatch
		flush := func() bool {
			if b == nil {
				return true
			}
			sb := b
			b = nil
			select {
			case order <- sb:
			case <-cancel:
				return false
			}
			select {
			case work <- sb:
			case <-cancel:
				return false
			}
			return true
		}
		for {
			ws, payload, frameLen, err := wr.readRaw()
			if err != nil {
				if !flush() {
					return
				}
				term := err
				if term == io.EOF {
					term = nil
				}
				s := &wireRawBatch{pre: pending, end: wr.Offset(), err: term, last: true}
				pending = nil
				select {
				case order <- s:
				case <-cancel:
				}
				return
			}
			// A stream change, the size cap, or an interleaved framing
			// fault all end the current batch (faults ride as the next
			// batch's prefix so their wire order survives).
			if b != nil && (b.ws.name != ws.name || len(b.frames) >= wireParallelBatch || len(pending) > 0) {
				if !flush() {
					return
				}
			}
			if b == nil {
				b = &wireRawBatch{ws: ws, pre: pending, res: make(chan wireDecoded, 1)}
				pending = nil
			}
			fs := len(b.buf)
			b.buf = append(b.buf, wr.buf[wr.pos:wr.pos+frameLen]...)
			wr.pos += frameLen
			b.frames = append(b.frames, wireFrameSpan{
				frameStart:   fs,
				payloadStart: fs + frameLen - len(payload),
				end:          fs + frameLen,
				wireEnd:      wr.Offset(),
			})
			b.end = wr.Offset()
		}
	}()

	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				// res has capacity 1 and exactly one consumer, so this
				// never blocks even if the assembler bailed early.
				b.res <- decodeRawBatch(b, lenient)
			}
		}()
	}

	var sinkErr error
	for b := range order {
		if sinkErr != nil {
			continue // drain so the splitter's sends unwind
		}
		var d *wireDecoded
		if !b.last {
			dd := <-b.res
			d = &dd
		}
		if err := sink(b, d); err != nil {
			sinkErr = err
			close(cancel)
		}
	}
	wg.Wait()
	return sinkErr
}

// wireWorkers normalizes a worker-count knob: <= 0 selects GOMAXPROCS.
func wireWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// IngestWireParallel is IngestWire with frame decoding fanned out over
// `workers` goroutines (<= 0 selects GOMAXPROCS; 1 falls back to the
// sequential path). Elements are routed in wire order with the same
// batching, leniency, and dead-letter semantics as IngestWire — only the
// decode CPU time is parallelized.
func (rt *Runtime) IngestWireParallel(r io.Reader, workers int, schemas ...*stream.Schema) (int, error) {
	if workers = wireWorkers(workers); workers == 1 {
		return rt.IngestWire(r, schemas...)
	}
	wr := NewWireReader(r, schemas...)
	if rt.policy != Fail {
		wr.Lenient(nil) // faults are collected in wire order by the pipeline
	}
	count := 0
	err := runWirePipeline(wr, workers, func(b *wireRawBatch, d *wireDecoded) error {
		for _, f := range b.pre {
			rt.dlq.add(DeadLetter{Stream: f.Stream, Frame: f.Frame, Err: f.Err})
		}
		if b.last {
			return b.err
		}
		for _, f := range d.faults {
			rt.dlq.add(DeadLetter{Stream: f.Stream, Frame: f.Frame, Err: f.Err})
		}
		if len(d.elems) > 0 {
			if err := rt.SendBatch(b.ws.name, d.elems); err != nil {
				return err
			}
			count += len(d.elems)
		}
		return d.err
	})
	return count, err
}

// IngestWireFromParallel is IngestWireFrom with parallel frame decoding.
// The assembly stage commits offsets batch-by-batch in wire order, so
// the offset-exact resume contract is untouched: a checkpoint taken
// mid-ingest resumes exactly after the last frame whose batch was
// committed, with pending fault regions committed only once the offset
// passes them.
func (rt *Runtime) IngestWireFromParallel(source string, open func(offset int64) (io.Reader, error), workers int, schemas ...*stream.Schema) (int, error) {
	if workers = wireWorkers(workers); workers == 1 {
		return rt.IngestWireFrom(source, open, schemas...)
	}
	start := rt.ResumeOffset(source)
	rr := &RetryReader{Open: open, StartOffset: start}
	wr := NewWireReader(rr, schemas...)
	wr.base = start
	if rt.policy != Fail {
		wr.Lenient(nil)
	}
	var pendingFaults []WireFault
	count := 0
	lastEnd := start
	commit := func(streamName string, elems []stream.Element, off int64) error {
		var ready []DeadLetter
		rest := pendingFaults[:0]
		for _, f := range pendingFaults {
			if f.Offset+int64(f.Skipped) <= off {
				ready = append(ready, DeadLetter{Stream: f.Stream, Frame: f.Frame, Err: f.Err})
			} else {
				rest = append(rest, f)
			}
		}
		pendingFaults = rest
		if len(ready) == 0 && len(elems) == 0 {
			return nil
		}
		if err := rt.ingestCommit(source, streamName, elems, ready, off, nil); err != nil {
			return err
		}
		count += len(elems)
		return nil
	}
	err := runWirePipeline(wr, workers, func(b *wireRawBatch, d *wireDecoded) error {
		pendingFaults = append(pendingFaults, b.pre...)
		if b.last {
			if b.err != nil {
				// Commit only through the last routed frame; regions
				// beyond it stay uncommitted for the retry, exactly as
				// the sequential path leaves them.
				if cerr := commit("", nil, lastEnd); cerr != nil {
					return cerr
				}
				return b.err
			}
			// Clean EOF consumes the whole wire: trailing skipped regions
			// commit with the final offset.
			return commit("", nil, b.end)
		}
		pendingFaults = append(pendingFaults, d.faults...)
		off := b.end
		if d.err != nil {
			off = lastEnd
			if d.endOK > off {
				off = d.endOK
			}
		}
		if cerr := commit(b.ws.name, d.elems, off); cerr != nil {
			return cerr
		}
		lastEnd = off
		return d.err
	})
	return count, err
}
