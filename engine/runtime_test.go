package engine

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"punctsafe/stream"
	"punctsafe/workload"
)

// auctionElems builds the closed per-item element group feeding the
// auction join: the item, its bids, and the closing punctuations on both
// streams. Groups for distinct ids are join-independent, so any
// interleaving of whole groups yields the same result multiset.
func auctionElems(id int64, bids int) []TaggedElement {
	var out []TaggedElement
	out = append(out, TaggedElement{"item", stream.TupleElement(stream.NewTuple(
		stream.Int(1), stream.Int(id), stream.Str("x"), stream.Float(1)))})
	for b := 0; b < bids; b++ {
		out = append(out, TaggedElement{"bid", stream.TupleElement(stream.NewTuple(
			stream.Int(int64(b)), stream.Int(id), stream.Float(float64(b))))})
	}
	out = append(out, TaggedElement{"bid", stream.PunctElement(stream.MustPunctuation(
		stream.Wildcard(), stream.Const(stream.Int(id)), stream.Wildcard()))})
	out = append(out, TaggedElement{"item", stream.PunctElement(stream.MustPunctuation(
		stream.Wildcard(), stream.Const(stream.Int(id)), stream.Wildcard(), stream.Wildcard()))})
	return out
}

// newAuctionDSMS registers the auction schemes and n copies of the
// auction query named q0..q<n-1>.
func newAuctionDSMS(t testing.TB, n int) (*DSMS, []*Registered) {
	t.Helper()
	d := New()
	d.RegisterScheme(stream.MustScheme("item", false, true, false, false))
	d.RegisterScheme(stream.MustScheme("bid", false, true, false))
	regs := make([]*Registered, n)
	for i := range regs {
		reg, err := d.Register(fmt.Sprintf("q%d", i), workload.AuctionQuery(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = reg
	}
	return d, regs
}

func sortedResults(reg *Registered) []string {
	out := make([]string, len(reg.Results))
	for i, r := range reg.Results {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestShardedStressMatchesSequential is the concurrency stress test: many
// producer goroutines feed several registered queries through the sharded
// runtime; each query's merged result multiset must equal a sequential
// reference run's. Run under -race this also exercises the stats/result
// confinement of the shard workers.
func TestShardedStressMatchesSequential(t *testing.T) {
	const producers = 8
	const itemsPer = 40
	const bidsPer = 5
	const queries = 3

	// Sequential reference: same element groups, producer-major order.
	ref, refRegs := newAuctionDSMS(t, queries)
	for p := 0; p < producers; p++ {
		for i := 0; i < itemsPer; i++ {
			for _, te := range auctionElems(int64(p*itemsPer+i), bidsPer) {
				if err := ref.Push(te.Stream, te.Elem); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}

	d, regs := newAuctionDSMS(t, queries)
	rt := d.RunSharded(RuntimeOptions{Buffer: 8})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < itemsPer; i++ {
				for _, te := range auctionElems(int64(p*itemsPer+i), bidsPer) {
					if err := rt.Send(te.Stream, te.Elem); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	want := producers * itemsPer * bidsPer
	for i, reg := range regs {
		if got := len(reg.Results); got != want {
			t.Fatalf("query %d: results = %d, want %d", i, got, want)
		}
		if got, wantRef := sortedResults(reg), sortedResults(refRegs[i]); !equalStrings(got, wantRef) {
			t.Fatalf("query %d: sharded result multiset differs from sequential reference", i)
		}
		if reg.Tree.TotalState() != 0 {
			t.Fatalf("query %d: state = %d, want 0", i, reg.Tree.TotalState())
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedErrorPropagates: a malformed element fails only its shard;
// the error surfaces immediately from Err, FailFast Sends start
// returning it, the failed shard drains without wedging producers, and
// healthy shards keep delivering.
func TestShardedErrorPropagates(t *testing.T) {
	d, regs := newAuctionDSMS(t, 2)
	rt := d.RunSharded(RuntimeOptions{Buffer: 1, FailFast: true})

	// Wrong arity for the item stream: every shard consuming "item" fails.
	bad := stream.TupleElement(stream.NewTuple(stream.Int(1)))
	if err := rt.Send("item", bad); err != nil {
		t.Fatalf("routing itself must not fail: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("Err() never surfaced the shard failure")
		}
		time.Sleep(time.Millisecond)
	}
	// FailFast: Send now reports the first error instead of queueing.
	if err := rt.Send("item", bad); err == nil {
		t.Fatal("FailFast Send should return the runtime error")
	}
	rt.Close()
	if err := rt.Wait(); err == nil {
		t.Fatal("Wait must return the first error")
	}
	_ = regs
}

// TestShardedDrainKeepsFeeding: without FailFast a shard failure drains
// quietly — producers keep sending far past the failed element and never
// block, and the error still comes out of Wait.
func TestShardedDrainKeepsFeeding(t *testing.T) {
	d, _ := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{Buffer: 1})
	bad := stream.TupleElement(stream.NewTuple(stream.Int(1)))
	for i := 0; i < 200; i++ {
		if err := rt.Send("item", bad); err != nil {
			t.Fatal(err)
		}
	}
	rt.Close()
	if err := rt.Wait(); err == nil {
		t.Fatal("expected the malformed element's error")
	}
	if err := rt.Send("item", bad); err == nil {
		t.Fatal("Send after Close must error")
	}
}

// TestShardedStatsSnapshot: the mailbox-routed snapshot reflects every
// element enqueued before the request, and the post-drain path reads the
// final counters.
func TestShardedStatsSnapshot(t *testing.T) {
	d, _ := newAuctionDSMS(t, 1)
	rt := d.RunSharded(RuntimeOptions{})
	const items = 30
	const bids = 3
	for i := 0; i < items; i++ {
		for _, te := range auctionElems(int64(i), bids) {
			if err := rt.Send(te.Stream, te.Elem); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats, err := rt.Stats("q0")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("operators = %d", len(stats))
	}
	// The request is queued behind every element sent above, so the
	// snapshot must account for all of them.
	if got, want := stats[0].TuplesIn[0], uint64(items); got != want {
		t.Fatalf("snapshot TuplesIn[item] = %d, want %d", got, want)
	}
	if got, want := stats[0].Results, uint64(items*bids); got != want {
		t.Fatalf("snapshot Results = %d, want %d", got, want)
	}
	// Detached: mutating the snapshot must not touch the live operator.
	stats[0].TuplesIn[0] = 999
	rt.Close()
	after, err := rt.Stats("q0")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after[0].TuplesIn[0], uint64(items); got != want {
		t.Fatalf("post-drain TuplesIn[item] = %d, want %d", got, want)
	}
	if _, err := rt.Stats("nope"); err == nil {
		t.Fatal("Stats of unknown query must fail")
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedWireIngest routes a binary wire feed through the sharded
// runtime and checks it against the sequential IngestWire path.
func TestShardedWireIngest(t *testing.T) {
	itemSchema := workload.AuctionQuery().Stream(0)
	bidSchema := workload.AuctionQuery().Stream(1)
	var buf bytes.Buffer
	ww := NewWireWriter(&buf, itemSchema, bidSchema)
	const items = 25
	for i := 0; i < items; i++ {
		for _, te := range auctionElems(int64(i), 2) {
			if err := ww.Write(te.Stream, te.Elem); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire := buf.Bytes()

	ref, refRegs := newAuctionDSMS(t, 2)
	if _, err := ref.IngestWire(bytes.NewReader(wire), itemSchema, bidSchema); err != nil {
		t.Fatal(err)
	}

	d, regs := newAuctionDSMS(t, 2)
	rt := d.RunSharded(RuntimeOptions{})
	n, err := rt.IngestWire(bytes.NewReader(wire), itemSchema, bidSchema)
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if want := items * 5; n != want {
		t.Fatalf("routed %d elements, want %d", n, want)
	}
	for i := range regs {
		if !equalStrings(sortedResults(regs[i]), sortedResults(refRegs[i])) {
			t.Fatalf("query %d: wire-ingested results differ from sequential path", i)
		}
	}
}

// TestShardedRouting: a query subscribes only to its own streams; shards
// of unrelated queries never see the element.
func TestShardedRouting(t *testing.T) {
	d := New()
	d.RegisterScheme(stream.MustScheme("item", false, true, false, false))
	d.RegisterScheme(stream.MustScheme("bid", false, true, false))
	for _, s := range workload.NetMonSchemes().All() {
		d.RegisterScheme(s)
	}
	auc, err := d.Register("auction", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	net, err := d.Register("netmon", workload.NetMonQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := d.RunSharded(RuntimeOptions{})
	for _, te := range auctionElems(7, 3) {
		if err := rt.Send(te.Stream, te.Elem); err != nil {
			t.Fatal(err)
		}
	}
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(auc.Results) != 3 {
		t.Fatalf("auction results = %d, want 3", len(auc.Results))
	}
	netStats, err := rt.Stats("netmon")
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range netStats {
		for i := range st.TuplesIn {
			if st.TuplesIn[i] != 0 || st.PunctsIn[i] != 0 {
				t.Fatalf("netmon shard saw auction traffic: %v", st)
			}
		}
	}
	_ = net
}
