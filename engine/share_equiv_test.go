package engine_test

// Shared-execution equivalence suite: running N fingerprint-equal views
// on one shared physical tree must be observationally identical — per
// view — to running N independent trees, across every error policy and
// every seeded faultinject workload: same results, same punctuations,
// same dead-letter attribution. Sharing is a performance lever, never a
// semantic one.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"punctsafe/engine"
	"punctsafe/internal/faultinject"
	"punctsafe/stream"
	"punctsafe/workload"
)

const equivViews = 3

// viewOutcome is everything observable per view from one runtime pass.
type viewOutcome struct {
	results []string
	puncts  []string
}

// multiOutcome is one full pass: per-view observations plus the
// runtime-wide error and dead-letter snapshot.
type multiOutcome struct {
	views map[string]*viewOutcome
	err   error
	dl    engine.DeadLetterSnapshot
	trees int
}

// runViews drives equivViews copies of the auction query over the feed,
// either as independent trees or as one shared tree.
func runViews(t *testing.T, policy engine.ErrorPolicy, feed []faultinject.Item, share bool) multiOutcome {
	t.Helper()
	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	out := multiOutcome{views: make(map[string]*viewOutcome, equivViews)}
	regs := make(map[string]*engine.Registered, equivViews)
	for i := 0; i < equivViews; i++ {
		name := fmt.Sprintf("v%d", i)
		vo := &viewOutcome{}
		out.views[name] = vo
		reg, err := d.Register(name, workload.AuctionQuery(), engine.Options{
			EnforcePromises: true,
			Share:           share,
			OnPunct: func(p stream.Punctuation) {
				vo.puncts = append(vo.puncts, p.String())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		regs[name] = reg
	}
	wantTrees := equivViews
	if share {
		wantTrees = 1
	}
	if got := d.PhysicalTrees(); got != wantTrees {
		t.Fatalf("PhysicalTrees = %d, want %d", got, wantTrees)
	}
	rt := d.RunSharded(engine.RuntimeOptions{OnError: policy})
	for _, it := range feed {
		if err := rt.Send(it.Stream, it.Elem); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	rt.Close()
	out.err = rt.Wait()
	for name, reg := range regs {
		for _, r := range reg.Results {
			out.views[name].results = append(out.views[name].results, r.String())
		}
	}
	out.dl = rt.DeadLetters()
	out.trees = d.PhysicalTrees()
	return out
}

// normalizeViewNames rewrites every view name in a string to "vX" so
// error messages are comparable across passes that fail on different
// (concurrently racing) shards of the same offender.
func normalizeViewNames(s string) string {
	for i := 0; i < equivViews; i++ {
		s = strings.ReplaceAll(s, fmt.Sprintf("%q", fmt.Sprintf("v%d", i)), `"vX"`)
	}
	return s
}

// dlKeys flattens retained dead letters into a sorted multiset of
// (query, stream, error) keys — retention order interleaves
// nondeterministically when independent shards quarantine concurrently.
func dlKeys(s engine.DeadLetterSnapshot) []string {
	out := make([]string, len(s.Entries))
	for i, e := range s.Entries {
		errText := ""
		if e.Err != nil {
			errText = normalizeViewNames(e.Err.Error())
		}
		out[i] = e.Query + "|" + e.Stream + "|" + errText
	}
	sort.Strings(out)
	return out
}

// TestSharedExecutionEquivalence: for every (workload × policy) pair,
// the shared pass must match the independent pass view-for-view.
func TestSharedExecutionEquivalence(t *testing.T) {
	policies := map[string]engine.ErrorPolicy{
		"fail":       engine.Fail,
		"drop":       engine.Drop,
		"quarantine": engine.Quarantine,
	}
	for wname, feed := range batchWorkloads(t) {
		for pname, policy := range policies {
			t.Run(wname+"/"+pname, func(t *testing.T) {
				want := runViews(t, policy, feed, false)
				got := runViews(t, policy, feed, true)
				if got.trees != 1 {
					t.Fatalf("shared pass ran %d physical trees, want 1", got.trees)
				}
				for name, wv := range want.views {
					gv := got.views[name]
					if len(gv.results) != len(wv.results) {
						t.Fatalf("view %s: shared pass delivered %d results, independent %d", name, len(gv.results), len(wv.results))
					}
					for i := range wv.results {
						if gv.results[i] != wv.results[i] {
							t.Fatalf("view %s: result %d diverges:\n  shared:      %s\n  independent: %s", name, i, gv.results[i], wv.results[i])
						}
					}
					if len(gv.puncts) != len(wv.puncts) {
						t.Fatalf("view %s: shared pass propagated %d punctuations, independent %d", name, len(gv.puncts), len(wv.puncts))
					}
					for i := range wv.puncts {
						if gv.puncts[i] != wv.puncts[i] {
							t.Fatalf("view %s: punctuation %d diverges:\n  shared:      %s\n  independent: %s", name, i, gv.puncts[i], wv.puncts[i])
						}
					}
				}
				if wname == "clean" && len(want.views["v0"].results) == 0 {
					t.Fatal("clean workload produced no results; the equivalence check is vacuous")
				}
				if (want.err == nil) != (got.err == nil) {
					t.Fatalf("error divergence: shared %v, independent %v", got.err, want.err)
				}
				if want.err != nil {
					w, g := normalizeViewNames(want.err.Error()), normalizeViewNames(got.err.Error())
					if w != g {
						t.Fatalf("different failures:\n  shared:      %s\n  independent: %s", g, w)
					}
				}
				if got.dl.Total != want.dl.Total {
					t.Fatalf("dead-letter totals diverge: shared %d, independent %d", got.dl.Total, want.dl.Total)
				}
				for s, n := range want.dl.ByStream {
					if got.dl.ByStream[s] != n {
						t.Fatalf("ByStream[%q] diverges: shared %d, independent %d", s, got.dl.ByStream[s], n)
					}
				}
				for q, n := range want.dl.ByQuery {
					if got.dl.ByQuery[q] != n {
						t.Fatalf("ByQuery[%q] diverges: shared %d, independent %d", q, got.dl.ByQuery[q], n)
					}
				}
				if w, g := dlKeys(want.dl), dlKeys(got.dl); !equalStrings(w, g) {
					t.Fatalf("retained dead-letter multisets diverge:\n  shared:      %v\n  independent: %v", g, w)
				}
			})
		}
	}
}
