package engine_test

// Partitioned-execution equivalence property suite: running a query as P
// hash-partitioned replicas behind punctuation broadcast barriers must be
// observationally identical to the single-tree path — element-for-element
// identical result tuples, punctuations, errors and dead-letter
// accounting — across every error policy and every seeded
// internal/faultinject workload. Partitioning is a performance lever,
// never a semantic one (ISSUE 5 satellite 4).

import (
	"fmt"
	"testing"

	"punctsafe/engine"
	"punctsafe/internal/faultinject"
	"punctsafe/stream"
	"punctsafe/workload"
)

// runPartitioned mirrors runRuntime's batched pass with Options.Partitions
// set: same single auction query, same promise enforcement, same
// contiguous same-stream SendBatch grouping, so any divergence is the
// partitioned router's fault alone.
func runPartitioned(t *testing.T, policy engine.ErrorPolicy, feed []faultinject.Item, partitions int) runOutcome {
	t.Helper()
	d := engine.New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	var out runOutcome
	reg, err := d.Register("q0", workload.AuctionQuery(), engine.Options{
		EnforcePromises: true,
		Partitions:      partitions,
		OnPunct: func(p stream.Punctuation) {
			out.puncts = append(out.puncts, p.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Partitions(); got != partitions {
		t.Fatalf("query registered with %d partitions, want %d (fallback reason: %q)", got, partitions, reg.PartitionReason)
	}
	rt := d.RunSharded(engine.RuntimeOptions{OnError: policy})
	for start := 0; start < len(feed); {
		end := start + 1
		for end < len(feed) && feed[end].Stream == feed[start].Stream {
			end++
		}
		elems := make([]stream.Element, 0, end-start)
		for _, it := range feed[start:end] {
			elems = append(elems, it.Elem)
		}
		if err := rt.SendBatch(feed[start].Stream, elems); err != nil {
			t.Fatalf("SendBatch: %v", err)
		}
		start = end
	}
	rt.Close()
	out.err = rt.Wait()
	for _, r := range reg.Results {
		out.results = append(out.results, r.String())
	}
	out.dl = rt.DeadLetters()
	return out
}

// TestPartitionedEquivalence: for every (workload × policy × P) cell the
// partitioned pass must be observationally identical to the single-tree
// batched pass.
func TestPartitionedEquivalence(t *testing.T) {
	policies := map[string]engine.ErrorPolicy{
		"fail":       engine.Fail,
		"drop":       engine.Drop,
		"quarantine": engine.Quarantine,
	}
	for wname, feed := range batchWorkloads(t) {
		for pname, policy := range policies {
			want := runRuntime(t, policy, feed, true)
			if wname == "clean" && len(want.results) == 0 {
				t.Fatal("clean workload produced no results; the equivalence check is vacuous")
			}
			for _, p := range []int{1, 2, 3, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/p%d", wname, pname, p), func(t *testing.T) {
					got := runPartitioned(t, policy, feed, p)
					requireSameOutcome(t, want, got)
				})
			}
		}
	}
}

// TestPartitionedStatsAggregation pins the documented aggregate-stats
// contract on a clean run: tuple counters and final tuple state sizes sum
// to the single-tree values exactly, while the punctuation-side counters
// (PunctsIn, PunctsPurged, PunctStoreSize, OutPuncts) count every
// broadcast copy — exactly P× the single-tree values.
func TestPartitionedStatsAggregation(t *testing.T) {
	feed := chaosBaseFeed()
	const p = 3

	run := func(partitions int) []string {
		d := engine.New()
		for _, s := range workload.AuctionSchemes().All() {
			d.RegisterScheme(s)
		}
		reg, err := d.Register("q0", workload.AuctionQuery(), engine.Options{
			EnforcePromises: true,
			Partitions:      partitions,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt := d.RunSharded(engine.RuntimeOptions{OnError: engine.Quarantine})
		for _, it := range feed {
			if err := rt.Send(it.Stream, it.Elem); err != nil {
				t.Fatal(err)
			}
		}
		rt.Close()
		if err := rt.Wait(); err != nil {
			t.Fatal(err)
		}
		stats, err := rt.Stats("q0")
		if err != nil {
			t.Fatal(err)
		}
		_ = reg
		by := uint64(partitions)
		if by == 0 {
			by = 1
		}
		lines := make([]string, 0, len(stats)*8)
		for _, st := range stats {
			lines = append(lines,
				fmt.Sprintf("tuplesIn=%v", st.TuplesIn),
				fmt.Sprintf("tuplesPurged=%v", st.TuplesPurged),
				fmt.Sprintf("stateSize=%v", st.StateSize),
				fmt.Sprintf("punctsPurgedPerReplica=%v", dividedSlice(t, st.PunctsPurged, by)),
				fmt.Sprintf("punctStorePerReplica=%v", dividedIntSlice(t, st.PunctStoreSize, by)),
				fmt.Sprintf("results=%d", st.Results),
				fmt.Sprintf("outPunctsPerReplica=%d", divided(t, st.OutPuncts, by)),
				fmt.Sprintf("punctsInPerReplica=%v", dividedSlice(t, st.PunctsIn, by)),
			)
		}
		return lines
	}

	plain := run(0)
	part := run(p)
	if len(plain) != len(part) {
		t.Fatalf("stats shape diverges: %d lines vs %d", len(plain), len(part))
	}
	for i := range plain {
		if plain[i] != part[i] {
			t.Fatalf("aggregate stat %d diverges:\n  partitioned: %s\n  single-tree: %s", i, part[i], plain[i])
		}
	}
}

func divided(t *testing.T, v, by uint64) uint64 {
	t.Helper()
	if v%by != 0 {
		t.Fatalf("counter %d is not an exact multiple of partition count %d", v, by)
	}
	return v / by
}

func dividedSlice(t *testing.T, vs []uint64, by uint64) []uint64 {
	t.Helper()
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = divided(t, v, by)
	}
	return out
}

func dividedIntSlice(t *testing.T, vs []int, by uint64) []uint64 {
	t.Helper()
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = divided(t, uint64(v), by)
	}
	return out
}
