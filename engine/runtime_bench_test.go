package engine

import (
	"fmt"
	"testing"
)

// BenchmarkIngest compares the sequential Push path against the sharded
// runtime while the number of registered queries grows. Every query
// subscribes to the same streams, so the sequential path does q times the
// join work per element on one goroutine, while the sharded runtime
// spreads it over q shard workers: on multi-core hardware the sharded
// rows should hold roughly constant wall time per element as q rises
// where the sequential rows degrade linearly.
func BenchmarkIngest(b *testing.B) {
	const items = 400
	const bids = 4
	var feed []TaggedElement
	for i := 0; i < items; i++ {
		feed = append(feed, auctionElems(int64(i), bids)...)
	}

	for _, nq := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sequential/queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, regs := newAuctionDSMS(b, nq)
				b.StartTimer()
				for _, te := range feed {
					if err := d.Push(te.Stream, te.Elem); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.Flush(); err != nil {
					b.Fatal(err)
				}
				if len(regs[0].Results) != items*bids {
					b.Fatalf("results = %d", len(regs[0].Results))
				}
			}
			b.ReportMetric(float64(len(feed)), "elements/op")
		})
		b.Run(fmt.Sprintf("sharded/queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, regs := newAuctionDSMS(b, nq)
				b.StartTimer()
				rt := d.RunSharded(RuntimeOptions{Buffer: 256})
				for _, te := range feed {
					if err := rt.Send(te.Stream, te.Elem); err != nil {
						b.Fatal(err)
					}
				}
				rt.Close()
				if err := rt.Wait(); err != nil {
					b.Fatal(err)
				}
				if len(regs[0].Results) != items*bids {
					b.Fatalf("results = %d", len(regs[0].Results))
				}
			}
			b.ReportMetric(float64(len(feed)), "elements/op")
		})
	}
}
