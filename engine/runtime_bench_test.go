package engine

import (
	"fmt"
	"testing"

	"punctsafe/stream"
)

// BenchmarkIngest compares the sequential Push path against the sharded
// runtime while the number of registered queries grows. Every query
// subscribes to the same streams, so the sequential path does q times the
// join work per element on one goroutine, while the sharded runtime
// spreads it over q shard workers: on multi-core hardware the sharded
// rows should hold roughly constant wall time per element as q rises
// where the sequential rows degrade linearly.
func BenchmarkIngest(b *testing.B) {
	const items = 400
	const bids = 4
	var feed []TaggedElement
	for i := 0; i < items; i++ {
		feed = append(feed, auctionElems(int64(i), bids)...)
	}

	// Pre-group the feed into contiguous same-stream runs for the batched
	// variant (what Runtime.IngestWire does with decoded frames).
	type runBatch struct {
		stream string
		elems  []stream.Element
	}
	var runs []runBatch
	for start := 0; start < len(feed); {
		end := start + 1
		for end < len(feed) && feed[end].Stream == feed[start].Stream {
			end++
		}
		rb := runBatch{stream: feed[start].Stream}
		for _, te := range feed[start:end] {
			rb.elems = append(rb.elems, te.Elem)
		}
		runs = append(runs, rb)
		start = end
	}

	for _, nq := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sequential/queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, regs := newAuctionDSMS(b, nq)
				b.StartTimer()
				for _, te := range feed {
					if err := d.Push(te.Stream, te.Elem); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.Flush(); err != nil {
					b.Fatal(err)
				}
				if len(regs[0].Results) != items*bids {
					b.Fatalf("results = %d", len(regs[0].Results))
				}
			}
			b.ReportMetric(float64(len(feed)), "elements/op")
		})
		b.Run(fmt.Sprintf("sharded/queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, regs := newAuctionDSMS(b, nq)
				b.StartTimer()
				rt := d.RunSharded(RuntimeOptions{Buffer: 256})
				for _, te := range feed {
					if err := rt.Send(te.Stream, te.Elem); err != nil {
						b.Fatal(err)
					}
				}
				rt.Close()
				if err := rt.Wait(); err != nil {
					b.Fatal(err)
				}
				if len(regs[0].Results) != items*bids {
					b.Fatalf("results = %d", len(regs[0].Results))
				}
			}
			b.ReportMetric(float64(len(feed)), "elements/op")
		})
		b.Run(fmt.Sprintf("sharded-batch/queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, regs := newAuctionDSMS(b, nq)
				b.StartTimer()
				rt := d.RunSharded(RuntimeOptions{Buffer: 256})
				for _, rb := range runs {
					if err := rt.SendBatch(rb.stream, rb.elems); err != nil {
						b.Fatal(err)
					}
				}
				rt.Close()
				if err := rt.Wait(); err != nil {
					b.Fatal(err)
				}
				if len(regs[0].Results) != items*bids {
					b.Fatalf("results = %d", len(regs[0].Results))
				}
			}
			b.ReportMetric(float64(len(feed)), "elements/op")
		})
	}
}
