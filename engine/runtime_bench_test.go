package engine

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"punctsafe/stream"
)

// BenchmarkIngest compares the sequential Push path against the sharded
// runtime while the number of registered queries grows. Every query
// subscribes to the same streams, so the sequential path does q times the
// join work per element on one goroutine, while the sharded runtime
// spreads it over q shard workers: on multi-core hardware the sharded
// rows should hold roughly constant wall time per element as q rises
// where the sequential rows degrade linearly.
func BenchmarkIngest(b *testing.B) {
	const items = 400
	const bids = 4
	var feed []TaggedElement
	for i := 0; i < items; i++ {
		feed = append(feed, auctionElems(int64(i), bids)...)
	}

	// Pre-group the feed into contiguous same-stream runs for the batched
	// variant (what Runtime.IngestWire does with decoded frames).
	type runBatch struct {
		stream string
		elems  []stream.Element
	}
	var runs []runBatch
	for start := 0; start < len(feed); {
		end := start + 1
		for end < len(feed) && feed[end].Stream == feed[start].Stream {
			end++
		}
		rb := runBatch{stream: feed[start].Stream}
		for _, te := range feed[start:end] {
			rb.elems = append(rb.elems, te.Elem)
		}
		runs = append(runs, rb)
		start = end
	}

	for _, nq := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sequential/queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, regs := newAuctionDSMS(b, nq)
				b.StartTimer()
				for _, te := range feed {
					if err := d.Push(te.Stream, te.Elem); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.Flush(); err != nil {
					b.Fatal(err)
				}
				if len(regs[0].Results) != items*bids {
					b.Fatalf("results = %d", len(regs[0].Results))
				}
			}
			b.ReportMetric(float64(len(feed)), "elements/op")
		})
		b.Run(fmt.Sprintf("sharded/queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, regs := newAuctionDSMS(b, nq)
				b.StartTimer()
				rt := d.RunSharded(RuntimeOptions{Buffer: 256})
				for _, te := range feed {
					if err := rt.Send(te.Stream, te.Elem); err != nil {
						b.Fatal(err)
					}
				}
				rt.Close()
				if err := rt.Wait(); err != nil {
					b.Fatal(err)
				}
				if len(regs[0].Results) != items*bids {
					b.Fatalf("results = %d", len(regs[0].Results))
				}
			}
			b.ReportMetric(float64(len(feed)), "elements/op")
		})
		b.Run(fmt.Sprintf("sharded-batch/queries=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, regs := newAuctionDSMS(b, nq)
				b.StartTimer()
				rt := d.RunSharded(RuntimeOptions{Buffer: 256})
				for _, rb := range runs {
					if err := rt.SendBatch(rb.stream, rb.elems); err != nil {
						b.Fatal(err)
					}
				}
				rt.Close()
				if err := rt.Wait(); err != nil {
					b.Fatal(err)
				}
				if len(regs[0].Results) != items*bids {
					b.Fatalf("results = %d", len(regs[0].Results))
				}
			}
			b.ReportMetric(float64(len(feed)), "elements/op")
		})
	}
}

// BenchmarkCheckpoint measures the durability tax: serializing a live
// sharded runtime with open join state through the mailbox barrier
// (checkpoint), and rebuilding a runtime from that snapshot (restore).
// The open items never receive their closing punctuations, so every
// snapshot carries openItems*(bids+1) live rows per query plus the
// punctuation stores.
func BenchmarkCheckpoint(b *testing.B) {
	const openItems = 512
	const bids = 4
	d, _ := newAuctionDSMS(b, 2)
	rt := d.RunSharded(RuntimeOptions{Buffer: 256})
	off := int64(0)
	for i := 0; i < openItems; i++ {
		for _, te := range auctionElems(int64(i), bids)[:bids+1] { // tuples only
			off++
			if err := rt.SendAt("bench", te.Stream, te.Elem, off); err != nil {
				b.Fatal(err)
			}
		}
	}
	var blob bytes.Buffer
	if err := rt.Checkpoint(&blob); err != nil {
		b.Fatal(err)
	}

	b.Run(fmt.Sprintf("checkpoint/rows=%d", openItems*(bids+1)), func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(blob.Len()))
		for i := 0; i < b.N; i++ {
			if err := rt.Checkpoint(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("restore/rows=%d", openItems*(bids+1)), func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(blob.Len()))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d2, _ := newAuctionDSMS(b, 2)
			b.StartTimer()
			rt2, err := d2.RestoreRuntime(bytes.NewReader(blob.Bytes()), RuntimeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			rt2.Close()
			if err := rt2.Wait(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	rt.Close()
	if err := rt.Wait(); err != nil {
		b.Fatal(err)
	}
}
