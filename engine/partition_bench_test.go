package engine

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"punctsafe/exec"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/stream"
)

// benchEnvOnce prints the host's parallelism next to go test's own
// goos/goarch/cpu header, in the same `key: value` shape, so the
// punctbench parser records it in the report env: the engine rows are
// wall-clock and only meaningful relative to the core count they ran on.
var benchEnvOnce sync.Once

func printBenchEnv() {
	benchEnvOnce.Do(func() {
		fmt.Printf("gomaxprocs: %d\n", runtime.GOMAXPROCS(0))
		fmt.Printf("numcpu: %d\n", runtime.NumCPU())
	})
}

// The partitioned-ingest scaling benchmark (ISSUE 5 acceptance): a 3-way
// star join on one key with heavy per-key fan-out (every watch probes
// bids × items for its key), so join work dominates routing cost.
//
// Two row groups:
//
//   - critical-path/*: deterministic span measurement of the partitioned
//     design. The feed is routed exactly as the engine's router routes it
//     (hash scatter for tuples, broadcast for punctuations), then ns/op
//     times the serial router pass plus ONE replica's full workload. The
//     replicas are hash-symmetric and run concurrently in the engine, so
//     router + slowest replica IS the parallel wall time on a host with
//     ≥ P cores — measured here independently of how many cores the
//     benchmark host actually has. The p1 row runs the same machinery
//     with one replica; its gap to the plain row is the routing overhead
//     and must stay within noise.
//
//   - engine/*: wall-clock of the real sharded runtime with the worker
//     pool. On a multi-core host these converge toward the critical-path
//     rows; on a single-core host they serialize and show the barrier
//     overhead instead of the scaling.
const (
	pbKeys  = 64 // distinct join keys
	pbBids  = 32 // bids per key
	pbWatch = 32 // watches per key
	pbBlock = 16 // keys per punctuation round
)

// partitionQuery is item ⋈ bid ⋈ watch equi-joined on itemid — a chain on
// one attribute, so plan.FindCoPartition accepts it.
func partitionQuery(tb testing.TB) *query.CJQ {
	tb.Helper()
	intAttr := func(n string) stream.Attribute { return stream.Attribute{Name: n, Kind: stream.KindInt} }
	q, err := query.NewBuilder().
		AddStream(stream.MustSchema("item", intAttr("itemid"), intAttr("reserve"))).
		AddStream(stream.MustSchema("bid", intAttr("itemid"), intAttr("price"))).
		AddStream(stream.MustSchema("watch", intAttr("itemid"), intAttr("uid"))).
		Join("item.itemid", "bid.itemid").
		Join("bid.itemid", "watch.itemid").
		Build()
	if err != nil {
		tb.Fatal(err)
	}
	return q
}

func partitionSchemes() *stream.SchemeSet {
	return stream.NewSchemeSet(
		stream.MustScheme("item", true, false),
		stream.MustScheme("bid", true, false),
		stream.MustScheme("watch", true, false),
	)
}

func newPartitionBenchDSMS(tb testing.TB, partitions int) (*DSMS, *Registered) {
	tb.Helper()
	d := New()
	for _, s := range partitionSchemes().All() {
		d.RegisterScheme(s)
	}
	reg, err := d.Register("q0", partitionQuery(tb), Options{Partitions: partitions})
	if err != nil {
		tb.Fatal(err)
	}
	if partitions >= 1 && reg.Part == nil {
		tb.Fatalf("query fell back to single-tree execution: %s", reg.PartitionReason)
	}
	return d, reg
}

type benchRun struct {
	stream string
	elems  []stream.Element
}

// partitionFeed builds the workload as contiguous same-stream runs: per
// round of pbBlock keys, all items, then all bids, then all watches (each
// watch completes pbBids results per probe), then one closing punctuation
// per key per stream.
func partitionFeed() []benchRun {
	var runs []benchRun
	keyPunct := func(k int64) stream.Element {
		return stream.PunctElement(stream.MustPunctuation(stream.Const(stream.Int(k)), stream.Wildcard()))
	}
	for base := 0; base < pbKeys; base += pbBlock {
		items := benchRun{stream: "item"}
		bids := benchRun{stream: "bid"}
		watches := benchRun{stream: "watch"}
		for k := base; k < base+pbBlock; k++ {
			items.elems = append(items.elems, stream.TupleElement(stream.NewTuple(
				stream.Int(int64(k)), stream.Int(100))))
			for i := 0; i < pbBids; i++ {
				bids.elems = append(bids.elems, stream.TupleElement(stream.NewTuple(
					stream.Int(int64(k)), stream.Int(int64(i)))))
			}
			for i := 0; i < pbWatch; i++ {
				watches.elems = append(watches.elems, stream.TupleElement(stream.NewTuple(
					stream.Int(int64(k)), stream.Int(int64(i)))))
			}
		}
		runs = append(runs, items, bids, watches)
		for _, s := range []string{"item", "bid", "watch"} {
			puncts := benchRun{stream: s}
			for k := base; k < base+pbBlock; k++ {
				puncts.elems = append(puncts.elems, keyPunct(int64(k)))
			}
			runs = append(runs, puncts)
		}
	}
	return runs
}

const pbResults = pbKeys * pbBids * pbWatch

// partitionSegment is one routed chunk of a replica's input sequence.
type partitionSegment struct {
	input int
	elems []stream.Element
}

// routeFeed performs the router's serial work: hash tuples to their
// replica, broadcast punctuations to all, preserving per-replica order.
func routeFeed(pt *exec.PartitionedTree, runs []benchRun, inputOf map[string]int, seqs [][]partitionSegment) [][]partitionSegment {
	p := pt.Partitions()
	for i := range seqs {
		seqs[i] = seqs[i][:0]
	}
	for _, r := range runs {
		input := inputOf[r.stream]
		if r.elems[0].IsPunct() {
			for i := 0; i < p; i++ {
				seqs[i] = append(seqs[i], partitionSegment{input, r.elems})
			}
			continue
		}
		chunks := make([][]stream.Element, p)
		for _, e := range r.elems {
			d := pt.PartitionOf(input, e.Tuple())
			chunks[d] = append(chunks[d], e)
		}
		for i := 0; i < p; i++ {
			if len(chunks[i]) > 0 {
				seqs[i] = append(seqs[i], partitionSegment{input, chunks[i]})
			}
		}
	}
	return seqs
}

// driveReplica pushes one replica's routed sequence and returns its result
// count plus the reusable output buffers.
func driveReplica(tb testing.TB, pt *exec.PartitionedTree, p int, segs []partitionSegment, out []stream.Element, ends []int) (int, []stream.Element, []int) {
	results := 0
	for _, seg := range segs {
		var err error
		out, ends, _, err = pt.PushPartitionEnds(p, seg.input, out[:0], ends[:0], seg.elems)
		if err != nil {
			tb.Fatal(err)
		}
		for _, e := range out {
			if !e.IsPunct() {
				results++
			}
		}
	}
	return results, out, ends
}

// BenchmarkPartitionedIngest: the acceptance bar reads off the
// critical-path rows — p4 ≥ 2.5× the p1 throughput, p1 within 5% of
// plain — with the engine rows recording the live runtime alongside.
func BenchmarkPartitionedIngest(b *testing.B) {
	printBenchEnv()
	runs := partitionFeed()
	elements := 0
	for _, r := range runs {
		elements += len(r.elems)
	}
	q := partitionQuery(b)
	schemes := partitionSchemes()
	inputOf := make(map[string]int)
	for i := 0; i < q.N(); i++ {
		inputOf[q.Stream(i).Name()] = i
	}
	root := plan.Join(plan.Leaf(0), plan.Leaf(1), plan.Leaf(2))
	cfg := exec.Config{Query: q, Schemes: schemes}

	b.Run("critical-path/plain", func(b *testing.B) {
		var out []stream.Element
		var ends []int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tree, err := exec.NewTree(cfg, root)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			results := 0
			for _, r := range runs {
				input := inputOf[r.stream]
				var err error
				out, ends, _, err = tree.PushBatchEnds(input, out[:0], ends[:0], r.elems)
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range out {
					if !e.IsPunct() {
						results++
					}
				}
			}
			b.StopTimer()
			if results != pbResults {
				b.Fatalf("results = %d, want %d", results, pbResults)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(elements), "elements/op")
	})

	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("critical-path/p%d", p), func(b *testing.B) {
			seqs := make([][]partitionSegment, p)
			var out []stream.Element
			var ends []int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pt, err := exec.NewPartitionedTree(cfg, root, p)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				// Timed span: the router pass plus one replica (the
				// replicas run concurrently in the engine).
				seqs = routeFeed(pt, runs, inputOf, seqs)
				var results int
				results, out, ends = driveReplica(b, pt, 0, seqs[0], out, ends)
				b.StopTimer()
				for rp := 1; rp < p; rp++ {
					var n int
					n, out, ends = driveReplica(b, pt, rp, seqs[rp], out, ends)
					results += n
				}
				if results != pbResults {
					b.Fatalf("p=%d results = %d, want %d", p, results, pbResults)
				}
				if pt.TotalState() != 0 {
					b.Fatalf("p=%d state should drain, has %d tuples", p, pt.TotalState())
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(elements), "elements/op")
		})
	}

	for _, row := range []struct {
		name       string
		partitions int
	}{
		{"engine/plain", 0},
		{"engine/p1", 1},
		{"engine/p2", 2},
		{"engine/p4", 4},
		{"engine/p8", 8},
	} {
		b.Run(row.name, func(b *testing.B) {
			// Wall-clock rows with more replicas than cores would just
			// measure scheduler thrash; the critical-path rows above carry
			// the deterministic scaling number on any host.
			if row.partitions > runtime.NumCPU() {
				b.Skipf("host has %d CPUs (< %d partitions); wall-clock row would serialize — see critical-path/p%d",
					runtime.NumCPU(), row.partitions, row.partitions)
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, reg := newPartitionBenchDSMS(b, row.partitions)
				b.StartTimer()
				rt := d.RunSharded(RuntimeOptions{Buffer: 256})
				for _, r := range runs {
					if err := rt.SendBatch(r.stream, r.elems); err != nil {
						b.Fatal(err)
					}
				}
				rt.Close()
				if err := rt.Wait(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if len(reg.Results) != pbResults {
					b.Fatalf("results = %d, want %d", len(reg.Results), pbResults)
				}
				if reg.TotalState() != 0 {
					b.Fatalf("state should drain, has %d tuples", reg.TotalState())
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(elements), "elements/op")
		})
	}
}
