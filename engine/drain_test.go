package engine

import (
	"errors"
	"sync"
	"testing"

	"punctsafe/stream"
	"punctsafe/workload"
)

// TestStatsConcurrentWithClose hammers Stats from several goroutines
// while producers feed the runtime and Close lands mid-flight. Run under
// -race this is the proof behind the Stats doc contract: safe from any
// goroutine, concurrently with Send and Close.
func TestStatsConcurrentWithClose(t *testing.T) {
	d, _ := newAuctionDSMS(t, 2)
	rt := d.RunSharded(RuntimeOptions{Buffer: 4})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := rt.Stats("q0"); err != nil {
					t.Errorf("Stats: %v", err)
					return
				}
			}
		}()
	}
	var producers sync.WaitGroup
	for p := 0; p < 4; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for id := 0; id < 25; id++ {
				for _, te := range auctionElems(int64(p*1000+id), 3) {
					if err := rt.Send(te.Stream, te.Elem); err != nil {
						t.Errorf("Send: %v", err)
						return
					}
				}
			}
		}(p)
	}
	producers.Wait()
	// Close lands while the snapshot readers are still hammering.
	rt.Close()
	wg.Wait()
	// Stats keeps answering after Close (drained trees are read directly).
	if _, err := rt.Stats("q1"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedShardDrainsWithoutDeadlock: under the default Fail policy
// (no FailFast) one poisoned query fails early while producers keep
// sending the whole feed through tiny mailboxes. The failed shard must
// keep draining so no producer ever blocks, and the healthy shard's
// output must be complete.
func TestFailedShardDrainsWithoutDeadlock(t *testing.T) {
	const producers = 6
	const itemsPer = 30
	const bids = 3
	d := New()
	d.RegisterScheme(stream.MustScheme("item", false, true, false, false))
	d.RegisterScheme(stream.MustScheme("bid", false, true, false))
	healthy, err := d.Register("healthy", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Register("poisoned", workload.AuctionQuery(), Options{
		OnResult: func(stream.Tuple) { panic("poisoned early") },
	}); err != nil {
		t.Fatal(err)
	}
	rt := d.RunSharded(RuntimeOptions{Buffer: 1})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for id := 0; id < itemsPer; id++ {
				for _, te := range auctionElems(int64(p*10000+id), bids) {
					if err := rt.Send(te.Stream, te.Elem); err != nil {
						t.Errorf("Send: %v", err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait() // no deadlock: every producer finishes its full feed
	rt.Close()
	err = rt.Wait()
	if err == nil {
		t.Fatal("poisoned shard did not fail")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("failure is not a contained panic: %v", err)
	}
	if got, want := len(healthy.Results), producers*itemsPer*bids; got != want {
		t.Fatalf("healthy shard emitted %d results, want %d", got, want)
	}
}

// TestFailFastStopsProducersEarly: with FailFast, Send starts returning
// the runtime's first error once a shard has failed, so producers can
// abandon the rest of their feed.
func TestFailFastStopsProducersEarly(t *testing.T) {
	d := New()
	d.RegisterScheme(stream.MustScheme("item", false, true, false, false))
	d.RegisterScheme(stream.MustScheme("bid", false, true, false))
	if _, err := d.Register("poisoned", workload.AuctionQuery(), Options{
		OnResult: func(stream.Tuple) { panic("poisoned early") },
	}); err != nil {
		t.Fatal(err)
	}
	rt := d.RunSharded(RuntimeOptions{Buffer: 1, FailFast: true})
	var sendErr error
	for id := 0; id < 10000 && sendErr == nil; id++ {
		for _, te := range auctionElems(int64(id), 2) {
			if sendErr = rt.Send(te.Stream, te.Elem); sendErr != nil {
				break
			}
		}
	}
	if sendErr == nil {
		t.Fatal("Send never surfaced the shard failure")
	}
	var pe *PanicError
	if !errors.As(sendErr, &pe) {
		t.Fatalf("Send error is not the contained panic: %v", sendErr)
	}
	rt.Close()
	if err := rt.Wait(); err == nil {
		t.Fatal("Wait lost the failure")
	}
}
