package engine

import (
	"bytes"
	"io"
	"testing"

	"punctsafe/workload"
)

// buildAuctionWire encodes a generated auction feed and returns the wire
// bytes with the element count.
func buildAuctionWire(tb testing.TB, items int) ([]byte, int) {
	tb.Helper()
	inputs := workload.Auction(workload.AuctionConfig{
		Items: items, MaxBidsPerItem: 5, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 23,
	})
	item, bid := workload.AuctionSchemas()
	var buf bytes.Buffer
	ww := NewWireWriter(&buf, item, bid)
	for _, in := range inputs {
		if err := ww.Write(in.Stream, in.Elem); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes(), len(inputs)
}

// TestWireReaderReadAllocs pins the per-frame allocation budget: the
// reader's window buffer and interned stream names mean a Read allocates
// only what the decoded element itself needs (tuple storage, copied
// strings, punctuation patterns).
func TestWireReaderReadAllocs(t *testing.T) {
	wire, n := buildAuctionWire(t, 400)
	item, bid := workload.AuctionSchemas()
	wr := NewWireReader(bytes.NewReader(wire), item, bid)
	// Warm up past buffer growth.
	for i := 0; i < 32; i++ {
		if _, err := wr.Read(); err != nil {
			t.Fatal(err)
		}
	}
	var sink TaggedElement
	avg := testing.AllocsPerRun(n-64, func() {
		te, err := wr.Read()
		if err != nil {
			t.Fatal(err)
		}
		sink = te
	})
	_ = sink
	// Element decoding itself allocates (tuple value slice, boxed values,
	// copied strings); the framing layer must add nothing per frame.
	if avg > 8 {
		t.Fatalf("WireReader.Read averages %.1f allocs/frame, want <= 8", avg)
	}
}

// BenchmarkWireReaderRead measures steady-state frame decoding over an
// in-memory wire (run with -benchmem for the allocation delta).
func BenchmarkWireReaderRead(b *testing.B) {
	wire, _ := buildAuctionWire(b, 400)
	item, bid := workload.AuctionSchemas()
	rd := bytes.NewReader(wire)
	wr := NewWireReader(rd, item, bid)
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := wr.Read()
		if err == io.EOF {
			rd.Reset(wire)
			wr = NewWireReader(rd, item, bid)
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
