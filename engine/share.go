package engine

import (
	"fmt"

	"punctsafe/stream"
)

// Shared-subplan execution (NiagaraCQ-style common-subplan sharing):
// every registered query belongs to exactly one shareGroup. An unshared
// query is a singleton group; queries registered with Options.Share
// whose canonical fingerprints (plan.Fingerprint over the join shape,
// streams, equality classes, schemes, and execution config) collide are
// folded into one group that owns a single physical executor. The first
// member — the group's driver — holds the exec.Tree/PartitionedTree;
// later members alias it. Input gating, pushes, sweeps and flushes run
// once per group; outputs fan out to every member's delivery path
// (callbacks, Results buffer, delivery hook, per-member sequence
// numbers), so each subscriber observes exactly the element stream an
// independent tree would have produced, at O(subscribers) per delivery
// instead of O(copies) of the join work.

// shareGroup ties the queries sharing one physical executor together.
// members is ordered by registration; members[0] is the driver whose
// Tree/Part every member aliases. The slice is mutated only while the
// owning runtime is quiescent or under its close lock's write side
// (Attach/Detach), and read by producers under the read side.
type shareGroup struct {
	fp      string // plan.Fingerprint; "" for unshared singleton groups
	members []*Registered
}

// driver returns the member that owns the physical executor.
func (g *shareGroup) driver() *Registered { return g.members[0] }

// deliver fans one output batch out to every member.
func (g *shareGroup) deliver(outs []stream.Element) {
	for _, m := range g.members {
		m.deliver(outs)
	}
}

// removeMember drops the named member, returning whether it was found.
func (g *shareGroup) removeMember(name string) bool {
	for i, m := range g.members {
		if m.Name == name {
			g.members = append(g.members[:i], g.members[i+1:]...)
			return true
		}
	}
	return false
}

// shareConfigTag folds every Options knob that changes the physical
// executor's behavior — but is invisible to plan.Fingerprint — into the
// fingerprint's config tag. Callback options (OnResult, OnPressure, ...)
// are deliberately absent: delivery-side callbacks are per-member, and
// pressure/repartition observers ride the driver's config (documented on
// Options.Share).
func shareConfigTag(o Options) string {
	return fmt.Sprintf("pb=%d;pl=%d;pp=%t;sl=%d;ssl=%d;ep=%t;ca=%d;parts=%d;splits=%d;user=%s",
		o.PurgeBatch, o.PunctLifespan, o.PurgePunctuations, o.StateLimit, o.SoftStateLimit,
		o.EnforcePromises, o.ColdAfter, o.Partitions, o.MaxPartitionSplits, o.ShareTag)
}

// isDriver reports whether this member owns its group's physical
// executor.
func (r *Registered) isDriver() bool { return r.group.members[0] == r }

// SharedWith returns the names of the other queries sharing this query's
// physical tree, in registration order (empty for an unshared query).
func (r *Registered) SharedWith() []string {
	var out []string
	for _, m := range r.group.members {
		if m != r {
			out = append(out, m.Name)
		}
	}
	return out
}

// PhysicalTrees counts the distinct physical executors behind the
// registered queries: each share group contributes one regardless of how
// many members subscribe to it.
func (d *DSMS) PhysicalTrees() int {
	n := 0
	for _, name := range d.order {
		if d.queries[name].isDriver() {
			n++
		}
	}
	return n
}
