// Package engine is the DSMS shell of the paper's Figure 2: a query
// register that holds the system's punctuation scheme set and admits only
// continuous join queries that pass the compile-time safety check, an
// input manager that routes stream elements (tuples and punctuations) to
// every registered query, and a query processor that runs each admitted
// query on a safe execution plan.
package engine

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"punctsafe/exec"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

// DSMS is a single-threaded data stream management system instance. All
// methods must be called from one goroutine; RunAsync wraps the Push
// entry point in a serial channel loop for concurrent feeding, and
// RunSharded runs each registered query on its own goroutine behind a
// stream router.
type DSMS struct {
	schemes *stream.SchemeSet
	queries map[string]*Registered
	order   []string
}

// New returns an empty DSMS with no schemes registered.
func New() *DSMS {
	return &DSMS{
		schemes: stream.NewSchemeSet(),
		queries: make(map[string]*Registered),
	}
}

// RegisterScheme adds a punctuation scheme to the query register (the
// application-semantics knowledge of §2.3). Schemes must be registered
// before the queries that rely on them.
func (d *DSMS) RegisterScheme(s stream.Scheme) { d.schemes.Add(s) }

// Schemes returns a copy of the registered scheme set.
func (d *DSMS) Schemes() *stream.SchemeSet { return d.schemes.Clone() }

// Options tunes how an admitted query is executed.
type Options struct {
	// Plan forces a specific execution plan. When nil the engine picks
	// the cheapest safe plan (§5.2). A forced plan is still checked for
	// safety (Definition 2) and rejected if unsafe.
	Plan *plan.Node
	// CostModel overrides the default cost model for plan choice.
	CostModel *plan.CostModel
	// PurgeBatch, PunctLifespan, PurgePunctuations, StateLimit,
	// SoftStateLimit, OnPressure and EnforcePromises mirror exec.Config.
	PurgeBatch        int
	PunctLifespan     uint64
	PurgePunctuations bool
	StateLimit        int
	SoftStateLimit    int
	OnPressure        func(exec.PressureEvent)
	EnforcePromises   bool
	// OnResult, when set, is invoked for every result tuple instead of
	// buffering it in Results.
	OnResult func(stream.Tuple)
	// OnPunct, when set, is invoked for every punctuation the plan's root
	// operator propagates (e.g. to drive a downstream blocking operator
	// such as a group-by).
	OnPunct func(stream.Punctuation)
	// Partitions, when >= 1, asks for intra-query parallel execution: the
	// plan runs as that many hash-partitioned replicas (tuples routed by
	// the query's co-partitioning attribute, punctuations broadcast), and
	// RunSharded gives the query's shard a worker pool. 0 (the default)
	// keeps the single-tree path. Partitions=1 runs the partition
	// machinery with one replica — useful for measuring its overhead. A
	// query with no attribute equated across all its streams cannot be
	// partitioned; it falls back to the single-tree path with the reason
	// recorded in Registered.PartitionReason.
	Partitions int
	// ColdAfter enables two-tier join state: every ColdAfter processed
	// elements, stored tuples that survived a full inter-freeze interval
	// are compacted out of the hot insert path into immutable cold
	// segments (mirrors exec.Config.ColdAfter). 0 keeps every tuple hot.
	ColdAfter uint64
	// MaxPartitionSplits, when > 0 on a partitioned query, arms the
	// sharded runtime's skew watcher: a replica still at or above
	// SoftStateLimit after its forced purge round is live-split (its key
	// range divided by observed bucket load onto a new replica), at most
	// this many times over the runtime's life. Requires SoftStateLimit
	// and Partitions >= 1; 0 disables automatic repartitioning
	// (Runtime.SplitPartition remains available manually).
	MaxPartitionSplits int
	// OnRepartition, when set, observes every split the skew watcher
	// attempts — successful or refused — from the watcher goroutine.
	OnRepartition func(RepartitionEvent)
}

// RepartitionEvent describes one attempted skew-driven partition split.
type RepartitionEvent struct {
	// Query names the repartitioned query.
	Query string
	// Hot is the replica whose sustained pressure triggered the split.
	Hot int
	// New is the replica that took over the heavier half of Hot's key
	// range (meaningful only when Err is nil).
	New int
	// Parts is the partition count after the attempt.
	Parts int
	// Err is nil on success, or the reason the split was refused (e.g.
	// single-bucket key skew that routing cannot separate).
	Err error
}

// Registered is one admitted continuous join query.
type Registered struct {
	Name   string
	Query  *query.CJQ
	Report *safety.Report
	Plan   *plan.Node
	// Exactly one of Tree and Part is non-nil: Tree is the single-threaded
	// operator tree, Part the hash-partitioned replica set used when
	// Options.Partitions >= 1 and the query is co-partitionable.
	Tree *exec.Tree
	Part *exec.PartitionedTree
	// PartitionReason explains why a Partitions request fell back to the
	// single-tree path ("" when partitioning was not requested or is
	// active).
	PartitionReason string
	// Results buffers emitted result tuples when no OnResult callback is
	// installed.
	Results []stream.Tuple
	// Output is the schema of delivered results (the plan's join output,
	// or the projected schema for SQL-registered queries).
	Output   *stream.Schema
	onResult func(stream.Tuple)
	onPunct  func(stream.Punctuation)
	// delivered counts every output (result tuple or propagated
	// punctuation) delivered over the query's life. It is owned by
	// whatever goroutine drives the query (the shard worker, the
	// partition merger, or the sequential caller) and is captured at
	// checkpoint barriers so delivery sequence numbers survive a
	// crash/restore (see Delivered and SetDeliveryHook).
	delivered uint64
	// onDeliver, when set, replaces onResult/onPunct/Results entirely:
	// every output is handed to it with its 1-based delivery sequence
	// number. The serving layer uses this to stamp subscriber frames.
	onDeliver func(seq uint64, e stream.Element)
	// filter, when set, drops input tuples before they reach the plan
	// (SQL literal predicates); punctuations always pass.
	filter func(input int, t stream.Tuple) bool
	// streamInput maps a stream name to this query's stream index.
	streamInput map[string]int
	// pressure, maxSplits and onRepartition drive the sharded runtime's
	// skew watcher (Options.MaxPartitionSplits): replica pressure events
	// are teed into the channel by the exec.Config.OnPressure wrapper
	// installed at registration, and the watcher splits hot replicas
	// from them. pressure is nil unless the watcher was requested.
	pressure      chan exec.PressureEvent
	maxSplits     int
	onRepartition func(RepartitionEvent)
}

// Register admits a continuous join query: it runs the safety check
// (Theorem 4 via the TPG) and rejects unsafe queries, then compiles a
// safe execution plan. The returned Registered handle exposes the plan,
// the safety report and the live operator statistics.
func (d *DSMS) Register(name string, q *query.CJQ, opts Options) (*Registered, error) {
	if _, dup := d.queries[name]; dup {
		return nil, fmt.Errorf("engine: query %q already registered", name)
	}
	rep, err := safety.Check(q, d.schemes)
	if err != nil {
		return nil, err
	}
	if !rep.Safe {
		return nil, fmt.Errorf("engine: query %q rejected as unsafe:\n%s", name, rep.Explain(q))
	}
	p := opts.Plan
	if p == nil {
		p, err = plan.ChooseSafe(q, d.schemes, opts.CostModel)
		if err != nil {
			return nil, err
		}
	} else {
		safePlan, _, err := plan.CheckPlan(q, d.schemes, p)
		if err != nil {
			return nil, err
		}
		if !safePlan {
			return nil, fmt.Errorf("engine: forced plan %s for query %q is unsafe (Definition 2)", p.Render(q), name)
		}
	}
	cfg := exec.Config{
		Query:             q,
		Schemes:           d.schemes,
		PurgeBatch:        opts.PurgeBatch,
		PunctLifespan:     opts.PunctLifespan,
		PurgePunctuations: opts.PurgePunctuations,
		StateLimit:        opts.StateLimit,
		SoftStateLimit:    opts.SoftStateLimit,
		OnPressure:        opts.OnPressure,
		EnforcePromises:   opts.EnforcePromises,
		ColdAfter:         opts.ColdAfter,
	}
	r := &Registered{
		Name:        name,
		Query:       q,
		Report:      rep,
		Plan:        p,
		onResult:    opts.OnResult,
		onPunct:     opts.OnPunct,
		streamInput: make(map[string]int, q.N()),
	}
	if opts.Partitions < 0 {
		return nil, fmt.Errorf("engine: query %q: negative partition count %d", name, opts.Partitions)
	}
	if opts.Partitions >= 1 && opts.MaxPartitionSplits > 0 {
		// Arm the sharded runtime's skew watcher: tee replica pressure
		// events into a channel the watcher drains. The tee never blocks
		// the partition worker that fired the event — a watcher that falls
		// behind just misses an excursion, and pressure re-fires on the
		// next one.
		r.maxSplits = opts.MaxPartitionSplits
		r.onRepartition = opts.OnRepartition
		r.pressure = make(chan exec.PressureEvent, 16)
		user, tee := opts.OnPressure, r.pressure
		cfg.OnPressure = func(ev exec.PressureEvent) {
			select {
			case tee <- ev:
			default:
			}
			if user != nil {
				user(ev)
			}
		}
	}
	if opts.Partitions >= 1 {
		part, err := exec.NewPartitionedTree(cfg, p, opts.Partitions)
		switch {
		case err == nil:
			r.Part = part
		case errors.Is(err, plan.ErrNotCoPartitionable):
			// Fall back to the single-tree path — loudly, not silently: the
			// reason lands on the handle for callers (punctrun warns on it).
			r.PartitionReason = err.Error()
		default:
			return nil, err
		}
	}
	if r.Part == nil {
		tree, err := exec.NewTree(cfg, p)
		if err != nil {
			return nil, err
		}
		r.Tree = tree
	}
	r.Output = r.OutputSchema()
	for i := 0; i < q.N(); i++ {
		r.streamInput[q.Stream(i).Name()] = i
	}
	d.queries[name] = r
	d.order = append(d.order, name)
	return r, nil
}

// Unregister removes a query.
func (d *DSMS) Unregister(name string) bool {
	if _, ok := d.queries[name]; !ok {
		return false
	}
	delete(d.queries, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return true
}

// Queries returns the registered query names in registration order.
func (d *DSMS) Queries() []string { return append([]string(nil), d.order...) }

// Get returns a registered query by name.
func (d *DSMS) Get(name string) (*Registered, bool) {
	r, ok := d.queries[name]
	return r, ok
}

// Push feeds one element of the named raw stream to every registered
// query that consumes that stream (the input manager of Figure 2). This
// is the sequential path: queries execute in registration order on the
// calling goroutine. RunSharded provides the concurrent alternative.
func (d *DSMS) Push(streamName string, e stream.Element) error {
	for _, name := range d.order {
		r := d.queries[name]
		input, ok := r.streamInput[streamName]
		if !ok || !r.accepts(input, e) {
			continue
		}
		if err := r.push(input, e); err != nil {
			return fmt.Errorf("engine: query %q: %w", name, err)
		}
	}
	return nil
}

// accepts reports whether a routed element passes the query's input
// filter (SQL literal predicates); punctuations always pass. The filter
// is immutable after registration, so accepts is safe to call from the
// router goroutine while shards run.
func (r *Registered) accepts(input int, e stream.Element) bool {
	return r.filter == nil || e.IsPunct() || r.filter(input, e.Tuple())
}

// push feeds one routed element into the query's executor and delivers
// the outputs. It is the single-query step shared by the sequential Push
// path and the sharded runtime's workers; everything it touches (tree
// state, stats, result buffer) belongs to exactly one goroutine at a time.
func (r *Registered) push(input int, e stream.Element) error {
	var outs []stream.Element
	var err error
	if r.Part != nil {
		outs, err = r.Part.Push(input, e)
	} else {
		outs, err = r.Tree.Push(input, e)
	}
	if err != nil {
		return err
	}
	r.deliver(outs)
	return nil
}

// pushBatch feeds a run of routed elements into the query's executor via
// exec's batched path and delivers the outputs, exactly as if push were
// called per element. On error it returns the offender's index, with the
// preceding elements' outputs already delivered, so the caller can
// classify the offender and resume with the rest of the run.
func (r *Registered) pushBatch(input int, elems []stream.Element) (int, error) {
	var outs []stream.Element
	var n int
	var err error
	if r.Part != nil {
		outs, n, err = r.Part.PushBatch(input, elems)
	} else {
		outs, n, err = r.Tree.PushBatch(input, elems)
	}
	r.deliver(outs)
	return n, err
}

// sweepExec dispatches Sweep to the active executor.
func (r *Registered) sweepExec() (int, []stream.Element, error) {
	if r.Part != nil {
		return r.Part.Sweep()
	}
	return r.Tree.Sweep()
}

// flushExec dispatches Flush to the active executor.
func (r *Registered) flushExec() ([]stream.Element, error) {
	if r.Part != nil {
		return r.Part.Flush()
	}
	return r.Tree.Flush()
}

// StatsSnapshot returns per-operator stats from the active executor; for
// a partitioned query it returns per-operator sums across the replicas.
func (r *Registered) StatsSnapshot() []*exec.Stats {
	if r.Part != nil {
		return r.Part.StatsSnapshot()
	}
	return r.Tree.StatsSnapshot()
}

// writeState dispatches state serialization to the active executor.
func (r *Registered) writeState(w io.Writer) error {
	if r.Part != nil {
		return r.Part.WriteState(w)
	}
	return r.Tree.WriteState(w)
}

// Partitions returns the active partition count: 0 when the query runs on
// the single-tree path.
func (r *Registered) Partitions() int {
	if r.Part != nil {
		return r.Part.Partitions()
	}
	return 0
}

// TotalState sums the query's stored tuples across operators (and
// replicas, when partitioned).
func (r *Registered) TotalState() int {
	if r.Part != nil {
		return r.Part.TotalState()
	}
	return r.Tree.TotalState()
}

// TotalPunctStore sums the query's stored punctuations.
func (r *Registered) TotalPunctStore() int {
	if r.Part != nil {
		return r.Part.TotalPunctStore()
	}
	return r.Tree.TotalPunctStore()
}

// MaxState sums the query's state high-water marks.
func (r *Registered) MaxState() int {
	if r.Part != nil {
		return r.Part.MaxState()
	}
	return r.Tree.MaxState()
}

// OutputSchema is the plan's root output schema.
func (r *Registered) OutputSchema() *stream.Schema {
	if r.Part != nil {
		return r.Part.OutputSchema()
	}
	return r.Tree.OutputSchema()
}

// Sweep runs the §5.1 background clean-up over every registered query
// and returns the total number of tuples removed.
func (d *DSMS) Sweep() (int, error) {
	total := 0
	for _, name := range d.order {
		r := d.queries[name]
		removed, outs, err := r.sweepExec()
		if err != nil {
			return total, err
		}
		total += removed
		r.deliver(outs)
	}
	return total, nil
}

// Flush forces pending lazy purge rounds in every query.
func (d *DSMS) Flush() error {
	for _, name := range d.order {
		r := d.queries[name]
		outs, err := r.flushExec()
		if err != nil {
			return err
		}
		r.deliver(outs)
	}
	return nil
}

// SetDeliveryHook routes every delivered output — result tuples and
// propagated punctuations alike — to fn with its 1-based delivery
// sequence number, instead of the OnResult/OnPunct callbacks or the
// Results buffer. The sequence is the query's total delivery count: it
// is captured in checkpoints and restored by RestoreRuntime, so a
// resumed run re-emits post-checkpoint outputs under the same numbers
// an uninterrupted run would have used — the property the serving
// layer's duplicate suppression rests on. Install the hook before the
// runtime starts; it runs on the query's driving goroutine.
func (r *Registered) SetDeliveryHook(fn func(seq uint64, e stream.Element)) {
	r.onDeliver = fn
}

// Delivered returns the query's total delivery count. Only meaningful
// on a quiescent query (before a runtime starts or after Wait); while a
// runtime runs the counter belongs to the driving goroutine.
func (r *Registered) Delivered() uint64 { return r.delivered }

func (r *Registered) deliver(outs []stream.Element) {
	if r.onDeliver != nil {
		for _, o := range outs {
			r.delivered++
			r.onDeliver(r.delivered, o)
		}
		return
	}
	for _, o := range outs {
		r.delivered++
		if o.IsPunct() {
			if r.onPunct != nil {
				r.onPunct(o.Punct())
			}
			continue
		}
		if r.onResult != nil {
			r.onResult(o.Tuple())
		} else {
			r.Results = append(r.Results, o.Tuple())
		}
	}
}

// Describe renders a human-readable status block for a registered query:
// its plan, per-stream purgeability, and live operator statistics.
func (d *DSMS) Describe(name string) (string, error) {
	r, ok := d.queries[name]
	if !ok {
		return "", fmt.Errorf("engine: no query %q", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query %q: %s\n", r.Name, r.Query)
	fmt.Fprintf(&b, "plan: %s\n", r.Plan.Render(r.Query))
	fmt.Fprintf(&b, "output: %s\n", r.Output)
	b.WriteString(r.Report.Explain(r.Query))
	if r.Part != nil {
		fmt.Fprintf(&b, "partitions: %d (routing on %s)\n", r.Part.Partitions(), r.Part.Routing())
	} else if r.PartitionReason != "" {
		fmt.Fprintf(&b, "partitions: fell back to single-tree execution: %s\n", r.PartitionReason)
	}
	for i, st := range r.StatsSnapshot() {
		fmt.Fprintf(&b, "operator %d: %s\n", i, st)
	}
	return b.String(), nil
}

// TotalState sums stored tuples across all queries.
func (d *DSMS) TotalState() int {
	total := 0
	for _, r := range d.queries {
		total += r.TotalState()
	}
	return total
}

// StreamsInUse returns the names of streams any registered query consumes,
// sorted.
func (d *DSMS) StreamsInUse() []string {
	set := make(map[string]bool)
	for _, r := range d.queries {
		for name := range r.streamInput {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
