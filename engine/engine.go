// Package engine is the DSMS shell of the paper's Figure 2: a query
// register that holds the system's punctuation scheme set and admits only
// continuous join queries that pass the compile-time safety check, an
// input manager that routes stream elements (tuples and punctuations) to
// every registered query, and a query processor that runs each admitted
// query on a safe execution plan.
package engine

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"punctsafe/exec"
	"punctsafe/plan"
	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

// DSMS is a single-threaded data stream management system instance. All
// methods must be called from one goroutine; RunAsync wraps the Push
// entry point in a serial channel loop for concurrent feeding, and
// RunSharded runs each registered query on its own goroutine behind a
// stream router.
type DSMS struct {
	schemes *stream.SchemeSet
	queries map[string]*Registered
	order   []string
	// groups indexes the share groups of Options.Share registrations by
	// fingerprint, so a new registration can attach to an existing
	// physical tree (see share.go). Singleton unshared groups are not
	// indexed — nothing can join them.
	groups map[string]*shareGroup
}

// New returns an empty DSMS with no schemes registered.
func New() *DSMS {
	return &DSMS{
		schemes: stream.NewSchemeSet(),
		queries: make(map[string]*Registered),
		groups:  make(map[string]*shareGroup),
	}
}

// RegisterScheme adds a punctuation scheme to the query register (the
// application-semantics knowledge of §2.3). Schemes must be registered
// before the queries that rely on them.
func (d *DSMS) RegisterScheme(s stream.Scheme) { d.schemes.Add(s) }

// Schemes returns a copy of the registered scheme set.
func (d *DSMS) Schemes() *stream.SchemeSet { return d.schemes.Clone() }

// Options tunes how an admitted query is executed.
type Options struct {
	// Plan forces a specific execution plan. When nil the engine picks
	// the cheapest safe plan (§5.2). A forced plan is still checked for
	// safety (Definition 2) and rejected if unsafe.
	Plan *plan.Node
	// CostModel overrides the default cost model for plan choice.
	CostModel *plan.CostModel
	// PurgeBatch, PunctLifespan, PurgePunctuations, StateLimit,
	// SoftStateLimit, OnPressure and EnforcePromises mirror exec.Config.
	PurgeBatch        int
	PunctLifespan     uint64
	PurgePunctuations bool
	StateLimit        int
	SoftStateLimit    int
	OnPressure        func(exec.PressureEvent)
	EnforcePromises   bool
	// OnResult, when set, is invoked for every result tuple instead of
	// buffering it in Results.
	OnResult func(stream.Tuple)
	// OnPunct, when set, is invoked for every punctuation the plan's root
	// operator propagates (e.g. to drive a downstream blocking operator
	// such as a group-by).
	OnPunct func(stream.Punctuation)
	// Partitions, when >= 1, asks for intra-query parallel execution: the
	// plan runs as that many hash-partitioned replicas (tuples routed by
	// the query's co-partitioning attribute, punctuations broadcast), and
	// RunSharded gives the query's shard a worker pool. 0 (the default)
	// keeps the single-tree path. Partitions=1 runs the partition
	// machinery with one replica — useful for measuring its overhead. A
	// query with no attribute equated across all its streams cannot be
	// partitioned; it falls back to the single-tree path with the reason
	// recorded in Registered.PartitionReason.
	Partitions int
	// ColdAfter enables two-tier join state: every ColdAfter processed
	// elements, stored tuples that survived a full inter-freeze interval
	// are compacted out of the hot insert path into immutable cold
	// segments (mirrors exec.Config.ColdAfter). 0 keeps every tuple hot.
	ColdAfter uint64
	// MaxPartitionSplits, when > 0 on a partitioned query, arms the
	// sharded runtime's skew watcher: a replica still at or above
	// SoftStateLimit after its forced purge round is live-split (its key
	// range divided by observed bucket load onto a new replica), at most
	// this many times over the runtime's life. Requires SoftStateLimit
	// and Partitions >= 1; 0 disables automatic repartitioning
	// (Runtime.SplitPartition remains available manually).
	MaxPartitionSplits int
	// OnRepartition, when set, observes every split the skew watcher
	// attempts — successful or refused — from the watcher goroutine.
	OnRepartition func(RepartitionEvent)
	// Share opts the query into common-subplan sharing: if a previously
	// registered Share query has the same canonical fingerprint (join
	// shape, streams, equality classes, punctuation schemes, and every
	// execution-relevant option above plus ShareTag), this query attaches
	// to that query's physical tree as a subscriber instead of building
	// its own — the join is evaluated once and outputs fan out to every
	// member's delivery path with per-member sequence numbers, stats and
	// dead-letter attribution. Delivery-side callbacks (OnResult,
	// OnPunct, delivery hooks) stay per-member; executor-side observers
	// (OnPressure, OnRepartition) ride the group driver's registration.
	Share bool
	// ShareTag discriminates Share fingerprints beyond what the engine
	// can see: callers whose queries differ in ways invisible to the
	// planner (e.g. SQL input filters, which RegisterSQL canonicalizes
	// into this tag) must tag them apart, or identical-looking queries
	// would incorrectly share one tree. Ignored unless Share is set.
	ShareTag string
}

// RepartitionEvent describes one attempted skew-driven partition split.
type RepartitionEvent struct {
	// Query names the repartitioned query.
	Query string
	// Hot is the replica whose sustained pressure triggered the split.
	Hot int
	// New is the replica that took over the heavier half of Hot's key
	// range (meaningful only when Err is nil).
	New int
	// Parts is the partition count after the attempt.
	Parts int
	// Err is nil on success, or the reason the split was refused (e.g.
	// single-bucket key skew that routing cannot separate).
	Err error
}

// Registered is one admitted continuous join query.
type Registered struct {
	Name   string
	Query  *query.CJQ
	Report *safety.Report
	Plan   *plan.Node
	// Exactly one of Tree and Part is non-nil: Tree is the single-threaded
	// operator tree, Part the hash-partitioned replica set used when
	// Options.Partitions >= 1 and the query is co-partitionable.
	Tree *exec.Tree
	Part *exec.PartitionedTree
	// PartitionReason explains why a Partitions request fell back to the
	// single-tree path ("" when partitioning was not requested or is
	// active).
	PartitionReason string
	// Results buffers emitted result tuples when no OnResult callback is
	// installed.
	Results []stream.Tuple
	// Output is the schema of delivered results (the plan's join output,
	// or the projected schema for SQL-registered queries).
	Output   *stream.Schema
	onResult func(stream.Tuple)
	onPunct  func(stream.Punctuation)
	// delivered counts every output (result tuple or propagated
	// punctuation) delivered over the query's life. It is owned by
	// whatever goroutine drives the query (the shard worker, the
	// partition merger, or the sequential caller) and is captured at
	// checkpoint barriers so delivery sequence numbers survive a
	// crash/restore (see Delivered and SetDeliveryHook).
	delivered uint64
	// onDeliver, when set, replaces onResult/onPunct/Results entirely:
	// every output is handed to it with its 1-based delivery sequence
	// number. The serving layer uses this to stamp subscriber frames.
	onDeliver func(seq uint64, e stream.Element)
	// filter, when set, drops input tuples before they reach the plan
	// (SQL literal predicates); punctuations always pass.
	filter func(input int, t stream.Tuple) bool
	// streamInput maps a stream name to this query's stream index.
	streamInput map[string]int
	// pressure, maxSplits and onRepartition drive the sharded runtime's
	// skew watcher (Options.MaxPartitionSplits): replica pressure events
	// are teed into the channel by the exec.Config.OnPressure wrapper
	// installed at registration, and the watcher splits hot replicas
	// from them. pressure is nil unless the watcher was requested.
	pressure      chan exec.PressureEvent
	maxSplits     int
	onRepartition func(RepartitionEvent)
	// group is the share group this query belongs to — a singleton for
	// unshared queries, shared with every fingerprint-equal Share
	// registration otherwise (see share.go). Never nil after Register.
	group *shareGroup
	// Shared-delivery-log cursors, owned by the shard worker that serves
	// this subscriber (see shard.materialize). A passive subscriber — no
	// OnResult/OnPunct/delivery hook — does not receive per-element
	// fan-out; its Results are materialized at barriers as slices of the
	// shard's shared tuple log. logBase is the log index where this
	// subscriber's view begins (fixed at attach), logStart the
	// materialization cursor, logStartCount the element-count cursor
	// behind delivered, and logPure whether Results is a pure log alias
	// (re-sliced zero-copy) or must be extended by appending.
	logBase       int
	logStart      int
	logStartCount uint64
	logPure       bool
	// Fingerprint is the canonical subplan fingerprint computed for
	// Options.Share registrations ("" otherwise); equal fingerprints mean
	// one physical tree.
	Fingerprint string
}

// Register admits a continuous join query: it runs the safety check
// (Theorem 4 via the TPG) and rejects unsafe queries, then compiles a
// safe execution plan. The returned Registered handle exposes the plan,
// the safety report and the live operator statistics.
func (d *DSMS) Register(name string, q *query.CJQ, opts Options) (*Registered, error) {
	if _, dup := d.queries[name]; dup {
		return nil, fmt.Errorf("engine: query %q already registered", name)
	}
	rep, err := safety.Check(q, d.schemes)
	if err != nil {
		return nil, err
	}
	if !rep.Safe {
		return nil, fmt.Errorf("engine: query %q rejected as unsafe:\n%s", name, rep.Explain(q))
	}
	p := opts.Plan
	if p == nil {
		p, err = plan.ChooseSafe(q, d.schemes, opts.CostModel)
		if err != nil {
			return nil, err
		}
	} else {
		safePlan, _, err := plan.CheckPlan(q, d.schemes, p)
		if err != nil {
			return nil, err
		}
		if !safePlan {
			return nil, fmt.Errorf("engine: forced plan %s for query %q is unsafe (Definition 2)", p.Render(q), name)
		}
	}
	cfg := exec.Config{
		Query:             q,
		Schemes:           d.schemes,
		PurgeBatch:        opts.PurgeBatch,
		PunctLifespan:     opts.PunctLifespan,
		PurgePunctuations: opts.PurgePunctuations,
		StateLimit:        opts.StateLimit,
		SoftStateLimit:    opts.SoftStateLimit,
		OnPressure:        opts.OnPressure,
		EnforcePromises:   opts.EnforcePromises,
		ColdAfter:         opts.ColdAfter,
	}
	r := &Registered{
		Name:        name,
		Query:       q,
		Report:      rep,
		Plan:        p,
		onResult:    opts.OnResult,
		onPunct:     opts.OnPunct,
		streamInput: make(map[string]int, q.N()),
	}
	if opts.Partitions < 0 {
		return nil, fmt.Errorf("engine: query %q: negative partition count %d", name, opts.Partitions)
	}
	if opts.Share {
		r.Fingerprint = plan.Fingerprint(q, d.schemes, p, shareConfigTag(opts))
		if g, ok := d.groups[r.Fingerprint]; ok {
			// A fingerprint-equal tree already runs: attach as a
			// subscriber. The member aliases the driver's executor and
			// adopts the driver's stream indexing (the canonical
			// fingerprint guarantees the stream name sets match), so
			// routed elements feed the shared tree under the indices it
			// was built with.
			drv := g.driver()
			r.Tree, r.Part = drv.Tree, drv.Part
			r.PartitionReason = drv.PartitionReason
			r.Output = r.OutputSchema()
			for streamName, input := range drv.streamInput {
				r.streamInput[streamName] = input
			}
			r.group = g
			g.members = append(g.members, r)
			d.queries[name] = r
			d.order = append(d.order, name)
			return r, nil
		}
	}
	if opts.Partitions >= 1 && opts.MaxPartitionSplits > 0 {
		// Arm the sharded runtime's skew watcher: tee replica pressure
		// events into a channel the watcher drains. The tee never blocks
		// the partition worker that fired the event — a watcher that falls
		// behind just misses an excursion, and pressure re-fires on the
		// next one.
		r.maxSplits = opts.MaxPartitionSplits
		r.onRepartition = opts.OnRepartition
		r.pressure = make(chan exec.PressureEvent, 16)
		user, tee := opts.OnPressure, r.pressure
		cfg.OnPressure = func(ev exec.PressureEvent) {
			select {
			case tee <- ev:
			default:
			}
			if user != nil {
				user(ev)
			}
		}
	}
	if opts.Partitions >= 1 {
		part, err := exec.NewPartitionedTree(cfg, p, opts.Partitions)
		switch {
		case err == nil:
			r.Part = part
		case errors.Is(err, plan.ErrNotCoPartitionable):
			// Fall back to the single-tree path — loudly, not silently: the
			// reason lands on the handle for callers (punctrun warns on it).
			r.PartitionReason = err.Error()
		default:
			return nil, err
		}
	}
	if r.Part == nil {
		tree, err := exec.NewTree(cfg, p)
		if err != nil {
			return nil, err
		}
		r.Tree = tree
	}
	r.Output = r.OutputSchema()
	for i := 0; i < q.N(); i++ {
		r.streamInput[q.Stream(i).Name()] = i
	}
	r.group = &shareGroup{fp: r.Fingerprint, members: []*Registered{r}}
	if opts.Share {
		d.groups[r.Fingerprint] = r.group
	}
	d.queries[name] = r
	d.order = append(d.order, name)
	return r, nil
}

// Unregister removes a query. Removing a share-group member detaches its
// subscription; the physical tree lives on until the last member leaves.
func (d *DSMS) Unregister(name string) bool {
	r, ok := d.queries[name]
	if !ok {
		return false
	}
	delete(d.queries, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	r.group.removeMember(name)
	if len(r.group.members) == 0 && r.group.fp != "" {
		delete(d.groups, r.group.fp)
	}
	return true
}

// Queries returns the registered query names in registration order.
func (d *DSMS) Queries() []string { return append([]string(nil), d.order...) }

// Get returns a registered query by name.
func (d *DSMS) Get(name string) (*Registered, bool) {
	r, ok := d.queries[name]
	return r, ok
}

// Push feeds one element of the named raw stream to every registered
// query that consumes that stream (the input manager of Figure 2). This
// is the sequential path: queries execute in registration order on the
// calling goroutine. A share group executes once, on its driver, and the
// outputs fan out to every member. RunSharded provides the concurrent
// alternative.
func (d *DSMS) Push(streamName string, e stream.Element) error {
	for _, name := range d.order {
		r := d.queries[name]
		if !r.isDriver() {
			continue
		}
		input, ok := r.streamInput[streamName]
		if !ok || !r.accepts(input, e) {
			continue
		}
		outs, err := r.pushExec(input, e)
		if err != nil {
			return fmt.Errorf("engine: query %q: %w", name, err)
		}
		r.group.deliver(outs)
	}
	return nil
}

// accepts reports whether a routed element passes the query's input
// filter (SQL literal predicates); punctuations always pass. The filter
// is immutable after registration, so accepts is safe to call from the
// router goroutine while shards run.
func (r *Registered) accepts(input int, e stream.Element) bool {
	return r.filter == nil || e.IsPunct() || r.filter(input, e.Tuple())
}

// pushExec feeds one routed element into the query's executor and
// returns the outputs undelivered — the caller (sequential Push, shard
// worker) owns delivery, which for a shared tree fans out to every group
// member. Everything it touches (tree state, stats) belongs to exactly
// one goroutine at a time.
func (r *Registered) pushExec(input int, e stream.Element) ([]stream.Element, error) {
	if r.Part != nil {
		return r.Part.Push(input, e)
	}
	return r.Tree.Push(input, e)
}

// pushBatchExec feeds a run of routed elements into the query's executor
// via exec's batched path, exactly as if pushExec were called per
// element. On error it returns the offender's index alongside the
// outputs of the preceding elements, so the caller can deliver those,
// classify the offender, and resume with the rest of the run.
func (r *Registered) pushBatchExec(input int, elems []stream.Element) ([]stream.Element, int, error) {
	if r.Part != nil {
		return r.Part.PushBatch(input, elems)
	}
	return r.Tree.PushBatch(input, elems)
}

// sweepExec dispatches Sweep to the active executor.
func (r *Registered) sweepExec() (int, []stream.Element, error) {
	if r.Part != nil {
		return r.Part.Sweep()
	}
	return r.Tree.Sweep()
}

// flushExec dispatches Flush to the active executor.
func (r *Registered) flushExec() ([]stream.Element, error) {
	if r.Part != nil {
		return r.Part.Flush()
	}
	return r.Tree.Flush()
}

// StatsSnapshot returns per-operator stats from the active executor; for
// a partitioned query it returns per-operator sums across the replicas.
func (r *Registered) StatsSnapshot() []*exec.Stats {
	if r.Part != nil {
		return r.Part.StatsSnapshot()
	}
	return r.Tree.StatsSnapshot()
}

// writeState dispatches state serialization to the active executor.
func (r *Registered) writeState(w io.Writer) error {
	if r.Part != nil {
		return r.Part.WriteState(w)
	}
	return r.Tree.WriteState(w)
}

// Partitions returns the active partition count: 0 when the query runs on
// the single-tree path.
func (r *Registered) Partitions() int {
	if r.Part != nil {
		return r.Part.Partitions()
	}
	return 0
}

// TotalState sums the query's stored tuples across operators (and
// replicas, when partitioned).
func (r *Registered) TotalState() int {
	if r.Part != nil {
		return r.Part.TotalState()
	}
	return r.Tree.TotalState()
}

// TotalPunctStore sums the query's stored punctuations.
func (r *Registered) TotalPunctStore() int {
	if r.Part != nil {
		return r.Part.TotalPunctStore()
	}
	return r.Tree.TotalPunctStore()
}

// MaxState sums the query's state high-water marks.
func (r *Registered) MaxState() int {
	if r.Part != nil {
		return r.Part.MaxState()
	}
	return r.Tree.MaxState()
}

// OutputSchema is the plan's root output schema.
func (r *Registered) OutputSchema() *stream.Schema {
	if r.Part != nil {
		return r.Part.OutputSchema()
	}
	return r.Tree.OutputSchema()
}

// Sweep runs the §5.1 background clean-up over every registered query
// (once per share group) and returns the total number of tuples removed.
func (d *DSMS) Sweep() (int, error) {
	total := 0
	for _, name := range d.order {
		r := d.queries[name]
		if !r.isDriver() {
			continue
		}
		removed, outs, err := r.sweepExec()
		if err != nil {
			return total, err
		}
		total += removed
		r.group.deliver(outs)
	}
	return total, nil
}

// Flush forces pending lazy purge rounds in every query (once per share
// group).
func (d *DSMS) Flush() error {
	for _, name := range d.order {
		r := d.queries[name]
		if !r.isDriver() {
			continue
		}
		outs, err := r.flushExec()
		if err != nil {
			return err
		}
		r.group.deliver(outs)
	}
	return nil
}

// SetDeliveryHook routes every delivered output — result tuples and
// propagated punctuations alike — to fn with its 1-based delivery
// sequence number, instead of the OnResult/OnPunct callbacks or the
// Results buffer. The sequence is the query's total delivery count: it
// is captured in checkpoints and restored by RestoreRuntime, so a
// resumed run re-emits post-checkpoint outputs under the same numbers
// an uninterrupted run would have used — the property the serving
// layer's duplicate suppression rests on. Install the hook before the
// runtime starts; it runs on the query's driving goroutine.
func (r *Registered) SetDeliveryHook(fn func(seq uint64, e stream.Element)) {
	r.onDeliver = fn
}

// Delivered returns the query's total delivery count. Only meaningful
// on a quiescent query (before a runtime starts or after Wait); while a
// runtime runs the counter belongs to the driving goroutine.
func (r *Registered) Delivered() uint64 { return r.delivered }

// passiveSub reports whether the query observes its outputs only through
// Results and Delivered — no per-element callbacks. Passive subscribers
// are served from the shard's shared delivery log at barrier points
// instead of per-element fan-out, so a shared tree's ingest cost is
// independent of how many passive views subscribe to it.
func (r *Registered) passiveSub() bool {
	return r.onDeliver == nil && r.onResult == nil && r.onPunct == nil
}

func (r *Registered) deliver(outs []stream.Element) {
	if r.onDeliver != nil {
		for _, o := range outs {
			r.delivered++
			r.onDeliver(r.delivered, o)
		}
		return
	}
	for _, o := range outs {
		r.delivered++
		if o.IsPunct() {
			if r.onPunct != nil {
				r.onPunct(o.Punct())
			}
			continue
		}
		if r.onResult != nil {
			r.onResult(o.Tuple())
		} else {
			r.Results = append(r.Results, o.Tuple())
		}
	}
}

// Describe renders a human-readable status block for a registered query:
// its plan, per-stream purgeability, and live operator statistics.
func (d *DSMS) Describe(name string) (string, error) {
	r, ok := d.queries[name]
	if !ok {
		return "", fmt.Errorf("engine: no query %q", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query %q: %s\n", r.Name, r.Query)
	fmt.Fprintf(&b, "plan: %s\n", r.Plan.Render(r.Query))
	fmt.Fprintf(&b, "output: %s\n", r.Output)
	b.WriteString(r.Report.Explain(r.Query))
	if r.Part != nil {
		fmt.Fprintf(&b, "partitions: %d (routing on %s)\n", r.Part.Partitions(), r.Part.Routing())
	} else if r.PartitionReason != "" {
		fmt.Fprintf(&b, "partitions: fell back to single-tree execution: %s\n", r.PartitionReason)
	}
	if r.Fingerprint != "" {
		fmt.Fprintf(&b, "shared: fingerprint %s, %d subscriber(s) on one tree\n",
			r.Fingerprint, len(r.group.members))
	}
	for i, st := range r.StatsSnapshot() {
		fmt.Fprintf(&b, "operator %d: %s\n", i, st)
	}
	return b.String(), nil
}

// TotalState sums stored tuples across all queries, counting each shared
// physical tree once.
func (d *DSMS) TotalState() int {
	total := 0
	for _, r := range d.queries {
		if !r.isDriver() {
			continue
		}
		total += r.TotalState()
	}
	return total
}

// StreamsInUse returns the names of streams any registered query consumes,
// sorted.
func (d *DSMS) StreamsInUse() []string {
	set := make(map[string]bool)
	for _, r := range d.queries {
		for name := range r.streamInput {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
