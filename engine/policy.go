package engine

import (
	"errors"
	"fmt"
	"runtime/debug"

	"punctsafe/exec"
)

// The paper's safety guarantee holds while the punctuation contract is
// honored; the error policy decides what happens when it is not. Element-
// level contract violations — a late tuple behind its covering
// punctuation (exec.ErrPromiseViolated), a malformed or undecodable
// element (exec.ErrMalformedElement, corrupt wire frames), a panicking
// router-side filter — damage one element, not the operator state, so a
// runtime may drop or quarantine the offender and keep the shard running.
// Everything else (state-limit trips, operator panics, internal invariant
// breaks) still fails the shard: only that query stops; sibling shards
// keep processing.

// ErrorPolicy selects how the sharded runtime treats recoverable
// element-level errors.
type ErrorPolicy int

const (
	// Fail stops the offending shard on the first error of any kind and
	// surfaces it through Err and Wait (the strict default).
	Fail ErrorPolicy = iota
	// Drop discards offending elements, counts them in the dead-letter
	// snapshot, and keeps the shard running.
	Drop
	// Quarantine is Drop plus retention: offenders are kept (up to the
	// configured bound) in the dead-letter queue for inspection or replay.
	Quarantine
)

// String renders the policy as its flag spelling.
func (p ErrorPolicy) String() string {
	switch p {
	case Fail:
		return "fail"
	case Drop:
		return "drop"
	case Quarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("ErrorPolicy(%d)", int(p))
	}
}

// ParseErrorPolicy parses the flag spelling of a policy.
func ParseErrorPolicy(s string) (ErrorPolicy, error) {
	switch s {
	case "fail":
		return Fail, nil
	case "drop":
		return Drop, nil
	case "quarantine":
		return Quarantine, nil
	default:
		return Fail, fmt.Errorf("engine: unknown error policy %q (want fail, drop or quarantine)", s)
	}
}

// recoverableError reports whether err is an element-level error the Drop
// and Quarantine policies may absorb. Operator panics are never
// recoverable: a panic mid-push can leave join state inconsistent, so the
// shard must stop.
func recoverableError(err error) bool {
	return errors.Is(err, exec.ErrPromiseViolated) ||
		errors.Is(err, exec.ErrMalformedElement) ||
		errors.Is(err, errFilterPanic)
}

// errFilterPanic marks a router-side input filter that panicked while
// classifying an element. The element is treated as undecidable — an
// element-level fault — rather than poisoning the producer goroutine.
var errFilterPanic = errors.New("engine: input filter panicked")

// PanicError wraps a recovered operator panic as a shard error. The shard
// that panicked fails (its state can no longer be trusted); the process
// and every other shard keep running.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: operator panicked: %v", e.Value)
}

// newPanicError captures the current stack for a recovered value.
func newPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}
