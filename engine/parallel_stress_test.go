package engine

// Multi-producer race stress (ISSUE 6 satellite): concurrent SendBatch
// producers and a parallel wire ingester all feeding one partitioned
// query, interleaved with Stats and Checkpoint barriers, must produce
// exactly the single-tree result set. The concurrent phase carries
// tuples only — tuple arrival order across streams never changes the
// final multiset of an equi-join, and purge waits for punctuation — so
// the assertion is exact even though the interleaving is not. The
// punctuation pass runs single-threaded afterwards and drains all state.
// Run under -race this exercises every ingress path of the parallel
// front-end at once: sender-side routing, epoch seals, control barriers,
// and the parallel wire pipeline.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"punctsafe/stream"
)

const (
	spSendKeys = 24 // keys fed by the SendBatch producers
	spWireKeys = 8  // keys fed over the wire (disjoint range)
	spBids     = 6
	spWatch    = 6
)

// stressTuples builds one stream's tuples for keys [lo, hi).
func stressTuples(streamName string, lo, hi int) []stream.Element {
	var elems []stream.Element
	for k := lo; k < hi; k++ {
		switch streamName {
		case "item":
			elems = append(elems, stream.TupleElement(stream.NewTuple(
				stream.Int(int64(k)), stream.Int(100))))
		case "bid":
			for i := 0; i < spBids; i++ {
				elems = append(elems, stream.TupleElement(stream.NewTuple(
					stream.Int(int64(k)), stream.Int(int64(i)))))
			}
		case "watch":
			for i := 0; i < spWatch; i++ {
				elems = append(elems, stream.TupleElement(stream.NewTuple(
					stream.Int(int64(k)), stream.Int(int64(i)))))
			}
		}
	}
	return elems
}

// stressPuncts closes every key on every stream, releasing all state.
func stressPuncts(t *testing.T, rt *Runtime) {
	t.Helper()
	for _, s := range []string{"item", "bid", "watch"} {
		for k := 0; k < spSendKeys+spWireKeys; k++ {
			p := stream.PunctElement(stream.MustPunctuation(
				stream.Const(stream.Int(int64(k))), stream.Wildcard()))
			if err := rt.Send(s, p); err != nil {
				t.Fatalf("punct %s/%d: %v", s, k, err)
			}
		}
	}
}

func newStressDSMS(t *testing.T, partitions int) (*DSMS, *Registered) {
	t.Helper()
	d := New()
	for _, s := range partitionSchemes().All() {
		d.RegisterScheme(s)
	}
	reg, err := d.Register("q0", partitionQuery(t), Options{Partitions: partitions})
	if err != nil {
		t.Fatal(err)
	}
	if partitions >= 1 && reg.Part == nil {
		t.Fatalf("query fell back to single-tree execution: %s", reg.PartitionReason)
	}
	return d, reg
}

func TestParallelIngestStress(t *testing.T) {
	schemas := partitionQuery(t)
	itemSchema := schemas.Stream(0)
	bidSchema := schemas.Stream(1)
	watchSchema := schemas.Stream(2)

	// The wire producer's slice, encoded once.
	var wireBuf bytes.Buffer
	ww := NewWireWriter(&wireBuf, itemSchema, bidSchema, watchSchema)
	for _, s := range []string{"item", "bid", "watch"} {
		for _, e := range stressTuples(s, spSendKeys, spSendKeys+spWireKeys) {
			if err := ww.Write(s, e); err != nil {
				t.Fatal(err)
			}
		}
	}
	wire := wireBuf.Bytes()

	// Single-tree reference, fed sequentially.
	refD, refReg := newStressDSMS(t, 0)
	refRT := refD.RunSharded(RuntimeOptions{})
	for _, s := range []string{"item", "bid", "watch"} {
		if err := refRT.SendBatch(s, stressTuples(s, 0, spSendKeys)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := refRT.IngestWire(bytes.NewReader(wire), itemSchema, bidSchema, watchSchema); err != nil {
		t.Fatal(err)
	}
	stressPuncts(t, refRT)
	refRT.Close()
	if err := refRT.Wait(); err != nil {
		t.Fatal(err)
	}
	want := sortedResults(refReg)
	if wantLen := (spSendKeys + spWireKeys) * spBids * spWatch; len(want) != wantLen {
		t.Fatalf("reference produced %d results, want %d", len(want), wantLen)
	}

	// Partitioned run: three SendBatch producers (one per stream, each
	// splitting its tuples into small batches), one parallel wire
	// producer, and a barrier goroutine hammering Stats/Checkpoint.
	d, reg := newStressDSMS(t, 4)
	rt := d.RunSharded(RuntimeOptions{})

	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for _, s := range []string{"item", "bid", "watch"} {
		wg.Add(1)
		go func(s string) {
			defer wg.Done()
			elems := stressTuples(s, 0, spSendKeys)
			const chunk = 7 // deliberately odd so batches straddle key groups
			for len(elems) > 0 {
				n := chunk
				if n > len(elems) {
					n = len(elems)
				}
				if err := rt.SendBatch(s, elems[:n]); err != nil {
					errs <- fmt.Errorf("SendBatch %s: %w", s, err)
					return
				}
				elems = elems[n:]
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		n, err := rt.IngestWireParallel(bytes.NewReader(wire), 4, itemSchema, bidSchema, watchSchema)
		if err != nil {
			errs <- fmt.Errorf("IngestWireParallel: %w", err)
			return
		}
		if wantN := spWireKeys * (1 + spBids + spWatch); n != wantN {
			errs <- fmt.Errorf("wire producer routed %d elements, want %d", n, wantN)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Full quiescence barriers racing the producers: every call must
		// observe a consistent snapshot and must not wedge or reorder the
		// pipeline.
		for i := 0; i < 5; i++ {
			if _, err := rt.Stats("q0"); err != nil {
				errs <- fmt.Errorf("Stats: %w", err)
				return
			}
			var sink bytes.Buffer
			if err := rt.Checkpoint(&sink); err != nil {
				errs <- fmt.Errorf("Checkpoint: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stressPuncts(t, rt)
	rt.Close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if dl := rt.DeadLetters(); dl.Total != 0 {
		t.Fatalf("clean stress run dead-lettered %d elements", dl.Total)
	}
	got := sortedResults(reg)
	if !equalStrings(want, got) {
		t.Fatalf("partitioned run diverged: %d results vs single-tree %d", len(got), len(want))
	}

	// Punctuation broadcast drained every replica: total retained state
	// across partitions must be zero.
	stats, err := rt.Stats("q0")
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stats {
		if st.TotalState() != 0 {
			t.Fatalf("operator %d retains %d tuples after full punctuation", i, st.TotalState())
		}
	}
}
