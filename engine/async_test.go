package engine

import (
	"sync"
	"testing"
	"time"

	"punctsafe/stream"
	"punctsafe/workload"
)

// TestAsyncMatchesSync: feeding the auction workload through the
// concurrent input manager produces exactly the synchronous results.
func TestAsyncMatchesSync(t *testing.T) {
	inputs := workload.Auction(workload.AuctionConfig{
		Items: 300, MaxBidsPerItem: 5, OpenWindow: 4,
		PunctuateItems: true, PunctuateClose: true, Seed: 31,
	})

	runSync := func() int {
		d := New()
		for _, s := range workload.AuctionSchemes().All() {
			d.RegisterScheme(s)
		}
		reg, err := d.Register("q", workload.AuctionQuery(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			if err := d.Push(in.Stream, in.Elem); err != nil {
				t.Fatal(err)
			}
		}
		return len(reg.Results)
	}

	d := New()
	for _, s := range workload.AuctionSchemes().All() {
		d.RegisterScheme(s)
	}
	reg, err := d.Register("q", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := d.RunAsync(64)
	for _, in := range inputs {
		a.Send(in.Stream, in.Elem)
	}
	a.Close()
	a.Close() // idempotent
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := a.Processed(); got != uint64(len(inputs)) {
		t.Fatalf("processed %d of %d", got, len(inputs))
	}
	if want := runSync(); len(reg.Results) != want {
		t.Fatalf("async results %d != sync %d", len(reg.Results), want)
	}
	if reg.Tree.TotalState() != 0 {
		t.Fatal("state should drain")
	}
}

// TestAsyncFanIn: multiple producer goroutines share the channel; result
// count is invariant (each item's bids arrive after the item because the
// producers partition by item).
func TestAsyncFanIn(t *testing.T) {
	d := New()
	d.RegisterScheme(stream.MustScheme("item", false, true, false, false))
	d.RegisterScheme(stream.MustScheme("bid", false, true, false))
	reg, err := d.Register("q", workload.AuctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := d.RunAsync(16)

	const producers = 4
	const itemsPer = 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < itemsPer; i++ {
				id := int64(p*itemsPer + i)
				a.Send("item", stream.TupleElement(stream.NewTuple(
					stream.Int(1), stream.Int(id), stream.Str("x"), stream.Float(1))))
				a.Send("bid", stream.TupleElement(stream.NewTuple(
					stream.Int(2), stream.Int(id), stream.Float(3))))
				a.Send("bid", stream.PunctElement(stream.MustPunctuation(
					stream.Wildcard(), stream.Const(stream.Int(id)), stream.Wildcard())))
				a.Send("item", stream.PunctElement(stream.MustPunctuation(
					stream.Wildcard(), stream.Const(stream.Int(id)), stream.Wildcard(), stream.Wildcard())))
			}
		}(p)
	}
	wg.Wait()
	a.Close()
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(reg.Results), producers*itemsPer; got != want {
		t.Fatalf("results = %d, want %d", got, want)
	}
	if reg.Tree.TotalState() != 0 {
		t.Fatalf("state = %d, want 0", reg.Tree.TotalState())
	}
}

// TestAsyncErrorPropagates: a malformed element surfaces from Err while
// producers are still sending — not only from Wait after the queue has
// silently drained — and does not wedge producers.
func TestAsyncErrorPropagates(t *testing.T) {
	d := New()
	d.RegisterScheme(stream.MustScheme("item", false, true, false, false))
	d.RegisterScheme(stream.MustScheme("bid", false, true, false))
	if _, err := d.Register("q", workload.AuctionQuery(), Options{}); err != nil {
		t.Fatal(err)
	}
	a := d.RunAsync(1)
	if err := a.Err(); err != nil {
		t.Fatalf("healthy input reported %v", err)
	}
	// Wrong arity for the item stream.
	a.Send("item", stream.TupleElement(stream.NewTuple(stream.Int(1))))
	deadline := time.Now().Add(5 * time.Second)
	for a.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("Err() never surfaced the processing error mid-run")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		a.Send("item", stream.TupleElement(stream.NewTuple(stream.Int(1)))) // drained, not processed
	}
	a.Close()
	if err := a.Wait(); err == nil {
		t.Fatal("expected the malformed element's error")
	}
	if got := a.Processed(); got != 0 {
		t.Fatalf("Processed = %d, want 0 (nothing succeeded)", got)
	}
}
