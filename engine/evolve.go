package engine

import (
	"fmt"
	"strings"

	"punctsafe/query"
	"punctsafe/safety"
	"punctsafe/stream"
)

// DropScheme removes a punctuation scheme from the query register. Since
// a scheme is a promise the application makes, withdrawing it can strip a
// registered query of its safety guarantee; the call therefore re-checks
// every registered query against the reduced scheme set first and refuses
// (listing the victims) unless force is set, in which case the
// newly-unsafe queries are unregistered. It returns the names of the
// queries affected.
func (d *DSMS) DropScheme(s stream.Scheme, force bool) ([]string, error) {
	if !d.schemes.Remove(s) {
		return nil, fmt.Errorf("engine: scheme %s is not registered", s)
	}
	var unsafe []string
	for _, name := range d.order {
		r := d.queries[name]
		rep, err := safety.Check(r.Query, d.schemes)
		if err != nil {
			d.schemes.Add(s)
			return nil, err
		}
		if !rep.Safe {
			unsafe = append(unsafe, name)
		}
	}
	if len(unsafe) > 0 && !force {
		d.schemes.Add(s) // restore
		return unsafe, fmt.Errorf("engine: dropping %s would make %d registered query(ies) unsafe: %s",
			s, len(unsafe), strings.Join(unsafe, ", "))
	}
	for _, name := range unsafe {
		d.Unregister(name)
	}
	return unsafe, nil
}

// Live query evolution: Attach registers a new continuous query on a
// RUNNING sharded runtime and Detach removes one, neither draining the
// runtime nor pausing unrelated shards. Both take the runtime's close
// lock exclusively — the same serialization Close and Checkpoint use —
// so the registration maps mutate with no producer in flight, and the
// actual subscription cut travels to the owning worker as a mailbox (or
// partition-control) message, landing on an exact element boundary.

// Attach admits a query while the runtime runs. A Share registration
// whose fingerprint matches a live share group attaches to that group's
// physical tree instantly — the new subscriber starts receiving outputs
// from the next element the tree processes, with its delivery sequence
// starting at 1. Any other registration (unshared, or a new fingerprint)
// spawns a fresh shard whose tree starts empty — it joins only tuples
// sent after the attach, exactly like a newly registered view in any
// catalog. Safety checking, plan choice, and option validation are those
// of Register.
func (rt *Runtime) Attach(name string, q *query.CJQ, opts Options) (*Registered, error) {
	return rt.attach(name, q, opts, nil)
}

// attach is Attach with an optional wiring callback, run while the
// exclusive lock is held and BEFORE the registration is published to the
// router or its shard — so delivery-side hooks (projection, filter,
// result sink) are in place before any worker or producer can observe
// the new member.
func (rt *Runtime) attach(name string, q *query.CJQ, opts Options, wire func(*Registered) error) (*Registered, error) {
	rt.closeMu.Lock()
	defer rt.closeMu.Unlock()
	if rt.closed {
		return nil, fmt.Errorf("engine: runtime: Attach after Close")
	}
	r, err := rt.d.Register(name, q, opts)
	if err != nil {
		return nil, err
	}
	if wire != nil {
		if err := wire(r); err != nil {
			rt.d.Unregister(name)
			return nil, err
		}
	}
	if len(r.group.members) > 1 {
		// Joined an existing group: subscribe on the live shard. The
		// membership list is already updated (producers will fan router-
		// side dead letters to the new member from the next send); the
		// worker applies the delivery cut at this message's FIFO position.
		s := rt.byName[r.group.members[0].Name]
		rt.byName[name] = s
		if s.pf != nil {
			s.pf.control(&partCtrl{attach: r, release: make(chan struct{})})
		} else {
			s.mb <- shardMsg{attach: r}
		}
		return r, nil
	}
	rt.spawnShard(r)
	return r, nil
}

// AttachSQL is Attach for a streamsql script: every SELECT statement is
// admitted as <prefix>#<n> on the running runtime, with the script's
// filters and projection installed and the share tag canonicalized as in
// RegisterSQL. On any error the statements already attached by this call
// are detached again.
func (rt *Runtime) AttachSQL(prefix, src string, opts Options) ([]*Registered, error) {
	compiled, err := compileSQL(rt.d, src)
	if err != nil {
		return nil, err
	}
	var regs []*Registered
	for i, cq := range compiled {
		name := fmt.Sprintf("%s#%d", prefix, i+1)
		reg, err := rt.attachCompiled(name, cq, opts)
		if err != nil {
			for _, r := range regs {
				rt.Detach(r.Name)
			}
			return nil, fmt.Errorf("engine: %s: %w", name, err)
		}
		regs = append(regs, reg)
	}
	return regs, nil
}

// Detach removes a registered query from a running runtime. A share-
// group member stops receiving outputs at a mailbox boundary and the
// tree runs on for the remaining subscribers; the last subscriber's
// departure retires the physical tree at its final purge-flush barrier
// (outputs of the flush go nowhere — every subscriber is gone), freeing
// its state without disturbing any other shard.
func (rt *Runtime) Detach(name string) error {
	rt.closeMu.Lock()
	defer rt.closeMu.Unlock()
	if rt.closed {
		return fmt.Errorf("engine: runtime: Detach after Close")
	}
	s, ok := rt.byName[name]
	if !ok {
		return fmt.Errorf("engine: no query %q", name)
	}
	rt.d.Unregister(name)
	delete(rt.byName, name)
	if len(s.group.members) > 0 {
		if s.pf != nil {
			s.pf.control(&partCtrl{detach: name, release: make(chan struct{})})
		} else {
			s.mb <- shardMsg{detach: name}
		}
		return nil
	}
	// Last subscriber gone: retire the tree. Unroute first so no later
	// producer can enqueue, then cut the subscription and close the
	// input; the worker drains, flushes, and exits. The shard stays in
	// rt.shards (Wait still joins it) but Close and Checkpoint skip it.
	s.retired = true
	for streamName := range s.reg.streamInput {
		routes := rt.route[streamName]
		for i, rs := range routes {
			if rs == s {
				rt.route[streamName] = append(routes[:i], routes[i+1:]...)
				break
			}
		}
	}
	if s.pf != nil {
		s.pf.control(&partCtrl{detach: name, release: make(chan struct{})})
		s.pf.close()
	} else {
		s.mb <- shardMsg{detach: name}
		close(s.mb)
	}
	return nil
}
