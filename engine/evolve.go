package engine

import (
	"fmt"
	"strings"

	"punctsafe/safety"
	"punctsafe/stream"
)

// DropScheme removes a punctuation scheme from the query register. Since
// a scheme is a promise the application makes, withdrawing it can strip a
// registered query of its safety guarantee; the call therefore re-checks
// every registered query against the reduced scheme set first and refuses
// (listing the victims) unless force is set, in which case the
// newly-unsafe queries are unregistered. It returns the names of the
// queries affected.
func (d *DSMS) DropScheme(s stream.Scheme, force bool) ([]string, error) {
	if !d.schemes.Remove(s) {
		return nil, fmt.Errorf("engine: scheme %s is not registered", s)
	}
	var unsafe []string
	for _, name := range d.order {
		r := d.queries[name]
		rep, err := safety.Check(r.Query, d.schemes)
		if err != nil {
			d.schemes.Add(s)
			return nil, err
		}
		if !rep.Safe {
			unsafe = append(unsafe, name)
		}
	}
	if len(unsafe) > 0 && !force {
		d.schemes.Add(s) // restore
		return unsafe, fmt.Errorf("engine: dropping %s would make %d registered query(ies) unsafe: %s",
			s, len(unsafe), strings.Join(unsafe, ", "))
	}
	for _, name := range unsafe {
		d.Unregister(name)
	}
	return unsafe, nil
}
