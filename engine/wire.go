package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"punctsafe/stream"
)

// The wire format carries multiplexed stream elements from the
// application environment into the input manager (Figure 2):
//
//	frame = uvarint(len(streamName)) streamName uvarint(len(payload)) payload
//
// where payload is the stream.Codec encoding of one element against the
// stream's schema.

// WireWriter encodes tagged elements for transmission.
type WireWriter struct {
	w      io.Writer
	codecs map[string]*stream.Codec
	buf    []byte
}

// NewWireWriter builds a writer for the given stream schemas.
func NewWireWriter(w io.Writer, schemas ...*stream.Schema) *WireWriter {
	ww := &WireWriter{w: w, codecs: make(map[string]*stream.Codec, len(schemas))}
	for _, sc := range schemas {
		ww.codecs[sc.Name()] = stream.NewCodec(sc)
	}
	return ww
}

// Write encodes one element of the named stream.
func (ww *WireWriter) Write(streamName string, e stream.Element) error {
	c, ok := ww.codecs[streamName]
	if !ok {
		return fmt.Errorf("engine: wire writer has no schema for stream %q", streamName)
	}
	payload, err := c.Encode(ww.buf[:0], e)
	if err != nil {
		return err
	}
	ww.buf = payload[:0]
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(streamName)))
	if _, err := ww.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := io.WriteString(ww.w, streamName); err != nil {
		return err
	}
	n = binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := ww.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err = ww.w.Write(payload)
	return err
}

// WireReader decodes frames from a multiplexed element stream. It is the
// shared front half of the ingestion paths: DSMS.IngestWire drains it
// into the sequential Push, Runtime.IngestWire into the sharded router.
type WireReader struct {
	br     *bufio.Reader
	codecs map[string]*stream.Codec
}

// NewWireReader builds a reader for the given stream schemas (the streams
// the wire may carry).
func NewWireReader(r io.Reader, schemas ...*stream.Schema) *WireReader {
	wr := &WireReader{br: bufio.NewReader(r), codecs: make(map[string]*stream.Codec, len(schemas))}
	for _, sc := range schemas {
		wr.codecs[sc.Name()] = stream.NewCodec(sc)
	}
	return wr
}

// Read decodes the next frame. It returns io.EOF at a clean end of input.
func (wr *WireReader) Read() (TaggedElement, error) {
	nameLen, err := binary.ReadUvarint(wr.br)
	if err == io.EOF {
		return TaggedElement{}, io.EOF
	}
	if err != nil {
		return TaggedElement{}, fmt.Errorf("engine: wire: %w", err)
	}
	if nameLen > 1<<16 {
		return TaggedElement{}, fmt.Errorf("engine: wire: stream name length %d too large", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(wr.br, nameBuf); err != nil {
		return TaggedElement{}, fmt.Errorf("engine: wire: %w", err)
	}
	payloadLen, err := binary.ReadUvarint(wr.br)
	if err != nil {
		return TaggedElement{}, fmt.Errorf("engine: wire: %w", err)
	}
	if payloadLen > 1<<24 {
		return TaggedElement{}, fmt.Errorf("engine: wire: payload length %d too large", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(wr.br, payload); err != nil {
		return TaggedElement{}, fmt.Errorf("engine: wire: %w", err)
	}
	name := string(nameBuf)
	c, ok := wr.codecs[name]
	if !ok {
		return TaggedElement{}, fmt.Errorf("engine: wire: unknown stream %q", name)
	}
	e, rest, err := c.Decode(payload)
	if err != nil {
		return TaggedElement{}, fmt.Errorf("engine: wire: stream %q: %w", name, err)
	}
	if len(rest) != 0 {
		return TaggedElement{}, fmt.Errorf("engine: wire: stream %q: %d trailing bytes", name, len(rest))
	}
	return TaggedElement{Stream: name, Elem: e}, nil
}

// IngestWire reads frames from r until EOF and pushes each element into
// the DSMS. The schemas declare the streams the wire may carry. It
// returns the number of elements ingested.
func (d *DSMS) IngestWire(r io.Reader, schemas ...*stream.Schema) (int, error) {
	wr := NewWireReader(r, schemas...)
	count := 0
	for {
		te, err := wr.Read()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		if err := d.Push(te.Stream, te.Elem); err != nil {
			return count, err
		}
		count++
	}
}

// IngestWire reads frames from r until EOF and routes each element to the
// runtime's shards. It returns the number of elements routed (delivery is
// asynchronous; Close and Wait to drain).
func (rt *Runtime) IngestWire(r io.Reader, schemas ...*stream.Schema) (int, error) {
	wr := NewWireReader(r, schemas...)
	count := 0
	for {
		te, err := wr.Read()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		if err := rt.Send(te.Stream, te.Elem); err != nil {
			return count, err
		}
		count++
	}
}
