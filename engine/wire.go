package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"punctsafe/stream"
)

// The wire format carries multiplexed stream elements from the
// application environment into the input manager (Figure 2):
//
//	frame = uvarint(len(streamName)) streamName uvarint(len(payload)) payload
//
// where payload is the stream.Codec encoding of one element against the
// stream's schema.

// Wire limits: a frame whose declared lengths exceed these is corrupt by
// definition (no legitimate stream name or element comes close).
const (
	maxWireNameLen    = 1 << 16
	maxWirePayloadLen = 1 << 24
)

// WireWriter encodes tagged elements for transmission.
type WireWriter struct {
	w      io.Writer
	codecs map[string]*stream.Codec
	buf    []byte
}

// NewWireWriter builds a writer for the given stream schemas.
func NewWireWriter(w io.Writer, schemas ...*stream.Schema) *WireWriter {
	ww := &WireWriter{w: w, codecs: make(map[string]*stream.Codec, len(schemas))}
	for _, sc := range schemas {
		ww.codecs[sc.Name()] = stream.NewCodec(sc)
	}
	return ww
}

// Write encodes one element of the named stream.
func (ww *WireWriter) Write(streamName string, e stream.Element) error {
	c, ok := ww.codecs[streamName]
	if !ok {
		return fmt.Errorf("engine: wire writer has no schema for stream %q", streamName)
	}
	payload, err := c.Encode(ww.buf[:0], e)
	if err != nil {
		return err
	}
	ww.buf = payload[:0]
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(streamName)))
	if _, err := ww.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := io.WriteString(ww.w, streamName); err != nil {
		return err
	}
	n = binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := ww.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err = ww.w.Write(payload)
	return err
}

// WireFault describes one corrupt region of the wire a lenient reader
// skipped: either a whole frame whose boundary was parseable (Frame holds
// its raw bytes), or a run of unframeable bytes the reader scanned past
// to resynchronize (Frame is nil).
type WireFault struct {
	// Stream names the frame's stream when the header decoded ("" when
	// the damage hid even that).
	Stream string
	// Offset is the byte offset of the skipped region in the wire.
	Offset int64
	// Skipped is the region's length in bytes.
	Skipped int
	// Frame holds the corrupt frame's raw bytes when its boundary was
	// known; nil for resync scans.
	Frame []byte
	// Err is the decode error that condemned the region.
	Err error
}

// wireStream pairs a stream's canonical name with its codec so frame
// parsing can intern names without allocating per frame.
type wireStream struct {
	name  string
	codec *stream.Codec
}

// wireCorruption classifies a parse failure as data damage (as opposed to
// an underlying reader error). frameLen > 0 means the frame's boundary is
// known and the lenient reader can skip it as a unit; frameLen == 0 means
// the framing itself is broken and the reader must scan to resync.
type wireCorruption struct {
	err      error
	frameLen int
	stream   string
}

func (c *wireCorruption) Error() string { return c.err.Error() }
func (c *wireCorruption) Unwrap() error { return c.err }

// WireReader decodes frames from a multiplexed element stream. It is the
// shared front half of the ingestion paths: DSMS.IngestWire drains it
// into the sequential Push, Runtime.IngestWire into the sharded router.
//
// The reader parses out of a single reusable window buffer: stream names
// are interned and payloads are decoded in place, so steady-state reading
// does not allocate per frame beyond what the decoded element itself
// needs.
type WireReader struct {
	r       io.Reader
	streams map[string]wireStream

	lenient bool
	onFault func(WireFault)

	buf   []byte
	pos   int   // start of unconsumed bytes in buf
	fill  int   // end of valid bytes in buf
	base  int64 // wire offset of buf[0]
	rdErr error // sticky terminal error from r (including io.EOF)
	empty int   // consecutive zero-byte, nil-error reads from r
}

const wireReadChunk = 32 * 1024

// ErrWouldBlock is a transient signal a transport reader may return
// (with zero bytes) to mean "everything available so far has been
// consumed; the next read will block". Unlike every other reader error
// it is NOT latched: the WireReader surfaces it to its caller — which
// can commit partial progress, as IngestWireResume does at these
// drained-pipeline boundaries — and the next Read continues where the
// parse left off.
var ErrWouldBlock = errors.New("engine: wire read would block")

// NewWireReader builds a strict reader for the given stream schemas (the
// streams the wire may carry): the first corrupt frame fails the read, as
// Read documents.
func NewWireReader(r io.Reader, schemas ...*stream.Schema) *WireReader {
	wr := &WireReader{r: r, streams: make(map[string]wireStream, len(schemas))}
	for _, sc := range schemas {
		wr.streams[sc.Name()] = wireStream{name: sc.Name(), codec: stream.NewCodec(sc)}
	}
	return wr
}

// Lenient switches the reader into skip-and-resync mode: corrupt frames
// and unframeable byte runs are skipped (reported to onFault, which may
// be nil) and Read keeps going until the next good frame or a clean EOF.
// A truncated final frame is reported as one fault. Returns the reader.
func (wr *WireReader) Lenient(onFault func(WireFault)) *WireReader {
	wr.lenient = true
	wr.onFault = onFault
	return wr
}

// Read decodes the next frame. It returns io.EOF at a clean end of input.
// In strict mode (the default) any corrupt frame fails the read; in
// Lenient mode corrupt regions are skipped and reported instead.
func (wr *WireReader) Read() (TaggedElement, error) {
	for {
		ws, payload, frameLen, err := wr.readRaw()
		if err != nil {
			return TaggedElement{}, err
		}
		e, derr := decodeWireFrame(ws, payload)
		if derr == nil {
			wr.pos += frameLen
			return TaggedElement{Stream: ws.name, Elem: e}, nil
		}
		// Payload damage: the frame's boundary is known, so the lenient
		// reader skips it whole.
		if !wr.lenient {
			return TaggedElement{}, fmt.Errorf("engine: wire: %w", derr)
		}
		wr.skipFrame(ws.name, frameLen, derr)
	}
}

// skipFrame reports a boundary-known corrupt frame as one fault and
// consumes it.
func (wr *WireReader) skipFrame(streamName string, frameLen int, err error) {
	frame := append([]byte(nil), wr.buf[wr.pos:wr.pos+frameLen]...)
	wr.fault(WireFault{
		Stream:  streamName,
		Offset:  wr.base + int64(wr.pos),
		Skipped: frameLen,
		Frame:   frame,
		Err:     fmt.Errorf("engine: wire: %w", err),
	})
	wr.pos += frameLen
}

// readRaw scans to the next well-framed frame of a known stream without
// consuming or decoding it, returning the stream, the payload view into
// the window (valid until the next readRaw or compact) and the frame's
// byte length; the caller consumes by advancing wr.pos. Framing-level
// damage — bad varints, absurd lengths, unknown streams, truncation — is
// skipped and reported here under Lenient; payload damage is the
// caller's concern (the decode step may run on another goroutine, see
// the parallel ingestion pipeline). Returns io.EOF at a clean end of
// input.
func (wr *WireReader) readRaw() (wireStream, []byte, int, error) {
	var zero wireStream
	var scanStart int64
	var scanErr error
	scanned := 0
	flushScan := func() {
		if scanned > 0 {
			wr.fault(WireFault{Offset: scanStart, Skipped: scanned, Err: scanErr})
			scanned = 0
		}
	}
	for {
		wr.compact()
		ws, payload, frameLen, err := wr.parseRawFrame()
		if err == nil {
			flushScan()
			return ws, payload, frameLen, nil
		}
		if err == io.EOF {
			flushScan()
			return zero, nil, 0, io.EOF
		}
		var c *wireCorruption
		if !errors.As(err, &c) {
			// Underlying reader failure: not data damage, always fatal at
			// this layer (RetryReader absorbs transient ones underneath).
			return zero, nil, 0, fmt.Errorf("engine: wire: %w", err)
		}
		if !wr.lenient {
			return zero, nil, 0, fmt.Errorf("engine: wire: %w", c.err)
		}
		if c.frameLen > 0 {
			// The frame's boundary is known (unknown stream): skip whole.
			flushScan()
			wr.skipFrame(c.stream, c.frameLen, c.err)
			continue
		}
		// Framing broken (bad varint, absurd length, truncation): scan
		// forward one byte at a time until a frame parses again. The whole
		// skipped run is reported as one fault.
		if scanned == 0 {
			scanStart = wr.base + int64(wr.pos)
			scanErr = fmt.Errorf("engine: wire: %w", c.err)
		}
		wr.pos++
		scanned++
	}
}

// Offset returns the absolute wire offset of the next unconsumed byte:
// after a successful Read, the end of the frame just returned. Resumable
// ingestion (IngestWireFrom) commits this as the source's resume
// position.
func (wr *WireReader) Offset() int64 {
	return wr.base + int64(wr.pos)
}

func (wr *WireReader) fault(f WireFault) {
	if wr.onFault != nil {
		wr.onFault(f)
	}
}

// compact discards consumed bytes so the window can be refilled in place.
// Compacting on every Read would memmove the rest of the window once per
// frame; instead it waits until the window is fully consumed (a free
// cursor reset) or the consumed prefix covers half the buffer, so at most
// two bytes move per byte consumed and small frames parse with no copying
// at all.
func (wr *WireReader) compact() {
	if wr.pos == 0 || (wr.pos < wr.fill && wr.pos < len(wr.buf)/2) {
		return
	}
	copy(wr.buf, wr.buf[wr.pos:wr.fill])
	wr.base += int64(wr.pos)
	wr.fill -= wr.pos
	wr.pos = 0
}

// fillMore reads more bytes from r into the window without moving the
// unconsumed region (parse indexes stay valid), growing the buffer when
// full. It returns the sticky terminal error once the source is drained.
func (wr *WireReader) fillMore() error {
	if wr.rdErr != nil {
		return wr.rdErr
	}
	if wr.fill == len(wr.buf) {
		grow := len(wr.buf) * 2
		if grow < wireReadChunk {
			grow = wireReadChunk
		}
		nb := make([]byte, grow)
		copy(nb, wr.buf[:wr.fill])
		wr.buf = nb
	}
	n, err := wr.r.Read(wr.buf[wr.fill:])
	wr.fill += n
	if err != nil {
		if err == ErrWouldBlock && n == 0 {
			return err // transient, not latched: the caller may retry
		}
		wr.rdErr = err
		if n == 0 {
			return err
		}
		return nil
	}
	if n == 0 {
		wr.empty++
		if wr.empty >= 100 {
			wr.rdErr = io.ErrNoProgress
			return io.ErrNoProgress
		}
		return nil
	}
	wr.empty = 0
	return nil
}

// need ensures the window holds bytes up to absolute index end. An EOF
// while a frame is partially read means a truncated frame — data damage,
// not a clean end.
func (wr *WireReader) need(end int) error {
	for wr.fill < end {
		if err := wr.fillMore(); err != nil {
			if err == io.EOF {
				return &wireCorruption{err: io.ErrUnexpectedEOF}
			}
			return err
		}
	}
	return nil
}

// uvarint decodes a uvarint at absolute window index p.
func (wr *WireReader) uvarint(p int) (uint64, int, error) {
	for {
		v, n := binary.Uvarint(wr.buf[p:wr.fill])
		if n > 0 {
			return v, n, nil
		}
		if n < 0 {
			return 0, 0, &wireCorruption{err: fmt.Errorf("varint overflow")}
		}
		if err := wr.need(wr.fill + 1); err != nil {
			return 0, 0, err
		}
	}
}

// parseRawFrame parses one frame's boundaries at wr.pos without
// consuming or decoding it, returning the frame's stream, its payload
// view into the window, and the frame's byte length. io.EOF means a
// clean end of input exactly at a frame boundary; *wireCorruption means
// damaged framing (boundary-known when its frameLen is set); anything
// else is an underlying reader error.
func (wr *WireReader) parseRawFrame() (wireStream, []byte, int, error) {
	var zero wireStream
	start := wr.pos
	for wr.fill == start {
		if err := wr.fillMore(); err != nil {
			return zero, nil, 0, err
		}
	}
	nameLen64, n, err := wr.uvarint(start)
	if err != nil {
		return zero, nil, 0, err
	}
	p := start + n
	if nameLen64 > maxWireNameLen {
		return zero, nil, 0, &wireCorruption{err: fmt.Errorf("stream name length %d too large", nameLen64)}
	}
	nameLen := int(nameLen64)
	if err := wr.need(p + nameLen); err != nil {
		return zero, nil, 0, err
	}
	nameBytes := wr.buf[p : p+nameLen]
	p += nameLen
	payloadLen64, n, err := wr.uvarint(p)
	if err != nil {
		return zero, nil, 0, err
	}
	p += n
	if payloadLen64 > maxWirePayloadLen {
		return zero, nil, 0, &wireCorruption{err: fmt.Errorf("payload length %d too large", payloadLen64)}
	}
	payloadLen := int(payloadLen64)
	if err := wr.need(p + payloadLen); err != nil {
		return zero, nil, 0, err
	}
	payload := wr.buf[p : p+payloadLen]
	frameLen := p + payloadLen - start
	ws, ok := wr.streams[string(nameBytes)] // alloc-free map probe
	if !ok {
		return zero, nil, 0, &wireCorruption{
			err:      fmt.Errorf("unknown stream %q", nameBytes),
			frameLen: frameLen,
			stream:   string(nameBytes),
		}
	}
	return ws, payload, frameLen, nil
}

// decodeWireFrame decodes one raw frame's payload. It touches no reader
// state (stream.Codec is stateless), so decoding can run on any
// goroutine — the parallel ingestion pipeline fans it out across cores.
func decodeWireFrame(ws wireStream, payload []byte) (stream.Element, error) {
	e, rest, err := ws.codec.Decode(payload)
	if err != nil {
		return stream.Element{}, fmt.Errorf("stream %q: %w", ws.name, err)
	}
	if len(rest) != 0 {
		return stream.Element{}, fmt.Errorf("stream %q: %d trailing bytes", ws.name, len(rest))
	}
	return e, nil
}

// IngestWire reads frames from r until EOF and pushes each element into
// the DSMS. The schemas declare the streams the wire may carry. It
// returns the number of elements ingested. The sequential path is always
// strict; the sharded Runtime's IngestWire applies its error policy.
func (d *DSMS) IngestWire(r io.Reader, schemas ...*stream.Schema) (int, error) {
	wr := NewWireReader(r, schemas...)
	count := 0
	for {
		te, err := wr.Read()
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		if err := d.Push(te.Stream, te.Elem); err != nil {
			return count, err
		}
		count++
	}
}

// IngestWire reads frames from r until EOF and routes each element to the
// runtime's shards. It returns the number of elements routed (delivery is
// asynchronous; Close and Wait to drain). Under the Drop and Quarantine
// policies the reader runs in skip-and-resync mode: corrupt frames are
// counted (and, under Quarantine, retained raw) in the dead-letter queue
// instead of aborting the ingest.
// Frames are decoded and routed in batches: contiguous same-stream runs
// (up to ingestBatch frames) travel through SendBatch as one mailbox
// hand-off per subscribed shard, preserving per-shard element order while
// amortizing routing and channel overhead.
func (rt *Runtime) IngestWire(r io.Reader, schemas ...*stream.Schema) (int, error) {
	wr := NewWireReader(r, schemas...)
	if rt.policy != Fail {
		wr.Lenient(func(f WireFault) {
			rt.dlq.add(DeadLetter{Stream: f.Stream, Frame: f.Frame, Err: f.Err})
		})
	}
	const ingestBatch = 128
	batch := make([]stream.Element, 0, ingestBatch)
	batchStream := ""
	count := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := rt.SendBatch(batchStream, batch); err != nil {
			return err
		}
		count += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		te, err := wr.Read()
		if err == io.EOF {
			if ferr := flush(); ferr != nil {
				return count, ferr
			}
			return count, nil
		}
		if err != nil {
			if ferr := flush(); ferr != nil {
				return count, ferr
			}
			return count, err
		}
		if te.Stream != batchStream || len(batch) >= ingestBatch {
			if ferr := flush(); ferr != nil {
				return count, ferr
			}
			batchStream = te.Stream
		}
		batch = append(batch, te.Elem)
	}
}
