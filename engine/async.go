package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"punctsafe/stream"
)

// TaggedElement is one element of a named stream, as delivered to the
// input manager by the application environment (Figure 2).
type TaggedElement struct {
	Stream string
	Elem   stream.Element
}

// AsyncInput is the concurrent front end of the input manager: producers
// send TaggedElements into a buffered channel from any number of
// goroutines; a single consumer goroutine drains it into the DSMS,
// preserving channel order. While the AsyncInput is running the DSMS must
// not be used directly; call Close and Wait first. For per-query
// parallelism use DSMS.RunSharded instead.
type AsyncInput struct {
	ch   chan TaggedElement
	done chan struct{}
	once sync.Once
	mu   sync.Mutex
	err  error
	n    atomic.Uint64
}

// RunAsync starts the consumer goroutine with the given channel buffer
// size (the input manager's buffering).
func (d *DSMS) RunAsync(buffer int) *AsyncInput {
	if buffer < 0 {
		buffer = 0
	}
	a := &AsyncInput{
		ch:   make(chan TaggedElement, buffer),
		done: make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		for te := range a.ch {
			if err := d.Push(te.Stream, te.Elem); err != nil {
				a.setErr(err)
				// Drain the channel so producers never block forever.
				for range a.ch {
				}
				return
			}
			a.n.Add(1)
		}
		if err := d.Flush(); err != nil {
			a.setErr(err)
		}
	}()
	return a
}

// setErr records the first processing error.
func (a *AsyncInput) setErr(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

// Err returns the first processing error without blocking; nil while the
// consumer is healthy. Unlike Wait it can be polled while producers are
// still sending, so a failure surfaces as soon as it happens instead of
// after the queue has silently drained.
func (a *AsyncInput) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return fmt.Errorf("engine: async input: %w", a.err)
	}
	return nil
}

// Send enqueues one element; it blocks while the buffer is full. Sending
// after Close panics (like any closed channel), so coordinate producers
// before closing.
func (a *AsyncInput) Send(streamName string, e stream.Element) {
	a.ch <- TaggedElement{Stream: streamName, Elem: e}
}

// Chan exposes the input channel for producers that select or fan in.
func (a *AsyncInput) Chan() chan<- TaggedElement { return a.ch }

// Close signals the end of input; safe to call once all producers are
// done (idempotent).
func (a *AsyncInput) Close() {
	a.once.Do(func() { close(a.ch) })
}

// Wait blocks until the consumer has drained the channel (after Close)
// and returns the first processing error, if any.
func (a *AsyncInput) Wait() error {
	<-a.done
	return a.Err()
}

// Processed returns the number of elements successfully pushed so far. It
// does not block: during the run it is a live (race-free) reading, and
// after Wait it is the final count.
func (a *AsyncInput) Processed() uint64 {
	return a.n.Load()
}
